package edgechain

// Benchmark harness: one benchmark per paper figure and per DESIGN.md
// ablation. Each iteration runs a reduced-duration simulation (benchmarks
// would otherwise take minutes per iteration); cmd/figures regenerates the
// full 500-minute paper-scale sweeps and EXPERIMENTS.md records those
// numbers. The reported custom metrics carry the figure's measurement so
// `go test -bench` output doubles as a sanity table.

import (
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/pos"
	"repro/internal/ufl"
)

// benchDuration keeps one benchmark iteration around a second of wall time.
const benchDuration = 60 * time.Minute

// BenchmarkFig4 regenerates Fig. 4 (overhead / Gini / delivery) for the
// corner cells of the sweep.
func BenchmarkFig4(b *testing.B) {
	for _, bc := range []struct {
		nodes int
		rate  float64
	}{
		{10, 1}, {10, 3}, {50, 1}, {50, 3},
	} {
		b.Run(byNodesRate(bc.nodes, bc.rate), func(b *testing.B) {
			var last experiments.Fig4Row
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunFig4(experiments.Fig4Config{
					NodeCounts: []int{bc.nodes},
					Rates:      []float64{bc.rate},
					Duration:   benchDuration,
					Seed:       int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				last = rows[0]
			}
			b.ReportMetric(last.AvgTxMB, "tx-MB/node")
			b.ReportMetric(last.Gini, "gini")
			b.ReportMetric(last.DeliverySec, "delivery-s")
		})
	}
}

func byNodesRate(n int, r float64) string {
	return "nodes=" + itoa(n) + "/rate=" + itoa(int(r))
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkFig5 regenerates Fig. 5 (optimal vs random placement).
func BenchmarkFig5(b *testing.B) {
	for _, nodes := range []int{10, 30, 50} {
		b.Run("nodes="+itoa(nodes), func(b *testing.B) {
			var last experiments.Fig5Row
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunFig5(experiments.Fig5Config{
					NodeCounts: []int{nodes},
					Duration:   benchDuration,
					Seed:       int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				last = rows[0]
			}
			b.ReportMetric(last.OptimalSec, "optimal-s")
			b.ReportMetric(last.RandomSec, "random-s")
			b.ReportMetric(last.DeliveryRatio, "delivery-ratio")
			b.ReportMetric(last.OverheadRatio, "overhead-ratio")
		})
	}
}

// BenchmarkFig6 regenerates Fig. 6 (PoW vs PoS battery drain).
func BenchmarkFig6(b *testing.B) {
	var last *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(experiments.Fig6Config{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.PoWBlocksPerPercent, "pow-blk/pct")
	b.ReportMetric(last.PoSBlocksPerPercent, "pos-blk/pct")
	b.ReportMetric(last.EnergySaving*100, "saving-pct")
}

// BenchmarkAblationFDCWeight sweeps the FDC scaling factor A (DESIGN.md A1).
func BenchmarkAblationFDCWeight(b *testing.B) {
	for _, w := range []float64{1, 1000} {
		b.Run("A="+itoa(int(w)), func(b *testing.B) {
			var gini float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunFDCWeightAblation(
					[]float64{w}, 20, 40*time.Minute, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				gini = rows[0].Gini
			}
			b.ReportMetric(gini, "gini")
		})
	}
}

// BenchmarkAblationRecentCache sweeps the recent-cache depth (A2).
func BenchmarkAblationRecentCache(b *testing.B) {
	for _, depth := range []int{1, 8} {
		b.Run("depth="+itoa(depth), func(b *testing.B) {
			var gap float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunRecentCacheAblation(
					[]int{depth}, 12, 30*time.Minute, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				gap = float64(rows[0].FinalHeightGap)
			}
			b.ReportMetric(gap, "height-gap")
		})
	}
}

// BenchmarkAblationRaftHeartbeat sweeps the Raft heartbeat interval (A3).
func BenchmarkAblationRaftHeartbeat(b *testing.B) {
	for _, hb := range []time.Duration{500 * time.Millisecond, 2 * time.Second} {
		b.Run("hb="+hb.String(), func(b *testing.B) {
			var appends float64
			for i := 0; i < b.N; i++ {
				rows, err := experiments.RunRaftHeartbeatAblation(
					[]time.Duration{hb}, 10, 5*time.Minute, int64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				appends = float64(rows[0].AppendEntries)
			}
			b.ReportMetric(appends, "append-entries")
		})
	}
}

// BenchmarkAblationUFLSolvers compares the solver suite against the exact
// optimum (A4).
func BenchmarkAblationUFLSolvers(b *testing.B) {
	var rows []experiments.UFLSolverRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunUFLSolverAblation(14, 20, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MeanRatio, r.Solver+"-ratio")
	}
}

// BenchmarkSimulationStep measures raw simulation throughput: one default
// 30-node deployment minute.
func BenchmarkSimulationStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(30)
		cfg.Seed = int64(i + 1)
		cfg.DataRatePerMin = 2
		if _, err := RunSimulation(cfg, 10*time.Minute); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUFLGreedy measures the placement solver on paper-sized
// instances (50 nodes).
func BenchmarkUFLGreedy(b *testing.B) {
	in := benchInstance(50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ufl.Greedy(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPoSRound measures a full PoS round decision (hit + winning
// time) for 50 nodes.
func BenchmarkPoSRound(b *testing.B) {
	params := pos.DefaultParams()
	led, prev := benchLedger(50)
	bval := params.AmendmentB(led.N(), led.UBar())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < led.N(); j++ {
			hit := params.Hit(prev, led.Account(j))
			pos.TimeToMine(hit, led.U(j), bval)
		}
	}
}

// BenchmarkAblationConsensusEnergy compares network-wide mining energy
// under PoS and PoW (DESIGN.md A5, the in-system Fig. 6).
func BenchmarkAblationConsensusEnergy(b *testing.B) {
	var rows []experiments.ConsensusEnergyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunConsensusEnergyAblation(12, 20*time.Minute, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.EnergyPerBlockJ, r.Consensus+"-J/blk")
	}
}

// BenchmarkAblationMigration compares placement drift with the Section
// VII migration mechanism off and on (DESIGN.md A6).
func BenchmarkAblationMigration(b *testing.B) {
	var rows []experiments.MigrationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunMigrationAblation(15, 40*time.Minute, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Drift, "drift-max"+itoa(r.MaxPerBlock))
	}
}

package edgechain_test

import (
	"fmt"
	"testing"
	"time"

	edgechain "repro"
)

func TestRunSimulationFacade(t *testing.T) {
	cfg := edgechain.DefaultConfig(10)
	cfg.Seed = 3
	cfg.DataRatePerMin = 2
	res, err := edgechain.RunSimulation(cfg, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChainHeight == 0 {
		t.Fatal("no blocks mined through the facade")
	}
	if res.NumNodes != 10 {
		t.Fatalf("NumNodes = %d, want 10", res.NumNodes)
	}
}

func TestRunSimulationRejectsBadConfig(t *testing.T) {
	cfg := edgechain.DefaultConfig(0)
	if _, err := edgechain.RunSimulation(cfg, time.Minute); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestGiniFacade(t *testing.T) {
	if g := edgechain.Gini([]float64{1, 1, 1}); g != 0 {
		t.Fatalf("Gini of equal values = %v, want 0", g)
	}
}

func TestFigureRunnersFacade(t *testing.T) {
	rows4, err := edgechain.RunFig4(edgechain.Fig4Config{
		NodeCounts: []int{10}, Rates: []float64{1},
		Duration: 20 * time.Minute, Seed: 1,
	})
	if err != nil || len(rows4) != 1 {
		t.Fatalf("RunFig4: rows=%d err=%v", len(rows4), err)
	}
	rows5, err := edgechain.RunFig5(edgechain.Fig5Config{
		NodeCounts: []int{10}, Duration: 20 * time.Minute, Seed: 1,
	})
	if err != nil || len(rows5) != 1 {
		t.Fatalf("RunFig5: rows=%d err=%v", len(rows5), err)
	}
	res6, err := edgechain.RunFig6(edgechain.Fig6Config{Seed: 1, Blocks: 50})
	if err != nil || len(res6.PoW) == 0 {
		t.Fatalf("RunFig6: err=%v", err)
	}
}

// ExampleRunSimulation demonstrates the one-call API.
func ExampleRunSimulation() {
	cfg := edgechain.DefaultConfig(10)
	cfg.Seed = 1
	cfg.DataRatePerMin = 1
	res, err := edgechain.RunSimulation(cfg, 10*time.Minute)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ChainHeight > 0, res.StorageGini < 0.5)
	// Output: true true
}

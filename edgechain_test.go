package edgechain_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	edgechain "repro"
)

func TestRunSimulationFacade(t *testing.T) {
	cfg := edgechain.DefaultConfig(10)
	cfg.Seed = 3
	cfg.DataRatePerMin = 2
	res, err := edgechain.RunSimulation(cfg, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChainHeight == 0 {
		t.Fatal("no blocks mined through the facade")
	}
	if res.NumNodes != 10 {
		t.Fatalf("NumNodes = %d, want 10", res.NumNodes)
	}
}

func TestRunSimulationRejectsBadConfig(t *testing.T) {
	cfg := edgechain.DefaultConfig(0)
	if _, err := edgechain.RunSimulation(cfg, time.Minute); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestGiniFacade(t *testing.T) {
	if g := edgechain.Gini([]float64{1, 1, 1}); g != 0 {
		t.Fatalf("Gini of equal values = %v, want 0", g)
	}
}

func TestFigureRunnersFacade(t *testing.T) {
	rows4, err := edgechain.RunFig4(edgechain.Fig4Config{
		NodeCounts: []int{10}, Rates: []float64{1},
		Duration: 20 * time.Minute, Seed: 1,
	})
	if err != nil || len(rows4) != 1 {
		t.Fatalf("RunFig4: rows=%d err=%v", len(rows4), err)
	}
	rows5, err := edgechain.RunFig5(edgechain.Fig5Config{
		NodeCounts: []int{10}, Duration: 20 * time.Minute, Seed: 1,
	})
	if err != nil || len(rows5) != 1 {
		t.Fatalf("RunFig5: rows=%d err=%v", len(rows5), err)
	}
	res6, err := edgechain.RunFig6(edgechain.Fig6Config{Seed: 1, Blocks: 50})
	if err != nil || len(res6.PoW) == 0 {
		t.Fatalf("RunFig6: err=%v", err)
	}
}

// ExampleRunSimulation demonstrates the one-call API.
func ExampleRunSimulation() {
	cfg := edgechain.DefaultConfig(10)
	cfg.Seed = 1
	cfg.DataRatePerMin = 1
	res, err := edgechain.RunSimulation(cfg, 10*time.Minute)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ChainHeight > 0, res.StorageGini < 0.5)
	// Output: true true
}

// TestStreamWorkloadFacade drives a simulation from a drained open-loop
// stream (diurnal + burst arrivals, Zipf types, multiplexed users) and
// checks the trade loop actually ran: items produced, requesters served.
func TestStreamWorkloadFacade(t *testing.T) {
	const nodes = 12
	cfg := edgechain.DefaultConfig(nodes)
	cfg.Seed = 1
	rng := rand.New(rand.NewSource(cfg.Seed))
	stream, err := edgechain.NewWorkloadStream(edgechain.StreamWorkloadConfig{
		Duration:         30 * time.Minute,
		RatePerMin:       3,
		DiurnalPeriod:    30 * time.Minute,
		DiurnalAmplitude: 0.7,
		BurstEvery:       30 * time.Minute,
		BurstOffset:      5 * time.Minute,
		BurstDuration:    3 * time.Minute,
		BurstFactor:      6,
		NumNodes:         nodes,
		Requesters:       edgechain.PickRequesterPool(nodes, 0.25, rng),
		RequestsPerItem:  1,
		TypeZipfS:        1.2,
		Users:            50_000,
		UserZipfS:        1.3,
		SessionEpoch:     10 * time.Minute,
		Seed:             cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = stream.Drain()
	if cfg.Trace.Len() == 0 {
		t.Fatal("stream drained no events")
	}
	res, err := edgechain.RunSimulation(cfg, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.DataGenerated == 0 || res.Delivery.Count == 0 {
		t.Fatalf("trace-driven run produced %d items, delivered %d requests",
			res.DataGenerated, res.Delivery.Count)
	}
}

// Quickstart: run the paper's default edge-blockchain deployment for 20
// simulated nodes and half an hour of virtual time, then print the
// headline metrics (chain height, storage fairness, delivery latency,
// per-node transmission overhead).
package main

import (
	"fmt"
	"log"
	"time"

	edgechain "repro"
)

func main() {
	cfg := edgechain.DefaultConfig(20) // paper's Section VI parameters
	cfg.DataRatePerMin = 2
	cfg.Seed = 42

	res, err := edgechain.RunSimulation(cfg, 30*time.Minute)
	if err != nil {
		log.Fatalf("simulation failed: %v", err)
	}

	fmt.Println("edge blockchain quickstart — 20 nodes, 30 simulated minutes")
	fmt.Printf("  blocks mined:          %d (expected ~%d at one per minute)\n",
		res.ChainHeight, 30)
	fmt.Printf("  data items generated:  %d\n", res.DataGenerated)
	fmt.Printf("  deliveries:            %d (mean %.2f s, p95 %.2f s)\n",
		res.Delivery.Count, res.Delivery.Mean, res.Delivery.P95)
	fmt.Printf("  storage Gini:          %.3f (paper bound: < 0.15)\n", res.StorageGini)
	fmt.Printf("  avg tx per node:       %.1f MB\n", res.AvgTxBytesPerNode/(1<<20))
	fmt.Println("  traffic by kind:")
	for _, k := range []string{"data", "block", "meta", "ctrl"} {
		fmt.Printf("    %-6s %8.1f MB\n", k, float64(res.KindBytes[k])/(1<<20))
	}
}

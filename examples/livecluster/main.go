// Livecluster: run the blockchain over real TCP sockets on localhost —
// three in-process nodes with wall-clock PoS mining, the deployment style
// of the paper's original Node.js/Docker setup. One node publishes a data
// item; another discovers it on-chain and fetches the content by hash.
//
// This example runs in real time (about ten seconds).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	edgechain "repro"
	"repro/internal/pos"
)

func main() {
	const n = 3
	rng := rand.New(rand.NewSource(1))
	idents := make([]*edgechain.Identity, n)
	accounts := make([]edgechain.Address, n)
	for i := range idents {
		idents[i] = edgechain.NewSeededIdentity(rng)
		accounts[i] = idents[i].Address()
	}
	epoch := time.Now()
	params := pos.Params{M: pos.DefaultM, T0: 2 * time.Second}

	nodes := make([]*edgechain.LiveNode, n)
	for i := range nodes {
		node, err := edgechain.NewLiveNode(edgechain.LiveConfig{
			Identity:    idents[i],
			Accounts:    accounts,
			PoS:         params,
			GenesisSeed: 42,
			Epoch:       epoch,
			ListenAddr:  "127.0.0.1:0",
		})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		nodes[i] = node
		fmt.Printf("node %d (%s) listening on %s\n", i, accounts[i].Short(), node.Addr())
	}
	for i := 1; i < n; i++ {
		if err := nodes[i].Connect(nodes[0].Addr()); err != nil {
			log.Fatal(err)
		}
	}
	if err := nodes[1].Connect(nodes[2].Addr()); err != nil {
		log.Fatal(err)
	}

	content := []byte("live sensor reading: PM2.5 = 17 ug/m3")
	it, err := nodes[0].Publish(content, "AirQuality/PM2.5", "lab")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 0 published %s (%d bytes)\n", it.ID.Short(), len(content))

	// Wait for the item to be mined into a block on node 1's replica.
	deadline := time.Now().Add(30 * time.Second)
	for !nodes[1].HasItemOnChain(it.ID) {
		if time.Now().After(deadline) {
			log.Fatal("item never reached the chain")
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Printf("item on chain at height %d\n", nodes[1].Height())

	// Node 2 fetches the content by hash unless it was already assigned.
	if !nodes[2].HasData(it.ID) {
		nodes[2].RequestData(it.ID)
		for !nodes[2].HasData(it.ID) {
			if time.Now().After(deadline) {
				log.Fatal("data never arrived")
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	fmt.Println("node 2 holds the data; integrity verified by content hash")

	// Let a couple more blocks land, then check convergence.
	for nodes[0].Height() < 3 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Millisecond)
	}
	low := nodes[0].Height()
	for _, nd := range nodes[1:] {
		if h := nd.Height(); h < low {
			low = h
		}
	}
	want, _ := nodes[0].BlockHashAt(low)
	for i, nd := range nodes[1:] {
		got, ok := nd.BlockHashAt(low)
		if !ok || got != want {
			log.Fatalf("node %d diverges at height %d", i+1, low)
		}
	}
	fmt.Printf("all nodes agree through height %d — live cluster verified\n", low)
}

// Blocksync: the Fig. 3 scenarios — a node that disconnects and recovers
// its missing blocks from nearby recent caches, and a brand-new node that
// joins late and syncs the whole chain from its neighbors.
package main

import (
	"fmt"
	"log"
	"time"

	edgechain "repro"
	"repro/internal/netsim"
)

func main() {
	cfg := edgechain.DefaultConfig(16)
	cfg.Seed = 23
	cfg.DataRatePerMin = 1
	cfg.MobilityEpoch = 0 // keep the topology static for a clear story
	// Node 15 is "Node K": it enters the network at minute 20.
	cfg.LateJoiners = map[int]time.Duration{15: 20 * time.Minute}

	sys, err := edgechain.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Node 4 is "Node A": it drops off the network at minute 8 and comes
	// back at minute 14, having missed several blocks.
	const wanderer = 4
	sys.Engine().ScheduleAt(8*time.Minute, func() {
		fmt.Printf("[%6s] node %d disconnects (height %d)\n",
			sys.Engine().Now().Truncate(time.Second), wanderer,
			sys.Node(wanderer).Chain().Height())
		sys.Network().SetDown(netsim.NodeID(wanderer), true)
	})
	sys.Engine().ScheduleAt(14*time.Minute, func() {
		sys.Network().SetDown(netsim.NodeID(wanderer), false)
		fmt.Printf("[%6s] node %d reconnects (height %d, network at %d)\n",
			sys.Engine().Now().Truncate(time.Second), wanderer,
			sys.Node(wanderer).Chain().Height(), sys.Node(0).Chain().Height())
	})

	// Watch both nodes catch up.
	for m := 15; m <= 30; m += 5 {
		sys.Engine().ScheduleAt(time.Duration(m)*time.Minute, func() {
			fmt.Printf("[%6s] heights: wanderer=%d joiner=%d network=%d\n",
				sys.Engine().Now().Truncate(time.Second),
				sys.Node(wanderer).Chain().Height(),
				sys.Node(15).Chain().Height(),
				sys.Node(0).Chain().Height())
		})
	}

	if err := sys.Run(30 * time.Minute); err != nil {
		log.Fatal(err)
	}

	res := sys.Results()
	ref := sys.Node(0).Chain().Height()
	wh := sys.Node(wanderer).Chain().Height()
	jh := sys.Node(15).Chain().Height()
	fmt.Printf("\nfinal: network height %d, wanderer %d, late joiner %d\n", ref, wh, jh)
	fmt.Printf("gap recoveries: %d, full-chain syncs: %d\n",
		res.GapRecoveries, res.ForkReplacements)

	if diff(ref, wh) > 2 {
		log.Fatalf("wanderer failed to recover (gap %d)", diff(ref, wh))
	}
	if jh == 0 {
		log.Fatal("late joiner never synced")
	}
	fmt.Println("both recovery paths verified")
}

func diff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

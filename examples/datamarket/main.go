// Datamarket: the paper's motivating scenario — vehicles selling road
// information directly to peers, with micro-payment records kept on the
// edge blockchain instead of a trusted cloud backend.
//
// A producer vehicle publishes congestion reports; the metadata lands in
// blocks, the reports themselves are replicated onto the optimally chosen
// storing vehicles, and consumer vehicles discover the reports by querying
// the metadata in their chain replica and fetch them from the nearest
// holder.
package main

import (
	"fmt"
	"log"
	"time"

	edgechain "repro"
)

func main() {
	cfg := edgechain.DefaultConfig(25)
	cfg.Seed = 7
	cfg.DataRatePerMin = 0       // we drive the workload by hand
	cfg.DataValidFor = time.Hour // road info goes stale after an hour
	cfg.RequestSpread = 10 * time.Second

	sys, err := edgechain.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Vehicle 3 publishes a congestion report every 2 minutes.
	const seller = 3
	for i := 0; i < 10; i++ {
		at := time.Duration(i+1) * 2 * time.Minute
		sys.Engine().ScheduleAt(at, func() {
			it := sys.ProduceData(seller, "Road/Congestion")
			fmt.Printf("[%6s] vehicle %d published report %s\n",
				sys.Engine().Now().Truncate(time.Second), seller, it.ID.Short())
		})
	}

	// Vehicle 17 shops the market at minute 25: it queries its chain
	// replica for fresh congestion reports and buys (fetches) each one.
	const buyer = 17
	sys.Engine().ScheduleAt(25*time.Minute, func() {
		node := sys.Node(buyer)
		reports := node.FindMetadata(edgechain.MetadataQuery{TypePrefix: "Road/"})
		fmt.Printf("[%6s] vehicle %d found %d road reports on-chain\n",
			sys.Engine().Now().Truncate(time.Second), buyer, len(reports))
		for _, r := range reports {
			if node.RequestData(r.ID) {
				fmt.Printf("         requesting %s (producer %s, stored on %v)\n",
					r.ID.Short(), r.Producer.Short(), r.StoringNodes)
			}
		}
	})

	if err := sys.Run(30 * time.Minute); err != nil {
		log.Fatal(err)
	}

	res := sys.Results()
	node := sys.Node(buyer)
	bought := 0
	for _, r := range node.FindMetadata(edgechain.MetadataQuery{TypePrefix: "Road/"}) {
		if node.HasData(r.ID) {
			bought++
		}
	}
	fmt.Printf("\nmarket closed: %d blocks, buyer received %d reports, mean delivery %.2f s\n",
		res.ChainHeight, bought, res.Delivery.Mean)
	if bought == 0 {
		log.Fatal("buyer received nothing — market broken")
	}
}

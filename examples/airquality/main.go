// Airquality: IoT sensing-as-a-service, the metadata example from Section
// III-B of the paper. Sensor nodes publish PM2.5 readings with short valid
// times; subscribers query by type and location and the expired readings
// age out of both the metadata index and the storing nodes.
package main

import (
	"fmt"
	"log"
	"time"

	edgechain "repro"
	"repro/internal/geo"
)

func main() {
	cfg := edgechain.DefaultConfig(15)
	cfg.Seed = 11
	cfg.DataRatePerMin = 0
	cfg.DataValidFor = 8 * time.Minute // readings go stale quickly
	cfg.DataSize = 64 << 10            // 64 KB sensor batches

	sys, err := edgechain.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Three sensor nodes publish a reading every 3 minutes.
	sensors := []int{2, 7, 12}
	for i := 0; i < 8; i++ {
		at := time.Duration(i+1) * 3 * time.Minute
		sys.Engine().ScheduleAt(at, func() {
			for _, s := range sensors {
				sys.ProduceData(s, "AirQuality/PM2.5")
			}
		})
	}

	// A subscriber samples the index every 6 minutes: only unexpired
	// readings should be visible.
	const subscriber = 5
	var observations []int
	probe := func() {
		fresh := sys.Node(subscriber).FindMetadata(edgechain.MetadataQuery{
			TypePrefix: "AirQuality/",
		})
		observations = append(observations, len(fresh))
		fmt.Printf("[%6s] subscriber sees %d fresh readings\n",
			sys.Engine().Now().Truncate(time.Second), len(fresh))
	}
	for m := 6; m <= 36; m += 6 {
		sys.Engine().ScheduleAt(time.Duration(m)*time.Minute, probe)
	}

	// Geographic query at minute 20: readings near the subscriber.
	sys.Engine().ScheduleAt(20*time.Minute, func() {
		me := sys.Network().Topology().Position(5)
		near := sys.Node(subscriber).FindMetadata(edgechain.MetadataQuery{
			TypePrefix:   "AirQuality/",
			Near:         geo.Point{X: me.X, Y: me.Y},
			WithinMeters: 120,
		})
		fmt.Printf("[%6s] %d readings within 120 m of the subscriber\n",
			sys.Engine().Now().Truncate(time.Second), len(near))
	})

	if err := sys.Run(40 * time.Minute); err != nil {
		log.Fatal(err)
	}

	res := sys.Results()
	fmt.Printf("\nrun done: %d blocks, %d readings published, storage Gini %.3f\n",
		res.ChainHeight, res.DataGenerated, res.StorageGini)

	// The last probe runs after production stopped at minute 24 plus the
	// 8-minute valid time: everything must have expired.
	last := observations[len(observations)-1]
	if last != 0 {
		log.Fatalf("expiry failed: %d readings still visible at the end", last)
	}
	fmt.Println("expiry verified: no stale readings remain visible")
}

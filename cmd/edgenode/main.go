// Command edgenode runs one live edge-blockchain node over real TCP —
// the paper's deployment style, minus Docker. All nodes of a deployment
// must share -roster-seed, -roster-size, -genesis and -epoch; each picks a
// distinct -index.
//
// Terminal A:
//
//	edgenode -index 0 -listen 127.0.0.1:7000 -epoch 1700000000
//
// Terminal B:
//
//	edgenode -index 1 -listen 127.0.0.1:7001 -peers 127.0.0.1:7000 \
//	         -epoch 1700000000 -publish 10s
//
// The demo roster derives every node's key pair deterministically from the
// roster seed; production deployments would distribute real public keys
// instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/livenode"
	"repro/internal/pos"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(log.Ltime)
	var (
		index      = flag.Int("index", 0, "this node's position in the roster")
		rosterSeed = flag.Int64("roster-seed", 1, "seed deriving all roster key pairs (demo only)")
		rosterSize = flag.Int("roster-size", 5, "number of accounts in the roster")
		listen     = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		peersFlag  = flag.String("peers", "", "comma-separated peer addresses to connect to")
		t0         = flag.Duration("t0", 10*time.Second, "expected block interval")
		genesis    = flag.Int64("genesis", 42, "genesis seed (must match across the deployment)")
		epochUnix  = flag.Int64("epoch", 0, "shared epoch as unix seconds (must match; default: now, fine for the first node)")
		publish    = flag.Duration("publish", 0, "publish a demo data item this often (0 = never)")
		dataDir    = flag.String("data-dir", "", "directory for the durable block WAL and data store (empty = in-memory)")
		syncBatch  = flag.Int("sync-batch", 0, "blocks per incremental-sync batch (0 = default 64)")
		syncTmo    = flag.Duration("sync-timeout", 0, "per-batch sync response deadline (0 = default 2s)")
		verifyWrk  = flag.Int("verify-workers", 0, "parallel signature-verification workers for sync suffixes (0 = default 4)")
		snapEvery  = flag.Int("snapshot-every", 0, "ledger snapshot cadence in blocks, for incremental fork adoption (0 = default 32)")
		pruneDepth = flag.Int("prune-depth", 0, "finite-lifetime chain: discard block bodies this far below the tip, with checkpoint finality at the same interval (0 = keep everything)")
		bootSnap   = flag.Bool("bootstrap-snapshot", false, "on a fresh start, install the first peer's finalized state snapshot instead of syncing history from genesis")
		fsync      = flag.String("fsync", "batch", "WAL fsync policy: always|batch|none")
		metricsAdr = flag.String("metrics-addr", "", "HTTP address serving /metrics (JSON) and /debug/vars (expvar); empty = disabled")
		repairWrk  = flag.Int("repair-workers", 0, "concurrent background re-replication fetches (0 = repair disabled)")
		repairRate = flag.Int("repair-rate", 0, "repair traffic budget in bytes/sec (0 = default 4096)")
		repairHyst = flag.Duration("repair-hysteresis", 0, "extra silence before a suspect peer is declared dead (0 = default 10s)")
		gossip     = flag.Bool("gossip", true, "inv-style gossip block relay; false = legacy full-mesh block push")
		gossipFan  = flag.Int("gossip-fanout", 0, "peers each block announce is relayed to (0 = default 6)")
		metaGossip = flag.Bool("meta-gossip", true, "inv-style metadata relay; false = legacy full-mesh metadata push")
		metaFan    = flag.Int("meta-fanout", 0, "peers each metadata announce is relayed to (0 = follow -gossip-fanout)")
		probeFan   = flag.Int("probe-fanout", 0, "peers probed per liveness tick (0 = default 4); negative = legacy per-tick heartbeat broadcast")
	)
	flag.Parse()

	gossipFanout := *gossipFan
	if !*gossip {
		if *gossipFan > 0 {
			log.Fatal("-gossip-fanout set but -gossip=false")
		}
		gossipFanout = -1 // legacy full-mesh push
	} else if *gossipFan < 0 {
		log.Fatalf("-gossip-fanout %d invalid: want >= 0 (or -gossip=false to disable)", *gossipFan)
	}
	metaFanout := *metaFan
	if !*metaGossip {
		if *metaFan > 0 {
			log.Fatal("-meta-fanout set but -meta-gossip=false")
		}
		metaFanout = -1 // legacy full-mesh push
	} else if *metaFan < 0 {
		log.Fatalf("-meta-fanout %d invalid: want >= 0 (or -meta-gossip=false to disable)", *metaFan)
	}

	if *index < 0 || *index >= *rosterSize {
		log.Fatalf("index %d out of roster [0,%d)", *index, *rosterSize)
	}
	// Validate -fsync up front: a typo must be a startup error even when no
	// -data-dir makes the policy moot, not a silently ignored flag.
	policy, err := store.ParseSyncPolicy(*fsync)
	if err != nil {
		log.Fatal(err)
	}
	if *dataDir != "" {
		if st, err := os.Stat(*dataDir); err == nil && !st.IsDir() {
			log.Fatalf("-data-dir %s exists but is not a directory", *dataDir)
		}
	}
	rng := rand.New(rand.NewSource(*rosterSeed))
	idents := make([]*identity.Identity, *rosterSize)
	accounts := make([]identity.Address, *rosterSize)
	for i := range idents {
		idents[i] = identity.GenerateSeeded(rng)
		accounts[i] = idents[i].Address()
	}
	epoch := time.Now()
	if *epochUnix > 0 {
		epoch = time.Unix(*epochUnix, 0)
	}

	reg := telemetry.NewRegistry()

	var nodeStore core.Store
	if *dataDir != "" {
		st, err := store.Open(*dataDir, store.Options{Sync: policy, Metrics: store.NewMetrics(reg)})
		if err != nil {
			log.Fatal(err)
		}
		if n := len(st.RecoveredBlocks()); n > 0 {
			log.Printf("recovered %d blocks from %s", n, *dataDir)
		}
		if _, _, h, ok := st.RecoveredSnapshot(); ok {
			log.Printf("recovered state snapshot at height %d from %s", h, *dataDir)
		}
		nodeStore = st
	}

	params := pos.DefaultParams()
	params.T0 = *t0
	node, err := livenode.New(livenode.Config{
		Identity:      idents[*index],
		Accounts:      accounts,
		PoS:           params,
		GenesisSeed:   *genesis,
		Epoch:         epoch,
		ListenAddr:    *listen,
		Store:         nodeStore,
		Telemetry:     reg,
		SyncBatchSize: *syncBatch,
		SyncTimeout:   *syncTmo,
		VerifyWorkers: *verifyWrk,
		SnapshotEvery: *snapEvery,
		GossipFanout:  gossipFanout,
		MetaFanout:    metaFanout,

		PruneDepth:        *pruneDepth,
		BootstrapSnapshot: *bootSnap,

		RepairWorkers:    *repairWrk,
		RepairRate:       *repairRate,
		RepairHysteresis: *repairHyst,
		ProbeFanout:      *probeFan,
		OnBlock: func(b *block.Block) {
			log.Printf("adopted block %d by %s (%d items)", b.Index, b.Miner.Short(), len(b.Items))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	log.Printf("node %d (%s) listening on %s, epoch %d, t0 %v",
		*index, accounts[*index].Short(), node.Addr(), epoch.Unix(), *t0)

	if *metricsAdr != "" {
		go func() {
			log.Printf("metrics on http://%s/metrics (expvar at /debug/vars)", *metricsAdr)
			if err := http.ListenAndServe(*metricsAdr, telemetry.Handler(reg)); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	if *peersFlag != "" {
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimSpace(p); p != "" {
				if err := node.Connect(p); err != nil {
					log.Printf("connect %s: %v", p, err)
				}
			}
		}
	}

	if *publish > 0 {
		go func() {
			seq := 0
			for range time.Tick(*publish) {
				seq++
				content := fmt.Sprintf("demo data %d from node %d at %s", seq, *index, time.Now())
				it, err := node.Publish([]byte(content), "Demo/Tick", "cli")
				if err != nil {
					log.Printf("publish: %v", err)
					continue
				}
				log.Printf("published %s (%d bytes)", it.ID.Short(), len(content))
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down at height %d", node.Height())
}

// Command minebench compares the mining energy of Proof-of-Work and the
// paper's Proof-of-Stake on the calibrated Galaxy S8 battery model
// (Fig. 6). With -real it performs the actual SHA-256 work instead of
// sampling the geometric attempt distribution.
//
// Usage:
//
//	minebench                 # paper settings: 16-bit difficulty, 25 s blocks
//	minebench -real -bits 14  # really hash, at reduced difficulty
package main

import (
	"flag"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/pow"
)

func main() {
	log.SetFlags(0)
	var (
		bits   = flag.Int("bits", pow.DefaultDifficultyBits, "PoW difficulty in leading zero bits (paper: 16)")
		blocks = flag.Int("blocks", 330, "blocks to mine per algorithm")
		mean   = flag.Duration("t", 25*time.Second, "mean block time (paper: 25 s)")
		real   = flag.Bool("real", false, "perform real SHA-256 proof-of-work")
		seed   = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	res, err := experiments.RunFig6(experiments.Fig6Config{
		MeanBlockTime:  *mean,
		DifficultyBits: *bits,
		Blocks:         *blocks,
		Seed:           *seed,
		RealHashing:    *real,
	})
	if err != nil {
		log.Fatal(err)
	}
	experiments.PrintFig6(os.Stdout, res)
}

// Command figures regenerates the paper's evaluation figures and the
// DESIGN.md ablations at full paper scale (500 simulated minutes per
// cell). Expect a few minutes of wall time for the complete set.
//
// Usage:
//
//	figures -fig 4            # Fig. 4 sweep
//	figures -fig 5            # Fig. 5 placement comparison
//	figures -fig 6            # Fig. 6 PoW vs PoS energy
//	figures -fig all          # everything including ablations
//	figures -ablation a1      # one ablation (a1|a2|a3|a4)
//	figures -duration 100m    # shrink the sweep for a quick look
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	var (
		fig      = flag.String("fig", "", "figure to regenerate: 4 | 5 | 6 | all")
		ablation = flag.String("ablation", "", "ablation to run: a1 | a2 | a3 | a4 | a5 | a6")
		duration = flag.Duration("duration", 500*time.Minute, "simulated duration per cell")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if *fig == "" && *ablation == "" {
		flag.Usage()
		os.Exit(2)
	}

	runFig := func(name string) {
		start := time.Now()
		switch name {
		case "4":
			rows, err := experiments.RunFig4(experiments.Fig4Config{Duration: *duration, Seed: *seed})
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintFig4(os.Stdout, rows)
		case "5":
			rows, err := experiments.RunFig5(experiments.Fig5Config{Duration: *duration, Seed: *seed})
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintFig5(os.Stdout, rows)
		case "6":
			res, err := experiments.RunFig6(experiments.Fig6Config{Seed: *seed})
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintFig6(os.Stdout, res)
		default:
			log.Fatalf("unknown figure %q", name)
		}
		fmt.Printf("(fig %s regenerated in %v)\n\n", name, time.Since(start).Round(time.Second))
	}

	runAblation := func(name string) {
		start := time.Now()
		switch name {
		case "a1":
			rows, err := experiments.RunFDCWeightAblation(nil, 30, *duration/5, *seed)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintFDCWeightAblation(os.Stdout, rows)
		case "a2":
			rows, err := experiments.RunRecentCacheAblation(nil, 20, *duration/5, *seed)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintRecentCacheAblation(os.Stdout, rows)
		case "a3":
			rows, err := experiments.RunRaftHeartbeatAblation(nil, 15, *duration/10, *seed)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintRaftHeartbeatAblation(os.Stdout, rows)
		case "a4":
			rows, err := experiments.RunUFLSolverAblation(16, 50, *seed)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintUFLSolverAblation(os.Stdout, rows)
		case "a5":
			rows, err := experiments.RunConsensusEnergyAblation(20, *duration/5, *seed)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintConsensusEnergyAblation(os.Stdout, rows)
		case "a6":
			rows, err := experiments.RunMigrationAblation(20, *duration/2, *seed)
			if err != nil {
				log.Fatal(err)
			}
			experiments.PrintMigrationAblation(os.Stdout, rows)
		default:
			log.Fatalf("unknown ablation %q", name)
		}
		fmt.Printf("(ablation %s done in %v)\n\n", name, time.Since(start).Round(time.Second))
	}

	switch {
	case *fig == "all":
		for _, f := range []string{"4", "5", "6"} {
			runFig(f)
		}
		for _, a := range []string{"a1", "a2", "a3", "a4", "a5", "a6"} {
			runAblation(a)
		}
	case *fig != "":
		runFig(*fig)
	}
	if *ablation != "" {
		runAblation(*ablation)
	}
}

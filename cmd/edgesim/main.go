// Command edgesim runs one edge-blockchain simulation with the paper's
// parameters (overridable by flags) and prints the measured results.
//
// Usage:
//
//	edgesim -nodes 30 -rate 2 -duration 500m -placement optimal -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	edgechain "repro"
)

func main() {
	log.SetFlags(0)
	var (
		nodes     = flag.Int("nodes", 30, "number of edge nodes (paper: 10-50)")
		rate      = flag.Float64("rate", 1, "data items generated per minute network-wide (paper: 1-3)")
		duration  = flag.Duration("duration", 500*time.Minute, "simulated run time (paper: 500 min)")
		placement = flag.String("placement", "optimal", "data placement strategy: optimal | random")
		seed      = flag.Int64("seed", 1, "random seed; same seed, same run")
		raft      = flag.Bool("raft", false, "run the Raft general-consensus layer alongside the chain")
		blockTime = flag.Duration("t0", time.Minute, "expected time between blocks")
		consensus = flag.String("consensus", "pos", "mining consensus: pos | pow")
		migrate   = flag.Int("migrate", 0, "max data migrations per block (0 = off)")
		verbose   = flag.Bool("v", false, "print per-node detail")

		// Open-loop streaming workload knobs: setting any of them replaces
		// the built-in constant-rate generator with a pre-drained stream
		// (diurnal/burst arrival modulation, Zipf type skew, multiplexed
		// logical users).
		diurnal      = flag.Duration("diurnal", 0, "diurnal rate period (0 = constant rate)")
		diurnalAmp   = flag.Float64("diurnal-amp", 0.5, "diurnal amplitude in [0,1]")
		burstEvery   = flag.Duration("burst-every", 0, "flash-crowd window period (0 = none)")
		burstDur     = flag.Duration("burst-dur", time.Minute, "flash-crowd window length")
		burstOffset  = flag.Duration("burst-offset", 0, "first flash-crowd window start")
		burstFactor  = flag.Float64("burst-factor", 10, "rate multiplier inside a flash-crowd window")
		typeZipf     = flag.Float64("type-zipf", 0, "Zipf exponent for data-type popularity (>1 to enable)")
		users        = flag.Int64("users", 0, "logical users multiplexed over the nodes (0 = per-node model)")
		userZipf     = flag.Float64("user-zipf", 0, "Zipf exponent for user activity (>1 to enable)")
		sessionEpoch = flag.Duration("session-epoch", 0, "user session re-keying period (mobility; 0 = pinned)")
	)
	flag.Parse()

	cfg := edgechain.DefaultConfig(*nodes)
	cfg.DataRatePerMin = *rate
	cfg.Seed = *seed
	cfg.EnableRaft = *raft
	cfg.PoS.T0 = *blockTime
	switch *placement {
	case "optimal":
		cfg.Placement = edgechain.PlaceOptimal
	case "random":
		cfg.Placement = edgechain.PlaceRandom
	default:
		log.Fatalf("unknown placement %q (want optimal or random)", *placement)
	}
	switch *consensus {
	case "pos":
		cfg.Consensus = edgechain.ConsensusPoS
	case "pow":
		cfg.Consensus = edgechain.ConsensusPoW
	default:
		log.Fatalf("unknown consensus %q (want pos or pow)", *consensus)
	}
	cfg.MigrateMaxPerBlock = *migrate

	streaming := *diurnal > 0 || *burstEvery > 0 || *typeZipf > 1 || *users > 0
	if streaming {
		sc := edgechain.StreamWorkloadConfig{
			Duration:   *duration,
			RatePerMin: *rate,
			NumNodes:   *nodes,
			Seed:       *seed,
		}
		if *diurnal > 0 {
			sc.DiurnalPeriod = *diurnal
			sc.DiurnalAmplitude = *diurnalAmp
		}
		if *burstEvery > 0 {
			sc.BurstEvery = *burstEvery
			sc.BurstDuration = *burstDur
			sc.BurstOffset = *burstOffset
			sc.BurstFactor = *burstFactor
		}
		if *typeZipf > 1 {
			sc.TypeZipfS = *typeZipf
		}
		if *users > 0 {
			sc.Users = *users
			if *userZipf > 1 {
				sc.UserZipfS = *userZipf
			}
			sc.SessionEpoch = *sessionEpoch
		}
		// With a trace, consumers come from the trace events, so bake the
		// sim's own pool convention (RequesterFraction of nodes) into the
		// stream instead of leaving requests off.
		sc.Requesters = edgechain.PickRequesterPool(*nodes, cfg.RequesterFraction,
			rand.New(rand.NewSource(*seed)))
		sc.RequestsPerItem = cfg.RequestsPerItem
		stream, err := edgechain.NewWorkloadStream(sc)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Trace = stream.Drain()
	}

	start := time.Now()
	sys, err := edgechain.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(*duration); err != nil {
		log.Fatal(err)
	}
	res := sys.Results()

	fmt.Printf("edgesim: %d nodes, %.0f items/min, %v simulated in %v wall time (seed %d)\n",
		res.NumNodes, res.DataRatePerMin, *duration, time.Since(start).Round(time.Millisecond), *seed)
	fmt.Printf("  placement:        %v\n", res.Placement)
	if streaming {
		fmt.Printf("  workload:         open-loop stream (%d events drained)\n", cfg.Trace.Len())
	}
	fmt.Printf("  chain height:     %d blocks (t0 = %v)\n", res.ChainHeight, *blockTime)
	fmt.Printf("  data generated:   %d items\n", res.DataGenerated)
	fmt.Printf("  deliveries:       %d (mean %.2f s, p50 %.2f s, p95 %.2f s, failed %d)\n",
		res.Delivery.Count, res.Delivery.Mean, res.Delivery.P50, res.Delivery.P95, res.FailedRequests)
	fmt.Printf("  storage gini:     %.4f\n", res.StorageGini)
	fmt.Printf("  avg tx per node:  %.1f MB (total %.1f MB)\n",
		res.AvgTxBytesPerNode/(1<<20), float64(res.TotalTxBytes)/(1<<20))
	fmt.Printf("  gap recoveries:   %d, full-chain syncs: %d, failed fetches: %d, migrations: %d\n",
		res.GapRecoveries, res.ForkReplacements, res.FailedFetches, res.Migrations)
	fmt.Printf("  energy:           %.1f J total (%s mining + radio), %.2f J/block\n",
		res.TotalEnergyJ, res.Consensus, res.EnergyPerBlockJ)
	fmt.Println("  traffic by kind:")
	for _, k := range []string{"data", "block", "meta", "ctrl", "raft"} {
		if b, ok := res.KindBytes[k]; ok {
			fmt.Printf("    %-6s %10.2f MB\n", k, float64(b)/(1<<20))
		}
	}
	if *verbose {
		fmt.Println("  per-node storage / tx:")
		for i, c := range res.StorageCounts {
			fmt.Printf("    node %2d: %4d items stored, %8.1f MB sent\n",
				i, c, float64(res.PerNodeTxBytes[i])/(1<<20))
		}
	}
	os.Exit(0)
}

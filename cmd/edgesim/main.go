// Command edgesim runs one edge-blockchain simulation with the paper's
// parameters (overridable by flags) and prints the measured results.
//
// Usage:
//
//	edgesim -nodes 30 -rate 2 -duration 500m -placement optimal -seed 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	edgechain "repro"
)

func main() {
	log.SetFlags(0)
	var (
		nodes     = flag.Int("nodes", 30, "number of edge nodes (paper: 10-50)")
		rate      = flag.Float64("rate", 1, "data items generated per minute network-wide (paper: 1-3)")
		duration  = flag.Duration("duration", 500*time.Minute, "simulated run time (paper: 500 min)")
		placement = flag.String("placement", "optimal", "data placement strategy: optimal | random")
		seed      = flag.Int64("seed", 1, "random seed; same seed, same run")
		raft      = flag.Bool("raft", false, "run the Raft general-consensus layer alongside the chain")
		blockTime = flag.Duration("t0", time.Minute, "expected time between blocks")
		consensus = flag.String("consensus", "pos", "mining consensus: pos | pow")
		migrate   = flag.Int("migrate", 0, "max data migrations per block (0 = off)")
		verbose   = flag.Bool("v", false, "print per-node detail")
	)
	flag.Parse()

	cfg := edgechain.DefaultConfig(*nodes)
	cfg.DataRatePerMin = *rate
	cfg.Seed = *seed
	cfg.EnableRaft = *raft
	cfg.PoS.T0 = *blockTime
	switch *placement {
	case "optimal":
		cfg.Placement = edgechain.PlaceOptimal
	case "random":
		cfg.Placement = edgechain.PlaceRandom
	default:
		log.Fatalf("unknown placement %q (want optimal or random)", *placement)
	}
	switch *consensus {
	case "pos":
		cfg.Consensus = edgechain.ConsensusPoS
	case "pow":
		cfg.Consensus = edgechain.ConsensusPoW
	default:
		log.Fatalf("unknown consensus %q (want pos or pow)", *consensus)
	}
	cfg.MigrateMaxPerBlock = *migrate

	start := time.Now()
	sys, err := edgechain.NewSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(*duration); err != nil {
		log.Fatal(err)
	}
	res := sys.Results()

	fmt.Printf("edgesim: %d nodes, %.0f items/min, %v simulated in %v wall time (seed %d)\n",
		res.NumNodes, res.DataRatePerMin, *duration, time.Since(start).Round(time.Millisecond), *seed)
	fmt.Printf("  placement:        %v\n", res.Placement)
	fmt.Printf("  chain height:     %d blocks (t0 = %v)\n", res.ChainHeight, *blockTime)
	fmt.Printf("  data generated:   %d items\n", res.DataGenerated)
	fmt.Printf("  deliveries:       %d (mean %.2f s, p50 %.2f s, p95 %.2f s, failed %d)\n",
		res.Delivery.Count, res.Delivery.Mean, res.Delivery.P50, res.Delivery.P95, res.FailedRequests)
	fmt.Printf("  storage gini:     %.4f\n", res.StorageGini)
	fmt.Printf("  avg tx per node:  %.1f MB (total %.1f MB)\n",
		res.AvgTxBytesPerNode/(1<<20), float64(res.TotalTxBytes)/(1<<20))
	fmt.Printf("  gap recoveries:   %d, full-chain syncs: %d, failed fetches: %d, migrations: %d\n",
		res.GapRecoveries, res.ForkReplacements, res.FailedFetches, res.Migrations)
	fmt.Printf("  energy:           %.1f J total (%s mining + radio), %.2f J/block\n",
		res.TotalEnergyJ, res.Consensus, res.EnergyPerBlockJ)
	fmt.Println("  traffic by kind:")
	for _, k := range []string{"data", "block", "meta", "ctrl", "raft"} {
		if b, ok := res.KindBytes[k]; ok {
			fmt.Printf("    %-6s %10.2f MB\n", k, float64(b)/(1<<20))
		}
	}
	if *verbose {
		fmt.Println("  per-node storage / tx:")
		for i, c := range res.StorageCounts {
			fmt.Printf("    node %2d: %4d items stored, %8.1f MB sent\n",
				i, c, float64(res.PerNodeTxBytes[i])/(1<<20))
		}
	}
	os.Exit(0)
}

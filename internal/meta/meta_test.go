package meta

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/geo"
	"repro/internal/identity"
)

func sampleItem(t *testing.T, rng *rand.Rand) (*Item, *identity.Identity) {
	t.Helper()
	id := identity.GenerateSeeded(rng)
	content := []byte("PM2.5=17ug/m3 at sensor 42")
	it := &Item{
		ID:           HashData(content),
		Type:         "AirQuality/PM2.5",
		Produced:     11 * time.Minute,
		Location:     geo.Point{X: 40.72, Y: -74.00},
		LocationName: "NewYork,NY",
		ValidFor:     1440 * time.Minute,
		Properties:   "",
		DataSize:     1 << 20,
	}
	it.Sign(id)
	return it, id
}

func TestSignAndVerify(t *testing.T) {
	it, _ := sampleItem(t, rand.New(rand.NewSource(1)))
	if err := it.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyUnsigned(t *testing.T) {
	it := &Item{Type: "x"}
	if err := it.Verify(); err != ErrUnsigned {
		t.Fatalf("err = %v, want ErrUnsigned", err)
	}
}

func TestVerifyRejectsFieldTampering(t *testing.T) {
	base, _ := sampleItem(t, rand.New(rand.NewSource(2)))
	mutations := map[string]func(*Item){
		"type":      func(it *Item) { it.Type = "Picture/Traffic" },
		"time":      func(it *Item) { it.Produced++ },
		"location":  func(it *Item) { it.Location.X += 0.01 },
		"locname":   func(it *Item) { it.LocationName = "Nassau,NY" },
		"validfor":  func(it *Item) { it.ValidFor += time.Minute },
		"props":     func(it *Item) { it.Properties = "Camera" },
		"datasize":  func(it *Item) { it.DataSize++ },
		"id":        func(it *Item) { it.ID[0] ^= 1 },
		"signature": func(it *Item) { it.Signature[0] ^= 1 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			it := base.Clone()
			mutate(it)
			if err := it.Verify(); err == nil {
				t.Fatalf("tampered %s verified", name)
			}
		})
	}
}

func TestStoringNodesNotCoveredBySignature(t *testing.T) {
	it, _ := sampleItem(t, rand.New(rand.NewSource(3)))
	it.StoringNodes = []int{10, 11, 12, 15}
	if err := it.Verify(); err != nil {
		t.Fatalf("setting storing nodes broke the producer signature: %v", err)
	}
}

func TestVerifyData(t *testing.T) {
	content := []byte("the actual 1MB data item")
	it := &Item{ID: HashData(content)}
	if err := it.VerifyData(content); err != nil {
		t.Fatalf("VerifyData: %v", err)
	}
	if err := it.VerifyData([]byte("tampered")); err == nil {
		t.Fatal("tampered content accepted")
	}
}

func TestExpiry(t *testing.T) {
	it := &Item{Produced: 10 * time.Minute, ValidFor: 20 * time.Minute}
	if it.Expired(25 * time.Minute) {
		t.Fatal("expired before valid time elapsed")
	}
	if !it.Expired(31 * time.Minute) {
		t.Fatal("not expired after valid time")
	}
	forever := &Item{Produced: 10 * time.Minute, ValidFor: 0}
	if forever.Expired(1000 * time.Hour) {
		t.Fatal("zero ValidFor must never expire")
	}
}

func TestValidateAt(t *testing.T) {
	it, _ := sampleItem(t, rand.New(rand.NewSource(4)))
	if err := it.ValidateAt(it.Produced + time.Minute); err != nil {
		t.Fatalf("ValidateAt fresh: %v", err)
	}
	if err := it.ValidateAt(it.ExpiresAt() + time.Second); err == nil {
		t.Fatal("expired item validated")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	it, _ := sampleItem(t, rand.New(rand.NewSource(5)))
	it.StoringNodes = []int{16, 17, 26, 44}
	got, err := Decode(it.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, it) {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", got, it)
	}
	if err := got.Verify(); err != nil {
		t.Fatalf("decoded item fails verification: %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	it, _ := sampleItem(t, rand.New(rand.NewSource(6)))
	enc := it.Encode()
	if _, err := Decode(enc[:len(enc)/2]); err == nil {
		t.Fatal("truncated input decoded")
	}
	if _, err := Decode(append(enc, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty input decoded")
	}
}

// Property: Encode/Decode round-trips arbitrary field values.
func TestEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	id := identity.GenerateSeeded(rng)
	prop := func(typ, locName, props string, x, y float64, produced, validFor uint32, size uint16, storing []uint8) bool {
		it := &Item{
			ID:           HashData([]byte(typ + props)),
			Type:         typ,
			Produced:     time.Duration(produced) * time.Second,
			Location:     geo.Point{X: x, Y: y},
			LocationName: locName,
			ValidFor:     time.Duration(validFor) * time.Second,
			Properties:   props,
			DataSize:     int(size),
		}
		it.Sign(id)
		for _, s := range storing {
			it.StoringNodes = append(it.StoringNodes, int(s))
		}
		got, err := Decode(it.Encode())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, it)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestClone(t *testing.T) {
	it, _ := sampleItem(t, rand.New(rand.NewSource(8)))
	it.StoringNodes = []int{1, 2}
	cp := it.Clone()
	cp.StoringNodes[0] = 99
	cp.Signature[0] ^= 1
	if it.StoringNodes[0] == 99 {
		t.Fatal("Clone shares storing-node slice")
	}
	if err := it.Verify(); err != nil {
		t.Fatal("Clone shares signature slice")
	}
}

func TestQueryMatches(t *testing.T) {
	it, producer := sampleItem(t, rand.New(rand.NewSource(9)))
	other := identity.GenerateSeeded(rand.New(rand.NewSource(10)))
	tests := []struct {
		name string
		q    Query
		want bool
	}{
		{"empty matches", Query{}, true},
		{"type prefix hit", Query{TypePrefix: "AirQuality"}, true},
		{"type prefix miss", Query{TypePrefix: "Picture"}, false},
		{"near hit", Query{Near: it.Location, WithinMeters: 1}, true},
		{"near miss", Query{Near: geo.Point{X: 1000, Y: 1000}, WithinMeters: 1}, false},
		{"fresh hit", Query{ProducedAfter: 10 * time.Minute}, true},
		{"fresh miss", Query{ProducedAfter: 12 * time.Minute}, false},
		{"producer hit", Query{Producer: producer.Address()}, true},
		{"producer miss", Query{Producer: other.Address()}, false},
		{"all constraints", Query{TypePrefix: "Air", Near: it.Location, WithinMeters: 5, ProducedAfter: time.Minute, Producer: producer.Address()}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.q.Matches(it); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestEncodedSizeMatchesEncodeLength(t *testing.T) {
	it, _ := sampleItem(t, rand.New(rand.NewSource(11)))
	it.StoringNodes = []int{1, 2, 3}
	if it.EncodedSize() != len(it.Encode()) {
		t.Fatal("EncodedSize disagrees with Encode length")
	}
}

// Property: random garbage must never panic the decoder.
func TestDecodeGarbageProperty(t *testing.T) {
	prop := func(data []byte) bool {
		it, err := Decode(data)
		_ = it
		_ = err
		return true // reaching here means no panic
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Package meta implements metadata items (Section III-B).
//
// A metadata item is the small record stored in blocks in place of the
// actual data item. It carries the attributes from the paper's examples —
// data type, production time, location, producer account with signature,
// storing nodes, valid time, and free-form properties — plus the content
// hash and size needed to fetch and verify the real data.
//
// The producer signs every attribute except the storing-node list: storing
// nodes are computed by the network after the metadata is broadcast
// (Section IV-B), so they cannot be part of the producer's signature.
package meta

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"repro/internal/geo"
	"repro/internal/identity"
)

// DataID identifies a data item by the SHA-256 hash of its content.
type DataID [sha256.Size]byte

// String returns the hex form of the ID.
func (d DataID) String() string { return hex.EncodeToString(d[:]) }

// Short returns an abbreviated hex prefix for logs.
func (d DataID) Short() string { return hex.EncodeToString(d[:4]) }

// IsZero reports whether the ID is unset.
func (d DataID) IsZero() bool { return d == DataID{} }

// HashData computes the DataID for raw content.
func HashData(content []byte) DataID { return DataID(sha256.Sum256(content)) }

// Item is one metadata record. The zero value is not valid; use the
// producer-side constructor in package core or fill the fields and Sign.
type Item struct {
	// ID is the content hash of the data item this metadata describes.
	ID DataID
	// Type is the slash-separated data type, e.g. "AirQuality/PM2.5".
	Type string
	// Produced is the (simulated) production time.
	Produced time.Duration
	// Location is where the data was produced.
	Location geo.Point
	// LocationName is the human-readable place, e.g. "NewYork,NY".
	LocationName string
	// Producer is the account of the producing node.
	Producer identity.Address
	// ProducerPub is the producer's public key, spread with blocks so any
	// node can validate integrity (Section III-B2).
	ProducerPub ed25519.PublicKey
	// Signature is the producer's signature over SigningBytes.
	Signature []byte
	// StoringNodes lists the node IDs assigned to store the data item.
	// Filled by the miner when packing the block; excluded from the
	// producer signature.
	StoringNodes []int
	// ValidFor is how long the data remains valid (paper: minutes).
	ValidFor time.Duration
	// Properties is free-form extra information ("Camera", a public key...).
	Properties string
	// DataSize is the size of the actual data item in bytes.
	DataSize int
}

var (
	// ErrUnsigned is returned when verifying an item without a signature.
	ErrUnsigned = errors.New("meta: item is not signed")
	// ErrExpired is returned by ValidateAt for items past their valid time.
	ErrExpired = errors.New("meta: item expired")
)

func putString(buf *bytes.Buffer, s string) {
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(s)))
	buf.Write(lenb[:])
	buf.WriteString(s)
}

func putBytes(buf *bytes.Buffer, b []byte) {
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(b)))
	buf.Write(lenb[:])
	buf.Write(b)
}

func putUint64(buf *bytes.Buffer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	buf.Write(b[:])
}

func putFloat(buf *bytes.Buffer, f float64) {
	// Positions are non-negative field coordinates; encode the IEEE bits.
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], floatBits(f))
	buf.Write(b[:])
}

// SigningBytes returns the canonical encoding of every producer-attested
// field (everything except Signature and StoringNodes).
func (it *Item) SigningBytes() []byte {
	var buf bytes.Buffer
	buf.Write(it.ID[:])
	putString(&buf, it.Type)
	putUint64(&buf, uint64(it.Produced))
	putFloat(&buf, it.Location.X)
	putFloat(&buf, it.Location.Y)
	putString(&buf, it.LocationName)
	buf.Write(it.Producer[:])
	putBytes(&buf, it.ProducerPub)
	putUint64(&buf, uint64(it.ValidFor))
	putString(&buf, it.Properties)
	putUint64(&buf, uint64(it.DataSize))
	return buf.Bytes()
}

// Sign fills Producer, ProducerPub and Signature using the identity.
func (it *Item) Sign(id *identity.Identity) {
	it.Producer = id.Address()
	it.ProducerPub = append(ed25519.PublicKey(nil), id.PublicKey()...)
	it.Signature = id.Sign(it.SigningBytes())
}

// Verify checks the producer signature and the key/address binding.
func (it *Item) Verify() error {
	if len(it.Signature) == 0 {
		return ErrUnsigned
	}
	if err := identity.Verify(it.ProducerPub, it.Producer, it.SigningBytes(), it.Signature); err != nil {
		return fmt.Errorf("meta: item %s: %w", it.ID.Short(), err)
	}
	return nil
}

// VerifyData checks that content matches the item's content hash, proving a
// storing node did not tamper with the data (Section III-B2).
func (it *Item) VerifyData(content []byte) error {
	if HashData(content) != it.ID {
		return fmt.Errorf("meta: item %s: content hash mismatch", it.ID.Short())
	}
	return nil
}

// ExpiresAt returns the simulated time at which the item expires. Items
// with zero ValidFor never expire.
func (it *Item) ExpiresAt() time.Duration {
	if it.ValidFor == 0 {
		return 1<<63 - 1
	}
	return it.Produced + it.ValidFor
}

// Expired reports whether the item is past its valid time at now.
func (it *Item) Expired(now time.Duration) bool { return now > it.ExpiresAt() }

// ValidateAt runs both the signature check and the expiry check.
func (it *Item) ValidateAt(now time.Duration) error {
	if err := it.Verify(); err != nil {
		return err
	}
	if it.Expired(now) {
		return fmt.Errorf("meta: item %s: %w", it.ID.Short(), ErrExpired)
	}
	return nil
}

// EncodedSize is the wire size of the item in bytes, used for network
// accounting and block-size accounting.
func (it *Item) EncodedSize() int {
	return len(it.Encode())
}

// Encode serializes the full item (including signature and storing nodes)
// with the canonical binary layout.
func (it *Item) Encode() []byte {
	var buf bytes.Buffer
	buf.Write(it.SigningBytes())
	putBytes(&buf, it.Signature)
	putUint64(&buf, uint64(len(it.StoringNodes)))
	for _, n := range it.StoringNodes {
		putUint64(&buf, uint64(int64(n)))
	}
	return buf.Bytes()
}

// Decode parses an item encoded by Encode.
func Decode(b []byte) (*Item, error) {
	r := &reader{b: b}
	it := &Item{}
	r.bytes(it.ID[:])
	it.Type = r.str()
	it.Produced = time.Duration(r.uint64())
	it.Location.X = r.float()
	it.Location.Y = r.float()
	it.LocationName = r.str()
	r.bytes(it.Producer[:])
	it.ProducerPub = r.blob()
	it.ValidFor = time.Duration(r.uint64())
	it.Properties = r.str()
	it.DataSize = int(r.uint64())
	it.Signature = r.blob()
	n := int(r.uint64())
	if r.err == nil && n > len(b) {
		return nil, fmt.Errorf("meta: decode: absurd storing-node count %d", n)
	}
	if n > 0 && r.err == nil {
		it.StoringNodes = make([]int, n)
		for i := range it.StoringNodes {
			it.StoringNodes[i] = int(int64(r.uint64()))
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("meta: decode: %w", r.err)
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("meta: decode: %d trailing bytes", len(b)-r.off)
	}
	return it, nil
}

// Clone returns a deep copy; blocks hold copies so later mutation of the
// miner's pool cannot alter chained content.
func (it *Item) Clone() *Item {
	cp := *it
	cp.ProducerPub = append(ed25519.PublicKey(nil), it.ProducerPub...)
	cp.Signature = append([]byte(nil), it.Signature...)
	cp.StoringNodes = append([]int(nil), it.StoringNodes...)
	return &cp
}

// Query matches metadata items by type prefix, location radius and
// freshness; zero fields match everything. This is how consumers "search
// what [they] demand" in the metadata of received blocks (Section III-B1).
type Query struct {
	// TypePrefix matches items whose Type starts with this prefix.
	TypePrefix string
	// Near/WithinMeters restrict to items produced within the radius.
	Near         geo.Point
	WithinMeters float64
	// ProducedAfter restricts to items produced strictly after this time.
	ProducedAfter time.Duration
	// Producer restricts to one producer account.
	Producer identity.Address
}

// Matches reports whether the item satisfies every set constraint.
func (q Query) Matches(it *Item) bool {
	if q.TypePrefix != "" && !hasPrefix(it.Type, q.TypePrefix) {
		return false
	}
	if q.WithinMeters > 0 && geo.Dist(q.Near, it.Location) > q.WithinMeters {
		return false
	}
	if q.ProducedAfter > 0 && it.Produced <= q.ProducedAfter {
		return false
	}
	if !q.Producer.IsZero() && it.Producer != q.Producer {
		return false
	}
	return true
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

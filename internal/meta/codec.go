package meta

import (
	"encoding/binary"
	"errors"
	"math"
)

// errTruncated reports a short buffer during decoding.
var errTruncated = errors.New("truncated input")

func floatBits(f float64) uint64 { return math.Float64bits(f) }

// reader is a tiny cursor over a byte slice that records the first error
// and turns all subsequent reads into no-ops.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = errTruncated
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) bytes(dst []byte) {
	src := r.take(len(dst))
	if r.err == nil {
		copy(dst, src)
	}
}

func (r *reader) uint64() uint64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) uint32() uint32 {
	b := r.take(4)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) float() float64 {
	return math.Float64frombits(r.uint64())
}

func (r *reader) str() string {
	n := int(r.uint32())
	b := r.take(n)
	if r.err != nil {
		return ""
	}
	return string(b)
}

func (r *reader) blob() []byte {
	n := int(r.uint32())
	b := r.take(n)
	if r.err != nil {
		return nil
	}
	return append([]byte(nil), b...)
}

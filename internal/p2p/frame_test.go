package p2p

import (
	"bytes"
	"encoding/binary"
	"io"
	"runtime"
	"testing"
)

// frame builds a raw wire frame: [4-byte length][1-byte type][payload].
func frame(frameType byte, payload []byte) []byte {
	out := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(out[:4], uint32(len(payload)+1))
	out[4] = frameType
	copy(out[5:], payload)
	return out
}

// maxClaim returns a header claiming exactly MaxFrameSize bytes follow.
func maxClaim() []byte {
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, MaxFrameSize)
	return hdr
}

func TestReadFrameTable(t *testing.T) {
	oversize := make([]byte, 4)
	binary.BigEndian.PutUint32(oversize, MaxFrameSize+1)

	cases := []struct {
		name    string
		input   []byte
		wantErr bool
		wantFT  byte
		wantPay []byte
	}{
		{name: "empty input", input: nil, wantErr: true},
		{name: "torn header", input: []byte{0x00, 0x00}, wantErr: true},
		{name: "zero-length frame", input: []byte{0, 0, 0, 0}, wantErr: true},
		{name: "oversize length", input: oversize, wantErr: true},
		{name: "max oversize length", input: []byte{0xff, 0xff, 0xff, 0xff}, wantErr: true},
		{name: "torn payload", input: []byte{0, 0, 0, 10, FrameBlock, 'x'}, wantErr: true},
		{name: "truncated huge claim", input: append(maxClaim(), FrameChain, 'a', 'b'), wantErr: true},
		{name: "header-only huge claim", input: maxClaim(), wantErr: true},
		{name: "exact-cap claim torn", input: append(maxClaim(), FrameData), wantErr: true},
		{name: "type-only frame", input: frame(FrameChainRequest, nil), wantFT: FrameChainRequest, wantPay: []byte{}},
		{name: "payload frame", input: frame(FrameMeta, []byte("hello")), wantFT: FrameMeta, wantPay: []byte("hello")},
		// readFrame is type-agnostic: unknown types surface to the
		// handler, which ignores what it does not understand.
		{name: "unknown frame type", input: frame(0xEE, []byte{1, 2}), wantFT: 0xEE, wantPay: []byte{1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ft, payload, err := readFrame(bytes.NewReader(tc.input))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("readFrame(%x) succeeded, want error", tc.input)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if ft != tc.wantFT || !bytes.Equal(payload, tc.wantPay) {
				t.Fatalf("got type %#x payload %x, want %#x %x", ft, payload, tc.wantFT, tc.wantPay)
			}
		})
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, FrameData, make([]byte, MaxFrameSize)); err == nil {
		t.Fatal("oversize frame written")
	}
	if buf.Len() != 0 {
		t.Fatal("oversize write left partial bytes")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("ab"), 4096)}
	for _, p := range payloads {
		var buf bytes.Buffer
		if err := writeFrame(&buf, FrameBlock, p); err != nil {
			t.Fatal(err)
		}
		ft, got, err := readFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if ft != FrameBlock || !bytes.Equal(got, p) {
			t.Fatalf("round trip mangled payload of %d bytes", len(p))
		}
	}
}

// TestReadFrameDuplicateTypeStream reads consecutive frames of the same
// type from one connection's byte stream: framing must not desynchronize
// and each payload must come back intact.
func TestReadFrameDuplicateTypeStream(t *testing.T) {
	var wire bytes.Buffer
	payloads := [][]byte{[]byte("first"), []byte("first"), []byte("second"), {}}
	for _, p := range payloads {
		wire.Write(frame(FrameBlock, p))
	}
	for i, want := range payloads {
		ft, got, err := readFrame(&wire)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ft != FrameBlock || !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got type %#x payload %q, want %q", i, ft, got, want)
		}
	}
	if _, _, err := readFrame(&wire); err == nil {
		t.Fatal("read past final frame succeeded")
	}
}

// TestReadFrameBoundedAllocation verifies a forged huge length prefix with
// no bytes behind it cannot make readFrame commit the claimed memory: the
// chunked reader must fail after at most one allocation step.
func TestReadFrameBoundedAllocation(t *testing.T) {
	lie := append(maxClaim(), FrameData, 'x', 'y', 'z')
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const rounds = 8
	for i := 0; i < rounds; i++ {
		if _, _, err := readFrame(bytes.NewReader(lie)); err == nil {
			t.Fatal("truncated huge claim parsed")
		}
	}
	runtime.ReadMemStats(&after)
	// A naive make([]byte, size) would allocate rounds×64 MiB; the chunked
	// reader stays near rounds×2×frameAllocChunk. 16 MiB of slack absorbs
	// runtime noise while still catching a single full-size allocation.
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 16<<20 {
		t.Fatalf("readFrame allocated %d bytes across %d truncated huge claims", grew, rounds)
	}
}

// FuzzReadFrame asserts readFrame never panics, never returns a payload
// beyond the frame cap, and never fabricates bytes it did not read, for
// arbitrary wire bytes. Frames that parse must round-trip back to
// identical bytes.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add(frame(FrameHello, []byte("127.0.0.1:7000")))
	// Malformed hellos serveConn must reject: empty and oversized payloads.
	f.Add(frame(FrameHello, nil))
	f.Add(frame(FrameHello, make([]byte, MaxHelloLen+1)))
	f.Add(frame(0xEE, []byte{1, 2, 3}))
	// Truncated frames: declared length exceeds what follows.
	f.Add(frame(FrameBlock, []byte("truncated"))[:7])
	f.Add(append(maxClaim(), FrameChain, 'a'))
	f.Add(maxClaim())
	// Oversized declared lengths, with and without trailing bytes.
	f.Add(func() []byte {
		hdr := make([]byte, 4)
		binary.BigEndian.PutUint32(hdr, MaxFrameSize+1)
		return append(hdr, make([]byte, 64)...)
	}())
	// Duplicate-type frames back to back on one stream.
	f.Add(append(frame(FrameMeta, []byte("dup")), frame(FrameMeta, []byte("dup"))...))
	f.Add(append(frame(FrameChainRequest, nil), frame(FrameChainRequest, nil)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload)+1 > MaxFrameSize {
			t.Fatalf("payload of %d bytes exceeds cap", len(payload))
		}
		if len(payload)+5 > len(data) {
			t.Fatalf("payload of %d bytes fabricated from %d input bytes", len(payload), len(data))
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, ft, payload); err != nil {
			t.Fatalf("re-encode of parsed frame failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data[:buf.Len()]) {
			t.Fatal("re-encoded frame differs from wire bytes")
		}
		if _, err := io.Copy(io.Discard, &buf); err != nil {
			t.Fatal(err)
		}
	})
}

package memnet

import (
	"testing"
	"time"

	"repro/internal/p2p"
)

type recorder struct {
	frames []recordedFrame
}

type recordedFrame struct {
	from    string
	frame   byte
	payload string
}

func (r *recorder) HandleFrame(from string, frameType byte, payload []byte) {
	r.frames = append(r.frames, recordedFrame{from, frameType, string(payload)})
}

// pump delivers every in-flight message.
func pump(n *Network) {
	for n.DeliverNext() {
	}
}

func twoEndpoints(t *testing.T, n *Network) (*Endpoint, *recorder, *Endpoint, *recorder) {
	t.Helper()
	ra, rb := &recorder{}, &recorder{}
	a, err := n.Listen("a", ra)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen("b", rb)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	return a, ra, b, rb
}

func TestSendDeliverRoundTrip(t *testing.T) {
	n := New(1, nil)
	a, ra, b, rb := twoEndpoints(t, n)

	if err := a.Send("b", p2p.FrameMeta, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("a", p2p.FrameBlock, []byte("yo")); err != nil {
		t.Fatal(err)
	}
	pump(n)
	if len(rb.frames) != 1 || rb.frames[0].payload != "hi" || rb.frames[0].from != "a" {
		t.Fatalf("b received %+v", rb.frames)
	}
	if len(ra.frames) != 1 || ra.frames[0].payload != "yo" {
		t.Fatalf("a received %+v", ra.frames)
	}
	if got := a.Peers(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("a peers = %v", got)
	}
}

func TestConnectRefusedAndUnknownPeer(t *testing.T) {
	n := New(1, nil)
	a, err := n.Listen("a", &recorder{})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("ghost"); err == nil {
		t.Fatal("connect to missing endpoint succeeded")
	}
	if err := a.Send("ghost", p2p.FrameMeta, nil); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
	if _, err := n.Listen("a", &recorder{}); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestDropFaultLosesEverything(t *testing.T) {
	n := New(7, nil)
	n.SetDefaults(Params{Drop: 1})
	a, _, _, rb := twoEndpoints(t, n)
	for i := 0; i < 5; i++ {
		if err := a.Send("b", p2p.FrameMeta, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	pump(n)
	if len(rb.frames) != 0 {
		t.Fatalf("lossy link delivered %d frames", len(rb.frames))
	}
	drops := 0
	for _, e := range n.Events() {
		if e.Kind == EvDrop && e.Note == "loss" {
			drops++
		}
	}
	if drops != 5 {
		t.Fatalf("logged %d loss drops, want 5", drops)
	}
}

func TestDuplicateFaultDeliversTwice(t *testing.T) {
	n := New(7, nil)
	n.SetDefaults(Params{Duplicate: 1})
	a, _, _, rb := twoEndpoints(t, n)
	if err := a.Send("b", p2p.FrameMeta, []byte("x")); err != nil {
		t.Fatal(err)
	}
	pump(n)
	if len(rb.frames) != 2 {
		t.Fatalf("duplicate link delivered %d frames, want 2", len(rb.frames))
	}
}

func TestFIFOWithoutReorder(t *testing.T) {
	// Random latency but Reorder=0: the link must stay FIFO.
	now := time.Unix(0, 0)
	n := New(3, func() time.Time { return now })
	n.SetDefaults(Params{DelayMin: 0, DelayMax: 50 * time.Millisecond})
	a, _, _, rb := twoEndpoints(t, n)
	for i := byte(0); i < 20; i++ {
		if err := a.Send("b", p2p.FrameMeta, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	pump(n)
	if len(rb.frames) != 20 {
		t.Fatalf("delivered %d frames", len(rb.frames))
	}
	for i, f := range rb.frames {
		if f.payload[0] != byte(i) {
			t.Fatalf("frame %d out of order: got payload %d", i, f.payload[0])
		}
	}
}

func TestReorderFaultShufflesDelivery(t *testing.T) {
	now := time.Unix(0, 0)
	n := New(3, func() time.Time { return now })
	n.SetDefaults(Params{Reorder: 1, DelayMin: 0, DelayMax: 50 * time.Millisecond})
	a, _, _, rb := twoEndpoints(t, n)
	for i := byte(0); i < 20; i++ {
		if err := a.Send("b", p2p.FrameMeta, []byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	pump(n)
	inOrder := true
	for i, f := range rb.frames {
		if f.payload[0] != byte(i) {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("full reorder fault delivered everything in order")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(1, nil)
	a, _, b, rb := twoEndpoints(t, n)

	// One message in flight when the cut lands: it must be dropped.
	if err := a.Send("b", p2p.FrameMeta, []byte("inflight")); err != nil {
		t.Fatal(err)
	}
	n.Partition([]string{"a"}, []string{"b"})
	if err := a.Send("b", p2p.FrameMeta, []byte("during")); err != nil {
		t.Fatal(err)
	}
	pump(n)
	if len(rb.frames) != 0 {
		t.Fatalf("partitioned link delivered %+v", rb.frames)
	}

	n.Heal()
	if err := a.Send("b", p2p.FrameMeta, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("a", p2p.FrameBlock, nil); err != nil {
		t.Fatal(err)
	}
	pump(n)
	if len(rb.frames) != 1 || rb.frames[0].payload != "after" {
		t.Fatalf("healed link delivered %+v", rb.frames)
	}
}

func TestBroadcastCountsAndCloseSemantics(t *testing.T) {
	n := New(1, nil)
	ra, rb, rc := &recorder{}, &recorder{}, &recorder{}
	a, _ := n.Listen("a", ra)
	b, _ := n.Listen("b", rb)
	c, _ := n.Listen("c", rc)
	_ = c
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("c"); err != nil {
		t.Fatal(err)
	}
	if d, f := a.Broadcast(p2p.FrameMeta, []byte("all")); d != 2 || f != 0 {
		t.Fatalf("broadcast delivered=%d failed=%d", d, f)
	}
	pump(n)

	// Closing b: a observes the disconnect, later broadcasts skip it.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if got := a.Peers(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("a peers after close = %v", got)
	}
	if d, f := a.Broadcast(p2p.FrameMeta, []byte("again")); d != 1 || f != 0 {
		t.Fatalf("broadcast after close delivered=%d failed=%d", d, f)
	}
	pump(n)
	if len(rb.frames) != 1 { // only the pre-close broadcast
		t.Fatalf("closed endpoint received %+v", rb.frames)
	}
	if len(rc.frames) != 2 {
		t.Fatalf("c received %+v", rc.frames)
	}

	// The address can be reused after close (node restart).
	if _, err := n.Listen("b", &recorder{}); err != nil {
		t.Fatal(err)
	}
}

func TestEventLogDeterminism(t *testing.T) {
	run := func() string {
		// Fixed time source: wall-clock timestamps would differ run to run.
		now := time.Unix(1700000000, 0)
		n := New(99, func() time.Time { return now })
		n.SetDefaults(Params{Drop: 0.3, Duplicate: 0.2, Reorder: 0.5, DelayMax: 10 * time.Millisecond})
		a, _, b, _ := twoEndpoints(t, n)
		for i := byte(0); i < 30; i++ {
			_ = a.Send("b", p2p.FrameMeta, []byte{i})
			_, _ = b.Broadcast(p2p.FrameBlock, []byte{i, i})
		}
		n.Partition([]string{"a"}, []string{"b"})
		n.Heal()
		_ = a.Send("b", p2p.FrameData, []byte("tail"))
		pump(n)
		return n.EventLog()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("same seed produced different event logs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if first == "" {
		t.Fatal("empty event log")
	}
}

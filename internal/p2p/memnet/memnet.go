// Package memnet is an in-memory, fault-injecting implementation of
// p2p.Transport for deterministic network tests. All endpoints attach to
// one Network hub that models each directed link with seeded-RNG faults —
// message loss, latency, duplication and reordering — plus directed and
// symmetric partitions.
//
// Delivery is pull-based: Send and Broadcast only enqueue; nothing reaches
// a handler until the test harness calls DeliverNext. Combined with a
// virtual clock (internal/chaos) this makes whole-cluster runs
// single-threaded and exactly reproducible: the same seed yields the same
// event log, byte for byte. Every send, drop, duplication and delivery is
// recorded in that log for postmortems.
package memnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/p2p"
	"repro/internal/telemetry"
)

// Params configure the fault model of one directed link.
type Params struct {
	// Drop is the probability a message is silently lost in flight.
	Drop float64
	// Duplicate is the probability a message is delivered twice (the copy
	// gets its own independently sampled latency).
	Duplicate float64
	// Reorder is the probability a message may overtake earlier traffic on
	// its link. Links are FIFO otherwise (TCP-like): a sampled delivery
	// time earlier than the link's previous one is clamped forward.
	Reorder float64
	// DelayMin and DelayMax bound the uniformly sampled one-way latency.
	// Zero values mean instant delivery (messages come due immediately).
	DelayMin, DelayMax time.Duration
}

func (p Params) delay(rng *rand.Rand) time.Duration {
	if p.DelayMax <= p.DelayMin {
		return p.DelayMin
	}
	return p.DelayMin + time.Duration(rng.Int63n(int64(p.DelayMax-p.DelayMin)+1))
}

// EventKind labels one entry of the network event log.
type EventKind string

// Event kinds recorded by the network.
const (
	EvSend       EventKind = "send"
	EvDeliver    EventKind = "deliver"
	EvDrop       EventKind = "drop"
	EvDuplicate  EventKind = "dup"
	EvConnect    EventKind = "connect"
	EvDisconnect EventKind = "disconnect"
	EvClose      EventKind = "close"
	EvPartition  EventKind = "partition"
	EvHeal       EventKind = "heal"
)

// Event is one record of the network's postmortem log.
type Event struct {
	// Seq is the global event sequence number (dense, starting at 1).
	Seq uint64
	// At is the time of the event relative to the network's creation.
	At time.Duration
	// Kind is what happened.
	Kind EventKind
	// From and To identify the link, where applicable.
	From, To string
	// Frame is the frame type for message events.
	Frame byte
	// Size is the payload size in bytes for message events.
	Size int
	// Note carries extra context (drop reason, partition layout).
	Note string
}

// String renders the event as one log line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%04d %10s %-10s", e.Seq, e.At.Round(time.Millisecond), e.Kind)
	if e.From != "" || e.To != "" {
		fmt.Fprintf(&b, " %s->%s", e.From, e.To)
	}
	if e.Kind == EvSend || e.Kind == EvDeliver || e.Kind == EvDrop || e.Kind == EvDuplicate {
		fmt.Fprintf(&b, " frame=%d %dB", e.Frame, e.Size)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " (%s)", e.Note)
	}
	return b.String()
}

// Metrics are the network's fault counters. Counting happens at the same
// points events are logged and never consults the RNG, so enabling
// metrics cannot perturb the deterministic event log. All fields are
// nil-safe; construct with NewMetrics to register under a registry.
type Metrics struct {
	// Sends counts every enqueue attempt (before fault sampling).
	Sends *telemetry.Counter
	// Delivered counts frames handed to a destination handler.
	Delivered *telemetry.Counter
	// Drops counts random in-flight losses (Params.Drop).
	Drops *telemetry.Counter
	// Dups counts duplicated deliveries scheduled (Params.Duplicate).
	Dups *telemetry.Counter
	// Reorders counts sends whose FIFO clamp was waived (Params.Reorder).
	Reorders *telemetry.Counter
	// PartitionKills counts frames destroyed by cuts: sends into a
	// blocked link, in-flight frames crossing a new cut, and frames whose
	// destination vanished before delivery.
	PartitionKills *telemetry.Counter
}

// NewMetrics registers the fault counters under reg (names "memnet.*").
func NewMetrics(reg *telemetry.Registry) *Metrics {
	return &Metrics{
		Sends:          reg.Counter("memnet.sends"),
		Delivered:      reg.Counter("memnet.delivered"),
		Drops:          reg.Counter("memnet.drops"),
		Dups:           reg.Counter("memnet.dups"),
		Reorders:       reg.Counter("memnet.reorders"),
		PartitionKills: reg.Counter("memnet.partition_kills"),
	}
}

type linkKey struct{ from, to string }

type message struct {
	seq      uint64
	from, to string
	frame    byte
	payload  []byte
	due      time.Time
}

// messageQueue is a min-heap of in-flight messages ordered by (due, seq)
// — exactly the delivery order DeliverNext promises. seq is unique, so
// the order is total and every pop is deterministic. The heap turns the
// per-delivery cost from O(queue) to O(log queue), which is what keeps
// large clusters (64+ nodes, whose connect storms put tens of thousands
// of same-instant frames in flight) tractable.
type messageQueue []*message

func (q messageQueue) Len() int { return len(q) }
func (q messageQueue) Less(i, j int) bool {
	if !q[i].due.Equal(q[j].due) {
		return q[i].due.Before(q[j].due)
	}
	return q[i].seq < q[j].seq
}
func (q messageQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *messageQueue) Push(x any)   { *q = append(*q, x.(*message)) }
func (q *messageQueue) Pop() any {
	old := *q
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return m
}

// Network is the shared hub all memnet endpoints attach to. It is safe for
// concurrent use, but determinism requires that sends and deliveries be
// driven from a single goroutine (the chaos harness's scheduler).
type Network struct {
	mu        sync.Mutex
	nowFn     func() time.Time
	start     time.Time
	rng       *rand.Rand
	defaults  Params
	metrics   *Metrics // never nil; swap via SetMetrics
	links     map[linkKey]Params
	blocked   map[linkKey]bool
	lastDue   map[linkKey]time.Time
	endpoints map[string]*Endpoint
	queue     messageQueue
	msgSeq    uint64
	evSeq     uint64
	recording bool
	digest    uint64
	events    []Event
	// free recycles message structs between deliveries; lastDelivered is
	// the message handed to a handler by the previous DeliverNext, safe to
	// recycle once the next delivery starts.
	free          []*message
	lastDelivered *message
}

// New creates a network whose fault decisions derive from seed. now is the
// time source used for latency bookkeeping and event timestamps; nil means
// the wall clock (the chaos harness passes its virtual clock's Now).
func New(seed int64, now func() time.Time) *Network {
	if now == nil {
		now = time.Now
	}
	return &Network{
		nowFn:     now,
		start:     now(),
		rng:       rand.New(rand.NewSource(seed)),
		metrics:   &Metrics{},
		links:     make(map[linkKey]Params),
		blocked:   make(map[linkKey]bool),
		lastDue:   make(map[linkKey]time.Time),
		endpoints: make(map[string]*Endpoint),
		recording: true,
		digest:    fnvOffset,
	}
}

// SetRecording toggles retention of the event log. The running digest
// (EventDigest) keeps folding every event either way, so determinism
// checks still work with recording off — which is how large clusters
// (256+ nodes, millions of events) avoid unbounded log memory.
func (n *Network) SetRecording(on bool) {
	n.mu.Lock()
	n.recording = on
	n.mu.Unlock()
}

// FNV-1a 64-bit, folded inline so digesting an event allocates nothing.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xFF
		h *= fnvPrime
		x >>= 8
	}
	return h
}

func fnvMixString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// EventDigest returns the FNV-1a digest of every event logged so far
// (including ones not retained while recording was off). Two runs with
// equal digests and equal event counts saw the same event sequence.
func (n *Network) EventDigest() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.digest
}

// EventCount returns how many events have been logged so far, retained
// or not.
func (n *Network) EventCount() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.evSeq
}

// SetMetrics installs the network's fault counters (see NewMetrics); nil
// restores the inert default.
func (n *Network) SetMetrics(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	n.mu.Lock()
	n.metrics = m
	n.mu.Unlock()
}

// SetDefaults sets the fault parameters used by links without an explicit
// override. The zero Params value is a perfect, instant network.
func (n *Network) SetDefaults(p Params) {
	n.mu.Lock()
	n.defaults = p
	n.mu.Unlock()
}

// SetLink overrides the fault parameters of the directed link from → to.
func (n *Network) SetLink(from, to string, p Params) {
	n.mu.Lock()
	n.links[linkKey{from, to}] = p
	n.mu.Unlock()
}

// SetLinkBoth overrides both directions between a and b.
func (n *Network) SetLinkBoth(a, b string, p Params) {
	n.mu.Lock()
	n.links[linkKey{a, b}] = p
	n.links[linkKey{b, a}] = p
	n.mu.Unlock()
}

// BlockLink cuts the directed link from → to: subsequent and in-flight
// messages on it are dropped until UnblockLink or Heal.
func (n *Network) BlockLink(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[linkKey{from, to}] = true
	n.logLocked(Event{Kind: EvPartition, From: from, To: to, Note: "directed cut"})
	n.dropCrossingLocked("cut")
}

// UnblockLink restores the directed link from → to.
func (n *Network) UnblockLink(from, to string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, linkKey{from, to})
	n.logLocked(Event{Kind: EvHeal, From: from, To: to, Note: "directed heal"})
}

// Partition splits the network into the given groups: every link between
// two different groups is cut in both directions, and in-flight messages
// crossing the cut are dropped. Addresses not mentioned in any group keep
// all their links. Partition replaces any previous partition.
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[linkKey]bool)
	for i, gi := range groups {
		for j, gj := range groups {
			if i == j {
				continue
			}
			for _, a := range gi {
				for _, b := range gj {
					n.blocked[linkKey{a, b}] = true
				}
			}
		}
	}
	layout := make([]string, len(groups))
	for i, g := range groups {
		layout[i] = "{" + strings.Join(g, ",") + "}"
	}
	n.logLocked(Event{Kind: EvPartition, Note: strings.Join(layout, " | ")})
	n.dropCrossingLocked("cut")
}

// Heal removes every cut (directed and partition) at once.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[linkKey]bool)
	n.logLocked(Event{Kind: EvHeal})
}

// dropCrossingLocked removes queued messages whose link is now blocked.
func (n *Network) dropCrossingLocked(reason string) {
	var dropped []*message
	kept := n.queue[:0]
	for _, m := range n.queue {
		if n.blocked[linkKey{m.from, m.to}] {
			dropped = append(dropped, m)
			continue
		}
		kept = append(kept, m)
	}
	n.queue = kept
	heap.Init(&n.queue)
	// Log drops in send order (seq), the order the pre-heap queue kept
	// naturally — the heap's internal array order is not meaningful.
	sort.Slice(dropped, func(i, j int) bool { return dropped[i].seq < dropped[j].seq })
	for _, m := range dropped {
		n.metrics.PartitionKills.Inc()
		n.logLocked(Event{Kind: EvDrop, From: m.from, To: m.to, Frame: m.frame, Size: len(m.payload), Note: reason})
		n.putMsgLocked(m)
	}
}

// getMsgLocked and putMsgLocked recycle message structs through a free
// list: at 256 nodes a single broadcast round puts tens of thousands of
// messages in flight, and without recycling every one is garbage the
// moment it is delivered.
func (n *Network) getMsgLocked() *message {
	if k := len(n.free); k > 0 {
		m := n.free[k-1]
		n.free[k-1] = nil
		n.free = n.free[:k-1]
		return m
	}
	return &message{}
}

func (n *Network) putMsgLocked(m *message) {
	*m = message{}
	n.free = append(n.free, m)
}

func (n *Network) logLocked(e Event) {
	n.evSeq++
	e.Seq = n.evSeq
	e.At = n.nowFn().Sub(n.start)
	h := fnvMix(n.digest, e.Seq)
	h = fnvMix(h, uint64(e.At))
	h = fnvMixString(h, string(e.Kind))
	h = fnvMixString(h, e.From)
	h = fnvMixString(h, e.To)
	h = fnvMix(h, uint64(e.Frame)<<32|uint64(uint32(e.Size)))
	h = fnvMixString(h, e.Note)
	n.digest = h
	if n.recording {
		n.events = append(n.events, e)
	}
}

// Events returns a copy of the event log so far.
func (n *Network) Events() []Event {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Event(nil), n.events...)
}

// EventLog renders the whole event log, one line per event.
func (n *Network) EventLog() string {
	events := n.Events()
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Pending returns the number of in-flight messages.
func (n *Network) Pending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.queue)
}

// NextDue returns the delivery time of the earliest in-flight message.
func (n *Network) NextDue() (time.Time, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.queue) == 0 {
		return time.Time{}, false
	}
	return n.queue[0].due, true
}

// DeliverNext pops the earliest in-flight message (ties broken by send
// order) and hands it to the destination handler inline. It reports
// whether a message was processed; messages to closed or disconnected
// endpoints are consumed and logged as drops.
func (n *Network) DeliverNext() bool {
	n.mu.Lock()
	if n.lastDelivered != nil {
		// The previous delivery's handler has returned; its message struct
		// can go back on the free list now.
		n.putMsgLocked(n.lastDelivered)
		n.lastDelivered = nil
	}
	if len(n.queue) == 0 {
		n.mu.Unlock()
		return false
	}
	m := heap.Pop(&n.queue).(*message)
	if n.blocked[linkKey{m.from, m.to}] {
		n.metrics.PartitionKills.Inc()
		n.logLocked(Event{Kind: EvDrop, From: m.from, To: m.to, Frame: m.frame, Size: len(m.payload), Note: "cut"})
		n.putMsgLocked(m)
		n.mu.Unlock()
		return true
	}
	dst, ok := n.endpoints[m.to]
	if !ok || dst.closed || !dst.peers[m.from] {
		n.metrics.PartitionKills.Inc()
		n.logLocked(Event{Kind: EvDrop, From: m.from, To: m.to, Frame: m.frame, Size: len(m.payload), Note: "no connection"})
		n.putMsgLocked(m)
		n.mu.Unlock()
		return true
	}
	n.metrics.Delivered.Inc()
	n.logLocked(Event{Kind: EvDeliver, From: m.from, To: m.to, Frame: m.frame, Size: len(m.payload)})
	handler := dst.handler
	from, frame, payload := m.from, m.frame, m.payload
	n.lastDelivered = m
	n.mu.Unlock()
	// Handler runs outside the lock: it may send, connect or partition.
	// Payloads are read-only — broadcast fans one buffer out to every
	// recipient, so a handler mutating it would corrupt its siblings.
	handler.HandleFrame(from, frame, payload)
	return true
}

// enqueueLocked applies the link's fault model to one send. When owned
// is true the payload is already detached from the caller's buffer (a
// broadcast's shared copy) and is enqueued as-is; otherwise it is copied
// once before entering the queue. Either way a duplicate delivery shares
// the in-queue buffer — delivered payloads are read-only by contract.
func (n *Network) enqueueLocked(from, to string, frame byte, payload []byte, owned bool) {
	n.metrics.Sends.Inc()
	n.logLocked(Event{Kind: EvSend, From: from, To: to, Frame: frame, Size: len(payload)})
	key := linkKey{from, to}
	if n.blocked[key] {
		// The sender cannot tell a partition from slow peers; the loss is
		// silent, exactly like a TCP write buffered into a dead link.
		n.metrics.PartitionKills.Inc()
		n.logLocked(Event{Kind: EvDrop, From: from, To: to, Frame: frame, Size: len(payload), Note: "partition"})
		return
	}
	p, ok := n.links[key]
	if !ok {
		p = n.defaults
	}
	if p.Drop > 0 && n.rng.Float64() < p.Drop {
		n.metrics.Drops.Inc()
		n.logLocked(Event{Kind: EvDrop, From: from, To: to, Frame: frame, Size: len(payload), Note: "loss"})
		return
	}
	if !owned {
		payload = append([]byte(nil), payload...)
	}
	n.scheduleLocked(key, frame, payload, p)
	if p.Duplicate > 0 && n.rng.Float64() < p.Duplicate {
		n.metrics.Dups.Inc()
		n.logLocked(Event{Kind: EvDuplicate, From: from, To: to, Frame: frame, Size: len(payload)})
		n.scheduleLocked(key, frame, payload, p)
	}
}

func (n *Network) scheduleLocked(key linkKey, frame byte, payload []byte, p Params) {
	due := n.nowFn().Add(p.delay(n.rng))
	reordered := p.Reorder > 0 && n.rng.Float64() < p.Reorder
	if reordered {
		n.metrics.Reorders.Inc()
	}
	if !reordered && due.Before(n.lastDue[key]) {
		due = n.lastDue[key]
	}
	if due.After(n.lastDue[key]) {
		n.lastDue[key] = due
	}
	n.msgSeq++
	m := n.getMsgLocked()
	*m = message{
		seq:     n.msgSeq,
		from:    key.from,
		to:      key.to,
		frame:   frame,
		payload: payload,
		due:     due,
	}
	heap.Push(&n.queue, m)
}

// Listen registers a new endpoint under addr. The address must not be in
// use by a live endpoint; a closed one may be replaced (node restart).
func (n *Network) Listen(addr string, h p2p.Handler) (*Endpoint, error) {
	if h == nil {
		return nil, fmt.Errorf("memnet: nil handler")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.endpoints[addr]; ok && !old.closed {
		return nil, fmt.Errorf("memnet: address %s in use", addr)
	}
	e := &Endpoint{net: n, addr: addr, handler: h, peers: make(map[string]bool)}
	n.endpoints[addr] = e
	return e, nil
}

// Endpoint is one memnet attachment point, implementing p2p.Transport.
// All state is guarded by the owning Network's lock.
type Endpoint struct {
	net     *Network
	addr    string
	handler p2p.Handler
	peers   map[string]bool
	closed  bool
	// scratch is the reusable sorted-peer buffer for Broadcast; Peers
	// still returns fresh copies.
	scratch []string
}

var _ p2p.Transport = (*Endpoint)(nil)

// Addr returns the endpoint's symbolic address.
func (e *Endpoint) Addr() string { return e.addr }

// Connect establishes a symmetric link with the peer at addr (mirroring
// the TCP transport's hello handshake). Connecting to self or an existing
// peer is a no-op; connecting to a missing or closed endpoint fails.
func (e *Endpoint) Connect(addr string) error {
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.closed {
		return fmt.Errorf("memnet: endpoint %s closed", e.addr)
	}
	if addr == e.addr || e.peers[addr] {
		return nil
	}
	dst, ok := n.endpoints[addr]
	if !ok || dst.closed {
		return fmt.Errorf("memnet: connect %s: connection refused", addr)
	}
	e.peers[addr] = true
	dst.peers[e.addr] = true
	n.logLocked(Event{Kind: EvConnect, From: e.addr, To: addr})
	return nil
}

// Peers returns the connected peer addresses in sorted order.
func (e *Endpoint) Peers() []string {
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	return e.sortedPeersLocked()
}

func (e *Endpoint) sortedPeersLocked() []string {
	out := make([]string, 0, len(e.peers))
	for a := range e.peers {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Send enqueues one frame for a specific peer. A dead peer endpoint fails
// the send and tears the link down, like a TCP write error.
func (e *Endpoint) Send(peerAddr string, frameType byte, payload []byte) error {
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.closed {
		return fmt.Errorf("memnet: endpoint %s closed", e.addr)
	}
	if !e.peers[peerAddr] {
		return fmt.Errorf("memnet: unknown peer %s", peerAddr)
	}
	if dst, ok := n.endpoints[peerAddr]; !ok || dst.closed {
		delete(e.peers, peerAddr)
		n.logLocked(Event{Kind: EvDisconnect, From: e.addr, To: peerAddr, Note: "send failed"})
		return fmt.Errorf("memnet: peer %s gone", peerAddr)
	}
	n.enqueueLocked(e.addr, peerAddr, frameType, payload, false)
	return nil
}

// Broadcast enqueues one frame for every connected peer, in sorted
// address order so fault sampling is deterministic. Dead peers count as
// failed and are disconnected. The payload is copied once and the copy
// shared by every recipient (and duplicate), which is what keeps a
// 256-node broadcast O(1) in copies instead of O(peers) — handlers must
// treat delivered payloads as read-only.
func (e *Endpoint) Broadcast(frameType byte, payload []byte) (delivered, failed int) {
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.closed {
		return 0, 0
	}
	e.scratch = e.scratch[:0]
	for a := range e.peers {
		e.scratch = append(e.scratch, a)
	}
	sort.Strings(e.scratch)
	shared := append([]byte(nil), payload...)
	for _, addr := range e.scratch {
		if dst, ok := n.endpoints[addr]; !ok || dst.closed {
			delete(e.peers, addr)
			n.logLocked(Event{Kind: EvDisconnect, From: e.addr, To: addr, Note: "send failed"})
			failed++
			continue
		}
		n.enqueueLocked(e.addr, addr, frameType, shared, true)
		delivered++
	}
	return delivered, failed
}

// Close detaches the endpoint: peers observe a disconnect (as a TCP read
// loop would) and in-flight messages to it are dropped at delivery time.
func (e *Endpoint) Close() error {
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	n.logLocked(Event{Kind: EvClose, From: e.addr})
	// Sorted iteration: disconnect events must appear in a deterministic
	// order for the same-seed ⇒ same-log guarantee.
	addrs := make([]string, 0, len(n.endpoints))
	for a := range n.endpoints {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		other := n.endpoints[a]
		if other != e && other.peers[e.addr] {
			delete(other.peers, e.addr)
			n.logLocked(Event{Kind: EvDisconnect, From: other.addr, To: e.addr, Note: "peer closed"})
		}
	}
	e.peers = make(map[string]bool)
	return nil
}

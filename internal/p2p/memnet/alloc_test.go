package memnet

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/p2p"
)

type sink struct{}

func (sink) HandleFrame(string, byte, []byte) {}

// TestMemnetHotPathAllocs is the transport's alloc gate for large
// clusters: with recording off, a steady-state broadcast costs exactly
// one allocation (the shared payload copy, fanned out to every peer) and
// delivering a message costs none — message structs cycle through the
// free list and the event digest folds without allocating.
func TestMemnetHotPathAllocs(t *testing.T) {
	const peers = 32
	n := New(1, nil)
	n.SetRecording(false)
	eps := make([]*Endpoint, peers)
	for i := range eps {
		e, err := n.Listen(fmt.Sprintf("n%02d", i), sink{})
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = e
	}
	for i := 1; i < peers; i++ {
		if err := eps[0].Connect(eps[i].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	payload := []byte("steady-state broadcast frame payload")

	// Warm the free list, the queue heap, and the peer scratch.
	for i := 0; i < 4; i++ {
		eps[0].Broadcast(p2p.FrameBlock, payload)
		for n.DeliverNext() {
		}
	}

	if got := testing.AllocsPerRun(200, func() {
		if d, _ := eps[0].Broadcast(p2p.FrameBlock, payload); d != peers-1 {
			t.Fatalf("broadcast reached %d peers, want %d", d, peers-1)
		}
		for n.DeliverNext() {
		}
	}); got > 1 {
		t.Fatalf("broadcast+deliver cycle allocates %.2f/op, want ≤ 1 (the shared payload copy)", got)
	}

	if got := testing.AllocsPerRun(200, func() {
		if err := eps[0].Send(eps[1].Addr(), p2p.FrameMeta, payload); err != nil {
			t.Fatal(err)
		}
		for n.DeliverNext() {
		}
	}); got > 1 {
		t.Fatalf("send+deliver cycle allocates %.2f/op, want ≤ 1 (the payload copy)", got)
	}
}

// TestEventDigestMatchesLog: the digest folded with recording off must
// equal the digest of the same run with recording on, and two identical
// runs must agree — it is the log-free determinism check.
func TestEventDigestMatchesLog(t *testing.T) {
	run := func(record bool) (uint64, uint64, int) {
		// Fixed time source: the digest folds event timestamps, so the
		// determinism contract (like the chaos harness's) assumes a
		// virtual clock, not the wall clock.
		epoch := time.Unix(1700000000, 0)
		n := New(7, func() time.Time { return epoch })
		n.SetRecording(record)
		ra := &recorder{}
		a, err := n.Listen("a", ra)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.Listen("b", &recorder{}); err != nil {
			t.Fatal(err)
		}
		if err := a.Connect("b"); err != nil {
			t.Fatal(err)
		}
		a.Send("b", p2p.FrameMeta, []byte("x"))
		a.Broadcast(p2p.FrameBlock, []byte("yy"))
		n.BlockLink("a", "b")
		a.Send("b", p2p.FrameMeta, []byte("z"))
		n.Heal()
		for n.DeliverNext() {
		}
		return n.EventDigest(), n.EventCount(), len(n.Events())
	}
	d1, c1, retained1 := run(true)
	d2, c2, retained2 := run(true)
	if d1 != d2 || c1 != c2 {
		t.Fatalf("identical runs disagree: digest %x/%x count %d/%d", d1, d2, c1, c2)
	}
	d3, c3, retained3 := run(false)
	if d3 != d1 || c3 != c1 {
		t.Fatalf("recording toggle changed the digest: %x/%x count %d/%d", d1, d3, c1, c3)
	}
	if retained1 != retained2 || retained1 == 0 {
		t.Fatalf("recorded logs disagree: %d vs %d events", retained1, retained2)
	}
	if retained3 != 0 {
		t.Fatalf("recording off retained %d events", retained3)
	}
	if uint64(retained1) != c1 {
		t.Fatalf("recorded %d events but counted %d", retained1, c1)
	}
}

// TestBroadcastSharedPayloadIsolated: the shared broadcast buffer must
// still be detached from the caller's slice — mutating the input after
// Broadcast cannot change what recipients see.
func TestBroadcastSharedPayloadIsolated(t *testing.T) {
	n := New(3, nil)
	ra, rb := &recorder{}, &recorder{}
	a, err := n.Listen("a", ra)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("b", rb); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("c", &recorder{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Connect("c"); err != nil {
		t.Fatal(err)
	}
	buf := []byte("original")
	a.Broadcast(p2p.FrameMeta, buf)
	copy(buf, "SCRIBBLE")
	for n.DeliverNext() {
	}
	if len(rb.frames) != 1 || rb.frames[0].payload != "original" {
		t.Fatalf("recipient saw caller's mutation: %+v", rb.frames)
	}
}

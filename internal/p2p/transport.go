package p2p

// Transport is the node-to-node messaging abstraction the live stack runs
// on. The production implementation is the TCP Node in this package; tests
// plug in internal/p2p/memnet's in-memory fault-injecting network so the
// same livenode code can be driven deterministically through partitions,
// loss, reordering and crashes.
//
// Addresses are opaque strings: TCP listen addresses for the real network,
// stable symbolic names ("node00") for the in-memory one. Inbound frames
// are delivered to the Handler the transport was created with; calls are
// serialized per transport, so handlers need no synchronization against
// each other.
type Transport interface {
	// Addr returns this endpoint's address, as peers would dial it.
	Addr() string
	// Connect establishes a (symmetric) link to the peer at addr.
	// Connecting to self or an already-connected peer is a no-op.
	Connect(addr string) error
	// Peers returns the addresses of currently connected peers.
	Peers() []string
	// Send writes one frame to a specific peer.
	Send(peerAddr string, frameType byte, payload []byte) error
	// Broadcast writes one frame to every connected peer and reports how
	// many sends were handed to the wire and how many failed outright
	// (dead connection, closed endpoint). A frame the network later loses
	// in flight still counts as delivered here — like TCP, the sender only
	// observes local write failures.
	Broadcast(frameType byte, payload []byte) (delivered, failed int)
	// Close shuts the endpoint down; subsequent sends fail.
	Close() error
}

// The TCP node is the reference Transport implementation.
var _ Transport = (*Node)(nil)

// Package p2p is a small TCP transport for running the edge blockchain as
// real processes, mirroring the paper's original deployment ("each node
// runs a blockchain system in the container and communicates with others
// using standard socket communication").
//
// The wire protocol is length-prefixed frames over TCP:
//
//	[4-byte big-endian length][1-byte frame type][payload]
//
// Peers form a full mesh (the paper's private-blockchain scale of tens of
// nodes). Connect performs a handshake exchanging listen addresses so both
// sides can identify and deduplicate peers.
package p2p

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Network deadlines. A hung or unreachable peer must not stall the caller:
// Connect bounds the TCP dial, and every frame write carries a deadline so
// a peer that stops draining its socket cannot hold writeMu (and thereby a
// Broadcast) forever — the write fails and the connection is dropped.
var (
	// DialTimeout bounds Connect's TCP dial.
	DialTimeout = 5 * time.Second
	// WriteTimeout bounds each frame write (hello, Send, Broadcast).
	WriteTimeout = 10 * time.Second
)

// Frame types.
const (
	// FrameHello carries the sender's listen address (handshake).
	FrameHello byte = iota + 1
	// FrameBlock carries one encoded block.
	FrameBlock
	// FrameMeta carries one encoded metadata item.
	FrameMeta
	// FrameChainRequest asks the peer for its full chain.
	FrameChainRequest
	// FrameChain carries a full chain (count + length-prefixed blocks).
	FrameChain
	// FrameDataRequest carries a 32-byte data ID.
	FrameDataRequest
	// FrameData carries a 32-byte data ID followed by the content.
	FrameData
	// FrameSyncLocator carries a block locator (height/hash samples) and
	// opens an incremental sync round (DESIGN.md §10).
	FrameSyncLocator
	// FrameSyncHeaders answers a locator: fork point, responder tip and a
	// bounded header range of the missing suffix.
	FrameSyncHeaders
	// FrameSyncGetBatch requests one bounded block range [from, to].
	FrameSyncGetBatch
	// FrameSyncBatch carries the requested blocks of one batch.
	FrameSyncBatch
	// FrameRepairAnnounce is the repair plane's liveness heartbeat: a
	// 4-byte roster index binding the sender's transport address to its
	// node ID (DESIGN.md §11).
	FrameRepairAnnounce
	// FrameRepairGet asks one specific provider for a 32-byte data ID
	// (targeted, rate-limited re-replication fetch).
	FrameRepairGet
	// FrameRepairData answers a FrameRepairGet: the 32-byte data ID
	// followed by the content.
	FrameRepairData
	// FrameBlockAnnounce advertises one block by height + header hash
	// without shipping the body (inv-style gossip, DESIGN.md §13).
	FrameBlockAnnounce
	// FrameGetBlock asks the announcer for the full block behind a
	// 32-byte header hash.
	FrameGetBlock
	// FrameGetSnapshot asks a peer for its latest finalized state snapshot
	// (snapshot bootstrap, DESIGN.md §14). Empty payload.
	FrameGetSnapshot
	// FrameSnapshot carries one chunk of a serialized state snapshot:
	// height, total length, content hash, chunk index/count, then the chunk
	// bytes. A chunk count of zero means "no snapshot available".
	FrameSnapshot
	// FrameMetaAnnounce advertises a batch of metadata items by 32-byte
	// data ID without shipping the bodies (inv-style metadata gossip,
	// DESIGN.md §15).
	FrameMetaAnnounce
	// FrameGetMeta asks the announcer for the full metadata items behind a
	// batch of 32-byte data IDs; each is answered with one FrameMeta.
	FrameGetMeta
	// FrameRepairProbe is the sampled liveness probe (DESIGN.md §15): a
	// 4-byte roster index binding the sender's transport address to its
	// node ID, sent to a bounded deterministic peer sample each repair
	// tick instead of the legacy full-mesh FrameRepairAnnounce broadcast.
	FrameRepairProbe
	// FrameRepairProbeAck answers a probe: the responder's 4-byte roster
	// index plus a bounded digest of third-party liveness evidence
	// (roster index, evidence age) so aliveness spreads epidemically.
	FrameRepairProbeAck
)

// MaxFrameSize bounds a single frame (64 MiB) against corrupt length
// prefixes.
const MaxFrameSize = 64 << 20

// MaxHelloLen bounds the listen address carried by a hello frame. A hello
// payload becomes the peer-map key verbatim, so an unbounded one would let
// a malicious dialer register arbitrarily large keys; an empty one would
// register as "". Real host:port strings are far below this.
const MaxHelloLen = 256

// broadcastConcurrency bounds how many peer writes a single Broadcast runs
// in flight at once. Writes fan out concurrently so one stalled peer
// (blocked until WriteTimeout) cannot delay delivery to the others.
const broadcastConcurrency = 16

// Handler receives inbound frames. from is the peer's listen address.
// Calls are serialized: the node holds its handler lock while dispatching,
// so implementations need no extra synchronization against each other.
type Handler interface {
	HandleFrame(from string, frameType byte, payload []byte)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(from string, frameType byte, payload []byte)

// HandleFrame implements Handler.
func (f HandlerFunc) HandleFrame(from string, frameType byte, payload []byte) {
	f(from, frameType, payload)
}

// Node is one transport endpoint.
type Node struct {
	ln      net.Listener
	handler Handler
	metrics atomic.Pointer[Metrics] // never nil; swap via SetMetrics

	mu        sync.Mutex
	peers     map[string]*peer // keyed by remote listen address
	closed    bool
	onSendErr func(peer string, err error)
	dispatch  sync.Mutex // serializes handler calls

	wg sync.WaitGroup
}

type peer struct {
	addr    string
	conn    net.Conn
	writeMu sync.Mutex
}

// Listen starts a node on addr (use "127.0.0.1:0" for an ephemeral port).
func Listen(addr string, h Handler) (*Node, error) {
	if h == nil {
		return nil, errors.New("p2p: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2p: listen: %w", err)
	}
	n := &Node{ln: ln, handler: h, peers: make(map[string]*peer)}
	n.metrics.Store(&Metrics{}) // inert until SetMetrics
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// SetMetrics installs the node's telemetry sink (see NewMetrics). Safe to
// call while traffic flows; nil restores the inert default.
func (n *Node) SetMetrics(m *Metrics) {
	if m == nil {
		m = &Metrics{}
	}
	n.metrics.Store(m)
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// SetSendErrorHook installs a callback invoked whenever a frame write to a
// peer fails (the connection is dropped right after). Metrics and test
// harnesses use it to observe delivery failures that Broadcast would
// otherwise only report as a count.
func (n *Node) SetSendErrorHook(fn func(peer string, err error)) {
	n.mu.Lock()
	n.onSendErr = fn
	n.mu.Unlock()
}

func (n *Node) notifySendErr(peer string, err error) {
	n.mu.Lock()
	fn := n.onSendErr
	n.mu.Unlock()
	if fn != nil {
		fn(peer, err)
	}
}

// Peers returns the listen addresses of connected peers.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for a := range n.peers {
		out = append(out, a)
	}
	return out
}

// Close shuts the node down and waits for all connection goroutines.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	err := n.ln.Close()
	for _, p := range n.peers {
		p.conn.Close()
	}
	n.peers = make(map[string]*peer)
	n.mu.Unlock()
	n.wg.Wait()
	return err
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go n.serveConn(conn, "")
	}
}

// Connect dials a peer, performs the hello handshake and starts reading.
// Connecting to an already-connected peer is a no-op.
func (n *Node) Connect(addr string) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("p2p: node closed")
	}
	if _, ok := n.peers[addr]; ok || addr == n.Addr() {
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()

	conn, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		n.metrics.Load().DialFailures.Inc()
		return fmt.Errorf("p2p: dial %s: %w", addr, err)
	}
	if err := writeFrameDeadline(conn, FrameHello, []byte(n.Addr())); err != nil {
		n.metrics.Load().onSendErr(err)
		conn.Close()
		return fmt.Errorf("p2p: hello: %w", err)
	}
	n.metrics.Load().onSent(FrameHello, len(n.Addr()))
	n.wg.Add(1)
	go n.serveConn(conn, addr)
	return nil
}

// register adds the peer if new; returns false (and closes nothing) when a
// connection to that address already exists.
func (n *Node) register(addr string, conn net.Conn) (*peer, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, false
	}
	if _, ok := n.peers[addr]; ok {
		return nil, false
	}
	p := &peer{addr: addr, conn: conn}
	n.peers[addr] = p
	return p, true
}

func (n *Node) unregister(addr string, conn net.Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.peers[addr]; ok && p.conn == conn {
		delete(n.peers, addr)
	}
}

// serveConn reads frames from a connection. For inbound connections the
// peer address is learned from the hello frame; for outbound ones it is
// known at dial time.
func (n *Node) serveConn(conn net.Conn, peerAddr string) {
	defer n.wg.Done()
	defer conn.Close()

	if peerAddr == "" {
		// Inbound: first frame must be the hello, and its payload becomes
		// the peer-map key — reject empty or oversized addresses so a
		// malicious dialer cannot register as "" or flood the map with
		// giant keys.
		ft, payload, err := readFrame(conn)
		if err != nil || ft != FrameHello {
			return
		}
		if len(payload) == 0 || len(payload) > MaxHelloLen {
			return
		}
		peerAddr = string(payload)
		// Reply with our own hello so the dialer path stays symmetric for
		// future peer-exchange extensions (the dialer's reader skips
		// inbound hellos, so this is safe against old peers too).
		if err := writeFrameDeadline(conn, FrameHello, []byte(n.Addr())); err != nil {
			n.metrics.Load().onSendErr(err)
			return
		}
		n.metrics.Load().onSent(FrameHello, len(n.Addr()))
	}
	if _, ok := n.register(peerAddr, conn); !ok {
		return // duplicate connection or node closed
	}
	defer n.unregister(peerAddr, conn)

	for {
		ft, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		n.metrics.Load().onRecv(ft, len(payload))
		if ft == FrameHello {
			continue
		}
		n.dispatch.Lock()
		n.handler.HandleFrame(peerAddr, ft, payload)
		n.dispatch.Unlock()
	}
}

// Send writes one frame to a specific peer.
func (n *Node) Send(peerAddr string, frameType byte, payload []byte) error {
	n.mu.Lock()
	p, ok := n.peers[peerAddr]
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("p2p: unknown peer %s", peerAddr)
	}
	p.writeMu.Lock()
	err := writeFrameDeadline(p.conn, frameType, payload)
	p.writeMu.Unlock()
	if err != nil {
		n.metrics.Load().onSendErr(err)
		p.conn.Close()
		n.notifySendErr(peerAddr, err)
		return err
	}
	n.metrics.Load().onSent(frameType, len(payload))
	return nil
}

// Broadcast writes one frame to every connected peer; per-peer errors drop
// that peer's connection but do not abort the broadcast. It returns how
// many peer writes succeeded and how many failed (each failure also fires
// the send-error hook), so callers can observe partial delivery.
//
// Writes fan out concurrently (bounded by broadcastConcurrency) so a
// stalled peer burning its full WriteTimeout cannot head-of-line block
// delivery to healthy peers; Broadcast still waits for every write to
// finish before returning so the delivered/failed counts are complete.
func (n *Node) Broadcast(frameType byte, payload []byte) (delivered, failed int) {
	n.mu.Lock()
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	n.mu.Unlock()
	m := n.metrics.Load()
	var (
		wg   sync.WaitGroup
		sem  = make(chan struct{}, broadcastConcurrency)
		dlv  atomic.Int64
		fail atomic.Int64
	)
	for _, p := range peers {
		wg.Add(1)
		sem <- struct{}{}
		go func(p *peer) {
			defer func() { <-sem; wg.Done() }()
			p.writeMu.Lock()
			err := writeFrameDeadline(p.conn, frameType, payload)
			p.writeMu.Unlock()
			if err != nil {
				m.onSendErr(err)
				p.conn.Close()
				n.notifySendErr(p.addr, err)
				fail.Add(1)
				return
			}
			m.onSent(frameType, len(payload))
			dlv.Add(1)
		}(p)
	}
	wg.Wait()
	delivered, failed = int(dlv.Load()), int(fail.Load())
	m.BroadcastDelivered.Add(delivered)
	m.BroadcastFailed.Add(failed)
	return delivered, failed
}

// writeFrameDeadline writes one frame under WriteTimeout and clears the
// deadline afterwards so it cannot leak into unrelated later writes.
func writeFrameDeadline(conn net.Conn, frameType byte, payload []byte) error {
	if err := conn.SetWriteDeadline(time.Now().Add(WriteTimeout)); err != nil {
		return err
	}
	err := writeFrame(conn, frameType, payload)
	if cerr := conn.SetWriteDeadline(time.Time{}); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func writeFrame(w io.Writer, frameType byte, payload []byte) error {
	if len(payload)+1 > MaxFrameSize {
		return fmt.Errorf("p2p: frame of %d bytes exceeds cap", len(payload))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = frameType
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// frameAllocChunk is the initial (and per-step) allocation granularity of
// readFrame. A peer that lies about the frame length must actually deliver
// the bytes before the reader commits more memory, so a forged 64 MiB
// length prefix followed by a hang costs at most one chunk.
const frameAllocChunk = 64 << 10

func readFrame(r io.Reader) (byte, []byte, error) {
	var lenb [4]byte
	if _, err := io.ReadFull(r, lenb[:]); err != nil {
		return 0, nil, err
	}
	size := int(binary.BigEndian.Uint32(lenb[:]))
	if size == 0 || size > MaxFrameSize {
		return 0, nil, fmt.Errorf("p2p: bad frame size %d", size)
	}
	buf := make([]byte, 0, min(size, frameAllocChunk))
	for len(buf) < size {
		step := min(size-len(buf), frameAllocChunk)
		off := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return 0, nil, err
		}
	}
	return buf[0], buf[1:], nil
}

package p2p

import (
	"net"

	"repro/internal/telemetry"
)

// maxFrameType is the highest defined frame type; per-type counters index
// into a fixed array so the frame path never allocates. Slot 0 collects
// unknown types.
const maxFrameType = FrameSnapshot

// frameNames spells each frame type for metric names.
var frameNames = [maxFrameType + 1]string{
	"other", "hello", "block", "meta", "chain_request", "chain", "data_request", "data",
	"sync_locator", "sync_headers", "sync_get_batch", "sync_batch",
	"repair_announce", "repair_get", "repair_data",
	"block_announce", "get_block",
	"get_snapshot", "snapshot",
}

// Metrics bundles the transport's counters. All fields are nil-safe
// (telemetry.Counter no-ops on nil), so a zero Metrics disables
// collection without any hot-path branching beyond the increments
// themselves. Construct with NewMetrics to register everything under a
// registry.
type Metrics struct {
	// FramesSent / FramesRecv count frames by direction; the ByType
	// arrays split them per frame type (index = frame type, 0 = other).
	FramesSent, FramesRecv             *telemetry.Counter
	FramesSentByType, FramesRecvByType [maxFrameType + 1]*telemetry.Counter
	// BytesSent / BytesRecv count wire bytes including the 5-byte header.
	BytesSent, BytesRecv *telemetry.Counter
	// BroadcastDelivered / BroadcastFailed accumulate Broadcast results.
	BroadcastDelivered, BroadcastFailed *telemetry.Counter
	// DialFailures counts failed Connect dials.
	DialFailures *telemetry.Counter
	// WriteDeadlineHits counts frame writes that failed on a timeout —
	// the "peer stopped draining its socket" signal.
	WriteDeadlineHits *telemetry.Counter
	// SendErrors counts all failed frame writes (deadline hits included).
	SendErrors *telemetry.Counter
}

// NewMetrics registers the transport metric set under reg (names
// "p2p.*"). A nil registry yields a Metrics whose counters are inert.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	m := &Metrics{
		FramesSent:         reg.Counter("p2p.frames_sent"),
		FramesRecv:         reg.Counter("p2p.frames_recv"),
		BytesSent:          reg.Counter("p2p.bytes_sent"),
		BytesRecv:          reg.Counter("p2p.bytes_recv"),
		BroadcastDelivered: reg.Counter("p2p.broadcast.delivered"),
		BroadcastFailed:    reg.Counter("p2p.broadcast.failed"),
		DialFailures:       reg.Counter("p2p.dial_failures"),
		WriteDeadlineHits:  reg.Counter("p2p.write_deadline_hits"),
		SendErrors:         reg.Counter("p2p.send_errors"),
	}
	for ft, name := range frameNames {
		m.FramesSentByType[ft] = reg.Counter("p2p.frames_sent." + name)
		m.FramesRecvByType[ft] = reg.Counter("p2p.frames_recv." + name)
	}
	return m
}

func frameSlot(ft byte) int {
	if int(ft) <= int(maxFrameType) {
		return int(ft)
	}
	return 0
}

// onSent records one successfully written frame.
func (m *Metrics) onSent(ft byte, payloadLen int) {
	if m == nil {
		return
	}
	m.FramesSent.Inc()
	m.FramesSentByType[frameSlot(ft)].Inc()
	m.BytesSent.Add(payloadLen + 5)
}

// onRecv records one successfully read frame.
func (m *Metrics) onRecv(ft byte, payloadLen int) {
	if m == nil {
		return
	}
	m.FramesRecv.Inc()
	m.FramesRecvByType[frameSlot(ft)].Inc()
	m.BytesRecv.Add(payloadLen + 5)
}

// onSendErr records one failed frame write, classifying deadline hits.
func (m *Metrics) onSendErr(err error) {
	if m == nil {
		return
	}
	m.SendErrors.Inc()
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		m.WriteDeadlineHits.Inc()
	}
}

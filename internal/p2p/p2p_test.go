package p2p

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// recorder collects frames thread-safely.
type recorder struct {
	mu     sync.Mutex
	frames []recorded
}

type recorded struct {
	from    string
	ft      byte
	payload []byte
}

func (r *recorder) HandleFrame(from string, ft byte, payload []byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.frames = append(r.frames, recorded{from, ft, append([]byte(nil), payload...)})
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.frames)
}

func (r *recorder) last() (recorded, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.frames) == 0 {
		return recorded{}, false
	}
	return r.frames[len(r.frames)-1], true
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

func newPair(t *testing.T) (*Node, *recorder, *Node, *recorder) {
	t.Helper()
	ra, rb := &recorder{}, &recorder{}
	a, err := Listen("127.0.0.1:0", ra)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := Listen("127.0.0.1:0", rb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return len(a.Peers()) == 1 && len(b.Peers()) == 1
	})
	return a, ra, b, rb
}

func TestConnectAndSend(t *testing.T) {
	a, _, b, rb := newPair(t)
	if err := a.Send(b.Addr(), FrameMeta, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return rb.count() == 1 })
	got, _ := rb.last()
	if got.ft != FrameMeta || !bytes.Equal(got.payload, []byte("hello")) {
		t.Fatalf("got %+v", got)
	}
	if got.from != a.Addr() {
		t.Fatalf("from = %s, want %s", got.from, a.Addr())
	}
}

func TestBidirectional(t *testing.T) {
	a, ra, b, _ := newPair(t)
	// The inbound side can also send back over the same link.
	if err := b.Send(a.Addr(), FrameBlock, []byte("resp")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return ra.count() == 1 })
	got, _ := ra.last()
	if got.ft != FrameBlock || got.from != b.Addr() {
		t.Fatalf("got %+v", got)
	}
}

func TestBroadcastReachesAllPeers(t *testing.T) {
	hub, _ := &recorder{}, 0
	center, err := Listen("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { center.Close() })

	const n = 4
	recs := make([]*recorder, n)
	for i := 0; i < n; i++ {
		recs[i] = &recorder{}
		leaf, err := Listen("127.0.0.1:0", recs[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { leaf.Close() })
		if err := leaf.Connect(center.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return len(center.Peers()) == n })
	center.Broadcast(FrameMeta, []byte("to-everyone"))
	waitFor(t, 2*time.Second, func() bool {
		for _, r := range recs {
			if r.count() != 1 {
				return false
			}
		}
		return true
	})
}

func TestDuplicateConnectIsNoop(t *testing.T) {
	a, _, b, _ := newPair(t)
	for i := 0; i < 3; i++ {
		if err := a.Connect(b.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if len(a.Peers()) != 1 || len(b.Peers()) != 1 {
		t.Fatalf("peer counts: a=%d b=%d, want 1,1", len(a.Peers()), len(b.Peers()))
	}
}

func TestSelfConnectIgnored(t *testing.T) {
	r := &recorder{}
	a, err := Listen("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	if err := a.Connect(a.Addr()); err != nil {
		t.Fatal(err)
	}
	if len(a.Peers()) != 0 {
		t.Fatal("node connected to itself")
	}
}

func TestSendToUnknownPeer(t *testing.T) {
	r := &recorder{}
	a, err := Listen("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	if err := a.Send("10.0.0.1:1234", FrameMeta, nil); err == nil {
		t.Fatal("send to unknown peer succeeded")
	}
}

func TestCloseIsIdempotentAndStopsTraffic(t *testing.T) {
	a, _, b, rb := newPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// b should notice the peer drop.
	waitFor(t, 2*time.Second, func() bool { return len(b.Peers()) == 0 })
	if rb.count() != 0 {
		t.Fatal("unexpected frames")
	}
	if err := a.Connect(b.Addr()); err == nil {
		t.Fatal("closed node accepted Connect")
	}
}

func TestLargeFrame(t *testing.T) {
	a, _, b, rb := newPair(t)
	payload := make([]byte, 1<<20) // 1 MiB data item
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := a.Send(b.Addr(), FrameData, payload); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return rb.count() == 1 })
	got, _ := rb.last()
	if !bytes.Equal(got.payload, payload) {
		t.Fatal("large payload corrupted")
	}
}

func TestOversizedFrameRejected(t *testing.T) {
	a, _, b, _ := newPair(t)
	err := a.Send(b.Addr(), FrameData, make([]byte, MaxFrameSize))
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestManyFramesInOrder(t *testing.T) {
	a, _, b, rb := newPair(t)
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send(b.Addr(), FrameMeta, []byte(fmt.Sprintf("m%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return rb.count() == count })
	rb.mu.Lock()
	defer rb.mu.Unlock()
	for i, f := range rb.frames {
		if want := fmt.Sprintf("m%03d", i); string(f.payload) != want {
			t.Fatalf("frame %d = %q, want %q (reordered?)", i, f.payload, want)
		}
	}
}

// TestServeConnRepliesWithHello pins the handshake symmetry the serveConn
// comment promises: an inbound dialer's hello is answered with the
// acceptor's own hello, so both sides learn the other's listen binding.
func TestServeConnRepliesWithHello(t *testing.T) {
	r := &recorder{}
	n, err := Listen("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })

	conn, err := net.Dial("tcp", n.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	const claimed = "127.0.0.1:54321"
	if err := writeFrame(conn, FrameHello, []byte(claimed)); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	ft, payload, err := readFrame(conn)
	if err != nil {
		t.Fatalf("no hello reply: %v", err)
	}
	if ft != FrameHello {
		t.Fatalf("reply frame type = %d, want FrameHello", ft)
	}
	if string(payload) != n.Addr() {
		t.Fatalf("reply hello = %q, want acceptor binding %q", payload, n.Addr())
	}
	waitFor(t, 2*time.Second, func() bool {
		for _, p := range n.Peers() {
			if p == claimed {
				return true
			}
		}
		return false
	})
}

// TestHelloValidation pins that an empty or oversized hello payload is
// rejected instead of being registered verbatim as a peer key.
func TestHelloValidation(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"oversized", make([]byte, MaxHelloLen+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &recorder{}
			n, err := Listen("127.0.0.1:0", r)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { n.Close() })
			conn, err := net.Dial("tcp", n.Addr())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { conn.Close() })
			if err := writeFrame(conn, FrameHello, tc.payload); err != nil {
				t.Fatal(err)
			}
			// The node must drop the connection without registering a peer.
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, _, err := readFrame(conn); err == nil {
				t.Fatal("node answered a malformed hello instead of dropping it")
			}
			if got := len(n.Peers()); got != 0 {
				t.Fatalf("malformed hello registered %d peers: %v", got, n.Peers())
			}
		})
	}
}

// TestBroadcastNotBlockedByStalledPeer pins the head-of-line fix: one peer
// that stops draining its socket (its write burns the full WriteTimeout)
// must not delay the same Broadcast's delivery to healthy peers.
func TestBroadcastNotBlockedByStalledPeer(t *testing.T) {
	oldTimeout := WriteTimeout
	WriteTimeout = 3 * time.Second
	t.Cleanup(func() { WriteTimeout = oldTimeout })

	hub := &recorder{}
	center, err := Listen("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { center.Close() })

	const healthy = 4
	recs := make([]*recorder, healthy)
	for i := 0; i < healthy; i++ {
		recs[i] = &recorder{}
		leaf, err := Listen("127.0.0.1:0", recs[i])
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { leaf.Close() })
		if err := leaf.Connect(center.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	// The stalled peer handshakes but never reads another byte, so a large
	// frame write to it blocks until the write deadline fires.
	stalled, err := net.Dial("tcp", center.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stalled.Close() })
	if err := writeFrame(stalled, FrameHello, []byte("127.0.0.1:59999")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(center.Peers()) == healthy+1 })

	// 8 MiB overflows the socket buffers, so the stalled peer's write
	// cannot complete; healthy peers drain theirs immediately.
	payload := make([]byte, 8<<20)
	start := time.Now()
	type result struct{ delivered, failed int }
	done := make(chan result, 1)
	go func() {
		d, f := center.Broadcast(FrameData, payload)
		done <- result{d, f}
	}()
	waitFor(t, 2*time.Second, func() bool {
		for _, r := range recs {
			if r.count() != 1 {
				return false
			}
		}
		return true
	})
	if elapsed := time.Since(start); elapsed >= WriteTimeout {
		t.Fatalf("healthy peers waited %v, head-of-line blocked behind the stalled peer", elapsed)
	}
	select {
	case res := <-done:
		if res.delivered != healthy || res.failed != 1 {
			t.Fatalf("broadcast = %d delivered / %d failed, want %d/1", res.delivered, res.failed, healthy)
		}
	case <-time.After(2 * WriteTimeout):
		t.Fatal("broadcast never returned")
	}
	waitFor(t, 2*time.Second, func() bool { return len(center.Peers()) == healthy })
}

package telemetry

import (
	"testing"
	"time"
)

// BenchmarkTelemetryCounter is the acceptance benchmark for the hot-path
// contract: one counter increment, expected ≈ single-digit ns and
// 0 allocs/op (the CI smoke step runs it with -benchmem; the hard
// assertion lives in TestHotPathNoAllocs).
func BenchmarkTelemetryCounter(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetryCounterParallel(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkTelemetryGauge(b *testing.B) {
	g := NewRegistry().Gauge("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkTelemetryHistogram(b *testing.B) {
	h := NewRegistry().Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 31)
	}
}

// BenchmarkTelemetryFrameRecvPath models exactly the per-frame metric
// work internal/p2p does on receive: one frame-type counter, one frame
// total, one byte count. This is the overhead a live node pays per
// inbound frame.
func BenchmarkTelemetryFrameRecvPath(b *testing.B) {
	r := NewRegistry()
	var byType [8]*Counter
	for i := range byType {
		byType[i] = r.Counter("p2p.frames_recv.type")
	}
	frames := r.Counter("p2p.frames_recv")
	bytes := r.Counter("p2p.bytes_recv")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft := byte(i % 7)
		byType[ft].Inc()
		frames.Inc()
		bytes.Add(512)
	}
}

func BenchmarkTelemetrySnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 20; i++ {
		r.Counter(time.Duration(i).String()).Add(i)
	}
	h := r.Histogram("lat")
	for i := 0; i < 1000; i++ {
		h.Observe(int64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}

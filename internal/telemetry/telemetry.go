// Package telemetry is the runtime metrics plane for the live-node stack.
// The paper's whole evaluation (§VI) is built on measured quantities —
// per-node transmission overhead, delivery time, storage fairness, energy
// per block — and the deterministic simulator collects them offline; this
// package makes the same families of numbers observable on a *live*
// deployment, with hot-path costs small enough to leave enabled always.
//
// It is dependency-free (stdlib only) and offers four primitives:
//
//   - Counter: monotonic atomic uint64 (frames sent, blocks adopted, ...).
//   - Gauge: last-written atomic int64 (current stake S_i, height, ...).
//   - Histogram: bounded log-linear histogram over non-negative int64
//     values (latencies in nanoseconds, sizes in bytes) with p50/p95/p99
//     estimation. Observe is lock-free; memory is a fixed ~8 KiB array.
//   - Ring: fixed-size structured event buffer for postmortems (fork
//     adoptions, store errors, partition heals).
//
// A Registry names and owns instances of each; Snapshot() renders one
// consistent read-only view for tests, the chaos harness and the HTTP
// endpoint (cmd/edgenode -metrics-addr).
//
// Hot-path contract: Counter.Inc/Add, Gauge.Set and Histogram.Observe
// perform no allocation and take on the order of single nanoseconds
// (single uncontended atomic op); see bench_test.go and the CI smoke
// bench. Registry lookups are mutex-guarded and meant to happen once at
// setup time — callers keep the returned pointers.
package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// --- counter ---------------------------------------------------------------

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (negative n is ignored: counters are monotonic).
func (c *Counter) Add(n int) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(uint64(n))
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --- gauge -----------------------------------------------------------------

// Gauge is a last-value-wins metric.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// --- histogram -------------------------------------------------------------

// Histogram bucket layout: log-linear ("HDR-lite"). Values below histSub
// get exact unit buckets; above that, each power-of-two octave is split
// into histSub linear sub-buckets, bounding the relative quantization
// error of a reconstructed value by 1/(2*histSub) ≈ 3%.
const (
	histSubBits = 5 // 32 sub-buckets per octave
	histSub     = 1 << histSubBits
	// histBuckets covers the full non-negative int64 range:
	// exact buckets [0,histSub) plus (63-histSubBits) octaves.
	histBuckets = histSub + (63-histSubBits)*histSub
)

// Histogram records non-negative int64 observations (latencies in
// nanoseconds, sizes in bytes) into a fixed array of atomic buckets.
// Negative observations clamp to 0. Observe is lock-free and
// allocation-free; quantiles are estimated from bucket midpoints at
// snapshot time.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64 // stored as value+1; 0 means no observations yet
	max     atomic.Int64
}

func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - histSubBits - 1
	sub := v >> uint(exp) // in [histSub, 2*histSub)
	return exp*histSub + int(sub)
}

// bucketMid returns the midpoint of bucket idx's value range, used as the
// representative value for quantile and count-weighted reconstruction.
func bucketMid(idx int) float64 {
	if idx < histSub {
		return float64(idx)
	}
	exp := idx/histSub - 1
	sub := uint64(histSub + idx%histSub)
	lo := sub << uint(exp)
	width := uint64(1) << uint(exp)
	return float64(lo) + float64(width-1)/2
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(uint64(v))].Add(1)
	h.sum.Add(v)
	// Min/max via CAS; after warmup these loops exit on the first load.
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= v+1 {
			break
		}
		if h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= v+1 {
			break
		}
		if h.max.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// ObserveSince records the elapsed time since start in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// HistSnapshot is a consistent point-in-time summary of a Histogram.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot summarizes the histogram. Count and quantiles derive from one
// pass over the bucket array; under concurrent Observe calls the view is
// the set of observations whose bucket increment landed before the pass
// reached it — each individual statistic is internally consistent.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var counts [histBuckets]uint64
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count: total,
		Min:   h.min.Load() - 1,
		Max:   h.max.Load() - 1,
		Mean:  float64(h.sum.Load()) / float64(total),
		P50:   quantile(&counts, total, 0.50),
		P95:   quantile(&counts, total, 0.95),
		P99:   quantile(&counts, total, 0.99),
	}
	return s
}

// quantile returns the value at the p-quantile (nearest-rank over bucket
// midpoints).
func quantile(counts *[histBuckets]uint64, total uint64, p float64) float64 {
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// --- event ring ------------------------------------------------------------

// Event is one structured postmortem record.
type Event struct {
	// Seq is the dense per-ring sequence number, starting at 1.
	Seq uint64 `json:"seq"`
	// At is the event time (caller-supplied so virtual-clock runs stay
	// deterministic; RecordAt) .
	At time.Time `json:"at"`
	// Name labels the event kind ("fork_adopted", "store_error", ...).
	Name string `json:"name"`
	// Detail carries free-form context.
	Detail string `json:"detail,omitempty"`
}

// Ring is a fixed-capacity event buffer: the most recent Cap events are
// kept, older ones are overwritten. It is not a hot-path structure — a
// mutex guards it.
type Ring struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded
}

// DefaultRingSize is the registry's default event-ring capacity.
const DefaultRingSize = 256

// NewRing creates a ring holding up to capacity events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Record appends an event stamped with the wall clock.
func (r *Ring) Record(name, detail string) { r.RecordAt(time.Now(), name, detail) }

// RecordAt appends an event with an explicit timestamp (virtual clocks).
func (r *Ring) RecordAt(at time.Time, name, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	e := Event{Seq: r.next, At: at, Name: name, Detail: detail}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[int((r.next-1))%cap(r.buf)] = e
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]Event(nil), r.buf...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// --- registry --------------------------------------------------------------

// Registry names and owns metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use; Counter/Gauge/
// Histogram get-or-create under a mutex and are meant to be called once
// per metric at setup time.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	ring     *Ring
}

// NewRegistry creates an empty registry with a DefaultRingSize event ring.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		ring:     NewRing(DefaultRingSize),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil *Counter, whose methods are no-ops — consumers
// can wire metrics unconditionally.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil-safe).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use
// (nil-safe).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Events returns the registry's event ring (nil for a nil registry).
func (r *Registry) Events() *Ring {
	if r == nil {
		return nil
	}
	return r.ring
}

// Snapshot is one read-only view of every registered metric.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Events     []Event                 `json:"events,omitempty"`
}

// Counter returns the named counter's value (0 when absent) — assertion
// ergonomics for tests.
func (s Snapshot) Counter(name string) uint64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Histogram returns the named histogram's summary (zero when absent).
func (s Snapshot) Histogram(name string) HistSnapshot { return s.Histograms[name] }

// Snapshot captures every metric. Counters are monotone between
// snapshots; values read while writers run reflect some interleaving of
// completed increments (each metric is read atomically, the set of
// metrics is read under the registry lock so no metric can appear or
// vanish mid-snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters:   make(map[string]uint64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistSnapshot, len(hists)),
		Events:     r.ring.Events(),
	}
	for n, c := range counters {
		snap.Counters[n] = c.Value()
	}
	for n, g := range gauges {
		snap.Gauges[n] = g.Value()
	}
	for n, h := range hists {
		snap.Histograms[n] = h.Snapshot()
	}
	return snap
}

package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	snap := r.Snapshot()
	if snap.Counter("c") != 5 || snap.Gauge("g") != 5 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
	if snap.Counter("absent") != 0 || snap.Gauge("absent") != 0 {
		t.Fatal("absent metrics should read as zero")
	}
}

// TestNilSafety: a nil registry hands out nil metrics whose methods are
// no-ops, so consumers can wire telemetry unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	r.Events().Record("x", "")
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if got := r.Histogram("x").Snapshot(); got.Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
}

// TestConcurrentIncrementRace hammers every primitive from many
// goroutines while snapshots run; correctness is exact counter totals at
// the end, and the race detector validates the memory model.
func TestConcurrentIncrementRace(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 10000
	c := r.Counter("hits")
	g := r.Gauge("level")
	h := r.Histogram("lat")
	var workersWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workersWG.Add(1)
		go func(w int) {
			defer workersWG.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(int64(i))
				h.Observe(int64(w*perWorker + i))
			}
		}(w)
	}
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() { // concurrent snapshotter
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	workersWG.Wait()
	close(stop)
	<-snapDone
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Snapshot().Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramQuantileAccuracy compares histogram quantile estimates
// against the exact metrics.Summarize over the same samples. The
// log-linear bucket layout bounds relative reconstruction error by
// ~1/histSub, so estimates must land within a few percent.
func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	samples := make([]float64, 0, 5000)
	// Deterministic long-tailed spread over four orders of magnitude.
	v := int64(17)
	for i := 0; i < 5000; i++ {
		x := v%100000 + 1
		h.Observe(x)
		samples = append(samples, float64(x))
		v = v*1103515245 + 12345
		if v < 0 {
			v = -v
		}
	}
	exact := metrics.Summarize(samples)
	got := h.Snapshot()
	if got.Count != 5000 {
		t.Fatalf("count = %d, want 5000", got.Count)
	}
	relErr := func(got, want float64) float64 {
		if want == 0 {
			return math.Abs(got)
		}
		return math.Abs(got-want) / want
	}
	// Interpolated-percentile (Summarize) vs nearest-rank-midpoint can
	// legitimately differ by one bucket width plus one rank: allow 7%.
	if e := relErr(got.P50, exact.P50); e > 0.07 {
		t.Errorf("P50 = %.1f, exact %.1f (err %.3f)", got.P50, exact.P50, e)
	}
	if e := relErr(got.P95, exact.P95); e > 0.07 {
		t.Errorf("P95 = %.1f, exact %.1f (err %.3f)", got.P95, exact.P95, e)
	}
	if e := relErr(got.Mean, exact.Mean); e > 0.01 {
		t.Errorf("Mean = %.1f, exact %.1f (err %.3f)", got.Mean, exact.Mean, e)
	}
	if got.Min != int64(exact.Min) || got.Max != int64(exact.Max) {
		t.Errorf("min/max = %d/%d, exact %.0f/%.0f", got.Min, got.Max, exact.Min, exact.Max)
	}
}

func TestHistogramBucketReconstruction(t *testing.T) {
	for _, v := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345} {
		idx := bucketIndex(v)
		mid := bucketMid(idx)
		tol := float64(v)/histSub + 1
		if math.Abs(mid-float64(v)) > tol {
			t.Errorf("v=%d: bucket %d mid %.1f off by more than %.1f", v, idx, mid, tol)
		}
	}
	// Index must be monotone non-decreasing in v and in range.
	last := -1
	for v := uint64(0); v < 1<<14; v++ {
		idx := bucketIndex(v)
		if idx < last || idx >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d (last %d, cap %d)", v, idx, last, histBuckets)
		}
		last = idx
	}
	if idx := bucketIndex(math.MaxInt64); idx >= histBuckets {
		t.Fatalf("MaxInt64 bucket %d out of range", idx)
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Snapshot(); got.Count != 0 {
		t.Fatalf("empty histogram count = %d", got.Count)
	}
	h.Observe(-5) // clamps to 0
	h.Observe(0)
	got := h.Snapshot()
	if got.Count != 2 || got.Min != 0 || got.Max != 0 || got.P50 != 0 {
		t.Fatalf("zero-value observations: %+v", got)
	}
}

// TestSnapshotConsistency: counter values in successive snapshots are
// monotone non-decreasing and never exceed the final total.
func TestSnapshotConsistency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	const total = 50000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			c.Inc()
		}
	}()
	var last uint64
	for i := 0; i < 1000; i++ {
		snap := r.Snapshot()
		v := snap.Counter("n")
		if v < last {
			t.Fatalf("snapshot went backwards: %d after %d", v, last)
		}
		if v > total {
			t.Fatalf("snapshot overshot: %d > %d", v, total)
		}
		last = v
	}
	<-done
	if got := r.Snapshot().Counter("n"); got != total {
		t.Fatalf("final snapshot = %d, want %d", got, total)
	}
}

func TestRingOverwrite(t *testing.T) {
	ring := NewRing(4)
	at := time.Unix(1700000000, 0)
	for i := 0; i < 10; i++ {
		ring.RecordAt(at.Add(time.Duration(i)*time.Second), "ev", "")
	}
	events := ring.Events()
	if len(events) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (oldest-first, most recent kept)", i, e.Seq, want)
		}
	}
}

// TestHotPathNoAllocs pins the zero-allocation contract the CI bench
// smoke step guards: counter/gauge/histogram writes on the frame path
// must not allocate.
func TestHotPathNoAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Fatalf("Counter ops allocate %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(42) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f/op", n)
	}
}

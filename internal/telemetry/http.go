package telemetry

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry over HTTP:
//
//	/metrics     structured JSON Snapshot (counters, gauges, histogram
//	             summaries, recent events)
//	/debug/vars  expvar-compatible flat JSON object — every counter and
//	             gauge as a top-level number, histograms as objects — so
//	             stock expvar scrapers work unchanged
//
// Any other path 404s. cmd/edgenode mounts this on -metrics-addr.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		flat := make(map[string]any, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
		for n, v := range snap.Counters {
			flat[n] = v
		}
		for n, v := range snap.Gauges {
			flat[n] = v
		}
		for n, v := range snap.Histograms {
			flat[n] = v
		}
		writeJSON(w, flat)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/raft"
	"repro/internal/sim"
	"repro/internal/ufl"
)

// --- A1: FDC weight sweep ---------------------------------------------------

// FDCWeightRow reports fairness/latency for one value of the scaling
// factor A of eq. (3). The paper fixed A = 1000 "after some tests"; this
// ablation shows the trade-off that choice navigates.
type FDCWeightRow struct {
	Weight      float64
	Gini        float64
	DeliverySec float64
	// StoredUnits is the total storage consumed across all nodes — low A
	// opens facilities freely and replicates heavily, which is what the
	// fairness weight holds in check.
	StoredUnits int
}

// RunFDCWeightAblation sweeps the FDC weight A.
func RunFDCWeightAblation(weights []float64, nodes int, duration time.Duration, seed int64) ([]FDCWeightRow, error) {
	if len(weights) == 0 {
		weights = []float64{1, 10, 100, 1000, 10000}
	}
	rows := make([]FDCWeightRow, 0, len(weights))
	for _, w := range weights {
		w := w
		cfg := core.DefaultConfig(nodes)
		cfg.Seed = seed
		cfg.DataRatePerMin = 2
		// Rescale the instance's open costs by w/1000 relative to the
		// default planner weight via a solver wrapper.
		ratio := w / alloc.DefaultFDCWeight
		cfg.Solver = func(in *ufl.Instance) (*ufl.Solution, error) {
			scaled := &ufl.Instance{
				OpenCost: make([]float64, len(in.OpenCost)),
				ConnCost: in.ConnCost,
			}
			for i, f := range in.OpenCost {
				scaled.OpenCost[i] = f * ratio
			}
			return ufl.Greedy(scaled)
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.Run(duration); err != nil {
			return nil, err
		}
		res := sys.Results()
		stored := 0
		for _, c := range res.StorageCounts {
			stored += c
		}
		rows = append(rows, FDCWeightRow{
			Weight:      w,
			Gini:        res.StorageGini,
			DeliverySec: res.Delivery.Mean,
			StoredUnits: stored,
		})
	}
	return rows, nil
}

// PrintFDCWeightAblation renders A1.
func PrintFDCWeightAblation(w io.Writer, rows []FDCWeightRow) {
	fmt.Fprintln(w, "Ablation A1 — FDC weight A (paper: 1000)")
	fmt.Fprintf(w, "%10s %8s %14s %14s\n", "A", "gini", "delivery (s)", "stored units")
	for _, r := range rows {
		fmt.Fprintf(w, "%10.0f %8.3f %14.2f %14d\n", r.Weight, r.Gini, r.DeliverySec, r.StoredUnits)
	}
}

// --- A3: raft heartbeat overhead --------------------------------------------

// RaftHeartbeatRow reports message load for one heartbeat interval.
type RaftHeartbeatRow struct {
	Heartbeat     time.Duration
	AppendEntries uint64
	TotalBytes    uint64
}

// RunRaftHeartbeatAblation measures the heartbeat traffic the paper calls
// out ("the approach transmits a large number of heartbeat messages") for
// a range of intervals, over the same simulated radio network the
// blockchain uses.
func RunRaftHeartbeatAblation(intervals []time.Duration, nodes int, duration time.Duration, seed int64) ([]RaftHeartbeatRow, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second, 2 * time.Second, 4 * time.Second}
	}
	rows := make([]RaftHeartbeatRow, 0, len(intervals))
	for _, hb := range intervals {
		cfg := core.DefaultConfig(nodes)
		cfg.Seed = seed
		cfg.DataRatePerMin = 0 // isolate the raft traffic
		cfg.EnableRaft = true
		cfg.RaftHeartbeat = hb
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.Run(duration); err != nil {
			return nil, err
		}
		var appends uint64
		for i := 0; i < nodes; i++ {
			if r := sys.Node(i).Raft(); r != nil {
				appends += r.Stats().Sent[raft.MsgAppendEntries]
			}
		}
		rows = append(rows, RaftHeartbeatRow{
			Heartbeat:     hb,
			AppendEntries: appends,
			TotalBytes:    sys.Results().KindBytes["raft"],
		})
	}
	return rows, nil
}

// PrintRaftHeartbeatAblation renders A3.
func PrintRaftHeartbeatAblation(w io.Writer, rows []RaftHeartbeatRow) {
	fmt.Fprintln(w, "Ablation A3 — raft heartbeat interval vs message overhead")
	fmt.Fprintf(w, "%12s %16s %14s\n", "heartbeat", "AppendEntries", "bytes")
	for _, r := range rows {
		fmt.Fprintf(w, "%12v %16d %14d\n", r.Heartbeat, r.AppendEntries, r.TotalBytes)
	}
}

// --- A4: UFL solver comparison ------------------------------------------------

// UFLSolverRow compares one solver against the exact optimum on random
// geometric instances shaped like the paper's (hop-count connection costs,
// FDC-scaled opening costs).
type UFLSolverRow struct {
	Solver    string
	MeanRatio float64
	MaxRatio  float64
	MeanCost  float64
}

// RunUFLSolverAblation evaluates the solver suite on trials random
// instances with the given facility count (≤ ufl.MaxExactFacilities).
func RunUFLSolverAblation(facilities, trials int, seed int64) ([]UFLSolverRow, error) {
	if facilities > ufl.MaxExactFacilities {
		return nil, fmt.Errorf("experiments: %d facilities exceeds exact-solver cap %d", facilities, ufl.MaxExactFacilities)
	}
	rng := rand.New(rand.NewSource(seed))
	solvers := []struct {
		name string
		fn   func(*ufl.Instance) (*ufl.Solution, error)
	}{
		{"greedy", ufl.Greedy},
		{"localsearch", func(in *ufl.Instance) (*ufl.Solution, error) { return ufl.LocalSearch(in, nil) }},
		{"jms", ufl.JMS},
	}
	sums := make([]float64, len(solvers))
	maxs := make([]float64, len(solvers))
	costs := make([]float64, len(solvers))
	for trial := 0; trial < trials; trial++ {
		in := paperLikeInstance(rng, facilities)
		opt, err := ufl.Exact(in)
		if err != nil {
			return nil, err
		}
		for i, s := range solvers {
			sol, err := s.fn(in)
			if err != nil {
				return nil, err
			}
			ratio := sol.Cost / opt.Cost
			sums[i] += ratio
			costs[i] += sol.Cost
			if ratio > maxs[i] {
				maxs[i] = ratio
			}
		}
	}
	rows := make([]UFLSolverRow, len(solvers))
	for i, s := range solvers {
		rows[i] = UFLSolverRow{
			Solver:    s.name,
			MeanRatio: sums[i] / float64(trials),
			MaxRatio:  maxs[i],
			MeanCost:  costs[i] / float64(trials),
		}
	}
	return rows, nil
}

// paperLikeInstance builds a UFL instance with the paper's cost structure:
// nodes random in the field, hop-count RDC connection costs, FDC-weighted
// opening costs under random storage loads.
func paperLikeInstance(rng *rand.Rand, n int) *ufl.Instance {
	field := geo.DefaultField()
	pls, _ := geo.PlaceNodesConnected(field, n, 30, 70, rng, 50)
	topo := netsim.NewTopology(netsim.HomePositions(pls), 70, nil)
	states := make([]alloc.NodeState, n)
	for i := range states {
		states[i] = alloc.NodeState{
			Used:          rng.Intn(200),
			Capacity:      250,
			MobilityRange: 30,
		}
	}
	p := alloc.NewPlanner(70)
	return p.BuildInstance(topo, states)
}

// PrintUFLSolverAblation renders A4.
func PrintUFLSolverAblation(w io.Writer, rows []UFLSolverRow) {
	fmt.Fprintln(w, "Ablation A4 — UFL solver vs exact optimum")
	fmt.Fprintf(w, "%12s %12s %12s %14s\n", "solver", "mean ratio", "max ratio", "mean cost")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s %12.4f %12.4f %14.1f\n", r.Solver, r.MeanRatio, r.MaxRatio, r.MeanCost)
	}
}

// --- A2: recent-block cache depth ---------------------------------------------

// RecentCacheRow reports recovery behaviour for one initial cache depth.
type RecentCacheRow struct {
	Depth          int
	RecoveredIn    time.Duration
	GapRecoveries  int
	CtrlBytes      uint64
	FinalHeightGap int64
}

// RunRecentCacheAblation measures how quickly a briefly disconnected node
// catches up for different minimum recent-cache depths. It reuses the
// system's outage machinery: node 4 goes down for the middle third of the
// run and must recover the blocks it missed.
func RunRecentCacheAblation(depths []int, nodes int, duration time.Duration, seed int64) ([]RecentCacheRow, error) {
	if len(depths) == 0 {
		depths = []int{1, 2, 4, 8}
	}
	rows := make([]RecentCacheRow, 0, len(depths))
	for _, d := range depths {
		cfg := core.DefaultConfig(nodes)
		cfg.Seed = seed
		cfg.DataRatePerMin = 1
		cfg.MobilityEpoch = 0
		cfg.InitialRecentDepth = d
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		down := duration / 3
		up := 2 * duration / 3
		sys.Engine().ScheduleAt(down, func() { sys.Network().SetDown(netsim.NodeID(4), true) })
		sys.Engine().ScheduleAt(up, func() { sys.Network().SetDown(netsim.NodeID(4), false) })
		// Poll after the node comes back: the recovery time is how long it
		// takes node 4 to reach the tallest chain in the network.
		recoveredAt := time.Duration(-1)
		var probe *sim.Ticker
		sys.Engine().ScheduleAt(up, func() {
			probe = sim.NewTicker(sys.Engine(), time.Second, func() {
				best := uint64(0)
				for i := 0; i < nodes; i++ {
					if i == 4 {
						continue
					}
					if h := sys.Node(i).Chain().Height(); h > best {
						best = h
					}
				}
				if sys.Node(4).Chain().Height() >= best {
					recoveredAt = sys.Engine().Now() - up
					probe.Stop()
				}
			})
		})
		if err := sys.Run(duration); err != nil {
			return nil, err
		}
		res := sys.Results()
		gap := int64(res.ChainHeight) - int64(sys.Node(4).Chain().Height())
		rows = append(rows, RecentCacheRow{
			Depth:          d,
			RecoveredIn:    recoveredAt,
			GapRecoveries:  res.GapRecoveries,
			CtrlBytes:      res.KindBytes["ctrl"],
			FinalHeightGap: gap,
		})
	}
	return rows, nil
}

// PrintRecentCacheAblation renders A2.
func PrintRecentCacheAblation(w io.Writer, rows []RecentCacheRow) {
	fmt.Fprintln(w, "Ablation A2 — recent-cache depth vs recovery")
	fmt.Fprintf(w, "%8s %14s %14s %12s %14s\n", "depth", "recovered in", "recoveries", "ctrl bytes", "height gap")
	for _, r := range rows {
		fmt.Fprintf(w, "%8d %14v %14d %12d %14d\n", r.Depth, r.RecoveredIn, r.GapRecoveries, r.CtrlBytes, r.FinalHeightGap)
	}
}

// --- A5: network-level consensus energy ---------------------------------------

// ConsensusEnergyRow reports the in-system energy of one consensus
// algorithm (the Fig. 6 comparison embedded in the full network
// simulation: every node mines, stores and transmits).
type ConsensusEnergyRow struct {
	Consensus       string
	Blocks          uint64
	MiningJ         float64
	RadioJ          float64
	EnergyPerBlockJ float64
}

// RunConsensusEnergyAblation runs identical deployments under PoS and PoW
// and compares the network-wide energy consumption.
func RunConsensusEnergyAblation(nodes int, duration time.Duration, seed int64) ([]ConsensusEnergyRow, error) {
	rows := make([]ConsensusEnergyRow, 0, 2)
	for _, algo := range []core.ConsensusAlgo{core.ConsensusPoS, core.ConsensusPoW} {
		cfg := core.DefaultConfig(nodes)
		cfg.Seed = seed
		cfg.DataRatePerMin = 1
		cfg.Consensus = algo
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.Run(duration); err != nil {
			return nil, err
		}
		res := sys.Results()
		var mining, radio float64
		for i := range res.MiningEnergyJ {
			mining += res.MiningEnergyJ[i]
			radio += res.RadioEnergyJ[i]
		}
		rows = append(rows, ConsensusEnergyRow{
			Consensus:       algo.String(),
			Blocks:          res.ChainHeight,
			MiningJ:         mining,
			RadioJ:          radio,
			EnergyPerBlockJ: res.EnergyPerBlockJ,
		})
	}
	return rows, nil
}

// PrintConsensusEnergyAblation renders A5.
func PrintConsensusEnergyAblation(w io.Writer, rows []ConsensusEnergyRow) {
	fmt.Fprintln(w, "Ablation A5 — network-wide mining energy, PoS vs PoW (in-system Fig. 6)")
	fmt.Fprintf(w, "%10s %8s %14s %12s %14s\n", "consensus", "blocks", "mining (J)", "radio (J)", "J/block")
	for _, r := range rows {
		fmt.Fprintf(w, "%10s %8d %14.1f %12.1f %14.1f\n", r.Consensus, r.Blocks, r.MiningJ, r.RadioJ, r.EnergyPerBlockJ)
	}
}

// --- A6: data migration ---------------------------------------------------------

// MigrationRow reports placement drift with and without the Section VII
// migration mechanism.
type MigrationRow struct {
	MaxPerBlock int
	Drift       float64 // mean cost(current)/cost(optimal) over live items
	Migrations  int
	DeliverySec float64
	CtrlMB      float64
}

// RunMigrationAblation runs identical deployments with migration disabled
// and enabled, and compares the end-of-run placement drift.
func RunMigrationAblation(nodes int, duration time.Duration, seed int64) ([]MigrationRow, error) {
	rows := make([]MigrationRow, 0, 2)
	for _, maxPer := range []int{0, 2} {
		cfg := core.DefaultConfig(nodes)
		cfg.Seed = seed
		cfg.DataRatePerMin = 3
		cfg.MigrateMaxPerBlock = maxPer
		cfg.MigrateCostRatio = 1.2
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		if err := sys.Run(duration); err != nil {
			return nil, err
		}
		res := sys.Results()
		rows = append(rows, MigrationRow{
			MaxPerBlock: maxPer,
			Drift:       sys.PlacementDrift(0),
			Migrations:  res.Migrations,
			DeliverySec: res.Delivery.Mean,
			CtrlMB:      float64(res.KindBytes["ctrl"]+res.KindBytes["data"]) / (1 << 20),
		})
	}
	return rows, nil
}

// PrintMigrationAblation renders A6.
func PrintMigrationAblation(w io.Writer, rows []MigrationRow) {
	fmt.Fprintln(w, "Ablation A6 — data migration (Section VII future work)")
	fmt.Fprintf(w, "%14s %8s %12s %14s %12s\n", "max per block", "drift", "migrations", "delivery (s)", "data+ctrl MB")
	for _, r := range rows {
		fmt.Fprintf(w, "%14d %8.3f %12d %14.2f %12.1f\n", r.MaxPerBlock, r.Drift, r.Migrations, r.DeliverySec, r.CtrlMB)
	}
}

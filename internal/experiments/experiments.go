// Package experiments regenerates every figure of the paper's evaluation
// (Section VI) plus the ablations listed in DESIGN.md:
//
//	Fig. 4 — transmission overhead / storage Gini / delivery time across
//	         node counts (10-50) and data rates (1-3 items/min).
//	Fig. 5 — optimal vs random placement: delivery time and overhead.
//	Fig. 6 — remaining battery vs blocks mined, PoW vs PoS.
//
// Each runner returns machine-readable rows and can render the same table
// the harness binaries print.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/pow"
	"repro/internal/workload"
)

// Fig4Row is one (nodes, rate) cell of Fig. 4's three panels.
type Fig4Row struct {
	Nodes          int
	RatePerMin     float64
	AvgTxMB        float64 // panel (a)
	Gini           float64 // panel (b)
	DeliverySec    float64 // panel (c)
	Deliveries     int
	ChainHeight    uint64
	DataGenerated  int
	FailedRequests int
}

// Fig4Config parametrizes the sweep; zero values take the paper defaults.
type Fig4Config struct {
	NodeCounts []int
	Rates      []float64
	Duration   time.Duration
	Seed       int64
}

func (c *Fig4Config) withDefaults() Fig4Config {
	out := *c
	if len(out.NodeCounts) == 0 {
		out.NodeCounts = []int{10, 20, 30, 40, 50}
	}
	if len(out.Rates) == 0 {
		out.Rates = []float64{1, 2, 3}
	}
	if out.Duration == 0 {
		out.Duration = 500 * time.Minute
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// RunFig4 executes the Fig. 4 sweep.
func RunFig4(cfg Fig4Config) ([]Fig4Row, error) {
	c := cfg.withDefaults()
	rows := make([]Fig4Row, 0, len(c.NodeCounts)*len(c.Rates))
	for _, n := range c.NodeCounts {
		for _, rate := range c.Rates {
			sys, err := newSystem(n, rate, core.PlaceOptimal, c.Seed)
			if err != nil {
				return nil, err
			}
			if err := sys.Run(c.Duration); err != nil {
				return nil, err
			}
			res := sys.Results()
			rows = append(rows, Fig4Row{
				Nodes:          n,
				RatePerMin:     rate,
				AvgTxMB:        res.AvgTxBytesPerNode / (1 << 20),
				Gini:           res.StorageGini,
				DeliverySec:    res.Delivery.Mean,
				Deliveries:     res.Delivery.Count,
				ChainHeight:    res.ChainHeight,
				DataGenerated:  res.DataGenerated,
				FailedRequests: res.FailedRequests,
			})
		}
	}
	return rows, nil
}

func newSystem(n int, rate float64, placement core.PlacementStrategy, seed int64) (*core.System, error) {
	cfg := core.DefaultConfig(n)
	cfg.DataRatePerMin = rate
	cfg.Placement = placement
	cfg.Seed = seed
	return core.NewSystem(cfg)
}

// PrintFig4 renders the three panels as text tables.
func PrintFig4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintln(w, "Fig. 4(a) — average transmission per node (MB)")
	fmt.Fprintln(w, "Fig. 4(b) — storage Gini coefficient")
	fmt.Fprintln(w, "Fig. 4(c) — average data delivery time (s)")
	fmt.Fprintf(w, "%6s %10s %12s %8s %14s %10s\n", "nodes", "items/min", "avg tx (MB)", "gini", "delivery (s)", "blocks")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %10.0f %12.1f %8.3f %14.2f %10d\n",
			r.Nodes, r.RatePerMin, r.AvgTxMB, r.Gini, r.DeliverySec, r.ChainHeight)
	}
}

// Fig5Row compares placement strategies at one node count.
type Fig5Row struct {
	Nodes          int
	OptimalSec     float64
	RandomSec      float64
	OptimalTxMB    float64
	RandomTxMB     float64
	DeliveryRatio  float64 // optimal / random, paper: ≈ 0.85 (15% less)
	OverheadRatio  float64 // optimal / random, paper: ≈ 1
	OptDeliveries  int
	RandDeliveries int
}

// Fig5Config parametrizes the placement comparison.
type Fig5Config struct {
	NodeCounts []int
	Duration   time.Duration
	Seed       int64
}

func (c *Fig5Config) withDefaults() Fig5Config {
	out := *c
	if len(out.NodeCounts) == 0 {
		out.NodeCounts = []int{10, 20, 30, 40, 50}
	}
	if out.Duration == 0 {
		out.Duration = 500 * time.Minute
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// RunFig5 executes the Fig. 5 comparison (1 item/min, per the paper).
// Both strategies replay the identical pre-generated workload trace, so
// the comparison is paired: every data item appears at the same time from
// the same producer with the same requesters under both placements.
func RunFig5(cfg Fig5Config) ([]Fig5Row, error) {
	c := cfg.withDefaults()
	rows := make([]Fig5Row, 0, len(c.NodeCounts))
	for _, n := range c.NodeCounts {
		poolRNG := rand.New(rand.NewSource(c.Seed + 1000))
		trace, err := workload.Generate(workload.Config{
			Duration:        c.Duration,
			RatePerMin:      1,
			NumNodes:        n,
			Requesters:      workload.PickRequesterPool(n, 0.10, poolRNG),
			RequestsPerItem: 1,
			Seed:            c.Seed,
		})
		if err != nil {
			return nil, err
		}
		var sec [2]float64
		var tx [2]float64
		var cnt [2]int
		for i, strat := range []core.PlacementStrategy{core.PlaceOptimal, core.PlaceRandom} {
			cc := core.DefaultConfig(n)
			cc.Placement = strat
			cc.Seed = c.Seed
			cc.Trace = trace
			sys, err := core.NewSystem(cc)
			if err != nil {
				return nil, err
			}
			if err := sys.Run(c.Duration); err != nil {
				return nil, err
			}
			res := sys.Results()
			sec[i] = res.Delivery.Mean
			tx[i] = res.AvgTxBytesPerNode / (1 << 20)
			cnt[i] = res.Delivery.Count
		}
		row := Fig5Row{
			Nodes: n, OptimalSec: sec[0], RandomSec: sec[1],
			OptimalTxMB: tx[0], RandomTxMB: tx[1],
			OptDeliveries: cnt[0], RandDeliveries: cnt[1],
		}
		if sec[1] > 0 {
			row.DeliveryRatio = sec[0] / sec[1]
		}
		if tx[1] > 0 {
			row.OverheadRatio = tx[0] / tx[1]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig5 renders the comparison table.
func PrintFig5(w io.Writer, rows []Fig5Row) {
	fmt.Fprintln(w, "Fig. 5 — optimal vs random placement (1 item/min)")
	fmt.Fprintf(w, "%6s %12s %12s %10s %12s %12s %10s\n",
		"nodes", "opt del(s)", "rnd del(s)", "ratio", "opt tx(MB)", "rnd tx(MB)", "ratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %12.2f %12.2f %10.2f %12.1f %12.1f %10.2f\n",
			r.Nodes, r.OptimalSec, r.RandomSec, r.DeliveryRatio,
			r.OptimalTxMB, r.RandomTxMB, r.OverheadRatio)
	}
}

// Fig6Point is one sample of the battery trace.
type Fig6Point struct {
	Blocks  int
	Percent float64
}

// Fig6Result holds both algorithms' traces.
type Fig6Result struct {
	PoW []Fig6Point
	PoS []Fig6Point
	// BlocksPerPercent summarizes the headline claim (paper: PoW ≈ 4,
	// PoS ≈ 11).
	PoWBlocksPerPercent float64
	PoSBlocksPerPercent float64
	// EnergySaving is 1 − PoS/PoW per-block energy (paper: ≈ 64%).
	EnergySaving float64
}

// Fig6Config parametrizes the mining-energy experiment.
type Fig6Config struct {
	// MeanBlockTime matches the paper's 25 s phone experiment.
	MeanBlockTime time.Duration
	// DifficultyBits is the PoW difficulty (paper: 4 hex zeros = 16 bits).
	DifficultyBits int
	// Blocks is how many blocks to mine per algorithm.
	Blocks int
	// Seed drives the hash-count sampling.
	Seed int64
	// RealHashing performs actual SHA-256 PoW work instead of sampling the
	// geometric attempt distribution; slower but bit-faithful.
	RealHashing bool
}

func (c *Fig6Config) withDefaults() Fig6Config {
	out := *c
	if out.MeanBlockTime == 0 {
		out.MeanBlockTime = 25 * time.Second
	}
	if out.DifficultyBits == 0 {
		out.DifficultyBits = pow.DefaultDifficultyBits
	}
	if out.Blocks == 0 {
		out.Blocks = 330 // paper's 84-minute run at 25 s/block mines ~200
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// RunFig6 mines blocks under both consensus algorithms against the
// calibrated Galaxy S8 battery model and records the remaining charge.
func RunFig6(cfg Fig6Config) (*Fig6Result, error) {
	c := cfg.withDefaults()
	model := energy.GalaxyS8()
	rng := rand.New(rand.NewSource(c.Seed))
	secs := c.MeanBlockTime.Seconds()

	powBattery, err := energy.NewBattery(model)
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	res.PoW = append(res.PoW, Fig6Point{0, powBattery.RemainingPercent()})
	var powEnergy float64
	for b := 1; b <= c.Blocks && !powBattery.Empty(); b++ {
		var hashes uint64
		if c.RealHashing {
			header := []byte(fmt.Sprintf("pow-block-%d", b))
			r, err := pow.Mine(header, c.DifficultyBits, rng)
			if err != nil {
				return nil, err
			}
			hashes = r.Hashes
		} else {
			hashes = pow.SimulatedHashes(c.DifficultyBits, rng)
		}
		// Block time scales with the work actually done this round.
		t := secs * float64(hashes) / pow.ExpectedHashes(c.DifficultyBits)
		e := model.BlockEnergy(t, hashes)
		powEnergy += e
		powBattery.Drain(e)
		res.PoW = append(res.PoW, Fig6Point{b, powBattery.RemainingPercent()})
	}

	posBattery, err := energy.NewBattery(model)
	if err != nil {
		return nil, err
	}
	res.PoS = append(res.PoS, Fig6Point{0, posBattery.RemainingPercent()})
	var posEnergy float64
	for b := 1; b <= c.Blocks && !posBattery.Empty(); b++ {
		// PoS: exponential round time with the same mean; one hash for the
		// hit plus one target check per second (alg. Section V-C).
		t := rng.ExpFloat64() * secs
		hashes := uint64(t) + 1
		e := model.BlockEnergy(t, hashes)
		posEnergy += e
		posBattery.Drain(e)
		res.PoS = append(res.PoS, Fig6Point{b, posBattery.RemainingPercent()})
	}

	onePct := model.CapacityJoules / 100
	if n := len(res.PoW) - 1; n > 0 {
		res.PoWBlocksPerPercent = float64(n) / (powEnergy / onePct)
	}
	if n := len(res.PoS) - 1; n > 0 {
		res.PoSBlocksPerPercent = float64(n) / (posEnergy / onePct)
	}
	if powEnergy > 0 && len(res.PoW) > 1 && len(res.PoS) > 1 {
		perPoW := powEnergy / float64(len(res.PoW)-1)
		perPoS := posEnergy / float64(len(res.PoS)-1)
		res.EnergySaving = 1 - perPoS/perPoW
	}
	return res, nil
}

// PrintFig6 renders the battery trace at decile points.
func PrintFig6(w io.Writer, r *Fig6Result) {
	fmt.Fprintln(w, "Fig. 6 — remaining battery vs blocks mined (Galaxy S8 model, 25 s/block)")
	fmt.Fprintf(w, "%8s %12s %12s\n", "blocks", "PoW (%)", "PoS (%)")
	step := len(r.PoW) / 10
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.PoW); i += step {
		posPct := float64(100)
		if i < len(r.PoS) {
			posPct = r.PoS[i].Percent
		}
		fmt.Fprintf(w, "%8d %12.1f %12.1f\n", r.PoW[i].Blocks, r.PoW[i].Percent, posPct)
	}
	fmt.Fprintf(w, "blocks per 1%% battery: PoW %.1f, PoS %.1f; PoS saves %.0f%% energy per block\n",
		r.PoWBlocksPerPercent, r.PoSBlocksPerPercent, r.EnergySaving*100)
}

// headline constants referenced by tests and EXPERIMENTS.md.
const (
	// PaperDeliveryImprovement is the paper's "15% less time" claim.
	PaperDeliveryImprovement = 0.15
	// PaperGiniBound is the paper's "disparity measurement less than 0.15".
	PaperGiniBound = 0.15
	// PaperEnergySaving is the paper's "64% less battery power".
	PaperEnergySaving = 0.64
)

package experiments

import (
	"bytes"
	"testing"
	"time"
)

// Short-duration sweeps keep unit tests fast; the bench harness and
// cmd/figures run the paper-scale 500-minute versions.

func TestFig4ShapesHold(t *testing.T) {
	rows, err := RunFig4(Fig4Config{
		NodeCounts: []int{10, 30},
		Rates:      []float64{1, 3},
		Duration:   60 * time.Minute,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byKey := map[[2]int]Fig4Row{}
	for _, r := range rows {
		if r.ChainHeight == 0 {
			t.Fatalf("no blocks mined: %+v", r)
		}
		if r.Gini < 0 || r.Gini > PaperGiniBound+0.2 {
			t.Fatalf("gini %v out of plausible range: %+v", r.Gini, r)
		}
		if r.DeliverySec <= 0 || r.DeliverySec > 10 {
			t.Fatalf("delivery %v s implausible: %+v", r.DeliverySec, r)
		}
		if r.AvgTxMB <= 0 {
			t.Fatalf("no transmission recorded: %+v", r)
		}
		byKey[[2]int{r.Nodes, int(r.RatePerMin)}] = r
	}
	// Shape: more data means more total traffic at fixed node count.
	if byKey[[2]int{30, 3}].AvgTxMB <= byKey[[2]int{30, 1}].AvgTxMB {
		t.Errorf("avg tx did not grow with data rate: %+v vs %+v",
			byKey[[2]int{30, 3}], byKey[[2]int{30, 1}])
	}
	var buf bytes.Buffer
	PrintFig4(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

func TestFig4PerNodeOverheadDecreasesWithSize(t *testing.T) {
	// Shape from Section VI-A: "decreasing on average overhead per node
	// when more nodes are presented" at a fixed data rate.
	rows, err := RunFig4(Fig4Config{
		NodeCounts: []int{10, 50},
		Rates:      []float64{2},
		Duration:   120 * time.Minute,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows[1].AvgTxMB >= rows[0].AvgTxMB {
		t.Fatalf("per-node overhead did not decrease: n=10 %.1f MB, n=50 %.1f MB",
			rows[0].AvgTxMB, rows[1].AvgTxMB)
	}
	t.Logf("n=10: %.1f MB/node, n=50: %.1f MB/node", rows[0].AvgTxMB, rows[1].AvgTxMB)
}

func TestFig5OptimalBeatsRandom(t *testing.T) {
	// Full paper duration: shorter runs have too few deliveries (~80) to
	// separate the strategies from noise. The comparison is trace-paired.
	rows, err := RunFig5(Fig5Config{
		NodeCounts: []int{20},
		Duration:   500 * time.Minute,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.OptDeliveries == 0 || r.RandDeliveries == 0 {
		t.Fatalf("missing deliveries: %+v", r)
	}
	// Headline claim: optimal placement delivers faster than random.
	if r.DeliveryRatio >= 1.0 {
		t.Fatalf("optimal placement not faster: ratio %.2f (%+v)", r.DeliveryRatio, r)
	}
	// And the message overhead stays comparable (paper: "almost the same").
	if r.OverheadRatio < 0.5 || r.OverheadRatio > 1.5 {
		t.Fatalf("overhead ratio %.2f not comparable: %+v", r.OverheadRatio, r)
	}
	t.Logf("delivery ratio %.2f (paper ≈ 0.85), overhead ratio %.2f (paper ≈ 1)",
		r.DeliveryRatio, r.OverheadRatio)
	var buf bytes.Buffer
	PrintFig5(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

func TestFig6ReproducesEnergyClaims(t *testing.T) {
	res, err := RunFig6(Fig6Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PoWBlocksPerPercent < 3 || res.PoWBlocksPerPercent > 5.2 {
		t.Fatalf("PoW blocks per 1%% = %.2f, paper ≈ 4", res.PoWBlocksPerPercent)
	}
	if res.PoSBlocksPerPercent < 9 || res.PoSBlocksPerPercent > 13.5 {
		t.Fatalf("PoS blocks per 1%% = %.2f, paper ≈ 11", res.PoSBlocksPerPercent)
	}
	if res.EnergySaving < 0.55 || res.EnergySaving > 0.75 {
		t.Fatalf("energy saving %.0f%%, paper ≈ 64%%", res.EnergySaving*100)
	}
	// The PoW battery trace must fall strictly faster than PoS.
	lastPoW := res.PoW[len(res.PoW)-1]
	if lastPoW.Blocks < len(res.PoS)-1 && lastPoW.Percent > 1 {
		t.Fatalf("PoW trace ended early without draining: %+v", lastPoW)
	}
	var buf bytes.Buffer
	PrintFig6(&buf, res)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
	t.Logf("PoW %.2f blk/%%, PoS %.2f blk/%%, saving %.0f%%",
		res.PoWBlocksPerPercent, res.PoSBlocksPerPercent, res.EnergySaving*100)
}

func TestFig6RealHashing(t *testing.T) {
	// Real SHA-256 mining at reduced difficulty, scaled block count.
	res, err := RunFig6(Fig6Config{Seed: 2, Blocks: 30, DifficultyBits: 14, RealHashing: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PoW) < 31 {
		t.Fatalf("PoW mined only %d blocks", len(res.PoW)-1)
	}
	if res.EnergySaving <= 0 {
		t.Fatalf("no energy saving with real hashing: %+v", res)
	}
}

func TestFDCWeightAblation(t *testing.T) {
	rows, err := RunFDCWeightAblation([]float64{1, 1000}, 15, 40*time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Gini < 0 || r.Gini > 1 {
			t.Fatalf("gini out of range: %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintFDCWeightAblation(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

func TestRaftHeartbeatAblation(t *testing.T) {
	rows, err := RunRaftHeartbeatAblation(
		[]time.Duration{500 * time.Millisecond, 2 * time.Second}, 8, 5*time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].AppendEntries <= rows[1].AppendEntries {
		t.Fatalf("faster heartbeat did not send more AppendEntries: %+v", rows)
	}
	if rows[0].TotalBytes == 0 {
		t.Fatal("no raft bytes recorded")
	}
	var buf bytes.Buffer
	PrintRaftHeartbeatAblation(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

func TestUFLSolverAblation(t *testing.T) {
	rows, err := RunUFLSolverAblation(12, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.MeanRatio < 1-1e-9 {
			t.Fatalf("%s beat the exact optimum: %+v", r.Solver, r)
		}
		if r.MeanRatio > 2 {
			t.Fatalf("%s mean ratio %.3f implausibly bad", r.Solver, r.MeanRatio)
		}
	}
	if _, err := RunUFLSolverAblation(100, 1, 1); err == nil {
		t.Fatal("oversized exact instance accepted")
	}
	var buf bytes.Buffer
	PrintUFLSolverAblation(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

func TestRecentCacheAblation(t *testing.T) {
	rows, err := RunRecentCacheAblation([]int{1, 8}, 12, 30*time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The outage node must end close to the network height.
		if r.FinalHeightGap > 3 || r.FinalHeightGap < -3 {
			t.Fatalf("depth %d: recovery failed, height gap %d", r.Depth, r.FinalHeightGap)
		}
	}
	var buf bytes.Buffer
	PrintRecentCacheAblation(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
}

func TestConsensusEnergyAblation(t *testing.T) {
	rows, err := RunConsensusEnergyAblation(12, 30*time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	posRow, powRow := rows[0], rows[1]
	if posRow.Blocks == 0 || powRow.Blocks == 0 {
		t.Fatalf("missing blocks: %+v", rows)
	}
	// PoW must burn far more mining energy per block (paper: PoS saves
	// ~64%; in-network with radio overhead the gap stays large).
	if powRow.MiningJ < 10*posRow.MiningJ {
		t.Fatalf("PoW mining energy %.1f J not dominating PoS %.1f J", powRow.MiningJ, posRow.MiningJ)
	}
	var buf bytes.Buffer
	PrintConsensusEnergyAblation(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
	t.Logf("PoS %.1f J mining, PoW %.1f J mining over %d/%d blocks",
		posRow.MiningJ, powRow.MiningJ, posRow.Blocks, powRow.Blocks)
}

func TestMigrationAblation(t *testing.T) {
	rows, err := RunMigrationAblation(15, 60*time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	off, on := rows[0], rows[1]
	if off.Migrations != 0 {
		t.Fatalf("baseline ran %d migrations", off.Migrations)
	}
	if on.Migrations == 0 {
		t.Skip("no drift materialized under this seed")
	}
	// Migration must not make placement worse.
	if on.Drift > off.Drift*1.1 {
		t.Fatalf("migration worsened drift: %.3f -> %.3f", off.Drift, on.Drift)
	}
	var buf bytes.Buffer
	PrintMigrationAblation(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty table")
	}
	t.Logf("drift without migration %.3f, with %.3f (%d migrations)", off.Drift, on.Drift, on.Migrations)
}

package livenode

// Snapshot bootstrap and chain pruning (DESIGN.md §14). A fresh node
// joining a long-lived deployment does not replay the whole history:
// it asks its first peer for the latest finalized state snapshot
// (FrameGetSnapshot), reassembles and hash-verifies the chunked reply
// (FrameSnapshot), installs it through engine.BootstrapFromSnapshot, and
// then catches up only the live suffix over the normal §10 locator sync.
// Any failure — no snapshot offered, a timeout, a hash mismatch, a decode
// error — falls back to plain suffix sync from genesis, so bootstrap is
// strictly an optimization, never a liveness risk.
//
// On the pruning side, a node with Config.PruneDepth > 0 runs the engine
// with checkpoint finality and discards block bodies below the prune
// horizon; the engine's OnPrune callback persists the justifying snapshot
// (plus the header spine below it) and compacts the WAL segments that
// fell wholly below the horizon, keeping steady-state disk O(prune
// window) instead of O(chain length).

import (
	"crypto/sha256"
	"fmt"
	"time"

	"repro/internal/chain"
	"repro/internal/engine"
	"repro/internal/p2p"
)

const (
	// snapChunkData is the data payload carried by one FrameSnapshot
	// chunk; blobs larger than this are split so no single frame
	// approaches the transport bound.
	snapChunkData = 256 << 10
	// maxSnapTotal bounds the reassembled snapshot size a client will
	// accept (and with it the chunk count, to maxSnapTotal/snapChunkData).
	maxSnapTotal = 64 << 20
)

// snapChunk is the decoded FrameSnapshot payload: which snapshot this
// chunk belongs to (height, total byte length, content hash) and where it
// sits in the stream (index, count). Count zero is the explicit "no
// snapshot available" answer and carries no data.
type snapChunk struct {
	Height uint64
	Total  uint64
	Hash   [sha256.Size]byte
	Idx    uint32
	Count  uint32
	Data   []byte
}

// encodeSnapshotChunk serializes one FrameSnapshot payload.
func encodeSnapshotChunk(height, total uint64, hash [sha256.Size]byte, idx, count uint32, data []byte) []byte {
	out := make([]byte, 0, 8+8+sha256.Size+4+4+len(data))
	out = putU64(out, height)
	out = putU64(out, total)
	out = append(out, hash[:]...)
	out = putU32(out, idx)
	out = putU32(out, count)
	return append(out, data...)
}

// decodeSnapshotChunk parses and bounds-checks a FrameSnapshot payload. A
// forged frame can neither trigger a large allocation (total is capped)
// nor desynchronize reassembly (index/count/size arithmetic is enforced
// here, before any state is touched).
func decodeSnapshotChunk(payload []byte) (snapChunk, error) {
	var c snapChunk
	r := &syncReader{b: payload}
	c.Height = r.uint64()
	c.Total = r.uint64()
	copy(c.Hash[:], r.take(sha256.Size))
	c.Idx = r.uint32()
	c.Count = r.uint32()
	if r.err != nil {
		return c, r.err
	}
	c.Data = payload[r.off:]
	if c.Count == 0 {
		if c.Total != 0 || len(c.Data) != 0 {
			return c, fmt.Errorf("%w: non-empty no-snapshot chunk", errSyncFrame)
		}
		return c, nil
	}
	if c.Total == 0 || c.Total > maxSnapTotal {
		return c, fmt.Errorf("%w: snapshot of %d bytes", errSyncFrame, c.Total)
	}
	if want := uint32((c.Total + snapChunkData - 1) / snapChunkData); c.Count != want {
		return c, fmt.Errorf("%w: %d chunks for %d bytes, want %d", errSyncFrame, c.Count, c.Total, want)
	}
	if c.Idx >= c.Count {
		return c, fmt.Errorf("%w: chunk %d of %d", errSyncFrame, c.Idx, c.Count)
	}
	wantLen := snapChunkData
	if c.Idx == c.Count-1 {
		wantLen = int(c.Total - uint64(c.Idx)*snapChunkData)
	}
	if len(c.Data) != wantLen {
		return c, fmt.Errorf("%w: chunk %d carries %d bytes, want %d", errSyncFrame, c.Idx, len(c.Data), wantLen)
	}
	return c, nil
}

// bootstrapState is one in-flight snapshot bootstrap: created by Connect
// on a fresh node, destroyed on install, explicit refusal, stream
// inconsistency or timeout. While it exists, mining and every
// chain-adoption frame are suppressed — installing a snapshot requires
// the engine to still be at height 0.
type bootstrapState struct {
	gen    uint64 // guards stale timeout fires
	peer   string
	height uint64
	total  uint64
	hash   [sha256.Size]byte
	chunks [][]byte // nil until the first chunk fixes the stream shape
	have   int
	timer  Timer
}

// bootstrapPending reports whether a snapshot bootstrap is in flight.
func (n *Node) bootstrapPending() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.boot != nil
}

// beginBootstrap opens a bootstrap session against peer and sends the
// snapshot request. It reports false when bootstrap cannot apply (node
// not fresh, already bootstrapping, closed); the caller then falls back
// to plain locator sync.
func (n *Node) beginBootstrap(peer string) bool {
	n.mu.Lock()
	if n.closed || n.boot != nil || n.eng.Height() != 0 || n.eng.Chain().BodyBase() != 0 {
		n.mu.Unlock()
		return false
	}
	n.bootGen++
	// The attempt the startup mining hold was waiting for; from here the
	// in-flight session (n.boot) suppresses mining and its end rearms it.
	n.bootHold = false
	bs := &bootstrapState{gen: n.bootGen, peer: peer}
	// One generous deadline for the whole transfer; chunk loss is not
	// retried (the snapshot is an optimization — suffix sync always works).
	timeout := n.cfg.SyncTimeout * time.Duration(n.cfg.SyncRetries+1)
	gen := bs.gen
	bs.timer = n.clock.AfterFunc(timeout, func() { n.onBootstrapTimeout(gen) })
	n.boot = bs
	n.tel.bootRequests.Inc()
	// A bootstrap in flight suppresses mining (the fresh-engine check
	// would fail after height 1); re-arm happens when the session ends.
	if n.mineTimer != nil {
		n.mineTimer.Stop()
		n.mineTimer = nil
	}
	n.mu.Unlock()
	n.send(peer, p2p.FrameGetSnapshot, nil)
	return true
}

// clearBootstrapLocked tears the session down (n.mu held).
func (n *Node) clearBootstrapLocked() {
	if n.boot == nil {
		return
	}
	if n.boot.timer != nil {
		n.boot.timer.Stop()
	}
	n.boot = nil
}

// abandonBootstrapLocked gives the snapshot path up and rearms mining
// (n.mu held); the caller sends the fallback locator after unlocking.
func (n *Node) abandonBootstrapLocked(why string) {
	n.tel.bootFallbacks.Inc()
	n.tel.events.RecordAt(n.clock.Now(), "bootstrap_fallback", why)
	n.clearBootstrapLocked()
	n.scheduleMiningLocked()
}

// onBootstrapTimeout fires when the transfer did not complete in time:
// abandon the snapshot path and probe everyone with a locator instead.
func (n *Node) onBootstrapTimeout(gen uint64) {
	n.mu.Lock()
	if n.boot == nil || n.boot.gen != gen || n.closed {
		n.mu.Unlock()
		return
	}
	n.abandonBootstrapLocked("snapshot transfer timed out")
	n.mu.Unlock()
	n.sendSyncLocator("")
}

// handleGetSnapshot serves a peer's snapshot request: export the newest
// finalized snapshot and stream it in bounded chunks. A node with nothing
// to offer answers with an explicit zero-count chunk so the requester
// falls back immediately instead of waiting out its timeout.
func (n *Node) handleGetSnapshot(from string) {
	n.mu.Lock()
	snap, ok := n.eng.ExportSnapshot()
	n.mu.Unlock()
	var blob []byte
	if ok {
		blob = snap.Encode()
	}
	if !ok || len(blob) == 0 || len(blob) > maxSnapTotal {
		n.send(from, p2p.FrameSnapshot, encodeSnapshotChunk(0, 0, [sha256.Size]byte{}, 0, 0, nil))
		return
	}
	n.tel.bootServed.Inc()
	hash := snap.ContentHash()
	total := uint64(len(blob))
	count := uint32((total + snapChunkData - 1) / snapChunkData)
	for i := uint32(0); i < count; i++ {
		lo := uint64(i) * snapChunkData
		hi := min(lo+snapChunkData, total)
		n.send(from, p2p.FrameSnapshot, encodeSnapshotChunk(snap.Height, total, hash, i, count, blob[lo:hi]))
	}
}

// handleSnapshot ingests one FrameSnapshot chunk. Once every chunk is in,
// the blob is verified against the advertised content hash, decoded, and
// installed; nothing unverified ever reaches the engine. Every failure
// path degrades to plain locator sync.
func (n *Node) handleSnapshot(from string, payload []byte) {
	c, err := decodeSnapshotChunk(payload)
	if err != nil {
		return
	}
	n.mu.Lock()
	bs := n.boot
	if bs == nil || from != bs.peer {
		n.mu.Unlock()
		return // unsolicited or foreign chunk
	}
	if c.Count == 0 {
		n.abandonBootstrapLocked("peer offers no snapshot")
		n.mu.Unlock()
		n.sendSyncLocator(from)
		return
	}
	if bs.chunks == nil {
		bs.height, bs.total, bs.hash = c.Height, c.Total, c.Hash
		bs.chunks = make([][]byte, c.Count)
	} else if c.Height != bs.height || c.Total != bs.total || c.Hash != bs.hash || int(c.Count) != len(bs.chunks) {
		n.abandonBootstrapLocked("inconsistent snapshot stream")
		n.mu.Unlock()
		n.sendSyncLocator("")
		return
	}
	if bs.chunks[c.Idx] == nil {
		bs.chunks[c.Idx] = append([]byte(nil), c.Data...)
		bs.have++
		n.tel.bootChunks.Inc()
		n.tel.bootBytes.Add(len(c.Data))
	}
	if bs.have < len(bs.chunks) {
		n.mu.Unlock()
		return
	}

	blob := make([]byte, 0, bs.total)
	for _, part := range bs.chunks {
		blob = append(blob, part...)
	}
	if sha256.Sum256(blob) != bs.hash {
		n.abandonBootstrapLocked("snapshot hash mismatch")
		n.mu.Unlock()
		n.sendSyncLocator("")
		return
	}
	snap, err := engine.DecodeSnapshot(blob)
	if err == nil && snap.Height != bs.height {
		err = fmt.Errorf("livenode: snapshot height %d, advertised %d", snap.Height, bs.height)
	}
	if err == nil {
		err = n.eng.BootstrapFromSnapshot(snap)
	}
	if err != nil {
		n.abandonBootstrapLocked(err.Error())
		n.mu.Unlock()
		n.sendSyncLocator("")
		return
	}
	n.tel.bootInstalled.Inc()
	n.tel.events.RecordAt(n.clock.Now(), "bootstrap_installed",
		fmt.Sprintf("height %d, %d bytes", snap.Height, len(blob)))
	// Persist the installed state so a restart does not depend on the
	// peer still being around: snapshot blob + manifest checkpoint. The
	// spine below the anchor is unknown to a bootstrapped node, so none
	// is written.
	n.noteStoreErrLocked(n.store.SaveSnapshot(snap.Height, blob, nil))
	n.noteStoreErrLocked(n.store.Checkpoint(snap.Height, snap.Block.Hash))
	n.persistedSnap = snap.Height
	n.updateChainGauges()
	peer := bs.peer
	n.clearBootstrapLocked()
	n.scheduleMiningLocked()
	n.mu.Unlock()
	// Catch up whatever was mined above the snapshot anchor.
	n.sendSyncLocator(peer)
}

// --- pruning -------------------------------------------------------------------

// onPrune is the engine's prune callback (invoked with n.mu held, like
// every engine callback): record telemetry, make sure the snapshot that
// justifies the new horizon is on disk, then drop the WAL segments that
// fell wholly below it. During WAL replay the disk state is already
// consistent, so recovery skips the I/O.
func (n *Node) onPrune(horizon uint64, pruned int) {
	n.tel.pruneRuns.Inc()
	n.tel.pruneBodies.Add(pruned)
	n.tel.pruneHorizon.Set(int64(horizon))
	if n.replaying {
		return
	}
	n.persistSnapshotLocked()
	n.noteStoreErrLocked(n.store.CompactBlocks(horizon))
}

// persistSnapshotLocked writes the engine's newest exportable snapshot
// (and the header spine below its anchor) through the store, once per
// snapshot height (n.mu held).
func (n *Node) persistSnapshotLocked() {
	snap, ok := n.eng.ExportSnapshot()
	if !ok || snap.Height <= n.persistedSnap {
		return
	}
	var spine []chain.Header
	if snap.Height > 1 {
		spine = n.eng.Chain().Headers(1, snap.Height-1)
	}
	if err := n.store.SaveSnapshot(snap.Height, snap.Encode(), spine); err != nil {
		n.noteStoreErrLocked(err)
		return
	}
	n.persistedSnap = snap.Height
	n.tel.snapshotsPersisted.Inc()
}

package livenode

import (
	"repro/internal/meta"
	"repro/internal/p2p"
)

// Inv-style metadata relay (DESIGN.md §15). The consensus round (paper
// §III-B) assumes every node eventually holds the metadata pool, and the
// transport used to get there by pushing every published item in full to
// every peer — the last O(n²) flood on the consensus plane after the §13
// block relay landed. The relay replaces the push with the same
// announce/fetch discipline blocks use:
//
//	producer                  sampled peer              its sampled peers
//	  FrameMetaAnnounce ─────────▶
//	  ◀──────── FrameGetMeta(ids)    (only the IDs it lacks)
//	  FrameMeta(item) ────────────▶  (one frame per fetched item)
//	                              FrameMetaAnnounce ─────────▶  …
//
// A node that admits a fetched (or pushed) item to its pool for the first
// time re-relays the announce to a bounded sample of peers, excluding
// whoever delivered the item, so dissemination is epidemic: O(fanout)
// 37-byte announces per node per item, and each node uploads the full
// item only a bounded number of times. Announces and fetches are
// batchable (one frame carries up to maxMetaBatch IDs).
//
// Deliberate divergence from the block path: an unanswered FrameGetMeta
// does NOT fall back to a locator round. Metadata is not load-bearing
// until a miner packs it into a block, and packed items reach every
// replica through the §10 sync path anyway — so a timed-out fetch just
// drops its pending entry (a later announce from any peer may retry) and
// pool convergence becomes eventual instead of synchronous. Only item
// IDs travel in announce/fetch frames; admission to the pool happens
// exclusively in the FrameMeta handler behind meta.Item.Verify, so no
// forged announce or fetch can inject pool state.
const (
	// maxMetaBatch bounds the IDs one FrameMetaAnnounce or FrameGetMeta
	// carries; oversized counts are rejected before allocation.
	maxMetaBatch = 64
	// metaSeenCap bounds the seen-ID LRU (IDs announced but rejected or
	// already on chain). Metadata is smaller and chattier than blocks, so
	// the ring is deeper than the block path's.
	metaSeenCap = 1024
	// maxPendingMetaFetch bounds concurrently outstanding fetched IDs;
	// past it announces are dropped (the §10 sync path still delivers
	// whatever a miner packs).
	maxPendingMetaFetch = 256
)

// pendingMetaFetch tracks the outstanding FrameGetMeta entry for one ID.
type pendingMetaFetch struct {
	from  string
	gen   uint64
	timer Timer
}

// metaGossipEnabledLocked reports whether the metadata relay (rather than
// the legacy full-mesh push) is in effect (n.mu held).
func (n *Node) metaGossipEnabledLocked() bool {
	return n.gossip != nil && n.gossip.metaFanout > 0
}

// --- wire codecs --------------------------------------------------------------

// encodeIDList serializes a FrameMetaAnnounce / FrameGetMeta payload: a
// 4-byte count followed by 32-byte data IDs.
func encodeIDList(ids []meta.DataID) []byte {
	out := make([]byte, 0, 4+len(ids)*len(meta.DataID{}))
	out = putU32(out, uint32(len(ids)))
	for _, id := range ids {
		out = append(out, id[:]...)
	}
	return out
}

func decodeIDList(payload []byte) ([]meta.DataID, error) {
	r := &syncReader{b: payload}
	count := r.uint32()
	if r.err == nil && (count == 0 || count > maxMetaBatch) {
		r.err = errSyncFrame
	}
	if r.err != nil {
		return nil, r.err
	}
	ids := make([]meta.DataID, 0, count)
	for i := uint32(0); i < count; i++ {
		var id meta.DataID
		copy(id[:], r.take(len(id)))
		ids = append(ids, id)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return ids, nil
}

// --- relay --------------------------------------------------------------------

// relayMeta announces freshly pooled item IDs to a bounded random sample
// of peers (never the one that delivered them). Callers must NOT hold
// n.mu; the sends are synchronous.
func (n *Node) relayMeta(ids []meta.DataID, exclude string) {
	if len(ids) == 0 {
		return
	}
	peers := n.net.Peers()
	cand := peers[:0]
	for _, p := range peers {
		if p != exclude {
			cand = append(cand, p)
		}
	}
	n.mu.Lock()
	g := n.gossip
	if g == nil || g.metaFanout <= 0 || n.closed {
		n.mu.Unlock()
		return
	}
	targets := samplePeersLocked(g.rng, cand, g.metaFanout)
	n.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	ann := encodeIDList(ids)
	for _, p := range targets {
		n.send(p, p2p.FrameMetaAnnounce, ann)
	}
	n.tel.metaRelays.Inc()
}

// --- announce / fetch handlers ------------------------------------------------

// handleMetaAnnounce applies the dedup rules per announced ID and batches
// one FrameGetMeta back to the announcer for the genuinely unknown ones.
// A pending entry that times out is simply forgotten — re-announces may
// retry, and the §10 sync path delivers whatever gets packed meanwhile.
func (n *Node) handleMetaAnnounce(from string, payload []byte) {
	ids, err := decodeIDList(payload)
	if err != nil {
		return
	}
	var want []meta.DataID
	n.mu.Lock()
	g := n.gossip
	if g == nil || g.metaFanout <= 0 || n.closed {
		n.mu.Unlock()
		return
	}
	for _, id := range ids {
		switch {
		case n.eng.OnChain(id):
			// Already packed: the pool will never want it again.
			g.metaSeen.Add(id)
			n.tel.metaDupSuppressed.Inc()
		case n.eng.PoolHas(id):
			n.tel.metaDupSuppressed.Inc()
		case g.metaSeen.Has(id):
			n.tel.metaDupSuppressed.Inc()
		case g.metaPending[id] != nil:
			n.tel.metaDupSuppressed.Inc()
		case len(g.metaPending) >= maxPendingMetaFetch:
			// Fetch table saturated: drop the announce. Unlike the block
			// path there is nothing to degrade to — packed items arrive
			// via sync, unpacked ones via a later announce.
			n.tel.metaFetchDropped.Inc()
		default:
			g.metaGen++
			pm := &pendingMetaFetch{from: from, gen: g.metaGen}
			gen := g.metaGen
			fetchID := id
			pm.timer = n.clock.AfterFunc(n.cfg.SyncTimeout, func() { n.onMetaFetchTimeout(fetchID, gen) })
			g.metaPending[id] = pm
			want = append(want, id)
		}
	}
	n.mu.Unlock()
	if len(want) > 0 {
		n.tel.metaFetchesSent.Add(len(want))
		n.send(from, p2p.FrameGetMeta, encodeIDList(want))
	}
}

// handleGetMeta serves fetched items from the pool, one FrameMeta each;
// IDs this node no longer pools are ignored (if they were packed, the
// requester gets them through block propagation or sync instead).
func (n *Node) handleGetMeta(from string, payload []byte) {
	ids, err := decodeIDList(payload)
	if err != nil {
		return
	}
	var bodies [][]byte
	n.mu.Lock()
	for _, id := range ids {
		if it := n.eng.PoolItem(id); it != nil {
			bodies = append(bodies, it.Encode())
		}
	}
	n.mu.Unlock()
	for _, b := range bodies {
		n.tel.metaFetchesServed.Inc()
		n.send(from, p2p.FrameMeta, b)
	}
}

// onMetaFetchTimeout fires when an announcer never answered a
// FrameGetMeta entry: the pending slot is freed so a later announce (from
// anyone) may retry. No locator fallback — see the package comment.
func (n *Node) onMetaFetchTimeout(id meta.DataID, gen uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g := n.gossip
	if g == nil || n.closed {
		return
	}
	pm := g.metaPending[id]
	if pm == nil || pm.gen != gen {
		return // answered, or superseded
	}
	delete(g.metaPending, id)
	n.tel.metaFetchTimeouts.Inc()
}

// noteMetaArrivalLocked records the arrival of a full metadata item
// against the relay state (n.mu held): a pending fetch for its ID is
// complete, and an item that failed admission (forged signature,
// duplicate) joins the seen set so its re-announce does not refetch.
// Returns whether the admitted item should be re-relayed.
func (n *Node) noteMetaArrivalLocked(id meta.DataID, added bool) (relay bool) {
	g := n.gossip
	if g == nil || g.metaFanout <= 0 {
		return false
	}
	if pm := g.metaPending[id]; pm != nil {
		pm.timer.Stop()
		delete(g.metaPending, id)
	}
	if !added {
		g.metaSeen.Add(id)
		return false
	}
	return true
}

package livenode

import (
	"os"
	"testing"
	"time"

	"repro/internal/store"
)

// TestMeasureFootprint100k is a measurement harness, not a regression
// test: run with FOOTPRINT=1 to print resident-chain and WAL numbers at
// 100k blocks with pruning on vs off (EXPERIMENTS.md §14 table).
func TestMeasureFootprint100k(t *testing.T) {
	if os.Getenv("FOOTPRINT") == "" {
		t.Skip("set FOOTPRINT=1 to run the 100k-block footprint measurement")
	}
	const height = 100_000
	run := func(name string, depth int) {
		fn := newFakeNet()
		epoch := time.Unix(1700000000, 0)
		dir := t.TempDir()
		st, err := store.Open(dir, store.Options{Sync: store.SyncBatch})
		if err != nil {
			t.Fatal(err)
		}
		n := newSyncTestNode(t, fn, name, 0, epoch, func(cfg *Config) {
			cfg.Store = st
			cfg.PruneDepth = depth
			cfg.SnapshotEvery = 64
			cfg.CheckpointEvery = 256
		})
		n.mineBlocks(t, height)
		if err := n.StoreErr(); err != nil {
			t.Fatal(err)
		}
		n.mu.Lock()
		bodies := n.eng.Chain().BodyCount()
		bodyBytes := 0
		for _, b := range n.eng.Chain().Blocks() {
			bodyBytes += b.EncodedSize()
		}
		n.mu.Unlock()
		t.Logf("%s (depth %d): bodies=%d resident=%d bytes, wal=%d bytes in %d segments",
			name, depth, bodies, bodyBytes, st.WALSize(), st.WALSegments())
	}
	run("archival", 0)
	run("pruned", 1024)
}

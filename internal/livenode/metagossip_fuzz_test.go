package livenode

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"repro/internal/meta"
	"repro/internal/p2p"
	"repro/internal/pos"
	"repro/internal/telemetry"
)

// FuzzMetaGossipFrames throws arbitrary bytes at the §15 metadata-relay
// and sampled-probe decoders and at a live node's frame handler.
// Invariants: no panic anywhere, no frame sequence moves the chain, and
// the pool only ever holds items whose producer signature verifies — an
// announce alone (an unfetched item) admits nothing, and a forged
// FrameMeta body is rejected no matter how it arrives.

var (
	metaFuzzOnce sync.Once
	metaFuzzNode *Node
	metaFuzzTip  uint64
)

// metaFuzzTarget lazily builds one node with gossip, metadata relay and
// the repair plane all enabled, shared by every iteration in this
// process; each iteration clears the relay state so runs stay
// independent.
func metaFuzzTarget(f *testing.F) *Node {
	metaFuzzOnce.Do(func() {
		idents, accounts := testRoster(3)
		epoch := time.Unix(1700000000, 0)
		fc := newFakeClock(epoch)
		fn := newFakeNet()
		n, err := New(Config{
			Identity:    idents[0],
			Accounts:    accounts,
			PoS:         pos.Params{M: pos.DefaultM, T0: time.Hour},
			GenesisSeed: 42,
			Epoch:       epoch,
			NewTransport: func(h p2p.Handler) (p2p.Transport, error) {
				return fn.endpoint("metafuzz", h), nil
			},
			Clock:         fc,
			Telemetry:     telemetry.NewRegistry(),
			GossipFanout:  2,
			RepairWorkers: 1,
		})
		if err != nil {
			f.Fatal(err)
		}
		metaFuzzNode = n
		metaFuzzTip = n.Height()
	})
	return metaFuzzNode
}

// poolAllVerified reports whether every pooled item passes signature
// verification (n.mu taken inside).
func poolAllVerified(n *Node) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, id := range n.eng.PoolIDs() {
		it := n.eng.PoolItem(id)
		if it == nil || it.Verify() != nil {
			return false
		}
	}
	return true
}

func FuzzMetaGossipFrames(f *testing.F) {
	n := metaFuzzTarget(f)
	idents, accounts := testRoster(3)

	// Seed corpus: well-formed frames with real IDs and signatures so
	// mutations explore the deep validation paths, plus the shape-breaking
	// variants the codec tests reject and an outright forgery.
	good := testItem(idents[1], "fuzz seed item", 0)
	forged := testItem(idents[1], "fuzz forged item", 0)
	forged.Producer = accounts[2] // signature no longer matches
	ids := []meta.DataID{good.ID, forged.ID, meta.HashData([]byte("unserved"))}

	f.Add(uint8(0), good.Encode())
	f.Add(uint8(0), forged.Encode())
	f.Add(uint8(0), good.Encode()[:8]) // truncated body
	f.Add(uint8(1), encodeIDList(ids))
	f.Add(uint8(1), encodeIDList(ids[:1]))
	f.Add(uint8(1), putU32(nil, 0))                // zero count
	f.Add(uint8(1), putU32(nil, maxMetaBatch+1))   // oversized count
	f.Add(uint8(1), encodeIDList(ids)[:10])        // truncated list
	f.Add(uint8(2), encodeIDList(ids))             // get-meta shares the codec
	f.Add(uint8(3), putU32(nil, 1))                // probe from roster idx 1
	f.Add(uint8(3), putU32(nil, 99))               // out-of-range idx
	f.Add(uint8(3), []byte{1, 2})                  // short probe
	ack := binary.BigEndian.AppendUint32(nil, 1)   // ack from idx 1 ...
	ack = binary.BigEndian.AppendUint16(ack, 2)    // ... carrying 2 entries
	ack = binary.BigEndian.AppendUint16(ack, 2)    // idx 2
	ack = binary.BigEndian.AppendUint16(ack, 5)    // 500ms ago
	ack = binary.BigEndian.AppendUint16(ack, 0)    // idx 0 (receiver itself)
	ack = binary.BigEndian.AppendUint16(ack, 1000) // stale age
	f.Add(uint8(4), ack)
	f.Add(uint8(4), ack[:9])   // length does not match count
	f.Add(uint8(4), ack[:6])   // zero entries declared as two
	f.Add(uint8(4), []byte{0}) // runt

	frames := []byte{
		p2p.FrameMeta, p2p.FrameMetaAnnounce, p2p.FrameGetMeta,
		p2p.FrameRepairProbe, p2p.FrameRepairProbeAck,
	}
	f.Fuzz(func(t *testing.T, sel uint8, payload []byte) {
		// The shared codec must fail cleanly on any input.
		_, _ = decodeIDList(payload)

		n.handleFrame("fuzzer", frames[int(sel)%len(frames)], payload)
		if got := n.Height(); got != metaFuzzTip {
			t.Fatalf("forged meta/probe frames moved the chain: height %d, want %d", got, metaFuzzTip)
		}
		if !poolAllVerified(n) {
			t.Fatal("pool holds an item that does not verify")
		}
		n.mu.Lock()
		n.clearGossipLocked()
		n.mu.Unlock()
	})
}

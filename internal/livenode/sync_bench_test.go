package livenode

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/p2p"
)

// catchupStats is one measured catch-up exchange: what crossed the wire and
// how many blocks the lagging node had to process to reach the tip.
type catchupStats struct {
	wireBytes  int64
	wireFrames int64
	processed  uint64 // blocks verified/replayed by the lagging node
}

// catchupFixture is a two-node fabric where node "a" mines and node "b"
// lags behind by a controlled gap, then catches up through either the
// incremental batched path or the legacy whole-chain exchange.
type catchupFixture struct {
	fn   *fakeNet
	a, b *syncTestNode
}

func newCatchupFixture(tb testing.TB, prefixLen int) *catchupFixture {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	a := newSyncTestNode(tb, fn, "a", 0, epoch, func(cfg *Config) {
		cfg.SyncBatchSize = 0 // default (64)
		cfg.SnapshotEvery = 0 // default (32)
	})
	b := newSyncTestNode(tb, fn, "b", 1, epoch, func(cfg *Config) {
		cfg.SyncBatchSize = 0
		cfg.SnapshotEvery = 0
	})
	if err := b.Connect("a"); err != nil {
		tb.Fatal(err)
	}
	// b follows a block-by-block while connected, so after the prefix both
	// sit at the same height with warm snapshots.
	a.mineBlocks(tb, prefixLen)
	if a.Height() != b.Height() {
		tb.Fatalf("fixture skew: a=%d b=%d", a.Height(), b.Height())
	}
	return &catchupFixture{fn: fn, a: a, b: b}
}

// lag mines gap more blocks on a while every frame to b is lost.
func (f *catchupFixture) lag(tb testing.TB, gap int) {
	f.fn.setDrop(func(from, to string, ft byte) bool { return to == "b" })
	f.a.mineBlocks(tb, gap)
	f.fn.setDrop(nil)
	if f.a.Height() != f.b.Height()+uint64(gap) {
		tb.Fatalf("lag fixture skew: a=%d b=%d gap=%d", f.a.Height(), f.b.Height(), gap)
	}
}

// catchup runs one measured sync exchange and asserts b reaches a's tip.
// The whole exchange is synchronous on the fake fabric, so when the trigger
// call returns the adoption is complete.
func (f *catchupFixture) catchup(tb testing.TB, legacy bool) catchupStats {
	replayedBefore := counter(f.b.reg, "livenode.sync.blocks_replayed") +
		counter(f.b.reg, "livenode.sync.blocks_fetched")
	f.fn.startCounting()
	if legacy {
		if err := f.b.Node.net.Send("a", p2p.FrameChainRequest, nil); err != nil {
			tb.Fatal(err)
		}
	} else {
		f.b.sendSyncLocator("a")
	}
	bytes, frames := f.fn.stopCounting()
	if f.b.Height() != f.a.Height() {
		tb.Fatalf("catch-up incomplete: a=%d b=%d", f.a.Height(), f.b.Height())
	}
	var processed uint64
	if legacy {
		// AdoptChain is a scratch replay: every block from genesis to the
		// new tip runs through verification again.
		processed = f.a.Height()
	} else {
		processed = counter(f.b.reg, "livenode.sync.blocks_replayed") +
			counter(f.b.reg, "livenode.sync.blocks_fetched") - replayedBefore
	}
	return catchupStats{wireBytes: bytes, wireFrames: frames, processed: processed}
}

// BenchmarkSyncCatchup measures a 10-block-lagging node catching up against
// 1k- and 10k-block chains over both sync paths. Custom metrics report the
// wire and replay cost per exchange; see EXPERIMENTS.md for a run.
func BenchmarkSyncCatchup(b *testing.B) {
	const gap = 10
	for _, chainLen := range []int{1_000, 10_000} {
		for _, mode := range []struct {
			name   string
			legacy bool
		}{{"suffix", false}, {"legacy", true}} {
			b.Run(fmt.Sprintf("chain=%d/lag=%d/%s", chainLen, gap, mode.name), func(b *testing.B) {
				f := newCatchupFixture(b, chainLen-gap)
				var total catchupStats
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					f.lag(b, gap)
					b.StartTimer()
					st := f.catchup(b, mode.legacy)
					b.StopTimer()
					total.wireBytes += st.wireBytes
					total.wireFrames += st.wireFrames
					total.processed += st.processed
					b.StartTimer()
				}
				b.ReportMetric(float64(total.wireBytes)/float64(b.N), "wire-B/op")
				b.ReportMetric(float64(total.wireFrames)/float64(b.N), "frames/op")
				b.ReportMetric(float64(total.processed)/float64(b.N), "blocks-processed/op")
			})
		}
	}
}

// TestSyncCatchupBeatsLegacyFiveFold is the benchmark's acceptance gate in
// regular-test form, scaled down so CI pays seconds, not minutes: on a
// 300-block chain a 10-block-lagging node must spend at least 5x fewer
// wire bytes and 5x fewer verified blocks than the legacy whole-chain
// exchange. (At the benchmark's 10k-block scale the ratios exceed 500x;
// they grow linearly with chain length, so passing at 300 implies passing
// at 10k.)
func TestSyncCatchupBeatsLegacyFiveFold(t *testing.T) {
	const chainLen, gap = 300, 10

	suffix := newCatchupFixture(t, chainLen-gap)
	suffix.lag(t, gap)
	newStats := suffix.catchup(t, false)

	legacy := newCatchupFixture(t, chainLen-gap)
	legacy.lag(t, gap)
	oldStats := legacy.catchup(t, true)

	if newStats.wireBytes*5 > oldStats.wireBytes {
		t.Errorf("incremental sync moved %d wire bytes, legacy %d — want >= 5x reduction",
			newStats.wireBytes, oldStats.wireBytes)
	}
	if newStats.processed*5 > oldStats.processed {
		t.Errorf("incremental sync processed %d blocks, legacy %d — want >= 5x reduction",
			newStats.processed, oldStats.processed)
	}
	t.Logf("chain=%d lag=%d: incremental %d B / %d blocks vs legacy %d B / %d blocks (%.1fx / %.1fx)",
		chainLen, gap, newStats.wireBytes, newStats.processed, oldStats.wireBytes, oldStats.processed,
		float64(oldStats.wireBytes)/float64(newStats.wireBytes),
		float64(oldStats.processed)/float64(newStats.processed))
}

package livenode

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/meta"
	"repro/internal/pos"
	"repro/internal/store"
)

func startNodeWithStore(t *testing.T, ident *identity.Identity, accounts []identity.Address, epoch time.Time, t0 time.Duration, st core.Store) *Node {
	t.Helper()
	node, err := New(Config{
		Identity:    ident,
		Accounts:    accounts,
		PoS:         pos.Params{M: pos.DefaultM, T0: t0},
		GenesisSeed: 42,
		Epoch:       epoch,
		ListenAddr:  "127.0.0.1:0",
		Store:       st,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	return node
}

// TestRecoveryAfterTornWAL is the issue's acceptance scenario: a node is
// killed mid-run leaving a torn WAL record, restarts with the same data
// dir, recovers height N−1 from disk, and catches the lost tail back up
// over the normal p2p chain-sync path.
func TestRecoveryAfterTornWAL(t *testing.T) {
	idents, accounts := testRoster(2)
	epoch := time.Now()
	dirA := t.TempDir()

	stA, err := store.Open(dirA, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	a := startNodeWithStore(t, idents[0], accounts, epoch, time.Second, stA)
	b := startNode(t, idents[1], accounts, epoch, time.Second)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "three blocks", func() bool {
		return a.Height() >= 3 && b.Height() >= 3
	})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Count the durably-logged blocks, then simulate the crash: tear the
	// last WAL record mid-payload. The segmented WAL names its first
	// segment after its first block index (block 1).
	walPath := filepath.Join(dirA, "wal-00000000000000000001.log")
	persisted, err := store.RecoverWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	n := len(persisted)
	if n < 3 {
		t.Fatalf("only %d blocks persisted", n)
	}
	wantHash := persisted[n-2].Hash // tip hash after losing the last record
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	// Restart from the same data dir: the torn record is truncated away
	// and exactly the blocks before it are replayed.
	stA2, err := store.Open(dirA, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(stA2.RecoveredBlocks()); got != n-1 {
		t.Fatalf("recovered %d blocks from torn WAL, want %d", got, n-1)
	}
	a2 := startNodeWithStore(t, idents[0], accounts, epoch, time.Second, stA2)
	if err := a2.StoreErr(); err != nil {
		t.Fatalf("replay error: %v", err)
	}
	if h := a2.Height(); h < uint64(n-1) {
		t.Fatalf("restarted height %d, want >= %d", h, n-1)
	}
	if got, ok := a2.BlockHashAt(uint64(n - 1)); !ok || got != wantHash {
		t.Fatalf("replayed block %d hash mismatch", n-1)
	}

	// Reconnect and catch up the lost tail via FrameChainRequest — the
	// paper's reconnect-and-recover behaviour end-to-end.
	if err := a2.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "catch-up past the torn block", func() bool {
		h := b.Height()
		if a2.Height() < h {
			return false
		}
		want, ok1 := b.BlockHashAt(h)
		got, ok2 := a2.BlockHashAt(h)
		return ok1 && ok2 && want == got
	})
}

// TestRestartReloadsChainAndData checks the clean-shutdown path: chain
// height, block hashes and stored data items all survive a restart.
func TestRestartReloadsChainAndData(t *testing.T) {
	idents, accounts := testRoster(1)
	epoch := time.Now()
	dir := t.TempDir()

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := startNodeWithStore(t, idents[0], accounts, epoch, time.Second, st)
	content := []byte("durable air-quality reading")
	it, err := a.Publish(content, "AirQuality/PM2.5", "lab")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "item mined", func() bool {
		return a.HasItemOnChain(it.ID) && a.Height() >= 2
	})
	height := a.Height()
	tipHash, _ := a.BlockHashAt(height)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2 := startNodeWithStore(t, idents[0], accounts, epoch, time.Second, st2)
	if h := a2.Height(); h < height {
		t.Fatalf("restarted height %d, want >= %d", h, height)
	}
	if got, ok := a2.BlockHashAt(height); !ok || got != tipHash {
		t.Fatal("tip hash not preserved across restart")
	}
	if !a2.HasItemOnChain(it.ID) {
		t.Fatal("on-chain item lost across restart")
	}
	if !a2.HasData(it.ID) {
		t.Fatal("data item content lost across restart")
	}
	var id meta.DataID = it.ID
	if got, ok := a2.store.GetData(id); !ok || string(got) != string(content) {
		t.Fatal("data content mismatch across restart")
	}
}

package livenode

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/identity"
	"repro/internal/meta"
	"repro/internal/pos"
	"repro/internal/telemetry"
)

// testRoster builds n deterministic identities.
func testRoster(n int) ([]*identity.Identity, []identity.Address) {
	rng := rand.New(rand.NewSource(1))
	idents := make([]*identity.Identity, n)
	accounts := make([]identity.Address, n)
	for i := range idents {
		idents[i] = identity.GenerateSeeded(rng)
		accounts[i] = idents[i].Address()
	}
	return idents, accounts
}

func startNode(t *testing.T, ident *identity.Identity, accounts []identity.Address, epoch time.Time, t0 time.Duration) *Node {
	t.Helper()
	node, err := New(Config{
		Identity:    ident,
		Accounts:    accounts,
		PoS:         pos.Params{M: pos.DefaultM, T0: t0},
		GenesisSeed: 42,
		Epoch:       epoch,
		ListenAddr:  "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	return node
}

// newCluster starts n live nodes on localhost in a full mesh.
func newCluster(t *testing.T, n int, t0 time.Duration) []*Node {
	t.Helper()
	idents, accounts := testRoster(n)
	epoch := time.Now()
	nodes := make([]*Node, n)
	for i := range nodes {
		nodes[i] = startNode(t, idents[i], accounts, epoch, t0)
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i < j {
				if err := a.Connect(b.Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return nodes
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLiveClusterMinesAndConverges(t *testing.T) {
	nodes := newCluster(t, 3, time.Second)
	waitFor(t, 20*time.Second, "two blocks everywhere", func() bool {
		for _, n := range nodes {
			if n.Height() < 2 {
				return false
			}
		}
		return true
	})
	// Compare the lowest common height's block across nodes.
	low := nodes[0].Height()
	for _, n := range nodes[1:] {
		if h := n.Height(); h < low {
			low = h
		}
	}
	want, ok := nodes[0].BlockHashAt(low)
	if !ok {
		t.Fatal("node 0 lost a block")
	}
	for i, n := range nodes[1:] {
		got, ok := n.BlockHashAt(low)
		if !ok || got != want {
			t.Fatalf("node %d diverges at height %d", i+1, low)
		}
	}
}

func TestLiveDataFlow(t *testing.T) {
	nodes := newCluster(t, 3, time.Second)

	content := []byte("live road congestion report")
	it, err := nodes[0].Publish(content, "Road/Congestion", "lab")
	if err != nil {
		t.Fatal(err)
	}

	// The item must land in a block on a peer's replica.
	waitFor(t, 25*time.Second, "item on chain", func() bool {
		return nodes[1].HasItemOnChain(it.ID)
	})

	// A consumer fetches the data by content hash.
	if nodes[2].HasData(it.ID) {
		t.Log("consumer already stores the item (was assigned)")
		return
	}
	got := make(chan []byte, 1)
	nodes[2].SetOnData(func(id meta.DataID, content []byte) {
		if id == it.ID {
			select {
			case got <- content:
			default:
			}
		}
	})
	nodes[2].RequestData(it.ID)
	select {
	case body := <-got:
		if string(body) != string(content) {
			t.Fatalf("content mismatch: %q", body)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("data never arrived")
	}
}

// TestLiveTelemetryCounters runs a real-TCP 3-node cluster with per-node
// registries and checks the whole pipe is live end to end: the TCP
// transport's frame/byte counters, the mining attempt/win split, and the
// height gauge must all be non-trivial after a couple of blocks.
func TestLiveTelemetryCounters(t *testing.T) {
	idents, accounts := testRoster(3)
	epoch := time.Now()
	regs := make([]*telemetry.Registry, 3)
	nodes := make([]*Node, 3)
	for i := range nodes {
		regs[i] = telemetry.NewRegistry()
		node, err := New(Config{
			Identity:    idents[i],
			Accounts:    accounts,
			PoS:         pos.Params{M: pos.DefaultM, T0: time.Second},
			GenesisSeed: 42,
			Epoch:       epoch,
			ListenAddr:  "127.0.0.1:0",
			Telemetry:   regs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		nodes[i] = node
	}
	for i, a := range nodes {
		for j, b := range nodes {
			if i < j {
				if err := a.Connect(b.Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	waitFor(t, 20*time.Second, "two blocks everywhere", func() bool {
		for _, n := range nodes {
			if n.Height() < 2 {
				return false
			}
		}
		return true
	})

	// A single node can win every round (then it receives no block frames)
	// and a node whose mining timer is always preempted by an arriving
	// block never fires an attempt — so mining and block-frame counters
	// are asserted cluster-wide, while plain frame/byte traffic (hello at
	// minimum) is asserted per node.
	var totalWon, totalAttempts, totalBlockRecv uint64
	for i, reg := range regs {
		snap := reg.Snapshot()
		for _, name := range []string{"p2p.frames_sent", "p2p.frames_recv", "p2p.bytes_sent", "p2p.bytes_recv"} {
			if snap.Counter(name) == 0 {
				t.Errorf("node %d: %s = 0 after a mined run", i, name)
			}
		}
		attempts, won := snap.Counter("livenode.mining.attempts"), snap.Counter("livenode.mining.blocks_won")
		if won > attempts {
			t.Errorf("node %d: blocks_won %d > attempts %d", i, won, attempts)
		}
		totalWon += won
		totalAttempts += attempts
		totalBlockRecv += snap.Counter("p2p.frames_recv.block")
		if g := snap.Gauge("livenode.height"); g < 2 {
			t.Errorf("node %d: height gauge = %d, chain height = %d", i, g, nodes[i].Height())
		}
	}
	// Heights can keep advancing between waitFor and the snapshots, so
	// cluster-wide wins are only bounded below: ≥ the 2 blocks waited for.
	if totalWon < 2 {
		t.Errorf("cluster mined to height ≥2 but only %d blocks_won counted", totalWon)
	}
	if totalAttempts < totalWon {
		t.Errorf("cluster attempts %d < blocks won %d", totalAttempts, totalWon)
	}
	if totalBlockRecv == 0 {
		t.Error("no node ever received a block frame, yet all converged past height 2")
	}
}

func TestLiveLateJoinerSyncs(t *testing.T) {
	idents, accounts := testRoster(3)
	epoch := time.Now()
	a := startNode(t, idents[0], accounts, epoch, time.Second)
	b := startNode(t, idents[1], accounts, epoch, time.Second)
	if err := a.Connect(b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 20*time.Second, "initial blocks", func() bool {
		return a.Height() >= 2 && b.Height() >= 2
	})

	// The third roster member joins late and must sync the whole chain.
	late := startNode(t, idents[2], accounts, epoch, time.Second)
	if err := late.Connect(a.Addr(), b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "late joiner sync", func() bool {
		return late.Height() >= a.Height()-1 && late.Height() >= 2
	})
}

func TestLiveRejectsWrongRoster(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	me := identity.GenerateSeeded(rng)
	other := identity.GenerateSeeded(rng)
	_, err := New(Config{
		Identity:    me,
		Accounts:    []identity.Address{other.Address()},
		PoS:         pos.DefaultParams(),
		GenesisSeed: 1,
		Epoch:       time.Now(),
		ListenAddr:  "127.0.0.1:0",
	})
	if err == nil {
		t.Fatal("identity outside roster accepted")
	}
}

func TestChainCodecRoundTrip(t *testing.T) {
	nodes := newCluster(t, 2, time.Second)
	waitFor(t, 15*time.Second, "a block", func() bool { return nodes[0].Height() >= 1 })
	nodes[0].mu.Lock()
	blocks := nodes[0].eng.Chain().Blocks()
	enc := encodeChain(blocks)
	nodes[0].mu.Unlock()
	got, err := decodeChain(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(blocks) {
		t.Fatalf("decoded %d blocks, want %d", len(got), len(blocks))
	}
	for i := range got {
		if got[i].Hash != blocks[i].Hash {
			t.Fatalf("block %d hash mismatch", i)
		}
	}
	if _, err := decodeChain(enc[:10]); err == nil {
		t.Fatal("truncated chain decoded")
	}
	if _, err := decodeChain(nil); err == nil {
		t.Fatal("nil chain decoded")
	}
}

package livenode

import (
	"sync"
	"testing"
	"time"

	"repro/internal/chain"
	"repro/internal/meta"
	"repro/internal/p2p"
	"repro/internal/pos"
	"repro/internal/telemetry"
)

// FuzzSyncFrames throws arbitrary bytes at the sync frame decoders and at
// a live node's frame handler. Invariants: no panic anywhere, decoders
// never allocate beyond their protocol caps (enforced structurally: every
// count is bounded before allocation, every byte take is length-checked),
// and no forged frame sequence ever moves the node's chain — adoption
// requires claims only the roster's key holders can produce.

var (
	fuzzOnce sync.Once
	fuzzNode *Node
	fuzzTip  uint64
)

// fuzzTarget lazily builds one 5-block node shared by all iterations of
// this process; each iteration clears any session the fuzz input opened so
// runs stay independent.
func fuzzTarget(f *testing.F) *Node {
	fuzzOnce.Do(func() {
		idents, accounts := testRoster(3)
		epoch := time.Unix(1700000000, 0)
		fc := newFakeClock(epoch)
		fn := newFakeNet()
		n, err := New(Config{
			Identity:    idents[0],
			Accounts:    accounts,
			PoS:         pos.Params{M: pos.DefaultM, T0: 60 * time.Second},
			GenesisSeed: 42,
			Epoch:       epoch,
			NewTransport: func(h p2p.Handler) (p2p.Transport, error) {
				return fn.endpoint("fuzz", h), nil
			},
			Clock:     fc,
			Telemetry: telemetry.NewRegistry(),
		})
		if err != nil {
			f.Fatal(err)
		}
		tn := &syncTestNode{Node: n, clock: fc, epoch: epoch}
		tn.mineBlocks(f, 5)
		fuzzNode = n
		fuzzTip = n.Height()
	})
	return fuzzNode
}

func FuzzSyncFrames(f *testing.F) {
	n := fuzzTarget(f)

	// Seed corpus: one well-formed frame of each type (with real hashes, so
	// mutations explore the deep validation paths), plus shape-breaking
	// variants the codec tests reject.
	n.mu.Lock()
	loc := encodeLocator(n.eng.Chain().Locator())
	hdrs := n.buildSyncHeadersLocked(n.eng.Chain().Locator()[len(n.eng.Chain().Locator())-1:])
	batch := encodeBatch(1, n.eng.Chain().Range(1, 3))
	n.mu.Unlock()
	f.Add(uint8(0), loc)
	f.Add(uint8(1), hdrs)
	f.Add(uint8(2), encodeGetBatch(1, 64))
	f.Add(uint8(3), batch)
	f.Add(uint8(0), loc[:len(loc)-5])                         // truncated
	f.Add(uint8(2), encodeGetBatch(9, 3))                     // inverted range
	f.Add(uint8(1), putU32(putU64(nil, 1), maxSyncHeaders+1)) // oversized count
	f.Add(uint8(3), putU32(putU64(nil, ^uint64(0)), maxSyncBatch+1))
	// Near-MaxUint64 range: first+maxSyncBatch-1 must saturate, not wrap
	// past first and echo a bogus batch.
	f.Add(uint8(2), encodeGetBatch(^uint64(0)-2, ^uint64(0)))
	// Gossip frames ride the same handler: a hostile announce must at worst
	// park a pending fetch, never move the chain.
	tipBlk := n.Tip()
	f.Add(uint8(4), encodeAnnounce(tipBlk.Index+1, tipBlk.Hash))
	f.Add(uint8(5), tipBlk.Hash[:])
	f.Add(uint8(4), encodeAnnounce(^uint64(0), tipBlk.Hash))
	f.Add(uint8(5), tipBlk.Hash[:16]) // short hash
	// §15 frames ride the same handler too; FuzzMetaGossipFrames owns
	// their deep invariants, this corpus just keeps the dispatch surface
	// co-fuzzed with sync.
	f.Add(uint8(6), encodeIDList([]meta.DataID{meta.HashData([]byte("sync-fuzz"))}))
	f.Add(uint8(7), putU32(nil, maxMetaBatch+1))
	f.Add(uint8(8), putU32(nil, 1))
	f.Add(uint8(9), putU32(putU32(nil, 1), 2))

	frames := []byte{
		p2p.FrameSyncLocator, p2p.FrameSyncHeaders, p2p.FrameSyncGetBatch,
		p2p.FrameSyncBatch, p2p.FrameBlockAnnounce, p2p.FrameGetBlock,
		p2p.FrameMetaAnnounce, p2p.FrameGetMeta,
		p2p.FrameRepairProbe, p2p.FrameRepairProbeAck,
	}
	f.Fuzz(func(t *testing.T, sel uint8, payload []byte) {
		// Decoders must fail cleanly, never panic, on any input.
		_, _ = decodeLocator(payload)
		_, _ = decodeSyncHeaders(payload)
		_, _, _ = decodeGetBatch(payload)
		_, _ = decodeBatch(payload)
		_, _, _ = decodeAnnounce(payload)
		_, _ = decodeGetBlock(payload)

		// And the full handler path must hold the no-invalid-adoption
		// invariant.
		n.handleFrame("fuzzer", frames[int(sel)%len(frames)], payload)
		if got := n.Height(); got != fuzzTip {
			t.Fatalf("forged sync frames moved the chain: height %d, want %d", got, fuzzTip)
		}
		n.mu.Lock()
		n.clearSyncLocked()
		n.clearGossipLocked()
		n.mu.Unlock()
	})
}

// FuzzLocatorRoundTrip checks that any locator the encoder emits decodes
// back identically, for arbitrary chain shapes.
func FuzzLocatorRoundTrip(f *testing.F) {
	f.Add(uint16(0))
	f.Add(uint16(1))
	f.Add(uint16(200))
	f.Fuzz(func(t *testing.T, size uint16) {
		// Synthesize a locator of the requested shape from heights alone;
		// the codec does not care whether hashes correspond to real blocks.
		entries := make([]chain.LocatorEntry, 0, size)
		h := uint64(size)
		for i := uint16(0); i < size && len(entries) < chain.MaxLocatorLen; i++ {
			entries = append(entries, chain.LocatorEntry{Height: h})
			if h == 0 {
				break
			}
			h--
		}
		if len(entries) == 0 {
			return
		}
		enc := encodeLocator(entries)
		dec, err := decodeLocator(enc)
		if err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
		if len(dec) != len(entries) {
			t.Fatalf("round-trip length %d, want %d", len(dec), len(entries))
		}
		for i := range dec {
			if dec[i] != entries[i] {
				t.Fatalf("entry %d differs after round trip", i)
			}
		}
	})
}

//go:build race

package livenode

// raceEnabled lets heavyweight scale tests shrink their workload when the
// race detector multiplies their cost.
const raceEnabled = true

// Package livenode runs the edge blockchain over real TCP sockets and the
// wall clock, the way the paper's original deployment ran Node.js
// processes in Docker containers. All consensus and allocation rules —
// chain validation, fork choice, ledger accounting, pool packing and UFL
// placement — live in the shared internal/engine package, the exact same
// code the simulation executes; this package only supplies the I/O: a
// transport (package p2p), a clock, a persistence store and telemetry.
//
// Simplifications relative to the simulated System (documented in
// DESIGN.md): peers form a full TCP mesh, so the placement problem runs on
// a 1-hop clique topology where the Fairness Degree Cost drives storing
// decisions; membership (the account roster) is fixed at genesis, as in
// the paper's private-blockchain evaluation; and all nodes share a genesis
// wall-clock epoch, standing in for synchronized clocks.
package livenode

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/alloc"
	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/identity"
	"repro/internal/meta"
	"repro/internal/netsim"
	"repro/internal/p2p"
	"repro/internal/pos"
	"repro/internal/telemetry"
)

// Config configures one live node.
type Config struct {
	// Identity is this node's key pair; its address must appear in
	// Accounts.
	Identity *identity.Identity
	// Accounts is the fixed roster; index k is node ID k.
	Accounts []identity.Address
	// PoS holds the mining parameters. Live demos typically use a short
	// T0 (a few seconds).
	PoS pos.Params
	// GenesisSeed must match across the deployment.
	GenesisSeed int64
	// Epoch is the shared wall-clock zero; block timestamps are measured
	// from it. All nodes must use the same value.
	Epoch time.Time
	// ListenAddr is the TCP listen address ("127.0.0.1:0" for ephemeral).
	// Ignored when NewTransport is set.
	ListenAddr string
	// NewTransport, if set, builds the node's transport endpoint instead
	// of the default TCP one (p2p.Listen on ListenAddr). The chaos harness
	// injects internal/p2p/memnet endpoints here.
	NewTransport func(h p2p.Handler) (p2p.Transport, error)
	// Clock is the node's time source; nil means the wall clock. The chaos
	// harness injects a virtual clock shared by all nodes.
	Clock Clock
	// StorageCapacity is the per-node storage in items (default 250).
	StorageCapacity int
	// Store is the node's persistence backend. nil means in-memory
	// (core.NewMemStore); pass internal/store's disk-backed Store for a
	// node that survives restarts. The node takes ownership: Close closes
	// it. Blocks recovered by the store are replayed into the chain
	// before the node starts listening, and the normal chain-sync path
	// then catches up anything mined while the node was down.
	Store core.Store
	// CheckpointEvery checkpoints the store manifest (and prunes expired
	// data items) every this many adopted blocks (default 32). This is a
	// persistence cadence, distinct from the engine's consensus
	// checkpoint-finality interval (disabled unless PruneDepth is set).
	CheckpointEvery int
	// SyncBatchSize is how many blocks one incremental-sync batch request
	// covers (default 64, capped at the protocol bound maxSyncBatch).
	SyncBatchSize int
	// SyncTimeout is the per-batch response deadline; each retry doubles
	// it (default 2s).
	SyncTimeout time.Duration
	// SyncRetries is how many times an unanswered batch is re-requested
	// before the node gives the peer up and falls back to the legacy
	// whole-chain exchange (default 3).
	SyncRetries int
	// SnapshotEvery is the engine's ledger-snapshot cadence in blocks;
	// snapshots let fork suffixes adopt without a scratch replay
	// (default 32, see engine.Config.SnapshotInterval).
	SnapshotEvery int
	// PruneDepth, when positive, runs the finite-lifetime chain
	// (DESIGN.md §14): the engine enables checkpoint finality at this
	// interval and discards block bodies below the prune horizon, the
	// store persists the justifying snapshot plus header spine and
	// compacts WAL segments below the horizon. Steady-state memory and
	// disk become O(PruneDepth) instead of O(chain length). Zero (the
	// default) keeps every body forever. Note the repair plane's provider
	// index is rebuilt from block bodies, so combining PruneDepth with
	// RepairWorkers leaves repair blind to assignments older than the
	// prune window.
	PruneDepth int
	// BootstrapSnapshot makes a fresh node (empty chain, empty store) ask
	// the first peer it connects to for the latest finalized state
	// snapshot and install it instead of replaying history from genesis;
	// only the live suffix above the anchor is then fetched through the
	// §10 locator sync. Any failure falls back to plain suffix sync.
	BootstrapSnapshot bool
	// VerifyWorkers bounds the worker pool that content-verifies sync
	// suffixes in parallel (default 4).
	VerifyWorkers int
	// FetchTimeout is how long a pending data fetch may wait for a
	// response before its latency bookkeeping is dropped (default 2m).
	// Without it, fetches no peer can answer would pin their tracking
	// entry forever.
	FetchTimeout time.Duration
	// GossipFanout selects the block propagation mode (DESIGN.md §13).
	// 0 means gossip with the default fanout (6); a positive value gossips
	// with that fanout; a negative value disables gossip entirely and
	// restores the legacy full-mesh push (every won block broadcast in
	// full to every peer). Under gossip, adopting a new block announces
	// (height, hash) to a seeded random sample of GossipFanout peers and
	// peers fetch only bodies they lack; an unanswered fetch falls back to
	// the §10 sync locator path after SyncTimeout.
	GossipFanout int
	// MetaFanout selects the metadata propagation mode (DESIGN.md §15).
	// 0 follows GossipFanout (metadata gossips whenever blocks do, with the
	// same fanout); a positive value gossips metadata with that fanout; a
	// negative value keeps the legacy full-mesh push (every published item
	// broadcast in full to every peer). When GossipFanout is negative the
	// gossip machinery is absent and metadata always uses the legacy push.
	MetaFanout int

	// RepairWorkers enables the self-healing data plane (DESIGN.md §11)
	// and bounds its concurrent targeted fetches; 0 disables repair
	// entirely (no provider index, churn detector or heartbeats).
	RepairWorkers int
	// RepairRate is the repair plane's token-bucket byte budget in bytes
	// per second (default 4096); it keeps background re-replication
	// traffic strictly below consensus traffic.
	RepairRate int
	// RepairProbeEvery is the repair tick cadence: liveness probing,
	// membership sweep and queue pump (default 2s).
	RepairProbeEvery time.Duration
	// ProbeFanout selects the liveness-evidence mode (DESIGN.md §15).
	// 0 probes a default sample of 4 roster peers per tick; a positive
	// value probes that many; a negative value restores the legacy
	// heartbeat broadcast (the roster announce pushed to every peer every
	// tick — O(n²) traffic across the deployment). Sampled probes carry
	// bounded third-party liveness digests on their acks, so evidence still
	// spreads epidemically.
	ProbeFanout int
	// RepairSuspectAfter is the silence after which a roster node turns
	// suspect (default 6s); RepairHysteresis is the ADDITIONAL silence
	// before a suspect counts dead and triggers re-replication
	// (default 10s).
	RepairSuspectAfter time.Duration
	RepairHysteresis   time.Duration
	// RepairMaxPerBlock bounds repair re-announcements packed per mined
	// block (default 4 when repair is enabled).
	RepairMaxPerBlock int
	// RepairReplicaFloor is the replica count the under-replication gauge
	// checks items against (default alloc.DefaultMinReplicas).
	RepairReplicaFloor int
	// OnBlock, if set, is called after each adopted block (any goroutine).
	OnBlock func(b *block.Block)
	// OnData, if set, is called when requested data content arrives.
	OnData func(id meta.DataID, content []byte)
	// Telemetry, when non-nil, receives the node's runtime metrics
	// ("livenode.*": mining attempts vs. blocks won, fork adoptions,
	// chain-sync rounds, data-fetch latency, per-node S_i/Q_i gauges) and
	// — for the default TCP transport — the p2p frame counters. Pass the
	// same registry to store.Options.Metrics to get the persistence
	// metrics alongside. nil disables collection.
	Telemetry *telemetry.Registry
}

// Node is a live blockchain node: a thin transport/clock/persistence
// adapter around the shared consensus engine.
type Node struct {
	cfg     Config
	selfIdx int
	net     p2p.Transport
	clock   Clock

	mu            sync.Mutex
	eng           *engine.Engine
	store         core.Store
	replaying     bool // WAL replay in progress: skip re-persisting/fetching
	sinceCkpt     int  // blocks adopted since the last store checkpoint
	storeErr      error
	mineTimer     Timer
	closed        bool
	onData        func(id meta.DataID, content []byte)
	fetchStart    map[meta.DataID]time.Time // pending data fetches, for latency
	sync          *syncSession              // at most one incremental sync in flight
	syncGen       uint64                    // session generation, guards stale timers
	repair        *repairDriver             // nil when repair is disabled
	gossip        *gossipState              // nil when gossip is disabled (legacy push)
	boot          *bootstrapState           // at most one snapshot bootstrap in flight
	bootGen       uint64                    // bootstrap generation, guards stale timers
	bootHold      bool                      // fresh node: mining held for the first bootstrap attempt
	persistedSnap uint64                    // newest snapshot height written to the store

	tel *nodeMetrics
}

// nodeMetrics is the node's telemetry bundle; every field is nil-safe so
// a node without a registry pays only the no-op calls.
type nodeMetrics struct {
	miningAttempts *telemetry.Counter // mine() fired (incl. lost races)
	blocksWon      *telemetry.Counter // own blocks sealed and adopted
	blocksAdopted  *telemetry.Counter // live blocks appended (any miner)
	blocksReplayed *telemetry.Counter // blocks replayed from the WAL
	forkAdoptions  *telemetry.Counter // longer-chain replacements accepted
	chainSyncs     *telemetry.Counter // legacy whole-chain rounds initiated
	dataFetchNs    *telemetry.Histogram

	// Incremental sync (DESIGN.md §10).
	syncRounds         *telemetry.Counter   // locator probes sent
	syncBatches        *telemetry.Counter   // batches received and accepted
	syncRetries        *telemetry.Counter   // batch timeouts retried
	syncAborts         *telemetry.Counter   // sessions dropped (divergence, races)
	syncFallbacks      *telemetry.Counter   // falls back to the legacy exchange
	syncFullReplays    *telemetry.Counter   // scratch replays (legacy or no snapshot)
	syncBlocksFetched  *telemetry.Counter   // suffix blocks received over the wire
	syncBlocksReplayed *telemetry.Counter   // own blocks replayed from a snapshot
	syncBytesFetched   *telemetry.Counter   // suffix payload bytes received
	syncBytesSaved     *telemetry.Counter   // bytes a whole-chain exchange would have added
	syncVerifyParallel *telemetry.Counter   // blocks verified by the worker pool
	syncBatchBlocks    *telemetry.Histogram // blocks per accepted batch

	// Self-healing data plane (DESIGN.md §11).
	repairEnqueued    *telemetry.Counter   // re-announced assignments routed to the queue
	repairFetches     *telemetry.Counter   // targeted FrameRepairGet sends
	repairCompleted   *telemetry.Counter   // queue tasks finished by a repair response
	repairFallbacks   *telemetry.Counter   // tasks handed to the broadcast fetch path
	repairThrottled   *telemetry.Counter   // sends denied by the byte-rate budget
	repairReannounced *telemetry.Counter   // repair re-announcements packed into own blocks
	repairFetchNs     *telemetry.Histogram // targeted-fetch latency
	underReplicated   *telemetry.Gauge     // live items below the replica floor
	deadNodes         *telemetry.Gauge     // roster nodes the detector counts dead

	// Snapshot bootstrap and chain pruning (DESIGN.md §14).
	bootRequests       *telemetry.Counter // FrameGetSnapshot probes sent
	bootChunks         *telemetry.Counter // snapshot chunks received
	bootBytes          *telemetry.Counter // snapshot payload bytes received
	bootInstalled      *telemetry.Counter // snapshots verified and installed
	bootFallbacks      *telemetry.Counter // bootstraps abandoned for suffix sync
	bootServed         *telemetry.Counter // FrameGetSnapshot requests answered
	pruneRuns          *telemetry.Counter // engine prune passes that dropped bodies
	pruneBodies        *telemetry.Counter // block bodies discarded below the horizon
	pruneHorizon       *telemetry.Gauge   // current prune horizon height
	snapshotsPersisted *telemetry.Counter // snapshot blobs written to the store

	// Inv-style gossip block relay (DESIGN.md §13).
	gossipRelays          *telemetry.Counter // adopted blocks relayed as announces
	gossipFetchesSent     *telemetry.Counter // FrameGetBlock requests issued
	gossipFetchesServed   *telemetry.Counter // FrameGetBlock requests answered
	gossipFetchTimeouts   *telemetry.Counter // fetches that fell back to the locator path
	gossipDupSuppressed   *telemetry.Counter // announces dropped as already seen/adopted
	gossipStaleSuppressed *telemetry.Counter // announces at or below our tip

	// Inv-style metadata relay (DESIGN.md §15).
	metaRelays        *telemetry.Counter // pooled items relayed as ID announces
	metaFetchesSent   *telemetry.Counter // IDs requested via FrameGetMeta
	metaFetchesServed *telemetry.Counter // pool items served to FrameGetMeta
	metaFetchTimeouts *telemetry.Counter // pending fetches dropped unanswered
	metaFetchDropped  *telemetry.Counter // announces dropped: pending table full
	metaDupSuppressed *telemetry.Counter // announced IDs already pooled/seen/packed

	// Sampled liveness probing (DESIGN.md §15).
	probesSent        *telemetry.Counter // FrameRepairProbe sends
	probeAcks         *telemetry.Counter // FrameRepairProbeAck replies sent
	probeDigestMerged *telemetry.Counter // third-party digest entries applied

	// Wire-byte split, counted at the sender across all app frames.
	// Block-propagation bytes (FrameBlock + announce + get-block) are
	// additionally tallied in wireBlockBytes, and announce frames alone in
	// wireAnnounceBytes, so gossip-vs-full-mesh gates can compare the
	// propagation path in isolation.
	wireConsensusBytes *telemetry.Counter
	wireDataBytes      *telemetry.Counter
	wireRepairBytes    *telemetry.Counter
	wireBlockBytes     *telemetry.Counter
	wireAnnounceBytes  *telemetry.Counter
	wireSnapshotBytes  *telemetry.Counter // snapshot request/chunk frames alone
	wireMetaBytes      *telemetry.Counter // metadata propagation (FrameMeta + announce + get-meta)
	wireHeartbeatBytes *telemetry.Counter // liveness traffic (announce + probe + ack)

	dataFetchExpired *telemetry.Counter // pending fetches dropped by FetchTimeout
	height           *telemetry.Gauge
	sGauges          []*telemetry.Gauge // per roster node stake S_i
	qGauges          []*telemetry.Gauge // per roster node storage credit Q_i
	events           *telemetry.Ring
}

func newNodeMetrics(reg *telemetry.Registry, rosterN int) *nodeMetrics {
	m := &nodeMetrics{
		miningAttempts: reg.Counter("livenode.mining.attempts"),
		blocksWon:      reg.Counter("livenode.mining.blocks_won"),
		blocksAdopted:  reg.Counter("livenode.blocks.adopted"),
		blocksReplayed: reg.Counter("livenode.blocks.replayed"),
		forkAdoptions:  reg.Counter("livenode.fork.adoptions"),
		chainSyncs:     reg.Counter("livenode.chainsync.rounds"),
		dataFetchNs:    reg.Histogram("livenode.data.fetch_ns"),
		height:         reg.Gauge("livenode.height"),
		events:         reg.Events(),

		syncRounds:         reg.Counter("livenode.sync.rounds"),
		syncBatches:        reg.Counter("livenode.sync.batches"),
		syncRetries:        reg.Counter("livenode.sync.retries"),
		syncAborts:         reg.Counter("livenode.sync.aborts"),
		syncFallbacks:      reg.Counter("livenode.sync.fallbacks"),
		syncFullReplays:    reg.Counter("livenode.sync.full_replays"),
		syncBlocksFetched:  reg.Counter("livenode.sync.blocks_fetched"),
		syncBlocksReplayed: reg.Counter("livenode.sync.blocks_replayed"),
		syncBytesFetched:   reg.Counter("livenode.sync.bytes_fetched"),
		syncBytesSaved:     reg.Counter("livenode.sync.bytes_saved"),
		syncVerifyParallel: reg.Counter("livenode.sync.verify_parallel"),
		syncBatchBlocks:    reg.Histogram("livenode.sync.batch_blocks"),

		dataFetchExpired: reg.Counter("livenode.data.fetch_expired"),

		repairEnqueued:    reg.Counter("livenode.repair.enqueued"),
		repairFetches:     reg.Counter("livenode.repair.fetches"),
		repairCompleted:   reg.Counter("livenode.repair.completed"),
		repairFallbacks:   reg.Counter("livenode.repair.fallbacks"),
		repairThrottled:   reg.Counter("livenode.repair.throttled"),
		repairReannounced: reg.Counter("livenode.repair.reannounced"),
		repairFetchNs:     reg.Histogram("livenode.repair.fetch_ns"),
		underReplicated:   reg.Gauge("livenode.repair.under_replicated"),
		deadNodes:         reg.Gauge("livenode.repair.dead_nodes"),

		bootRequests:       reg.Counter("livenode.bootstrap.requests"),
		bootChunks:         reg.Counter("livenode.bootstrap.chunks"),
		bootBytes:          reg.Counter("livenode.bootstrap.bytes"),
		bootInstalled:      reg.Counter("livenode.bootstrap.installed"),
		bootFallbacks:      reg.Counter("livenode.bootstrap.fallbacks"),
		bootServed:         reg.Counter("livenode.bootstrap.served"),
		pruneRuns:          reg.Counter("livenode.prune.runs"),
		pruneBodies:        reg.Counter("livenode.prune.bodies"),
		pruneHorizon:       reg.Gauge("livenode.prune.horizon"),
		snapshotsPersisted: reg.Counter("livenode.prune.snapshots_persisted"),

		gossipRelays:          reg.Counter("livenode.gossip.relays"),
		gossipFetchesSent:     reg.Counter("livenode.gossip.fetches_sent"),
		gossipFetchesServed:   reg.Counter("livenode.gossip.fetches_served"),
		gossipFetchTimeouts:   reg.Counter("livenode.gossip.fetch_timeouts"),
		gossipDupSuppressed:   reg.Counter("livenode.gossip.dup_suppressed"),
		gossipStaleSuppressed: reg.Counter("livenode.gossip.stale_suppressed"),

		metaRelays:        reg.Counter("livenode.metagossip.relays"),
		metaFetchesSent:   reg.Counter("livenode.metagossip.fetches_sent"),
		metaFetchesServed: reg.Counter("livenode.metagossip.fetches_served"),
		metaFetchTimeouts: reg.Counter("livenode.metagossip.fetch_timeouts"),
		metaFetchDropped:  reg.Counter("livenode.metagossip.fetch_dropped"),
		metaDupSuppressed: reg.Counter("livenode.metagossip.dup_suppressed"),

		probesSent:        reg.Counter("livenode.probe.sent"),
		probeAcks:         reg.Counter("livenode.probe.acks"),
		probeDigestMerged: reg.Counter("livenode.probe.digest_merged"),

		wireConsensusBytes: reg.Counter("livenode.wire.consensus_bytes"),
		wireDataBytes:      reg.Counter("livenode.wire.data_bytes"),
		wireRepairBytes:    reg.Counter("livenode.wire.repair_bytes"),
		wireBlockBytes:     reg.Counter("livenode.wire.block_bytes"),
		wireAnnounceBytes:  reg.Counter("livenode.wire.announce_bytes"),
		wireSnapshotBytes:  reg.Counter("livenode.wire.snapshot_bytes"),
		wireMetaBytes:      reg.Counter("livenode.wire.meta_bytes"),
		wireHeartbeatBytes: reg.Counter("livenode.wire.heartbeat_bytes"),
	}
	if reg != nil {
		m.sGauges = make([]*telemetry.Gauge, rosterN)
		m.qGauges = make([]*telemetry.Gauge, rosterN)
		for i := 0; i < rosterN; i++ {
			m.sGauges[i] = reg.Gauge(fmt.Sprintf("livenode.ledger.s.%02d", i))
			m.qGauges[i] = reg.Gauge(fmt.Sprintf("livenode.ledger.q.%02d", i))
		}
	}
	return m
}

// updateChainGauges refreshes height and the S_i/Q_i gauges (n.mu held).
func (n *Node) updateChainGauges() {
	n.tel.height.Set(int64(n.eng.Height()))
	led := n.eng.Ledger()
	for i := range n.tel.sGauges {
		n.tel.sGauges[i].Set(int64(led.S(i)))
		n.tel.qGauges[i].Set(int64(led.Q(i)))
	}
}

// New starts a node listening on cfg.ListenAddr.
func New(cfg Config) (*Node, error) {
	if cfg.Identity == nil {
		return nil, errors.New("livenode: missing identity")
	}
	if err := cfg.PoS.Validate(); err != nil {
		return nil, err
	}
	if cfg.StorageCapacity == 0 {
		cfg.StorageCapacity = 250
	}
	if cfg.Store == nil {
		cfg.Store = core.NewMemStore()
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 32
	}
	if cfg.SyncBatchSize <= 0 {
		cfg.SyncBatchSize = defaultSyncBatch
	}
	if cfg.SyncBatchSize > maxSyncBatch {
		cfg.SyncBatchSize = maxSyncBatch
	}
	if cfg.SyncTimeout <= 0 {
		cfg.SyncTimeout = 2 * time.Second
	}
	if cfg.SyncRetries <= 0 {
		cfg.SyncRetries = defaultSyncRetries
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 32
	}
	if cfg.PruneDepth < 0 {
		cfg.PruneDepth = 0
	}
	if cfg.VerifyWorkers <= 0 {
		cfg.VerifyWorkers = 4
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 2 * time.Minute
	}
	if cfg.Clock == nil {
		cfg.Clock = WallClock()
	}
	if cfg.GossipFanout == 0 {
		cfg.GossipFanout = defaultGossipFanout
	}
	if cfg.RepairWorkers > 0 {
		if cfg.RepairRate <= 0 {
			cfg.RepairRate = defaultRepairRate
		}
		if cfg.RepairProbeEvery <= 0 {
			cfg.RepairProbeEvery = defaultRepairProbeEvery
		}
		if cfg.RepairSuspectAfter <= 0 {
			cfg.RepairSuspectAfter = defaultRepairSuspect
		}
		if cfg.RepairHysteresis <= 0 {
			cfg.RepairHysteresis = defaultRepairHysteresis
		}
		if cfg.RepairMaxPerBlock <= 0 {
			cfg.RepairMaxPerBlock = defaultRepairMaxPacked
		}
		if cfg.RepairReplicaFloor <= 0 {
			cfg.RepairReplicaFloor = alloc.DefaultMinReplicas
		}
	}
	if cfg.NewTransport == nil {
		cfg.NewTransport = func(h p2p.Handler) (p2p.Transport, error) {
			return p2p.Listen(cfg.ListenAddr, h)
		}
	}
	selfIdx := -1
	for i, a := range cfg.Accounts {
		if a == cfg.Identity.Address() {
			selfIdx = i
		}
	}
	if selfIdx < 0 {
		return nil, errors.New("livenode: identity not in account roster")
	}
	n := &Node{
		cfg:        cfg,
		selfIdx:    selfIdx,
		clock:      cfg.Clock,
		store:      cfg.Store,
		onData:     cfg.OnData,
		fetchStart: make(map[meta.DataID]time.Time),
		tel:        newNodeMetrics(cfg.Telemetry, len(cfg.Accounts)),
	}
	if cfg.GossipFanout > 0 {
		metaFanout := cfg.MetaFanout
		if metaFanout == 0 {
			metaFanout = cfg.GossipFanout
		}
		// Seed the sampling RNG from deployment-shared state plus our own
		// roster index: deterministic per node, distinct across nodes, so
		// virtual-clock chaos runs replay bit-identically.
		n.gossip = newGossipState(cfg.GossipFanout, metaFanout, cfg.GenesisSeed^(int64(selfIdx+1)*0x9E3779B9))
	}

	// The repair driver must exist before the engine: the engine's
	// Liveness callback reads its churn detector during Mine.
	n.repair = n.initRepair()
	var liveness func(int) engine.Liveness
	repairMax := 0
	if n.repair != nil {
		liveness = n.livenessFor
		repairMax = cfg.RepairMaxPerBlock
	}

	// Clique topology: every pair 1 hop (full TCP mesh). NewClique keeps
	// this O(n) — the position-based constructor would burn O(n²) memory
	// and an O(n³) BFS in every node stack, minutes of setup at 1000
	// nodes before the first frame ever flowed.
	topo := netsim.NewClique(len(cfg.Accounts))
	blockPlanner := alloc.NewPlanner(1)
	blockPlanner.MinReplicas = 1
	eng, err := engine.New(engine.Config{
		Accounts:           cfg.Accounts,
		Self:               selfIdx,
		PoS:                cfg.PoS,
		Genesis:            block.Genesis(cfg.GenesisSeed),
		Now:                n.now,
		ValidateClaims:     true,
		Topology:           func() *netsim.Topology { return topo },
		Planner:            alloc.NewPlanner(1),
		BlockPlanner:       blockPlanner,
		StorageCapacity:    cfg.StorageCapacity,
		InitialRecentDepth: 1,
		SnapshotInterval:   cfg.SnapshotEvery,
		// Pruning needs finality below the horizon: run the engine's
		// consensus checkpoints at the prune depth (disabled when 0).
		CheckpointInterval: cfg.PruneDepth,
		PruneDepth:         cfg.PruneDepth,
		OnPrune:            n.onPrune,
		VerifyWorkers:      cfg.VerifyWorkers,
		Liveness:           liveness,
		RepairMaxPerBlock:  repairMax,
		OnAppend:           n.onAppend,
	})
	if err != nil {
		return nil, err
	}
	n.eng = eng

	// Crash recovery: replay blocks the store persisted in earlier runs
	// before going online. Everything mined while this node was down is
	// then caught up over the normal FrameChainRequest sync path.
	n.replayRecovered()

	transport, err := cfg.NewTransport(p2p.HandlerFunc(n.handleFrame))
	if err != nil {
		return nil, err
	}
	n.net = transport
	// The default TCP transport gets the p2p frame counters; custom
	// transports (memnet) wire their own metrics at the network level.
	if tn, ok := transport.(*p2p.Node); ok && cfg.Telemetry != nil {
		tn.SetMetrics(p2p.NewMetrics(cfg.Telemetry))
	}

	n.mu.Lock()
	// A fresh node configured for snapshot bootstrap must not mine before
	// its first Connect: sealing even one local block makes the engine
	// non-fresh, which forfeits the bootstrap and — against a peer that
	// has pruned the fork point — leaves the two chains permanently
	// split. Mining is released by the first bootstrap attempt, by any
	// block adoption, or by a grace deadline if no peer ever answers.
	if cfg.BootstrapSnapshot && n.eng.Height() == 0 {
		n.bootHold = true
		grace := cfg.SyncTimeout * time.Duration(cfg.SyncRetries+1)
		n.clock.AfterFunc(grace, func() {
			n.mu.Lock()
			if n.bootHold && n.boot == nil && !n.closed {
				n.bootHold = false
				n.scheduleMiningLocked()
			}
			n.mu.Unlock()
		})
	}
	n.scheduleMiningLocked()
	n.scheduleRepairLocked()
	n.mu.Unlock()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.net.Addr() }

// Connect dials peers and probes their chains with a block locator; any
// peer that is ahead answers with the header range of the missing suffix
// (incremental sync, DESIGN.md §10).
func (n *Node) Connect(addrs ...string) error {
	for _, a := range addrs {
		if err := n.net.Connect(a); err != nil {
			return err
		}
	}
	// Small grace for the handshake, then sync.
	n.clock.Sleep(50 * time.Millisecond)
	n.mu.Lock()
	var announce []byte
	probeFanout := 0
	if n.repair != nil {
		announce = n.repair.announce
		probeFanout = n.repair.probeFanout
	}
	n.mu.Unlock()
	if announce != nil {
		if probeFanout > 0 {
			// Sampled mode (§15): probe a bounded prefix of the new peers so
			// initial address bindings bootstrap without an O(n) broadcast;
			// the per-tick probe rotation binds the rest over time.
			targets := addrs
			if len(targets) > probeFanout {
				targets = targets[:probeFanout]
			}
			for _, a := range targets {
				n.tel.probesSent.Inc()
				n.send(a, p2p.FrameRepairProbe, announce)
			}
		} else {
			// Bind our roster index to our address on every new peer right
			// away, rather than waiting out a probe period.
			n.bcast(p2p.FrameRepairAnnounce, announce)
		}
	}
	// A fresh node configured for snapshot bootstrap asks its first peer
	// for the finalized state instead of syncing history from genesis
	// (DESIGN.md §14); the locator probe runs once the snapshot is
	// installed (or the attempt falls back).
	if n.cfg.BootstrapSnapshot && len(addrs) > 0 && n.beginBootstrap(addrs[0]) {
		return nil
	}
	n.sendSyncLocator("")
	return nil
}

// Height returns the chain height.
func (n *Node) Height() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng.Height()
}

// Tip returns the current tip block.
func (n *Node) Tip() *block.Block {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng.Tip()
}

// HasData reports whether the node holds the content for id.
func (n *Node) HasData(id meta.DataID) bool {
	return n.store.HasData(id)
}

// StoreErr returns the first persistence error the node swallowed while
// adopting blocks (nil when the store is healthy). The chain replica
// stays authoritative in memory either way; a non-nil value means the
// next restart may recover a shorter chain than the live height.
func (n *Node) StoreErr() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.storeErr
}

// BlockHashAt returns the hash of the block at height h, if known.
func (n *Node) BlockHashAt(h uint64) (block.Hash, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	b := n.eng.Chain().At(h)
	if b == nil {
		return block.Hash{}, false
	}
	return b.Hash, true
}

// HeaderHashAt returns the hash of the header at height h, if the spine
// still covers it. Unlike BlockHashAt it keeps answering for heights whose
// bodies a pruning node has discarded.
func (n *Node) HeaderHashAt(h uint64) (block.Hash, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	hdr, ok := n.eng.Chain().HeaderAt(h)
	if !ok {
		return block.Hash{}, false
	}
	return hdr.Hash, true
}

// BodyBase returns the lowest height whose full block body this node still
// retains (0 on an unpruned node).
func (n *Node) BodyBase() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng.Chain().BodyBase()
}

// PoolIDs returns the IDs of every metadata item currently in the node's
// consensus pool (unordered). The §15 pool-convergence differential
// digests chain ∪ pool item sets across transport modes.
func (n *Node) PoolIDs() []meta.DataID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng.PoolIDs()
}

// HasItemOnChain reports whether an item with the given ID is recorded in
// the node's chain replica.
func (n *Node) HasItemOnChain(id meta.DataID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng.OnChain(id)
}

// SetOnData installs (or replaces) the data-arrival callback.
func (n *Node) SetOnData(fn func(id meta.DataID, content []byte)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onData = fn
}

// Close stops mining and networking, checkpoints the store and closes it.
func (n *Node) Close() error {
	n.mu.Lock()
	n.closed = true
	if n.mineTimer != nil {
		n.mineTimer.Stop()
	}
	if n.repair != nil && n.repair.timer != nil {
		n.repair.timer.Stop()
	}
	n.clearSyncLocked()
	n.clearGossipLocked()
	n.clearBootstrapLocked()
	tip := n.eng.Tip()
	n.mu.Unlock()
	netErr := n.net.Close()
	_ = n.store.Checkpoint(tip.Index, tip.Hash)
	if err := n.store.Close(); err != nil && netErr == nil {
		netErr = err
	}
	return netErr
}

// Kill simulates a crash: mining and networking stop immediately and the
// store is released without the final checkpoint Close would write, so a
// restart from the same data directory exercises the WAL recovery path
// rather than the clean-shutdown path. The chaos harness uses it for
// crash/restart scenarios.
func (n *Node) Kill() error {
	n.mu.Lock()
	n.closed = true
	if n.mineTimer != nil {
		n.mineTimer.Stop()
	}
	if n.repair != nil && n.repair.timer != nil {
		n.repair.timer.Stop()
	}
	n.clearSyncLocked()
	n.clearGossipLocked()
	n.clearBootstrapLocked()
	n.mu.Unlock()
	netErr := n.net.Close()
	if err := n.store.Close(); err != nil && netErr == nil {
		netErr = err
	}
	return netErr
}

// ChainSnapshot returns a copy of the node's chain replica (genesis
// first). The blocks themselves are shared and must not be mutated.
func (n *Node) ChainSnapshot() []*block.Block {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]*block.Block(nil), n.eng.Chain().Blocks()...)
}

// LedgerStats returns every roster node's stake S_i and storage credit
// Q_i as derived from this node's chain replica. Index k is node ID k.
func (n *Node) LedgerStats() (s, q []uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	led := n.eng.Ledger()
	s = make([]uint64, led.N())
	q = make([]uint64, led.N())
	for i := range s {
		s[i] = led.S(i)
		q[i] = led.Q(i)
	}
	return s, q
}

// StorageUsed returns the chain-derived per-node storage usage this node's
// placement view currently assumes (live data items, block bodies and
// recent-cache slots; expired items no longer count).
func (n *Node) StorageUsed() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.now()
	out := make([]int, len(n.cfg.Accounts))
	for i := range out {
		out[i] = n.eng.View().Used(i, now)
	}
	return out
}

// now returns the current time as an offset from the shared epoch.
func (n *Node) now() time.Duration { return n.clock.Now().Sub(n.cfg.Epoch) }

// Publish creates a data item from content, stores it locally, and
// broadcasts the signed metadata.
func (n *Node) Publish(content []byte, typ, locationName string) (*meta.Item, error) {
	it := &meta.Item{
		ID:           meta.HashData(content),
		Type:         typ,
		Produced:     n.now(),
		LocationName: locationName,
		DataSize:     len(content),
	}
	it.Sign(n.cfg.Identity)
	if err := n.store.PutData(it.ID, content); err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.eng.AddLocal(it)
	relay := n.metaGossipEnabledLocked()
	n.mu.Unlock()
	if relay {
		// Inv-style relay (§15): announce only the 32-byte ID to a bounded
		// sample; peers fetch the item and re-announce on first admission.
		n.relayMeta([]meta.DataID{it.ID}, "")
	} else {
		n.bcast(p2p.FrameMeta, it.Encode())
	}
	return it, nil
}

// RequestData asks all peers for a data item; the first holder to respond
// wins and OnData fires. A fetch no peer ever answers would otherwise pin
// its latency-tracking entry forever, so each registration arms an expiry
// that drops the entry after FetchTimeout (a later RequestData for the
// same ID starts tracking afresh).
func (n *Node) RequestData(id meta.DataID) {
	n.mu.Lock()
	if _, pending := n.fetchStart[id]; !pending {
		start := n.clock.Now()
		n.fetchStart[id] = start
		n.clock.AfterFunc(n.cfg.FetchTimeout, func() { n.expireFetch(id, start) })
	}
	n.mu.Unlock()
	n.bcast(p2p.FrameDataRequest, id[:])
}

// expireFetch drops a pending-fetch entry that was never answered. The
// start time identifies the registration: if the fetch completed and a new
// one for the same ID began meanwhile, the stale timer must not touch it.
func (n *Node) expireFetch(id meta.DataID, start time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if got, ok := n.fetchStart[id]; ok && got.Equal(start) {
		delete(n.fetchStart, id)
		n.tel.dataFetchExpired.Inc()
	}
}

// pendingFetches reports how many data fetches are being tracked
// (test hook for the expiry path).
func (n *Node) pendingFetches() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.fetchStart)
}

package livenode

import (
	"bytes"
	"crypto/sha256"
	"sync"
	"testing"
	"time"

	"repro/internal/p2p"
	"repro/internal/pos"
	"repro/internal/telemetry"
)

// FuzzSnapshotFrames throws arbitrary bytes at the snapshot-bootstrap wire
// path. Invariants: decodeSnapshotChunk never panics, and no forged
// FrameSnapshot stream ever installs state — installation requires the
// advertised SHA-256 to match, the blob to decode, and the engine's
// semantic checks to pass, none of which a fuzzer can forge.

// nopHandler is a peer that swallows every frame (the fuzz node's requests
// and fallback locators go nowhere).
type nopHandler struct{}

func (nopHandler) HandleFrame(from string, ft byte, payload []byte) {}

var (
	snapFuzzOnce sync.Once
	snapFuzzNode *Node
)

// snapFuzzTarget lazily builds one fresh height-0 node with a bootstrap
// session pending against a silent peer, shared by all iterations in this
// process.
func snapFuzzTarget(f *testing.F) *Node {
	snapFuzzOnce.Do(func() {
		idents, accounts := testRoster(3)
		epoch := time.Unix(1700000000, 0)
		fn := newFakeNet()
		fn.endpoint("peer", nopHandler{})
		n, err := New(Config{
			Identity:    idents[0],
			Accounts:    accounts,
			PoS:         pos.Params{M: pos.DefaultM, T0: 60 * time.Second},
			GenesisSeed: 42,
			Epoch:       epoch,
			NewTransport: func(h p2p.Handler) (p2p.Transport, error) {
				return fn.endpoint("fuzz", h), nil
			},
			Clock:             newFakeClock(epoch),
			Telemetry:         telemetry.NewRegistry(),
			BootstrapSnapshot: true,
		})
		if err != nil {
			f.Fatal(err)
		}
		if err := n.Connect("peer"); err != nil {
			f.Fatal(err)
		}
		snapFuzzNode = n
	})
	return snapFuzzNode
}

func FuzzSnapshotFrames(f *testing.F) {
	n := snapFuzzTarget(f)

	// Seed corpus: well-formed chunks (right and wrong hashes), the
	// explicit no-snapshot answer, and shape-breaking variants, so
	// mutations explore both the codec and the reassembly state machine.
	data := bytes.Repeat([]byte{7}, 64)
	sum := sha256.Sum256(data)
	var zero [sha256.Size]byte
	f.Add(encodeSnapshotChunk(5, 64, sum, 0, 1, data))
	f.Add(encodeSnapshotChunk(5, 64, zero, 0, 1, data))
	f.Add(encodeSnapshotChunk(0, 0, zero, 0, 0, nil))
	f.Add(encodeSnapshotChunk(1, snapChunkData+9, sum, 0, 2, bytes.Repeat([]byte{2}, snapChunkData)))
	f.Add(encodeSnapshotChunk(1, snapChunkData+9, sum, 1, 2, bytes.Repeat([]byte{2}, 9)))
	f.Add(encodeSnapshotChunk(1, maxSnapTotal+1, sum, 0, 257, data))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 52))

	f.Fuzz(func(t *testing.T, payload []byte) {
		// The codec must fail cleanly, never panic, on any input.
		_, _ = decodeSnapshotChunk(payload)

		// Keep a live session so the full reassembly path runs; if the
		// session died to a poisoned stream, re-arm it. beginBootstrap
		// refuses unless the node is still fresh — so its success doubles
		// as the no-install check.
		if !n.bootstrapPending() && !n.beginBootstrap("peer") {
			t.Fatal("node no longer fresh: a fuzzed frame installed state")
		}
		n.handleFrame("peer", p2p.FrameSnapshot, payload)
		// The server side must also hold against arbitrary request bytes.
		n.handleFrame("peer", p2p.FrameGetSnapshot, payload)
		if got := n.Height(); got != 0 {
			t.Fatalf("forged snapshot frames moved the chain to height %d", got)
		}
	})
}

package livenode

import (
	"encoding/binary"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/meta"
	"repro/internal/p2p"
	"repro/internal/repair"
)

// Self-healing data plane (DESIGN.md §11). The repair driver glues the
// three pure components of internal/repair to the node's I/O:
//
//	chain (OnAppend / sync / fork adoption)
//	   └─▶ repair.Index     — who should hold what, derived from metadata
//	transport (announces, any frame, membership, mined blocks)
//	   └─▶ repair.Detector  — who is alive / suspect / dead
//	repairTick (every RepairProbeEvery)
//	   └─▶ repair.Queue + repair.Limiter — which replica to re-fetch next,
//	        bounded by workers and a byte-rate budget
//
// The engine side closes the loop: its Liveness callback reads the
// detector, so mined blocks re-announce under-replicated items onto alive
// nodes (engine.pickRepairs), and the re-announcement routes the newly
// assigned nodes' fetches through the queue below.
//
// Liveness evidence is deliberately cheap: a 4-byte unsigned announce
// heartbeat, passive refresh on every frame from a mapped address, a
// membership sweep against the transport's peer list, and the miner of
// every adopted block (at the block's timestamp). The announce is
// unsigned — a forged binding cannot inject data (content is verified
// against its hash) and self-corrects: fetches from a wrong address fail
// verification or time out, back off, and finally fall back to the
// broadcast fetch path.
const (
	// repairFrameOverhead approximates the fixed wire cost of one repair
	// frame (length prefix, type byte, data ID) for rate-limiting.
	repairFrameOverhead = 32

	defaultRepairRate       = 4096 // bytes/second
	defaultRepairProbeEvery = 2 * time.Second
	defaultRepairSuspect    = 6 * time.Second
	defaultRepairHysteresis = 10 * time.Second
	defaultRepairMaxPacked  = 4

	// maxTargetedAttempts is how many failed targeted fetches a task gets
	// before the driver stops grinding through the assigned-provider
	// rotation and broadcasts instead. Targeted fetches fail silently when
	// a provider is alive but lacks the bytes — after churn takes every
	// replica of an item down at once, the restarted providers only ever
	// ask each other, while the producer and past requesters (outside the
	// assigned set, hence never candidates) still hold the content the
	// broadcast reaches.
	maxTargetedAttempts = 2
)

// repairDriver is the per-node repair state; nil when repair is disabled
// (Config.RepairWorkers == 0). All fields are guarded by Node.mu.
type repairDriver struct {
	idx   *repair.Index
	det   *repair.Detector
	queue *repair.Queue
	lim   *repair.Limiter

	// addrIdx maps transport addresses to roster indices (learned from
	// announces); minerIdx maps account addresses, for block-based liveness.
	addrIdx  map[string]int
	minerIdx map[[32]byte]int

	announce   []byte // this node's encoded roster index (announce/probe payload)
	probeEvery time.Duration
	floor      int // replica floor the under-replication gauge checks
	timer      Timer

	// Sampled liveness probing (DESIGN.md §15); probeFanout == 0 keeps
	// the legacy per-tick announce broadcast. The rng is seeded separately
	// from the gossip plane's so probe sampling never perturbs block/meta
	// relay draws (and vice versa) in deterministic runs.
	probeFanout  int
	rng          *rand.Rand
	digestCursor int // rotating roster cursor for ack digest selection
}

// initRepair builds the repair driver (called from New before engine.New so
// the engine's Liveness callback can read the detector). Returns nil when
// repair is disabled.
func (n *Node) initRepair() *repairDriver {
	if n.cfg.RepairWorkers <= 0 {
		return nil
	}
	now := n.now()
	rd := &repairDriver{
		idx: repair.NewIndex(len(n.cfg.Accounts)),
		det: repair.NewDetector(repair.DetectorConfig{
			N:            len(n.cfg.Accounts),
			Self:         n.selfIdx,
			SuspectAfter: n.cfg.RepairSuspectAfter,
			Hysteresis:   n.cfg.RepairHysteresis,
		}, now),
		queue: repair.NewQueue(repair.QueueConfig{
			Workers: n.cfg.RepairWorkers,
			Timeout: n.cfg.RepairProbeEvery * 4,
			Backoff: n.cfg.RepairProbeEvery,
		}),
		lim:        repair.NewLimiter(n.cfg.RepairRate, 0, now),
		addrIdx:    make(map[string]int),
		minerIdx:   make(map[[32]byte]int, len(n.cfg.Accounts)),
		announce:   binary.BigEndian.AppendUint32(nil, uint32(n.selfIdx)),
		probeEvery: n.cfg.RepairProbeEvery,
		floor:      n.cfg.RepairReplicaFloor,
	}
	switch {
	case n.cfg.ProbeFanout > 0:
		rd.probeFanout = n.cfg.ProbeFanout
	case n.cfg.ProbeFanout == 0:
		rd.probeFanout = defaultProbeFanout
	}
	if rd.probeFanout >= len(n.cfg.Accounts)-1 {
		// The sample would cover the whole roster every tick, so sampling
		// buys nothing over the broadcast and its acks are pure overhead:
		// a tiny cluster keeps the legacy announce heartbeat.
		rd.probeFanout = 0
	}
	if rd.probeFanout > 0 {
		// Distinct multiplier from the gossip RNG seed: the two planes
		// must draw independent deterministic streams.
		rd.rng = rand.New(rand.NewSource(n.cfg.GenesisSeed ^ (int64(n.selfIdx+1) * 0x7F4A7C15)))
	}
	for i, a := range n.cfg.Accounts {
		rd.minerIdx[a] = i
	}
	return rd
}

// livenessFor adapts the detector's verdicts to the engine's Liveness
// levels (called by the engine under n.mu during Mine).
func (n *Node) livenessFor(i int) engine.Liveness {
	switch n.repair.det.Status(i, n.now()) {
	case repair.Dead:
		return engine.LiveDead
	case repair.Suspect:
		return engine.LiveSuspect
	default:
		return engine.LiveAlive
	}
}

// scheduleRepairLocked arms the periodic repair tick (n.mu held).
func (n *Node) scheduleRepairLocked() {
	rd := n.repair
	if rd == nil || n.closed {
		return
	}
	if rd.timer != nil {
		rd.timer.Stop()
	}
	rd.timer = n.clock.AfterFunc(rd.probeEvery, n.repairTick)
}

// noteFrameFrom refreshes passive liveness for any frame from a mapped
// transport address (called at the top of handleFrame, before n.mu is
// taken by the per-frame logic).
func (n *Node) noteFrameFrom(from string) {
	n.mu.Lock()
	if rd := n.repair; rd != nil {
		if i, ok := rd.addrIdx[from]; ok {
			rd.det.Seen(i, n.now())
		}
	}
	n.mu.Unlock()
}

// repairTick is the repair plane's heartbeat: it refreshes liveness
// evidence (sampled probes, or the legacy announce broadcast), sweeps
// membership, expires index entries and timed-out fetches, and pumps the
// queue — launching targeted provider fetches under the worker and
// byte-rate budgets. Network sends happen after n.mu is released.
func (n *Node) repairTick() {
	peers := n.net.Peers() // transport snapshot, taken outside n.mu

	type fetch struct {
		addr string
		id   meta.DataID
	}
	var fetches []fetch
	var fallbacks []meta.DataID
	doAnnounce := false
	var announce []byte
	var probeTargets []string

	n.mu.Lock()
	rd := n.repair
	if rd == nil || n.closed {
		n.mu.Unlock()
		return
	}
	nowD := n.now()
	announce = rd.announce
	if rd.probeFanout > 0 {
		// Sampled probing (§15): direct evidence to a bounded deterministic
		// sample per tick; third-party evidence arrives as ack digests.
		cand := append([]string(nil), peers...)
		probeTargets = samplePeersLocked(rd.rng, cand, rd.probeFanout)
	} else {
		doAnnounce = true
	}

	// Membership sweep: a roster node whose known address dropped off the
	// transport's peer list accumulates failures toward Suspect.
	peerSet := make(map[string]bool, len(peers))
	for _, a := range peers {
		peerSet[a] = true
	}
	for i := range n.cfg.Accounts {
		if i == n.selfIdx {
			continue
		}
		if a := rd.det.Addr(i); a != "" && !peerSet[a] {
			rd.det.Fail(i)
		}
	}

	rd.idx.ExpireUntil(nowD)

	// Self-audit: any live item the chain assigns to this node whose bytes
	// the local store lacks goes (back) on the queue. The usual fetch hooks
	// fire on chain adoption (onAppend, suffix sync), which misses two
	// cases: a node that restarted with its chain already current adopts
	// nothing, and a queue task whose every provider stayed unreachable
	// past MaxAttempts is forgotten after its one broadcast fallback. The
	// audit makes both reconverge at probe cadence; Queue.Add dedups, so a
	// pending or in-flight task is never duplicated.
	for _, id := range rd.idx.Items(n.selfIdx) {
		if !n.store.HasData(id) && rd.queue.Add(id, nowD) {
			n.tel.repairEnqueued.Inc()
		}
	}

	fallbacks = append(fallbacks, rd.queue.Expire(nowD)...)

	// Pump: launch eligible fetches while worker slots and byte budget last.
	for {
		id, ok := rd.queue.Next(nowD)
		if !ok {
			break
		}
		if n.store.HasData(id) {
			rd.queue.Done(id, nowD) // arrived by another path
			continue
		}
		if rd.queue.Attempts(id) >= maxTargetedAttempts {
			// The assigned providers had their chances; hand the item to
			// the broadcast path, which any holder can answer. The
			// self-audit above re-queues it next tick if nothing comes.
			rd.queue.Done(id, nowD)
			fallbacks = append(fallbacks, id)
			continue
		}
		addr := n.pickProviderLocked(id, nowD)
		if addr == "" {
			// No reachable provider right now: retry next tick, and after
			// MaxAttempts hand the item to the broadcast fallback.
			if rd.queue.Defer(id, nowD+rd.probeEvery) {
				fallbacks = append(fallbacks, id)
			}
			continue
		}
		if !rd.lim.Allow(nowD, repairFrameOverhead) {
			n.tel.repairThrottled.Inc()
			break // out of byte budget: everything else waits for refill
		}
		rd.queue.Launch(id, nowD)
		fetches = append(fetches, fetch{addr: addr, id: id})
	}

	n.updateRepairGaugesLocked(nowD)
	n.scheduleRepairLocked()
	n.mu.Unlock()

	if doAnnounce {
		n.bcast(p2p.FrameRepairAnnounce, announce)
	}
	for _, p := range probeTargets {
		n.tel.probesSent.Inc()
		n.send(p, p2p.FrameRepairProbe, announce)
	}
	for _, f := range fetches {
		n.tel.repairFetches.Inc()
		n.send(f.addr, p2p.FrameRepairGet, f.id[:])
	}
	for _, id := range fallbacks {
		n.tel.repairFallbacks.Inc()
		n.RequestData(id)
	}
}

// pickProviderLocked chooses the provider to fetch id from: a not-dead
// provider with a known address, alive ones first, rotated by the task's
// attempt count so retries spread across candidates (n.mu held). Returns
// "" when no provider is currently reachable.
func (n *Node) pickProviderLocked(id meta.DataID, now time.Duration) string {
	rd := n.repair
	var alive, suspect []string
	for _, p := range rd.idx.Providers(id) {
		if p == n.selfIdx {
			continue
		}
		addr := rd.det.Addr(p)
		if addr == "" {
			continue
		}
		switch rd.det.Status(p, now) {
		case repair.Alive:
			alive = append(alive, addr)
		case repair.Suspect:
			suspect = append(suspect, addr)
		}
	}
	cands := append(alive, suspect...)
	if len(cands) == 0 {
		return ""
	}
	return cands[rd.queue.Attempts(id)%len(cands)]
}

// updateRepairGaugesLocked refreshes the under-replication and dead-node
// gauges (n.mu held).
func (n *Node) updateRepairGaugesLocked(now time.Duration) {
	rd := n.repair
	dead := func(i int) bool { return rd.det.Status(i, now) == repair.Dead }
	n.tel.underReplicated.Set(int64(len(rd.idx.Deficits(now, rd.floor, dead))))
	n.tel.deadNodes.Set(int64(rd.det.CountDead(now)))
}

// handleRepairAnnounce ingests a peer's heartbeat: it binds the sender's
// transport address to the claimed roster index and refreshes liveness.
// The first time an address maps, we answer with our own announce so both
// sides learn the binding without waiting a full probe period.
func (n *Node) handleRepairAnnounce(from string, payload []byte) {
	if len(payload) != 4 {
		return
	}
	i := int(binary.BigEndian.Uint32(payload))
	n.mu.Lock()
	rd := n.repair
	if rd == nil || i < 0 || i >= len(n.cfg.Accounts) || i == n.selfIdx {
		n.mu.Unlock()
		return
	}
	first := rd.det.Addr(i) == ""
	n.bindRepairAddrLocked(i, from)
	var reply []byte
	if first {
		reply = rd.announce
	}
	n.mu.Unlock()
	if reply != nil {
		n.send(from, p2p.FrameRepairAnnounce, reply)
	}
}

// handleRepairGet answers a targeted repair fetch if this node holds the
// content and the response fits the repair byte budget. A denied budget
// means no answer: the requester times out, backs off and retries — that
// is exactly the rate limit doing its job.
func (n *Node) handleRepairGet(from string, payload []byte) {
	if len(payload) != len(meta.DataID{}) {
		return
	}
	var id meta.DataID
	copy(id[:], payload)
	content, ok := n.store.GetData(id)
	if !ok {
		return
	}
	n.mu.Lock()
	rd := n.repair
	allowed := rd != nil && rd.lim.Allow(n.now(), repairFrameOverhead+len(content))
	if rd != nil && !allowed {
		n.tel.repairThrottled.Inc()
	}
	n.mu.Unlock()
	if !allowed {
		return
	}
	resp := make([]byte, len(id)+len(content))
	copy(resp, id[:])
	copy(resp[len(id):], content)
	n.send(from, p2p.FrameRepairData, resp)
}

// handleRepairData ingests a targeted fetch response: content is verified
// against its ID, stored, and the queue task completed.
func (n *Node) handleRepairData(payload []byte) {
	if len(payload) < len(meta.DataID{}) {
		return
	}
	var id meta.DataID
	copy(id[:], payload)
	content := append([]byte(nil), payload[len(id):]...)
	if meta.HashData(content) != id {
		return // forged or corrupt: the task times out and retries elsewhere
	}
	dup := n.store.HasData(id)
	if !dup {
		if err := n.store.PutData(id, content); err != nil {
			return
		}
	}
	n.mu.Lock()
	cb := n.onData
	if rd := n.repair; rd != nil {
		if lat, wasInflight := rd.queue.Done(id, n.now()); wasInflight {
			n.tel.repairFetchNs.Observe(int64(lat))
			n.tel.repairCompleted.Inc()
		}
	}
	n.mu.Unlock()
	if !dup && cb != nil {
		cb(id, content)
	}
}

// --- counted wire helpers ----------------------------------------------------
//
// Every application frame goes out through these wrappers so telemetry can
// split wire bytes into consensus, data and repair traffic; the chaos
// suite asserts the §11 invariant (repair strictly below consensus) from
// the resulting counters. The 5 accounts for the frame header (4-byte
// length + 1-byte type).

func (n *Node) countWire(ft byte, payloadLen, copies int) {
	if copies <= 0 {
		return
	}
	bytes := (payloadLen + 5) * copies
	switch ft {
	case p2p.FrameDataRequest, p2p.FrameData:
		n.tel.wireDataBytes.Add(bytes)
	case p2p.FrameRepairAnnounce, p2p.FrameRepairProbe, p2p.FrameRepairProbeAck:
		// Liveness traffic alone — the bytes the §15 sampled-probe gate
		// compares against the legacy broadcast heartbeat.
		n.tel.wireRepairBytes.Add(bytes)
		n.tel.wireHeartbeatBytes.Add(bytes)
	case p2p.FrameRepairGet, p2p.FrameRepairData:
		n.tel.wireRepairBytes.Add(bytes)
	case p2p.FrameMeta, p2p.FrameMetaAnnounce, p2p.FrameGetMeta:
		// Metadata propagation (push or gossip announce/fetch exchange) —
		// the bytes the §15 meta-gossip gate compares.
		n.tel.wireConsensusBytes.Add(bytes)
		n.tel.wireMetaBytes.Add(bytes)
	case p2p.FrameBlock, p2p.FrameGetBlock:
		// Block propagation proper (push or gossip fetch exchange) — the
		// bytes the §13 gossip-vs-full-mesh gate compares.
		n.tel.wireConsensusBytes.Add(bytes)
		n.tel.wireBlockBytes.Add(bytes)
	case p2p.FrameBlockAnnounce:
		n.tel.wireConsensusBytes.Add(bytes)
		n.tel.wireBlockBytes.Add(bytes)
		n.tel.wireAnnounceBytes.Add(bytes)
	case p2p.FrameGetSnapshot, p2p.FrameSnapshot:
		// Snapshot bootstrap traffic (DESIGN.md §14) — split out so the
		// cold-join gate can compare it against suffix-sync bytes.
		n.tel.wireConsensusBytes.Add(bytes)
		n.tel.wireSnapshotBytes.Add(bytes)
	default:
		n.tel.wireConsensusBytes.Add(bytes)
	}
}

// send is the counted p2p.Transport.Send; a failed send toward a mapped
// roster node feeds the churn detector.
func (n *Node) send(peer string, ft byte, payload []byte) {
	if err := n.net.Send(peer, ft, payload); err != nil {
		n.mu.Lock()
		if rd := n.repair; rd != nil {
			if i, ok := rd.addrIdx[peer]; ok {
				rd.det.Fail(i)
			}
		}
		n.mu.Unlock()
		return
	}
	n.countWire(ft, len(payload), 1)
}

// bcast is the counted p2p.Transport.Broadcast.
func (n *Node) bcast(ft byte, payload []byte) {
	delivered, _ := n.net.Broadcast(ft, payload)
	n.countWire(ft, len(payload), delivered)
}

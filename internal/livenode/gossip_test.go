package livenode

import (
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/p2p"
)

// newGossipTestNode is newSyncTestNode on a shared fake clock: gossip
// delivers full blocks straight into ReceiveBlock, whose future-timestamp
// check needs the receiver's clock to match the miner's — exactly the
// real-cluster shape, where every node reads one wall clock.
func newGossipTestNode(t testing.TB, fn *fakeNet, clk *fakeClock, name string, idx int, epoch time.Time, mutate func(cfg *Config)) *syncTestNode {
	t.Helper()
	n := newSyncTestNode(t, fn, name, idx, epoch, func(cfg *Config) {
		cfg.Clock = clk
		if mutate != nil {
			mutate(cfg)
		}
	})
	n.clock = clk
	return n
}

// stopMining disarms the node's mining timer so a shared-clock advance
// (driving another node's rounds) cannot make this one mine competing
// blocks mid-test. Adopting a block re-arms it.
func (n *syncTestNode) stopMining() {
	n.mu.Lock()
	if n.mineTimer != nil {
		n.mineTimer.Stop()
		n.mineTimer = nil
	}
	n.mu.Unlock()
}

// link wires two nodes at the transport level only — unlike
// livenode.Connect it sends no sync locator, so tests control exactly
// which frames flow.
func link(t *testing.T, nodes ...*syncTestNode) {
	t.Helper()
	for i, a := range nodes {
		for _, b := range nodes[i+1:] {
			if err := a.Node.net.Connect(b.Node.net.Addr()); err != nil {
				t.Fatal(err)
			}
			if err := b.Node.net.Connect(a.Node.net.Addr()); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestGossipAnnounceFetchAdopt(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	clk := newFakeClock(epoch)
	b := newGossipTestNode(t, fn, clk, "b", 1, epoch, nil)
	a := newGossipTestNode(t, fn, clk, "a", 0, epoch, nil)
	a.stopMining()
	b.mineBlocks(t, 1)
	link(t, a, b)

	tip := b.Tip()
	a.handleFrame("b", p2p.FrameBlockAnnounce, encodeAnnounce(tip.Index, tip.Hash))
	// fakeNet delivers synchronously: the GetBlock round trip and the
	// adoption all completed inside handleFrame.
	if got := a.Height(); got != 1 {
		t.Fatalf("height after announce/fetch = %d, want 1", got)
	}
	if a.Tip().Hash != tip.Hash {
		t.Fatal("adopted block differs from announced one")
	}
	if v := counter(a.reg, "livenode.gossip.fetches_sent"); v != 1 {
		t.Errorf("gossip.fetches_sent = %d, want 1", v)
	}
	if v := counter(b.reg, "livenode.gossip.fetches_served"); v != 1 {
		t.Errorf("gossip.fetches_served = %d, want 1", v)
	}
	if v := counter(a.reg, "livenode.sync.rounds"); v != 0 {
		t.Errorf("sync.rounds = %d, want 0 (gossip fetch, no sync)", v)
	}
	// The announce left block-propagation wire-byte evidence on both ends.
	if v := counter(a.reg, "livenode.wire.block_bytes"); v == 0 {
		t.Error("wire.block_bytes = 0 on the fetching side")
	}
	if v := counter(b.reg, "livenode.wire.block_bytes"); v == 0 {
		t.Error("wire.block_bytes = 0 on the serving side")
	}
}

// TestGossipReannounceAdoptedSuppressed is the ISSUE satellite: a
// re-announced, already-adopted hash must trigger neither a fetch nor a
// sync round — the announce-path twin of the chain.ErrDuplicate guard.
func TestGossipReannounceAdoptedSuppressed(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	clk := newFakeClock(epoch)
	b := newGossipTestNode(t, fn, clk, "b", 1, epoch, nil)
	a := newGossipTestNode(t, fn, clk, "a", 0, epoch, nil)
	a.stopMining()
	b.mineBlocks(t, 1)
	link(t, a, b)

	tip := b.Tip()
	ann := encodeAnnounce(tip.Index, tip.Hash)
	a.handleFrame("b", p2p.FrameBlockAnnounce, ann)
	if a.Height() != 1 {
		t.Fatalf("height = %d, want 1", a.Height())
	}
	fetches := counter(a.reg, "livenode.gossip.fetches_sent")
	syncRounds := counter(a.reg, "livenode.sync.rounds")
	legacyRounds := counter(a.reg, "livenode.chainsync.rounds")

	for i := 0; i < 3; i++ {
		a.handleFrame("b", p2p.FrameBlockAnnounce, ann)
	}
	if v := counter(a.reg, "livenode.gossip.fetches_sent"); v != fetches {
		t.Errorf("re-announce sent a fetch: fetches_sent %d -> %d", fetches, v)
	}
	if v := counter(a.reg, "livenode.sync.rounds"); v != syncRounds {
		t.Errorf("re-announce opened a sync round: sync.rounds %d -> %d", syncRounds, v)
	}
	if v := counter(a.reg, "livenode.chainsync.rounds"); v != legacyRounds {
		t.Errorf("re-announce opened a legacy exchange: chainsync.rounds %d -> %d", legacyRounds, v)
	}
	if v := counter(a.reg, "livenode.gossip.dup_suppressed"); v != 3 {
		t.Errorf("gossip.dup_suppressed = %d, want 3", v)
	}
}

func TestGossipRelayOnAdoptExcludesSender(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	clk := newFakeClock(epoch)
	b := newGossipTestNode(t, fn, clk, "b", 1, epoch, nil)
	a := newGossipTestNode(t, fn, clk, "a", 0, epoch, nil)
	c := newGossipTestNode(t, fn, clk, "c", 2, epoch, nil)
	a.stopMining()
	c.stopMining()
	b.mineBlocks(t, 1)
	link(t, a, b, c)

	// Push the body straight to a, as if a had fetched it: a adopts and
	// must relay the announce to c (never back to b). c lacks the hash,
	// fetches from a, adopts, and relays onward to b — which already holds
	// the block and suppresses.
	blk := b.Tip()
	a.handleFrame("b", p2p.FrameBlock, blk.Encode())
	if a.Height() != 1 || c.Height() != 1 {
		t.Fatalf("heights a=%d c=%d, want 1/1", a.Height(), c.Height())
	}
	if v := counter(a.reg, "livenode.gossip.relays"); v != 1 {
		t.Errorf("a gossip.relays = %d, want 1", v)
	}
	if v := counter(c.reg, "livenode.gossip.fetches_sent"); v != 1 {
		t.Errorf("c gossip.fetches_sent = %d, want 1", v)
	}
	if v := counter(a.reg, "livenode.gossip.fetches_served"); v != 1 {
		t.Errorf("a gossip.fetches_served = %d, want 1", v)
	}
	// b never saw a GetBlock: the relay excluded the sender, and b's own
	// copy suppressed c's onward announce.
	if v := counter(b.reg, "livenode.gossip.fetches_served"); v != 0 {
		t.Errorf("b gossip.fetches_served = %d, want 0 (announce must not return to sender)", v)
	}
	if v := counter(b.reg, "livenode.gossip.dup_suppressed"); v == 0 {
		t.Error("b gossip.dup_suppressed = 0, want > 0 (c's onward relay)")
	}
}

func TestGossipFetchTimeoutFallsBackToLocator(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	b := newSyncTestNode(t, fn, "b", 1, epoch, nil)
	a := newSyncTestNode(t, fn, "a", 0, epoch, nil)
	b.mineBlocks(t, 1)
	link(t, a, b)

	// The announcer never answers fetches; the locator path must heal.
	fn.setDrop(func(from, to string, ft byte) bool { return ft == p2p.FrameGetBlock })
	tip := b.Tip()
	a.handleFrame("b", p2p.FrameBlockAnnounce, encodeAnnounce(tip.Index, tip.Hash))
	if a.Height() != 0 {
		t.Fatalf("height = %d before timeout, want 0", a.Height())
	}
	a.clock.Advance(time.Second) // cfg.SyncTimeout
	if v := counter(a.reg, "livenode.gossip.fetch_timeouts"); v != 1 {
		t.Fatalf("gossip.fetch_timeouts = %d, want 1", v)
	}
	if v := counter(a.reg, "livenode.sync.rounds"); v != 1 {
		t.Fatalf("sync.rounds = %d, want 1 (locator fallback)", v)
	}
	if a.Height() != 1 {
		t.Fatalf("height after locator fallback = %d, want 1", a.Height())
	}
	// A re-announce of the hash the locator path already covered must not
	// restart a fetch (it is adopted now, but the seen-LRU covered the
	// window in between).
	fetches := counter(a.reg, "livenode.gossip.fetches_sent")
	a.handleFrame("b", p2p.FrameBlockAnnounce, encodeAnnounce(tip.Index, tip.Hash))
	if v := counter(a.reg, "livenode.gossip.fetches_sent"); v != fetches {
		t.Errorf("re-announce after timeout refetched: %d -> %d", fetches, v)
	}
}

func TestGossipStaleAndPendingSuppression(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	a := newSyncTestNode(t, fn, "a", 0, epoch, nil)
	b := newSyncTestNode(t, fn, "b", 1, epoch, nil)
	a.mineBlocks(t, 2)
	link(t, a, b)
	fn.setDrop(func(from, to string, ft byte) bool { return ft == p2p.FrameGetBlock })

	// An announce at or below our tip cannot extend the longest chain.
	a.handleFrame("b", p2p.FrameBlockAnnounce, encodeAnnounce(1, block.Hash{0xaa}))
	if v := counter(a.reg, "livenode.gossip.stale_suppressed"); v != 1 {
		t.Errorf("gossip.stale_suppressed = %d, want 1", v)
	}
	// …and its hash lands in the seen-LRU: a repeat is a dup.
	a.handleFrame("b", p2p.FrameBlockAnnounce, encodeAnnounce(1, block.Hash{0xaa}))
	if v := counter(a.reg, "livenode.gossip.dup_suppressed"); v != 1 {
		t.Errorf("gossip.dup_suppressed = %d after stale repeat, want 1", v)
	}

	// While a fetch is pending, repeats of the same hash are suppressed.
	a.handleFrame("b", p2p.FrameBlockAnnounce, encodeAnnounce(3, block.Hash{0xbb}))
	if v := counter(a.reg, "livenode.gossip.fetches_sent"); v != 1 {
		t.Fatalf("gossip.fetches_sent = %d, want 1", v)
	}
	a.handleFrame("b", p2p.FrameBlockAnnounce, encodeAnnounce(3, block.Hash{0xbb}))
	if v := counter(a.reg, "livenode.gossip.fetches_sent"); v != 1 {
		t.Errorf("pending hash refetched")
	}
	if v := counter(a.reg, "livenode.gossip.dup_suppressed"); v != 2 {
		t.Errorf("gossip.dup_suppressed = %d, want 2", v)
	}
}

// TestGossipPendingOverflowDegradesToSync pins the fetch-table bound: past
// maxPendingFetch outstanding fetches the node is clearly far behind, and
// further announces open a batched sync round instead.
func TestGossipPendingOverflowDegradesToSync(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	a := newSyncTestNode(t, fn, "a", 0, epoch, nil)
	b := newSyncTestNode(t, fn, "b", 1, epoch, nil)
	link(t, a, b)
	fn.setDrop(func(from, to string, ft byte) bool {
		return ft == p2p.FrameGetBlock || ft == p2p.FrameSyncLocator
	})

	for i := 0; i < maxPendingFetch; i++ {
		var h block.Hash
		h[0], h[1] = byte(i), byte(i>>8)
		h[31] = 1 // never the zero hash
		a.handleFrame("b", p2p.FrameBlockAnnounce, encodeAnnounce(uint64(100+i), h))
	}
	if v := counter(a.reg, "livenode.gossip.fetches_sent"); v != maxPendingFetch {
		t.Fatalf("gossip.fetches_sent = %d, want %d", v, maxPendingFetch)
	}
	if v := counter(a.reg, "livenode.sync.rounds"); v != 0 {
		t.Fatalf("sync.rounds = %d while table filling, want 0", v)
	}
	a.handleFrame("b", p2p.FrameBlockAnnounce, encodeAnnounce(500, block.Hash{0xff}))
	if v := counter(a.reg, "livenode.gossip.fetches_sent"); v != maxPendingFetch {
		t.Errorf("overflow announce still fetched: %d", v)
	}
	if v := counter(a.reg, "livenode.sync.rounds"); v != 1 {
		t.Errorf("sync.rounds = %d after overflow, want 1", v)
	}
}

func TestGossipDisabledIgnoresAnnouncesAndPushesFullBlocks(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	legacy := func(cfg *Config) { cfg.GossipFanout = -1 }
	clk := newFakeClock(epoch)
	b := newGossipTestNode(t, fn, clk, "b", 1, epoch, legacy)
	a := newGossipTestNode(t, fn, clk, "a", 0, epoch, legacy)
	a.stopMining()
	b.mineBlocks(t, 1)
	link(t, a, b)

	if a.Node.gossip != nil {
		t.Fatal("GossipFanout=-1 left gossip state armed")
	}
	tip := b.Tip()
	a.handleFrame("b", p2p.FrameBlockAnnounce, encodeAnnounce(tip.Index, tip.Hash))
	if a.Height() != 0 {
		t.Fatalf("legacy node acted on an announce: height %d", a.Height())
	}
	if v := counter(a.reg, "livenode.gossip.fetches_sent"); v != 0 {
		t.Errorf("legacy node sent a gossip fetch")
	}
	// The legacy push path still works end to end.
	a.handleFrame("b", p2p.FrameBlock, tip.Encode())
	if a.Height() != 1 {
		t.Fatalf("legacy push not adopted: height %d", a.Height())
	}
	if v := counter(a.reg, "livenode.gossip.relays"); v != 0 {
		t.Errorf("legacy node relayed an announce")
	}
}

func TestGossipSamplingBoundedAndExcludes(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	a := newSyncTestNode(t, fn, "a", 0, epoch, func(cfg *Config) { cfg.GossipFanout = 2 })
	b := newSyncTestNode(t, fn, "b", 1, epoch, nil)
	c := newSyncTestNode(t, fn, "c", 2, epoch, nil)
	link(t, a, b, c)

	for i := 0; i < 32; i++ {
		got := a.Node.sampleGossipPeers("b")
		if len(got) != 1 || got[0] != "c" {
			t.Fatalf("sample excluding b = %v, want [c]", got)
		}
		both := a.Node.sampleGossipPeers("")
		if len(both) != 2 || both[0] == both[1] {
			t.Fatalf("sample of 2 from {b,c} = %v", both)
		}
	}
}

func TestHashLRU(t *testing.T) {
	l := newSeenLRU[block.Hash](3)
	h := func(i byte) block.Hash { return block.Hash{i} }
	for i := byte(1); i <= 3; i++ {
		l.Add(h(i))
	}
	for i := byte(1); i <= 3; i++ {
		if !l.Has(h(i)) {
			t.Fatalf("hash %d missing before eviction", i)
		}
	}
	// Re-adding a present hash must not churn the ring…
	l.Add(h(2))
	// …so adding a fourth evicts the oldest (1), not 2 or 3.
	l.Add(h(4))
	if l.Has(h(1)) {
		t.Error("oldest hash survived eviction")
	}
	for i := byte(2); i <= 4; i++ {
		if !l.Has(h(i)) {
			t.Errorf("hash %d evicted early", i)
		}
	}
	l.Add(h(5))
	l.Add(h(6))
	if l.Has(h(2)) || l.Has(h(3)) {
		t.Error("FIFO order violated")
	}
	if !l.Has(h(4)) || !l.Has(h(5)) || !l.Has(h(6)) {
		t.Error("recent hashes evicted")
	}
}

func TestGossipCodecs(t *testing.T) {
	var h block.Hash
	for i := range h {
		h[i] = byte(i * 7)
	}
	height, got, err := decodeAnnounce(encodeAnnounce(12345, h))
	if err != nil || height != 12345 || got != h {
		t.Fatalf("announce round trip: %d %x %v", height, got, err)
	}
	gh, err := decodeGetBlock(h[:])
	if err != nil || gh != h {
		t.Fatalf("get-block round trip: %x %v", gh, err)
	}
	bad := [][]byte{nil, {1, 2, 3}, make([]byte, 39), make([]byte, 41)}
	for _, p := range bad {
		if _, _, err := decodeAnnounce(p); err == nil {
			t.Errorf("decodeAnnounce(%d bytes) accepted", len(p))
		}
	}
	for _, p := range [][]byte{nil, {1}, make([]byte, 31), make([]byte, 33)} {
		if _, err := decodeGetBlock(p); err == nil {
			t.Errorf("decodeGetBlock(%d bytes) accepted", len(p))
		}
	}
}

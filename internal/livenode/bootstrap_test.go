package livenode

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"time"

	"repro/internal/p2p"
	"repro/internal/store"
)

func TestSnapshotChunkCodec(t *testing.T) {
	data := bytes.Repeat([]byte{7}, 32)
	sum := sha256.Sum256(data)
	good := encodeSnapshotChunk(5, 32, sum, 0, 1, data)
	c, err := decodeSnapshotChunk(good)
	if err != nil {
		t.Fatal(err)
	}
	if c.Height != 5 || c.Total != 32 || c.Hash != sum || c.Idx != 0 || c.Count != 1 || !bytes.Equal(c.Data, data) {
		t.Fatal("round trip lost fields")
	}
	noSnap, err := decodeSnapshotChunk(encodeSnapshotChunk(0, 0, [sha256.Size]byte{}, 0, 0, nil))
	if err != nil || noSnap.Count != 0 {
		t.Fatalf("no-snapshot chunk rejected: %v", err)
	}

	full := bytes.Repeat([]byte{1}, snapChunkData)
	bad := [][]byte{
		good[:10], // truncated header
		good[:52], // exactly the fixed header of a data-carrying chunk, no data
		append(encodeSnapshotChunk(0, 0, [sha256.Size]byte{}, 0, 0, nil), 1),       // no-snapshot with data
		encodeSnapshotChunk(1, 4, sum, 0, 0, nil),                                  // count 0 with total
		encodeSnapshotChunk(1, 0, sum, 0, 1, nil),                                  // zero total with chunks
		encodeSnapshotChunk(1, maxSnapTotal+1, sum, 0, 257, full),                  // oversized total
		encodeSnapshotChunk(1, 32, sum, 0, 2, data),                                // count does not match total
		encodeSnapshotChunk(1, 32, sum, 1, 1, data),                                // index out of range
		encodeSnapshotChunk(1, 32, sum, 0, 1, data[:31]),                           // short chunk
		encodeSnapshotChunk(1, snapChunkData+1, sum, 1, 2, []byte{1, 2}),           // wrong last-chunk length
		encodeSnapshotChunk(1, snapChunkData+1, sum, 0, 2, full[:snapChunkData-1]), // wrong middle-chunk length
	}
	for i, payload := range bad {
		if _, err := decodeSnapshotChunk(payload); err == nil {
			t.Fatalf("malformed chunk %d accepted", i)
		}
	}
}

// TestBootstrapInstallAndSuffixSync is the happy path: a fresh node asks
// its first peer for the finalized snapshot, installs it without replaying
// history, suffix-syncs the live blocks above the anchor, and then follows
// the chain like any other replica.
func TestBootstrapInstallAndSuffixSync(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	b := newSyncTestNode(t, fn, "b", 1, epoch, func(cfg *Config) { cfg.SnapshotEvery = 4 })
	b.mineBlocks(t, 10) // snapshots at 4 and 8; anchor = 8, live suffix = 9..10

	a := newSyncTestNode(t, fn, "a", 0, epoch, func(cfg *Config) {
		cfg.SnapshotEvery = 4
		cfg.BootstrapSnapshot = true
	})
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Height(), uint64(10); got != want {
		t.Fatalf("height after bootstrap = %d, want %d", got, want)
	}
	if a.Tip().Hash != b.Tip().Hash {
		t.Fatal("tips diverge after bootstrap")
	}
	a.mu.Lock()
	base, hdrBase := a.eng.Chain().BodyBase(), a.eng.Chain().HeaderBase()
	pending := a.boot != nil
	a.mu.Unlock()
	if base != 8 || hdrBase != 8 {
		t.Fatalf("bootstrapped replica bases = %d/%d, want 8/8 (no replayed history)", base, hdrBase)
	}
	if pending {
		t.Fatal("bootstrap session not torn down after install")
	}
	if v := counter(a.reg, "livenode.bootstrap.installed"); v != 1 {
		t.Errorf("bootstrap.installed = %d, want 1", v)
	}
	if v := counter(a.reg, "livenode.bootstrap.requests"); v != 1 {
		t.Errorf("bootstrap.requests = %d, want 1", v)
	}
	if v := counter(a.reg, "livenode.bootstrap.chunks"); v < 1 {
		t.Errorf("bootstrap.chunks = %d, want >= 1", v)
	}
	if v := counter(a.reg, "livenode.bootstrap.fallbacks"); v != 0 {
		t.Errorf("bootstrap.fallbacks = %d, want 0", v)
	}
	if v := counter(a.reg, "livenode.sync.blocks_fetched"); v != 2 {
		t.Errorf("sync.blocks_fetched = %d, want 2 (only the live suffix)", v)
	}
	if v := counter(b.reg, "livenode.bootstrap.served"); v != 1 {
		t.Errorf("bootstrap.served on peer = %d, want 1", v)
	}
	if err := a.StoreErr(); err != nil {
		t.Fatalf("store error: %v", err)
	}

	// The bootstrapped node keeps following the chain.
	b.mineBlocks(t, 3)
	if a.Height() != 13 || a.Tip().Hash != b.Tip().Hash {
		t.Fatalf("bootstrapped node lost the live chain at height %d", a.Height())
	}
}

// TestBootstrapHoldsMiningUntilConnect: a fresh node configured for
// snapshot bootstrap must not seal a local block in the window between
// process start and its first Connect — one self-mined block makes the
// engine non-fresh, forfeits the bootstrap, and against a peer that has
// pruned the fork point would split the two chains permanently.
func TestBootstrapHoldsMiningUntilConnect(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	b := newSyncTestNode(t, fn, "b", 1, epoch, func(cfg *Config) { cfg.SnapshotEvery = 4 })
	b.mineBlocks(t, 10)

	a := newSyncTestNode(t, fn, "a", 0, epoch, func(cfg *Config) {
		cfg.SnapshotEvery = 4
		cfg.BootstrapSnapshot = true
		cfg.SyncTimeout = time.Hour // keep the startup hold open for the whole test
	})
	// Wall-clock time passes well beyond the node's first PoS round fire
	// times before the operator's peer list is dialed; the held node must
	// stay fresh instead of mining its own fork.
	a.clock.Advance(10 * time.Minute)
	if got := a.Height(); got != 0 {
		t.Fatalf("held node mined %d block(s) before Connect", got)
	}
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if a.Height() != b.Height() || a.Tip().Hash != b.Tip().Hash {
		t.Fatalf("bootstrap after hold: height %d vs peer %d", a.Height(), b.Height())
	}
	if v := counter(a.reg, "livenode.bootstrap.installed"); v != 1 {
		t.Errorf("bootstrap.installed = %d, want 1", v)
	}
	a.mu.Lock()
	armed := a.mineTimer != nil
	a.mu.Unlock()
	if !armed {
		t.Fatal("mining not re-armed after the bootstrap install")
	}
}

// TestBootstrapHoldExpiresWithoutPeers: the startup mining hold is a
// bounded wait, not a deadlock — a node whose peers never answer starts
// mining on its own after the bootstrap grace window. (This also proves
// the 10-minute window above gives an unheld node ample rounds to mine,
// so the hold — not slow PoS rounds — is what kept the node fresh.)
func TestBootstrapHoldExpiresWithoutPeers(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	a := newSyncTestNode(t, fn, "a", 0, epoch, func(cfg *Config) {
		cfg.BootstrapSnapshot = true
		// Grace = SyncTimeout * (SyncRetries+1) = 3s with the test config.
	})
	a.clock.Advance(10 * time.Minute)
	if a.Height() == 0 {
		t.Fatal("hold never expired: isolated node mined nothing in 10 minutes")
	}
}

// TestBootstrapNoSnapshotFallsBack: a peer with no exportable snapshot
// answers with an explicit zero-count chunk, and the joiner degrades to
// plain suffix sync from genesis immediately.
func TestBootstrapNoSnapshotFallsBack(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	b := newSyncTestNode(t, fn, "b", 1, epoch, func(cfg *Config) { cfg.SnapshotEvery = 64 })
	b.mineBlocks(t, 3) // below the snapshot interval: nothing to offer

	a := newSyncTestNode(t, fn, "a", 0, epoch, func(cfg *Config) { cfg.BootstrapSnapshot = true })
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if got := a.Height(); got != 3 {
		t.Fatalf("height after fallback = %d, want 3", got)
	}
	if a.Tip().Hash != b.Tip().Hash {
		t.Fatal("tips diverge after fallback")
	}
	if v := counter(a.reg, "livenode.bootstrap.fallbacks"); v != 1 {
		t.Errorf("bootstrap.fallbacks = %d, want 1", v)
	}
	if v := counter(a.reg, "livenode.bootstrap.installed"); v != 0 {
		t.Errorf("bootstrap.installed = %d, want 0", v)
	}
	if v := counter(a.reg, "livenode.sync.blocks_fetched"); v != 3 {
		t.Errorf("sync.blocks_fetched = %d, want 3 (full history)", v)
	}
}

// TestBootstrapTimeoutFallsBack: when every snapshot chunk is lost in
// flight, the single transfer deadline fires and the node falls back to
// locator sync — bootstrap is never a liveness risk.
func TestBootstrapTimeoutFallsBack(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	b := newSyncTestNode(t, fn, "b", 1, epoch, func(cfg *Config) { cfg.SnapshotEvery = 4 })
	b.mineBlocks(t, 8)

	fn.setDrop(func(from, to string, ft byte) bool { return ft == p2p.FrameSnapshot })
	a := newSyncTestNode(t, fn, "a", 0, epoch, func(cfg *Config) { cfg.BootstrapSnapshot = true })
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if !a.bootstrapPending() {
		t.Fatal("bootstrap should still be waiting for chunks")
	}
	if got := a.Height(); got != 0 {
		t.Fatalf("height %d before any chunk arrived", got)
	}
	// SyncTimeout(1s) x (SyncRetries(2)+1) = 3s transfer deadline.
	a.clock.Advance(3500 * time.Millisecond)
	if a.bootstrapPending() {
		t.Fatal("bootstrap session survived its deadline")
	}
	if got := a.Height(); got != 8 {
		t.Fatalf("height after timeout fallback = %d, want 8", got)
	}
	if a.Tip().Hash != b.Tip().Hash {
		t.Fatal("tips diverge after timeout fallback")
	}
	if v := counter(a.reg, "livenode.bootstrap.fallbacks"); v != 1 {
		t.Errorf("bootstrap.fallbacks = %d, want 1", v)
	}
	if v := counter(a.reg, "livenode.bootstrap.installed"); v != 0 {
		t.Errorf("bootstrap.installed = %d, want 0", v)
	}
}

// TestBootstrapHashMismatchNeverInstalls: a forged snapshot stream that
// fails content-hash verification must not reach the engine; the node
// falls back and syncs the real chain instead.
func TestBootstrapHashMismatchNeverInstalls(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	b := newSyncTestNode(t, fn, "b", 1, epoch, nil)
	b.mineBlocks(t, 3)

	// Silence the real peer so the forged stream is the only answer.
	fn.setDrop(func(from, to string, ft byte) bool { return ft == p2p.FrameGetSnapshot })
	a := newSyncTestNode(t, fn, "a", 0, epoch, func(cfg *Config) { cfg.BootstrapSnapshot = true })
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if !a.bootstrapPending() {
		t.Fatal("bootstrap session should be pending")
	}
	data := []byte("not the advertised content")
	var wrongHash [sha256.Size]byte
	wrongHash[0] = 0xbad >> 4
	a.handleFrame("b", p2p.FrameSnapshot, encodeSnapshotChunk(7, uint64(len(data)), wrongHash, 0, 1, data))
	if v := counter(a.reg, "livenode.bootstrap.installed"); v != 0 {
		t.Fatalf("forged snapshot installed")
	}
	if v := counter(a.reg, "livenode.bootstrap.fallbacks"); v != 1 {
		t.Errorf("bootstrap.fallbacks = %d, want 1", v)
	}
	if got := a.Height(); got != 3 || a.Tip().Hash != b.Tip().Hash {
		t.Fatalf("fallback sync failed: height %d", got)
	}
	a.mu.Lock()
	base := a.eng.Chain().BodyBase()
	a.mu.Unlock()
	if base != 0 {
		t.Fatal("forged stream left a bootstrapped chain shape behind")
	}
}

// TestBootstrapPersistsAcrossRestart: the installed snapshot and the
// suffix blocks are durably persisted, so a restart stands the node back
// up at the same height with no peer around.
func TestBootstrapPersistsAcrossRestart(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	b := newSyncTestNode(t, fn, "b", 1, epoch, func(cfg *Config) { cfg.SnapshotEvery = 4 })
	b.mineBlocks(t, 10)

	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	a := newSyncTestNode(t, fn, "a", 0, epoch, func(cfg *Config) {
		cfg.SnapshotEvery = 4
		cfg.BootstrapSnapshot = true
		cfg.Store = st
	})
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if a.Height() != 10 {
		t.Fatalf("height after bootstrap = %d", a.Height())
	}
	tip := a.Tip().Hash
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, h, ok := st2.RecoveredSnapshot(); !ok || h != 8 {
		t.Fatalf("snapshot not recovered: ok=%v h=%d", ok, h)
	}
	// A real restart happens after the wall clock has moved on; start the
	// reborn node at the miner's current time so replayed timestamps are
	// in its past.
	a2 := newSyncTestNode(t, fn, "a2", 0, epoch, func(cfg *Config) {
		cfg.SnapshotEvery = 4
		cfg.Store = st2
		cfg.Clock = newFakeClock(b.clock.Now())
	})
	if err := a2.StoreErr(); err != nil {
		t.Fatalf("replay error: %v", err)
	}
	if a2.Height() != 10 || a2.Tip().Hash != tip {
		t.Fatalf("restart lost the bootstrapped chain: height %d", a2.Height())
	}
	a2.mu.Lock()
	base := a2.eng.Chain().BodyBase()
	a2.mu.Unlock()
	if base == 0 {
		t.Fatal("restart replayed from genesis instead of the snapshot")
	}
}

// TestPrunedNodeRestartFromSnapshotAndWAL: a pruning node persists its
// horizon snapshot and compacts the WAL as it mines; a restart rebuilds
// the same tip from snapshot + remaining segments and keeps mining.
func TestPrunedNodeRestartFromSnapshotAndWAL(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Sync: store.SyncAlways, SegmentBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := newSyncTestNode(t, fn, "p", 0, epoch, func(cfg *Config) {
		cfg.Store = st
		cfg.PruneDepth = 4
	})
	p.mineBlocks(t, 24)

	if v := counter(p.reg, "livenode.prune.runs"); v == 0 {
		t.Fatal("pruning never ran")
	}
	if v := counter(p.reg, "livenode.prune.snapshots_persisted"); v == 0 {
		t.Fatal("no snapshot persisted")
	}
	p.mu.Lock()
	base := p.eng.Chain().BodyBase()
	p.mu.Unlock()
	if base == 0 {
		t.Fatal("bodies never pruned")
	}
	// Compaction kept the WAL at O(prune window): an unpruned node would
	// hold 6 full segments after 24 appends at 4 blocks each.
	if segs := st.WALSegments(); segs >= 6 {
		t.Fatalf("%d WAL segments after compaction", segs)
	}
	tip := p.Tip().Hash
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{Sync: store.SyncAlways, SegmentBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, ok := st2.RecoveredSnapshot(); !ok {
		t.Fatal("no snapshot recovered on restart")
	}
	p2node := newSyncTestNode(t, fn, "p2", 0, epoch, func(cfg *Config) {
		cfg.Store = st2
		cfg.PruneDepth = 4
	})
	if err := p2node.StoreErr(); err != nil {
		t.Fatalf("replay error: %v", err)
	}
	if p2node.Height() != 24 || p2node.Tip().Hash != tip {
		t.Fatalf("restart lost the pruned chain: height %d", p2node.Height())
	}
	// Still a functioning miner after the snapshot-anchored restart.
	p2node.mineBlocks(t, 4)
	if p2node.Height() != 28 {
		t.Fatalf("pruned node stopped mining after restart: height %d", p2node.Height())
	}
	if err := p2node.StoreErr(); err != nil {
		t.Fatalf("store error after restart mining: %v", err)
	}
}

// TestPrunedSteadyStateBounded enforces the O(prune window) resource
// bound: body window, WAL segment count and snapshot files all stay flat
// while the chain grows to 200 blocks.
func TestPrunedSteadyStateBounded(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Sync: store.SyncAlways, SegmentBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	p := newSyncTestNode(t, fn, "p", 0, epoch, func(cfg *Config) {
		cfg.Store = st
		cfg.PruneDepth = 8
		cfg.SnapshotEvery = 4
	})
	var maxBodies, maxSegs int
	for i := 0; i < 20; i++ {
		p.mineBlocks(t, 10)
		p.mu.Lock()
		bodies := p.eng.Chain().BodyCount()
		p.mu.Unlock()
		maxBodies = max(maxBodies, bodies)
		maxSegs = max(maxSegs, st.WALSegments())
	}
	if p.Height() != 200 {
		t.Fatalf("height %d, want 200", p.Height())
	}
	// Horizon trails the tip by at most PruneDepth + checkpoint lag +
	// snapshot lag; anything near chain length means pruning broke.
	if maxBodies > 16 {
		t.Fatalf("body window peaked at %d blocks, want O(PruneDepth)", maxBodies)
	}
	if maxSegs > 5 {
		t.Fatalf("WAL peaked at %d segments, want O(PruneDepth/SegmentBlocks)", maxSegs)
	}
	if gauge := p.reg.Snapshot().Gauge("livenode.prune.horizon"); gauge < 180 {
		t.Fatalf("prune horizon gauge %d lagging at height 200", gauge)
	}
}

// TestColdJoinSnapshotGate is the issue's cold-join acceptance gate: on a
// long chain, a snapshot-bootstrap join must move at least 10x fewer wire
// bytes AND verify at least 10x fewer blocks than a suffix sync from
// genesis, and still land on the identical tip.
func TestColdJoinSnapshotGate(t *testing.T) {
	height := 50_000
	if testing.Short() || raceEnabled {
		// The full-scale gate runs in its own CI step without -race; keep
		// the invariant exercised at reduced scale everywhere else.
		height = 2_000
	}
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	b := newSyncTestNode(t, fn, "b", 1, epoch, func(cfg *Config) {
		cfg.SnapshotEvery = 64
		cfg.SyncBatchSize = 256
	})
	b.mineBlocks(t, height)

	// Control: plain suffix sync from genesis.
	c := newSyncTestNode(t, fn, "c", 2, epoch, func(cfg *Config) { cfg.SyncBatchSize = 256 })
	fn.startCounting()
	if err := c.Connect("b"); err != nil {
		t.Fatal(err)
	}
	syncBytes, _ := fn.stopCounting()
	if c.Height() != uint64(height) || c.Tip().Hash != b.Tip().Hash {
		t.Fatalf("suffix-sync join failed: height %d", c.Height())
	}
	syncBlocks := counter(c.reg, "livenode.sync.blocks_fetched")

	// Snapshot bootstrap.
	a := newSyncTestNode(t, fn, "a", 0, epoch, func(cfg *Config) {
		cfg.SyncBatchSize = 256
		cfg.BootstrapSnapshot = true
	})
	fn.startCounting()
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	bootBytes, _ := fn.stopCounting()
	if a.Height() != uint64(height) || a.Tip().Hash != b.Tip().Hash {
		t.Fatalf("bootstrap join failed: height %d", a.Height())
	}
	if v := counter(a.reg, "livenode.bootstrap.installed"); v != 1 {
		t.Fatalf("bootstrap.installed = %d, want 1", v)
	}
	bootBlocks := counter(a.reg, "livenode.sync.blocks_fetched")

	t.Logf("cold join at height %d: suffix sync %d bytes / %d blocks, bootstrap %d bytes / %d blocks",
		height, syncBytes, syncBlocks, bootBytes, bootBlocks)
	if syncBytes < 10*bootBytes {
		t.Fatalf("wire bytes: bootstrap %d vs suffix %d — less than 10x saving", bootBytes, syncBytes)
	}
	if syncBlocks < 10*max(bootBlocks, 1) {
		t.Fatalf("verified blocks: bootstrap %d vs suffix %d — less than 10x saving", bootBlocks, syncBlocks)
	}
	if v := counter(b.reg, "livenode.wire.snapshot_bytes"); v == 0 {
		t.Fatal("snapshot wire bytes not accounted on the serving side")
	}
}

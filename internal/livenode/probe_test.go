package livenode

import (
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"repro/internal/p2p"
	"repro/internal/pos"
	"repro/internal/repair"
	"repro/internal/telemetry"
)

// --- sampled-probe test fabric -------------------------------------------------

// probeCluster is an n-node roster on one fake fabric sharing one manual
// clock, with the repair plane on and mining effectively parked (T0 one
// hour), so advancing the clock exercises exactly the liveness machinery.
type probeCluster struct {
	fn    *fakeNet
	clock *fakeClock
	nodes []*Node
	regs  []*telemetry.Registry
	live  []bool
}

const (
	probeTestEvery   = time.Second
	probeTestSuspect = 4 * time.Second
	probeTestHyst    = 3 * time.Second
)

func newProbeCluster(t testing.TB, n int, genesisSeed int64, fanout int) *probeCluster {
	t.Helper()
	idents, accounts := testRoster(n)
	epoch := time.Unix(1700000000, 0)
	pc := &probeCluster{
		fn:    newFakeNet(),
		clock: newFakeClock(epoch),
		nodes: make([]*Node, n),
		regs:  make([]*telemetry.Registry, n),
		live:  make([]bool, n),
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%02d", i)
		pc.regs[i] = telemetry.NewRegistry()
		node, err := New(Config{
			Identity:    idents[i],
			Accounts:    accounts,
			PoS:         pos.Params{M: pos.DefaultM, T0: time.Hour},
			GenesisSeed: genesisSeed,
			Epoch:       epoch,
			NewTransport: func(h p2p.Handler) (p2p.Transport, error) {
				return pc.fn.endpoint(name, h), nil
			},
			Clock:              pc.clock,
			Telemetry:          pc.regs[i],
			RepairWorkers:      1,
			RepairProbeEvery:   probeTestEvery,
			RepairSuspectAfter: probeTestSuspect,
			RepairHysteresis:   probeTestHyst,
			ProbeFanout:        fanout,
		})
		if err != nil {
			t.Fatal(err)
		}
		pc.nodes[i] = node
		pc.live[i] = true
	}
	t.Cleanup(func() {
		for i, node := range pc.nodes {
			if pc.live[i] {
				node.Close()
			}
		}
	})
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := pc.nodes[i].Connect(fmt.Sprintf("p%02d", j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return pc
}

// kill crashes node i; its timers stop and its handlers go dark.
func (pc *probeCluster) kill(t testing.TB, i int) {
	t.Helper()
	if err := pc.nodes[i].Kill(); err != nil {
		t.Fatal(err)
	}
	pc.live[i] = false
}

// status is observer's current verdict about subject.
func (pc *probeCluster) status(observer, subject int) repair.Status {
	n := pc.nodes[observer]
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.repair.det.Status(subject, n.now())
}

// assertNoLiveDead fails if any live observer currently counts any live
// subject dead.
func (pc *probeCluster) assertNoLiveDead(t testing.TB, when string) {
	t.Helper()
	for o := range pc.nodes {
		if !pc.live[o] {
			continue
		}
		for s := range pc.nodes {
			if s == o || !pc.live[s] {
				continue
			}
			if pc.status(o, s) == repair.Dead {
				t.Fatalf("%s: node %d falsely counts live node %d dead", when, o, s)
			}
		}
	}
}

// dropSampled builds a deterministic loss filter: fraction frac of probe
// and ack frames are dropped, decided per (from, to, per-pair counter)
// via FNV so the outcome does not depend on map-iteration delivery order.
func dropSampled(seed int64, frac float64) func(from, to string, ft byte) bool {
	var mu sync.Mutex
	counts := make(map[string]uint64)
	return func(from, to string, ft byte) bool {
		if ft != p2p.FrameRepairProbe && ft != p2p.FrameRepairProbeAck {
			return false
		}
		mu.Lock()
		key := from + "|" + to
		c := counts[key]
		counts[key] = c + 1
		mu.Unlock()
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s|%d|%d", seed, key, ft, c)
		return float64(h.Sum64()%1000)/1000 < frac
	}
}

// TestProbeDeadDetectionBound is the sampled detector's convergence
// property: across fanouts and seeded topologies, a killed node is
// counted dead by EVERY live observer within SuspectAfter + Hysteresis +
// k·probeEvery (k = 2 covers tick granularity plus digest-age rounding),
// and no live node is collateral damage.
func TestProbeDeadDetectionBound(t *testing.T) {
	const n, victim = 12, 3
	for _, fanout := range []int{2, 4, 6} {
		for _, seed := range []int64{1, 7, 42} {
			t.Run(fmt.Sprintf("fanout=%d/seed=%d", fanout, seed), func(t *testing.T) {
				pc := newProbeCluster(t, n, seed, fanout)
				pc.clock.Advance(5 * time.Second) // bindings + evidence warm up
				pc.assertNoLiveDead(t, "before kill")

				pc.kill(t, victim)
				bound := probeTestSuspect + probeTestHyst + 2*probeTestEvery
				pc.clock.Advance(bound + 500*time.Millisecond)

				for o := 0; o < n; o++ {
					if o == victim {
						continue
					}
					if got := pc.status(o, victim); got != repair.Dead {
						t.Errorf("observer %d sees victim as %v after %v, want dead", o, got, bound)
					}
				}
				pc.assertNoLiveDead(t, "after kill")
			})
		}
	}
}

// TestProbeAliveUnderLossNeverDead is the false-positive property: with
// 20% of probe and ack frames lost, no live node is ever counted dead by
// any other across a long horizon — direct samples plus digest epidemics
// keep every pair's evidence inside the SuspectAfter+Hysteresis window.
func TestProbeAliveUnderLossNeverDead(t *testing.T) {
	const n = 12
	for _, fanout := range []int{2, 4, 6} {
		t.Run(fmt.Sprintf("fanout=%d", fanout), func(t *testing.T) {
			pc := newProbeCluster(t, n, 42, fanout)
			pc.fn.setDrop(dropSampled(int64(fanout)*1000+7, 0.20))
			for tick := 0; tick < 30; tick++ {
				pc.clock.Advance(probeTestEvery)
				pc.assertNoLiveDead(t, fmt.Sprintf("tick %d", tick))
			}
			// The probe plane actually ran, with digests merging.
			var sent, merged uint64
			for _, reg := range pc.regs {
				sent += counter(reg, "livenode.probe.sent")
				merged += counter(reg, "livenode.probe.digest_merged")
			}
			if sent == 0 {
				t.Fatal("no probes sent")
			}
			if merged == 0 {
				t.Fatal("no digest entries merged — third-party evidence is not spreading")
			}
		})
	}
}

// TestProbeLegacyBroadcastStillWorks pins the -probe-fanout escape hatch:
// ProbeFanout < 0 restores the per-tick announce broadcast, no probe
// frames flow, and dead detection still happens.
func TestProbeLegacyBroadcastStillWorks(t *testing.T) {
	const n, victim = 6, 2
	pc := newProbeCluster(t, n, 42, -1)
	pc.clock.Advance(5 * time.Second)
	var sent uint64
	for _, reg := range pc.regs {
		sent += counter(reg, "livenode.probe.sent")
	}
	if sent != 0 {
		t.Fatalf("legacy mode sent %d probes", sent)
	}
	pc.kill(t, victim)
	pc.clock.Advance(probeTestSuspect + probeTestHyst + 2*probeTestEvery)
	for o := 0; o < n; o++ {
		if o == victim {
			continue
		}
		if got := pc.status(o, victim); got != repair.Dead {
			t.Errorf("observer %d sees victim as %v, want dead", o, got)
		}
	}
	pc.assertNoLiveDead(t, "after kill")
}

// TestProbeAckDigestBounded pins the §15 byte story: one ack never
// carries more than probeDigestMax entries, and entries silent past the
// dead window are omitted.
func TestProbeAckDigestBounded(t *testing.T) {
	const n = 40 // roster wider than the digest bound
	pc := newProbeCluster(t, n, 42, 4)
	pc.clock.Advance(3 * time.Second)
	node := pc.nodes[0]
	node.mu.Lock()
	ack := node.encodeProbeAckLocked(node.now())
	node.mu.Unlock()
	if len(ack) < 6 {
		t.Fatalf("ack too short: %d bytes", len(ack))
	}
	count := int(ack[4])<<8 | int(ack[5])
	if count > probeDigestMax {
		t.Fatalf("digest carries %d entries, bound is %d", count, probeDigestMax)
	}
	if len(ack) != 6+4*count {
		t.Fatalf("ack length %d does not match count %d", len(ack), count)
	}
	if count == 0 {
		t.Fatal("warm cluster produced an empty digest")
	}
}

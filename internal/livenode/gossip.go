package livenode

import (
	"math/rand"
	"sort"

	"repro/internal/block"
	"repro/internal/meta"
	"repro/internal/p2p"
)

// Inv-style gossip block relay (DESIGN.md §13). Instead of pushing every
// won block in full to every peer — O(n) full-block sends per block, the
// full-mesh scaling wall — a node that adopts a block it has not seen
// before announces only (height, header hash) to a bounded random sample
// of peers. A peer that lacks the hash fetches the body from the
// announcer; on adopting it, it relays the announce onward (excluding
// whoever sent it the block), so dissemination is epidemic: O(fanout) 40-
// byte announces per node and O(fanout · log n) hops to saturation,
// while each node uploads the full body only a bounded number of times.
//
//	miner                    sampled peer              its sampled peers
//	  FrameBlockAnnounce ───────▶
//	  ◀─────── FrameGetBlock(hash)   (only if the hash is unknown)
//	  FrameBlock(body) ─────────▶
//	                              FrameBlockAnnounce ───────▶  …
//
// Duplicate announces are suppressed against the chain's own hash index
// (adopted blocks), the pending-fetch table (a fetch already in flight)
// and a small LRU of hashes seen but not adopted (stale forks, timed-out
// fetches). A fetch the announcer never answers falls back to the §10
// sync locator path after cfg.SyncTimeout, preserving the ordering
// announce → fetch → locator → whole-chain exchange.
const (
	// defaultGossipFanout is how many peers an announce is relayed to when
	// Config.GossipFanout is 0. Six gives >99.9% epidemic saturation on
	// overlays far past 1000 nodes.
	defaultGossipFanout = 6
	// gossipSeenCap bounds the seen-hash LRU. It only has to cover hashes
	// the chain index cannot answer for (stale forks, pending gaps), so a
	// few hundred entries outlast any realistic announce storm.
	gossipSeenCap = 512
	// maxPendingFetch bounds concurrently outstanding FrameGetBlock
	// requests; past it an announce degrades to the locator path, which
	// batches instead of fetching block-by-block.
	maxPendingFetch = 64
)

// gossipState is the node's announce/fetch bookkeeping; nil when gossip
// is disabled (Config.GossipFanout < 0) and the legacy full-mesh push is
// in effect. The same sampler and seen/pending discipline also runs the
// metadata relay (DESIGN.md §15) when Config.MetaFanout selects it. All
// fields are guarded by Node.mu.
type gossipState struct {
	fanout  int
	rng     *rand.Rand           // node-local, deterministically seeded peer sampling
	seen    *seenLRU[block.Hash] // announced hashes not (or not yet) on our chain
	pending map[block.Hash]*pendingFetch
	gen     uint64 // fetch generation, guards stale timers

	// Metadata relay (DESIGN.md §15); metaFanout < 0 keeps the legacy
	// full-mesh FrameMeta push even while block gossip runs.
	metaFanout  int
	metaSeen    *seenLRU[meta.DataID] // announced IDs not (or not yet) pooled
	metaPending map[meta.DataID]*pendingMetaFetch
	metaGen     uint64
}

// pendingFetch tracks one outstanding FrameGetBlock.
type pendingFetch struct {
	from   string
	height uint64
	gen    uint64
	timer  Timer
}

func newGossipState(fanout, metaFanout int, seed int64) *gossipState {
	return &gossipState{
		fanout:      fanout,
		rng:         rand.New(rand.NewSource(seed)),
		seen:        newSeenLRU[block.Hash](gossipSeenCap),
		pending:     make(map[block.Hash]*pendingFetch),
		metaFanout:  metaFanout,
		metaSeen:    newSeenLRU[meta.DataID](metaSeenCap),
		metaPending: make(map[meta.DataID]*pendingMetaFetch),
	}
}

// seenLRU is a fixed-capacity set of 32-byte identifiers (block hashes,
// data IDs) with FIFO eviction: a map for O(1) membership plus a ring of
// insertion order. Re-adding a present key is a no-op (announce storms
// must not churn the ring).
type seenLRU[K comparable] struct {
	m    map[K]struct{}
	ring []K
	next int
	full bool
}

func newSeenLRU[K comparable](capacity int) *seenLRU[K] {
	return &seenLRU[K]{
		m:    make(map[K]struct{}, capacity),
		ring: make([]K, capacity),
	}
}

func (l *seenLRU[K]) Has(k K) bool {
	_, ok := l.m[k]
	return ok
}

func (l *seenLRU[K]) Add(k K) {
	if l.Has(k) {
		return
	}
	if l.full {
		delete(l.m, l.ring[l.next])
	}
	l.ring[l.next] = k
	l.m[k] = struct{}{}
	l.next++
	if l.next == len(l.ring) {
		l.next, l.full = 0, true
	}
}

// --- wire codecs --------------------------------------------------------------

// encodeAnnounce serializes a FrameBlockAnnounce payload: 8-byte height,
// 32-byte header hash.
func encodeAnnounce(height uint64, h block.Hash) []byte {
	out := make([]byte, 0, 8+len(h))
	out = putU64(out, height)
	return append(out, h[:]...)
}

func decodeAnnounce(payload []byte) (height uint64, h block.Hash, err error) {
	r := &syncReader{b: payload}
	height = r.uint64()
	h = r.hash()
	return height, h, r.done()
}

// decodeGetBlock parses a FrameGetBlock payload: a bare 32-byte hash.
func decodeGetBlock(payload []byte) (h block.Hash, err error) {
	r := &syncReader{b: payload}
	h = r.hash()
	return h, r.done()
}

// --- relay --------------------------------------------------------------------

// relayBlock announces a freshly adopted block to a bounded random sample
// of peers (never the one it came from). Callers must NOT hold n.mu; the
// sends are synchronous.
func (n *Node) relayBlock(blk *block.Block, exclude string) {
	targets := n.sampleGossipPeers(exclude)
	if len(targets) == 0 {
		return
	}
	ann := encodeAnnounce(blk.Index, blk.Hash)
	for _, p := range targets {
		n.send(p, p2p.FrameBlockAnnounce, ann)
	}
	n.tel.gossipRelays.Inc()
}

// sampleGossipPeers draws up to fanout distinct peers from the sorted
// peer list, excluding `exclude`. Sorting before sampling makes the draw
// a pure function of the peer set and the node's seeded RNG, which is
// what keeps deterministic chaos runs bit-identical.
func (n *Node) sampleGossipPeers(exclude string) []string {
	peers := n.net.Peers()
	cand := peers[:0]
	for _, p := range peers {
		if p != exclude {
			cand = append(cand, p)
		}
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	g := n.gossip
	if g == nil || n.closed {
		return nil
	}
	return samplePeersLocked(g.rng, cand, g.fanout)
}

// samplePeersLocked draws up to k distinct entries from cand via a
// partial Fisher-Yates shuffle, sorting first so the draw is a pure
// function of the candidate set and the caller's seeded RNG (n.mu held —
// the RNGs live behind it). Both gossip planes and the sampled liveness
// prober share this.
func samplePeersLocked(rng *rand.Rand, cand []string, k int) []string {
	sort.Strings(cand)
	if k > len(cand) {
		k = len(cand)
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(cand)-i)
		cand[i], cand[j] = cand[j], cand[i]
	}
	return cand[:k]
}

// --- announce / fetch handlers ------------------------------------------------

// handleBlockAnnounce applies the dedup rules and, for a genuinely new
// hash, fetches the body from the announcer with a timeout that falls
// back to the §10 locator path.
func (n *Node) handleBlockAnnounce(from string, payload []byte) {
	height, hash, err := decodeAnnounce(payload)
	if err != nil {
		return
	}
	n.mu.Lock()
	g := n.gossip
	if g == nil || n.closed {
		n.mu.Unlock()
		return
	}
	switch {
	case n.eng.Chain().ByHash(hash) != nil:
		// Already adopted: a re-announce carries no information and must
		// trigger neither a fetch nor a sync round (the announce-path twin
		// of the chain.ErrDuplicate guard on pushed blocks).
		n.tel.gossipDupSuppressed.Inc()
		n.mu.Unlock()
		return
	case g.seen.Has(hash):
		n.tel.gossipDupSuppressed.Inc()
		n.mu.Unlock()
		return
	case g.pending[hash] != nil:
		n.tel.gossipDupSuppressed.Inc()
		n.mu.Unlock()
		return
	case height <= n.eng.Height():
		// A block at or below our tip cannot extend the longest chain; a
		// genuinely longer fork will produce higher announces (or heal via
		// locators). Remember the hash so repeats stay cheap.
		g.seen.Add(hash)
		n.tel.gossipStaleSuppressed.Inc()
		n.mu.Unlock()
		return
	case len(g.pending) >= maxPendingFetch:
		// Fetch table saturated — we are far behind, and block-by-block
		// fetching is the wrong tool. Degrade to batched sync.
		n.mu.Unlock()
		n.sendSyncLocator(from)
		return
	}
	g.gen++
	pf := &pendingFetch{from: from, height: height, gen: g.gen}
	gen := g.gen
	pf.timer = n.clock.AfterFunc(n.cfg.SyncTimeout, func() { n.onGossipFetchTimeout(hash, gen) })
	g.pending[hash] = pf
	n.tel.gossipFetchesSent.Inc()
	n.mu.Unlock()
	n.send(from, p2p.FrameGetBlock, hash[:])
}

// handleGetBlock serves a fetched body; an unknown hash is ignored (the
// requester's timeout falls back to the locator path).
func (n *Node) handleGetBlock(from string, payload []byte) {
	hash, err := decodeGetBlock(payload)
	if err != nil {
		return
	}
	n.mu.Lock()
	blk := n.eng.Chain().ByHash(hash)
	n.mu.Unlock()
	if blk == nil {
		return
	}
	n.tel.gossipFetchesServed.Inc()
	n.send(from, p2p.FrameBlock, blk.Encode())
}

// onGossipFetchTimeout fires when an announcer never answered a
// FrameGetBlock: drop the pending entry and probe the announcer with a
// block locator instead (which in turn can fall back to the whole-chain
// exchange), so one silent peer cannot strand a block.
func (n *Node) onGossipFetchTimeout(hash block.Hash, gen uint64) {
	n.mu.Lock()
	g := n.gossip
	if g == nil || n.closed {
		n.mu.Unlock()
		return
	}
	pf := g.pending[hash]
	if pf == nil || pf.gen != gen {
		n.mu.Unlock()
		return // answered, or superseded
	}
	delete(g.pending, hash)
	// Remember the hash: a re-announce must not restart a fetch the
	// locator path is already covering.
	g.seen.Add(hash)
	from := pf.from
	n.tel.gossipFetchTimeouts.Inc()
	n.mu.Unlock()
	n.sendSyncLocator(from)
}

// noteGossipBlockLocked records the arrival of a full block against the
// gossip state (n.mu held): a pending fetch for its hash is complete, and
// a body that failed adoption joins the seen set so its re-announce does
// not refetch. Returns whether the adopted block should be relayed.
func (n *Node) noteGossipBlockLocked(blk *block.Block, adopted bool) (relay bool) {
	g := n.gossip
	if g == nil {
		return false
	}
	if pf := g.pending[blk.Hash]; pf != nil {
		pf.timer.Stop()
		delete(g.pending, blk.Hash)
	}
	if !adopted {
		g.seen.Add(blk.Hash)
		return false
	}
	return true
}

// clearGossipLocked stops all pending fetch timers and resets the fetch
// tables of both gossip planes (n.mu held). Close/Kill and test
// teardowns call it.
func (n *Node) clearGossipLocked() {
	g := n.gossip
	if g == nil {
		return
	}
	for h, pf := range g.pending {
		pf.timer.Stop()
		delete(g.pending, h)
	}
	g.gen++
	for id, pm := range g.metaPending {
		pm.timer.Stop()
		delete(g.metaPending, id)
	}
	g.metaGen++
}

//go:build !race

package livenode

const raceEnabled = false

package livenode

import (
	"testing"
	"time"

	"repro/internal/identity"
	"repro/internal/meta"
	"repro/internal/p2p"
)

// testItem builds a signed metadata item from one of the roster identities.
func testItem(ident *identity.Identity, content string, now time.Duration) *meta.Item {
	it := &meta.Item{
		ID:           meta.HashData([]byte(content)),
		Type:         "Road/Congestion",
		Produced:     now,
		LocationName: "lab",
		DataSize:     len(content),
	}
	it.Sign(ident)
	return it
}

// poolHas reports whether the node's pool holds id.
func poolHas(n *Node, id meta.DataID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng.PoolHas(id)
}

// TestMetaGossipAnnounceFetchRelay walks the §15 happy path end to end on
// the fake fabric: Publish announces IDs instead of pushing bodies, the
// announced peer fetches exactly the missing item, admits it, and
// re-relays the announce onward — epidemically reaching the third node.
func TestMetaGossipAnnounceFetchRelay(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	mutate := func(cfg *Config) { cfg.GossipFanout = 2 }
	a := newSyncTestNode(t, fn, "a", 0, epoch, mutate)
	b := newSyncTestNode(t, fn, "b", 1, epoch, mutate)
	c := newSyncTestNode(t, fn, "c", 2, epoch, mutate)
	link(t, a, b, c)

	it, err := a.Publish([]byte("meta travels as an inv"), "Road/Congestion", "lab")
	if err != nil {
		t.Fatal(err)
	}
	// fakeNet delivery is synchronous: announce -> fetch -> item -> relays
	// all completed inside Publish.
	for _, n := range []*syncTestNode{b, c} {
		if !poolHas(n.Node, it.ID) {
			t.Fatalf("node %s pool lacks the published item", n.Addr())
		}
	}
	if v := counter(a.reg, "livenode.metagossip.relays"); v == 0 {
		t.Error("publisher recorded no metagossip relay")
	}
	if v := counter(a.reg, "livenode.metagossip.fetches_served"); v == 0 {
		t.Error("publisher served no meta fetches")
	}
	if v := counter(b.reg, "livenode.metagossip.fetches_sent") + counter(c.reg, "livenode.metagossip.fetches_sent"); v == 0 {
		t.Error("no peer fetched the announced item")
	}
	// Re-announcing a pooled item must suppress, not refetch.
	before := counter(b.reg, "livenode.metagossip.fetches_sent")
	b.handleFrame("a", p2p.FrameMetaAnnounce, encodeIDList([]meta.DataID{it.ID}))
	if got := counter(b.reg, "livenode.metagossip.fetches_sent"); got != before {
		t.Errorf("duplicate announce triggered a fetch (%d -> %d)", before, got)
	}
	if v := counter(b.reg, "livenode.metagossip.dup_suppressed"); v == 0 {
		t.Error("duplicate announce not counted as suppressed")
	}
}

// TestMetaGossipFetchTimeoutDropsPending verifies the deliberate §15
// divergence from the block path: an unanswered FrameGetMeta entry is
// simply forgotten after SyncTimeout — no locator fallback — and a later
// re-announce may retry it.
func TestMetaGossipFetchTimeoutDropsPending(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	a := newSyncTestNode(t, fn, "a", 0, epoch, func(cfg *Config) { cfg.GossipFanout = 2 })
	b := newSyncTestNode(t, fn, "b", 1, epoch, func(cfg *Config) { cfg.GossipFanout = 2 })
	link(t, a, b)

	// Announce an ID nobody will serve (drop the fetch in flight).
	fn.setDrop(func(from, to string, ft byte) bool { return ft == p2p.FrameGetMeta })
	id := meta.HashData([]byte("never served"))
	a.handleFrame("b", p2p.FrameMetaAnnounce, encodeIDList([]meta.DataID{id}))
	a.mu.Lock()
	pending := len(a.gossip.metaPending)
	a.mu.Unlock()
	if pending != 1 {
		t.Fatalf("pending fetches = %d, want 1", pending)
	}
	syncs := counter(a.reg, "livenode.sync.rounds")

	a.clock.Advance(2 * time.Second) // SyncTimeout is 1s on the fabric
	a.mu.Lock()
	pending = len(a.gossip.metaPending)
	a.mu.Unlock()
	if pending != 0 {
		t.Fatalf("pending fetch survived its timeout")
	}
	if v := counter(a.reg, "livenode.metagossip.fetch_timeouts"); v != 1 {
		t.Fatalf("fetch_timeouts = %d, want 1", v)
	}
	if got := counter(a.reg, "livenode.sync.rounds"); got != syncs {
		t.Errorf("meta fetch timeout started a sync round (%d -> %d): §15 has no locator fallback", syncs, got)
	}

	// A later announce retries the same ID, and this time it is served.
	fn.setDrop(nil)
	it := testItem(b.idents()[1], "never served", b.now())
	b.mu.Lock()
	b.eng.AddLocal(it)
	b.mu.Unlock()
	a.handleFrame("b", p2p.FrameMetaAnnounce, encodeIDList([]meta.DataID{it.ID}))
	if !poolHas(a.Node, it.ID) {
		t.Fatal("re-announce after timeout did not refetch the item")
	}
}

// idents exposes the test roster identities matching the node's accounts.
func (n *syncTestNode) idents() []*identity.Identity {
	idents, _ := testRoster(len(n.cfg.Accounts))
	return idents
}

// TestMetaGossipForgedItemNotPooledNotRelayed feeds a FrameMeta whose
// signature does not verify: it must not enter the pool, must not be
// re-relayed, and its ID joins the seen set so a re-announce of the same
// forgery is not refetched.
func TestMetaGossipForgedItemNotPooledNotRelayed(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	a := newSyncTestNode(t, fn, "a", 0, epoch, func(cfg *Config) { cfg.GossipFanout = 2 })
	b := newSyncTestNode(t, fn, "b", 1, epoch, func(cfg *Config) { cfg.GossipFanout = 2 })
	link(t, a, b)

	it := testItem(a.idents()[1], "forged provenance", a.now())
	it.Producer = a.cfg.Accounts[2] // signature no longer matches the producer
	a.handleFrame("b", p2p.FrameMeta, it.Encode())
	if poolHas(a.Node, it.ID) {
		t.Fatal("forged item entered the pool")
	}
	if v := counter(a.reg, "livenode.metagossip.relays"); v != 0 {
		t.Error("forged item was relayed onward")
	}
	// Its announce is now suppressed without a fetch.
	before := counter(a.reg, "livenode.metagossip.fetches_sent")
	a.handleFrame("b", p2p.FrameMetaAnnounce, encodeIDList([]meta.DataID{it.ID}))
	if got := counter(a.reg, "livenode.metagossip.fetches_sent"); got != before {
		t.Error("announce of a known-bad ID triggered a fetch")
	}
}

// TestMetaGossipLegacyPushStillWorks pins the -gossip/-meta-gossip
// escape hatches: MetaFanout < 0 (or GossipFanout < 0) keeps the
// full-mesh FrameMeta push, and peers still pool pushed items.
func TestMetaGossipLegacyPushStillWorks(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(cfg *Config)
	}{
		{"meta_fanout_negative", func(cfg *Config) { cfg.GossipFanout = 2; cfg.MetaFanout = -1 }},
		{"gossip_disabled", func(cfg *Config) { cfg.GossipFanout = -1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fn := newFakeNet()
			epoch := time.Unix(1700000000, 0)
			a := newSyncTestNode(t, fn, "a", 0, epoch, tc.mutate)
			b := newSyncTestNode(t, fn, "b", 1, epoch, tc.mutate)
			link(t, a, b)

			it, err := a.Publish([]byte("legacy push"), "Road/Congestion", "lab")
			if err != nil {
				t.Fatal(err)
			}
			if !poolHas(b.Node, it.ID) {
				t.Fatal("legacy push did not reach the peer's pool")
			}
			if v := counter(a.reg, "livenode.metagossip.relays"); v != 0 {
				t.Errorf("legacy mode recorded %d meta relays", v)
			}
		})
	}
}

// TestMetaIDListCodecBounds pins the wire-codec bounds: zero-count,
// oversized-count and truncated payloads are all rejected.
func TestMetaIDListCodecBounds(t *testing.T) {
	ids := []meta.DataID{meta.HashData([]byte("x")), meta.HashData([]byte("y"))}
	enc := encodeIDList(ids)
	got, err := decodeIDList(enc)
	if err != nil || len(got) != 2 || got[0] != ids[0] || got[1] != ids[1] {
		t.Fatalf("round trip failed: %v %v", got, err)
	}
	if _, err := decodeIDList(encodeIDList(nil)); err == nil {
		t.Error("zero-count payload accepted")
	}
	over := make([]meta.DataID, maxMetaBatch+1)
	if _, err := decodeIDList(encodeIDList(over)); err == nil {
		t.Error("oversized count accepted")
	}
	if _, err := decodeIDList(enc[:len(enc)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := decodeIDList(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
}

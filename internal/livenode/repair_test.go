package livenode

import (
	"testing"
	"time"

	"repro/internal/meta"
	"repro/internal/pos"
	"repro/internal/telemetry"
)

// assignment returns the latest on-chain storing set for id as seen by n.
func assignment(n *Node, id meta.DataID) []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	it := n.eng.LiveItem(id)
	if it == nil {
		return nil
	}
	return append([]int(nil), it.StoringNodes...)
}

// TestLiveRepairReReplicates kills a storing node on a real-TCP cluster
// and waits for the self-healing pipeline to run end to end: the churn
// detectors mark the node dead, a miner packs a repair re-announcement
// excluding it, and the newly assigned node fetches the content.
func TestLiveRepairReReplicates(t *testing.T) {
	const n = 4
	idents, accounts := testRoster(n)
	epoch := time.Now()
	regs := make([]*telemetry.Registry, n)
	nodes := make([]*Node, n)
	for i := range nodes {
		regs[i] = telemetry.NewRegistry()
		node, err := New(Config{
			Identity:    idents[i],
			Accounts:    accounts,
			PoS:         pos.Params{M: pos.DefaultM, T0: time.Second},
			GenesisSeed: 42,
			Epoch:       epoch,
			ListenAddr:  "127.0.0.1:0",
			// Small capacity: FDC turns positive after the first block, so
			// item placements narrow to the replica floor instead of the
			// degenerate everything-everywhere clique optimum.
			StorageCapacity:    48,
			Telemetry:          regs[i],
			RepairWorkers:      2,
			RepairProbeEvery:   200 * time.Millisecond,
			RepairSuspectAfter: 2 * time.Second,
			RepairHysteresis:   time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	closed := make([]bool, n)
	defer func() {
		for i, node := range nodes {
			if !closed[i] {
				node.Close()
			}
		}
	}()
	for i, a := range nodes {
		for j, b := range nodes {
			if i < j {
				if err := a.Connect(b.Addr()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Let a block land first so every node's storage shows some use and
	// the next placement is selective.
	waitFor(t, 30*time.Second, "first block everywhere", func() bool {
		for _, node := range nodes {
			if node.Height() < 1 {
				return false
			}
		}
		return true
	})

	it, err := nodes[0].Publish([]byte("replica under churn"), "Road/Congestion", "lab")
	if err != nil {
		t.Fatal(err)
	}
	// Wait for every assigned node to actually hold the bytes, not just
	// for the placement to land: killing the victim while it is still the
	// sole holder (the producer, before its replicas' initial fetches
	// complete) destroys the only copy, which no repair protocol can undo.
	var storing []int
	waitFor(t, 30*time.Second, "item placed below the full mesh", func() bool {
		storing = assignment(nodes[0], it.ID)
		if len(storing) == 0 || len(storing) >= n {
			return false
		}
		for _, sn := range storing {
			if !nodes[sn].HasData(it.ID) {
				return false
			}
		}
		return true
	})

	victim := storing[0]
	if err := nodes[victim].Kill(); err != nil {
		t.Fatal(err)
	}
	closed[victim] = true

	waitFor(t, 60*time.Second, "item re-replicated off the dead node", func() bool {
		var ref []int
		for i, node := range nodes {
			if i == victim {
				continue
			}
			ref = assignment(node, it.ID)
			break
		}
		if len(ref) < 2 {
			return false
		}
		for _, sn := range ref {
			if sn == victim {
				return false
			}
			if !nodes[sn].HasData(it.ID) {
				return false
			}
		}
		return true
	})

	// The repair plane moved real bytes, and strictly fewer than consensus.
	var repairBytes, consensusBytes uint64
	for i, reg := range regs {
		if i == victim {
			continue
		}
		snap := reg.Snapshot()
		repairBytes += snap.Counter("livenode.wire.repair_bytes")
		consensusBytes += snap.Counter("livenode.wire.consensus_bytes")
	}
	if repairBytes == 0 {
		t.Fatal("repair plane sent no bytes")
	}
	if repairBytes >= consensusBytes {
		t.Fatalf("repair bytes %d not below consensus bytes %d", repairBytes, consensusBytes)
	}
}

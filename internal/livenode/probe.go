package livenode

import (
	"encoding/binary"
	"time"

	"repro/internal/p2p"
)

// Sampled liveness probing (DESIGN.md §15). The repair plane's original
// heartbeat was a per-tick FrameRepairAnnounce broadcast: every node
// pushing its roster index to every peer every RepairProbeEvery — O(n²)
// frames across the deployment per tick, the repair-plane twin of the
// full-mesh floods §13/§15 removed from the consensus plane. SWIM showed
// the broadcast is unnecessary: direct evidence only has to reach a
// bounded sample per period, and third-party evidence can ride along as
// piggybacked digests.
//
// Each tick a node sends FrameRepairProbe (its 4-byte roster index) to a
// bounded deterministic sample of transport peers. The probed peer binds
// the prober's address, refreshes its liveness, and answers with
// FrameRepairProbeAck: its own index plus a bounded digest of (index,
// age) pairs drawn from a rotating cursor over its detector state. The
// prober merges entries that are newer than what it already knows, so
// liveness evidence spreads epidemically at O(n·fanout) frames per tick
// deployment-wide. Passive evidence (any frame from a bound address, the
// miner of every adopted block) and the membership sweep are unchanged;
// the detector itself — verdict thresholds, hysteresis, monotonic
// evidence — is untouched, only the evidence transport changes.
//
// Digest ages are relative (duration since the responder last saw the
// node), so the encoding needs no clock agreement beyond the shared
// epoch the deployment already assumes. Entries silent past
// SuspectAfter+Hysteresis are omitted: replaying them cannot change any
// verdict, and dropping them keeps acks small exactly when many nodes
// are dead. A stale entry that does arrive is a no-op — merges apply
// only evidence strictly newer than the local timestamp, so digests can
// circulate forever without reviving a dead node.
const (
	// defaultProbeFanout is how many peers are probed per repair tick when
	// Config.ProbeFanout is 0. Four keeps expected detection latency a
	// small constant number of periods on rosters past 1000 nodes (SWIM's
	// regime: miss probability per period decays exponentially in fanout).
	defaultProbeFanout = 4
	// probeDigestMax bounds the (index, age) pairs one ack carries. 16
	// entries keep the ack at 75 wire bytes — the legacy broadcast costs
	// more than that per tick at any roster past ~8 nodes.
	probeDigestMax = 16
	// probeDigestUnit is the age quantum in digests. 100ms resolution is
	// far below any sane SuspectAfter, and a uint16 of units spans 109
	// minutes of silence — orders past the stale cutoff.
	probeDigestUnit = 100 * time.Millisecond
)

// encodeProbeAck builds a FrameRepairProbeAck payload (n.mu held): the
// responder's 4-byte index, a 2-byte entry count, then (uint16 index,
// uint16 age-units) pairs selected by a rotating cursor over the roster.
func (n *Node) encodeProbeAckLocked(now time.Duration) []byte {
	rd := n.repair
	out := binary.BigEndian.AppendUint32(nil, uint32(n.selfIdx))
	countAt := len(out)
	out = append(out, 0, 0)
	count := 0
	stale := n.cfg.RepairSuspectAfter + n.cfg.RepairHysteresis
	roster := len(n.cfg.Accounts)
	for scanned := 0; scanned < roster && count < probeDigestMax; scanned++ {
		i := rd.digestCursor % roster
		rd.digestCursor++
		if i == n.selfIdx {
			continue
		}
		age := now - rd.det.LastSeen(i)
		if age < 0 {
			age = 0
		}
		if age >= stale {
			continue
		}
		// Round UP to the unit: understating an age would timestamp the
		// merged evidence after the responder's real observation, and a
		// digest bouncing between nodes could then creep a silent node's
		// lastSeen forward ~one unit per hop, forever. Overstating only
		// makes third-party evidence (at most one unit) conservative.
		units := (age + probeDigestUnit - 1) / probeDigestUnit
		if units > 0xFFFF {
			continue
		}
		out = binary.BigEndian.AppendUint16(out, uint16(i))
		out = binary.BigEndian.AppendUint16(out, uint16(units))
		count++
	}
	binary.BigEndian.PutUint16(out[countAt:], uint16(count))
	return out
}

// handleRepairProbe ingests a liveness probe: like an announce it binds
// the prober's address and refreshes its liveness, then answers with the
// digest-carrying ack.
func (n *Node) handleRepairProbe(from string, payload []byte) {
	if len(payload) != 4 {
		return
	}
	i := int(binary.BigEndian.Uint32(payload))
	n.mu.Lock()
	rd := n.repair
	if rd == nil || n.closed || i < 0 || i >= len(n.cfg.Accounts) || i == n.selfIdx {
		n.mu.Unlock()
		return
	}
	n.bindRepairAddrLocked(i, from)
	ack := n.encodeProbeAckLocked(n.now())
	n.mu.Unlock()
	n.tel.probeAcks.Inc()
	n.send(from, p2p.FrameRepairProbeAck, ack)
}

// handleRepairProbeAck ingests a probe reply: direct evidence for the
// responder, plus any digest entries strictly newer than what the local
// detector already knows. The merge keeps Seen timestamps monotonic, so
// a looping digest cannot revive a node silent past its entries' ages.
func (n *Node) handleRepairProbeAck(from string, payload []byte) {
	if len(payload) < 6 {
		return
	}
	i := int(binary.BigEndian.Uint32(payload))
	count := int(binary.BigEndian.Uint16(payload[4:6]))
	if count > probeDigestMax || len(payload) != 6+count*4 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	rd := n.repair
	if rd == nil || n.closed || i < 0 || i >= len(n.cfg.Accounts) || i == n.selfIdx {
		return
	}
	n.bindRepairAddrLocked(i, from)
	now := n.now()
	merged := 0
	for e := 0; e < count; e++ {
		off := 6 + e*4
		j := int(binary.BigEndian.Uint16(payload[off:]))
		age := time.Duration(binary.BigEndian.Uint16(payload[off+2:])) * probeDigestUnit
		if j == n.selfIdx || j >= len(n.cfg.Accounts) {
			continue
		}
		at := now - age
		if at > rd.det.LastSeen(j) {
			rd.det.Seen(j, at)
			merged++
		}
	}
	n.tel.probeDigestMerged.Add(merged)
}

// bindRepairAddrLocked binds roster index i to transport address from and
// refreshes its liveness (n.mu held; caller has validated i). Shared by
// the announce, probe and ack handlers.
func (n *Node) bindRepairAddrLocked(i int, from string) {
	rd := n.repair
	if old := rd.det.Addr(i); old != "" && old != from {
		delete(rd.addrIdx, old)
	}
	rd.det.SetAddr(i, from)
	rd.addrIdx[from] = i
	rd.det.Seen(i, n.now())
}

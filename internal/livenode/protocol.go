package livenode

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/engine"
	"repro/internal/meta"
	"repro/internal/p2p"
)

// --- engine callbacks --------------------------------------------------------

// noteStoreErrLocked records a persistence error: the first one sticks in
// storeErr (the API contract), every one lands in the telemetry event
// ring for postmortems (n.mu held).
func (n *Node) noteStoreErrLocked(err error) {
	if err == nil {
		return
	}
	if n.storeErr == nil {
		n.storeErr = err
	}
	n.tel.events.RecordAt(n.clock.Now(), "store_error", err.Error())
}

// onAppend layers the live node's I/O side effects on top of a block the
// engine adopted (ledger, view, pool and item index are already updated).
// The engine calls it synchronously from ReceiveBlock/Mine/AppendTrusted,
// so n.mu is held.
func (n *Node) onAppend(ev engine.AppendEvent) {
	b := ev.Block
	if n.replaying {
		n.tel.blocksReplayed.Inc()
	} else {
		n.tel.blocksAdopted.Inc()
	}
	n.updateChainGauges()
	if !n.replaying {
		// Durably log the block before acting on it; replayed blocks are
		// already in the WAL.
		n.noteStoreErrLocked(n.store.AppendBlock(b))
		n.sinceCkpt++
		if n.sinceCkpt >= n.cfg.CheckpointEvery {
			n.sinceCkpt = 0
			n.noteStoreErrLocked(n.store.Checkpoint(b.Index, b.Hash))
			if n.cfg.PruneDepth > 0 {
				n.persistSnapshotLocked()
			}
			n.pruneExpiredLocked()
		}
	}
	// Feed the repair plane: the provider index tracks every announcement
	// (including during WAL replay — the index must mirror the chain), and
	// the miner of a live block is liveness evidence as of its timestamp.
	if rd := n.repair; rd != nil {
		for _, ie := range ev.Items {
			rd.idx.Apply(ie.Item)
		}
		if !n.replaying {
			if mi, ok := rd.minerIdx[b.Miner]; ok {
				rd.det.Seen(mi, b.Timestamp)
			}
		}
	}
	for _, ie := range ev.Items {
		if n.replaying {
			continue // no networking during WAL replay
		}
		// If assigned to store and lacking content, fetch it. Scheduled
		// through the clock (not a bare goroutine) so virtual-clock runs
		// issue the request at a deterministic point. Re-announcements
		// (repair or migration) have known providers, so their fetches go
		// through the targeted, rate-limited repair queue; first
		// announcements keep the legacy broadcast fetch (only the producer
		// has the content, and it answers FrameDataRequest).
		if ie.AssignedToSelf && !n.store.HasData(ie.Item.ID) {
			id := ie.Item.ID
			if n.repair != nil && ie.Prev != nil {
				if n.repair.queue.Add(id, n.now()) {
					n.tel.repairEnqueued.Inc()
				}
			} else {
				n.clock.AfterFunc(0, func() { n.RequestData(id) })
			}
		}
	}
	if cb := n.cfg.OnBlock; cb != nil && !n.replaying {
		go cb(b)
	}
}

// replayRecovered rebuilds the chain replica from the store before
// networking starts. A persisted snapshot (pruned node or earlier
// snapshot bootstrap) is installed first — anchoring the replica without
// replaying pruned history — then the WAL blocks above the anchor run the
// normal engine state transitions. The first failure stops the replay and
// rewrites the WAL to the surviving prefix so the corruption cannot
// resurface.
func (n *Node) replayRecovered() {
	recovered := n.store.RecoveredBlocks()
	blob, spine, snapHeight, haveSnap := n.store.RecoveredSnapshot()
	if len(recovered) == 0 && !haveSnap {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.replaying = true
	defer func() { n.replaying = false }()
	if haveSnap {
		snap, err := engine.DecodeSnapshot(blob)
		if err == nil {
			err = n.eng.BootstrapFromSnapshot(snap)
		}
		if err != nil {
			// The persisted snapshot is unusable. Blocks that don't reach
			// back to genesis are unreachable without it; drop them and
			// start clean rather than replay a gapped chain.
			n.noteStoreErrLocked(err)
			if len(recovered) > 0 && recovered[0].Index != 1 {
				recovered = nil
			}
			n.noteStoreErrLocked(n.store.ResetChain(recovered))
		} else {
			n.persistedSnap = snapHeight
			if len(spine) > 0 {
				n.noteStoreErrLocked(n.eng.Chain().BackfillSpine(spine))
			}
			// Compaction keeps whole segments, so the WAL may still hold
			// blocks at or below the anchor; the snapshot already covers
			// them.
			for len(recovered) > 0 && recovered[0].Index <= snapHeight {
				recovered = recovered[1:]
			}
			n.updateChainGauges()
		}
	}
	for i, b := range recovered {
		if err := n.eng.AppendTrusted(b); err != nil {
			n.noteStoreErrLocked(err)
			n.noteStoreErrLocked(n.store.ResetChain(recovered[:i]))
			return
		}
	}
}

// pruneExpiredLocked deletes on-disk data items whose latest on-chain
// metadata valid-time has passed (n.mu held). Items the chain does not
// know about — locally produced but not yet packed, or fetched as a
// consumer — are kept.
func (n *Node) pruneExpiredLocked() {
	now := n.now()
	_, _ = n.store.PruneData(func(id meta.DataID) bool {
		it := n.eng.LiveItem(id)
		return it != nil && it.Expired(now)
	})
}

// --- mining ------------------------------------------------------------------

// scheduleMiningLocked arms the wall-clock mining timer (n.mu held).
func (n *Node) scheduleMiningLocked() {
	if n.mineTimer != nil {
		n.mineTimer.Stop()
		n.mineTimer = nil
	}
	if n.closed || n.boot != nil {
		// While a snapshot bootstrap is in flight the engine must stay at
		// height 0; the session's end rearms mining.
		return
	}
	if n.bootHold {
		if n.eng.Height() == 0 {
			// Fresh node waiting for its first snapshot-bootstrap attempt.
			return
		}
		// The chain grew some other way (peer push, locator sync) — the
		// bootstrap window is over.
		n.bootHold = false
	}
	r, ok := n.eng.NextRound()
	if !ok {
		return
	}
	delay := n.cfg.Epoch.Add(r.FireAt()).Sub(n.clock.Now())
	if delay < 0 {
		delay = 0
	}
	n.mineTimer = n.clock.AfterFunc(delay, func() { n.mine(r) })
}

// mine assembles and broadcasts the next block if the round is still open.
func (n *Node) mine(r engine.Round) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	// Every timer fire is an attempt; attempts minus blocks_won measures
	// rounds lost to faster miners or stale tips.
	n.tel.miningAttempts.Inc()
	res, err := n.eng.Mine(r)
	if err != nil {
		// Should not happen for our own block; drop the round and re-arm.
		n.scheduleMiningLocked()
		n.mu.Unlock()
		return
	}
	if res == nil {
		// The round moved on; the block that beat us already re-armed.
		n.mu.Unlock()
		return
	}
	blk := res.Block
	n.tel.blocksWon.Inc()
	n.tel.repairReannounced.Add(res.Repairs)
	n.tel.events.RecordAt(n.clock.Now(), "block_won", fmt.Sprintf("height %d, %d items", blk.Index, len(blk.Items)))
	gossip := n.gossip != nil
	n.scheduleMiningLocked()
	n.mu.Unlock()
	if gossip {
		// Inv-style relay (DESIGN.md §13): announce (height, hash) to a
		// bounded peer sample; bodies travel only to peers that fetch them.
		n.relayBlock(blk, "")
	} else {
		n.bcast(p2p.FrameBlock, blk.Encode())
	}
}

// --- frame handling -----------------------------------------------------------

func (n *Node) handleFrame(from string, ft byte, payload []byte) {
	// Any frame from a mapped address is passive liveness evidence.
	n.noteFrameFrom(from)
	// While a snapshot bootstrap is in flight, adopting any block would
	// void the fresh-engine precondition of the pending install; chain
	// frames are dropped and the suffix is caught up after the install
	// (or the fallback) through the usual locator round.
	switch ft {
	case p2p.FrameBlock, p2p.FrameBlockAnnounce, p2p.FrameChain, p2p.FrameSyncHeaders, p2p.FrameSyncBatch:
		if n.bootstrapPending() {
			return
		}
	}
	switch ft {
	case p2p.FrameRepairAnnounce:
		n.handleRepairAnnounce(from, payload)

	case p2p.FrameRepairProbe:
		n.handleRepairProbe(from, payload)

	case p2p.FrameRepairProbeAck:
		n.handleRepairProbeAck(from, payload)

	case p2p.FrameRepairGet:
		n.handleRepairGet(from, payload)

	case p2p.FrameRepairData:
		n.handleRepairData(payload)

	case p2p.FrameMeta:
		it, err := meta.Decode(payload)
		if err != nil {
			return
		}
		n.mu.Lock()
		added := n.eng.AddMetadata(it) // verifies the signature, dedups vs pool+chain
		relay := n.noteMetaArrivalLocked(it.ID, added)
		n.mu.Unlock()
		if relay {
			// Relay-on-first-admission (DESIGN.md §15): a pooled item spreads
			// epidemically as an ID announce to a bounded peer sample, never
			// back to whoever sent us the body.
			n.relayMeta([]meta.DataID{it.ID}, from)
		}

	case p2p.FrameMetaAnnounce:
		n.handleMetaAnnounce(from, payload)

	case p2p.FrameGetMeta:
		n.handleGetMeta(from, payload)

	case p2p.FrameBlock:
		blk, err := block.Decode(payload)
		if err != nil {
			return
		}
		n.mu.Lock()
		_, addErr := n.eng.ReceiveBlock(blk)
		if addErr == nil {
			n.scheduleMiningLocked()
		}
		relay := n.noteGossipBlockLocked(blk, addErr == nil)
		n.mu.Unlock()
		if relay {
			// Relay-on-adopt (DESIGN.md §13): a block we had not seen
			// before spreads epidemically as an announce to a bounded peer
			// sample, never back to whoever sent us the body.
			n.relayBlock(blk, from)
		}
		if addErr != nil && !errors.Is(addErr, chain.ErrDuplicate) {
			// Gap or fork: probe the sender with a block locator and fetch
			// only the missing suffix (incremental sync, DESIGN.md §10).
			// Duplicates — common on lossy links that re-deliver — carry no
			// new information and must not trigger a sync round.
			n.sendSyncLocator(from)
		}

	case p2p.FrameBlockAnnounce:
		n.handleBlockAnnounce(from, payload)

	case p2p.FrameGetBlock:
		n.handleGetBlock(from, payload)

	case p2p.FrameChainRequest:
		n.mu.Lock()
		var payload []byte
		if n.eng.Chain().BodyBase() == 0 {
			payload = encodeChain(n.eng.Chain().Blocks())
		}
		n.mu.Unlock()
		// A pruned replica no longer holds the full chain; it cannot serve
		// the legacy whole-chain exchange and stays silent (the requester
		// times out and tries another peer or the locator path).
		if payload != nil {
			n.send(from, p2p.FrameChain, payload)
		}

	case p2p.FrameGetSnapshot:
		n.handleGetSnapshot(from)

	case p2p.FrameSnapshot:
		n.handleSnapshot(from, payload)

	case p2p.FrameChain:
		blocks, err := decodeChain(payload)
		if err != nil {
			return
		}
		n.adoptChain(blocks)

	case p2p.FrameSyncLocator:
		loc, err := decodeLocator(payload)
		if err != nil {
			return
		}
		n.mu.Lock()
		resp := n.buildSyncHeadersLocked(loc)
		n.mu.Unlock()
		if resp != nil {
			n.send(from, p2p.FrameSyncHeaders, resp)
		}

	case p2p.FrameSyncHeaders:
		h, err := decodeSyncHeaders(payload)
		if err != nil {
			return
		}
		n.handleSyncHeaders(from, h)

	case p2p.FrameSyncGetBatch:
		first, last, err := decodeGetBatch(payload)
		if err != nil {
			return
		}
		// Saturating clamp: a forged first near MaxUint64 would wrap
		// first+maxSyncBatch-1 past zero and turn the bound into a no-op.
		if last < first {
			return
		}
		if last-first >= maxSyncBatch {
			last = first + maxSyncBatch - 1
		}
		n.mu.Lock()
		blocks := n.eng.Chain().Range(first, last)
		n.mu.Unlock()
		if len(blocks) == 0 {
			return // nothing in range (requester will time out and retry)
		}
		n.send(from, p2p.FrameSyncBatch, encodeBatch(first, blocks))

	case p2p.FrameSyncBatch:
		sb, err := decodeBatch(payload)
		if err != nil {
			return
		}
		n.handleSyncBatch(from, sb)

	case p2p.FrameDataRequest:
		if len(payload) != len(meta.DataID{}) {
			return
		}
		var id meta.DataID
		copy(id[:], payload)
		content, ok := n.store.GetData(id)
		if ok {
			resp := make([]byte, len(id)+len(content))
			copy(resp, id[:])
			copy(resp[len(id):], content)
			n.send(from, p2p.FrameData, resp)
		}

	case p2p.FrameData:
		if len(payload) < len(meta.DataID{}) {
			return
		}
		var id meta.DataID
		copy(id[:], payload)
		content := append([]byte(nil), payload[len(id):]...)
		// Integrity: the content must hash to its claimed ID
		// (Section III-B2 data integrity).
		if meta.HashData(content) != id {
			return
		}
		dup := n.store.HasData(id)
		if !dup {
			if err := n.store.PutData(id, content); err != nil {
				return
			}
		}
		n.mu.Lock()
		cb := n.onData
		if start, ok := n.fetchStart[id]; ok {
			n.tel.dataFetchNs.Observe(int64(n.clock.Now().Sub(start)))
			delete(n.fetchStart, id)
		}
		if rd := n.repair; rd != nil {
			// The content arrived by the broadcast path; a queued repair
			// task for it is complete.
			rd.queue.Done(id, n.now())
		}
		n.mu.Unlock()
		if !dup && cb != nil {
			cb(id, content)
		}
	}
}

// adoptChain validates and adopts a longer chain through the legacy
// whole-chain path — a scratch replay from genesis, kept as the fallback
// when incremental sync cannot apply. Validation (claim replay, checkpoint
// finality, strict-longer rule) lives in the engine; this adapter layers
// telemetry and WAL persistence on top.
func (n *Node) adoptChain(blocks []*block.Block) {
	n.mu.Lock()
	defer n.mu.Unlock()
	oldHeight := n.eng.Height()
	if !n.eng.AdoptChain(blocks) {
		return
	}
	n.tel.forkAdoptions.Inc()
	n.tel.syncFullReplays.Inc()
	n.tel.events.RecordAt(n.clock.Now(), "fork_adopted",
		fmt.Sprintf("height %d -> %d", oldHeight, n.eng.Height()))
	n.updateChainGauges()
	// Fork adoption runs no OnAppend hooks: rebuild the repair plane's
	// provider index from the adopted chain (bit-identical to the
	// incremental feed by construction — see the differential test).
	if rd := n.repair; rd != nil {
		rd.idx.Rebuild(n.eng.Chain().Blocks())
	}
	// The persisted chain was replaced wholesale; rewrite the WAL to
	// match (genesis is never persisted).
	n.noteStoreErrLocked(n.store.ResetChain(n.walBlocksLocked()))
	n.scheduleMiningLocked()
}

// walBlocksLocked returns every block body the chain replica holds minus
// genesis (which is derived from the seed, never persisted) — the exact
// set ResetChain must write. On a pruned replica the window base is a
// real block and is kept (n.mu held).
func (n *Node) walBlocksLocked() []*block.Block {
	bs := n.eng.Chain().Blocks()
	if len(bs) > 0 && bs[0].Index == 0 {
		bs = bs[1:]
	}
	return bs
}

// encodeChain serializes a whole chain: count, then length-prefixed blocks.
func encodeChain(blocks []*block.Block) []byte {
	var out []byte
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], uint64(len(blocks)))
	out = append(out, u[:]...)
	for _, b := range blocks {
		enc := b.Encode()
		binary.BigEndian.PutUint64(u[:], uint64(len(enc)))
		out = append(out, u[:]...)
		out = append(out, enc...)
	}
	return out
}

func decodeChain(payload []byte) ([]*block.Block, error) {
	if len(payload) < 8 {
		return nil, errors.New("livenode: short chain payload")
	}
	count := binary.BigEndian.Uint64(payload[:8])
	if count > 1<<20 {
		return nil, errors.New("livenode: absurd chain length")
	}
	payload = payload[8:]
	blocks := make([]*block.Block, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(payload) < 8 {
			return nil, errors.New("livenode: truncated chain")
		}
		size := binary.BigEndian.Uint64(payload[:8])
		payload = payload[8:]
		if uint64(len(payload)) < size {
			return nil, errors.New("livenode: truncated block")
		}
		b, err := block.Decode(payload[:size])
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, b)
		payload = payload[size:]
	}
	return blocks, nil
}

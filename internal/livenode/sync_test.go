package livenode

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/meta"
	"repro/internal/p2p"
	"repro/internal/pos"
	"repro/internal/telemetry"
)

// --- deterministic test fabric ------------------------------------------------

// fakeClock is a manually advanced clock: timers fire only inside Advance,
// in timestamp order, which makes every sync timeout path deterministic.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	c    *fakeClock
	at   time.Time
	fn   func()
	done bool
}

func newFakeClock(start time.Time) *fakeClock { return &fakeClock{now: start} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) AfterFunc(d time.Duration, fn func()) Timer {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Compact fired/stopped timers so long-lived clocks (fuzzing) stay flat.
	kept := c.timers[:0]
	for _, t := range c.timers {
		if !t.done {
			kept = append(kept, t)
		}
	}
	c.timers = kept
	t := &fakeTimer{c: c, at: c.now.Add(d), fn: fn}
	c.timers = append(c.timers, t)
	return t
}

func (t *fakeTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	was := !t.done
	t.done = true
	return was
}

func (c *fakeClock) Sleep(d time.Duration) { c.Advance(d) }

// Advance moves the clock forward, firing due timers in order.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		var next *fakeTimer
		for _, t := range c.timers {
			if !t.done && !t.at.After(target) && (next == nil || t.at.Before(next.at)) {
				next = t
			}
		}
		if next == nil {
			break
		}
		next.done = true
		if next.at.After(c.now) {
			c.now = next.at
		}
		fn := next.fn
		c.mu.Unlock()
		fn()
		c.mu.Lock()
	}
	c.now = target
	c.mu.Unlock()
}

// fakeNet is a zero-latency in-process transport fabric: Send delivers
// synchronously into the receiving node's handler, and an optional drop
// filter models lossy links for the timeout/retry paths.
type fakeNet struct {
	mu   sync.Mutex
	eps  map[string]*fakeEP
	drop func(from, to string, ft byte) bool

	// Wire accounting (see startCounting): every delivered frame's payload
	// size, for bytes-on-wire comparisons in benchmarks.
	counting    bool
	countBytes  int64
	countFrames int64
}

type fakeEP struct {
	net    *fakeNet
	name   string
	h      p2p.Handler
	mu     sync.Mutex
	peers  map[string]bool
	closed bool
}

func newFakeNet() *fakeNet { return &fakeNet{eps: make(map[string]*fakeEP)} }

// setDrop swaps the in-flight loss filter.
func (f *fakeNet) setDrop(fn func(from, to string, ft byte) bool) {
	f.mu.Lock()
	f.drop = fn
	f.mu.Unlock()
}

// startCounting zeroes and enables delivered-frame accounting.
func (f *fakeNet) startCounting() {
	f.mu.Lock()
	f.counting, f.countBytes, f.countFrames = true, 0, 0
	f.mu.Unlock()
}

// stopCounting disables accounting and reports (bytes, frames) delivered
// since startCounting.
func (f *fakeNet) stopCounting() (int64, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counting = false
	return f.countBytes, f.countFrames
}

func (f *fakeNet) endpoint(name string, h p2p.Handler) *fakeEP {
	f.mu.Lock()
	defer f.mu.Unlock()
	ep := &fakeEP{net: f, name: name, h: h, peers: make(map[string]bool)}
	f.eps[name] = ep
	return ep
}

func (e *fakeEP) Addr() string { return e.name }

func (e *fakeEP) Connect(addr string) error {
	e.net.mu.Lock()
	peer, ok := e.net.eps[addr]
	e.net.mu.Unlock()
	if !ok {
		return fmt.Errorf("fakeNet: no endpoint %q", addr)
	}
	e.mu.Lock()
	e.peers[addr] = true
	e.mu.Unlock()
	peer.mu.Lock()
	peer.peers[e.name] = true
	peer.mu.Unlock()
	return nil
}

func (e *fakeEP) Peers() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.peers))
	for p := range e.peers {
		out = append(out, p)
	}
	return out
}

func (e *fakeEP) Send(peerAddr string, ft byte, payload []byte) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return fmt.Errorf("fakeNet: endpoint %q closed", e.name)
	}
	e.net.mu.Lock()
	peer, ok := e.net.eps[peerAddr]
	dropFn := e.net.drop
	e.net.mu.Unlock()
	if !ok {
		return fmt.Errorf("fakeNet: no endpoint %q", peerAddr)
	}
	if dropFn != nil && dropFn(e.name, peerAddr, ft) {
		return nil // lost in flight: sender sees success, like TCP
	}
	e.net.mu.Lock()
	if e.net.counting {
		e.net.countBytes += int64(len(payload))
		e.net.countFrames++
	}
	e.net.mu.Unlock()
	peer.h.HandleFrame(e.name, ft, payload)
	return nil
}

func (e *fakeEP) Broadcast(ft byte, payload []byte) (delivered, failed int) {
	for _, p := range e.Peers() {
		if err := e.Send(p, ft, payload); err != nil {
			failed++
		} else {
			delivered++
		}
	}
	return delivered, failed
}

func (e *fakeEP) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	return nil
}

// syncTestNode bundles one node on the fake fabric with its own clock and
// telemetry registry.
type syncTestNode struct {
	*Node
	clock *fakeClock
	reg   *telemetry.Registry
	epoch time.Time
}

func newSyncTestNode(t testing.TB, fn *fakeNet, name string, idx int, epoch time.Time, mutate func(cfg *Config)) *syncTestNode {
	t.Helper()
	idents, accounts := testRoster(3)
	fc := newFakeClock(epoch)
	reg := telemetry.NewRegistry()
	cfg := Config{
		Identity:    idents[idx],
		Accounts:    accounts,
		PoS:         pos.Params{M: pos.DefaultM, T0: 60 * time.Second},
		GenesisSeed: 42,
		Epoch:       epoch,
		NewTransport: func(h p2p.Handler) (p2p.Transport, error) {
			return fn.endpoint(name, h), nil
		},
		Clock:         fc,
		Telemetry:     reg,
		SyncBatchSize: 4,
		SyncTimeout:   time.Second,
		SyncRetries:   2,
		SnapshotEvery: 2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return &syncTestNode{Node: n, clock: fc, reg: reg, epoch: epoch}
}

// mineBlocks drives the node's own engine through count winning rounds,
// jumping its clock to each round's fire time.
func (n *syncTestNode) mineBlocks(t testing.TB, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		n.mu.Lock()
		r, ok := n.eng.NextRound()
		n.mu.Unlock()
		if !ok {
			t.Fatal("node cannot mine")
		}
		fire := n.epoch.Add(r.FireAt())
		if d := fire.Sub(n.clock.Now()); d > 0 {
			n.clock.Advance(d)
		}
		n.mu.Lock()
		res, err := n.eng.Mine(r)
		if err != nil {
			n.mu.Unlock()
			t.Fatalf("mine: %v", err)
		}
		if res != nil {
			n.scheduleMiningLocked()
		}
		n.mu.Unlock()
		if res != nil {
			n.net.Broadcast(p2p.FrameBlock, res.Block.Encode())
		}
	}
}

func counter(reg *telemetry.Registry, name string) uint64 {
	return reg.Snapshot().Counter(name)
}

// --- incremental sync end-to-end ---------------------------------------------

func TestSyncCatchUpBatched(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	b := newSyncTestNode(t, fn, "b", 1, epoch, nil)
	b.mineBlocks(t, 10)
	a := newSyncTestNode(t, fn, "a", 0, epoch, nil)

	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Height(), uint64(10); got != want {
		t.Fatalf("height after sync = %d, want %d", got, want)
	}
	at, bt := a.Tip(), b.Tip()
	if at.Hash != bt.Hash {
		t.Fatal("tips diverge after sync")
	}
	if v := counter(a.reg, "livenode.sync.full_replays"); v != 0 {
		t.Errorf("sync.full_replays = %d, want 0 (pure catch-up)", v)
	}
	if v := counter(a.reg, "livenode.sync.blocks_fetched"); v != 10 {
		t.Errorf("sync.blocks_fetched = %d, want 10", v)
	}
	if v := counter(a.reg, "livenode.sync.batches"); v != 3 {
		t.Errorf("sync.batches = %d, want 3 (batch size 4)", v)
	}
	if v := counter(a.reg, "livenode.chainsync.rounds"); v != 0 {
		t.Errorf("chainsync.rounds = %d, want 0 (no legacy exchange)", v)
	}
	if a.StoreErr() != nil {
		t.Fatalf("store error: %v", a.StoreErr())
	}
}

func TestSyncForkSuffixFromSnapshot(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	a := newSyncTestNode(t, fn, "a", 0, epoch, nil)
	b := newSyncTestNode(t, fn, "b", 1, epoch, nil)

	// Common prefix: A mines 4 (snapshots at 2 and 4), B follows along.
	a.mineBlocks(t, 4)
	for _, blk := range a.ChainSnapshot()[1:] {
		b.handleFrame("a", p2p.FrameBlock, blk.Encode())
	}
	if b.Height() != 4 {
		t.Fatalf("b at %d, want 4", b.Height())
	}
	// Diverge: A mines 1 on its branch, B mines 3 on its own.
	a.mineBlocks(t, 1)
	b.mineBlocks(t, 3)

	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Height(), uint64(7); got != want {
		t.Fatalf("height after fork sync = %d, want %d", got, want)
	}
	if a.Tip().Hash != b.Tip().Hash {
		t.Fatal("tips diverge after fork sync")
	}
	if v := counter(a.reg, "livenode.sync.full_replays"); v != 0 {
		t.Errorf("sync.full_replays = %d, want 0 (fork point at snapshot)", v)
	}
	if v := counter(a.reg, "livenode.fork.adoptions"); v != 1 {
		t.Errorf("fork.adoptions = %d, want 1", v)
	}
	if v := counter(a.reg, "livenode.sync.blocks_fetched"); v != 3 {
		t.Errorf("sync.blocks_fetched = %d, want 3 (suffix only)", v)
	}
	if v := counter(a.reg, "livenode.sync.bytes_saved"); v == 0 {
		t.Error("sync.bytes_saved = 0, want > 0")
	}
	// The WAL was rewritten to the adopted branch: a restart from the same
	// store must recover the synced chain, not the abandoned one.
	if a.StoreErr() != nil {
		t.Fatalf("store error: %v", a.StoreErr())
	}
}

func TestSyncBatchTimeoutRetriesThenLegacyFallback(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	b := newSyncTestNode(t, fn, "b", 1, epoch, nil)
	b.mineBlocks(t, 5)
	a := newSyncTestNode(t, fn, "a", 0, epoch, nil)

	// Batches vanish in flight; everything else is delivered.
	fn.drop = func(from, to string, ft byte) bool { return ft == p2p.FrameSyncBatch }
	if err := a.Connect("b"); err != nil {
		t.Fatal(err)
	}
	if a.Height() != 0 {
		t.Fatalf("height = %d before any retry, want 0", a.Height())
	}
	// Exponential backoff: 1s, then 2s, then the 4s attempt exhausts the
	// retry budget and the node falls back to the whole-chain exchange.
	a.clock.Advance(time.Second)
	if v := counter(a.reg, "livenode.sync.retries"); v != 1 {
		t.Fatalf("sync.retries = %d after first timeout, want 1", v)
	}
	a.clock.Advance(2 * time.Second)
	if v := counter(a.reg, "livenode.sync.retries"); v != 2 {
		t.Fatalf("sync.retries = %d after second timeout, want 2", v)
	}
	a.clock.Advance(4 * time.Second)
	if v := counter(a.reg, "livenode.sync.fallbacks"); v != 1 {
		t.Fatalf("sync.fallbacks = %d, want 1", v)
	}
	if a.Height() != 5 {
		t.Fatalf("height after legacy fallback = %d, want 5", a.Height())
	}
	if v := counter(a.reg, "livenode.sync.full_replays"); v != 1 {
		t.Errorf("sync.full_replays = %d, want 1 (legacy adoption)", v)
	}
	if v := counter(a.reg, "livenode.chainsync.rounds"); v != 1 {
		t.Errorf("chainsync.rounds = %d, want 1", v)
	}
}

func TestSyncBatchDivergingFromHeadersAborts(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	b := newSyncTestNode(t, fn, "b", 1, epoch, nil)
	b.mineBlocks(t, 3)
	a := newSyncTestNode(t, fn, "a", 0, epoch, nil)

	// Forge an offer: real fork point, real tip height, but header hashes
	// that do not match the blocks the "peer" will actually deliver.
	genesis := a.ChainSnapshot()[0]
	hdrs := syncHeaders{Fork: 0, ForkHash: genesis.Hash, Tip: 3}
	for i := uint64(1); i <= 3; i++ {
		hdrs.Headers = append(hdrs.Headers, chain.LocatorEntry{Height: i, Hash: block.Hash{byte(i)}})
	}
	a.handleFrame("evil", p2p.FrameSyncHeaders, encodeSyncHeaders(hdrs))
	a.Node.mu.Lock()
	if a.Node.sync == nil {
		a.Node.mu.Unlock()
		t.Fatal("offer did not open a session")
	}
	a.Node.mu.Unlock()

	// Deliver structurally valid blocks whose hashes differ from the offer.
	real := b.ChainSnapshot()[1:]
	a.handleFrame("evil", p2p.FrameSyncBatch, encodeBatch(1, real))
	if v := counter(a.reg, "livenode.sync.aborts"); v != 1 {
		t.Fatalf("sync.aborts = %d, want 1", v)
	}
	a.Node.mu.Lock()
	if a.Node.sync != nil {
		a.Node.mu.Unlock()
		t.Fatal("session survived a diverging batch")
	}
	a.Node.mu.Unlock()
	if a.Height() != 0 {
		t.Fatalf("height = %d, want 0 (nothing adopted)", a.Height())
	}
}

func TestSyncResponderAnswersLocatorAndRange(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	b := newSyncTestNode(t, fn, "b", 1, epoch, nil)
	b.mineBlocks(t, 6)

	// An empty range request and an inverted one must be ignored without a
	// response (and without panicking).
	b.handleFrame("x", p2p.FrameSyncGetBatch, encodeGetBatch(100, 200))
	b.handleFrame("x", p2p.FrameSyncGetBatch, []byte{1, 2, 3})

	genesisHash := b.ChainSnapshot()[0].Hash
	b.Node.mu.Lock()
	resp := b.Node.buildSyncHeadersLocked([]chain.LocatorEntry{{Height: 0, Hash: genesisHash}})
	b.Node.mu.Unlock()
	h, err := decodeSyncHeaders(resp)
	if err != nil {
		t.Fatal(err)
	}
	if h.Fork != 0 || h.Tip != 6 || len(h.Headers) != 6 {
		t.Fatalf("headers answer: fork %d tip %d len %d, want 0/6/6", h.Fork, h.Tip, len(h.Headers))
	}
	// A locator from a disjoint chain yields no offer.
	b.Node.mu.Lock()
	none := b.Node.buildSyncHeadersLocked([]chain.LocatorEntry{{Height: 0, Hash: block.Hash{0xff}}})
	b.Node.mu.Unlock()
	if none != nil {
		t.Fatal("disjoint locator produced an offer")
	}
}

// --- codec adversarial cases --------------------------------------------------

func TestSyncCodecsRejectMalformedFrames(t *testing.T) {
	goodLoc := encodeLocator([]chain.LocatorEntry{{Height: 5, Hash: block.Hash{1}}, {Height: 0, Hash: block.Hash{2}}})
	if _, err := decodeLocator(goodLoc); err != nil {
		t.Fatalf("round-trip locator: %v", err)
	}
	goodHdrs := encodeSyncHeaders(syncHeaders{Fork: 3, Tip: 6, Headers: []chain.LocatorEntry{{Height: 4}, {Height: 5}}})
	if _, err := decodeSyncHeaders(goodHdrs); err != nil {
		t.Fatalf("round-trip headers: %v", err)
	}

	cases := []struct {
		name string
		run  func() error
	}{
		{"locator truncated", func() error { _, err := decodeLocator(goodLoc[:len(goodLoc)-3]); return err }},
		{"locator trailing bytes", func() error { _, err := decodeLocator(append(goodLoc, 0)); return err }},
		{"locator empty count", func() error { _, err := decodeLocator(putU32(nil, 0)); return err }},
		{"locator oversized count", func() error { _, err := decodeLocator(putU32(nil, 1<<30)); return err }},
		{"locator ascending heights", func() error {
			_, err := decodeLocator(encodeLocator([]chain.LocatorEntry{{Height: 1}, {Height: 5}}))
			return err
		}},
		{"headers truncated", func() error { _, err := decodeSyncHeaders(goodHdrs[:10]); return err }},
		{"headers oversized count", func() error {
			p := putU64(nil, 0)
			p = append(p, make([]byte, 32)...)
			p = putU64(p, 10)
			p = putU32(p, maxSyncHeaders+1)
			_, err := decodeSyncHeaders(p)
			return err
		}},
		{"headers gap after fork", func() error {
			_, err := decodeSyncHeaders(encodeSyncHeaders(syncHeaders{Fork: 3, Tip: 9, Headers: []chain.LocatorEntry{{Height: 5}, {Height: 6}}}))
			return err
		}},
		{"headers descending range", func() error {
			_, err := decodeSyncHeaders(encodeSyncHeaders(syncHeaders{Fork: 3, Tip: 9, Headers: []chain.LocatorEntry{{Height: 5}, {Height: 4}}}))
			return err
		}},
		{"headers overlapping range", func() error {
			_, err := decodeSyncHeaders(encodeSyncHeaders(syncHeaders{Fork: 3, Tip: 9, Headers: []chain.LocatorEntry{{Height: 4}, {Height: 4}}}))
			return err
		}},
		{"get-batch short", func() error { _, _, err := decodeGetBatch([]byte{1}); return err }},
		{"get-batch inverted", func() error { _, _, err := decodeGetBatch(encodeGetBatch(9, 3)); return err }},
		{"get-batch from genesis", func() error { _, _, err := decodeGetBatch(encodeGetBatch(0, 3)); return err }},
		{"batch oversized count", func() error {
			p := putU64(nil, 1)
			p = putU32(p, maxSyncBatch+1)
			_, err := decodeBatch(p)
			return err
		}},
		{"batch truncated block", func() error {
			p := putU64(nil, 1)
			p = putU32(p, 1)
			p = putU32(p, 1000)
			p = append(p, 1, 2, 3)
			_, err := decodeBatch(p)
			return err
		}},
		{"batch garbage block", func() error {
			p := putU64(nil, 1)
			p = putU32(p, 1)
			p = putU32(p, 4)
			p = append(p, 1, 2, 3, 4)
			_, err := decodeBatch(p)
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); err == nil {
			t.Errorf("%s: accepted, want error", tc.name)
		}
	}
}

// --- fetchStart leak regression (ISSUE satellite) -----------------------------

func TestRequestDataExpiryDropsLeakedEntries(t *testing.T) {
	fn := newFakeNet()
	epoch := time.Unix(1700000000, 0)
	a := newSyncTestNode(t, fn, "a", 0, epoch, func(cfg *Config) {
		cfg.FetchTimeout = 10 * time.Second
	})

	// Fetches nobody can answer (no peers): before the fix these entries
	// lived in fetchStart forever.
	for i := 0; i < 5; i++ {
		a.RequestData(meta.HashData([]byte(fmt.Sprintf("ghost %d", i))))
	}
	if got := a.pendingFetches(); got != 5 {
		t.Fatalf("pending fetches = %d, want 5", got)
	}
	a.clock.Advance(9 * time.Second)
	if got := a.pendingFetches(); got != 5 {
		t.Fatalf("pending fetches = %d before timeout, want 5", got)
	}
	a.clock.Advance(2 * time.Second)
	if got := a.pendingFetches(); got != 0 {
		t.Fatalf("pending fetches = %d after timeout, want 0", got)
	}
	if v := counter(a.reg, "livenode.data.fetch_expired"); v != 5 {
		t.Errorf("data.fetch_expired = %d, want 5", v)
	}

	// A fetch answered in time must not be double-counted by its stale
	// expiry timer, and a re-request after completion starts fresh.
	content := []byte("answered in time")
	id := meta.HashData(content)
	a.RequestData(id)
	resp := append(append([]byte(nil), id[:]...), content...)
	a.handleFrame("b", p2p.FrameData, resp)
	if got := a.pendingFetches(); got != 0 {
		t.Fatalf("pending fetches = %d after answer, want 0", got)
	}
	a.clock.Advance(time.Minute)
	if v := counter(a.reg, "livenode.data.fetch_expired"); v != 5 {
		t.Errorf("data.fetch_expired = %d after answered fetch, want still 5", v)
	}
}

package livenode

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/meta"
	"repro/internal/p2p"
)

// Incremental batched chain sync (DESIGN.md §10). Instead of shipping a
// whole chain on every gap or fork (the Naivechain-style FrameChain
// exchange, kept as a fallback), a lagging node sends a block locator,
// learns the fork point and a bounded header range from the peer, and
// fetches only the missing suffix in bounded batches with per-batch
// timeouts and exponential retry backoff:
//
//	lagging node                         peer
//	  FrameSyncLocator(locator) ─────────▶
//	  ◀──────── FrameSyncHeaders(fork, tip, headers)
//	  FrameSyncGetBatch(from, to) ───────▶   ─┐ repeated per batch,
//	  ◀──────────────── FrameSyncBatch(blocks) ┘ timeout ⇒ retry/backoff
//	  … engine.AdoptSuffix …
//
// Protocol bounds. All frames are hard-bounded so a malicious peer can
// neither trigger large allocations nor smuggle an unbounded chain:
const (
	// maxSyncHeaders bounds the header range of one sync round; a node
	// lagging further simply runs multiple rounds.
	maxSyncHeaders = 4096
	// maxSyncBatch bounds the blocks of one FrameSyncGetBatch/Batch
	// exchange, whatever the requester asked for.
	maxSyncBatch = 512

	defaultSyncBatch   = 64
	defaultSyncRetries = 3
)

var errSyncFrame = errors.New("livenode: bad sync frame")

// --- wire codecs --------------------------------------------------------------

// syncHeaders is the decoded FrameSyncHeaders payload: the responder's
// view of the fork point (with the hash of OUR block there, as proof it
// intersected our locator), its tip height, and the contiguous header
// range (fork+1 …) of the suffix it offers.
type syncHeaders struct {
	Fork     uint64
	ForkHash block.Hash
	Tip      uint64
	Headers  []chain.LocatorEntry
}

// syncBatch is the decoded FrameSyncBatch payload.
type syncBatch struct {
	From   uint64
	Blocks []*block.Block
}

type syncReader struct {
	b   []byte
	off int
	err error
}

func (r *syncReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = errSyncFrame
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *syncReader) uint64() uint64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *syncReader) uint32() uint32 {
	b := r.take(4)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *syncReader) hash() (h block.Hash) {
	copy(h[:], r.take(len(h)))
	return h
}

func (r *syncReader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("%w: %d trailing bytes", errSyncFrame, len(r.b)-r.off)
	}
	return nil
}

func putU64(out []byte, v uint64) []byte {
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], v)
	return append(out, u[:]...)
}

func putU32(out []byte, v uint32) []byte {
	var u [4]byte
	binary.BigEndian.PutUint32(u[:], v)
	return append(out, u[:]...)
}

// encodeLocator serializes a block locator: count, then (height, hash)
// entries tip-first.
func encodeLocator(loc []chain.LocatorEntry) []byte {
	out := make([]byte, 0, 4+len(loc)*40)
	out = putU32(out, uint32(len(loc)))
	for _, e := range loc {
		out = putU64(out, e.Height)
		out = append(out, e.Hash[:]...)
	}
	return out
}

func decodeLocator(payload []byte) ([]chain.LocatorEntry, error) {
	r := &syncReader{b: payload}
	n := int(r.uint32())
	if r.err == nil && (n <= 0 || n > chain.MaxLocatorLen) {
		return nil, fmt.Errorf("%w: locator of %d entries", errSyncFrame, n)
	}
	loc := make([]chain.LocatorEntry, 0, n)
	for i := 0; i < n; i++ {
		h := r.uint64()
		hash := r.hash()
		if r.err != nil {
			break
		}
		// Locators are strictly descending tip-first; enforce the shape so
		// a forged frame cannot bias fork-point search.
		if i > 0 && h >= loc[i-1].Height {
			return nil, fmt.Errorf("%w: locator heights not descending", errSyncFrame)
		}
		loc = append(loc, chain.LocatorEntry{Height: h, Hash: hash})
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return loc, nil
}

// encodeSyncHeaders serializes fork point, fork hash, tip height and the
// contiguous header range.
func encodeSyncHeaders(h syncHeaders) []byte {
	out := make([]byte, 0, 8+32+8+4+len(h.Headers)*40)
	out = putU64(out, h.Fork)
	out = append(out, h.ForkHash[:]...)
	out = putU64(out, h.Tip)
	out = putU32(out, uint32(len(h.Headers)))
	for _, e := range h.Headers {
		out = putU64(out, e.Height)
		out = append(out, e.Hash[:]...)
	}
	return out
}

func decodeSyncHeaders(payload []byte) (syncHeaders, error) {
	var h syncHeaders
	r := &syncReader{b: payload}
	h.Fork = r.uint64()
	h.ForkHash = r.hash()
	h.Tip = r.uint64()
	n := int(r.uint32())
	if r.err == nil && n > maxSyncHeaders {
		return h, fmt.Errorf("%w: %d headers exceed cap %d", errSyncFrame, n, maxSyncHeaders)
	}
	h.Headers = make([]chain.LocatorEntry, 0, n)
	for i := 0; i < n; i++ {
		height := r.uint64()
		hash := r.hash()
		if r.err != nil {
			break
		}
		// The header range must be contiguous and start right after the
		// fork point: overlapping, descending or gapped ranges are forged.
		if height != h.Fork+1+uint64(i) {
			return h, fmt.Errorf("%w: header %d at height %d, want %d", errSyncFrame, i, height, h.Fork+1+uint64(i))
		}
		h.Headers = append(h.Headers, chain.LocatorEntry{Height: height, Hash: hash})
	}
	if err := r.done(); err != nil {
		return h, err
	}
	return h, nil
}

// encodeGetBatch serializes a block-range request [from, to].
func encodeGetBatch(from, to uint64) []byte {
	out := make([]byte, 0, 16)
	out = putU64(out, from)
	return putU64(out, to)
}

func decodeGetBatch(payload []byte) (from, to uint64, err error) {
	r := &syncReader{b: payload}
	from = r.uint64()
	to = r.uint64()
	if err := r.done(); err != nil {
		return 0, 0, err
	}
	if from == 0 || to < from {
		return 0, 0, fmt.Errorf("%w: batch range [%d, %d]", errSyncFrame, from, to)
	}
	return from, to, nil
}

// encodeBatch serializes one batch: starting index, count, then
// length-prefixed encoded blocks.
func encodeBatch(from uint64, blocks []*block.Block) []byte {
	out := putU32(putU64(nil, from), uint32(len(blocks)))
	for _, b := range blocks {
		enc := b.Encode()
		out = putU32(out, uint32(len(enc)))
		out = append(out, enc...)
	}
	return out
}

func decodeBatch(payload []byte) (syncBatch, error) {
	var sb syncBatch
	r := &syncReader{b: payload}
	sb.From = r.uint64()
	n := int(r.uint32())
	if r.err == nil && n > maxSyncBatch {
		return sb, fmt.Errorf("%w: batch of %d blocks exceeds cap %d", errSyncFrame, n, maxSyncBatch)
	}
	sb.Blocks = make([]*block.Block, 0, min(n, maxSyncBatch))
	for i := 0; i < n; i++ {
		size := int(r.uint32())
		raw := r.take(size)
		if r.err != nil {
			break
		}
		b, err := block.Decode(raw)
		if err != nil {
			return sb, fmt.Errorf("livenode: batch block %d: %w", i, err)
		}
		if b.Index != sb.From+uint64(i) {
			return sb, fmt.Errorf("%w: batch block %d has index %d, want %d", errSyncFrame, i, b.Index, sb.From+uint64(i))
		}
		sb.Blocks = append(sb.Blocks, b)
	}
	if err := r.done(); err != nil {
		return sb, err
	}
	return sb, nil
}

// --- sync session -------------------------------------------------------------

// syncSession is one in-flight incremental sync: created when a peer's
// FrameSyncHeaders shows it is ahead, destroyed on completion, abort, or
// retry exhaustion. At most one session exists per node; concurrent
// triggers are absorbed by the running session.
type syncSession struct {
	gen      uint64 // guards against stale timer fires
	peer     string
	fork     uint64 // advances as catch-up batches are adopted
	peerTip  uint64 // responder's advertised tip (may exceed the header range)
	headers  []chain.LocatorEntry
	suffix   []*block.Block // accumulated suffix (true-fork case only)
	nextFrom uint64
	attempts int
	timer    Timer
}

// target is the last height this session can fetch (end of the header range).
func (s *syncSession) target() uint64 { return s.headers[len(s.headers)-1].Height }

// headerAt returns the advertised header for height h.
func (s *syncSession) headerAt(h uint64) (chain.LocatorEntry, bool) {
	base := s.headers[0].Height
	if h < base || h-base >= uint64(len(s.headers)) {
		return chain.LocatorEntry{}, false
	}
	return s.headers[h-base], true
}

// sendSyncLocator emits a locator probe to one peer ("" = broadcast) and
// counts the round. Peers that are ahead answer with FrameSyncHeaders.
func (n *Node) sendSyncLocator(peer string) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.tel.syncRounds.Inc()
	payload := encodeLocator(n.eng.Chain().Locator())
	n.mu.Unlock()
	if peer == "" {
		n.bcast(p2p.FrameSyncLocator, payload)
	} else {
		n.send(peer, p2p.FrameSyncLocator, payload)
	}
}

// clearSyncLocked tears the session down (n.mu held).
func (n *Node) clearSyncLocked() {
	if n.sync == nil {
		return
	}
	if n.sync.timer != nil {
		n.sync.timer.Stop()
	}
	n.sync = nil
}

// buildSyncHeadersLocked answers a peer's locator against our chain
// (n.mu held). Returns nil when the locator shares nothing with us.
func (n *Node) buildSyncHeadersLocked(loc []chain.LocatorEntry) []byte {
	ch := n.eng.Chain()
	fork, ok := ch.FindForkPoint(loc)
	if !ok {
		return nil // disjoint chains (different genesis): nothing to offer
	}
	to := ch.Height()
	if to > fork+maxSyncHeaders {
		to = fork + maxSyncHeaders
	}
	// The fork point may lie below a pruned replica's body window; its
	// header is always known (header spine), but the suffix bodies may
	// not be servable — then stay silent and let an unpruned peer answer.
	hdr, ok := ch.HeaderAt(fork)
	if !ok {
		return nil
	}
	blocks := ch.Range(fork+1, to)
	if fork < to && len(blocks) == 0 {
		return nil
	}
	h := syncHeaders{Fork: fork, ForkHash: hdr.Hash, Tip: ch.Height()}
	for _, b := range blocks {
		h.Headers = append(h.Headers, chain.LocatorEntry{Height: b.Index, Hash: b.Hash})
	}
	return encodeSyncHeaders(h)
}

// handleSyncHeaders processes a FrameSyncHeaders answer; if it opens a
// session, the first batch request is sent.
func (n *Node) handleSyncHeaders(from string, h syncHeaders) {
	n.mu.Lock()
	if n.closed || n.sync != nil {
		n.mu.Unlock()
		return // a session is already draining; extra offers are absorbed
	}
	height := n.eng.Height()
	if h.Tip <= height || len(h.Headers) == 0 {
		n.mu.Unlock()
		return // peer has nothing we lack
	}
	ours, ok := n.eng.Chain().HeaderAt(h.Fork)
	if !ok || ours.Hash != h.ForkHash {
		n.mu.Unlock()
		return // peer disagrees about our own chain: ignore the offer
	}
	if h.Headers[len(h.Headers)-1].Height <= height {
		// The peer is ahead but its bounded header range cannot reach past
		// our tip (a fork deeper than maxSyncHeaders): incremental sync
		// cannot win here, fall back to the whole-chain exchange.
		n.tel.syncFallbacks.Inc()
		n.tel.chainSyncs.Inc()
		n.mu.Unlock()
		n.send(from, p2p.FrameChainRequest, nil)
		return
	}
	n.syncGen++
	n.sync = &syncSession{
		gen:      n.syncGen,
		peer:     from,
		fork:     h.Fork,
		peerTip:  h.Tip,
		headers:  h.Headers,
		nextFrom: h.Fork + 1,
	}
	req := n.requestBatchLocked()
	n.mu.Unlock()
	n.send(from, p2p.FrameSyncGetBatch, req)
}

// requestBatchLocked builds the next batch request and arms the per-batch
// timeout with exponential backoff (n.mu held, session present).
func (n *Node) requestBatchLocked() []byte {
	s := n.sync
	from := s.nextFrom
	to := s.target()
	if to > from+uint64(n.cfg.SyncBatchSize)-1 {
		to = from + uint64(n.cfg.SyncBatchSize) - 1
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	gen := s.gen
	timeout := n.cfg.SyncTimeout << s.attempts
	s.timer = n.clock.AfterFunc(timeout, func() { n.onSyncTimeout(gen) })
	return encodeGetBatch(from, to)
}

// onSyncTimeout fires when a batch went unanswered: retry with backoff,
// then give the peer up and fall back to the legacy whole-chain exchange.
func (n *Node) onSyncTimeout(gen uint64) {
	n.mu.Lock()
	s := n.sync
	if s == nil || s.gen != gen || n.closed {
		n.mu.Unlock()
		return
	}
	s.attempts++
	if s.attempts > n.cfg.SyncRetries {
		peer := s.peer
		n.clearSyncLocked()
		n.tel.syncFallbacks.Inc()
		n.tel.chainSyncs.Inc()
		n.mu.Unlock()
		n.send(peer, p2p.FrameChainRequest, nil)
		return
	}
	n.tel.syncRetries.Inc()
	req := n.requestBatchLocked()
	peer := s.peer
	n.mu.Unlock()
	n.send(peer, p2p.FrameSyncGetBatch, req)
}

// handleSyncBatch ingests one FrameSyncBatch. Catch-up batches (fork at
// our tip) are adopted immediately — verification and ledger application
// of batch k overlap the network fetch of batch k+1 — while true-fork
// suffixes accumulate until the full suffix is in hand.
func (n *Node) handleSyncBatch(from string, sb syncBatch) {
	n.mu.Lock()
	s := n.sync
	if s == nil || from != s.peer || sb.From != s.nextFrom || len(sb.Blocks) == 0 {
		n.mu.Unlock()
		return // stale, duplicate or foreign batch
	}
	if s.timer != nil {
		s.timer.Stop()
	}
	// Every block must be exactly what the peer advertised in its header
	// range; a mismatch means the peer switched chains mid-sync.
	for _, b := range sb.Blocks {
		hdr, ok := s.headerAt(b.Index)
		if !ok || hdr.Hash != b.Hash {
			n.abortSyncLocked("batch diverged from advertised headers")
			n.mu.Unlock()
			return
		}
	}
	n.tel.syncBatches.Inc()
	n.tel.syncBatchBlocks.Observe(int64(len(sb.Blocks)))
	n.tel.syncBlocksFetched.Add(len(sb.Blocks))
	batchBytes := 0
	for _, b := range sb.Blocks {
		batchBytes += b.EncodedSize()
	}
	n.tel.syncBytesFetched.Add(batchBytes)

	if len(s.suffix) == 0 && s.fork == n.eng.Height() {
		// Pure catch-up: adopt this batch right now.
		if !n.adoptSyncSuffixLocked(sb.Blocks) {
			n.mu.Unlock()
			return
		}
		s.fork = n.eng.Height()
	} else {
		s.suffix = append(s.suffix, sb.Blocks...)
	}

	last := sb.From + uint64(len(sb.Blocks)) - 1
	if last < s.target() {
		s.nextFrom = last + 1
		s.attempts = 0
		req := n.requestBatchLocked()
		peer := s.peer
		n.mu.Unlock()
		n.send(peer, p2p.FrameSyncGetBatch, req)
		return
	}

	// Header range exhausted: adopt any accumulated true-fork suffix.
	if len(s.suffix) > 0 && !n.adoptSyncSuffixLocked(s.suffix) {
		n.mu.Unlock()
		return
	}
	peerTip, height := s.peerTip, n.eng.Height()
	n.clearSyncLocked()
	n.mu.Unlock()
	if peerTip > height {
		// The peer's tip lies beyond this round's header window: run
		// another locator round to keep draining.
		n.sendSyncLocator(from)
	}
}

// abortSyncLocked drops the session without a fallback request; the next
// incoming block re-triggers sync if the node is still behind (n.mu held).
func (n *Node) abortSyncLocked(why string) {
	n.tel.syncAborts.Inc()
	n.tel.events.RecordAt(n.clock.Now(), "sync_abort", why)
	n.clearSyncLocked()
}

// adoptSyncSuffixLocked runs a fetched suffix through the engine and, on
// success, layers persistence, data fetches, telemetry and mining
// rescheduling on top (n.mu held). On engine rejection the session is
// aborted (the chain may simply have moved on) and false is returned.
func (n *Node) adoptSyncSuffixLocked(suffix []*block.Block) bool {
	oldHeight := n.eng.Height()
	// Which suffix items were re-announcements must be decided against the
	// provider index BEFORE the suffix is applied to it.
	var knownBefore map[meta.DataID]bool
	if rd := n.repair; rd != nil {
		knownBefore = make(map[meta.DataID]bool)
		for _, b := range suffix {
			for _, it := range b.Items {
				if rd.idx.Providers(it.ID) != nil {
					knownBefore[it.ID] = true
				}
			}
		}
	}
	stats, ok := n.eng.AdoptSuffix(suffix)
	if !ok {
		n.abortSyncLocked(fmt.Sprintf("engine rejected suffix at fork %d", stats.ForkPoint))
		return false
	}
	// AdoptSuffix runs no OnAppend hooks; maintain the repair plane's
	// provider index by hand. A pure catch-up extends it incrementally; a
	// true fork invalidates incremental state, so rebuild from scratch.
	if rd := n.repair; rd != nil {
		if stats.ForkPoint == oldHeight {
			for _, b := range suffix {
				rd.idx.ApplyBlock(b)
			}
		} else {
			rd.idx.Rebuild(n.eng.Chain().Blocks())
		}
	}
	n.tel.blocksAdopted.Add(stats.Appended)
	n.tel.syncBlocksReplayed.Add(stats.Replayed)
	n.tel.syncVerifyParallel.Add(stats.ParallelVerified)
	if stats.FullReplay {
		n.tel.syncFullReplays.Inc()
	}
	// Bytes saved vs. the legacy whole-chain exchange: FrameChain would
	// have shipped every block we already held.
	saved := 0
	for _, b := range n.walBlocksLocked() {
		saved += b.EncodedSize()
	}
	for _, b := range suffix {
		saved -= b.EncodedSize()
	}
	if saved > 0 {
		n.tel.syncBytesSaved.Add(saved)
	}
	n.updateChainGauges()
	n.tel.events.RecordAt(n.clock.Now(), "sync_adopted",
		fmt.Sprintf("fork %d, height %d -> %d (%d replayed)", stats.ForkPoint, oldHeight, n.eng.Height(), stats.Replayed))

	if stats.ForkPoint == oldHeight {
		// Tip extension: persist incrementally, like live adoption.
		for _, b := range suffix {
			n.noteStoreErrLocked(n.store.AppendBlock(b))
			n.sinceCkpt++
			if n.sinceCkpt >= n.cfg.CheckpointEvery {
				n.sinceCkpt = 0
				n.noteStoreErrLocked(n.store.Checkpoint(b.Index, b.Hash))
				if n.cfg.PruneDepth > 0 {
					n.persistSnapshotLocked()
				}
				n.pruneExpiredLocked()
			}
		}
	} else {
		// True fork: the persisted chain below the old tip changed.
		n.tel.forkAdoptions.Inc()
		n.noteStoreErrLocked(n.store.ResetChain(n.walBlocksLocked()))
	}
	// Fetch data content this node is newly assigned to store — the same
	// side effect onAppend applies to live blocks. Re-announcements of
	// items with known providers route through the targeted repair queue.
	for _, b := range suffix {
		for _, it := range b.Items {
			for _, sn := range it.StoringNodes {
				if sn == n.selfIdx && !n.store.HasData(it.ID) {
					id := it.ID
					if n.repair != nil && knownBefore[id] {
						if n.repair.queue.Add(id, n.now()) {
							n.tel.repairEnqueued.Inc()
						}
					} else {
						n.clock.AfterFunc(0, func() { n.RequestData(id) })
					}
					break
				}
			}
		}
	}
	n.scheduleMiningLocked()
	return true
}

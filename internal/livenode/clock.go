package livenode

import "time"

// Clock abstracts the node's time source — wall-clock reads, mining
// timers and handshake grace sleeps all go through it — so the chaos
// harness (internal/chaos) can drive a whole cluster through virtual time
// deterministically. Production nodes use WallClock.
//
// Implementations must be safe for concurrent use; timer callbacks may
// fire from any goroutine.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// AfterFunc schedules fn to run once after d (d <= 0 means as soon as
	// possible, never synchronously inside the AfterFunc call).
	AfterFunc(d time.Duration, fn func()) Timer
	// Sleep blocks until d has passed on this clock.
	Sleep(d time.Duration)
}

// Timer is a cancellable pending callback returned by Clock.AfterFunc.
type Timer interface {
	// Stop cancels the timer; it reports whether the callback was still
	// pending (same contract as time.Timer.Stop).
	Stop() bool
}

type wallClock struct{}

func (wallClock) Now() time.Time                             { return time.Now() }
func (wallClock) AfterFunc(d time.Duration, fn func()) Timer { return time.AfterFunc(d, fn) }
func (wallClock) Sleep(d time.Duration)                      { time.Sleep(d) }

// WallClock returns the real-time clock used when Config.Clock is nil.
func WallClock() Clock { return wallClock{} }

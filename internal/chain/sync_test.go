package chain

import (
	"errors"
	"testing"
	"time"

	"repro/internal/block"
)

// chainOf builds a replica holding the given pre-built blocks.
func chainOf(t *testing.T, blocks []*block.Block) *Chain {
	t.Helper()
	c := New(blocks[0])
	for _, b := range blocks[1:] {
		if _, err := c.Add(b); err != nil {
			t.Fatalf("add block %d: %v", b.Index, err)
		}
	}
	return c
}

func TestLocatorShape(t *testing.T) {
	for _, n := range []int{0, 1, 5, 11, 12, 13, 40, 200} {
		blocks := buildChain(t, 1, n)
		c := chainOf(t, blocks)
		loc := c.Locator()
		if len(loc) == 0 || len(loc) > MaxLocatorLen {
			t.Fatalf("n=%d: locator of %d entries outside (0, %d]", n, len(loc), MaxLocatorLen)
		}
		if loc[0].Height != uint64(n) || loc[0].Hash != c.Tip().Hash {
			t.Fatalf("n=%d: locator must start at the tip", n)
		}
		last := loc[len(loc)-1]
		if last.Height != 0 || last.Hash != blocks[0].Hash {
			t.Fatalf("n=%d: locator must end with genesis", n)
		}
		// Strictly descending heights, hashes that match the chain.
		for i, e := range loc {
			if i > 0 && e.Height >= loc[i-1].Height {
				t.Fatalf("n=%d: locator heights not strictly descending at %d", n, i)
			}
			if c.At(e.Height).Hash != e.Hash {
				t.Fatalf("n=%d: locator entry %d hash mismatch", n, i)
			}
		}
		// The 12 most recent blocks are sampled densely.
		for i := 0; i < 12 && i <= n; i++ {
			if loc[i].Height != uint64(n-i) {
				t.Fatalf("n=%d: dense region broken at %d: height %d", n, i, loc[i].Height)
			}
		}
	}
}

func TestFindForkPoint(t *testing.T) {
	shared := buildChain(t, 1, 30)
	a := chainOf(t, shared)

	// b shares the first 21 blocks (fork point 20), then diverges.
	bBlocks := append([]*block.Block(nil), shared[:21]...)
	m := testMiner(99)
	for i := 0; i < 15; i++ {
		prev := bBlocks[len(bBlocks)-1]
		bBlocks = append(bBlocks, nextBlock(prev, m, prev.Timestamp+time.Minute))
	}
	b := chainOf(t, bBlocks)

	fork, ok := b.FindForkPoint(a.Locator())
	if !ok {
		t.Fatal("no fork point despite shared genesis")
	}
	// The locator is sparse away from a's tip, so the responder finds the
	// highest *sampled* common height — at or below the true fork point.
	if fork > 20 {
		t.Fatalf("fork point %d beyond true divergence 20", fork)
	}
	if a.At(fork).Hash != b.At(fork).Hash {
		t.Fatalf("fork point %d not actually common", fork)
	}

	// A locator from a chain sharing everything resolves to the shorter tip.
	sub := chainOf(t, shared[:11])
	fork, ok = a.FindForkPoint(sub.Locator())
	if !ok || fork != 10 {
		t.Fatalf("pure-prefix fork point = %d, %v; want 10, true", fork, ok)
	}

	// No matching entries at all (different genesis): not found.
	other := chainOf(t, buildChain(t, 777, 3))
	if _, ok := a.FindForkPoint(other.Locator()); ok {
		t.Fatal("fork point found across unrelated chains")
	}
}

func TestRange(t *testing.T) {
	blocks := buildChain(t, 1, 10)
	c := chainOf(t, blocks)
	got := c.Range(3, 6)
	if len(got) != 4 || got[0].Index != 3 || got[3].Index != 6 {
		t.Fatalf("Range(3,6) wrong: %d blocks", len(got))
	}
	if got := c.Range(8, 99); len(got) != 3 || got[2].Index != 10 {
		t.Fatalf("Range beyond tip must clamp, got %d blocks", len(got))
	}
	if got := c.Range(11, 99); got != nil {
		t.Fatal("Range entirely beyond tip must be empty")
	}
	if got := c.Range(6, 3); got != nil {
		t.Fatal("inverted Range must be empty")
	}
}

func TestCheckSuffixLinksAndReplaceSuffix(t *testing.T) {
	shared := buildChain(t, 1, 12)
	c := chainOf(t, shared)

	// Competing suffix forking at height 8, longer than ours.
	m := testMiner(5)
	fork := append([]*block.Block(nil), shared[:9]...)
	for i := 0; i < 8; i++ {
		prev := fork[len(fork)-1]
		fork = append(fork, nextBlock(prev, m, prev.Timestamp+time.Minute))
	}
	suffix := fork[9:]

	fp, err := c.CheckSuffixLinks(suffix)
	if err != nil || fp != 8 {
		t.Fatalf("CheckSuffixLinks: fp=%d err=%v", fp, err)
	}

	// Rejections, none of which may mutate the chain.
	if _, err := c.CheckSuffixLinks(nil); !errors.Is(err, ErrBadSuffix) {
		t.Fatalf("empty suffix: %v", err)
	}
	if _, err := c.CheckSuffixLinks(suffix[:2]); !errors.Is(err, ErrSuffixNotLonger) {
		t.Fatalf("short suffix: %v", err)
	}
	if _, err := c.CheckSuffixLinks(suffix[1:]); !errors.Is(err, ErrBadSuffix) {
		t.Fatalf("unlinked suffix: %v", err)
	}
	gap := []*block.Block{suffix[0], suffix[2]}
	if _, err := c.CheckSuffixLinks(gap); !errors.Is(err, ErrBadSuffix) {
		t.Fatalf("gapped suffix: %v", err)
	}
	future := nextBlock(c.Tip(), m, c.Tip().Timestamp+time.Minute)
	future.Index += 5 // parent index beyond tip
	if _, err := c.CheckSuffixLinks([]*block.Block{future}); !errors.Is(err, ErrBadSuffix) {
		t.Fatalf("beyond-tip suffix: %v", err)
	}
	if _, err := c.CheckSuffixLinks([]*block.Block{shared[0]}); !errors.Is(err, ErrBadSuffix) {
		t.Fatalf("genesis-replacing suffix: %v", err)
	}

	oldTail := c.Blocks() // held across the swap: must stay intact
	oldTip := oldTail[len(oldTail)-1]

	if err := c.ReplaceSuffix(7, suffix); !errors.Is(err, ErrBadSuffix) {
		t.Fatalf("fork-point mismatch must be rejected: %v", err)
	}
	if err := c.ReplaceSuffix(8, suffix); err != nil {
		t.Fatal(err)
	}
	if c.Height() != 16 || c.Tip() != suffix[len(suffix)-1] {
		t.Fatalf("after replace: height %d", c.Height())
	}
	if c.ByHash(oldTip.Hash) != nil {
		t.Fatal("abandoned block still indexed by hash")
	}
	for _, b := range suffix {
		if c.ByHash(b.Hash) != b || c.At(b.Index) != b {
			t.Fatalf("suffix block %d not indexed", b.Index)
		}
	}
	// Common prefix untouched, and the snapshot slice kept its blocks.
	for i := uint64(0); i <= 8; i++ {
		if c.At(i) != shared[i] {
			t.Fatalf("prefix block %d replaced", i)
		}
	}
	if oldTail[len(oldTail)-1] != oldTip {
		t.Fatal("previously held Blocks() slice was mutated in place")
	}

	// A pure tip-extension suffix (fork point == height) also works.
	ext := []*block.Block{nextBlock(c.Tip(), m, c.Tip().Timestamp+time.Minute)}
	if err := c.ReplaceSuffix(c.Height(), ext); err != nil {
		t.Fatal(err)
	}
	if c.Height() != 17 {
		t.Fatalf("extension not applied: height %d", c.Height())
	}
}

package chain

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/identity"
)

func testMiner(seed int64) *identity.Identity {
	return identity.GenerateSeeded(rand.New(rand.NewSource(seed)))
}

// buildChain creates a valid chain of n blocks after genesis, alternating
// between two miners.
func buildChain(t *testing.T, seed int64, n int) []*block.Block {
	t.Helper()
	miners := []*identity.Identity{testMiner(seed), testMiner(seed + 1)}
	blocks := []*block.Block{block.Genesis(seed)}
	for i := 0; i < n; i++ {
		m := miners[i%2]
		prev := blocks[len(blocks)-1]
		blocks = append(blocks, nextBlock(prev, m, time.Duration(i+1)*time.Minute))
	}
	return blocks
}

func nextBlock(prev *block.Block, m *identity.Identity, ts time.Duration) *block.Block {
	return block.NewBuilder(prev, m.Address(), ts, 60, 0.5).Seal()
}

func TestNewChain(t *testing.T) {
	g := block.Genesis(1)
	c := New(g)
	if c.Height() != 0 || c.Len() != 1 || c.Tip() != g || c.Genesis() != g {
		t.Fatal("fresh chain state wrong")
	}
}

func TestAddExtendsTip(t *testing.T) {
	g := block.Genesis(1)
	c := New(g)
	m := testMiner(1)
	b1 := nextBlock(g, m, time.Minute)
	n, err := c.Add(b1)
	if err != nil || n != 1 {
		t.Fatalf("Add: n=%d err=%v", n, err)
	}
	if c.Height() != 1 || c.Tip() != b1 {
		t.Fatal("tip not advanced")
	}
	if c.At(1) != b1 || c.ByHash(b1.Hash) != b1 {
		t.Fatal("lookup failures")
	}
	if c.At(99) != nil || c.ByHash(block.Hash{}) != nil {
		t.Fatal("lookups for unknown blocks must return nil")
	}
}

func TestAddDuplicate(t *testing.T) {
	g := block.Genesis(1)
	c := New(g)
	b1 := nextBlock(g, testMiner(1), time.Minute)
	if _, err := c.Add(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(b1); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	if _, err := c.Add(g); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("re-adding genesis: err = %v, want ErrDuplicate", err)
	}
}

func TestAddGapBuffersAndDrains(t *testing.T) {
	g := block.Genesis(1)
	m := testMiner(1)
	b1 := nextBlock(g, m, 1*time.Minute)
	b2 := nextBlock(b1, m, 2*time.Minute)
	b3 := nextBlock(b2, m, 3*time.Minute)

	c := New(g)
	// Receive b3 first: gap, buffered.
	if _, err := c.Add(b3); !errors.Is(err, ErrGap) {
		t.Fatalf("err = %v, want ErrGap", err)
	}
	from, to, ok := c.MissingRange()
	if !ok || from != 1 || to != 2 {
		t.Fatalf("MissingRange = [%d,%d] ok=%v, want [1,2] true", from, to, ok)
	}
	// Receive b2: still a gap (missing 1).
	if _, err := c.Add(b2); !errors.Is(err, ErrGap) {
		t.Fatalf("err = %v, want ErrGap", err)
	}
	from, to, ok = c.MissingRange()
	if !ok || from != 1 || to != 1 {
		t.Fatalf("MissingRange = [%d,%d] ok=%v, want [1,1] true", from, to, ok)
	}
	// Receive b1: everything drains.
	n, err := c.Add(b1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("appended %d blocks, want 3", n)
	}
	if c.Height() != 3 || c.Pending() != 0 {
		t.Fatalf("height=%d pending=%d, want 3, 0", c.Height(), c.Pending())
	}
	if _, _, ok := c.MissingRange(); ok {
		t.Fatal("MissingRange reports gap after drain")
	}
}

func TestAddStaleFork(t *testing.T) {
	g := block.Genesis(1)
	m := testMiner(1)
	other := testMiner(2)
	b1 := nextBlock(g, m, time.Minute)
	alt1 := nextBlock(g, other, time.Minute) // competing block at height 1

	c := New(g)
	if _, err := c.Add(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(alt1); !errors.Is(err, ErrStale) {
		t.Fatalf("err = %v, want ErrStale", err)
	}
	if c.Tip() != b1 {
		t.Fatal("stale fork replaced tip")
	}
}

func TestAddRejectsInvalidBlocks(t *testing.T) {
	g := block.Genesis(1)
	m := testMiner(1)
	c := New(g)

	bad := nextBlock(g, m, time.Minute)
	bad.B = 99 // content change after seal
	if _, err := c.Add(bad); !errors.Is(err, block.ErrBadHash) {
		t.Fatalf("err = %v, want ErrBadHash", err)
	}

	// Valid self-hash but wrong linkage: build from a different genesis.
	g2 := block.Genesis(2)
	wrongParent := nextBlock(g2, m, time.Minute)
	if _, err := c.Add(wrongParent); !errors.Is(err, block.ErrBadLink) {
		t.Fatalf("err = %v, want ErrBadLink", err)
	}
	if c.Height() != 0 {
		t.Fatal("invalid block changed the chain")
	}
}

func TestGapDrainDropsForeignForkBlock(t *testing.T) {
	g := block.Genesis(1)
	m := testMiner(1)
	other := testMiner(2)
	b1 := nextBlock(g, m, time.Minute)
	// A block at height 2 building on a *different* height-1 block.
	alt1 := nextBlock(g, other, time.Minute)
	alt2 := nextBlock(alt1, other, 2*time.Minute)

	c := New(g)
	if _, err := c.Add(alt2); !errors.Is(err, ErrGap) {
		t.Fatalf("err = %v, want ErrGap", err)
	}
	n, err := c.Add(b1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("appended %d, want 1 (foreign fork block must not drain)", n)
	}
	if c.Pending() != 0 {
		t.Fatal("foreign fork block still pending after failed drain")
	}
}

func TestReplaceIfLonger(t *testing.T) {
	g := block.Genesis(1)
	m := testMiner(1)
	other := testMiner(2)

	b1 := nextBlock(g, m, time.Minute)
	c := New(g)
	if _, err := c.Add(b1); err != nil {
		t.Fatal(err)
	}

	// A longer competing fork.
	alt1 := nextBlock(g, other, time.Minute)
	alt2 := nextBlock(alt1, other, 2*time.Minute)
	longer := []*block.Block{g, alt1, alt2}

	ok, err := c.ReplaceIfLonger(longer)
	if err != nil || !ok {
		t.Fatalf("ReplaceIfLonger: ok=%v err=%v", ok, err)
	}
	if c.Height() != 2 || c.Tip() != alt2 {
		t.Fatal("chain not replaced")
	}
	if c.ByHash(b1.Hash) != nil {
		t.Fatal("old fork block still indexed")
	}

	// Equal-length candidate must be ignored.
	ok, err = c.ReplaceIfLonger([]*block.Block{g, b1, nextBlock(b1, m, 2*time.Minute)})
	if err != nil || ok {
		t.Fatalf("equal-length fork adopted: ok=%v err=%v", ok, err)
	}
}

func TestReplaceIfLongerRejectsInvalid(t *testing.T) {
	g := block.Genesis(1)
	c := New(g)
	m := testMiner(1)
	b1 := nextBlock(g, m, time.Minute)
	b2 := nextBlock(b1, m, 2*time.Minute)
	b2.MinedAfter = 999 // corrupt after seal

	if ok, err := c.ReplaceIfLonger([]*block.Block{g, b1, b2}); err == nil || ok {
		t.Fatalf("corrupt candidate adopted: ok=%v err=%v", ok, err)
	}

	// Different-genesis candidate.
	g2 := block.Genesis(99)
	c1 := nextBlock(g2, m, time.Minute)
	c2 := nextBlock(c1, m, 2*time.Minute)
	if ok, err := c.ReplaceIfLonger([]*block.Block{g2, c1, c2}); err == nil || ok {
		t.Fatalf("foreign-genesis candidate adopted: ok=%v err=%v", ok, err)
	}
}

func TestValidate(t *testing.T) {
	blocks := buildChain(t, 1, 5)
	if err := Validate(blocks); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := Validate(nil); err == nil {
		t.Fatal("empty chain validated")
	}
	if err := Validate(blocks[1:]); err == nil {
		t.Fatal("chain without genesis validated")
	}
	corrupted := append([]*block.Block(nil), blocks...)
	corrupted[3] = corrupted[3].Clone()
	corrupted[3].Timestamp += time.Hour
	if err := Validate(corrupted); err == nil {
		t.Fatal("corrupted chain validated")
	}
}

func TestLongChainGrowth(t *testing.T) {
	blocks := buildChain(t, 3, 200)
	c := New(blocks[0])
	for _, b := range blocks[1:] {
		if _, err := c.Add(b); err != nil {
			t.Fatalf("Add block %d: %v", b.Index, err)
		}
	}
	if c.Height() != 200 {
		t.Fatalf("height = %d, want 200", c.Height())
	}
}

func TestPreAppendHookVetoes(t *testing.T) {
	g := block.Genesis(1)
	m := testMiner(1)
	c := New(g)
	vetoed := errors.New("vetoed")
	c.PreAppend = func(prev, b *block.Block) error {
		if b.Index == 2 {
			return vetoed
		}
		return nil
	}
	b1 := nextBlock(g, m, time.Minute)
	b2 := nextBlock(b1, m, 2*time.Minute)
	if _, err := c.Add(b1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add(b2); !errors.Is(err, vetoed) {
		t.Fatalf("err = %v, want veto", err)
	}
	if c.Height() != 1 {
		t.Fatal("vetoed block appended")
	}
}

func TestPreAppendHookVetoesDuringDrain(t *testing.T) {
	g := block.Genesis(1)
	m := testMiner(1)
	c := New(g)
	c.PreAppend = func(prev, b *block.Block) error {
		if b.Index == 2 {
			return errors.New("no")
		}
		return nil
	}
	b1 := nextBlock(g, m, time.Minute)
	b2 := nextBlock(b1, m, 2*time.Minute)
	if _, err := c.Add(b2); !errors.Is(err, ErrGap) {
		t.Fatalf("err = %v, want gap", err)
	}
	n, err := c.Add(b1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || c.Height() != 1 {
		t.Fatalf("vetoed buffered block drained: n=%d height=%d", n, c.Height())
	}
	if c.Pending() != 0 {
		t.Fatal("vetoed block still buffered")
	}
}

func TestPostAppendHookOrderAndCoverage(t *testing.T) {
	g := block.Genesis(1)
	m := testMiner(1)
	c := New(g)
	var seen []uint64
	c.PostAppend = func(b *block.Block) { seen = append(seen, b.Index) }
	b1 := nextBlock(g, m, time.Minute)
	b2 := nextBlock(b1, m, 2*time.Minute)
	b3 := nextBlock(b2, m, 3*time.Minute)
	// Out of order: b3 and b2 buffer, b1 drains all.
	c.Add(b3)
	c.Add(b2)
	if _, err := c.Add(b1); err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3}
	if len(seen) != len(want) {
		t.Fatalf("PostAppend calls = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("PostAppend order = %v, want %v", seen, want)
		}
	}
}

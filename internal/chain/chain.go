// Package chain maintains a node's replica of the blockchain.
//
// The replica distinguishes *knowing* a block (having validated it and
// linked it into the chain) from *storing* its body, which only assigned
// nodes do (Section IV-B); storage accounting lives in the core node. The
// replica also implements the gap detection of Section III-C: a node that
// receives a block whose index exceeds its tip index + 1 knows exactly
// which indices it is missing, and buffers the out-of-order block until the
// gap is filled.
package chain

import (
	"errors"
	"fmt"

	"repro/internal/block"
)

// Validation and append errors.
var (
	// ErrDuplicate means the block is already part of the chain.
	ErrDuplicate = errors.New("chain: duplicate block")
	// ErrGap means the block's index leaves a gap after the current tip;
	// the block was buffered and the missing indices should be fetched.
	ErrGap = errors.New("chain: gap before block")
	// ErrStale means the block extends a shorter or equal fork and was
	// ignored (longest-chain rule).
	ErrStale = errors.New("chain: stale block")
)

// Chain is a single node's validated replica. It is not safe for concurrent
// use; the simulation is single-threaded by construction.
type Chain struct {
	blocks  []*block.Block
	byHash  map[block.Hash]uint64
	pending map[uint64]*block.Block

	// PreAppend, if set, can veto a block after the structural checks but
	// before it is appended; the core layer uses it for Proof-of-Stake
	// claim validation. prev is the block being extended.
	PreAppend func(prev, b *block.Block) error
	// PostAppend, if set, runs after every append (including drains and
	// whole-chain replacement); the core layer uses it to advance the
	// stake ledger.
	PostAppend func(b *block.Block)
}

// New creates a replica seeded with the genesis block.
func New(genesis *block.Block) *Chain {
	if genesis == nil || genesis.Index != 0 {
		panic("chain: genesis must have index 0")
	}
	c := &Chain{
		blocks:  []*block.Block{genesis},
		byHash:  map[block.Hash]uint64{genesis.Hash: 0},
		pending: make(map[uint64]*block.Block),
	}
	return c
}

// Height returns the tip index (genesis = 0).
func (c *Chain) Height() uint64 { return c.blocks[len(c.blocks)-1].Index }

// Len returns the number of blocks including genesis.
func (c *Chain) Len() int { return len(c.blocks) }

// Tip returns the latest block.
func (c *Chain) Tip() *block.Block { return c.blocks[len(c.blocks)-1] }

// Genesis returns block 0.
func (c *Chain) Genesis() *block.Block { return c.blocks[0] }

// At returns the block at the given index, or nil if unknown.
func (c *Chain) At(index uint64) *block.Block {
	if index >= uint64(len(c.blocks)) {
		return nil
	}
	return c.blocks[index]
}

// ByHash returns the block with the given hash, or nil.
func (c *Chain) ByHash(h block.Hash) *block.Block {
	if i, ok := c.byHash[h]; ok {
		return c.blocks[i]
	}
	return nil
}

// Blocks returns the underlying slice (do not modify).
func (c *Chain) Blocks() []*block.Block { return c.blocks }

// Pending returns the number of buffered out-of-order blocks.
func (c *Chain) Pending() int { return len(c.pending) }

// MissingRange returns the indices the replica needs before the buffered
// blocks connect, as a [from, to] inclusive range. ok is false when nothing
// is pending.
func (c *Chain) MissingRange() (from, to uint64, ok bool) {
	if len(c.pending) == 0 {
		return 0, 0, false
	}
	lowest := uint64(1<<63 - 1)
	for idx := range c.pending {
		if idx < lowest {
			lowest = idx
		}
	}
	return c.Height() + 1, lowest - 1, true
}

// Add validates and appends a block. Behaviour by case:
//
//   - extends the tip: validated and appended; buffered successors are then
//     drained. Returns the number of blocks actually appended.
//   - already known: ErrDuplicate.
//   - index beyond tip+1: buffered, returns ErrGap (caller should fetch
//     c.MissingRange()).
//   - index at or below tip with a different hash: ErrStale (fork shorter
//     than or equal to ours; longest-chain keeps ours). Use ReplaceIfLonger
//     to adopt longer forks wholesale.
//
// Invalid blocks (bad hash, bad link, bad signatures) return the underlying
// validation error and change nothing.
func (c *Chain) Add(b *block.Block) (appended int, err error) {
	if _, ok := c.byHash[b.Hash]; ok {
		return 0, ErrDuplicate
	}
	tip := c.Tip()
	switch {
	case b.Index == tip.Index+1:
		if err := b.VerifySelf(); err != nil {
			return 0, err
		}
		if err := b.VerifyLink(tip); err != nil {
			return 0, err
		}
		if c.PreAppend != nil {
			if err := c.PreAppend(tip, b); err != nil {
				return 0, err
			}
		}
		c.append(b)
		return 1 + c.drainPending(), nil
	case b.Index > tip.Index+1:
		if err := b.VerifySelf(); err != nil {
			return 0, err
		}
		c.pending[b.Index] = b
		return 0, fmt.Errorf("%w: have %d, got %d", ErrGap, tip.Index, b.Index)
	default:
		return 0, fmt.Errorf("%w: index %d at height %d", ErrStale, b.Index, tip.Index)
	}
}

func (c *Chain) append(b *block.Block) {
	c.blocks = append(c.blocks, b)
	c.byHash[b.Hash] = b.Index
	if c.PostAppend != nil {
		c.PostAppend(b)
	}
}

// drainPending appends any buffered blocks that now connect.
func (c *Chain) drainPending() int {
	n := 0
	for {
		next, ok := c.pending[c.Height()+1]
		if !ok {
			return n
		}
		if err := next.VerifyLink(c.Tip()); err != nil {
			// The buffered block belongs to a different fork; drop it.
			delete(c.pending, next.Index)
			return n
		}
		if c.PreAppend != nil {
			if err := c.PreAppend(c.Tip(), next); err != nil {
				delete(c.pending, next.Index)
				return n
			}
		}
		delete(c.pending, next.Index)
		c.append(next)
		n++
	}
}

// AppendTrusted appends a block verifying only the link to the current
// tip (index, previous hash, timestamp monotonicity, PoSHash chaining),
// skipping the content re-verification of VerifySelf. It exists for
// replaying locally-persisted blocks whose content integrity the store
// has already established (WAL record CRC plus hash checks); network
// blocks must go through Add. PreAppend and PostAppend hooks run as for a
// normal append.
func (c *Chain) AppendTrusted(b *block.Block) error {
	if _, ok := c.byHash[b.Hash]; ok {
		return ErrDuplicate
	}
	tip := c.Tip()
	if err := b.VerifyLink(tip); err != nil {
		return err
	}
	if c.PreAppend != nil {
		if err := c.PreAppend(tip, b); err != nil {
			return err
		}
	}
	c.append(b)
	return nil
}

// ReplaceIfLonger adopts a full candidate chain if it is strictly longer
// than the local one and fully valid (the longest-chain rule for fork
// resolution). It reports whether the replacement happened. PreAppend and
// PostAppend hooks do NOT run; callers that track derived state (stake
// ledger, storage view) must rebuild it after a replacement — they are the
// only ones who can validate candidate PoS claims against a replayed
// ledger first.
func (c *Chain) ReplaceIfLonger(candidate []*block.Block) (bool, error) {
	if len(candidate) <= len(c.blocks) {
		return false, nil
	}
	if err := Validate(candidate); err != nil {
		return false, fmt.Errorf("chain: reject candidate: %w", err)
	}
	if candidate[0].Hash != c.blocks[0].Hash {
		return false, errors.New("chain: candidate has different genesis")
	}
	blocks := make([]*block.Block, len(candidate))
	byHash := make(map[block.Hash]uint64, len(candidate))
	copy(blocks, candidate)
	for _, b := range blocks {
		byHash[b.Hash] = b.Index
	}
	c.blocks = blocks
	c.byHash = byHash
	c.pending = make(map[uint64]*block.Block)
	return true, nil
}

// Validate checks a full chain from genesis: indices, hashes, links and
// metadata signatures.
func Validate(blocks []*block.Block) error {
	if len(blocks) == 0 {
		return errors.New("chain: empty")
	}
	if blocks[0].Index != 0 {
		return errors.New("chain: first block is not genesis")
	}
	for i, b := range blocks {
		if err := b.VerifySelf(); err != nil {
			return fmt.Errorf("chain: block %d: %w", i, err)
		}
		if i > 0 {
			if err := b.VerifyLink(blocks[i-1]); err != nil {
				return fmt.Errorf("chain: block %d: %w", i, err)
			}
		}
	}
	return nil
}

// Package chain maintains a node's replica of the blockchain.
//
// The replica distinguishes *knowing* a block (having validated it and
// linked it into the chain) from *storing* its body, which only assigned
// nodes do (Section IV-B); storage accounting lives in the core node. The
// replica also implements the gap detection of Section III-C: a node that
// receives a block whose index exceeds its tip index + 1 knows exactly
// which indices it is missing, and buffers the out-of-order block until the
// gap is filled.
//
// Since the finite-lifetime refactor (DESIGN.md §14) the replica separates
// the *header spine* — one fixed-size Header per known height, enough to
// answer locators, find fork points and enforce checkpoint finality — from
// the *body window*, the suffix of full blocks above the prune horizon.
// Prune discards bodies below a height; the spine is never pruned except
// by bootstrap construction, which anchors the replica at a snapshot block
// and leaves heights below it unknown (other than genesis).
package chain

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/block"
	"repro/internal/identity"
)

// Validation and append errors.
var (
	// ErrDuplicate means the block is already part of the chain.
	ErrDuplicate = errors.New("chain: duplicate block")
	// ErrGap means the block's index leaves a gap after the current tip;
	// the block was buffered and the missing indices should be fetched.
	ErrGap = errors.New("chain: gap before block")
	// ErrStale means the block extends a shorter or equal fork and was
	// ignored (longest-chain rule).
	ErrStale = errors.New("chain: stale block")
	// ErrPrunedBody means the height is part of the chain but its body has
	// been pruned away (only the header remains).
	ErrPrunedBody = errors.New("chain: body pruned")
	// ErrUnknownHeight means the height is beyond the tip (or, on a
	// bootstrapped replica, below the anchor).
	ErrUnknownHeight = errors.New("chain: unknown height")
)

// Header is the fixed-size spine entry kept for every known height even
// after the body is pruned: enough to serve locators, detect fork points,
// and link-verify a child block (index, hashes, timestamp monotonicity and
// the eq. 7 PoSHash chain all come from these fields).
type Header struct {
	Index     uint64
	Hash      block.Hash
	PrevHash  block.Hash
	Miner     identity.Address
	Timestamp time.Duration
	PoSHash   block.Hash
}

// HeaderOf extracts the spine header of a block.
func HeaderOf(b *block.Block) Header {
	return Header{
		Index:     b.Index,
		Hash:      b.Hash,
		PrevHash:  b.PrevHash,
		Miner:     b.Miner,
		Timestamp: b.Timestamp,
		PoSHash:   b.PoSHash,
	}
}

// VerifyLink checks that child correctly extends this header — the same
// checks as block.VerifyLink, usable when the parent body is pruned.
func (h Header) VerifyLink(child *block.Block) error {
	stub := &block.Block{
		Index:     h.Index,
		Hash:      h.Hash,
		Timestamp: h.Timestamp,
		PoSHash:   h.PoSHash,
	}
	return child.VerifyLink(stub)
}

// Chain is a single node's validated replica. It is not safe for concurrent
// use; the simulation is single-threaded by construction.
//
// Invariants: headers covers the contiguous height range [hdrBase, tip] and
// is never empty; bodies covers [bodyBase, tip] with bodyBase >= hdrBase, so
// the tip body is always present. genesis is retained even when pruned out
// of the body window. byHash indexes every known header plus genesis.
type Chain struct {
	genesis  *block.Block
	headers  []Header
	hdrBase  uint64
	bodies   []*block.Block
	bodyBase uint64
	byHash   map[block.Hash]uint64
	pending  map[uint64]*block.Block

	// PreAppend, if set, can veto a block after the structural checks but
	// before it is appended; the core layer uses it for Proof-of-Stake
	// claim validation. prev is the block being extended.
	PreAppend func(prev, b *block.Block) error
	// PostAppend, if set, runs after every append (including drains and
	// whole-chain replacement); the core layer uses it to advance the
	// stake ledger.
	PostAppend func(b *block.Block)
}

// New creates a replica seeded with the genesis block.
func New(genesis *block.Block) *Chain {
	if genesis == nil || genesis.Index != 0 {
		panic("chain: genesis must have index 0")
	}
	c := &Chain{
		genesis: genesis,
		headers: []Header{HeaderOf(genesis)},
		bodies:  []*block.Block{genesis},
		byHash:  map[block.Hash]uint64{genesis.Hash: 0},
		pending: make(map[uint64]*block.Block),
	}
	return c
}

// NewBootstrapped creates a replica anchored at a snapshot block instead of
// genesis (DESIGN.md §14): the spine holds only genesis and the anchor, and
// heights in between are unknown to this replica. The caller is responsible
// for having content-verified the anchor (engine.BootstrapFromSnapshot
// does); this constructor checks only structural facts.
func NewBootstrapped(genesis, anchor *block.Block) (*Chain, error) {
	if genesis == nil || genesis.Index != 0 {
		return nil, errors.New("chain: genesis must have index 0")
	}
	if anchor == nil || anchor.Index == 0 {
		return nil, errors.New("chain: bootstrap anchor must be above genesis")
	}
	c := &Chain{
		genesis:  genesis,
		headers:  []Header{HeaderOf(anchor)},
		hdrBase:  anchor.Index,
		bodies:   []*block.Block{anchor},
		bodyBase: anchor.Index,
		byHash: map[block.Hash]uint64{
			genesis.Hash: 0,
			anchor.Hash:  anchor.Index,
		},
		pending: make(map[uint64]*block.Block),
	}
	return c, nil
}

// Height returns the tip index (genesis = 0).
func (c *Chain) Height() uint64 { return c.headers[len(c.headers)-1].Index }

// Len returns the logical chain length including genesis and any pruned
// heights.
func (c *Chain) Len() int { return int(c.Height()) + 1 }

// BodyBase returns the lowest height whose body is retained. 0 means the
// replica is unpruned.
func (c *Chain) BodyBase() uint64 { return c.bodyBase }

// BodyCount returns the number of retained bodies (the body window size).
func (c *Chain) BodyCount() int { return len(c.bodies) }

// HeaderBase returns the lowest height on the header spine (0 unless the
// replica was bootstrapped from a snapshot).
func (c *Chain) HeaderBase() uint64 { return c.hdrBase }

// Tip returns the latest block; its body is always retained.
func (c *Chain) Tip() *block.Block { return c.bodies[len(c.bodies)-1] }

// Genesis returns block 0, which is retained even when pruned out of the
// body window.
func (c *Chain) Genesis() *block.Block { return c.genesis }

// At returns the block at the given index, or nil if its body is not
// retained (beyond the tip, pruned, or below a bootstrap anchor). Use Body
// when the caller needs to distinguish those cases.
func (c *Chain) At(index uint64) *block.Block {
	b, err := c.Body(index)
	if err != nil {
		return nil
	}
	return b
}

// Body returns the block body at the given index, ErrPrunedBody when the
// height is part of the chain but only its header remains, and
// ErrUnknownHeight when the height is beyond the tip.
func (c *Chain) Body(index uint64) (*block.Block, error) {
	if index > c.Height() {
		return nil, fmt.Errorf("%w: %d beyond tip %d", ErrUnknownHeight, index, c.Height())
	}
	if index == 0 && c.bodyBase > 0 {
		return c.genesis, nil
	}
	if index < c.bodyBase {
		return nil, fmt.Errorf("%w: height %d below body window base %d", ErrPrunedBody, index, c.bodyBase)
	}
	return c.bodies[index-c.bodyBase], nil
}

// HeaderAt returns the spine header at the given index. ok is false for
// heights beyond the tip or, on a bootstrapped replica, between genesis and
// the anchor.
func (c *Chain) HeaderAt(index uint64) (Header, bool) {
	if index == 0 {
		return HeaderOf(c.genesis), true
	}
	if index < c.hdrBase || index > c.Height() {
		return Header{}, false
	}
	return c.headers[index-c.hdrBase], true
}

// Headers returns a copy of the spine headers in [from, to], clamped to
// what the replica holds (genesis is excluded: it is not part of the
// headers slice on a bootstrapped replica).
func (c *Chain) Headers(from, to uint64) []Header {
	if from < c.hdrBase {
		from = c.hdrBase
	}
	if to > c.Height() {
		to = c.Height()
	}
	if from > to {
		return nil
	}
	out := make([]Header, to-from+1)
	copy(out, c.headers[from-c.hdrBase:to-c.hdrBase+1])
	return out
}

// BackfillSpine extends the header spine downward, e.g. from a persisted
// spine file after a snapshot restore. hdrs must end exactly at
// HeaderBase()-1, be contiguously indexed, internally hash-linked, and link
// into the existing spine (and into genesis if it reaches height 1).
func (c *Chain) BackfillSpine(hdrs []Header) error {
	if len(hdrs) == 0 {
		return nil
	}
	last := hdrs[len(hdrs)-1]
	if c.hdrBase == 0 || last.Index != c.hdrBase-1 {
		return fmt.Errorf("chain: backfill ends at %d, spine base is %d", last.Index, c.hdrBase)
	}
	if last.Hash != c.headers[0].PrevHash {
		return errors.New("chain: backfill does not link into spine")
	}
	for i, h := range hdrs {
		if h.Index != hdrs[0].Index+uint64(i) {
			return fmt.Errorf("chain: backfill non-contiguous at offset %d", i)
		}
		if i > 0 && h.PrevHash != hdrs[i-1].Hash {
			return fmt.Errorf("chain: backfill hash-link broken at height %d", h.Index)
		}
	}
	if hdrs[0].Index == 1 && hdrs[0].PrevHash != c.genesis.Hash {
		return errors.New("chain: backfill does not link to genesis")
	}
	if hdrs[0].Index == 0 {
		return errors.New("chain: backfill must not include genesis")
	}
	merged := make([]Header, 0, len(hdrs)+len(c.headers))
	merged = append(merged, hdrs...)
	merged = append(merged, c.headers...)
	c.headers = merged
	c.hdrBase = hdrs[0].Index
	for _, h := range hdrs {
		c.byHash[h.Hash] = h.Index
	}
	return nil
}

// Prune discards block bodies below the given height (exclusive), keeping
// the header spine intact. The tip body is always retained; genesis is
// retained separately and stays reachable via Genesis and Body(0). Returns
// the number of bodies discarded.
func (c *Chain) Prune(below uint64) int {
	if below > c.Height() {
		below = c.Height()
	}
	if below <= c.bodyBase {
		return 0
	}
	n := int(below - c.bodyBase)
	// Fresh backing array so the discarded prefix becomes collectable even
	// while callers hold slices from earlier Blocks() calls.
	kept := make([]*block.Block, len(c.bodies)-n)
	copy(kept, c.bodies[n:])
	c.bodies = kept
	c.bodyBase = below
	return n
}

// ByHash returns the block with the given hash, or nil when unknown or
// when only its header remains.
func (c *Chain) ByHash(h block.Hash) *block.Block {
	if i, ok := c.byHash[h]; ok {
		return c.At(i)
	}
	return nil
}

// HasHash reports whether the hash is on the chain (header or body).
func (c *Chain) HasHash(h block.Hash) bool {
	_, ok := c.byHash[h]
	return ok
}

// Blocks returns a copy of the retained body window, lowest height first.
// The first element is genesis only when BodyBase() == 0; use BodyBase to
// map slice offsets to heights on a pruned replica.
func (c *Chain) Blocks() []*block.Block {
	out := make([]*block.Block, len(c.bodies))
	copy(out, c.bodies)
	return out
}

// Pending returns the number of buffered out-of-order blocks.
func (c *Chain) Pending() int { return len(c.pending) }

// MissingRange returns the indices the replica needs before the buffered
// blocks connect, as a [from, to] inclusive range. ok is false when nothing
// is pending.
func (c *Chain) MissingRange() (from, to uint64, ok bool) {
	if len(c.pending) == 0 {
		return 0, 0, false
	}
	lowest := uint64(1<<63 - 1)
	for idx := range c.pending {
		if idx < lowest {
			lowest = idx
		}
	}
	return c.Height() + 1, lowest - 1, true
}

// Add validates and appends a block. Behaviour by case:
//
//   - extends the tip: validated and appended; buffered successors are then
//     drained. Returns the number of blocks actually appended.
//   - already known: ErrDuplicate.
//   - index beyond tip+1: buffered, returns ErrGap (caller should fetch
//     c.MissingRange()).
//   - index at or below tip with a different hash: ErrStale (fork shorter
//     than or equal to ours; longest-chain keeps ours). Use ReplaceIfLonger
//     to adopt longer forks wholesale.
//
// Invalid blocks (bad hash, bad link, bad signatures) return the underlying
// validation error and change nothing.
func (c *Chain) Add(b *block.Block) (appended int, err error) {
	if _, ok := c.byHash[b.Hash]; ok {
		return 0, ErrDuplicate
	}
	tip := c.Tip()
	switch {
	case b.Index == tip.Index+1:
		if err := b.VerifySelf(); err != nil {
			return 0, err
		}
		if err := b.VerifyLink(tip); err != nil {
			return 0, err
		}
		if c.PreAppend != nil {
			if err := c.PreAppend(tip, b); err != nil {
				return 0, err
			}
		}
		c.append(b)
		return 1 + c.drainPending(), nil
	case b.Index > tip.Index+1:
		if err := b.VerifySelf(); err != nil {
			return 0, err
		}
		c.pending[b.Index] = b
		return 0, fmt.Errorf("%w: have %d, got %d", ErrGap, tip.Index, b.Index)
	default:
		return 0, fmt.Errorf("%w: index %d at height %d", ErrStale, b.Index, tip.Index)
	}
}

func (c *Chain) append(b *block.Block) {
	c.headers = append(c.headers, HeaderOf(b))
	c.bodies = append(c.bodies, b)
	c.byHash[b.Hash] = b.Index
	if c.PostAppend != nil {
		c.PostAppend(b)
	}
}

// drainPending appends any buffered blocks that now connect.
func (c *Chain) drainPending() int {
	n := 0
	for {
		next, ok := c.pending[c.Height()+1]
		if !ok {
			return n
		}
		if err := next.VerifyLink(c.Tip()); err != nil {
			// The buffered block belongs to a different fork; drop it.
			delete(c.pending, next.Index)
			return n
		}
		if c.PreAppend != nil {
			if err := c.PreAppend(c.Tip(), next); err != nil {
				delete(c.pending, next.Index)
				return n
			}
		}
		delete(c.pending, next.Index)
		c.append(next)
		n++
	}
}

// AppendTrusted appends a block verifying only the link to the current
// tip (index, previous hash, timestamp monotonicity, PoSHash chaining),
// skipping the content re-verification of VerifySelf. It exists for
// replaying locally-persisted blocks whose content integrity the store
// has already established (WAL record CRC plus hash checks); network
// blocks must go through Add. PreAppend and PostAppend hooks run as for a
// normal append.
func (c *Chain) AppendTrusted(b *block.Block) error {
	if _, ok := c.byHash[b.Hash]; ok {
		return ErrDuplicate
	}
	tip := c.Tip()
	if err := b.VerifyLink(tip); err != nil {
		return err
	}
	if c.PreAppend != nil {
		if err := c.PreAppend(tip, b); err != nil {
			return err
		}
	}
	c.append(b)
	return nil
}

// ReplaceIfLonger adopts a full candidate chain if it is strictly longer
// than the local one and fully valid (the longest-chain rule for fork
// resolution). It reports whether the replacement happened. The replica
// becomes fully unpruned. PreAppend and PostAppend hooks do NOT run;
// callers that track derived state (stake ledger, storage view) must
// rebuild it after a replacement — they are the only ones who can validate
// candidate PoS claims against a replayed ledger first.
func (c *Chain) ReplaceIfLonger(candidate []*block.Block) (bool, error) {
	if len(candidate) <= c.Len() {
		return false, nil
	}
	if err := Validate(candidate); err != nil {
		return false, fmt.Errorf("chain: reject candidate: %w", err)
	}
	if candidate[0].Hash != c.genesis.Hash {
		return false, errors.New("chain: candidate has different genesis")
	}
	bodies := make([]*block.Block, len(candidate))
	headers := make([]Header, len(candidate))
	byHash := make(map[block.Hash]uint64, len(candidate))
	copy(bodies, candidate)
	for i, b := range bodies {
		headers[i] = HeaderOf(b)
		byHash[b.Hash] = b.Index
	}
	c.genesis = bodies[0]
	c.bodies = bodies
	c.bodyBase = 0
	c.headers = headers
	c.hdrBase = 0
	c.byHash = byHash
	c.pending = make(map[uint64]*block.Block)
	return true, nil
}

// Validate checks a full chain from genesis: indices, hashes, links and
// metadata signatures.
func Validate(blocks []*block.Block) error {
	if len(blocks) == 0 {
		return errors.New("chain: empty")
	}
	if blocks[0].Index != 0 {
		return errors.New("chain: first block is not genesis")
	}
	for i, b := range blocks {
		if err := b.VerifySelf(); err != nil {
			return fmt.Errorf("chain: block %d: %w", i, err)
		}
		if i > 0 {
			if err := b.VerifyLink(blocks[i-1]); err != nil {
				return fmt.Errorf("chain: block %d: %w", i, err)
			}
		}
	}
	return nil
}

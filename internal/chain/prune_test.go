package chain

import (
	"errors"
	"testing"
	"time"
)

func TestPruneDiscardsBodiesKeepsSpine(t *testing.T) {
	blocks := buildChain(t, 1, 20)
	c := New(blocks[0])
	for _, b := range blocks[1:] {
		if _, err := c.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Prune(10); n != 10 {
		t.Fatalf("Prune(10) discarded %d bodies, want 10", n)
	}
	if c.BodyBase() != 10 || c.BodyCount() != 11 {
		t.Fatalf("window base=%d count=%d, want 10/11", c.BodyBase(), c.BodyCount())
	}
	if c.Height() != 20 || c.Len() != 21 || c.Tip() != blocks[20] {
		t.Fatal("logical chain shape changed by pruning")
	}

	// Below the window: headers answer, bodies do not.
	for h := uint64(1); h < 10; h++ {
		hdr, ok := c.HeaderAt(h)
		if !ok || hdr.Hash != blocks[h].Hash {
			t.Fatalf("header %d lost or wrong after prune", h)
		}
		if c.At(h) != nil {
			t.Fatalf("pruned body %d still returned", h)
		}
		if _, err := c.Body(h); !errors.Is(err, ErrPrunedBody) {
			t.Fatalf("Body(%d) err = %v, want ErrPrunedBody", h, err)
		}
		if c.ByHash(blocks[h].Hash) != nil {
			t.Fatalf("ByHash returned a pruned body at %d", h)
		}
		if !c.HasHash(blocks[h].Hash) {
			t.Fatalf("HasHash forgot pruned height %d", h)
		}
	}
	// Genesis stays reachable even though its body left the window.
	if g, err := c.Body(0); err != nil || g != blocks[0] {
		t.Fatalf("genesis unreachable after prune: %v", err)
	}
	if c.Genesis() != blocks[0] {
		t.Fatal("Genesis() changed")
	}
	// In the window everything still answers.
	for h := uint64(10); h <= 20; h++ {
		if c.At(h) != blocks[h] {
			t.Fatalf("retained body %d wrong", h)
		}
	}
	if _, err := c.Body(21); !errors.Is(err, ErrUnknownHeight) {
		t.Fatalf("Body beyond tip err = %v, want ErrUnknownHeight", err)
	}

	// Blocks() maps offsets through BodyBase on a pruned replica.
	bs := c.Blocks()
	if len(bs) != 11 || bs[0].Index != 10 {
		t.Fatalf("Blocks() window wrong: len=%d first=%d", len(bs), bs[0].Index)
	}

	// The chain keeps extending normally after a prune.
	b21 := nextBlock(blocks[20], testMiner(1), 21*time.Minute)
	if _, err := c.Add(b21); err != nil {
		t.Fatalf("append after prune: %v", err)
	}
	if c.Tip() != b21 {
		t.Fatal("tip not advanced after prune")
	}
}

func TestPruneClamping(t *testing.T) {
	blocks := buildChain(t, 2, 8)
	c := New(blocks[0])
	for _, b := range blocks[1:] {
		if _, err := c.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	if n := c.Prune(5); n != 5 {
		t.Fatalf("first prune discarded %d, want 5", n)
	}
	// At or below the base: no-op.
	if n := c.Prune(5); n != 0 {
		t.Fatalf("re-prune at base discarded %d", n)
	}
	if n := c.Prune(3); n != 0 {
		t.Fatalf("prune below base discarded %d", n)
	}
	// Beyond the tip: clamps so the tip body survives.
	if n := c.Prune(99); n != 3 {
		t.Fatalf("over-prune discarded %d, want 3", n)
	}
	if c.BodyBase() != 8 || c.BodyCount() != 1 || c.Tip() != blocks[8] {
		t.Fatal("over-prune must retain exactly the tip body")
	}
}

// TestBlocksReturnsCopy is the aliasing regression: mutating the slice
// returned by Blocks() must not corrupt the replica's own window.
func TestBlocksReturnsCopy(t *testing.T) {
	blocks := buildChain(t, 3, 4)
	c := New(blocks[0])
	for _, b := range blocks[1:] {
		if _, err := c.Add(b); err != nil {
			t.Fatal(err)
		}
	}
	got := c.Blocks()
	for i := range got {
		got[i] = nil
	}
	_ = append(got[:0], nil)
	for h := uint64(0); h <= 4; h++ {
		if c.At(h) != blocks[h] {
			t.Fatalf("caller mutation corrupted body %d", h)
		}
	}
	if c.Tip() != blocks[4] {
		t.Fatal("caller mutation corrupted the tip")
	}
}

func TestNewBootstrapped(t *testing.T) {
	blocks := buildChain(t, 4, 10)
	anchor := blocks[6]
	c, err := NewBootstrapped(blocks[0], anchor)
	if err != nil {
		t.Fatal(err)
	}
	if c.Height() != 6 || c.Tip() != anchor || c.BodyBase() != 6 || c.HeaderBase() != 6 {
		t.Fatal("bootstrapped replica shape wrong")
	}
	// Between genesis and the anchor nothing is known.
	if _, ok := c.HeaderAt(3); ok {
		t.Fatal("pre-anchor header should be unknown")
	}
	if _, err := c.Body(3); !errors.Is(err, ErrPrunedBody) {
		t.Fatalf("pre-anchor Body err = %v, want ErrPrunedBody", err)
	}
	if g, err := c.Body(0); err != nil || g != blocks[0] {
		t.Fatal("genesis must answer on a bootstrapped replica")
	}
	// The suffix appends normally above the anchor.
	for _, b := range blocks[7:] {
		if _, err := c.Add(b); err != nil {
			t.Fatalf("suffix block %d: %v", b.Index, err)
		}
	}
	if c.Height() != 10 || c.Tip() != blocks[10] {
		t.Fatal("suffix not adopted")
	}

	// Constructor rejections.
	if _, err := NewBootstrapped(nil, anchor); err == nil {
		t.Fatal("nil genesis accepted")
	}
	if _, err := NewBootstrapped(blocks[0], blocks[0]); err == nil {
		t.Fatal("genesis as anchor accepted")
	}
}

func TestBackfillSpine(t *testing.T) {
	blocks := buildChain(t, 5, 10)
	mkSpine := func(from, to uint64) []Header {
		var hs []Header
		for h := from; h <= to; h++ {
			hs = append(hs, HeaderOf(blocks[h]))
		}
		return hs
	}
	fresh := func(t *testing.T) *Chain {
		c, err := NewBootstrapped(blocks[0], blocks[6])
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	t.Run("full backfill", func(t *testing.T) {
		c := fresh(t)
		if err := c.BackfillSpine(mkSpine(1, 5)); err != nil {
			t.Fatal(err)
		}
		if c.HeaderBase() != 1 {
			t.Fatalf("header base %d after backfill, want 1", c.HeaderBase())
		}
		for h := uint64(1); h <= 5; h++ {
			hdr, ok := c.HeaderAt(h)
			if !ok || hdr.Hash != blocks[h].Hash {
				t.Fatalf("backfilled header %d wrong", h)
			}
			if !c.HasHash(blocks[h].Hash) {
				t.Fatalf("backfilled hash %d not indexed", h)
			}
			if _, err := c.Body(h); !errors.Is(err, ErrPrunedBody) {
				t.Fatalf("backfill must not invent bodies at %d", h)
			}
		}
	})
	t.Run("partial backfill then completion", func(t *testing.T) {
		c := fresh(t)
		if err := c.BackfillSpine(mkSpine(4, 5)); err != nil {
			t.Fatal(err)
		}
		if c.HeaderBase() != 4 {
			t.Fatalf("header base %d, want 4", c.HeaderBase())
		}
		if err := c.BackfillSpine(mkSpine(1, 3)); err != nil {
			t.Fatal(err)
		}
		if c.HeaderBase() != 1 {
			t.Fatalf("header base %d after completion, want 1", c.HeaderBase())
		}
	})
	t.Run("rejections", func(t *testing.T) {
		c := fresh(t)
		if err := c.BackfillSpine(nil); err != nil {
			t.Fatal("empty backfill must be a no-op")
		}
		if err := c.BackfillSpine(mkSpine(1, 4)); err == nil {
			t.Fatal("gap to spine base accepted")
		}
		wrongLink := mkSpine(1, 5)
		wrongLink[2].Hash = blocks[9].Hash
		if err := c.BackfillSpine(wrongLink); err == nil {
			t.Fatal("broken hash link accepted")
		}
		gapped := append(mkSpine(1, 2), mkSpine(4, 5)...)
		if err := c.BackfillSpine(gapped); err == nil {
			t.Fatal("non-contiguous backfill accepted")
		}
		withGenesis := append([]Header{HeaderOf(blocks[0])}, mkSpine(1, 5)...)
		if err := c.BackfillSpine(withGenesis); err == nil {
			t.Fatal("backfill including genesis accepted")
		}
		foreign := mkSpine(1, 5)
		foreign[0].PrevHash = blocks[3].Hash
		if err := c.BackfillSpine(foreign); err == nil {
			t.Fatal("backfill not linking to genesis accepted")
		}
		// A full chain replica (hdrBase 0) cannot backfill further down.
		full := New(blocks[0])
		if err := full.BackfillSpine(mkSpine(1, 5)); err == nil {
			t.Fatal("backfill below genesis accepted")
		}
	})
}

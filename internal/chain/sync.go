package chain

import (
	"errors"
	"fmt"

	"repro/internal/block"
)

// This file holds the replica-side primitives of the incremental sync
// protocol (DESIGN.md §10): block locators for fork-point discovery,
// bounded block ranges for batched transfer, and suffix replacement for
// adopting a fork without rebuilding the whole replica.

// LocatorEntry is one (height, hash) sample of a block locator.
type LocatorEntry struct {
	Height uint64
	Hash   block.Hash
}

// MaxLocatorLen bounds a locator: 12 dense tip samples plus one sample
// per power-of-two step back to genesis covers any chain that fits in a
// uint64 height within this many entries.
const MaxLocatorLen = 12 + 64 + 1

// Locator samples the replica's chain tip-first: the 12 most recent
// blocks densely, then exponentially sparser heights (step doubling each
// entry), always ending with genesis. A peer intersects the locator with
// its own chain to find the highest common ancestor without either side
// shipping full chains — the standard block-locator construction.
func (c *Chain) Locator() []LocatorEntry {
	out := make([]LocatorEntry, 0, 16)
	h := c.Height()
	step := uint64(1)
	for {
		out = append(out, LocatorEntry{Height: h, Hash: c.blocks[h].Hash})
		if h == 0 {
			return out
		}
		if len(out) >= 12 {
			step *= 2
		}
		if h <= step {
			h = 0
		} else {
			h -= step
		}
	}
}

// FindForkPoint returns the height of the highest locator entry that
// matches this replica's chain. ok is false when nothing matches — which
// cannot happen between peers sharing a genesis block, since every
// locator ends with genesis.
func (c *Chain) FindForkPoint(loc []LocatorEntry) (uint64, bool) {
	best := uint64(0)
	found := false
	for _, e := range loc {
		if e.Height >= uint64(len(c.blocks)) {
			continue
		}
		if c.blocks[e.Height].Hash == e.Hash {
			if !found || e.Height > best {
				best = e.Height
				found = true
			}
		}
	}
	return best, found
}

// Range returns the blocks with indices in [from, to], clamped to what
// the replica holds. An empty slice means the range is entirely beyond
// the tip (or inverted).
func (c *Chain) Range(from, to uint64) []*block.Block {
	if to > c.Height() {
		to = c.Height()
	}
	if from > to {
		return nil
	}
	out := make([]*block.Block, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, c.blocks[i])
	}
	return out
}

// Suffix replacement errors.
var (
	// ErrBadSuffix means the candidate suffix is structurally unusable:
	// empty, non-contiguous, or not linked to a block this replica holds.
	ErrBadSuffix = errors.New("chain: bad suffix")
	// ErrSuffixNotLonger means fork point + suffix does not beat the
	// current height (longest-chain rule keeps ours).
	ErrSuffixNotLonger = errors.New("chain: suffix does not extend past current tip")
)

// CheckSuffixLinks verifies a candidate suffix's spine against this
// replica without touching any state: the suffix must be non-empty,
// contiguously indexed, linked (prev hash, timestamp, PoSHash chain) to
// the replica's block at suffix[0].Index-1, internally linked, and must
// reach strictly past the current tip. It does NOT run VerifySelf — the
// caller is expected to content-verify blocks (possibly in parallel)
// before committing. On success it returns the fork-point height.
func (c *Chain) CheckSuffixLinks(suffix []*block.Block) (forkPoint uint64, err error) {
	if len(suffix) == 0 {
		return 0, fmt.Errorf("%w: empty", ErrBadSuffix)
	}
	first := suffix[0]
	if first.Index == 0 {
		return 0, fmt.Errorf("%w: cannot replace genesis", ErrBadSuffix)
	}
	forkPoint = first.Index - 1
	parent := c.At(forkPoint)
	if parent == nil {
		return 0, fmt.Errorf("%w: fork point %d beyond tip %d", ErrBadSuffix, forkPoint, c.Height())
	}
	prev := parent
	for i, b := range suffix {
		if b.Index != forkPoint+1+uint64(i) {
			return 0, fmt.Errorf("%w: non-contiguous index %d at offset %d", ErrBadSuffix, b.Index, i)
		}
		if err := b.VerifyLink(prev); err != nil {
			return 0, fmt.Errorf("%w: offset %d: %v", ErrBadSuffix, i, err)
		}
		prev = b
	}
	if forkPoint+uint64(len(suffix)) <= c.Height() {
		return 0, fmt.Errorf("%w: reaches %d, tip is %d", ErrSuffixNotLonger, forkPoint+uint64(len(suffix)), c.Height())
	}
	return forkPoint, nil
}

// ReplaceSuffix swaps everything above forkPoint for the given suffix.
// The caller must have validated the suffix (CheckSuffixLinks plus
// content verification and any consensus-level claim checks): this method
// re-checks only the cheap structural facts and otherwise mutates
// blindly. PreAppend/PostAppend hooks do NOT run — callers that track
// derived state update it themselves, exactly as with ReplaceIfLonger.
func (c *Chain) ReplaceSuffix(forkPoint uint64, suffix []*block.Block) error {
	fp, err := c.CheckSuffixLinks(suffix)
	if err != nil {
		return err
	}
	if fp != forkPoint {
		return fmt.Errorf("%w: suffix starts at %d, caller claimed fork point %d", ErrBadSuffix, fp+1, forkPoint+1)
	}
	for _, b := range c.blocks[forkPoint+1:] {
		delete(c.byHash, b.Hash)
	}
	// Fresh backing array: Blocks() callers may still hold the old slice.
	blocks := make([]*block.Block, 0, forkPoint+1+uint64(len(suffix)))
	blocks = append(blocks, c.blocks[:forkPoint+1]...)
	blocks = append(blocks, suffix...)
	c.blocks = blocks
	for _, b := range suffix {
		c.byHash[b.Hash] = b.Index
	}
	c.pending = make(map[uint64]*block.Block)
	return nil
}

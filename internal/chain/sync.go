package chain

import (
	"errors"
	"fmt"

	"repro/internal/block"
)

// This file holds the replica-side primitives of the incremental sync
// protocol (DESIGN.md §10): block locators for fork-point discovery,
// bounded block ranges for batched transfer, and suffix replacement for
// adopting a fork without rebuilding the whole replica. All of them
// operate on the header spine where possible, so they keep working on
// pruned replicas (DESIGN.md §14).

// LocatorEntry is one (height, hash) sample of a block locator.
type LocatorEntry struct {
	Height uint64
	Hash   block.Hash
}

// MaxLocatorLen bounds a locator: 12 dense tip samples plus one sample
// per power-of-two step back to genesis covers any chain that fits in a
// uint64 height within this many entries.
const MaxLocatorLen = 12 + 64 + 1

// Locator samples the replica's chain tip-first: the 12 most recent
// blocks densely, then exponentially sparser heights (step doubling each
// entry), always ending with genesis. A peer intersects the locator with
// its own chain to find the highest common ancestor without either side
// shipping full chains — the standard block-locator construction. Heights
// below a bootstrap anchor are unknown and skipped straight to genesis.
func (c *Chain) Locator() []LocatorEntry {
	out := make([]LocatorEntry, 0, 16)
	h := c.Height()
	step := uint64(1)
	for {
		if h != 0 && h < c.hdrBase {
			// Below the bootstrap anchor nothing but genesis is known.
			h = 0
		}
		hdr, _ := c.HeaderAt(h)
		out = append(out, LocatorEntry{Height: h, Hash: hdr.Hash})
		if h == 0 {
			return out
		}
		if len(out) >= 12 {
			step *= 2
		}
		if h <= step {
			h = 0
		} else {
			h -= step
		}
	}
}

// FindForkPoint returns the height of the highest locator entry that
// matches this replica's header spine. ok is false when nothing matches —
// which cannot happen between peers sharing a genesis block, since every
// locator ends with genesis.
func (c *Chain) FindForkPoint(loc []LocatorEntry) (uint64, bool) {
	best := uint64(0)
	found := false
	for _, e := range loc {
		hdr, ok := c.HeaderAt(e.Height)
		if !ok {
			continue
		}
		if hdr.Hash == e.Hash {
			if !found || e.Height > best {
				best = e.Height
				found = true
			}
		}
	}
	return best, found
}

// Range returns the blocks with indices in [from, to], clamped to what
// the replica holds. An empty slice means the range is entirely beyond
// the tip, inverted, or starts below the body window — a pruned replica
// cannot serve history it no longer stores, and callers require the
// result to be contiguous from `from`.
func (c *Chain) Range(from, to uint64) []*block.Block {
	if to > c.Height() {
		to = c.Height()
	}
	if from > to || from < c.bodyBase {
		return nil
	}
	out := make([]*block.Block, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, c.bodies[i-c.bodyBase])
	}
	return out
}

// Suffix replacement errors.
var (
	// ErrBadSuffix means the candidate suffix is structurally unusable:
	// empty, non-contiguous, or not linked to a block this replica holds.
	ErrBadSuffix = errors.New("chain: bad suffix")
	// ErrSuffixNotLonger means fork point + suffix does not beat the
	// current height (longest-chain rule keeps ours).
	ErrSuffixNotLonger = errors.New("chain: suffix does not extend past current tip")
)

// CheckSuffixLinks verifies a candidate suffix's spine against this
// replica without touching any state: the suffix must be non-empty,
// contiguously indexed, linked (prev hash, timestamp, PoSHash chain) to
// the replica's header at suffix[0].Index-1, internally linked, and must
// reach strictly past the current tip. It does NOT run VerifySelf — the
// caller is expected to content-verify blocks (possibly in parallel)
// before committing. The fork-point body need not be retained: the spine
// header is enough to link-verify. On success it returns the fork-point
// height.
func (c *Chain) CheckSuffixLinks(suffix []*block.Block) (forkPoint uint64, err error) {
	if len(suffix) == 0 {
		return 0, fmt.Errorf("%w: empty", ErrBadSuffix)
	}
	first := suffix[0]
	if first.Index == 0 {
		return 0, fmt.Errorf("%w: cannot replace genesis", ErrBadSuffix)
	}
	forkPoint = first.Index - 1
	parent, ok := c.HeaderAt(forkPoint)
	if !ok {
		return 0, fmt.Errorf("%w: fork point %d outside spine [%d, %d]", ErrBadSuffix, forkPoint, c.hdrBase, c.Height())
	}
	if err := parent.VerifyLink(first); err != nil {
		return 0, fmt.Errorf("%w: offset 0: %v", ErrBadSuffix, err)
	}
	prev := first
	for i, b := range suffix[1:] {
		if b.Index != forkPoint+2+uint64(i) {
			return 0, fmt.Errorf("%w: non-contiguous index %d at offset %d", ErrBadSuffix, b.Index, i+1)
		}
		if err := b.VerifyLink(prev); err != nil {
			return 0, fmt.Errorf("%w: offset %d: %v", ErrBadSuffix, i+1, err)
		}
		prev = b
	}
	if forkPoint+uint64(len(suffix)) <= c.Height() {
		return 0, fmt.Errorf("%w: reaches %d, tip is %d", ErrSuffixNotLonger, forkPoint+uint64(len(suffix)), c.Height())
	}
	return forkPoint, nil
}

// ReplaceSuffix swaps everything above forkPoint for the given suffix.
// The caller must have validated the suffix (CheckSuffixLinks plus
// content verification and any consensus-level claim checks): this method
// re-checks only the cheap structural facts and otherwise mutates
// blindly. PreAppend/PostAppend hooks do NOT run — callers that track
// derived state update it themselves, exactly as with ReplaceIfLonger.
//
// If forkPoint lies below the body window base, the retained bodies are
// replaced wholesale and the window base moves to forkPoint+1; the header
// spine above forkPoint is rewritten either way.
func (c *Chain) ReplaceSuffix(forkPoint uint64, suffix []*block.Block) error {
	fp, err := c.CheckSuffixLinks(suffix)
	if err != nil {
		return err
	}
	if fp != forkPoint {
		return fmt.Errorf("%w: suffix starts at %d, caller claimed fork point %d", ErrBadSuffix, fp+1, forkPoint+1)
	}
	for _, h := range c.headers[forkPoint+1-c.hdrBase:] {
		delete(c.byHash, h.Hash)
	}
	headers := make([]Header, 0, forkPoint+1-c.hdrBase+uint64(len(suffix)))
	headers = append(headers, c.headers[:forkPoint+1-c.hdrBase]...)
	// Fresh backing arrays: Blocks() callers may still hold the old slice.
	var bodies []*block.Block
	if forkPoint+1 >= c.bodyBase {
		bodies = make([]*block.Block, 0, forkPoint+1-c.bodyBase+uint64(len(suffix)))
		bodies = append(bodies, c.bodies[:forkPoint+1-c.bodyBase]...)
	} else {
		// Fork below the pruned window: only the new suffix has bodies.
		bodies = make([]*block.Block, 0, len(suffix))
		c.bodyBase = forkPoint + 1
	}
	for _, b := range suffix {
		headers = append(headers, HeaderOf(b))
		bodies = append(bodies, b)
		c.byHash[b.Hash] = b.Index
	}
	c.headers = headers
	c.bodies = bodies
	c.pending = make(map[uint64]*block.Block)
	return nil
}

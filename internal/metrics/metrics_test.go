package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestGiniKnownValues(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 0},
		{"all equal", []float64{3, 3, 3, 3}, 0},
		{"all zero", []float64{0, 0, 0}, 0},
		{"one has everything (n=2)", []float64{0, 10}, 0.5},
		{"one has everything (n=4)", []float64{0, 0, 0, 12}, 0.75},
		{"uniform ramp", []float64{1, 2, 3}, 2.0 / 9},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Gini(tt.in); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Gini(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestGiniMatchesQuadraticDefinition(t *testing.T) {
	// The O(n log n) implementation must match the paper's footnote-3
	// formula G = ΣΣ|t_i − t_j| / (2 n Σ t_j).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		direct := 0.0
		sum := 0.0
		for _, a := range vals {
			sum += a
			for _, b := range vals {
				direct += math.Abs(a - b)
			}
		}
		want := direct / (2 * float64(n) * sum)
		if got := Gini(vals); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Gini = %v, quadratic = %v", trial, got, want)
		}
	}
}

// Property: Gini is scale-invariant and within [0, 1).
func TestGiniProperties(t *testing.T) {
	prop := func(raw []uint16, scaleRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		g := Gini(vals)
		if g < 0 || g >= 1 {
			return false
		}
		scale := float64(scaleRaw) + 1
		scaled := make([]float64, len(vals))
		for i, v := range vals {
			scaled[i] = v * scale
		}
		return math.Abs(Gini(scaled)-g) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Gini must be order-independent (it sorts a copy internally) and must
// not mutate the caller's slice.
func TestGiniUnsortedInput(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	unsorted := []float64{4, 1, 5, 2, 3}
	if got, want := Gini(unsorted), Gini(sorted); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Gini(unsorted) = %v, Gini(sorted) = %v", got, want)
	}
	if unsorted[0] != 4 || unsorted[1] != 1 || unsorted[4] != 3 {
		t.Fatalf("Gini mutated its input: %v", unsorted)
	}

	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = rng.Float64() * 50
	}
	want := Gini(vals)
	for trial := 0; trial < 20; trial++ {
		rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		if got := Gini(vals); math.Abs(got-want) > 1e-12 {
			t.Fatalf("permutation %d changed Gini: %v vs %v", trial, got, want)
		}
	}
}

func TestGiniInts(t *testing.T) {
	if got, want := GiniInts([]int{0, 10}), 0.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("GiniInts = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v wrong count/min/max", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 {
		t.Fatalf("mean = %v, want 2.5", s.Mean)
	}
	if math.Abs(s.P50-2.5) > 1e-12 {
		t.Fatalf("p50 = %v, want 2.5", s.P50)
	}
	if s.P95 < 3.8 || s.P95 > 4 {
		t.Fatalf("p95 = %v, want ≈ 3.85", s.P95)
	}
	if z := Summarize(nil); z.Count != 0 || z.Mean != 0 {
		t.Fatalf("empty summary %+v", z)
	}
}

// TestPercentileGoldenSmallN pins the interpolation behavior for tiny
// sample counts, where linear interpolation (R-7: position p*(n-1)) and
// nearest-rank visibly disagree. These values are the contract: under
// nearest-rank, n=2 would give P50=1 and P95=3, not the blends below.
func TestPercentileGoldenSmallN(t *testing.T) {
	cases := []struct {
		name     string
		samples  []float64
		p50, p95 float64
	}{
		// n=1: every quantile is the single sample.
		{"n1", []float64{7}, 7, 7},
		// n=2 over {1,3}: position p*(2-1)=p, so P50 = midpoint 2 and
		// P95 = 1 + 0.95*(3-1) = 2.9.
		{"n2", []float64{3, 1}, 2, 2.9},
		// n=3 over {1,3,10}: P50 position 1 lands exactly on the middle
		// sample; P95 position 1.9 blends 3 and 10: 3 + 0.9*7 = 9.3.
		{"n3", []float64{10, 1, 3}, 3, 9.3},
	}
	for _, tc := range cases {
		s := Summarize(tc.samples)
		if math.Abs(s.P50-tc.p50) > 1e-12 {
			t.Errorf("%s: P50 = %v, want %v", tc.name, s.P50, tc.p50)
		}
		if math.Abs(s.P95-tc.p95) > 1e-12 {
			t.Errorf("%s: P95 = %v, want %v", tc.name, s.P95, tc.p95)
		}
	}
}

func TestDeliverySamples(t *testing.T) {
	var d DeliverySamples
	d.Add(time.Second)
	d.Add(3 * time.Second)
	if d.Count() != 2 {
		t.Fatalf("count = %d", d.Count())
	}
	s := d.Summary()
	if math.Abs(s.Mean-2.0) > 1e-12 {
		t.Fatalf("mean = %v s, want 2", s.Mean)
	}
}

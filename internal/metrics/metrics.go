// Package metrics provides the statistics the evaluation section reports:
// the Gini coefficient for storage fairness (footnote 3), and summary
// statistics over delivery-time and overhead samples.
package metrics

import (
	"math"
	"sort"
	"time"
)

// Gini computes the Gini coefficient of the values:
//
//	G = Σ_i Σ_j |t_i − t_j| / (2 n Σ_j t_j)
//
// 0 means perfectly even, 1 maximally uneven. The paper reports storage
// disparity below 0.15 for its allocation (Fig. 4b). All-zero input
// returns 0 (perfectly even).
func Gini(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	if sum == 0 {
		return 0
	}
	// O(n log n) form over sorted values.
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	cum := 0.0
	for i, v := range sorted {
		cum += v * float64(2*(i+1)-n-1)
	}
	return cum / (float64(n) * sum)
}

// GiniInts is Gini over integer counts (storage items per node).
func GiniInts(values []int) float64 {
	f := make([]float64, len(values))
	for i, v := range values {
		f[i] = float64(v)
	}
	return Gini(f)
}

// Summary holds basic descriptive statistics.
type Summary struct {
	Count int
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
}

// Summarize computes a Summary over the samples. An empty input returns a
// zero Summary.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   percentile(sorted, 0.50),
		P95:   percentile(sorted, 0.95),
	}
}

// percentile reads the p-quantile from sorted samples by linear
// interpolation between closest ranks (the R-7 estimator, numpy's
// default): the quantile position is p*(n-1), and positions between two
// sample ranks blend both neighbors instead of snapping to the nearest
// sample (which would be the nearest-rank method — this is NOT that).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// DeliverySamples collects data-delivery latencies.
type DeliverySamples struct {
	durations []time.Duration
}

// Add records one delivery.
func (d *DeliverySamples) Add(dur time.Duration) { d.durations = append(d.durations, dur) }

// Count returns the number of samples.
func (d *DeliverySamples) Count() int { return len(d.durations) }

// Seconds returns the samples in seconds.
func (d *DeliverySamples) Seconds() []float64 {
	out := make([]float64, len(d.durations))
	for i, v := range d.durations {
		out[i] = v.Seconds()
	}
	return out
}

// Summary summarizes the samples in seconds.
func (d *DeliverySamples) Summary() Summary { return Summarize(d.Seconds()) }

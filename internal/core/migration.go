package core

import (
	"repro/internal/alloc"
	"repro/internal/engine"
	"repro/internal/meta"
)

// MigrationAdvice is the recomputed placement for one live data item whose
// current storing set has drifted from optimal (the paper's Section VII
// data-migration future work).
type MigrationAdvice struct {
	ID      meta.DataID
	Current []int
	Desired []int
	Plan    *alloc.Plan
}

// PlacementDrift measures how far live items have drifted from optimal
// placement, as observed by one node: the mean over live items of
// cost(current assignment) / cost(recomputed optimal), where cost is the
// UFL objective of eq. (3). 1.0 means every item is optimally placed;
// the Section VII migration mechanism exists to push this back toward 1.
func (s *System) PlacementDrift(observer int) float64 {
	n := s.nodes[observer]
	now := s.engine.Now()
	topo := s.net.HomeTopology()
	states := n.eng.View().NodeStates(now)
	in := s.planner.BuildInstance(topo, states)
	pl, err := s.planner.Place(topo, states)
	if err != nil || len(pl.StoringNodes) == 0 {
		return 1
	}
	optimal := engine.SetCost(in, pl.StoringNodes)
	if optimal <= 0 {
		return 1
	}
	total, count := 0.0, 0
	for _, it := range n.eng.LiveItems() {
		if it.Expired(now) || len(it.StoringNodes) == 0 {
			continue
		}
		total += engine.SetCost(in, it.StoringNodes) / optimal
		count++
	}
	if count == 0 {
		return 1
	}
	return total / float64(count)
}

// MigrationAdvice recomputes the optimal placement for every unexpired
// data item recorded in node observer's chain and returns the minimal
// move plans for the items that are no longer optimally placed. It is
// advisory — the protocol does not yet execute migrations, matching the
// paper, but examples and ablations can quantify the drift.
func (s *System) MigrationAdvice(observer int) []MigrationAdvice {
	n := s.nodes[observer]
	now := s.engine.Now()
	topo := s.net.HomeTopology()
	states := n.eng.View().NodeStates(now)
	var out []MigrationAdvice
	for _, b := range n.eng.Chain().Blocks() {
		for _, it := range b.Items {
			if it.Expired(now) || len(it.StoringNodes) == 0 {
				continue
			}
			pl, err := s.planner.Place(topo, states)
			if err != nil {
				continue
			}
			plan := alloc.MigrationPlan(it.StoringNodes, pl.StoringNodes)
			if plan.Empty() {
				continue
			}
			out = append(out, MigrationAdvice{
				ID:      it.ID,
				Current: append([]int(nil), it.StoringNodes...),
				Desired: pl.StoringNodes,
				Plan:    plan,
			})
		}
	}
	return out
}

package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/alloc"
	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/engine"
	"repro/internal/identity"
	"repro/internal/meta"
	"repro/internal/netsim"
	"repro/internal/raft"
	"repro/internal/sim"
)

// Node is one edge device participating in the blockchain: it generates
// data, stores assigned data and blocks, and serves peer requests. All
// consensus and allocation rules live in the shared internal/engine; the
// Node is the simulation adapter supplying I/O — the discrete-event clock,
// the netsim message sink and the physical storage maps.
type Node struct {
	sys   *System
	id    int
	ident *identity.Identity
	rng   *rand.Rand

	eng *engine.Engine

	// Physical storage.
	ownData      map[meta.DataID]bool // items this node produced
	dataStore    map[meta.DataID]bool // assigned items actually fetched
	consumed     map[meta.DataID]bool // items received as a requester
	blockStore   map[uint64]bool      // assigned block bodies
	recent       *alloc.RecentCache
	pendingFetch map[meta.DataID]int // assigned items awaiting fetch: retries used

	// Mining.
	mineTimer *sim.Timer

	// Outstanding data requests/fetches keyed by sequence number.
	nextSeq uint64
	pending map[uint64]*pendingRequest

	// Missing-block recovery state.
	sync *syncState

	joined bool

	// miningEnergyJ accumulates the compute energy spent mining (hash
	// work for PoW, per-second target checks for PoS), per the Fig. 6
	// energy model.
	miningEnergyJ float64

	raft *raft.Node
}

type requestKind int

const (
	reqConsume requestKind = iota + 1 // requester wants the data (Fig. 4c metric)
	reqFetch                          // storing node pulls from producer
)

type pendingRequest struct {
	kind       requestKind
	id         meta.DataID
	candidates []int
	tried      int
	start      time.Duration
	timer      *sim.Timer
}

type syncState struct {
	from, to   uint64
	candidates []int
	tried      int
	timer      *sim.Timer
}

func newNode(sys *System, id int, ident *identity.Identity, rng *rand.Rand) *Node {
	depth := sys.cfg.InitialRecentDepth
	if depth < 1 {
		depth = 1
	}
	n := &Node{
		sys:          sys,
		id:           id,
		ident:        ident,
		rng:          rng,
		ownData:      make(map[meta.DataID]bool),
		dataStore:    make(map[meta.DataID]bool),
		consumed:     make(map[meta.DataID]bool),
		blockStore:   make(map[uint64]bool),
		recent:       alloc.NewRecentCache(depth),
		pendingFetch: make(map[meta.DataID]int),
		pending:      make(map[uint64]*pendingRequest),
		joined:       true,
	}
	ecfg := engine.Config{
		Accounts:           sys.accounts,
		Self:               id,
		PoS:                sys.cfg.PoS,
		Genesis:            sys.genesis,
		Now:                sys.engine.Now,
		ValidateClaims:     sys.cfg.Consensus != ConsensusPoW,
		StakeRescaleEvery:  sys.cfg.StakeRescaleEvery,
		CheckpointInterval: sys.cfg.CheckpointInterval,
		Topology:           sys.net.HomeTopology,
		Planner:            sys.planner,
		BlockPlanner:       sys.blockPlanner,
		StorageCapacity:    sys.cfg.StorageCapacity,
		MobilityRange:      sys.cfg.MobilityRange,
		InitialRecentDepth: depth,
		RecentDepthCap:     sys.cfg.RecentDepthCap,
		RandomPlacement:    sys.cfg.Placement == PlaceRandom,
		Rand:               rng,
		MigrateMaxPerBlock: sys.cfg.MigrateMaxPerBlock,
		MigrateCostRatio:   sys.cfg.MigrateCostRatio,
		OnAppend:           n.onAppend,
	}
	if sys.cfg.Consensus == ConsensusPoW {
		// The PoW baseline keeps the engine's append/adopt machinery but
		// swaps the round computation for exponential solve times.
		ecfg.CustomRound = n.powRound
	}
	eng, err := engine.New(ecfg)
	if err != nil {
		// Config is validated before nodes are built; an engine rejection
		// here is a programming error.
		panic("core: engine init: " + err.Error())
	}
	n.eng = eng
	return n
}

// ID returns the node's network identifier.
func (n *Node) ID() int { return n.id }

// Address returns the node's account address.
func (n *Node) Address() identity.Address { return n.ident.Address() }

// Chain returns the node's chain replica.
func (n *Node) Chain() *chain.Chain { return n.eng.Chain() }

// Engine returns the node's consensus engine.
func (n *Node) Engine() *engine.Engine { return n.eng }

// StoredItems returns how many storage units the node really uses:
// assigned data items, assigned block bodies and the recent cache.
func (n *Node) StoredItems() int {
	return len(n.dataStore) + len(n.blockStore) + n.recent.Len()
}

// Recv implements netsim.Handler.
func (n *Node) Recv(from netsim.NodeID, msg netsim.Message) {
	if !n.joined {
		return
	}
	switch m := msg.(type) {
	case msgMetadata:
		n.handleMetadata(m.item)
	case msgBlock:
		n.handleBlock(int(from), m.blk)
	case msgDataRequest:
		n.handleDataRequest(int(from), m)
	case msgDataPull:
		n.handleDataPull(int(from), m)
	case msgDataResponse:
		n.handleDataResponse(m)
	case msgDataNack:
		n.handleDataNack(m)
	case msgBlockRangeRequest:
		n.handleBlockRangeRequest(int(from), m)
	case msgBlockRangeResponse:
		n.handleBlockRangeResponse(m)
	case msgChainRequest:
		n.handleChainRequest(int(from))
	case msgChainResponse:
		n.handleChainResponse(m)
	case msgRaft:
		if n.raft != nil {
			n.raft.Step(m.rm)
		}
	}
}

// --- metadata -----------------------------------------------------------

func (n *Node) handleMetadata(it *meta.Item) {
	n.eng.AddMetadata(it)
}

// produce creates a data item on this node, stores it locally, and
// broadcasts the signed metadata (Section IV-B).
func (n *Node) produce(seq int, typ string) *meta.Item {
	now := n.sys.engine.Now()
	payload := fmt.Sprintf("data-%d-from-%d", seq, n.id)
	it := &meta.Item{
		ID:           meta.HashData([]byte(payload)),
		Type:         typ,
		Produced:     now,
		Location:     n.sys.net.Topology().Position(netsim.NodeID(n.id)),
		LocationName: fmt.Sprintf("node-%d", n.id),
		ValidFor:     n.sys.cfg.DataValidFor,
		DataSize:     n.sys.cfg.DataSize,
	}
	it.Sign(n.ident)
	n.ownData[it.ID] = true
	n.eng.AddLocal(it)
	n.sys.net.Broadcast(netsim.NodeID(n.id), msgMetadata{item: it})
	return it
}

// --- block adoption ------------------------------------------------------

// onAppend is the engine callback layering the adapter's side effects on
// every adopted block: energy accounting, the physical recent FIFO and
// block-body store, proactive fetches, consumption scheduling and
// valid-time expiry.
func (n *Node) onAppend(ev engine.AppendEvent) {
	b := ev.Block
	n.chargeMiningEnergy(b)

	// Every node pushes the block into its recent FIFO (it has the body
	// from the broadcast); assignees grow their allowance first, subject
	// to the optional growth cap (Section VII future-work expiration).
	for _, a := range b.RecentAssignees {
		if a == n.id {
			if cap := n.sys.cfg.RecentDepthCap; cap == 0 || n.recent.Depth() < cap {
				n.recent.Grow()
			}
		}
	}
	n.recent.Push(b.Index)

	// Assigned block-body storage.
	for _, sn := range b.StoringNodes {
		if sn == n.id {
			n.blockStore[b.Index] = true
		}
	}

	for _, ie := range ev.Items {
		it := ie.Item

		// Migration re-announcement (Section VII): released nodes free the
		// storage immediately.
		if !ie.First && ie.Prev != nil && !ie.AssignedToSelf && !n.ownData[it.ID] {
			delete(n.dataStore, it.ID)
			delete(n.pendingFetch, it.ID)
		}

		// Proactive fetch for assigned storing nodes (Section IV-B: "If a
		// node is chosen to be a storing node, it gets the data from the
		// producer and stores them"). Migrated items prefer the previous
		// holders as transfer sources.
		if ie.AssignedToSelf && !n.ownData[it.ID] && !n.dataStore[it.ID] {
			if _, active := n.pendingFetch[it.ID]; !active {
				n.pendingFetch[it.ID] = 0
				var preferred []int
				if ie.Prev != nil {
					preferred = ie.Prev.StoringNodes
				}
				n.startFetchFrom(it, preferred)
			}
		}

		if !ie.First {
			continue
		}

		// The workload's chosen requesters schedule a consumption request.
		if n.sys.wantedBy(it.ID, n.id) && !n.ownData[it.ID] && !n.consumed[it.ID] {
			it := it
			delay := time.Duration(n.rng.Int63n(int64(n.sys.cfg.RequestSpread) + 1))
			n.sys.engine.Schedule(delay, func() { n.startConsume(it) })
		}

		// Data expires: storing nodes free the storage at the valid-time
		// boundary.
		if it.ValidFor > 0 {
			id := it.ID
			n.sys.engine.ScheduleAt(it.ExpiresAt(), func() {
				delete(n.dataStore, id)
				delete(n.pendingFetch, id)
				n.eng.ForgetItem(id)
			})
		}
	}
}

// handleBlock processes a block received from the network.
func (n *Node) handleBlock(from int, b *block.Block) {
	appended, err := n.eng.ReceiveBlock(b)
	switch {
	case err == nil:
		if appended > 0 {
			n.sys.stats.blocksAdopted += appended
			n.cancelSync()
			n.scheduleMining()
		}
	case isGap(err):
		// Missing blocks (Section III-C): ask for [tip+1, b.Index-1].
		if fromIdx, to, ok := n.eng.Chain().MissingRange(); ok {
			n.startBlockRecovery(fromIdx, to, from)
		}
	case isForkLink(err):
		// Same height, different parent lineage: Naivechain-style full
		// chain exchange resolves the fork.
		n.requestChain(from)
	default:
		// Duplicate, stale or invalid: ignore.
	}
}

func isGap(err error) bool { return err != nil && errorsIs(err, chain.ErrGap) }

func isForkLink(err error) bool {
	return err != nil && (errorsIs(err, block.ErrBadLink) || errorsIs(err, block.ErrBadPoSHash))
}

// --- mining --------------------------------------------------------------

// chargeMiningEnergy accounts the compute energy this node spent during
// the round that block b closed: PoS performs one target check per second
// plus the hit hash; PoW hashes continuously at the device hash rate.
func (n *Node) chargeMiningEnergy(b *block.Block) {
	if !n.joined || b.Index == 0 {
		return
	}
	prev := n.eng.Chain().At(b.Index - 1)
	if prev == nil {
		return
	}
	roundSecs := (b.Timestamp - prev.Timestamp).Seconds()
	if roundSecs < 0 {
		return
	}
	var hashes float64
	if n.sys.cfg.Consensus == ConsensusPoW {
		hashes = n.sys.cfg.HashRate * roundSecs
	} else {
		hashes = roundSecs + 1
	}
	n.miningEnergyJ += n.sys.cfg.Energy.HashEnergyJoules * hashes
}

// scheduleMining arms the mining timer for the current tip. Called after
// every adoption; any previous timer is canceled (the round it was mining
// is over).
func (n *Node) scheduleMining() {
	if n.mineTimer != nil {
		n.mineTimer.Stop()
		n.mineTimer = nil
	}
	if !n.joined {
		return
	}
	r, ok := n.eng.NextRound()
	if !ok {
		return
	}
	delay := r.FireAt() - n.sys.engine.Now()
	n.mineTimer = n.sys.engine.Schedule(delay, func() { n.mine(r) })
}

// powRound is the PoW baseline's round computation: solve times are
// exponential; derive a deterministic sample from the same hit so the run
// stays reproducible. Each node's mean is n*t0, making the expected round
// (min over nodes) t0.
func (n *Node) powRound(prev *block.Block) (uint64, float64) {
	params := n.sys.cfg.PoS
	hit := params.Hit(prev, n.ident.Address())
	u := (float64(hit) + 0.5) / float64(params.M)
	mean := params.T0.Seconds() * float64(n.sys.cfg.NumNodes)
	t := -mean * logOf(1-u)
	if t < 1 {
		t = 1
	}
	return uint64(t), 0
}

// mine runs the engine's block assembly for a won round and broadcasts
// the result (Section V-C).
func (n *Node) mine(r engine.Round) {
	if !n.joined {
		return
	}
	res, err := n.eng.Mine(r)
	if err != nil {
		// Our own block must be valid; a failure here is a programming
		// error worth surfacing loudly in simulation.
		panic(fmt.Sprintf("core: node %d rejects own block: %v", n.id, err))
	}
	if res == nil {
		return // the round moved on
	}
	n.sys.stats.blocksMined++
	n.sys.stats.migrations += res.Migrations
	n.sys.net.Broadcast(netsim.NodeID(n.id), msgBlock{blk: res.Block})
	n.scheduleMining()
}

// --- raft ----------------------------------------------------------------

// attachRaft wires the optional Raft layer (general information consensus).
func (n *Node) attachRaft(cfg raft.Config) {
	n.raft = raft.New(cfg)
}

// Raft returns the node's Raft instance, or nil.
func (n *Node) Raft() *raft.Node { return n.raft }

// logOf wraps math.Log for the deterministic PoW solve-time sample.
func logOf(x float64) float64 { return math.Log(x) }

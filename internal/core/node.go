package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/alloc"
	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/identity"
	"repro/internal/meta"
	"repro/internal/netsim"
	"repro/internal/pos"
	"repro/internal/raft"
	"repro/internal/sim"
	"repro/internal/ufl"
)

// Node is one edge device participating in the blockchain: it generates
// data, stores assigned data and blocks, mines with the PoS mechanism and
// serves peer requests.
type Node struct {
	sys   *System
	id    int
	ident *identity.Identity
	rng   *rand.Rand

	ch     *chain.Chain
	ledger *pos.Ledger
	view   *StorageView

	// Physical storage.
	ownData      map[meta.DataID]bool // items this node produced
	dataStore    map[meta.DataID]bool // assigned items actually fetched
	consumed     map[meta.DataID]bool // items received as a requester
	blockStore   map[uint64]bool      // assigned block bodies
	recent       *alloc.RecentCache
	pendingFetch map[meta.DataID]int // assigned items awaiting fetch: retries used

	// Metadata pool.
	metaPool map[meta.DataID]*meta.Item
	inChain  map[meta.DataID]bool
	// liveItems is the latest on-chain version of every item (migration
	// re-announcements replace older versions).
	liveItems map[meta.DataID]*meta.Item
	// migrateCursor round-robins migration checks across live items.
	migrateCursor int

	// Mining.
	mineTimer *sim.Timer

	// Outstanding data requests/fetches keyed by sequence number.
	nextSeq uint64
	pending map[uint64]*pendingRequest

	// Missing-block recovery state.
	sync *syncState

	joined bool

	// miningEnergyJ accumulates the compute energy spent mining (hash
	// work for PoW, per-second target checks for PoS), per the Fig. 6
	// energy model.
	miningEnergyJ float64

	raft *raft.Node
}

type requestKind int

const (
	reqConsume requestKind = iota + 1 // requester wants the data (Fig. 4c metric)
	reqFetch                          // storing node pulls from producer
)

type pendingRequest struct {
	kind       requestKind
	id         meta.DataID
	candidates []int
	tried      int
	start      time.Duration
	timer      *sim.Timer
}

type syncState struct {
	from, to   uint64
	candidates []int
	tried      int
	timer      *sim.Timer
}

func newNode(sys *System, id int, ident *identity.Identity, rng *rand.Rand) *Node {
	depth := sys.cfg.InitialRecentDepth
	if depth < 1 {
		depth = 1
	}
	ledger := pos.NewLedger(sys.accounts)
	ledger.RescaleEvery = sys.cfg.StakeRescaleEvery
	n := &Node{
		sys:          sys,
		id:           id,
		ident:        ident,
		rng:          rng,
		ledger:       ledger,
		view:         NewStorageView(sys.cfg.NumNodes, sys.cfg.StorageCapacity, sys.cfg.MobilityRange, depth, sys.cfg.RecentDepthCap),
		ownData:      make(map[meta.DataID]bool),
		dataStore:    make(map[meta.DataID]bool),
		consumed:     make(map[meta.DataID]bool),
		blockStore:   make(map[uint64]bool),
		recent:       alloc.NewRecentCache(depth),
		pendingFetch: make(map[meta.DataID]int),
		metaPool:     make(map[meta.DataID]*meta.Item),
		inChain:      make(map[meta.DataID]bool),
		liveItems:    make(map[meta.DataID]*meta.Item),
		pending:      make(map[uint64]*pendingRequest),
		joined:       true,
	}
	n.ch = chain.New(sys.genesis)
	n.ch.PreAppend = n.preAppend
	n.ch.PostAppend = n.postAppend
	return n
}

// ID returns the node's network identifier.
func (n *Node) ID() int { return n.id }

// Address returns the node's account address.
func (n *Node) Address() identity.Address { return n.ident.Address() }

// Chain returns the node's chain replica.
func (n *Node) Chain() *chain.Chain { return n.ch }

// StoredItems returns how many storage units the node really uses:
// assigned data items, assigned block bodies and the recent cache.
func (n *Node) StoredItems() int {
	return len(n.dataStore) + len(n.blockStore) + n.recent.Len()
}

// Recv implements netsim.Handler.
func (n *Node) Recv(from netsim.NodeID, msg netsim.Message) {
	if !n.joined {
		return
	}
	switch m := msg.(type) {
	case msgMetadata:
		n.handleMetadata(m.item)
	case msgBlock:
		n.handleBlock(int(from), m.blk)
	case msgDataRequest:
		n.handleDataRequest(int(from), m)
	case msgDataPull:
		n.handleDataPull(int(from), m)
	case msgDataResponse:
		n.handleDataResponse(m)
	case msgDataNack:
		n.handleDataNack(m)
	case msgBlockRangeRequest:
		n.handleBlockRangeRequest(int(from), m)
	case msgBlockRangeResponse:
		n.handleBlockRangeResponse(m)
	case msgChainRequest:
		n.handleChainRequest(int(from))
	case msgChainResponse:
		n.handleChainResponse(m)
	case msgRaft:
		if n.raft != nil {
			n.raft.Step(m.rm)
		}
	}
}

// --- metadata -----------------------------------------------------------

func (n *Node) handleMetadata(it *meta.Item) {
	if n.inChain[it.ID] || n.metaPool[it.ID] != nil {
		return
	}
	if err := it.Verify(); err != nil {
		return // forged metadata: drop
	}
	n.metaPool[it.ID] = it
}

// produce creates a data item on this node, stores it locally, and
// broadcasts the signed metadata (Section IV-B).
func (n *Node) produce(seq int, typ string) *meta.Item {
	now := n.sys.engine.Now()
	payload := fmt.Sprintf("data-%d-from-%d", seq, n.id)
	it := &meta.Item{
		ID:           meta.HashData([]byte(payload)),
		Type:         typ,
		Produced:     now,
		Location:     n.sys.net.Topology().Position(netsim.NodeID(n.id)),
		LocationName: fmt.Sprintf("node-%d", n.id),
		ValidFor:     n.sys.cfg.DataValidFor,
		DataSize:     n.sys.cfg.DataSize,
	}
	it.Sign(n.ident)
	n.ownData[it.ID] = true
	n.metaPool[it.ID] = it
	n.sys.net.Broadcast(netsim.NodeID(n.id), msgMetadata{item: it})
	return it
}

// --- block adoption ------------------------------------------------------

// preAppend is the chain hook that validates PoS claims against the ledger
// state as of the parent block.
func (n *Node) preAppend(prev, b *block.Block) error {
	// Reject timestamps from the future (a miner cannot backdate thanks to
	// pos.ErrBadElapsed, nor post-date past the receiver's clock).
	if b.Timestamp > n.sys.engine.Now()+2*time.Second {
		return fmt.Errorf("core: block %d timestamp in the future", b.Index)
	}
	if n.sys.cfg.Consensus == ConsensusPoW {
		// The PoW baseline models the hash work energetically; validators
		// would check the nonce, which carries no allocation state, so the
		// in-simulation check is the timestamp sanity above.
		return nil
	}
	return n.sys.cfg.PoS.ValidateClaim(prev, b, n.ledger)
}

// postAppend is the chain hook applying an adopted block's side effects.
func (n *Node) postAppend(b *block.Block) {
	if err := n.ledger.ApplyBlock(b); err != nil {
		// Cannot happen: PreAppend guarantees in-order application.
		panic(fmt.Sprintf("core: ledger apply: %v", err))
	}
	n.view.ApplyBlock(b)
	n.chargeMiningEnergy(b)

	// Every node pushes the block into its recent FIFO (it has the body
	// from the broadcast); assignees grow their allowance first, subject
	// to the optional growth cap (Section VII future-work expiration).
	for _, a := range b.RecentAssignees {
		if a == n.id {
			if cap := n.sys.cfg.RecentDepthCap; cap == 0 || n.recent.Depth() < cap {
				n.recent.Grow()
			}
		}
	}
	n.recent.Push(b.Index)

	// Assigned block-body storage.
	for _, sn := range b.StoringNodes {
		if sn == n.id {
			n.blockStore[b.Index] = true
		}
	}

	for _, it := range b.Items {
		delete(n.metaPool, it.ID)
		first := !n.inChain[it.ID]
		n.inChain[it.ID] = true
		oldVersion := n.liveItems[it.ID]
		n.liveItems[it.ID] = it

		assignedToMe := false
		for _, sn := range it.StoringNodes {
			if sn == n.id {
				assignedToMe = true
			}
		}

		// Migration re-announcement (Section VII): released nodes free the
		// storage immediately.
		if !first && oldVersion != nil && !assignedToMe && !n.ownData[it.ID] {
			delete(n.dataStore, it.ID)
			delete(n.pendingFetch, it.ID)
		}

		// Proactive fetch for assigned storing nodes (Section IV-B: "If a
		// node is chosen to be a storing node, it gets the data from the
		// producer and stores them"). Migrated items prefer the previous
		// holders as transfer sources.
		if assignedToMe && !n.ownData[it.ID] && !n.dataStore[it.ID] {
			if _, active := n.pendingFetch[it.ID]; !active {
				n.pendingFetch[it.ID] = 0
				var preferred []int
				if oldVersion != nil {
					preferred = oldVersion.StoringNodes
				}
				n.startFetchFrom(it, preferred)
			}
		}

		if !first {
			continue
		}

		// The workload's chosen requesters schedule a consumption request.
		if n.sys.wantedBy(it.ID, n.id) && !n.ownData[it.ID] && !n.consumed[it.ID] {
			it := it
			delay := time.Duration(n.rng.Int63n(int64(n.sys.cfg.RequestSpread) + 1))
			n.sys.engine.Schedule(delay, func() { n.startConsume(it) })
		}

		// Data expires: storing nodes free the storage at the valid-time
		// boundary.
		if it.ValidFor > 0 {
			id := it.ID
			n.sys.engine.ScheduleAt(it.ExpiresAt(), func() {
				delete(n.dataStore, id)
				delete(n.pendingFetch, id)
				delete(n.liveItems, id)
			})
		}
	}
}

// handleBlock processes a block received from the network.
func (n *Node) handleBlock(from int, b *block.Block) {
	appended, err := n.ch.Add(b)
	switch {
	case err == nil:
		if appended > 0 {
			n.sys.stats.blocksAdopted += appended
			n.cancelSync()
			n.scheduleMining()
		}
	case isGap(err):
		// Missing blocks (Section III-C): ask for [tip+1, b.Index-1].
		if fromIdx, to, ok := n.ch.MissingRange(); ok {
			n.startBlockRecovery(fromIdx, to, from)
		}
	case isForkLink(err):
		// Same height, different parent lineage: Naivechain-style full
		// chain exchange resolves the fork.
		n.requestChain(from)
	default:
		// Duplicate, stale or invalid: ignore.
	}
}

func isGap(err error) bool { return err != nil && errorsIs(err, chain.ErrGap) }

func isForkLink(err error) bool {
	return err != nil && (errorsIs(err, block.ErrBadLink) || errorsIs(err, block.ErrBadPoSHash))
}

// --- mining --------------------------------------------------------------

// chargeMiningEnergy accounts the compute energy this node spent during
// the round that block b closed: PoS performs one target check per second
// plus the hit hash; PoW hashes continuously at the device hash rate.
func (n *Node) chargeMiningEnergy(b *block.Block) {
	if !n.joined || b.Index == 0 {
		return
	}
	prev := n.ch.At(b.Index - 1)
	if prev == nil {
		return
	}
	roundSecs := (b.Timestamp - prev.Timestamp).Seconds()
	if roundSecs < 0 {
		return
	}
	var hashes float64
	if n.sys.cfg.Consensus == ConsensusPoW {
		hashes = n.sys.cfg.HashRate * roundSecs
	} else {
		hashes = roundSecs + 1
	}
	n.miningEnergyJ += n.sys.cfg.Energy.HashEnergyJoules * hashes
}

// scheduleMining arms the mining timer for the current tip. Called after
// every adoption; any previous timer is canceled (the round it was mining
// is over).
func (n *Node) scheduleMining() {
	if n.mineTimer != nil {
		n.mineTimer.Stop()
		n.mineTimer = nil
	}
	if !n.joined {
		return
	}
	prev := n.ch.Tip()
	t, bval := n.roundTime(prev)
	if t == pos.NeverMines {
		return
	}
	fireAt := prev.Timestamp + time.Duration(t)*time.Second
	delay := fireAt - n.sys.engine.Now()
	prevHash := prev.Hash
	n.mineTimer = n.sys.engine.Schedule(delay, func() {
		n.mine(prevHash, t, bval)
	})
}

// roundTime computes this node's winning time for the round on top of
// prev, plus the amendment value to record in the block (PoS only).
func (n *Node) roundTime(prev *block.Block) (uint64, float64) {
	params := n.sys.cfg.PoS
	hit := params.Hit(prev, n.ident.Address())
	if n.sys.cfg.Consensus == ConsensusPoW {
		// PoW solve times are exponential; derive a deterministic sample
		// from the same hit so the run stays reproducible. Each node's
		// mean is n*t0, making the expected round (min over nodes) t0.
		u := (float64(hit) + 0.5) / float64(params.M)
		mean := params.T0.Seconds() * float64(n.sys.cfg.NumNodes)
		t := -mean * logOf(1-u)
		if t < 1 {
			t = 1
		}
		return uint64(t), 0
	}
	bval := params.AmendmentB(n.ledger.N(), n.ledger.UBar())
	return pos.TimeToMine(hit, n.ledger.U(n.id), bval), bval
}

// mine assembles, adopts and broadcasts the next block (Section V-C).
func (n *Node) mine(prevHash block.Hash, minedAfter uint64, bval float64) {
	prev := n.ch.Tip()
	if prev.Hash != prevHash || !n.joined {
		return // the round moved on
	}
	now := n.sys.engine.Now()
	bld := block.NewBuilder(prev, n.ident.Address(), now, minedAfter, bval)

	// Scratch storage view: assignments within this block must see each
	// other so one block doesn't dump everything on the same nodes.
	states := n.view.NodeStates(now)
	// Placement plans on home positions: the RDC (eq. 2) covers short-term
	// movement through the mobility-range terms, so the plan stays valid
	// while the live topology wobbles.
	topo := n.sys.net.HomeTopology()

	for _, it := range n.poolItems(now) {
		storing := n.placeItem(topo, states, it)
		if len(storing) == 0 {
			continue
		}
		packed := it.Clone()
		packed.StoringNodes = storing
		bld.AddItem(packed)
		for _, sn := range storing {
			states[sn].Used++
		}
	}

	// Block-body placement (no replica floor: recent FIFOs already cover
	// fresh blocks everywhere).
	blockNodes := n.placeBlock(topo, states)
	for _, sn := range blockNodes {
		states[sn].Used++
	}
	bld.SetStoringNodes(blockNodes)
	bld.SetPrevStoringNodes(prev.StoringNodes)

	// Recent-block allocation (Section IV-C): solve the same problem to
	// pick the nodes that grow their recent FIFO by one.
	recentNodes := n.placeBlock(topo, states)
	for _, sn := range recentNodes {
		states[sn].Used++
	}
	bld.SetRecentAssignees(recentNodes)

	// Data migration (Section VII future work): re-place up to the
	// configured number of drifted items.
	for _, migrated := range n.pickMigrations(topo, states, now) {
		bld.AddItem(migrated)
		for _, sn := range migrated.StoringNodes {
			states[sn].Used++
		}
		n.sys.stats.migrations++
	}

	blk := bld.Seal()
	if _, err := n.ch.Add(blk); err != nil {
		// Our own block must be valid; a failure here is a programming
		// error worth surfacing loudly in simulation.
		panic(fmt.Sprintf("core: node %d rejects own block: %v", n.id, err))
	}
	n.sys.stats.blocksMined++
	n.sys.net.Broadcast(netsim.NodeID(n.id), msgBlock{blk: blk})
	n.scheduleMining()
}

// poolItems returns the unexpired pool items in deterministic order.
func (n *Node) poolItems(now time.Duration) []*meta.Item {
	items := make([]*meta.Item, 0, len(n.metaPool))
	for id, it := range n.metaPool {
		if it.Expired(now) || n.inChain[id] {
			delete(n.metaPool, id)
			continue
		}
		items = append(items, it)
	}
	// Deterministic order: by ID bytes.
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && lessID(items[j].ID, items[j-1].ID); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	return items
}

func lessID(a, b meta.DataID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// placeItem chooses storing nodes for one data item under the configured
// strategy.
func (n *Node) placeItem(topo *netsim.Topology, states []alloc.NodeState, it *meta.Item) []int {
	optimal := n.place(topo, states)
	if n.sys.cfg.Placement == PlaceRandom {
		// Baseline: same replica count, uniformly random nodes
		// (Section VI-B's "fair comparison").
		return alloc.RandomPlace(states, len(optimal), n.rng)
	}
	return optimal
}

// place runs the data-item planner over the scratch state.
func (n *Node) place(topo *netsim.Topology, states []alloc.NodeState) []int {
	pl, err := n.sys.planner.Place(topo, states)
	if err != nil {
		return nil
	}
	return pl.StoringNodes
}

// placeBlock runs the block planner (no replica floor).
func (n *Node) placeBlock(topo *netsim.Topology, states []alloc.NodeState) []int {
	pl, err := n.sys.blockPlanner.Place(topo, states)
	if err != nil {
		return nil
	}
	return pl.StoringNodes
}

// --- raft ----------------------------------------------------------------

// attachRaft wires the optional Raft layer (general information consensus).
func (n *Node) attachRaft(cfg raft.Config) {
	n.raft = raft.New(cfg)
}

// Raft returns the node's Raft instance, or nil.
func (n *Node) Raft() *raft.Node { return n.raft }

// logOf wraps math.Log for the deterministic PoW solve-time sample.
func logOf(x float64) float64 { return math.Log(x) }

// pickMigrations selects up to MigrateMaxPerBlock live items whose
// current storing set costs more than MigrateCostRatio times the freshly
// computed optimal, and returns re-announced clones carrying the new
// assignment. The cursor round-robins across items so every item is
// eventually reconsidered.
func (n *Node) pickMigrations(topo *netsim.Topology, states []alloc.NodeState, now time.Duration) []*meta.Item {
	maxPer := n.sys.cfg.MigrateMaxPerBlock
	if maxPer <= 0 || len(n.liveItems) == 0 {
		return nil
	}
	ratio := n.sys.cfg.MigrateCostRatio
	if ratio <= 1 {
		ratio = 1.5
	}
	ids := make([]meta.DataID, 0, len(n.liveItems))
	for id := range n.liveItems {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && lessID(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var out []*meta.Item
	budget := 4 * maxPer // cost-evaluation budget per block
	for k := 0; k < len(ids) && budget > 0 && len(out) < maxPer; k++ {
		idx := (n.migrateCursor + k) % len(ids)
		it := n.liveItems[ids[idx]]
		if it.Expired(now) || len(it.StoringNodes) == 0 {
			continue
		}
		budget--
		in := n.sys.planner.BuildInstance(topo, states)
		pl, err := n.sys.planner.Place(topo, states)
		if err != nil || len(pl.StoringNodes) == 0 {
			continue
		}
		cur := setCost(in, it.StoringNodes)
		des := setCost(in, pl.StoringNodes)
		if sameSet(it.StoringNodes, pl.StoringNodes) || cur <= ratio*des {
			continue
		}
		migrated := it.Clone()
		migrated.StoringNodes = pl.StoringNodes
		out = append(out, migrated)
	}
	n.migrateCursor += 4 * maxPer
	return out
}

// setCost evaluates the UFL objective of serving every client from the
// given open set under the instance's costs.
func setCost(in *ufl.Instance, open []int) float64 {
	total := 0.0
	for _, i := range open {
		if i >= 0 && i < in.NFacilities() {
			total += in.OpenCost[i]
		}
	}
	for j := 0; j < in.NClients(); j++ {
		best := math.Inf(1)
		for _, i := range open {
			if i >= 0 && i < in.NFacilities() {
				if c := in.ConnCost[i][j]; c < best {
					best = c
				}
			}
		}
		if !math.IsInf(best, 1) {
			total += best
		}
	}
	return total
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			return false
		}
	}
	return true
}

package core

import (
	"sync"

	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/meta"
)

// Store abstracts a node's durable persistence: the block log that
// survives restarts and the content-addressed data-item bytes. The live
// stack (internal/livenode, cmd/edgenode) plugs in internal/store's
// disk-backed implementation; simulations and tests use MemStore, which
// keeps the original purely-in-memory behaviour.
//
// Implementations must be safe for concurrent use.
type Store interface {
	// RecoveredBlocks returns the blocks recovered at open time in index
	// order (never including genesis); the caller replays them into its
	// chain replica. In-memory stores return nil.
	RecoveredBlocks() []*block.Block
	// AppendBlock durably appends one adopted block.
	AppendBlock(b *block.Block) error
	// ResetChain replaces the whole persisted chain (fork adoption);
	// genesis is excluded.
	ResetChain(blocks []*block.Block) error
	// Checkpoint records the chain head + height so the next open can
	// replay incrementally.
	Checkpoint(height uint64, head block.Hash) error
	// SaveSnapshot durably persists a serialized engine state snapshot at
	// the given height together with the header spine covering [1, height]
	// (DESIGN.md §14), superseding any earlier snapshot.
	SaveSnapshot(height uint64, blob []byte, spine []chain.Header) error
	// RecoveredSnapshot returns the hash-verified snapshot found at open
	// time, if any; ok=false means replay from genesis.
	RecoveredSnapshot() (blob []byte, spine []chain.Header, height uint64, ok bool)
	// CompactBlocks discards persisted blocks wholly below the prune
	// horizon (whole WAL segments only; a partial segment is kept).
	CompactBlocks(below uint64) error

	// PutData stores a data item's content under its content hash.
	PutData(id meta.DataID, content []byte) error
	// GetData returns a data item's content.
	GetData(id meta.DataID) ([]byte, bool)
	// HasData reports whether the item's content is held.
	HasData(id meta.DataID) bool
	// PruneData removes items for which expired returns true.
	PruneData(expired func(meta.DataID) bool) (int, error)

	// Close releases the store.
	Close() error
}

// MemStore is the in-memory Store used by simulations and tests: data
// items live in a map and the chain-persistence calls are no-ops, exactly
// the pre-persistence behaviour of the live node.
type MemStore struct {
	mu   sync.Mutex
	data map[meta.DataID][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{data: make(map[meta.DataID][]byte)}
}

// RecoveredBlocks implements Store (nothing survives a restart).
func (s *MemStore) RecoveredBlocks() []*block.Block { return nil }

// AppendBlock implements Store as a no-op.
func (s *MemStore) AppendBlock(*block.Block) error { return nil }

// ResetChain implements Store as a no-op.
func (s *MemStore) ResetChain([]*block.Block) error { return nil }

// Checkpoint implements Store as a no-op.
func (s *MemStore) Checkpoint(uint64, block.Hash) error { return nil }

// SaveSnapshot implements Store as a no-op (nothing survives a restart).
func (s *MemStore) SaveSnapshot(uint64, []byte, []chain.Header) error { return nil }

// RecoveredSnapshot implements Store (nothing survives a restart).
func (s *MemStore) RecoveredSnapshot() ([]byte, []chain.Header, uint64, bool) {
	return nil, nil, 0, false
}

// CompactBlocks implements Store as a no-op.
func (s *MemStore) CompactBlocks(uint64) error { return nil }

// PutData stores a copy of the content.
func (s *MemStore) PutData(id meta.DataID, content []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.data[id]; !ok {
		s.data[id] = append([]byte(nil), content...)
	}
	return nil
}

// GetData returns the stored content.
func (s *MemStore) GetData(id meta.DataID) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	content, ok := s.data[id]
	return content, ok
}

// HasData reports whether the item is held.
func (s *MemStore) HasData(id meta.DataID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.data[id]
	return ok
}

// PruneData removes expired items.
func (s *MemStore) PruneData(expired func(meta.DataID) bool) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	removed := 0
	for id := range s.data {
		if expired(id) {
			delete(s.data, id)
			removed++
		}
	}
	return removed, nil
}

// Close implements Store as a no-op.
func (s *MemStore) Close() error { return nil }

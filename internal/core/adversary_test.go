package core

import (
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/identity"
	"repro/internal/meta"
	"repro/internal/netsim"
	"repro/internal/pos"
)

// runQuiet advances a fresh system a little so a genesis-extending context
// exists, and returns it.
func adversarySystem(t *testing.T, seed int64) *System {
	t.Helper()
	cfg := quickConfig(8, seed)
	cfg.MobilityEpoch = 0
	cfg.DataRatePerMin = 0
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(3 * time.Minute); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestForgedBlockWithUnknownMinerRejected(t *testing.T) {
	sys := adversarySystem(t, 1)
	victim := sys.Node(0)
	before := victim.Chain().Height()

	stranger := identity.GenerateSeeded(sys.rng)
	tip := victim.Chain().Tip()
	forged := block.NewBuilder(tip, stranger.Address(), sys.engine.Now(), 1, tip.B).Seal()
	victim.handleBlock(1, forged)
	if victim.Chain().Height() != before {
		t.Fatal("block from unknown account accepted")
	}
}

func TestBlockWithPaddedMiningTimeRejected(t *testing.T) {
	sys := adversarySystem(t, 2)
	victim := sys.Node(0)
	cheater := sys.Node(1)
	before := victim.Chain().Height()

	// The cheater claims a mining time far beyond its winning time to
	// inflate its target.
	tip := victim.Chain().Tip()
	params := sys.cfg.PoS
	bval := params.AmendmentB(cheater.eng.Ledger().N(), cheater.eng.Ledger().UBar())
	hit := params.Hit(tip, cheater.ident.Address())
	wt := pos.TimeToMine(hit, cheater.eng.Ledger().U(1), bval)
	padded := wt + 1000
	blk := block.NewBuilder(tip, cheater.ident.Address(),
		tip.Timestamp+time.Duration(padded)*time.Second, padded, bval).Seal()
	// Deliver with a permissive clock: jump the engine forward so the
	// timestamp is not "from the future".
	sys.engine.ScheduleAt(blk.Timestamp+time.Second, func() {
		victim.handleBlock(1, blk)
	})
	if err := sys.engine.Run(blk.Timestamp + 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if victim.Chain().Height() != before && victim.Chain().Tip().Hash == blk.Hash {
		t.Fatal("padded mining time accepted")
	}
}

func TestBlockWithWrongAmendmentRejected(t *testing.T) {
	sys := adversarySystem(t, 3)
	victim := sys.Node(0)
	cheater := sys.Node(1)
	before := victim.Chain().Height()

	tip := victim.Chain().Tip()
	params := sys.cfg.PoS
	// An inflated B makes every hit win instantly.
	badB := params.AmendmentB(cheater.eng.Ledger().N(), cheater.eng.Ledger().UBar()) * 1e6
	blk := block.NewBuilder(tip, cheater.ident.Address(),
		tip.Timestamp+time.Second, 1, badB).Seal()
	sys.engine.ScheduleAt(blk.Timestamp+time.Second, func() {
		victim.handleBlock(1, blk)
	})
	if err := sys.engine.Run(blk.Timestamp + 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if victim.Chain().Tip().Hash == blk.Hash {
		t.Fatalf("forged amendment accepted (height %d -> %d)", before, victim.Chain().Height())
	}
}

func TestFutureTimestampRejected(t *testing.T) {
	sys := adversarySystem(t, 4)
	victim := sys.Node(0)
	cheater := sys.Node(1)

	tip := victim.Chain().Tip()
	params := sys.cfg.PoS
	bval := params.AmendmentB(cheater.eng.Ledger().N(), cheater.eng.Ledger().UBar())
	hit := params.Hit(tip, cheater.ident.Address())
	wt := pos.TimeToMine(hit, cheater.eng.Ledger().U(1), bval)
	// Honest claim, but stamped one hour into the receiver's future.
	blk := block.NewBuilder(tip, cheater.ident.Address(),
		sys.engine.Now()+time.Hour, wt, bval).Seal()
	victim.handleBlock(1, blk)
	if victim.Chain().Tip().Hash == blk.Hash {
		t.Fatal("future-stamped block accepted")
	}
}

func TestTamperedMetadataInPoolDropped(t *testing.T) {
	sys := adversarySystem(t, 5)
	victim := sys.Node(0)

	producer := sys.Node(2)
	it := &meta.Item{
		ID:       meta.HashData([]byte("legit")),
		Type:     "T/x",
		Produced: sys.engine.Now(),
		DataSize: 100,
	}
	it.Sign(producer.ident)
	it.Type = "T/forged" // break the signature

	before := victim.eng.PoolLen()
	victim.handleMetadata(it)
	if victim.eng.PoolLen() != before {
		t.Fatal("forged metadata entered the pool")
	}
}

func TestDataNackAdvancesToNextCandidate(t *testing.T) {
	cfg := quickConfig(6, 6)
	cfg.MobilityEpoch = 0
	cfg.DataRatePerMin = 0
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requester := sys.Node(0)

	// A fake item that claims node 1 stores it (it does not) and node 2
	// produced it (node 2 will hold it via ownData).
	producer := sys.Node(2)
	it := &meta.Item{
		ID:       meta.HashData([]byte("want")),
		Type:     "T/x",
		DataSize: 1 << 10,
	}
	it.Sign(producer.ident)
	it.StoringNodes = []int{1}
	producer.ownData[it.ID] = true

	sys.engine.Schedule(0, func() { requester.startConsume(it) })
	if err := sys.engine.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if !requester.consumed[it.ID] {
		t.Fatal("requester never fell through to the producer after the NACK")
	}
	if sys.delivery.Count() != 1 {
		t.Fatalf("deliveries = %d, want 1", sys.delivery.Count())
	}
}

func TestServableBlockRespectsAssignments(t *testing.T) {
	sys := adversarySystem(t, 7)
	n := sys.Node(0)
	if !n.servableBlock(0) {
		t.Fatal("genesis must always be servable")
	}
	h := n.Chain().Height()
	if h == 0 {
		t.Skip("no blocks mined")
	}
	// The newest block is in everyone's recent cache.
	if !n.servableBlock(h) {
		t.Fatal("tip not servable despite recent cache")
	}
	// A height that is neither assigned nor recent must not be servable.
	probe := uint64(1)
	if n.recent.Contains(probe) || n.blockStore[probe] {
		t.Skip("height 1 happens to be cached on node 0")
	}
	if n.servableBlock(probe) {
		t.Fatal("unassigned, non-recent block served")
	}
}

func TestCandidateOrderingByHops(t *testing.T) {
	cfg := quickConfig(6, 8)
	cfg.MobilityEpoch = 0
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := sys.Node(0)
	it := &meta.Item{ID: meta.HashData([]byte("x")), StoringNodes: []int{1, 2, 3, 4, 5}}
	cands := n.candidatesFor(it)
	topo := sys.net.Topology()
	for i := 1; i < len(cands); i++ {
		a := topo.Hops(netsim.NodeID(0), netsim.NodeID(cands[i-1]))
		b := topo.Hops(netsim.NodeID(0), netsim.NodeID(cands[i]))
		if a > b {
			t.Fatalf("candidates not hop-ordered: %v", cands)
		}
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/pos"
)

// TestCheckpointBlocksFinalizeHistory verifies the Section V-D checkpoint
// defense: a longer fork that rewrites history at or below the latest
// checkpoint is refused.
func TestCheckpointBlocksFinalizeHistory(t *testing.T) {
	cfg := quickConfig(8, 21)
	cfg.MobilityEpoch = 0
	cfg.DataRatePerMin = 0
	cfg.CheckpointInterval = 3
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	victim := sys.Node(0)
	h := victim.Chain().Height()
	if h < 4 {
		t.Skipf("only %d blocks mined", h)
	}
	cp := victim.lastCheckpoint()
	if cp == 0 {
		t.Fatalf("no checkpoint at height %d with interval 3", h)
	}

	// Build a fake longer chain that diverges at height 1 (below the
	// checkpoint). PoS claims on it are self-consistent by construction:
	// the attacker replays its own wins on a fresh ledger.
	attacker := sys.Node(1)
	params := sys.cfg.PoS
	scratch := pos.NewLedger(sys.accounts)
	fake := []*block.Block{sys.genesis}
	for len(fake) < int(h)+3 {
		prev := fake[len(fake)-1]
		bval := params.AmendmentB(scratch.N(), scratch.UBar())
		hit := params.Hit(prev, attacker.ident.Address())
		wt := pos.TimeToMine(hit, scratch.U(1), bval)
		if wt == pos.NeverMines {
			t.Fatal("attacker cannot mine")
		}
		blk := block.NewBuilder(prev, attacker.ident.Address(),
			prev.Timestamp+time.Duration(wt)*time.Second, wt, bval).Seal()
		if err := scratch.ApplyBlock(blk); err != nil {
			t.Fatal(err)
		}
		fake = append(fake, blk)
	}

	before := victim.Chain().Tip().Hash
	victim.handleChainResponse(msgChainResponse{blocks: fake})
	if victim.Chain().Tip().Hash != before {
		t.Fatal("checkpointed history was rewritten by a longer fork")
	}

	// Without checkpoints the same fork must be adopted (control).
	cfg2 := cfg
	cfg2.CheckpointInterval = 0
	sys2, err := NewSystem(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.Run(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	victim2 := sys2.Node(0)
	if int(victim2.Chain().Height()) >= len(fake)-1 {
		t.Skip("control chain too tall for the fake fork")
	}
	victim2.handleChainResponse(msgChainResponse{blocks: fake})
	if victim2.Chain().Tip().Hash != fake[len(fake)-1].Hash {
		t.Fatal("control: longest-chain rule did not adopt the longer fork")
	}
}

// TestRecentDepthCap verifies the Section VII recent-cache expiration:
// allowances stop growing at the cap.
func TestRecentDepthCap(t *testing.T) {
	cfg := quickConfig(8, 22)
	cfg.MobilityEpoch = 0
	cfg.DataRatePerMin = 0
	cfg.RecentDepthCap = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(40 * time.Minute); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.NumNodes; i++ {
		n := sys.Node(i)
		if d := n.recent.Depth(); d > 2 {
			t.Fatalf("node %d recent depth %d exceeds cap 2", i, d)
		}
		if d := n.eng.View().RecentDepth(i); d > 2 {
			t.Fatalf("node %d view depth %d exceeds cap 2", i, d)
		}
	}
}

// TestMigrationAdvice verifies the Section VII data-migration analysis:
// advice reflects drift between recorded and freshly computed placements,
// and plans are well-formed.
func TestMigrationAdvice(t *testing.T) {
	cfg := quickConfig(12, 23)
	cfg.DataRatePerMin = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	advice := sys.MigrationAdvice(0)
	for _, a := range advice {
		if a.Plan.Empty() {
			t.Fatalf("empty plan included in advice: %+v", a)
		}
		for _, m := range a.Plan.Moves {
			if m.To < 0 || m.To >= cfg.NumNodes {
				t.Fatalf("move target out of range: %+v", m)
			}
		}
	}
	t.Logf("%d items drifted from optimal placement", len(advice))
}

// TestPoWConsensusMode verifies the Fig. 6 baseline inside the full system:
// blocks are mined at roughly the same pace as PoS, but the hash work burns
// orders of magnitude more energy.
func TestPoWConsensusMode(t *testing.T) {
	cfg := quickConfig(10, 31)
	cfg.Consensus = ConsensusPoW
	cfg.DataRatePerMin = 1
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	res := sys.Results()
	if res.Consensus != ConsensusPoW {
		t.Fatalf("consensus echo = %v", res.Consensus)
	}
	if res.ChainHeight < 5 {
		t.Fatalf("PoW mode mined only %d blocks in 20 min (t0=30s)", res.ChainHeight)
	}
	var mining float64
	for _, j := range res.MiningEnergyJ {
		mining += j
	}
	if mining <= 0 {
		t.Fatal("no mining energy recorded")
	}
	// All nodes converge under PoW too.
	tip := sys.Node(0).Chain().Tip()
	for i := 1; i < cfg.NumNodes; i++ {
		if sys.Node(i).Chain().Tip().Hash != tip.Hash {
			t.Fatalf("node %d diverged under PoW", i)
		}
	}
}

// TestEnergyAccountingPoSVsPoW checks the in-system energy ordering.
func TestEnergyAccountingPoSVsPoW(t *testing.T) {
	run := func(algo ConsensusAlgo) *Results {
		cfg := quickConfig(8, 32)
		cfg.Consensus = algo
		cfg.DataRatePerMin = 0
		cfg.MobilityEpoch = 0
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(20 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return sys.Results()
	}
	posRes := run(ConsensusPoS)
	powRes := run(ConsensusPoW)
	var posJ, powJ float64
	for i := range posRes.MiningEnergyJ {
		posJ += posRes.MiningEnergyJ[i]
	}
	for i := range powRes.MiningEnergyJ {
		powJ += powRes.MiningEnergyJ[i]
	}
	if powJ <= posJ {
		t.Fatalf("PoW mining energy %.2f J not above PoS %.2f J", powJ, posJ)
	}
	if posRes.EnergyPerBlockJ <= 0 || powRes.EnergyPerBlockJ <= 0 {
		t.Fatal("per-block energy not recorded")
	}
	t.Logf("PoS %.1f J vs PoW %.1f J mining energy", posJ, powJ)
}

// TestRadioEnergyScalesWithTraffic confirms radio joules follow the byte
// counters.
func TestRadioEnergyScalesWithTraffic(t *testing.T) {
	cfg := quickConfig(10, 33)
	cfg.DataRatePerMin = 3
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	res := sys.Results()
	st := sys.Network().Stats()
	for i, j := range res.RadioEnergyJ {
		want := cfg.RadioJPerByte * float64(st.TxBytes[i]+st.RxBytes[i])
		if j != want {
			t.Fatalf("node %d radio energy %.3f, want %.3f", i, j, want)
		}
	}
}

// TestMigrationExecutes verifies the executed data-migration path: with
// MigrateMaxPerBlock enabled, drifted items get re-announced with new
// storing sets, new holders fetch the content and released holders free
// their storage.
func TestMigrationExecutes(t *testing.T) {
	cfg := quickConfig(12, 41)
	cfg.MigrateMaxPerBlock = 2
	cfg.MigrateCostRatio = 1.01 // migrate on the slightest drift
	cfg.DataRatePerMin = 3
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(40 * time.Minute); err != nil {
		t.Fatal(err)
	}
	res := sys.Results()
	if res.Migrations == 0 {
		t.Skip("no drift materialized under this seed")
	}
	// Consistency: for every live item, all nodes agree on the latest
	// assignment, and assigned nodes hold (or are fetching) the content.
	ref := sys.Node(0)
	for id, it := range ref.eng.LiveItems() {
		for i := 1; i < cfg.NumNodes; i++ {
			other := sys.Node(i).eng.LiveItem(id)
			if other == nil {
				continue // late propagation
			}
			if !sameSet(it.StoringNodes, other.StoringNodes) {
				t.Fatalf("nodes disagree on assignment of %s: %v vs %v",
					id.Short(), it.StoringNodes, other.StoringNodes)
			}
		}
	}
	// Released holders really freed storage: no node stores an item it is
	// neither assigned to nor produced or consumed.
	for i := 0; i < cfg.NumNodes; i++ {
		node := sys.Node(i)
		for id := range node.dataStore {
			it := node.eng.LiveItem(id)
			if it == nil {
				continue
			}
			assigned := false
			for _, sn := range it.StoringNodes {
				if sn == i {
					assigned = true
				}
			}
			if !assigned {
				t.Fatalf("node %d still stores migrated-away item %s", i, id.Short())
			}
		}
	}
	t.Logf("%d migrations executed", res.Migrations)
}

// TestMigrationDisabledByDefault confirms the paper's status quo.
func TestMigrationDisabledByDefault(t *testing.T) {
	cfg := quickConfig(10, 42)
	cfg.DataRatePerMin = 3
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if sys.Results().Migrations != 0 {
		t.Fatal("migrations ran without being enabled")
	}
}

// TestStakeRescaleInSystem runs the Section V-B automatic rescaling inside
// the full system: consensus must be unaffected (all nodes converge) and
// the scale must have grown.
func TestStakeRescaleInSystem(t *testing.T) {
	cfg := quickConfig(8, 61)
	cfg.MobilityEpoch = 0
	cfg.StakeRescaleEvery = 5
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if sys.Node(0).Chain().Height() < 5 {
		t.Skip("too few blocks")
	}
	if sys.Node(0).eng.Ledger().Scale() <= 1 {
		t.Fatal("automatic rescaling never fired")
	}
	tip := sys.Node(0).Chain().Tip()
	for i := 1; i < cfg.NumNodes; i++ {
		if sys.Node(i).Chain().Tip().Hash != tip.Hash {
			t.Fatalf("node %d diverged under stake rescaling", i)
		}
	}
}

package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/alloc"
	"repro/internal/block"
	"repro/internal/geo"
	"repro/internal/identity"
	"repro/internal/meta"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/raft"
	"repro/internal/sim"
)

// System is one simulated edge-blockchain deployment: the network, the
// node processes, the workload and the measurement hooks.
type System struct {
	cfg    Config
	engine *sim.Engine
	rng    *rand.Rand
	net    *netsim.Network

	placements []geo.Placement
	idents     []*identity.Identity
	accounts   []identity.Address
	addrToNode map[identity.Address]int
	genesis    *block.Block
	// planner places data items (MinReplicas enforced); blockPlanner
	// places block bodies and recent-block assignments without a forced
	// replica floor — blocks are additionally covered by every node's
	// recent FIFO, so padding their replication only burns storage (at 10
	// nodes it saturates the 250-item capacity).
	planner      *alloc.Planner
	blockPlanner *alloc.Planner
	nodes        []*Node
	requesters   map[int]bool

	delivery *metrics.DeliverySamples
	stats    systemStats
	// wanted records which requesters the workload assigned to each item
	// ("data are requested randomly by 10 percent of nodes").
	wanted map[meta.DataID]map[int]bool

	mob     *netsim.Mobility
	dataSeq int

	sampleTypes []string
}

type systemStats struct {
	blocksMined      int
	blocksAdopted    int
	failedRequests   int
	failedFetches    int
	gapRecoveries    int
	forkReplacements int
	dataGenerated    int
	migrations       int
}

// NewSystem builds a deployment from the configuration. The same seed
// yields an identical run.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:        cfg,
		engine:     sim.NewEngine(),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		addrToNode: make(map[identity.Address]int, cfg.NumNodes),
		requesters: make(map[int]bool),
		wanted:     make(map[meta.DataID]map[int]bool),
		delivery:   &metrics.DeliverySamples{},
		sampleTypes: []string{
			"AirQuality/PM2.5", "Picture/Traffic", "Video/Clip",
			"Energy/Reading", "Road/Congestion",
		},
	}

	placements, err := geo.PlaceNodesConnected(cfg.Field, cfg.NumNodes, cfg.MobilityRange, cfg.CommRange, s.rng, 500)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.placements = placements
	s.net = netsim.New(s.engine, cfg.Field, placements, cfg.CommRange, cfg.Net, rand.New(rand.NewSource(cfg.Seed+1)))

	s.idents = make([]*identity.Identity, cfg.NumNodes)
	s.accounts = make([]identity.Address, cfg.NumNodes)
	keyRNG := rand.New(rand.NewSource(cfg.Seed + 2))
	for i := range s.idents {
		s.idents[i] = identity.GenerateSeeded(keyRNG)
		s.accounts[i] = s.idents[i].Address()
		s.addrToNode[s.accounts[i]] = i
	}
	s.genesis = block.Genesis(cfg.Seed)

	s.planner = alloc.NewPlanner(cfg.CommRange)
	if cfg.MinReplicas > 0 {
		s.planner.MinReplicas = cfg.MinReplicas
	}
	if cfg.Solver != nil {
		s.planner.Solve = cfg.Solver
	}
	s.blockPlanner = alloc.NewPlanner(cfg.CommRange)
	s.blockPlanner.MinReplicas = 1
	if cfg.Solver != nil {
		s.blockPlanner.Solve = cfg.Solver
	}

	s.nodes = make([]*Node, cfg.NumNodes)
	for i := range s.nodes {
		s.nodes[i] = newNode(s, i, s.idents[i], rand.New(rand.NewSource(cfg.Seed+10+int64(i))))
		s.net.Attach(netsim.NodeID(i), s.nodes[i])
	}

	// Requesters: 10% of nodes issue data requests (Section VI-A).
	want := int(float64(cfg.NumNodes)*cfg.RequesterFraction + 0.5)
	if want < 1 && cfg.RequesterFraction > 0 {
		want = 1
	}
	perm := s.rng.Perm(cfg.NumNodes)
	for _, id := range perm[:want] {
		s.requesters[id] = true
	}

	// Late joiners start disconnected.
	for id := range cfg.LateJoiners {
		if id >= 0 && id < cfg.NumNodes {
			s.nodes[id].joined = false
			s.net.SetDown(netsim.NodeID(id), true)
		}
	}

	if cfg.MobilityEpoch > 0 {
		s.mob = &netsim.Mobility{
			Field:      cfg.Field,
			Placements: placements,
			RNG:        rand.New(rand.NewSource(cfg.Seed + 3)),
		}
	}

	if cfg.EnableRaft {
		s.setupRaft()
	}
	return s, nil
}

// Engine exposes the simulation engine (examples drive it directly).
func (s *System) Engine() *sim.Engine { return s.engine }

// Network exposes the simulated network.
func (s *System) Network() *netsim.Network { return s.net }

// Node returns node i.
func (s *System) Node(i int) *Node { return s.nodes[i] }

// Requesters returns the IDs of requester nodes in no particular order.
func (s *System) Requesters() []int {
	out := make([]int, 0, len(s.requesters))
	for id := range s.requesters {
		out = append(out, id)
	}
	return out
}

type raftTransport struct {
	sys  *System
	from int
}

// Send implements raft.Transport over the simulated radio network.
func (t raftTransport) Send(to raft.NodeID, msg *raft.Message) {
	t.sys.net.Unicast(netsim.NodeID(t.from), netsim.NodeID(int(to)), msgRaft{rm: msg})
}

func (s *System) setupRaft() {
	hb := s.cfg.RaftHeartbeat
	if hb == 0 {
		hb = time.Second // edge-scale heartbeat, not datacenter-scale
	}
	ids := make([]raft.NodeID, s.cfg.NumNodes)
	for i := range ids {
		ids[i] = raft.NodeID(i)
	}
	for i, n := range s.nodes {
		peers := make([]raft.NodeID, 0, len(ids)-1)
		for _, p := range ids {
			if int(p) != i {
				peers = append(peers, p)
			}
		}
		n.attachRaft(raft.Config{
			ID:                 raft.NodeID(i),
			Peers:              peers,
			HeartbeatInterval:  hb,
			ElectionTimeoutMin: 4 * hb,
			ElectionTimeoutMax: 8 * hb,
			Transport:          raftTransport{sys: s, from: i},
			Clock:              raft.SimClock{Engine: s.engine},
			RNG:                rand.New(rand.NewSource(s.cfg.Seed + 100 + int64(i))),
		})
	}
	// The leader periodically proposes a network-view snapshot (the
	// "general information consensus" role Raft plays in the paper).
	sim.NewTicker(s.engine, time.Minute, func() {
		for _, n := range s.nodes {
			if n.raft != nil && n.raft.State() == raft.Leader {
				n.raft.Propose(make([]byte, 128))
				break
			}
		}
	})
}

// Run executes the simulation for the given virtual duration.
func (s *System) Run(d time.Duration) error {
	for _, n := range s.nodes {
		if n.joined {
			n.scheduleMining()
		}
	}
	if s.cfg.Trace != nil {
		s.scheduleTrace()
	} else {
		s.scheduleNextData()
	}
	if s.mob != nil && s.cfg.MobilityEpoch > 0 {
		sim.NewTicker(s.engine, s.cfg.MobilityEpoch, func() {
			s.net.SetPositions(s.mob.Step())
		})
	}
	for id, at := range s.cfg.LateJoiners {
		id := id
		s.engine.ScheduleAt(at, func() { s.nodes[id].join() })
	}
	return s.engine.Run(s.engine.Now() + d)
}

// scheduleTrace schedules every event of the pre-generated workload trace.
func (s *System) scheduleTrace() {
	for _, ev := range s.cfg.Trace.Events {
		ev := ev
		s.engine.ScheduleAt(ev.At, func() {
			if ev.Producer < 0 || ev.Producer >= s.cfg.NumNodes || !s.nodes[ev.Producer].joined {
				return
			}
			s.dataSeq++
			it := s.nodes[ev.Producer].produce(s.dataSeq, ev.Type)
			if len(ev.Requesters) > 0 {
				set := make(map[int]bool, len(ev.Requesters))
				for _, r := range ev.Requesters {
					set[r] = true
				}
				s.wanted[it.ID] = set
			}
			s.stats.dataGenerated++
		})
	}
}

// scheduleNextData arms the next data-production event with exponential
// interarrival at the configured network-wide rate.
func (s *System) scheduleNextData() {
	if s.cfg.DataRatePerMin <= 0 {
		return
	}
	meanGap := time.Duration(60.0 / s.cfg.DataRatePerMin * float64(time.Second))
	gap := time.Duration(s.rng.ExpFloat64() * float64(meanGap))
	if gap < time.Millisecond {
		gap = time.Millisecond
	}
	s.engine.Schedule(gap, func() {
		producer := s.pickProducer()
		if producer >= 0 {
			s.dataSeq++
			typ := s.sampleTypes[s.dataSeq%len(s.sampleTypes)]
			it := s.nodes[producer].produce(s.dataSeq, typ)
			s.assignRequesters(it, producer)
			s.stats.dataGenerated++
		}
		s.scheduleNextData()
	})
}

// assignRequesters draws the workload's consumers for one item from the
// requester pool.
func (s *System) assignRequesters(it *meta.Item, producer int) {
	want := s.cfg.RequestsPerItem
	if want <= 0 || len(s.requesters) == 0 {
		return
	}
	pool := make([]int, 0, len(s.requesters))
	for id := range s.requesters {
		if id != producer {
			pool = append(pool, id)
		}
	}
	sortInts(pool) // deterministic iteration before shuffling
	s.rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
	if want > len(pool) {
		want = len(pool)
	}
	set := make(map[int]bool, want)
	for _, id := range pool[:want] {
		set[id] = true
	}
	s.wanted[it.ID] = set
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// wantedBy reports whether the workload assigned item id to requester node.
func (s *System) wantedBy(id meta.DataID, node int) bool {
	return s.wanted[id][node]
}

// ProduceData makes the given node produce one data item of the given type
// immediately and routes it through the normal metadata/placement flow.
// Examples use it to drive explicit scenarios instead of the random
// workload. Must be called from inside the simulation (via Engine
// scheduling) or before Run.
func (s *System) ProduceData(producer int, typ string) *meta.Item {
	s.dataSeq++
	it := s.nodes[producer].produce(s.dataSeq, typ)
	s.assignRequesters(it, producer)
	s.stats.dataGenerated++
	return it
}

// Identities returns the deployment's node identities (index = node ID).
// Differential tests reuse them to run a live cluster on the same roster.
func (s *System) Identities() []*identity.Identity { return s.idents }

// InjectItem feeds a pre-built, signed metadata item into producer's pool
// as if that node had produced it, and broadcasts the metadata. Must be
// called from inside the simulation (via Engine scheduling) or before Run.
func (s *System) InjectItem(producer int, it *meta.Item) {
	n := s.nodes[producer]
	n.ownData[it.ID] = true
	n.eng.AddLocal(it)
	s.net.Broadcast(netsim.NodeID(producer), msgMetadata{item: it})
}

// DeliverySamples returns the number of recorded data deliveries so far.
func (s *System) DeliveryCount() int { return s.delivery.Count() }

func (s *System) pickProducer() int {
	for attempts := 0; attempts < 10; attempts++ {
		id := s.rng.Intn(s.cfg.NumNodes)
		if s.nodes[id].joined {
			return id
		}
	}
	return -1
}

// Results summarizes a finished run; the fields map onto the paper's
// figures (see DESIGN.md experiment index).
type Results struct {
	// Config echo.
	NumNodes       int
	DataRatePerMin float64
	Placement      PlacementStrategy

	// Chain outcome.
	ChainHeight   uint64
	BlocksMined   int
	DataGenerated int

	// Fig. 4(a) / 5(b): per-node transmission overhead in bytes.
	AvgTxBytesPerNode float64
	TotalTxBytes      uint64
	PerNodeTxBytes    []uint64
	KindBytes         map[string]uint64

	// Fig. 4(b): storage fairness.
	StorageGini   float64
	StorageCounts []int

	// Fig. 4(c) / 5(a): data delivery time (seconds).
	Delivery       metrics.Summary
	FailedRequests int
	FailedFetches  int

	// Fig. 6 in-system: per-node energy in joules. Mining is hash work
	// (PoW) or target checks (PoS); radio charges every TX/RX byte.
	Consensus       ConsensusAlgo
	MiningEnergyJ   []float64
	RadioEnergyJ    []float64
	TotalEnergyJ    float64
	EnergyPerBlockJ float64

	// Robustness counters.
	GapRecoveries    int
	ForkReplacements int
	// Migrations counts executed data-migration re-placements (Section
	// VII future work; requires MigrateMaxPerBlock > 0).
	Migrations int
}

// Results collects the measurements after Run.
func (s *System) Results() *Results {
	st := s.net.Stats()
	height := uint64(0)
	for _, n := range s.nodes {
		if h := n.eng.Height(); h > height {
			height = h
		}
	}
	counts := make([]int, len(s.nodes))
	for i, n := range s.nodes {
		counts[i] = n.StoredItems()
	}
	kind := make(map[string]uint64, len(st.KindBytes))
	for k, v := range st.KindBytes {
		kind[k] = v
	}
	mining := make([]float64, len(s.nodes))
	radio := make([]float64, len(s.nodes))
	totalEnergy := 0.0
	for i, n := range s.nodes {
		mining[i] = n.miningEnergyJ
		radio[i] = s.cfg.RadioJPerByte * float64(st.TxBytes[i]+st.RxBytes[i])
		totalEnergy += mining[i] + radio[i]
	}
	perBlock := 0.0
	if height > 0 {
		perBlock = totalEnergy / float64(height)
	}
	return &Results{
		Consensus:         s.cfg.Consensus,
		MiningEnergyJ:     mining,
		RadioEnergyJ:      radio,
		TotalEnergyJ:      totalEnergy,
		EnergyPerBlockJ:   perBlock,
		NumNodes:          s.cfg.NumNodes,
		DataRatePerMin:    s.cfg.DataRatePerMin,
		Placement:         s.cfg.Placement,
		ChainHeight:       height,
		BlocksMined:       s.stats.blocksMined,
		DataGenerated:     s.stats.dataGenerated,
		AvgTxBytesPerNode: st.AvgTxBytesPerNode(),
		TotalTxBytes:      st.TotalTxBytes(),
		PerNodeTxBytes:    append([]uint64(nil), st.TxBytes...),
		KindBytes:         kind,
		StorageGini:       metrics.GiniInts(counts),
		StorageCounts:     counts,
		Delivery:          s.delivery.Summary(),
		FailedRequests:    s.stats.failedRequests,
		FailedFetches:     s.stats.failedFetches,
		GapRecoveries:     s.stats.gapRecoveries,
		ForkReplacements:  s.stats.forkReplacements,
		Migrations:        s.stats.migrations,
	}
}

// Package core ties the substrates into the paper's edge blockchain: edge
// nodes that generate and trade data, allocate storage with the fair and
// efficient UFL placement (Section IV), mine blocks with the new
// Proof-of-Stake (Section V), recover missing blocks after disconnections
// (Section IV-D), and measure the transmission overhead, fairness and
// delivery times that the evaluation (Section VI) reports.
package core

import (
	"errors"
	"time"

	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/pos"
	"repro/internal/ufl"
	"repro/internal/workload"
)

// ConsensusAlgo selects the mining consensus.
type ConsensusAlgo int

// Consensus algorithms of the Fig. 6 comparison.
const (
	// ConsensusPoS is the paper's contribution-weighted Proof of Stake.
	ConsensusPoS ConsensusAlgo = iota + 1
	// ConsensusPoW is the Proof-of-Work baseline: same expected block
	// interval, but every node burns HashRate hashes per second until the
	// round is won.
	ConsensusPoW
)

// String implements fmt.Stringer.
func (c ConsensusAlgo) String() string {
	switch c {
	case ConsensusPoS:
		return "pos"
	case ConsensusPoW:
		return "pow"
	default:
		return "unknown"
	}
}

// PlacementStrategy selects how storing nodes are chosen.
type PlacementStrategy int

// Placement strategies of the Fig. 5 comparison.
const (
	// PlaceOptimal is the paper's fair-and-efficient UFL placement.
	PlaceOptimal PlacementStrategy = iota + 1
	// PlaceRandom stores each item on the same number of uniformly random
	// non-full nodes (the Section VI-B baseline).
	PlaceRandom
)

// String implements fmt.Stringer.
func (s PlacementStrategy) String() string {
	switch s {
	case PlaceOptimal:
		return "optimal"
	case PlaceRandom:
		return "random"
	default:
		return "unknown"
	}
}

// Config parametrizes a simulation. DefaultConfig returns the paper's
// Section VI setup.
type Config struct {
	// NumNodes is the network size (paper: 10-50).
	NumNodes int
	// Field is the deployment area (paper: 300 m x 300 m).
	Field geo.Field
	// CommRange is the radio range in meters (paper: 70).
	CommRange float64
	// MobilityRange is each node's wander radius in meters (paper: 30).
	MobilityRange float64
	// MobilityEpoch is how often nodes move; zero disables movement.
	MobilityEpoch time.Duration
	// StorageCapacity is per-node storage in items/blocks (paper: 250).
	StorageCapacity int
	// DataSize is the size of one data item in bytes (paper: 1 MB).
	DataSize int
	// DataRatePerMin is the network-wide data production rate in items
	// per minute (paper: 1-3).
	DataRatePerMin float64
	// DataValidFor is each item's valid time (paper example: 1440 min).
	DataValidFor time.Duration
	// RequesterFraction of nodes issue data requests (paper: 10%).
	RequesterFraction float64
	// RequestsPerItem is how many requesters (drawn from the requester
	// pool) ask for each data item ("data are requested randomly by 10
	// percent of nodes"). Default 1.
	RequestsPerItem int
	// RequestSpread is the random delay after announcement within which a
	// requester asks for a new item.
	RequestSpread time.Duration
	// RequestTimeout is how long a requester waits before trying the next
	// candidate node.
	RequestTimeout time.Duration
	// PoS holds the mining parameters (M, t0; paper: t0 = 60 s).
	PoS pos.Params
	// Consensus selects the mining algorithm: the paper's PoS (default)
	// or the PoW baseline, which burns hash work at HashRate while
	// waiting. Network-level energy results (Results.EnergyPerNodeJ)
	// reproduce the Fig. 6 comparison inside the full system.
	Consensus ConsensusAlgo
	// HashRate is the device hash rate in SHA-256/s used by the PoW
	// energy model (default 2621 H/s: the paper's phone solves 16-bit
	// difficulty in 25 s on average).
	HashRate float64
	// Energy is the device battery/energy model (default the calibrated
	// Galaxy S8 model).
	Energy energy.Model
	// RadioJPerByte is the radio energy per transmitted or received byte
	// (default 1e-6 J/B, typical 802.11 figures).
	RadioJPerByte float64
	// Placement selects the allocation strategy.
	Placement PlacementStrategy
	// Solver is the UFL solver used by optimal placement (default greedy).
	Solver func(*ufl.Instance) (*ufl.Solution, error)
	// MinReplicas floors the storing-node count per item.
	MinReplicas int
	// InitialRecentDepth is every node's starting recent-cache allowance
	// (paper: 1, "all nodes store at least the last block"). The A2
	// ablation sweeps it.
	InitialRecentDepth int
	// RecentDepthCap bounds how far the recent-cache allowance can grow
	// through assignments; 0 disables the cap. Implements the paper's
	// future-work note that "recent blocks storage will need the
	// expiration to avoid using up the storage" (Section VII).
	RecentDepthCap int
	// StakeRescaleEvery, when positive, automatically rescales all stakes
	// every k blocks (Section V-B's numeric-hygiene rule). All nodes apply
	// it at the same heights, so consensus is unaffected.
	StakeRescaleEvery uint64
	// MigrateMaxPerBlock, when positive, lets each miner re-place up to
	// this many drifted data items per block: the item is re-announced
	// with a fresh storing set, newly assigned nodes fetch it (preferring
	// the old holders as sources) and released nodes free the storage.
	// This executes the data-migration future work of Section VII. 0
	// disables migration (the paper's status quo).
	MigrateMaxPerBlock int
	// MigrateCostRatio is the drift threshold: an item migrates only when
	// its current assignment's access cost exceeds the recomputed optimal
	// by this factor (default 1.5), damping thrash.
	MigrateCostRatio float64
	// CheckpointInterval, when positive, finalizes every k-th block:
	// nodes refuse to adopt forks that rewrite history at or below the
	// latest checkpoint. This is the checkpoint-block defense against the
	// nothing-at-stake problem discussed in Section V-D. 0 disables it.
	CheckpointInterval int
	// Net holds the radio parameters (per-hop delay, bandwidth, drops).
	Net netsim.Config
	// Seed drives all randomness; same seed, same run.
	Seed int64
	// EnableRaft runs the Raft general-consensus layer alongside the
	// blockchain (the paper "partly use[s] the raft algorithm"), adding
	// its message overhead to the network accounting.
	EnableRaft bool
	// RaftHeartbeat overrides the Raft heartbeat interval when EnableRaft
	// is set (default 1 s — edge-scale, not datacenter-scale).
	RaftHeartbeat time.Duration
	// LateJoiners lists node IDs that start disconnected and join at the
	// given times (the "new node entering the network" scenario, Fig. 3).
	LateJoiners map[int]time.Duration
	// Trace, when set, replaces the built-in random workload with a
	// pre-generated one (package workload). Producers and per-item
	// requesters come from the trace; DataRatePerMin, RequesterFraction
	// and RequestsPerItem are ignored. Replaying one trace across
	// configurations yields paired comparisons (used by Fig. 5).
	Trace *workload.Trace
}

// DefaultConfig returns the paper's simulation parameters for n nodes.
func DefaultConfig(n int) Config {
	return Config{
		NumNodes:           n,
		Field:              geo.DefaultField(),
		CommRange:          70,
		MobilityRange:      30,
		MobilityEpoch:      30 * time.Second,
		StorageCapacity:    250,
		DataSize:           1 << 20,
		DataRatePerMin:     1,
		DataValidFor:       1440 * time.Minute,
		RequesterFraction:  0.10,
		RequestsPerItem:    1,
		RequestSpread:      30 * time.Second,
		RequestTimeout:     3 * time.Second,
		PoS:                pos.DefaultParams(),
		Consensus:          ConsensusPoS,
		HashRate:           2621,
		Energy:             energy.GalaxyS8(),
		RadioJPerByte:      1e-6,
		Placement:          PlaceOptimal,
		MinReplicas:        2,
		InitialRecentDepth: 1,
		Net:                netsim.DefaultConfig(),
		Seed:               1,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.NumNodes < 1:
		return errors.New("core: NumNodes must be at least 1")
	case c.CommRange <= 0:
		return errors.New("core: CommRange must be positive")
	case c.StorageCapacity < 1:
		return errors.New("core: StorageCapacity must be at least 1")
	case c.DataSize <= 0:
		return errors.New("core: DataSize must be positive")
	case c.DataRatePerMin < 0:
		return errors.New("core: DataRatePerMin must be non-negative")
	case c.RequesterFraction < 0 || c.RequesterFraction > 1:
		return errors.New("core: RequesterFraction must be in [0, 1]")
	case c.Placement != PlaceOptimal && c.Placement != PlaceRandom:
		return errors.New("core: unknown placement strategy")
	case c.Consensus != ConsensusPoS && c.Consensus != ConsensusPoW:
		return errors.New("core: unknown consensus algorithm")
	case c.Consensus == ConsensusPoW && c.HashRate <= 0:
		return errors.New("core: PoW consensus requires a positive HashRate")
	}
	if err := c.PoS.Validate(); err != nil {
		return err
	}
	return nil
}

package core

import (
	"repro/internal/block"
	"repro/internal/meta"
	"repro/internal/raft"
)

// Wire messages. Every type implements netsim.Message; Kind drives the
// per-category overhead accounting of Fig. 4(a) (metadata, blocks, data
// requests/transfers, control traffic, raft).

// msgMetadata announces a freshly produced data item (Section IV-B).
type msgMetadata struct {
	item *meta.Item
}

func (m msgMetadata) Size() int    { return m.item.EncodedSize() }
func (m msgMetadata) Kind() string { return "meta" }

// msgBlock broadcasts a newly mined block.
type msgBlock struct {
	blk *block.Block
}

func (m msgBlock) Size() int    { return m.blk.EncodedSize() }
func (m msgBlock) Kind() string { return "block" }

// msgDataRequest asks a storing node for a data item (Section IV-D).
type msgDataRequest struct {
	id  meta.DataID
	seq uint64
}

func (m msgDataRequest) Size() int    { return 80 }
func (m msgDataRequest) Kind() string { return "ctrl" }

// msgDataResponse carries the actual data item back to the requester.
type msgDataResponse struct {
	id       meta.DataID
	seq      uint64
	dataSize int
}

func (m msgDataResponse) Size() int    { return m.dataSize + 64 }
func (m msgDataResponse) Kind() string { return "data" }

// msgDataNack tells the requester this node cannot serve the item, so it
// can try the next candidate without waiting for the timeout.
type msgDataNack struct {
	id  meta.DataID
	seq uint64
}

func (m msgDataNack) Size() int    { return 48 }
func (m msgDataNack) Kind() string { return "ctrl" }

// msgDataPull is the storing node proactively fetching the data item from
// its producer after a block assigned it ("data dissemination" overhead).
type msgDataPull struct {
	id  meta.DataID
	seq uint64
}

func (m msgDataPull) Size() int    { return 80 }
func (m msgDataPull) Kind() string { return "ctrl" }

// msgBlockRangeRequest asks for block bodies in [from, to] (missing-block
// recovery, Section IV-D).
type msgBlockRangeRequest struct {
	from, to uint64
}

func (m msgBlockRangeRequest) Size() int    { return 64 }
func (m msgBlockRangeRequest) Kind() string { return "ctrl" }

// msgBlockRangeResponse returns the subset of requested blocks the sender
// stores.
type msgBlockRangeResponse struct {
	blocks []*block.Block
}

func (m msgBlockRangeResponse) Size() int {
	total := 32
	for _, b := range m.blocks {
		total += b.EncodedSize()
	}
	return total
}
func (m msgBlockRangeResponse) Kind() string { return "block" }

// msgChainRequest asks a peer for its full chain (fork resolution and
// new-node sync; this mirrors Naivechain, the paper's code base, which
// responds to conflicts by transferring the whole chain).
type msgChainRequest struct{}

func (m msgChainRequest) Size() int    { return 48 }
func (m msgChainRequest) Kind() string { return "ctrl" }

// msgChainResponse carries a full chain.
type msgChainResponse struct {
	blocks []*block.Block
}

func (m msgChainResponse) Size() int {
	total := 32
	for _, b := range m.blocks {
		total += b.EncodedSize()
	}
	return total
}
func (m msgChainResponse) Kind() string { return "block" }

// msgRaft wraps a Raft RPC for transport over the simulated radio network.
type msgRaft struct {
	rm *raft.Message
}

func (m msgRaft) Size() int    { return m.rm.WireSize() }
func (m msgRaft) Kind() string { return "raft" }

package core

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// quickConfig returns a small, fast configuration for integration tests.
func quickConfig(n int, seed int64) Config {
	cfg := DefaultConfig(n)
	cfg.Seed = seed
	cfg.DataRatePerMin = 2
	cfg.PoS.T0 = 30 * time.Second
	return cfg
}

func TestSystemValidation(t *testing.T) {
	cfg := DefaultConfig(0)
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("zero nodes accepted")
	}
	cfg = DefaultConfig(5)
	cfg.Placement = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("unset placement accepted")
	}
}

func TestSystemMinesBlocksNearExpectedRate(t *testing.T) {
	cfg := quickConfig(15, 1)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dur := 20 * time.Minute
	if err := sys.Run(dur); err != nil {
		t.Fatal(err)
	}
	res := sys.Results()
	// t0 = 30 s over 20 min -> ~40 blocks expected; the derivation is
	// approximate, so accept a wide band.
	if res.ChainHeight < 10 || res.ChainHeight > 160 {
		t.Fatalf("chain height %d wildly off expectation (~40)", res.ChainHeight)
	}
	t.Logf("height=%d mined=%d data=%d", res.ChainHeight, res.BlocksMined, res.DataGenerated)
}

func TestSystemAllNodesConverge(t *testing.T) {
	cfg := quickConfig(12, 2)
	cfg.MobilityEpoch = 0 // static topology: everyone stays connected
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	tip := sys.Node(0).Chain().Tip()
	for i := 1; i < cfg.NumNodes; i++ {
		other := sys.Node(i).Chain().Tip()
		if other.Hash != tip.Hash {
			t.Fatalf("node %d tip %s != node 0 tip %s (heights %d vs %d)",
				i, other.Hash.Short(), tip.Hash.Short(),
				sys.Node(i).Chain().Height(), sys.Node(0).Chain().Height())
		}
	}
}

func TestSystemDataFlow(t *testing.T) {
	cfg := quickConfig(15, 3)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	res := sys.Results()
	if res.DataGenerated == 0 {
		t.Fatal("no data generated")
	}
	if res.Delivery.Count == 0 {
		t.Fatal("no deliveries recorded: requesters never got data")
	}
	if res.Delivery.Mean <= 0 || res.Delivery.Mean > 10 {
		t.Fatalf("mean delivery %v s implausible", res.Delivery.Mean)
	}
	// Data must actually be replicated onto assigned nodes.
	stored := 0
	for i := 0; i < cfg.NumNodes; i++ {
		stored += len(sys.Node(i).dataStore)
	}
	if stored == 0 {
		t.Fatal("no proactive data storage happened")
	}
	if res.KindBytes["data"] == 0 || res.KindBytes["block"] == 0 || res.KindBytes["meta"] == 0 {
		t.Fatalf("traffic kinds missing: %v", res.KindBytes)
	}
	t.Logf("delivery mean %.2fs over %d samples; gini %.3f; avg tx %.1f MB",
		res.Delivery.Mean, res.Delivery.Count, res.StorageGini,
		res.AvgTxBytesPerNode/(1<<20))
}

func TestSystemDeterministic(t *testing.T) {
	run := func() *Results {
		sys, err := NewSystem(quickConfig(10, 7))
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(10 * time.Minute); err != nil {
			t.Fatal(err)
		}
		return sys.Results()
	}
	a, b := run(), run()
	if a.ChainHeight != b.ChainHeight || a.TotalTxBytes != b.TotalTxBytes ||
		a.DataGenerated != b.DataGenerated || a.Delivery.Count != b.Delivery.Count {
		t.Fatalf("same seed diverged:\n a=%+v\n b=%+v", a, b)
	}
}

func TestSystemStorageFairness(t *testing.T) {
	cfg := quickConfig(20, 4)
	cfg.DataRatePerMin = 3
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	res := sys.Results()
	// Paper: Gini below 0.15 for equal-capacity nodes. Short runs are
	// noisier than the paper's 500 min, so allow some slack.
	if res.StorageGini > 0.35 {
		t.Fatalf("storage Gini %.3f far above the paper's <0.15 claim", res.StorageGini)
	}
	t.Logf("gini %.3f, storage counts %v", res.StorageGini, res.StorageCounts)
}

func TestSystemLateJoinerSyncs(t *testing.T) {
	cfg := quickConfig(10, 5)
	cfg.MobilityEpoch = 0
	cfg.LateJoiners = map[int]time.Duration{3: 10 * time.Minute}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	joiner := sys.Node(3).Chain().Height()
	reference := sys.Node(0).Chain().Height()
	if joiner == 0 {
		t.Fatal("late joiner never synced")
	}
	if diff := int64(reference) - int64(joiner); diff > 2 || diff < -2 {
		t.Fatalf("late joiner at height %d, network at %d", joiner, reference)
	}
}

func TestSystemNodeOutageRecovers(t *testing.T) {
	cfg := quickConfig(10, 6)
	cfg.MobilityEpoch = 0
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Knock node 4 out between minutes 5 and 12.
	sys.Engine().ScheduleAt(5*time.Minute, func() {
		sys.Network().SetDown(netsim.NodeID(4), true)
	})
	sys.Engine().ScheduleAt(12*time.Minute, func() {
		sys.Network().SetDown(netsim.NodeID(4), false)
	})
	if err := sys.Run(25 * time.Minute); err != nil {
		t.Fatal(err)
	}
	down := sys.Node(4).Chain().Height()
	ref := sys.Node(0).Chain().Height()
	if diff := int64(ref) - int64(down); diff > 2 || diff < -2 {
		t.Fatalf("outage node at height %d, network at %d (gap recovery failed)", down, ref)
	}
	t.Logf("gap recoveries: %d, fork replacements: %d",
		sys.Results().GapRecoveries, sys.Results().ForkReplacements)
}

func TestSystemPartitionHeals(t *testing.T) {
	cfg := quickConfig(12, 8)
	cfg.MobilityEpoch = 0
	cfg.DataRatePerMin = 0 // isolate consensus behaviour
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Partition nodes {0..5} from {6..11} between minutes 4 and 10.
	blocked := func(a, b netsim.NodeID) bool {
		return (a < 6) != (b < 6)
	}
	sys.Engine().ScheduleAt(4*time.Minute, func() { sys.Network().SetLinkFilter(blocked) })
	sys.Engine().ScheduleAt(10*time.Minute, func() { sys.Network().SetLinkFilter(nil) })
	if err := sys.Run(25 * time.Minute); err != nil {
		t.Fatal(err)
	}
	tip := sys.Node(0).Chain().Tip()
	for i := 1; i < cfg.NumNodes; i++ {
		if sys.Node(i).Chain().Tip().Hash != tip.Hash {
			t.Fatalf("node %d did not converge after partition heal (height %d vs %d)",
				i, sys.Node(i).Chain().Height(), sys.Node(0).Chain().Height())
		}
	}
	t.Logf("fork replacements: %d", sys.Results().ForkReplacements)
}

func TestSystemRandomPlacementRuns(t *testing.T) {
	cfg := quickConfig(12, 9)
	cfg.Placement = PlaceRandom
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	res := sys.Results()
	if res.ChainHeight == 0 || res.Placement != PlaceRandom {
		t.Fatalf("random-placement run broken: %+v", res)
	}
}

func TestSystemWithRaftOverhead(t *testing.T) {
	cfg := quickConfig(8, 10)
	cfg.EnableRaft = true
	cfg.DataRatePerMin = 0
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	res := sys.Results()
	if res.KindBytes["raft"] == 0 {
		t.Fatal("raft enabled but no raft traffic recorded")
	}
	// Some node must have become leader.
	leaders := 0
	for i := 0; i < cfg.NumNodes; i++ {
		if r := sys.Node(i).Raft(); r != nil && r.Leader() >= 0 {
			leaders++
		}
	}
	if leaders == 0 {
		t.Fatal("no node knows a raft leader")
	}
	t.Logf("raft bytes: %d", res.KindBytes["raft"])
}

func TestSystemRequesterCount(t *testing.T) {
	cfg := quickConfig(30, 11)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Requesters()); got != 3 {
		t.Fatalf("%d requesters for 30 nodes at 10%%, want 3", got)
	}
}

func TestSystemDataExpiryReleasesStorage(t *testing.T) {
	cfg := quickConfig(10, 12)
	cfg.DataValidFor = 5 * time.Minute
	cfg.DataRatePerMin = 3
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(30 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// With a 5-minute lifetime, stored data counts must stay bounded well
	// below the total generated.
	live := 0
	for i := 0; i < cfg.NumNodes; i++ {
		live += len(sys.Node(i).dataStore)
	}
	res := sys.Results()
	if res.DataGenerated < 30 {
		t.Skipf("only %d items generated", res.DataGenerated)
	}
	// Each item is replicated ~2-4x; without expiry live would be about
	// replicas*generated. Expiry keeps only the last ~5 minutes alive.
	if live > res.DataGenerated {
		t.Fatalf("%d live stored items for %d generated; expiry not working", live, res.DataGenerated)
	}
}

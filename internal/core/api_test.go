package core

import (
	"testing"
	"time"

	"repro/internal/meta"
	"repro/internal/workload"
)

func TestConfigValidateTable(t *testing.T) {
	mutations := map[string]func(*Config){
		"zero nodes":       func(c *Config) { c.NumNodes = 0 },
		"zero range":       func(c *Config) { c.CommRange = 0 },
		"zero storage":     func(c *Config) { c.StorageCapacity = 0 },
		"zero data size":   func(c *Config) { c.DataSize = 0 },
		"negative rate":    func(c *Config) { c.DataRatePerMin = -1 },
		"bad fraction":     func(c *Config) { c.RequesterFraction = 1.5 },
		"bad placement":    func(c *Config) { c.Placement = 0 },
		"bad consensus":    func(c *Config) { c.Consensus = 0 },
		"pow no hash rate": func(c *Config) { c.Consensus = ConsensusPoW; c.HashRate = 0 },
		"bad pos M":        func(c *Config) { c.PoS.M = 0 },
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig(10)
			mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Fatalf("%s accepted", name)
			}
		})
	}
	good := DefaultConfig(10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEnumStrings(t *testing.T) {
	if ConsensusPoS.String() != "pos" || ConsensusPoW.String() != "pow" {
		t.Fatal("consensus strings wrong")
	}
	if ConsensusAlgo(0).String() != "unknown" {
		t.Fatal("unknown consensus string wrong")
	}
	if PlaceOptimal.String() != "optimal" || PlaceRandom.String() != "random" {
		t.Fatal("placement strings wrong")
	}
	if PlacementStrategy(0).String() != "unknown" {
		t.Fatal("unknown placement string wrong")
	}
}

func TestProduceAndRequestDataAPI(t *testing.T) {
	cfg := quickConfig(10, 51)
	cfg.DataRatePerMin = 0
	cfg.MobilityEpoch = 0
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var produced *meta.Item
	sys.Engine().Schedule(time.Second, func() {
		produced = sys.ProduceData(2, "Test/Item")
	})
	// Request it from another node once it's on chain.
	sys.Engine().ScheduleAt(3*time.Minute, func() {
		if !sys.Node(7).RequestData(produced.ID) {
			t.Error("RequestData could not find the item")
		}
		if sys.Node(7).RequestData(meta.DataID{}) {
			t.Error("RequestData found a nonexistent item")
		}
	})
	if err := sys.Run(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if produced == nil {
		t.Fatal("ProduceData did not run")
	}
	// In an empty network the FDC is zero everywhere, so the single item
	// replicates to every node: the "requester" already stores it and the
	// request short-circuits. Either way it must end up holding the data.
	if !sys.Node(7).HasData(produced.ID) {
		t.Fatal("requester does not report holding the data")
	}
	if sys.Node(2).ID() != 2 || sys.Node(2).Address().IsZero() {
		t.Fatal("node identity accessors broken")
	}
}

func TestFindMetadataOnChain(t *testing.T) {
	cfg := quickConfig(10, 52)
	cfg.DataRatePerMin = 0
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine().Schedule(time.Second, func() {
		sys.ProduceData(1, "AirQuality/PM2.5")
		sys.ProduceData(3, "Picture/Traffic")
	})
	if err := sys.Run(4 * time.Minute); err != nil {
		t.Fatal(err)
	}
	air := sys.Node(5).FindMetadata(meta.Query{TypePrefix: "AirQuality/"})
	if len(air) != 1 {
		t.Fatalf("found %d air-quality items, want 1", len(air))
	}
	all := sys.Node(5).FindMetadata(meta.Query{})
	if len(all) != 2 {
		t.Fatalf("found %d items, want 2", len(all))
	}
}

func TestTraceDrivenWorkload(t *testing.T) {
	cfg := quickConfig(10, 53)
	trace, err := workload.Generate(workload.Config{
		Duration:        20 * time.Minute,
		RatePerMin:      2,
		NumNodes:        10,
		Requesters:      []int{4, 7},
		RequestsPerItem: 1,
		Seed:            9,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = trace
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(25 * time.Minute); err != nil {
		t.Fatal(err)
	}
	res := sys.Results()
	if res.DataGenerated != trace.Len() {
		t.Fatalf("generated %d items, trace has %d", res.DataGenerated, trace.Len())
	}
	if res.Delivery.Count == 0 {
		t.Fatal("trace requesters never got data")
	}
	// Replaying the identical trace yields identical data counts.
	sys2, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys2.Run(25 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if sys2.Results().DataGenerated != res.DataGenerated {
		t.Fatal("trace replay diverged")
	}
}

func TestPlacementDriftBounds(t *testing.T) {
	cfg := quickConfig(12, 54)
	cfg.DataRatePerMin = 3
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(20 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Drift hovers around or above 1; it can dip slightly below when an
	// old assignment happens to beat the greedy "optimal" on current-state costs.
	d := sys.PlacementDrift(0)
	if d < 0.5 {
		t.Fatalf("drift %v implausibly small", d)
	}
	if d > 10 {
		t.Fatalf("drift %v implausibly large", d)
	}
	// View assignments are exposed for every live item.
	n := sys.Node(0)
	for id, it := range n.eng.LiveItems() {
		if got := n.eng.View().Assignment(id); len(got) == 0 && !it.Expired(sys.Engine().Now()) {
			t.Fatalf("live item %s has no view assignment", id.Short())
		}
	}
}

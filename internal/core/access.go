package core

import (
	"errors"
	"sort"
	"time"

	"repro/internal/block"
	"repro/internal/meta"
	"repro/internal/netsim"
)

func errorsIs(err, target error) bool { return errors.Is(err, target) }

// --- data access (Section IV-D) -------------------------------------------

// candidatesFor orders the nodes that can serve an item by hop distance:
// assigned storing nodes first, then the producer as a last resort.
func (n *Node) candidatesFor(it *meta.Item) []int {
	topo := n.sys.net.Topology()
	seen := map[int]bool{n.id: true}
	var cands []int
	add := func(c int) {
		if c >= 0 && c < n.sys.cfg.NumNodes && !seen[c] {
			seen[c] = true
			cands = append(cands, c)
		}
	}
	for _, sn := range it.StoringNodes {
		add(sn)
	}
	sort.Slice(cands, func(a, b int) bool {
		return topo.Hops(netsim.NodeID(n.id), netsim.NodeID(cands[a])) <
			topo.Hops(netsim.NodeID(n.id), netsim.NodeID(cands[b]))
	})
	if p, ok := n.sys.addrToNode[it.Producer]; ok {
		add(p)
	}
	return cands
}

// startConsume issues a data request as a consumer; the delivery time is
// the Fig. 4(c)/5(a) metric.
func (n *Node) startConsume(it *meta.Item) {
	if !n.joined || n.consumed[it.ID] || n.dataStore[it.ID] || n.ownData[it.ID] {
		return
	}
	if it.Expired(n.sys.engine.Now()) {
		return
	}
	cands := n.candidatesFor(it)
	if len(cands) == 0 {
		n.sys.stats.failedRequests++
		return
	}
	n.beginRequest(reqConsume, it.ID, cands)
}

// startFetch pulls an assigned item from its producer (proactive storage).
func (n *Node) startFetch(it *meta.Item) { n.startFetchFrom(it, nil) }

// startFetchFrom pulls an assigned item, trying the preferred sources
// first (migration hands the previous holders here), then the producer,
// then the other newly assigned nodes.
func (n *Node) startFetchFrom(it *meta.Item, preferred []int) {
	p, hasProducer := n.sys.addrToNode[it.Producer]
	seen := map[int]bool{n.id: true}
	var cands []int
	add := func(c int) {
		if c >= 0 && c < n.sys.cfg.NumNodes && !seen[c] {
			seen[c] = true
			cands = append(cands, c)
		}
	}
	for _, src := range preferred {
		add(src)
	}
	if hasProducer {
		add(p)
	}
	for _, sn := range it.StoringNodes {
		add(sn)
	}
	if len(cands) == 0 {
		delete(n.pendingFetch, it.ID)
		return
	}
	n.beginRequest(reqFetch, it.ID, cands)
}

func (n *Node) beginRequest(kind requestKind, id meta.DataID, cands []int) {
	n.nextSeq++
	req := &pendingRequest{
		kind:       kind,
		id:         id,
		candidates: cands,
		start:      n.sys.engine.Now(),
	}
	n.pending[n.nextSeq] = req
	n.tryNextCandidate(n.nextSeq, req)
}

func (n *Node) tryNextCandidate(seq uint64, req *pendingRequest) {
	if req.timer != nil {
		req.timer.Stop()
		req.timer = nil
	}
	if req.tried >= len(req.candidates) {
		delete(n.pending, seq)
		n.requestFailed(req)
		return
	}
	target := req.candidates[req.tried]
	req.tried++
	var msg netsim.Message
	if req.kind == reqFetch {
		msg = msgDataPull{id: req.id, seq: seq}
	} else {
		msg = msgDataRequest{id: req.id, seq: seq}
	}
	ok := n.sys.net.Unicast(netsim.NodeID(n.id), netsim.NodeID(target), msg)
	timeout := n.sys.cfg.RequestTimeout
	if !ok {
		// Unreachable right now; try the next candidate after a short
		// backoff (the topology may heal with mobility).
		timeout = time.Second
	}
	req.timer = n.sys.engine.Schedule(timeout, func() {
		if n.pending[seq] == req {
			n.tryNextCandidate(seq, req)
		}
	})
}

func (n *Node) requestFailed(req *pendingRequest) {
	switch req.kind {
	case reqConsume:
		n.sys.stats.failedRequests++
	case reqFetch:
		// Retry the whole fetch a few times; producers may be briefly
		// disconnected.
		retries := n.pendingFetch[req.id]
		if retries < 5 {
			n.pendingFetch[req.id] = retries + 1
			id := req.id
			n.sys.engine.Schedule(10*time.Second, func() {
				if _, active := n.pendingFetch[id]; active && !n.dataStore[id] {
					if it := n.findItem(id); it != nil {
						n.startFetch(it)
					}
				}
			})
		} else {
			delete(n.pendingFetch, req.id)
			n.sys.stats.failedFetches++
		}
	}
}

// findItem looks the latest version of a metadata item up.
func (n *Node) findItem(id meta.DataID) *meta.Item {
	return n.eng.LiveItem(id)
}

// FindMetadata searches the node's on-chain metadata index for items
// matching the query ("the user can search what it demands", Section
// III-B1). Expired items are excluded; migrated items appear once, in
// their latest version.
func (n *Node) FindMetadata(q meta.Query) []*meta.Item {
	now := n.sys.engine.Now()
	var out []*meta.Item
	for _, it := range n.eng.LiveItems() {
		if !it.Expired(now) && q.Matches(it) {
			out = append(out, it)
		}
	}
	sort.Slice(out, func(a, b int) bool { return lessID(out[a].ID, out[b].ID) })
	return out
}

// RequestData issues a consumer request for the item and reports whether
// candidates existed; the delivery (if any) lands in the system metrics.
// Examples use this to drive explicit fetches outside the workload.
func (n *Node) RequestData(id meta.DataID) bool {
	it := n.findItem(id)
	if it == nil {
		return false
	}
	n.startConsume(it)
	return true
}

// HasData reports whether the node currently holds the item's content
// (as producer, assigned storing node, or consumer).
func (n *Node) HasData(id meta.DataID) bool {
	return n.ownData[id] || n.dataStore[id] || n.consumed[id]
}

func (n *Node) hasData(id meta.DataID) bool {
	return n.ownData[id] || n.dataStore[id]
}

func (n *Node) handleDataRequest(from int, m msgDataRequest) {
	if n.hasData(m.id) {
		n.sys.net.Unicast(netsim.NodeID(n.id), netsim.NodeID(from),
			msgDataResponse{id: m.id, seq: m.seq, dataSize: n.sys.cfg.DataSize})
		return
	}
	n.sys.net.Unicast(netsim.NodeID(n.id), netsim.NodeID(from), msgDataNack{id: m.id, seq: m.seq})
}

func (n *Node) handleDataPull(from int, m msgDataPull) {
	// Same serving logic; separated for accounting clarity.
	n.handleDataRequest(from, msgDataRequest{id: m.id, seq: m.seq})
}

func (n *Node) handleDataResponse(m msgDataResponse) {
	req, ok := n.pending[m.seq]
	if !ok || req.id != m.id {
		return
	}
	if req.timer != nil {
		req.timer.Stop()
	}
	delete(n.pending, m.seq)
	now := n.sys.engine.Now()
	switch req.kind {
	case reqConsume:
		n.consumed[m.id] = true
		n.sys.delivery.Add(now - req.start)
	case reqFetch:
		if _, active := n.pendingFetch[m.id]; active {
			n.dataStore[m.id] = true
			delete(n.pendingFetch, m.id)
		}
	}
}

func (n *Node) handleDataNack(m msgDataNack) {
	req, ok := n.pending[m.seq]
	if !ok || req.id != m.id {
		return
	}
	n.tryNextCandidate(m.seq, req)
}

// --- missing-block recovery (Section IV-D) ---------------------------------

// servableBlock reports whether this node may serve the body of the block
// at the given height: it must actually store it (assigned body or recent
// FIFO). Genesis is always servable.
func (n *Node) servableBlock(height uint64) bool {
	if height == 0 {
		return true
	}
	return n.blockStore[height] || n.recent.Contains(height)
}

// startBlockRecovery fetches missing heights [from, to], trying the block
// sender first, then radio neighbors (who very likely cache recent
// blocks), then the previous-block storing nodes recorded in the buffered
// block.
func (n *Node) startBlockRecovery(from, to uint64, sender int) {
	if n.sync != nil {
		return // already recovering
	}
	topo := n.sys.net.Topology()
	seen := map[int]bool{n.id: true}
	var cands []int
	add := func(c int) {
		if c >= 0 && c < n.sys.cfg.NumNodes && !seen[c] {
			seen[c] = true
			cands = append(cands, c)
		}
	}
	add(sender)
	for _, nb := range topo.Neighbors(netsim.NodeID(n.id)) {
		add(int(nb))
	}
	n.sync = &syncState{from: from, to: to, candidates: cands}
	n.sys.stats.gapRecoveries++
	n.tryNextSyncCandidate()
}

func (n *Node) tryNextSyncCandidate() {
	s := n.sync
	if s == nil {
		return
	}
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	// Refresh the range: drained blocks may have shrunk it.
	from, to, ok := n.eng.Chain().MissingRange()
	if !ok {
		n.cancelSync()
		return
	}
	s.from, s.to = from, to
	if s.tried >= len(s.candidates) {
		// Neighbors exhausted: fall back to a full chain request from the
		// first candidate (Naivechain behaviour).
		target := -1
		if len(s.candidates) > 0 {
			target = s.candidates[0]
		}
		n.cancelSync()
		if target >= 0 {
			n.requestChain(target)
		}
		return
	}
	target := s.candidates[s.tried]
	s.tried++
	n.sys.net.Unicast(netsim.NodeID(n.id), netsim.NodeID(target), msgBlockRangeRequest{from: s.from, to: s.to})
	s.timer = n.sys.engine.Schedule(2*time.Second, func() {
		if n.sync == s {
			n.tryNextSyncCandidate()
		}
	})
}

func (n *Node) cancelSync() {
	if n.sync != nil {
		if n.sync.timer != nil {
			n.sync.timer.Stop()
		}
		n.sync = nil
	}
}

func (n *Node) handleBlockRangeRequest(from int, m msgBlockRangeRequest) {
	var blocks []*block.Block
	for h := m.from; h <= m.to && h <= n.eng.Height(); h++ {
		if n.servableBlock(h) {
			if b := n.eng.Chain().At(h); b != nil {
				blocks = append(blocks, b)
			}
		}
	}
	if len(blocks) > 0 {
		n.sys.net.Unicast(netsim.NodeID(n.id), netsim.NodeID(from), msgBlockRangeResponse{blocks: blocks})
	}
}

func (n *Node) handleBlockRangeResponse(m msgBlockRangeResponse) {
	appendedAny := false
	for _, b := range m.blocks {
		appended, err := n.eng.ReceiveBlock(b)
		if err == nil && appended > 0 {
			appendedAny = true
		}
	}
	if appendedAny {
		n.scheduleMining()
	}
	if _, _, stillMissing := n.eng.Chain().MissingRange(); !stillMissing {
		n.cancelSync()
	} else if n.sync != nil {
		n.tryNextSyncCandidate()
	}
}

// --- fork resolution & full sync -------------------------------------------

func (n *Node) requestChain(target int) {
	n.sys.net.Unicast(netsim.NodeID(n.id), netsim.NodeID(target), msgChainRequest{})
}

func (n *Node) handleChainRequest(from int) {
	n.sys.net.Unicast(netsim.NodeID(n.id), netsim.NodeID(from), msgChainResponse{blocks: n.eng.Chain().Blocks()})
}

// lastCheckpoint returns the height of the newest finalized block under
// the checkpoint rule (0 when disabled or none reached yet).
func (n *Node) lastCheckpoint() uint64 { return n.eng.LastCheckpoint() }

// handleChainResponse runs Naivechain-style fork resolution through the
// engine (length check, checkpoint rule, scratch-ledger claim replay,
// derived-state rebuild) and layers the adapter's cleanup on adoption.
func (n *Node) handleChainResponse(m msgChainResponse) {
	if !n.eng.AdoptChain(m.blocks) {
		return
	}
	n.sys.stats.forkReplacements++
	n.reconcileStorage()
	n.cancelSync()
	n.scheduleMining()
}

// join brings a late joiner online: it syncs the chain from its nearest
// neighbor and starts mining (the "new node entering the network"
// scenario of Fig. 3).
func (n *Node) join() {
	n.joined = true
	n.sys.net.SetDown(netsim.NodeID(n.id), false)
	topo := n.sys.net.Topology()
	nbs := topo.Neighbors(netsim.NodeID(n.id))
	if len(nbs) > 0 {
		n.requestChain(int(nbs[0]))
	}
	n.scheduleMining()
}

// reconcileStorage drops stored data the adopted chain no longer assigns
// to this node (fork adoptions can rewrite assignments wholesale).
func (n *Node) reconcileStorage() {
	for id := range n.dataStore {
		it := n.eng.LiveItem(id)
		keep := false
		if it != nil {
			for _, sn := range it.StoringNodes {
				if sn == n.id {
					keep = true
					break
				}
			}
		}
		if !keep {
			delete(n.dataStore, id)
			delete(n.pendingFetch, id)
		}
	}
}

// lessID orders data IDs by raw bytes (deterministic iteration).
func lessID(a, b meta.DataID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			return false
		}
	}
	return true
}

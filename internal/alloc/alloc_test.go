package alloc

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/ufl"
)

func TestFDC(t *testing.T) {
	tests := []struct {
		name           string
		used, capacity int
		want           float64
	}{
		{"empty", 0, 250, 0},
		{"half", 125, 250, 1},
		{"nearly full", 249, 250, 249},
		{"full", 250, 250, math.Inf(1)},
		{"over full", 251, 250, math.Inf(1)},
		{"zero capacity", 0, 0, math.Inf(1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := FDC(tt.used, tt.capacity); got != tt.want {
				t.Errorf("FDC(%d, %d) = %v, want %v", tt.used, tt.capacity, got, tt.want)
			}
		})
	}
}

// Property: FDC is monotonically non-decreasing in used storage.
func TestFDCMonotoneProperty(t *testing.T) {
	prop := func(a, b uint8, capRaw uint8) bool {
		capacity := int(capRaw) + 2
		ua, ub := int(a)%capacity, int(b)%capacity
		if ua > ub {
			ua, ub = ub, ua
		}
		return FDC(ua, capacity) <= FDC(ub, capacity)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// lineTopo builds a 5-node line topology with 50 m spacing and 70 m range.
func lineTopo(n int) *netsim.Topology {
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Point{X: float64(i) * 50}
	}
	return netsim.NewTopology(pos, 70, nil)
}

func TestRDC(t *testing.T) {
	topo := lineTopo(5)
	if got := RDC(topo, 2, 2, [2]float64{30, 30}, 70); got != 0 {
		t.Errorf("RDC(i,i) = %v, want 0", got)
	}
	// 1 hop + (30+30)/70 hop units.
	want := 1 + 60.0/70
	if got := RDC(topo, 0, 1, [2]float64{30, 30}, 70); math.Abs(got-want) > 1e-12 {
		t.Errorf("RDC 1 hop = %v, want %v", got, want)
	}
	// 4 hops.
	want = 4 + 60.0/70
	if got := RDC(topo, 0, 4, [2]float64{30, 30}, 70); math.Abs(got-want) > 1e-12 {
		t.Errorf("RDC 4 hops = %v, want %v", got, want)
	}
}

func TestRDCUnreachable(t *testing.T) {
	pos := []geo.Point{{X: 0}, {X: 1000}}
	topo := netsim.NewTopology(pos, 70, nil)
	if got := RDC(topo, 0, 1, [2]float64{0, 0}, 70); !math.IsInf(got, 1) {
		t.Errorf("RDC unreachable = %v, want +Inf", got)
	}
}

func uniformStates(n, used, capacity int) []NodeState {
	out := make([]NodeState, n)
	for i := range out {
		out[i] = NodeState{Used: used, Capacity: capacity, MobilityRange: 30}
	}
	return out
}

func TestPlaceBasics(t *testing.T) {
	topo := lineTopo(5)
	p := NewPlanner(70)
	pl, err := p.Place(topo, uniformStates(5, 0, 250))
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.StoringNodes) < p.MinReplicas {
		t.Fatalf("storing nodes %v below MinReplicas %d", pl.StoringNodes, p.MinReplicas)
	}
	if len(pl.AccessFrom) != 5 {
		t.Fatalf("AccessFrom has %d entries, want 5", len(pl.AccessFrom))
	}
	storing := make(map[int]bool)
	for _, i := range pl.StoringNodes {
		storing[i] = true
	}
	for j, i := range pl.AccessFrom {
		if !storing[i] {
			t.Fatalf("client %d assigned to non-storing node %d", j, i)
		}
	}
	// Storing nodes must be sorted and unique.
	for k := 1; k < len(pl.StoringNodes); k++ {
		if pl.StoringNodes[k] <= pl.StoringNodes[k-1] {
			t.Fatalf("storing nodes not sorted/unique: %v", pl.StoringNodes)
		}
	}
}

func TestPlaceAvoidsFullNodes(t *testing.T) {
	topo := lineTopo(5)
	p := NewPlanner(70)
	states := uniformStates(5, 0, 250)
	states[2].Used = 250 // node 2 is full
	pl, err := p.Place(topo, states)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range pl.StoringNodes {
		if i == 2 {
			t.Fatalf("full node 2 chosen as storing node: %v", pl.StoringNodes)
		}
	}
}

func TestPlacePrefersEmptierNodes(t *testing.T) {
	// Clique topology so RDC is symmetric; load skews the decision.
	pos := []geo.Point{{X: 0}, {X: 10}, {X: 20}}
	topo := netsim.NewTopology(pos, 70, nil)
	p := NewPlanner(70)
	p.MinReplicas = 1
	states := []NodeState{
		{Used: 200, Capacity: 250, MobilityRange: 30},
		{Used: 10, Capacity: 250, MobilityRange: 30},
		{Used: 200, Capacity: 250, MobilityRange: 30},
	}
	pl, err := p.Place(topo, states)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range pl.StoringNodes {
		if i == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("emptiest node 1 not chosen: %v", pl.StoringNodes)
	}
}

func TestPlaceMinReplicasTopUp(t *testing.T) {
	pos := []geo.Point{{X: 0}, {X: 10}, {X: 20}, {X: 30}}
	topo := netsim.NewTopology(pos, 70, nil)
	p := NewPlanner(70)
	p.MinReplicas = 3
	pl, err := p.Place(topo, uniformStates(4, 0, 250))
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.StoringNodes) < 3 {
		t.Fatalf("got %d storing nodes, want >= 3", len(pl.StoringNodes))
	}
}

func TestPlaceMinReplicasCappedByCapacity(t *testing.T) {
	pos := []geo.Point{{X: 0}, {X: 10}, {X: 20}}
	topo := netsim.NewTopology(pos, 70, nil)
	p := NewPlanner(70)
	p.MinReplicas = 3
	states := []NodeState{
		{Used: 0, Capacity: 250, MobilityRange: 30},
		{Used: 250, Capacity: 250, MobilityRange: 30},
		{Used: 250, Capacity: 250, MobilityRange: 30},
	}
	pl, err := p.Place(topo, states)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.StoringNodes) != 1 {
		t.Fatalf("got %v, want exactly the one non-full node", pl.StoringNodes)
	}
}

func TestPlaceErrors(t *testing.T) {
	topo := lineTopo(3)
	p := NewPlanner(70)
	if _, err := p.Place(topo, nil); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := p.Place(topo, uniformStates(2, 0, 10)); err == nil {
		t.Fatal("mismatched state count accepted")
	}
}

func TestPlaceWithAlternateSolvers(t *testing.T) {
	topo := lineTopo(5)
	states := uniformStates(5, 50, 250)
	for _, solve := range []func(*ufl.Instance) (*ufl.Solution, error){
		ufl.Greedy,
		ufl.JMS,
		func(in *ufl.Instance) (*ufl.Solution, error) { return ufl.LocalSearch(in, nil) },
	} {
		p := NewPlanner(70)
		p.Solve = solve
		if _, err := p.Place(topo, states); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRandomPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	states := uniformStates(10, 0, 250)
	states[3].Used = 250
	for trial := 0; trial < 50; trial++ {
		got := RandomPlace(states, 3, rng)
		if len(got) != 3 {
			t.Fatalf("got %d nodes, want 3", len(got))
		}
		seen := make(map[int]bool)
		for _, i := range got {
			if i == 3 {
				t.Fatal("full node chosen by random placement")
			}
			if seen[i] {
				t.Fatalf("duplicate node in %v", got)
			}
			seen[i] = true
		}
		for k := 1; k < len(got); k++ {
			if got[k] < got[k-1] {
				t.Fatalf("not sorted: %v", got)
			}
		}
	}
}

func TestRandomPlaceMoreThanAvailable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	states := uniformStates(3, 0, 10)
	states[0].Used = 10
	got := RandomPlace(states, 5, rng)
	if len(got) != 2 {
		t.Fatalf("got %v, want the 2 non-full nodes", got)
	}
}

func TestRecentCacheFIFO(t *testing.T) {
	c := NewRecentCache(2)
	if ev := c.Push(1); ev != nil {
		t.Fatalf("eviction on first push: %v", ev)
	}
	if ev := c.Push(2); ev != nil {
		t.Fatalf("eviction below depth: %v", ev)
	}
	ev := c.Push(3)
	if len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1]", ev)
	}
	if c.Contains(1) || !c.Contains(2) || !c.Contains(3) {
		t.Fatal("cache contents wrong after FIFO eviction")
	}
}

func TestRecentCacheGrow(t *testing.T) {
	c := NewRecentCache(1)
	c.Push(1)
	c.Grow()
	if c.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", c.Depth())
	}
	if ev := c.Push(2); ev != nil {
		t.Fatalf("eviction after grow: %v", ev)
	}
	if !c.Contains(1) || !c.Contains(2) {
		t.Fatal("grown cache lost entries")
	}
}

// Regression: Heights used to return the internal FIFO slice, so a caller
// mutating the result (or holding it across an eviction, which rewrites the
// backing array in place) corrupted or observed corrupted cache state.
func TestRecentCacheHeightsIsACopy(t *testing.T) {
	c := NewRecentCache(2)
	c.Push(1)
	c.Push(2)

	got := c.Heights()
	got[0] = 99 // must not write through to the cache
	if !c.Contains(1) || c.Contains(99) {
		t.Fatal("mutating Heights() result corrupted the cache")
	}

	before := c.Heights()
	c.Push(3) // evicts 1 and shifts the backing array in place
	if before[0] != 1 || before[1] != 2 {
		t.Fatalf("snapshot taken before eviction changed underneath the caller: %v", before)
	}
}

func TestRecentCacheDuplicatePush(t *testing.T) {
	c := NewRecentCache(3)
	c.Push(5)
	c.Push(5)
	if c.Len() != 1 {
		t.Fatalf("duplicate push grew cache to %d", c.Len())
	}
}

func TestRecentCacheSetDepth(t *testing.T) {
	c := NewRecentCache(4)
	for h := uint64(1); h <= 4; h++ {
		c.Push(h)
	}
	ev := c.SetDepth(2)
	if len(ev) != 2 || ev[0] != 1 || ev[1] != 2 {
		t.Fatalf("evicted %v, want [1 2]", ev)
	}
	if c.SetDepth(0); c.Depth() != 1 {
		t.Fatalf("depth clamped to %d, want 1", c.Depth())
	}
}

func TestRecentCacheMinDepthOne(t *testing.T) {
	c := NewRecentCache(0)
	if c.Depth() != 1 {
		t.Fatalf("depth = %d, want clamp to 1", c.Depth())
	}
	c.Push(1)
	ev := c.Push(2)
	if len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1]", ev)
	}
}

// Property: cache never exceeds its depth and keeps the newest entries.
func TestRecentCacheProperty(t *testing.T) {
	prop := func(depthRaw uint8, pushes []uint8) bool {
		depth := int(depthRaw)%8 + 1
		c := NewRecentCache(depth)
		var last []uint64
		for _, p := range pushes {
			c.Push(uint64(p))
			if c.Len() > depth {
				return false
			}
			last = c.Heights()
			for i := 1; i < len(last); i++ {
				// FIFO keeps insertion order.
				_ = i
			}
		}
		_ = last
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPlaceCliqueMatchesGenericSolver pins the closed-form clique fast
// path to the generic instance-plus-greedy pipeline it shortcuts: same
// storing set, same access assignment, same cost, across empty, mixed,
// full and replica-top-up storage states. (Exact FDC == RDC-constant ties
// are excluded — integer used/capacity states never produce them.)
func TestPlaceCliqueMatchesGenericSolver(t *testing.T) {
	const n = 41
	cases := []struct {
		name        string
		used        func(i int) int
		minReplicas int
	}{
		{"all-empty", func(int) int { return 0 }, 2},
		{"one-empty", func(i int) int {
			if i == 7 {
				return 0
			}
			return 13
		}, 2},
		{"two-empty", func(i int) int { return (i * 3) % 40 }, 2},
		{"all-full", func(int) int { return 64 }, 2},
		{"top-up", func(i int) int { return 5 + i%50 }, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := netsim.NewClique(n)
			nodes := make([]NodeState, n)
			for i := range nodes {
				nodes[i] = NodeState{Used: tc.used(i), Capacity: 64}
			}
			fast := NewPlanner(1)
			fast.MinReplicas = tc.minReplicas
			slow := NewPlanner(1)
			slow.MinReplicas = tc.minReplicas
			slow.Solve = ufl.Greedy // explicit solver disables the fast path
			fp, err := fast.Place(topo, nodes)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := slow.Place(topo, nodes)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fp.StoringNodes, sp.StoringNodes) {
				t.Fatalf("storing nodes diverged: fast %v, generic %v", fp.StoringNodes, sp.StoringNodes)
			}
			if !reflect.DeepEqual(fp.AccessFrom, sp.AccessFrom) {
				t.Fatalf("access assignment diverged: fast %v, generic %v", fp.AccessFrom, sp.AccessFrom)
			}
			if fp.Cost != sp.Cost && math.Abs(fp.Cost-sp.Cost) > 1e-9*(1+math.Abs(sp.Cost)) {
				t.Fatalf("cost diverged: fast %v, generic %v", fp.Cost, sp.Cost)
			}
		})
	}
}

package alloc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/netsim"
)

// Property: for a fixed capacity the Fairness Degree Cost is strictly
// increasing in used storage, infinite exactly when the node is full, and
// strictly decreasing in capacity for fixed load.
func TestFDCMonotonicityProperty(t *testing.T) {
	prop := func(capRaw, usedRaw uint8) bool {
		capacity := int(capRaw%100) + 2 // 2..101
		used := int(usedRaw) % capacity // 0..capacity-1
		f := FDC(used, capacity)
		if math.IsInf(f, 1) || f < 0 {
			return false
		}
		if used+1 < capacity && FDC(used+1, capacity) <= f {
			return false // more load must cost strictly more
		}
		if !math.IsInf(FDC(capacity, capacity), 1) || !math.IsInf(FDC(capacity+1, capacity), 1) {
			return false // full and over-full nodes must be unplaceable
		}
		if used > 0 && FDC(used, capacity+1) >= f {
			return false // more headroom must cost strictly less
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// randomCluster builds a random connected-enough topology plus node states
// with random capacities/loads/mobility, guaranteeing at least minFree
// non-full nodes.
func randomCluster(rng *rand.Rand, minFree int) (*netsim.Topology, []NodeState) {
	n := minFree + rng.Intn(6) // minFree..minFree+5 nodes
	pos := make([]geo.Point, n)
	nodes := make([]NodeState, n)
	for i := range pos {
		// 60 m spacing max with 70 m range keeps a line-ish backbone
		// connected while still producing multi-hop distances.
		pos[i] = geo.Point{X: float64(i)*60 + rng.Float64()*10, Y: rng.Float64() * 30}
		capacity := 1 + rng.Intn(5)
		used := rng.Intn(capacity + 1) // may be full
		nodes[i] = NodeState{Used: used, Capacity: capacity, MobilityRange: rng.Float64() * 30}
	}
	// Force the guaranteed free nodes at random indices.
	for _, i := range rng.Perm(n)[:minFree] {
		nodes[i].Capacity = 1 + rng.Intn(5)
		nodes[i].Used = rng.Intn(nodes[i].Capacity)
	}
	return netsim.NewTopology(pos, 70, nil), nodes
}

// Property: Place never opens a full node (no capacity overflow), returns
// a sorted duplicate-free storing set of at least MinReplicas whenever
// enough non-full nodes exist, and assigns every client to a storing node.
func TestPlaceNoOverflowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := NewPlanner(70)
	for iter := 0; iter < 200; iter++ {
		topo, nodes := randomCluster(rng, p.MinReplicas)
		pl, err := p.Place(topo, nodes)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		free := 0
		for _, st := range nodes {
			if st.Used < st.Capacity {
				free++
			}
		}
		want := p.MinReplicas
		if free < want {
			want = free
		}
		if len(pl.StoringNodes) < want {
			t.Fatalf("iter %d: %d storing nodes, want >= %d (free=%d)", iter, len(pl.StoringNodes), want, free)
		}
		for k, i := range pl.StoringNodes {
			if nodes[i].Used >= nodes[i].Capacity {
				t.Fatalf("iter %d: full node %d (%d/%d) chosen as storing node",
					iter, i, nodes[i].Used, nodes[i].Capacity)
			}
			if k > 0 && pl.StoringNodes[k-1] >= i {
				t.Fatalf("iter %d: storing nodes not sorted/unique: %v", iter, pl.StoringNodes)
			}
		}
		open := make(map[int]bool)
		for _, i := range pl.StoringNodes {
			open[i] = true
		}
		for j, i := range pl.AccessFrom {
			if !open[i] {
				t.Fatalf("iter %d: client %d assigned to non-storing node %d", iter, j, i)
			}
		}
	}
}

// Property: the instance's opening costs are exactly the weighted FDC, so
// they inherit its monotonicity — loading a node strictly raises the cost
// of opening it again and never touches other nodes' costs.
func TestBuildInstanceOpenCostProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := NewPlanner(70)
	for iter := 0; iter < 100; iter++ {
		topo, nodes := randomCluster(rng, 1)
		in := p.BuildInstance(topo, nodes)
		victim := rng.Intn(len(nodes))
		if nodes[victim].Used >= nodes[victim].Capacity {
			continue
		}
		before := in.OpenCost[victim]
		nodes[victim].Used++
		in2 := p.BuildInstance(topo, nodes)
		if !(in2.OpenCost[victim] > before) {
			t.Fatalf("iter %d: open cost %v -> %v after loading node %d", iter, before, in2.OpenCost[victim], victim)
		}
		for i := range nodes {
			if i != victim && in2.OpenCost[i] != in.OpenCost[i] {
				t.Fatalf("iter %d: loading node %d changed node %d's open cost", iter, victim, i)
			}
		}
	}
}

// Property: RandomPlace returns at most k distinct non-full nodes in
// ascending order — the baseline must respect capacity too.
func TestRandomPlaceNoOverflowProperty(t *testing.T) {
	prop := func(seed int64, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%10) + 1
		k := int(kRaw % 12)
		nodes := make([]NodeState, n)
		free := 0
		for i := range nodes {
			capacity := 1 + rng.Intn(4)
			nodes[i] = NodeState{Used: rng.Intn(capacity + 1), Capacity: capacity}
			if nodes[i].Used < capacity {
				free++
			}
		}
		chosen := RandomPlace(nodes, k, rng)
		want := k
		if free < want {
			want = free
		}
		if len(chosen) != want {
			return false
		}
		for i, c := range chosen {
			if nodes[c].Used >= nodes[c].Capacity {
				return false
			}
			if i > 0 && chosen[i-1] >= c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: RecentCache behaves exactly like a bounded FIFO queue model —
// never exceeds its allowance, evicts oldest-first, rejects duplicates,
// and evictions partition the pushed set against the cached set.
func TestRecentCacheFIFOModelProperty(t *testing.T) {
	type op struct {
		kind   uint8
		height uint64
		depth  int
	}
	run := func(ops []op) bool {
		c := NewRecentCache(1)
		var model []uint64 // oldest first
		depth := 1
		contains := func(h uint64) bool {
			for _, x := range model {
				if x == h {
					return true
				}
			}
			return false
		}
		trim := func() []uint64 {
			if len(model) <= depth {
				return nil
			}
			ev := append([]uint64(nil), model[:len(model)-depth]...)
			model = model[len(model)-depth:]
			return ev
		}
		same := func(a, b []uint64) bool {
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		}
		for _, o := range ops {
			switch o.kind % 3 {
			case 0:
				evicted := c.Push(o.height)
				var want []uint64
				if !contains(o.height) {
					model = append(model, o.height)
					want = trim()
				}
				if !same(evicted, want) {
					return false
				}
			case 1:
				c.Grow()
				depth++
			case 2:
				evicted := c.SetDepth(o.depth)
				depth = o.depth
				if depth < 1 {
					depth = 1
				}
				if !same(evicted, trim()) {
					return false
				}
			}
			if c.Depth() != depth || c.Len() != len(model) || c.Len() > c.Depth() {
				return false
			}
			if !same(c.Heights(), model) {
				return false
			}
		}
		return true
	}
	prop := func(kinds []uint8, heights []uint8, depths []int8) bool {
		ops := make([]op, len(kinds))
		for i, k := range kinds {
			o := op{kind: k}
			if len(heights) > 0 {
				o.height = uint64(heights[i%len(heights)] % 8) // force duplicates
			}
			if len(depths) > 0 {
				o.depth = int(depths[i%len(depths)] % 6)
			}
			ops[i] = o
		}
		return run(ops)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: a migration plan's Keep/Release partition the current holders,
// and its move targets are exactly desired \ current in ascending order.
func TestMigrationPlanPartitionProperty(t *testing.T) {
	prop := func(curRaw, desRaw []uint8) bool {
		current := make([]int, len(curRaw))
		for i, v := range curRaw {
			current[i] = int(v % 12)
		}
		desired := make([]int, len(desRaw))
		for i, v := range desRaw {
			desired[i] = int(v % 12)
		}
		p := MigrationPlan(current, desired)
		curSet := make(map[int]bool)
		for _, n := range current {
			curSet[n] = true
		}
		desSet := make(map[int]bool)
		for _, n := range desired {
			desSet[n] = true
		}
		seen := make(map[int]bool)
		for _, n := range p.Keep {
			if !curSet[n] || !desSet[n] || seen[n] {
				return false
			}
			seen[n] = true
		}
		for _, n := range p.Release {
			if !curSet[n] || desSet[n] || seen[n] {
				return false
			}
			seen[n] = true
		}
		if len(seen) != len(curSet) {
			return false // Keep ∪ Release must cover every current holder
		}
		prev := -1
		for _, m := range p.Moves {
			if curSet[m.To] || !desSet[m.To] || m.To <= prev {
				return false
			}
			prev = m.To
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

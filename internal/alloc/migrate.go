package alloc

// Data migration (the paper's Section VII future work: "we will discuss
// the data migration problem, which will study how to use less operation
// to achieve less offset from the optimal result").
//
// Given the current storing set of an item and a freshly computed optimal
// placement, MigrationPlan pairs departures with arrivals so the item
// moves with the minimum number of copy operations: nodes in both sets
// keep their copy for free, each new node receives one copy (preferably
// from a departing node, otherwise from any keeper), and departing nodes
// release their storage afterwards.

// Move is one copy operation of the migration plan.
type Move struct {
	// From is a node that currently stores the item and will transfer it.
	From int
	// To is the node that must newly store the item.
	To int
}

// Plan is the minimal-operation migration for one item.
type Plan struct {
	// Keep are nodes present in both the current and desired sets: no
	// operation needed.
	Keep []int
	// Moves are the required copy operations (one per new storing node).
	Moves []Move
	// Release are current holders not in the desired set; they free the
	// storage once the moves complete.
	Release []int
}

// Ops returns the number of copy operations.
func (p *Plan) Ops() int { return len(p.Moves) }

// Empty reports whether the placement is already optimal.
func (p *Plan) Empty() bool { return len(p.Moves) == 0 && len(p.Release) == 0 }

// MigrationPlan computes the minimal-operation plan from the current
// holders to the desired set. Both slices may be unsorted; duplicates are
// ignored. If current is empty every desired node is sourced from -1
// (meaning: fetch from the producer).
func MigrationPlan(current, desired []int) *Plan {
	cur := make(map[int]bool, len(current))
	for _, n := range current {
		cur[n] = true
	}
	des := make(map[int]bool, len(desired))
	for _, n := range desired {
		des[n] = true
	}
	p := &Plan{}
	for _, n := range sortedUnique(current) {
		if des[n] {
			p.Keep = append(p.Keep, n)
		} else {
			p.Release = append(p.Release, n)
		}
	}
	// Sources: prefer releasing nodes (their transfer doubles as the
	// hand-off), then keepers, round-robin; -1 means "fetch from the
	// producer" when nothing currently stores the item.
	sources := append([]int(nil), p.Release...)
	sources = append(sources, p.Keep...)
	si := 0
	for _, n := range sortedUnique(desired) {
		if cur[n] {
			continue
		}
		src := -1
		if len(sources) > 0 {
			src = sources[si%len(sources)]
			si++
		}
		p.Moves = append(p.Moves, Move{From: src, To: n})
	}
	return p
}

func sortedUnique(s []int) []int {
	out := make([]int, 0, len(s))
	seen := make(map[int]bool, len(s))
	for _, v := range s {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return sortedInts(out)
}

package alloc

// RecentCache is the FIFO cache of recent block indices from Section IV-C:
// "nodes are required to cache a certain number of most recent blocks and
// replace the blocks using FIFO. To start with, all nodes store at least
// the last block for mining purposes."
//
// Entries are block heights. Depth is the node's current cache allowance;
// it starts at 1 and grows by one every time the node is chosen as a
// recent-block assignee in a mined block.
type RecentCache struct {
	depth int
	fifo  []uint64
}

// NewRecentCache creates a cache with the given initial depth (minimum 1).
func NewRecentCache(depth int) *RecentCache {
	if depth < 1 {
		depth = 1
	}
	return &RecentCache{depth: depth}
}

// Depth returns the current cache allowance.
func (c *RecentCache) Depth() int { return c.depth }

// Len returns the number of cached block heights.
func (c *RecentCache) Len() int { return len(c.fifo) }

// Grow increases the allowance by one (the node was chosen as a
// recent-block assignee and earns the storage incentive).
func (c *RecentCache) Grow() { c.depth++ }

// SetDepth clamps the allowance to at least 1 and evicts overflow in FIFO
// order.
func (c *RecentCache) SetDepth(d int) []uint64 {
	if d < 1 {
		d = 1
	}
	c.depth = d
	return c.evictOverflow()
}

// Push records a newly received block height, evicting the oldest entries
// beyond the allowance. It returns the evicted heights (storage to be
// released).
func (c *RecentCache) Push(height uint64) []uint64 {
	for _, h := range c.fifo {
		if h == height {
			return nil
		}
	}
	c.fifo = append(c.fifo, height)
	return c.evictOverflow()
}

func (c *RecentCache) evictOverflow() []uint64 {
	if len(c.fifo) <= c.depth {
		return nil
	}
	n := len(c.fifo) - c.depth
	evicted := append([]uint64(nil), c.fifo[:n]...)
	c.fifo = append(c.fifo[:0], c.fifo[n:]...)
	return evicted
}

// Contains reports whether the height is cached.
func (c *RecentCache) Contains(height uint64) bool {
	for _, h := range c.fifo {
		if h == height {
			return true
		}
	}
	return false
}

// Heights returns a copy of the cached heights, oldest-first. A copy is
// required: the internal FIFO is rewritten in place by eviction, so handing
// it out would let callers observe (or cause) aliased mutation.
func (c *RecentCache) Heights() []uint64 {
	return append([]uint64(nil), c.fifo...)
}

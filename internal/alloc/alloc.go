// Package alloc implements the fair and efficient storage allocation of
// Section IV: the Fairness Degree Cost (eq. 1), the Range-Distance Cost
// (eq. 2), the weighted UFL formulation (eq. 3-6) that picks storing nodes
// for every data item and block, the recent-block FIFO cache of Section
// IV-C, and the random-placement baseline used in the Fig. 5 comparison.
package alloc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/netsim"
	"repro/internal/ufl"
)

// DefaultFDCWeight is the scaling factor A of eq. (3). The paper reports
// that feature scaling with FDC:RDC = 1000:1 "produces the best result".
const DefaultFDCWeight = 1000

// DefaultMinReplicas is the minimum number of storing nodes per item:
// "there are always replicas for certain data" (Section III-B2).
const DefaultMinReplicas = 2

// FDC computes the Fairness Degree Cost of eq. (1):
//
//	f_i = W(i) / (W_tol(i) − W(i))
//
// It returns +Inf when the node is full (or over-full), which removes the
// node from consideration as required by the paper.
func FDC(used, capacity int) float64 {
	if capacity <= 0 || used >= capacity {
		return math.Inf(1)
	}
	return float64(used) / float64(capacity-used)
}

// NodeState is the per-node input to placement decisions.
type NodeState struct {
	// Used and Capacity are in storage units (data items / blocks; the
	// paper assumes uniform item size, Section V-A).
	Used     int
	Capacity int
	// MobilityRange is the node's movement radius in meters (range(i) of
	// eq. 2).
	MobilityRange float64
}

// RDC computes the Range-Distance Cost of eq. (2) in hop units:
//
//	c_ij = d(i,j) + range(i) + range(j),  c_ii = 0
//
// d is the hop-count distance from the topology; mobility ranges (meters)
// are normalized to hop units by dividing by the radio range, so a node
// that can wander a full radio range adds one hop of uncertainty.
// Unreachable pairs get +Inf.
func RDC(topo *netsim.Topology, i, j int, ranges [2]float64, commRange float64) float64 {
	if i == j {
		return 0
	}
	h := topo.Hops(netsim.NodeID(i), netsim.NodeID(j))
	if h == netsim.InfHops {
		return math.Inf(1)
	}
	norm := (ranges[0] + ranges[1]) / commRange
	return float64(h) + norm
}

// Planner computes storing-node sets by solving the weighted UFL instance
// of eq. (3). The zero value is not usable; create one with NewPlanner.
type Planner struct {
	// FDCWeight is A in eq. (3).
	FDCWeight float64
	// MinReplicas forces at least this many storing nodes per item.
	MinReplicas int
	// CommRange normalizes mobility ranges into hop units.
	CommRange float64
	// Solve is the UFL solver; defaults to ufl.Greedy.
	Solve func(*ufl.Instance) (*ufl.Solution, error)
}

// NewPlanner returns a planner with the paper's parameters (A = 1000,
// ≥ 2 replicas) and the greedy solver. Solve stays nil — the nil default
// both means ufl.Greedy and tells Place it may use the exact closed-form
// solution on clique topologies; setting any explicit solver (even
// ufl.Greedy) disables that fast path.
func NewPlanner(commRange float64) *Planner {
	return &Planner{
		FDCWeight:   DefaultFDCWeight,
		MinReplicas: DefaultMinReplicas,
		CommRange:   commRange,
	}
}

// Placement is the outcome for one data item or block.
type Placement struct {
	// StoringNodes lists the chosen storing nodes in ascending order.
	StoringNodes []int
	// AccessFrom[j] is the storing node that client j should fetch from
	// (x_ijk of the formulation).
	AccessFrom []int
	// Cost is the UFL objective value.
	Cost float64
}

// BuildInstance constructs the UFL instance of eq. (3) for the current
// network state: every node is both a candidate facility and a client.
func (p *Planner) BuildInstance(topo *netsim.Topology, nodes []NodeState) *ufl.Instance {
	n := len(nodes)
	in := &ufl.Instance{
		OpenCost: make([]float64, n),
		ConnCost: make([][]float64, n),
	}
	for i := 0; i < n; i++ {
		in.OpenCost[i] = p.FDCWeight * FDC(nodes[i].Used, nodes[i].Capacity)
		in.ConnCost[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			c := RDC(topo, i, j, [2]float64{nodes[i].MobilityRange, nodes[j].MobilityRange}, p.CommRange)
			if math.IsInf(c, 1) {
				// Unreachable pairs: huge finite penalty keeps the solver
				// numerics sane while still strongly discouraging the pick.
				c = 1e9
			}
			in.ConnCost[i][j] = c
		}
	}
	return in
}

// Place chooses the storing nodes for one item given the current topology
// and per-node storage state.
func (p *Planner) Place(topo *netsim.Topology, nodes []NodeState) (*Placement, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("alloc: no nodes")
	}
	if len(nodes) != topo.N() {
		return nil, fmt.Errorf("alloc: %d node states for %d topology nodes", len(nodes), topo.N())
	}
	if p.Solve == nil && topo.Clique() && uniformRanges(nodes) {
		// One-hop clique with uniform mobility: eq. (3) separates per node
		// and has an exact O(n) solution — skip the O(n²) instance and the
		// greedy solver entirely. This is the live-deployment hot path:
		// every mined block solves placement at least twice, and at 1000
		// nodes the generic path costs seconds per solve.
		return p.placeClique(nodes), nil
	}
	solve := p.Solve
	if solve == nil {
		solve = ufl.Greedy
	}
	in := p.BuildInstance(topo, nodes)
	sol, err := solve(in)
	if err != nil {
		return nil, fmt.Errorf("alloc: solve placement: %w", err)
	}
	open := append([]int(nil), sol.Open...)
	open = p.topUpReplicas(open, nodes, in)
	// Recompute the access assignment over the final open set.
	assign := make([]int, len(nodes))
	for j := range nodes {
		best, bestCost := open[0], math.Inf(1)
		for _, i := range open {
			if c := in.ConnCost[i][j]; c < bestCost {
				best, bestCost = i, c
			}
		}
		assign[j] = best
	}
	return &Placement{
		StoringNodes: open,
		AccessFrom:   assign,
		Cost:         ufl.CostOf(in, open, assign),
	}, nil
}

// uniformRanges reports whether every node shares one mobility range, the
// condition under which a clique's RDC matrix is a single constant off the
// diagonal.
func uniformRanges(nodes []NodeState) bool {
	for _, st := range nodes[1:] {
		if st.MobilityRange != nodes[0].MobilityRange {
			return false
		}
	}
	return true
}

// placeClique solves eq. (3) exactly on a one-hop clique with uniform
// mobility ranges. There c_ij = c for every i ≠ j and 0 on the diagonal,
// so the objective collapses to c·n + Σ_open (f_i − c): open exactly the
// nodes whose weighted FDC is below c (each pays for itself by serving
// its own demand), or the single cheapest node when none qualifies — node
// 0 when every node is full, matching cheapestFallback, where all clique
// connection totals tie. The MinReplicas top-up mirrors topUpReplicas:
// every unopened non-full node offers the identical connection saving c,
// so the marginal criterion reduces to FDC order with index ties.
func (p *Planner) placeClique(nodes []NodeState) *Placement {
	n := len(nodes)
	c := 1 + (nodes[0].MobilityRange+nodes[0].MobilityRange)/p.CommRange
	open := make([]int, 0, DefaultMinReplicas)
	for i, st := range nodes {
		if p.FDCWeight*FDC(st.Used, st.Capacity) < c {
			open = append(open, i)
		}
	}
	if len(open) == 0 {
		best, bestF := 0, math.Inf(1)
		for i, st := range nodes {
			if f := p.FDCWeight * FDC(st.Used, st.Capacity); f < bestF {
				best, bestF = i, f
			}
		}
		open = append(open, best)
	}
	if len(open) < p.MinReplicas {
		type cand struct {
			f float64
			i int
		}
		isOpen := make(map[int]bool, len(open))
		for _, i := range open {
			isOpen[i] = true
		}
		cands := make([]cand, 0, n)
		for i, st := range nodes {
			if isOpen[i] || st.Used >= st.Capacity {
				continue
			}
			cands = append(cands, cand{p.FDCWeight * FDC(st.Used, st.Capacity), i})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].f != cands[b].f {
				return cands[a].f < cands[b].f
			}
			return cands[a].i < cands[b].i
		})
		for _, cd := range cands {
			if len(open) >= p.MinReplicas {
				break
			}
			open = insertSorted(open, cd.i)
		}
	}
	assign := make([]int, n)
	isOpen := make([]bool, n)
	cost := 0.0
	for _, i := range open {
		isOpen[i] = true
		cost += p.FDCWeight * FDC(nodes[i].Used, nodes[i].Capacity)
	}
	for j := 0; j < n; j++ {
		if isOpen[j] {
			assign[j] = j
		} else {
			assign[j] = open[0]
			cost += c
		}
	}
	return &Placement{StoringNodes: open, AccessFrom: assign, Cost: cost}
}

// topUpReplicas extends the open set to MinReplicas by the UFL marginal
// criterion: pick the non-full node with the lowest opening cost minus the
// total connection-cost reduction it brings over the current open set, so
// extra replicas land both fairly and near demand.
func (p *Planner) topUpReplicas(open []int, nodes []NodeState, in *ufl.Instance) []int {
	if len(open) >= p.MinReplicas {
		return open
	}
	nc := in.NClients()
	inSet := make(map[int]bool, len(open))
	for _, i := range open {
		inSet[i] = true
	}
	// bestConn[j] is client j's current cheapest connection.
	bestConn := make([]float64, nc)
	for j := 0; j < nc; j++ {
		bestConn[j] = math.Inf(1)
		for _, i := range open {
			if c := in.ConnCost[i][j]; c < bestConn[j] {
				bestConn[j] = c
			}
		}
	}
	for len(open) < p.MinReplicas {
		best, bestScore := -1, math.Inf(1)
		for i, st := range nodes {
			if inSet[i] || st.Used >= st.Capacity {
				continue
			}
			score := in.OpenCost[i]
			for j := 0; j < nc; j++ {
				if c := in.ConnCost[i][j]; c < bestConn[j] {
					score -= bestConn[j] - c
				}
			}
			if score < bestScore {
				best, bestScore = i, score
			}
		}
		if best < 0 {
			// Every remaining node is full; cannot add more replicas.
			break
		}
		inSet[best] = true
		open = insertSorted(open, best)
		for j := 0; j < nc; j++ {
			if c := in.ConnCost[best][j]; c < bestConn[j] {
				bestConn[j] = c
			}
		}
	}
	return open
}

func insertSorted(s []int, v int) []int {
	pos := len(s)
	for i, x := range s {
		if v < x {
			pos = i
			break
		}
	}
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}

// RandomPlace is the baseline of Section VI-B: it stores the item on k
// uniformly random non-full nodes ("for a fair comparison, the total number
// of data and blocks stored is the same as the optimal placement").
func RandomPlace(nodes []NodeState, k int, rng *rand.Rand) []int {
	candidates := make([]int, 0, len(nodes))
	for i, st := range nodes {
		if st.Used < st.Capacity {
			candidates = append(candidates, i)
		}
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	rng.Shuffle(len(candidates), func(a, b int) {
		candidates[a], candidates[b] = candidates[b], candidates[a]
	})
	chosen := append([]int(nil), candidates[:k]...)
	return sortedInts(chosen)
}

func sortedInts(s []int) []int {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s
}

package alloc

import (
	"testing"
	"testing/quick"
)

func TestMigrationPlanDisjointSets(t *testing.T) {
	p := MigrationPlan([]int{1, 2}, []int{3, 4})
	if len(p.Keep) != 0 {
		t.Fatalf("keep = %v, want empty", p.Keep)
	}
	if len(p.Moves) != 2 {
		t.Fatalf("moves = %v, want 2", p.Moves)
	}
	for _, m := range p.Moves {
		if m.From != 1 && m.From != 2 {
			t.Fatalf("move source %d not a current holder", m.From)
		}
	}
	if len(p.Release) != 2 {
		t.Fatalf("release = %v, want [1 2]", p.Release)
	}
	if p.Empty() || p.Ops() != 2 {
		t.Fatal("plan accounting wrong")
	}
}

func TestMigrationPlanOverlap(t *testing.T) {
	p := MigrationPlan([]int{1, 2, 3}, []int{2, 3, 4})
	if len(p.Keep) != 2 || p.Keep[0] != 2 || p.Keep[1] != 3 {
		t.Fatalf("keep = %v, want [2 3]", p.Keep)
	}
	if len(p.Moves) != 1 || p.Moves[0].To != 4 || p.Moves[0].From != 1 {
		t.Fatalf("moves = %v, want one move 1->4", p.Moves)
	}
	if len(p.Release) != 1 || p.Release[0] != 1 {
		t.Fatalf("release = %v, want [1]", p.Release)
	}
}

func TestMigrationPlanIdentical(t *testing.T) {
	p := MigrationPlan([]int{5, 6}, []int{6, 5})
	if !p.Empty() {
		t.Fatalf("identical sets produced work: %+v", p)
	}
}

func TestMigrationPlanFromNothing(t *testing.T) {
	p := MigrationPlan(nil, []int{1, 2})
	if len(p.Moves) != 2 {
		t.Fatalf("moves = %v", p.Moves)
	}
	for _, m := range p.Moves {
		if m.From != -1 {
			t.Fatalf("move %v should source from the producer (-1)", m)
		}
	}
}

func TestMigrationPlanDuplicatesIgnored(t *testing.T) {
	p := MigrationPlan([]int{1, 1, 2}, []int{2, 2, 3})
	if len(p.Keep) != 1 || len(p.Moves) != 1 || len(p.Release) != 1 {
		t.Fatalf("plan with duplicates wrong: %+v", p)
	}
}

// Property: after applying the plan, the holder set equals the desired
// set, and the number of copy operations equals |desired \ current|
// (minimality).
func TestMigrationPlanProperty(t *testing.T) {
	prop := func(curRaw, desRaw []uint8) bool {
		current := make([]int, len(curRaw))
		for i, v := range curRaw {
			current[i] = int(v % 16)
		}
		desired := make([]int, len(desRaw))
		for i, v := range desRaw {
			desired[i] = int(v % 16)
		}
		p := MigrationPlan(current, desired)

		holders := make(map[int]bool)
		for _, n := range current {
			holders[n] = true
		}
		for _, m := range p.Moves {
			// Source must hold the item (or be the producer).
			if m.From != -1 && !holders[m.From] {
				return false
			}
			holders[m.To] = true
		}
		for _, n := range p.Release {
			delete(holders, n)
		}
		want := make(map[int]bool)
		for _, n := range desired {
			want[n] = true
		}
		if len(holders) != len(want) {
			return false
		}
		for n := range want {
			if !holders[n] {
				return false
			}
		}
		// Minimality.
		newCount := 0
		curSet := make(map[int]bool)
		for _, n := range current {
			curSet[n] = true
		}
		for n := range want {
			if !curSet[n] {
				newCount++
			}
		}
		return p.Ops() == newCount
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

// Message is anything the network can carry. Size is the wire size in bytes
// and is used for both transmission-delay and overhead accounting. Kind is
// a short accounting category ("data", "block", "meta", "ctrl", ...).
type Message interface {
	Size() int
	Kind() string
}

// Handler receives messages delivered to a node. from is the original
// sender (not the last forwarder).
type Handler interface {
	Recv(from NodeID, msg Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from NodeID, msg Message)

// Recv implements Handler.
func (f HandlerFunc) Recv(from NodeID, msg Message) { f(from, msg) }

// Config holds the network parameters. The defaults reproduce the paper's
// simulation setup (Section VI).
type Config struct {
	// PerHopDelay is the propagation delay per hop (paper: 10 ms).
	PerHopDelay time.Duration
	// Bandwidth is the effective per-hop link throughput in bytes/second,
	// adding size/Bandwidth of transmission delay per hop. Zero disables
	// transmission delay. The paper got this implicitly from Docker
	// sockets; 4 MB/s approximates effective 802.11n throughput.
	Bandwidth float64
	// DropProb drops each point-to-point delivery with this probability
	// (failure injection; default 0).
	DropProb float64
	// ChargeForwarding, when true, bills every intermediate hop of a
	// unicast for TX and RX bytes (radio-level accounting). When false
	// (default), only the endpoints are billed — matching the paper's
	// end-to-end transmission accounting ("total transmission is less
	// than 4GB" for ~1.5 GB of data). Latency is per-hop either way.
	ChargeForwarding bool
}

// DefaultConfig returns the paper's network parameters.
func DefaultConfig() Config {
	return Config{PerHopDelay: 10 * time.Millisecond, Bandwidth: 4 << 20}
}

// Stats aggregates per-node and per-kind traffic counters.
type Stats struct {
	TxBytes []uint64
	RxBytes []uint64
	TxMsgs  []uint64
	RxMsgs  []uint64
	// KindBytes counts bytes transmitted (single-hop transmissions, i.e.
	// including forwarding) per message kind.
	KindBytes map[string]uint64
	// Dropped counts messages lost to injected drops.
	Dropped uint64
	// Unreachable counts unicast attempts to disconnected destinations.
	Unreachable uint64
}

func newStats(n int) *Stats {
	return &Stats{
		TxBytes:   make([]uint64, n),
		RxBytes:   make([]uint64, n),
		TxMsgs:    make([]uint64, n),
		RxMsgs:    make([]uint64, n),
		KindBytes: make(map[string]uint64),
	}
}

// TotalTxBytes sums transmitted bytes over all nodes.
func (s *Stats) TotalTxBytes() uint64 {
	var sum uint64
	for _, b := range s.TxBytes {
		sum += b
	}
	return sum
}

// AvgTxBytesPerNode is the mean per-node transmission overhead, the metric
// of Fig. 4(a) / Fig. 5(b).
func (s *Stats) AvgTxBytesPerNode() float64 {
	if len(s.TxBytes) == 0 {
		return 0
	}
	return float64(s.TotalTxBytes()) / float64(len(s.TxBytes))
}

// Network delivers messages between nodes over the simulated radio graph.
// It is single-threaded: all calls must happen on the simulation goroutine.
type Network struct {
	engine    *Engine
	cfg       Config
	placement []geo.Placement
	field     geo.Field
	commRange float64
	positions []geo.Point
	down      []bool
	topo      *Topology
	// homeTopo is the radio graph over home positions. The RDC cost model
	// (eq. 2) plans on home positions plus mobility ranges — "nodes move
	// within such a range in a short period of time" — so placement stays
	// meaningful while the live topology wobbles with mobility.
	homeTopo *Topology
	handlers []Handler
	rng      *rand.Rand
	stats    *Stats
	// linkBlocked, if set, severs the link between two nodes regardless of
	// distance (partition injection).
	linkBlocked func(a, b NodeID) bool
}

// Engine aliases the simulation engine type to avoid import cycles in
// callers that only use netsim.
type Engine = sim.Engine

// New creates a network over the given placements. Handlers are registered
// later with Attach; messages to nodes without a handler are dropped
// silently (counted as received).
func New(engine *Engine, field geo.Field, placements []geo.Placement, commRange float64, cfg Config, rng *rand.Rand) *Network {
	n := len(placements)
	nw := &Network{
		engine:    engine,
		cfg:       cfg,
		placement: append([]geo.Placement(nil), placements...),
		field:     field,
		commRange: commRange,
		positions: HomePositions(placements),
		down:      make([]bool, n),
		handlers:  make([]Handler, n),
		rng:       rng,
		stats:     newStats(n),
	}
	nw.rebuild()
	return nw
}

// N returns the node count.
func (nw *Network) N() int { return len(nw.placement) }

// Engine returns the simulation engine driving this network.
func (nw *Network) SimEngine() *Engine { return nw.engine }

// Attach registers the handler for node id.
func (nw *Network) Attach(id NodeID, h Handler) { nw.handlers[id] = h }

// Topology returns the current radio graph.
func (nw *Network) Topology() *Topology { return nw.topo }

// HomeTopology returns the radio graph over home positions (mobility
// centers), used by the RDC placement cost model. It tracks up/down state
// but not short-term movement.
func (nw *Network) HomeTopology() *Topology { return nw.homeTopo }

// Stats returns the live traffic counters.
func (nw *Network) Stats() *Stats { return nw.stats }

// Placements returns the node placements (home + mobility range).
func (nw *Network) Placements() []geo.Placement { return nw.placement }

// SetPositions moves nodes and rebuilds the topology.
func (nw *Network) SetPositions(pos []geo.Point) {
	if len(pos) != nw.N() {
		panic(fmt.Sprintf("netsim: SetPositions with %d positions for %d nodes", len(pos), nw.N()))
	}
	copy(nw.positions, pos)
	nw.rebuild()
}

// SetDown marks a node as down (disconnected) or up and rebuilds the
// topology. Down nodes neither receive nor forward.
func (nw *Network) SetDown(id NodeID, down bool) {
	if nw.down[id] == down {
		return
	}
	nw.down[id] = down
	nw.rebuild()
}

// Down reports whether node id is currently down.
func (nw *Network) Down(id NodeID) bool { return nw.down[id] }

// SetLinkFilter installs (or clears, with nil) a partition filter: links for
// which blocked returns true are severed.
func (nw *Network) SetLinkFilter(blocked func(a, b NodeID) bool) {
	nw.linkBlocked = blocked
	nw.rebuild()
}

func (nw *Network) rebuild() {
	nw.topo = nw.buildTopo(nw.positions)
	nw.homeTopo = nw.buildTopo(HomePositions(nw.placement))
}

func (nw *Network) buildTopo(positions []geo.Point) *Topology {
	topo := NewTopology(positions, nw.commRange, nw.down)
	if nw.linkBlocked != nil {
		// Remove blocked links, then recompute routes.
		for u := range topo.adj {
			kept := topo.adj[u][:0]
			for _, v := range topo.adj[u] {
				if !nw.linkBlocked(NodeID(u), v) {
					kept = append(kept, v)
				}
			}
			topo.adj[u] = kept
		}
		topo.computeRoutes(nw.down)
	}
	return topo
}

// hopDelay returns the per-hop latency for a message of the given size.
func (nw *Network) hopDelay(size int) time.Duration {
	d := nw.cfg.PerHopDelay
	if nw.cfg.Bandwidth > 0 {
		d += time.Duration(float64(size) / nw.cfg.Bandwidth * float64(time.Second))
	}
	return d
}

// Unicast sends msg from -> to along a shortest path. Every forwarding node
// is charged TX bytes and every node past the first hop RX bytes. The
// handler at to fires after hops * hopDelay. It reports whether the message
// was deliverable when sent (destination reachable, not dropped).
func (nw *Network) Unicast(from, to NodeID, msg Message) bool {
	if from == to {
		// Local delivery: free and immediate (next event cycle).
		nw.engine.Schedule(0, func() { nw.deliver(from, to, msg) })
		return true
	}
	if nw.down[from] || nw.down[to] || !nw.topo.Reachable(from, to) {
		nw.stats.Unreachable++
		return false
	}
	if nw.cfg.DropProb > 0 && nw.rng.Float64() < nw.cfg.DropProb {
		nw.stats.Dropped++
		return false
	}
	hops := nw.topo.Hops(from, to)
	size := uint64(msg.Size())
	if nw.cfg.ChargeForwarding {
		// Radio-level accounting: path nodes v0..vh; v0..v(h-1) transmit,
		// v1..vh receive.
		cur := from
		for cur != to {
			next := nw.topo.NextHop(cur, to)
			if next < 0 {
				nw.stats.Unreachable++
				return false
			}
			nw.stats.TxBytes[cur] += size
			nw.stats.TxMsgs[cur]++
			nw.stats.RxBytes[next] += size
			nw.stats.RxMsgs[next]++
			nw.stats.KindBytes[msg.Kind()] += size
			cur = next
		}
	} else {
		// End-to-end accounting (the paper's): bill only the endpoints.
		nw.stats.TxBytes[from] += size
		nw.stats.TxMsgs[from]++
		nw.stats.RxBytes[to] += size
		nw.stats.RxMsgs[to]++
		nw.stats.KindBytes[msg.Kind()] += size
	}
	delay := time.Duration(hops) * nw.hopDelay(msg.Size())
	nw.engine.Schedule(delay, func() { nw.deliver(from, to, msg) })
	return true
}

// Broadcast floods msg from the source across its connected component.
// Every reached node retransmits once (classic flooding), so every reached
// node is charged one TX and one RX of the message size; node at hop
// distance d receives after d * hopDelay. The source's own handler does not
// fire.
func (nw *Network) Broadcast(from NodeID, msg Message) {
	if nw.down[from] {
		return
	}
	size := uint64(msg.Size())
	nw.stats.TxBytes[from] += size
	nw.stats.TxMsgs[from]++
	nw.stats.KindBytes[msg.Kind()] += size
	hd := nw.hopDelay(msg.Size())
	for id := 0; id < nw.N(); id++ {
		id := NodeID(id)
		if id == from || nw.down[id] || !nw.topo.Reachable(from, id) {
			continue
		}
		if nw.cfg.DropProb > 0 && nw.rng.Float64() < nw.cfg.DropProb {
			nw.stats.Dropped++
			continue
		}
		h := nw.topo.Hops(from, id)
		nw.stats.RxBytes[id] += size
		nw.stats.RxMsgs[id]++
		// Each reached node rebroadcasts once in a flood.
		nw.stats.TxBytes[id] += size
		nw.stats.TxMsgs[id]++
		nw.stats.KindBytes[msg.Kind()] += size
		nw.engine.Schedule(time.Duration(h)*hd, func() { nw.deliver(from, id, msg) })
	}
}

func (nw *Network) deliver(from, to NodeID, msg Message) {
	if nw.down[to] {
		return
	}
	if h := nw.handlers[to]; h != nil {
		h.Recv(from, msg)
	}
}

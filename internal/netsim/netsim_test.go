package netsim

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/sim"
)

// testMsg is a trivial message for tests.
type testMsg struct {
	size int
	kind string
	body string
}

func (m testMsg) Size() int    { return m.size }
func (m testMsg) Kind() string { return m.kind }

// linePlacements lays nodes on a horizontal line with the given spacing, so
// hop counts are predictable.
func linePlacements(n int, spacing float64) []geo.Placement {
	out := make([]geo.Placement, n)
	for i := range out {
		out[i] = geo.Placement{Home: geo.Point{X: float64(i) * spacing, Y: 0}, Range: 0}
	}
	return out
}

func lineNetwork(t *testing.T, n int, cfg Config) (*sim.Engine, *Network) {
	t.Helper()
	engine := sim.NewEngine()
	pls := linePlacements(n, 50) // 50 m spacing, 70 m range: only adjacent links
	nw := New(engine, geo.Field{Width: 10000, Height: 100}, pls, 70, cfg, rand.New(rand.NewSource(1)))
	return engine, nw
}

func TestTopologyLineHops(t *testing.T) {
	pls := linePlacements(5, 50)
	topo := NewTopology(HomePositions(pls), 70, nil)
	tests := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 4, 4}, {1, 3, 2}, {4, 0, 4},
	}
	for _, tt := range tests {
		if got := topo.Hops(tt.a, tt.b); got != tt.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestTopologyNextHopFollowsShortestPath(t *testing.T) {
	pls := linePlacements(5, 50)
	topo := NewTopology(HomePositions(pls), 70, nil)
	cur := NodeID(0)
	var path []NodeID
	for cur != 4 {
		cur = topo.NextHop(cur, 4)
		path = append(path, cur)
	}
	want := []NodeID{1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestTopologyDownNodeDisconnects(t *testing.T) {
	pls := linePlacements(3, 50)
	down := []bool{false, true, false}
	topo := NewTopology(HomePositions(pls), 70, down)
	if topo.Reachable(0, 2) {
		t.Fatal("nodes 0 and 2 reachable through a down relay")
	}
	if topo.Connected(down) {
		t.Fatal("partitioned graph reported connected")
	}
	if !topo.Connected([]bool{false, true, true}) {
		t.Fatal("single up node must count as connected")
	}
}

// TestCliqueMatchesDenseTopology pins NewClique to the topology it
// replaces: every co-located node within range, routes computed by BFS.
// The O(1) clique must answer every query identically without ever
// materializing the O(n²) tables.
func TestCliqueMatchesDenseTopology(t *testing.T) {
	const n = 17
	dense := NewTopology(make([]geo.Point, n), 1, nil)
	clique := NewClique(n)
	if clique.N() != n {
		t.Fatalf("clique.N() = %d, want %d", clique.N(), n)
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if got, want := clique.Hops(NodeID(a), NodeID(b)), dense.Hops(NodeID(a), NodeID(b)); got != want {
				t.Fatalf("Hops(%d,%d) = %d, dense says %d", a, b, got, want)
			}
			if !clique.Reachable(NodeID(a), NodeID(b)) {
				t.Fatalf("Reachable(%d,%d) = false", a, b)
			}
			next := clique.NextHop(NodeID(a), NodeID(b))
			if a == b && next != NodeID(a) {
				t.Fatalf("NextHop(%d,%d) = %d, want self", a, b, next)
			}
			if a != b && next != NodeID(b) {
				t.Fatalf("NextHop(%d,%d) = %d, want direct hop %d", a, b, next, b)
			}
		}
		if got, want := len(clique.Neighbors(NodeID(a))), len(dense.Neighbors(NodeID(a))); got != want {
			t.Fatalf("node %d has %d neighbors, dense says %d", a, got, want)
		}
		for _, v := range clique.Neighbors(NodeID(a)) {
			if v == NodeID(a) {
				t.Fatalf("node %d lists itself as neighbor", a)
			}
		}
	}
	if !clique.Connected(nil) {
		t.Fatal("clique reported disconnected")
	}
}

func TestUnicastDelayAndAccounting(t *testing.T) {
	cfg := Config{PerHopDelay: 10 * time.Millisecond, ChargeForwarding: true}
	engine, nw := lineNetwork(t, 5, cfg)
	var gotFrom NodeID
	var gotAt time.Duration
	nw.Attach(4, HandlerFunc(func(from NodeID, msg Message) {
		gotFrom = from
		gotAt = engine.Now()
	}))
	ok := nw.Unicast(0, 4, testMsg{size: 1000, kind: "data"})
	if !ok {
		t.Fatal("Unicast returned false")
	}
	if err := engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	if gotFrom != 0 {
		t.Errorf("from = %d, want 0", gotFrom)
	}
	if want := 40 * time.Millisecond; gotAt != want {
		t.Errorf("delivered at %v, want %v (4 hops x 10ms)", gotAt, want)
	}
	st := nw.Stats()
	// Path 0-1-2-3-4: nodes 0..3 transmit, 1..4 receive.
	for i, wantTx := range []uint64{1000, 1000, 1000, 1000, 0} {
		if st.TxBytes[i] != wantTx {
			t.Errorf("TxBytes[%d] = %d, want %d", i, st.TxBytes[i], wantTx)
		}
	}
	for i, wantRx := range []uint64{0, 1000, 1000, 1000, 1000} {
		if st.RxBytes[i] != wantRx {
			t.Errorf("RxBytes[%d] = %d, want %d", i, st.RxBytes[i], wantRx)
		}
	}
	if st.KindBytes["data"] != 4000 {
		t.Errorf(`KindBytes["data"] = %d, want 4000`, st.KindBytes["data"])
	}
}

func TestUnicastEndToEndAccounting(t *testing.T) {
	// Default accounting bills only the endpoints (the paper's model);
	// forwarders relay for free but latency stays per-hop.
	cfg := Config{PerHopDelay: 10 * time.Millisecond}
	engine, nw := lineNetwork(t, 5, cfg)
	var gotAt time.Duration
	nw.Attach(4, HandlerFunc(func(from NodeID, msg Message) { gotAt = engine.Now() }))
	if !nw.Unicast(0, 4, testMsg{size: 1000, kind: "data"}) {
		t.Fatal("Unicast returned false")
	}
	if err := engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	if want := 40 * time.Millisecond; gotAt != want {
		t.Errorf("delivered at %v, want %v", gotAt, want)
	}
	st := nw.Stats()
	for i, wantTx := range []uint64{1000, 0, 0, 0, 0} {
		if st.TxBytes[i] != wantTx {
			t.Errorf("TxBytes[%d] = %d, want %d", i, st.TxBytes[i], wantTx)
		}
	}
	for i, wantRx := range []uint64{0, 0, 0, 0, 1000} {
		if st.RxBytes[i] != wantRx {
			t.Errorf("RxBytes[%d] = %d, want %d", i, st.RxBytes[i], wantRx)
		}
	}
	if st.KindBytes["data"] != 1000 {
		t.Errorf(`KindBytes["data"] = %d, want 1000`, st.KindBytes["data"])
	}
}

func TestUnicastBandwidthDelay(t *testing.T) {
	cfg := Config{PerHopDelay: 10 * time.Millisecond, Bandwidth: 1 << 20} // 1 MiB/s
	engine, nw := lineNetwork(t, 2, cfg)
	var gotAt time.Duration
	nw.Attach(1, HandlerFunc(func(from NodeID, msg Message) { gotAt = engine.Now() }))
	nw.Unicast(0, 1, testMsg{size: 1 << 20, kind: "data"}) // 1 MiB
	if err := engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := 10*time.Millisecond + time.Second
	if gotAt != want {
		t.Errorf("delivered at %v, want %v", gotAt, want)
	}
}

func TestUnicastToSelf(t *testing.T) {
	engine, nw := lineNetwork(t, 2, DefaultConfig())
	delivered := false
	nw.Attach(0, HandlerFunc(func(from NodeID, msg Message) { delivered = true }))
	nw.Unicast(0, 0, testMsg{size: 10, kind: "ctrl"})
	if err := engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("self-unicast not delivered")
	}
	if nw.Stats().TotalTxBytes() != 0 {
		t.Fatal("self-unicast must not be charged")
	}
}

func TestUnicastUnreachable(t *testing.T) {
	engine, nw := lineNetwork(t, 3, DefaultConfig())
	nw.SetDown(1, true)
	ok := nw.Unicast(0, 2, testMsg{size: 10, kind: "ctrl"})
	if ok {
		t.Fatal("Unicast to unreachable node returned true")
	}
	if nw.Stats().Unreachable != 1 {
		t.Fatalf("Unreachable = %d, want 1", nw.Stats().Unreachable)
	}
	if err := engine.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastFloodsComponent(t *testing.T) {
	engine, nw := lineNetwork(t, 4, Config{PerHopDelay: 10 * time.Millisecond})
	got := make(map[NodeID]time.Duration)
	for i := 0; i < 4; i++ {
		id := NodeID(i)
		nw.Attach(id, HandlerFunc(func(from NodeID, msg Message) { got[id] = engine.Now() }))
	}
	nw.Broadcast(0, testMsg{size: 100, kind: "block"})
	if err := engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("delivered to %d nodes, want 3 (not the source)", len(got))
	}
	for id, at := range got {
		want := time.Duration(id) * 10 * time.Millisecond
		if at != want {
			t.Errorf("node %d received at %v, want %v", id, at, want)
		}
	}
	st := nw.Stats()
	// Flooding: all 4 nodes transmit once.
	for i := 0; i < 4; i++ {
		if st.TxBytes[i] != 100 {
			t.Errorf("TxBytes[%d] = %d, want 100", i, st.TxBytes[i])
		}
	}
}

func TestBroadcastSkipsDownAndDisconnected(t *testing.T) {
	engine, nw := lineNetwork(t, 4, DefaultConfig())
	nw.SetDown(2, true) // splits {0,1} from {3}
	reached := make(map[NodeID]bool)
	for i := 0; i < 4; i++ {
		id := NodeID(i)
		nw.Attach(id, HandlerFunc(func(from NodeID, msg Message) { reached[id] = true }))
	}
	nw.Broadcast(0, testMsg{size: 10, kind: "block"})
	if err := engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !reached[1] || reached[2] || reached[3] {
		t.Fatalf("reached = %v, want only node 1", reached)
	}
}

func TestDropInjection(t *testing.T) {
	engine := sim.NewEngine()
	pls := linePlacements(2, 50)
	cfg := Config{PerHopDelay: time.Millisecond, DropProb: 1.0}
	nw := New(engine, geo.Field{Width: 1000, Height: 100}, pls, 70, cfg, rand.New(rand.NewSource(1)))
	delivered := false
	nw.Attach(1, HandlerFunc(func(from NodeID, msg Message) { delivered = true }))
	if nw.Unicast(0, 1, testMsg{size: 10, kind: "ctrl"}) {
		t.Fatal("Unicast with DropProb=1 returned true")
	}
	if err := engine.RunAll(); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("dropped message was delivered")
	}
	if nw.Stats().Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", nw.Stats().Dropped)
	}
}

func TestLinkFilterPartition(t *testing.T) {
	engine, nw := lineNetwork(t, 4, DefaultConfig())
	// Sever the 1-2 link: {0,1} | {2,3}.
	nw.SetLinkFilter(func(a, b NodeID) bool {
		return (a == 1 && b == 2) || (a == 2 && b == 1)
	})
	if nw.Topology().Reachable(0, 3) {
		t.Fatal("partitioned nodes still reachable")
	}
	nw.SetLinkFilter(nil)
	if !nw.Topology().Reachable(0, 3) {
		t.Fatal("healed partition still unreachable")
	}
	_ = engine
}

func TestSetPositionsRebuildsTopology(t *testing.T) {
	engine, nw := lineNetwork(t, 3, DefaultConfig())
	if !nw.Topology().Reachable(0, 2) {
		t.Fatal("line should be connected initially")
	}
	// Move node 2 far away.
	pos := []geo.Point{{X: 0}, {X: 50}, {X: 5000}}
	nw.SetPositions(pos)
	if nw.Topology().Reachable(0, 2) {
		t.Fatal("node 2 moved out of range but still reachable")
	}
	_ = engine
}

func TestMobilityStepStaysInRange(t *testing.T) {
	field := geo.DefaultField()
	rng := rand.New(rand.NewSource(9))
	pls := geo.PlaceNodes(field, 20, 30, rng)
	mob := &Mobility{Field: field, Placements: pls, RNG: rng}
	for epoch := 0; epoch < 10; epoch++ {
		pos := mob.Step()
		if len(pos) != 20 {
			t.Fatalf("Step returned %d positions", len(pos))
		}
		for i, p := range pos {
			if d := geo.Dist(pls[i].Home, p); d > 30+1e-9 && field.Contains(pls[i].Home) {
				// Clamping can only pull points closer to the field, which
				// never increases distance beyond the range for in-field homes.
				t.Fatalf("node %d moved %v m from home, beyond 30 m range", i, d)
			}
		}
	}
}

func TestStatsAverages(t *testing.T) {
	s := newStats(4)
	s.TxBytes[0] = 100
	s.TxBytes[1] = 300
	if got := s.TotalTxBytes(); got != 400 {
		t.Fatalf("TotalTxBytes = %d, want 400", got)
	}
	if got := s.AvgTxBytesPerNode(); got != 100 {
		t.Fatalf("AvgTxBytesPerNode = %v, want 100", got)
	}
	empty := newStats(0)
	if empty.AvgTxBytesPerNode() != 0 {
		t.Fatal("empty stats average should be 0")
	}
}

// Property: on random connected layouts, hop counts are symmetric and the
// next-hop table walks shortest paths (each step reduces the distance by
// exactly one).
func TestRoutingConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(30)
		pls, err := geo.PlaceNodesConnected(geo.DefaultField(), n, 30, 70, rng, 100)
		if err != nil {
			t.Fatal(err)
		}
		topo := NewTopology(HomePositions(pls), 70, nil)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				ha := topo.Hops(NodeID(a), NodeID(b))
				hb := topo.Hops(NodeID(b), NodeID(a))
				if ha != hb {
					t.Fatalf("asymmetric hops %d vs %d", ha, hb)
				}
				if a == b {
					continue
				}
				next := topo.NextHop(NodeID(a), NodeID(b))
				if next < 0 {
					t.Fatalf("connected pair (%d,%d) has no next hop", a, b)
				}
				if topo.Hops(next, NodeID(b)) != ha-1 {
					t.Fatalf("next hop does not reduce distance: %d -> %d", ha, topo.Hops(next, NodeID(b)))
				}
			}
		}
	}
}

// Property: a flooded broadcast reaches exactly the source's component.
func TestBroadcastCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(20)
		engine := sim.NewEngine()
		pls := geo.PlaceNodes(geo.DefaultField(), n, 0, rng) // may be disconnected
		nw := New(engine, geo.DefaultField(), pls, 70, Config{PerHopDelay: time.Millisecond}, rng)
		got := make(map[NodeID]bool)
		for i := 0; i < n; i++ {
			id := NodeID(i)
			nw.Attach(id, HandlerFunc(func(NodeID, Message) { got[id] = true }))
		}
		nw.Broadcast(0, testMsg{size: 10, kind: "x"})
		if err := engine.RunAll(); err != nil {
			t.Fatal(err)
		}
		topo := nw.Topology()
		for i := 1; i < n; i++ {
			want := topo.Reachable(0, NodeID(i))
			if got[NodeID(i)] != want {
				t.Fatalf("node %d: got=%v reachable=%v", i, got[NodeID(i)], want)
			}
		}
	}
}

package netsim

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/sim"
)

func benchNetwork(b *testing.B, n int) (*sim.Engine, *Network) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	pls, err := geo.PlaceNodesConnected(geo.DefaultField(), n, 30, 70, rng, 100)
	if err != nil {
		b.Fatal(err)
	}
	engine := sim.NewEngine()
	nw := New(engine, geo.DefaultField(), pls, 70, DefaultConfig(), rng)
	for i := 0; i < n; i++ {
		nw.Attach(NodeID(i), HandlerFunc(func(NodeID, Message) {}))
	}
	return engine, nw
}

func BenchmarkBroadcast50(b *testing.B) {
	engine, nw := benchNetwork(b, 50)
	msg := testMsg{size: 8 << 10, kind: "block"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Broadcast(0, msg)
		if err := engine.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnicast50(b *testing.B) {
	engine, nw := benchNetwork(b, 50)
	msg := testMsg{size: 1 << 20, kind: "data"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Unicast(0, NodeID(49), msg)
		if err := engine.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopologyRebuild50(b *testing.B) {
	_, nw := benchNetwork(b, 50)
	mob := &Mobility{Field: geo.DefaultField(), Placements: nw.Placements(), RNG: rand.New(rand.NewSource(2))}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.SetPositions(mob.Step())
	}
}

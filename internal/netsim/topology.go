// Package netsim simulates the multi-hop wireless network connecting edge
// devices.
//
// Nodes are placed by package geo; any two nodes within the radio range
// (70 m in the paper, typical 802.11n) share a link. Messages travel along
// shortest hop-count paths with a fixed per-hop propagation delay (10 ms in
// the paper). Broadcasts flood the connected component. The network charges
// every transmitted byte to the transmitting and receiving nodes so the
// evaluation can report per-node transmission overhead exactly as in
// Section VI-A.
package netsim

import (
	"math"
	"math/rand"

	"repro/internal/geo"
)

// NodeID identifies a node; IDs are dense indices assigned at placement.
type NodeID int

// InfHops marks unreachable node pairs in hop-count queries.
const InfHops = math.MaxInt32

// Topology is the radio graph over current node positions. It is rebuilt
// whenever nodes move or change up/down state.
type Topology struct {
	positions []geo.Point
	commRange float64
	clique    bool // all-pairs 1 hop; adj/hops/next stay nil
	adj       [][]NodeID
	hops      [][]int32  // all-pairs hop counts; InfHops if unreachable
	next      [][]NodeID // next[u][v]: first hop from u toward v, -1 if none
}

// NewClique returns the all-pairs-one-hop topology of a full TCP overlay
// mesh: every distinct pair is one hop apart and always reachable. Unlike
// NewTopology it materializes no adjacency or route tables, so building
// one is O(n) in memory and O(1) in route work — a position-based clique
// costs O(n²) memory and O(n³) BFS time, which at 1000 nodes is gigabytes
// and minutes PER NODE STACK that holds one. Down state is not modeled;
// overlay deployments track liveness above the transport.
func NewClique(n int) *Topology {
	return &Topology{positions: make([]geo.Point, n), commRange: 1, clique: true}
}

// NewTopology builds the radio graph for the given positions and range.
// down[i], if non-nil and true, removes node i from the graph entirely.
func NewTopology(positions []geo.Point, commRange float64, down []bool) *Topology {
	n := len(positions)
	t := &Topology{
		positions: append([]geo.Point(nil), positions...),
		commRange: commRange,
		adj:       make([][]NodeID, n),
	}
	for i := 0; i < n; i++ {
		if isDown(down, i) {
			continue
		}
		for j := i + 1; j < n; j++ {
			if isDown(down, j) {
				continue
			}
			if geo.Dist(positions[i], positions[j]) <= commRange {
				t.adj[i] = append(t.adj[i], NodeID(j))
				t.adj[j] = append(t.adj[j], NodeID(i))
			}
		}
	}
	t.computeRoutes(down)
	return t
}

func isDown(down []bool, i int) bool { return down != nil && down[i] }

// computeRoutes fills the hop-count matrix and next-hop table with one BFS
// per node.
func (t *Topology) computeRoutes(down []bool) {
	n := len(t.positions)
	t.hops = make([][]int32, n)
	t.next = make([][]NodeID, n)
	queue := make([]NodeID, 0, n)
	for s := 0; s < n; s++ {
		h := make([]int32, n)
		nx := make([]NodeID, n)
		for i := range h {
			h[i] = InfHops
			nx[i] = -1
		}
		t.hops[s] = h
		t.next[s] = nx
		if isDown(down, s) {
			continue
		}
		h[s] = 0
		queue = queue[:0]
		queue = append(queue, NodeID(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range t.adj[u] {
				if h[v] != InfHops {
					continue
				}
				h[v] = h[u] + 1
				if u == NodeID(s) {
					nx[v] = v
				} else {
					nx[v] = nx[u]
				}
				queue = append(queue, v)
			}
		}
	}
}

// N returns the number of nodes (including down nodes).
func (t *Topology) N() int { return len(t.positions) }

// Clique reports whether this topology came from NewClique: every pair one
// hop, no route tables. Cost models can exploit the uniform structure.
func (t *Topology) Clique() bool { return t.clique }

// Position returns the current position of node id.
func (t *Topology) Position(id NodeID) geo.Point { return t.positions[id] }

// Neighbors returns the direct radio neighbors of id. The returned slice
// must not be modified. Clique topologies build the row on every call
// (their only in-tree consumers never enumerate neighbors).
func (t *Topology) Neighbors(id NodeID) []NodeID {
	if t.clique {
		out := make([]NodeID, 0, len(t.positions)-1)
		for v := 0; v < len(t.positions); v++ {
			if NodeID(v) != id {
				out = append(out, NodeID(v))
			}
		}
		return out
	}
	return t.adj[id]
}

// Hops returns the shortest hop count between two nodes, or InfHops if they
// are in different components.
func (t *Topology) Hops(a, b NodeID) int {
	if t.clique {
		if a == b {
			return 0
		}
		return 1
	}
	return int(t.hops[a][b])
}

// NextHop returns the first hop on a shortest path from a toward b, or -1
// if b is unreachable. NextHop(a, a) returns a.
func (t *Topology) NextHop(a, b NodeID) NodeID {
	if a == b {
		return a
	}
	if t.clique {
		return b
	}
	return t.next[a][b]
}

// Reachable reports whether b can be reached from a.
func (t *Topology) Reachable(a, b NodeID) bool {
	return t.clique || t.hops[a][b] != InfHops
}

// Connected reports whether all up nodes form a single component.
// Down nodes are ignored.
func (t *Topology) Connected(down []bool) bool {
	if t.clique {
		return true
	}
	first := -1
	for i := 0; i < t.N(); i++ {
		if !isDown(down, i) {
			first = i
			break
		}
	}
	if first < 0 {
		return true
	}
	for i := 0; i < t.N(); i++ {
		if isDown(down, i) {
			continue
		}
		if t.hops[first][i] == InfHops {
			return false
		}
	}
	return true
}

// Mobility drives short-term node movement: every epoch each node jumps to
// a uniformly random point inside its mobility disc (clamped to the field),
// per Section VI ("mobility of the nodes is within 30 meter ranges").
type Mobility struct {
	Field      geo.Field
	Placements []geo.Placement
	RNG        *rand.Rand
}

// Step returns new positions for all nodes.
func (m *Mobility) Step() []geo.Point {
	out := make([]geo.Point, len(m.Placements))
	for i, pl := range m.Placements {
		out[i] = pl.RandomOffset(m.Field, m.RNG)
	}
	return out
}

// HomePositions extracts the home points from placements; used for the RDC
// cost model, which works on home positions plus mobility ranges.
func HomePositions(pls []geo.Placement) []geo.Point {
	out := make([]geo.Point, len(pls))
	for i, pl := range pls {
		out[i] = pl.Home
	}
	return out
}

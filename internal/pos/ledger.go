package pos

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/identity"
)

// Ledger derives every node's stake (S_i, tokens) and storage contribution
// (Q_i, stored items) deterministically from the chain history, so all
// nodes agree on targets without extra messages ("S and Q of each node can
// be obtained and validated through the history of the blockchain",
// Section V-A).
//
// Counting rules:
//   - S_i starts at 1 (a new node "requires to have at least one token")
//     and earns +1 per block mined.
//   - Q_i starts at 1 (every node stores at least the last block) and
//     earns +1 for each data item it is assigned to store, each block body
//     it is assigned to store, and each recent-block assignment
//     ("the chosen nodes will then get the same incentive as the nodes
//     that store a data item or a block", Section IV-C).
type Ledger struct {
	accounts  []identity.Address
	byAccount map[identity.Address]int
	mined     []uint64
	stored    []uint64
	// rented tracks Nxt-style token rentals (Section V-D: a new node can
	// "rent some resources from an existing node to get started"):
	// positive for borrowers, negative for lenders. Rentals happen through
	// an out-of-band agreement, so they are not chain-derived state; they
	// reset on Rebuild.
	rented []int64
	// applied is the height of the last applied block, to enforce in-order
	// application.
	applied uint64
	// RescaleEvery, when positive, automatically divides all stakes by
	// RescaleRatio every RescaleEvery applied blocks (Section V-B: "a
	// simple solution is to decrease S_i for all nodes simultaneously (by
	// ratio) after a certain number of blocks"). Because every node
	// derives the ledger from the same chain, the rescaling happens at
	// the same heights everywhere with no coordination.
	RescaleEvery uint64
	// RescaleRatio is the divisor used by automatic rescaling (default 2).
	RescaleRatio float64
	// scale is the cumulative stake rescaling divisor of Section V-B
	// ("decrease S_i for all nodes simultaneously (by ratio) ... and
	// increase B by the same ratio"). It cancels out of R_i exactly (the
	// paper notes relative advantages stay the same); it exists to keep B
	// representable. Exposed for the invariance test and ablation.
	scale float64
}

// NewLedger creates a ledger for the fixed node set. Index k in accounts
// is node ID k.
func NewLedger(accounts []identity.Address) *Ledger {
	l := &Ledger{
		accounts:  append([]identity.Address(nil), accounts...),
		byAccount: make(map[identity.Address]int, len(accounts)),
		mined:     make([]uint64, len(accounts)),
		stored:    make([]uint64, len(accounts)),
		rented:    make([]int64, len(accounts)),
		scale:     1,
	}
	for i, a := range accounts {
		l.byAccount[a] = i
	}
	return l
}

// N returns the number of nodes.
func (l *Ledger) N() int { return len(l.accounts) }

// IndexOf maps an account to its node index.
func (l *Ledger) IndexOf(a identity.Address) (int, bool) {
	i, ok := l.byAccount[a]
	return i, ok
}

// Account returns the account of node i.
func (l *Ledger) Account(i int) identity.Address { return l.accounts[i] }

// S returns node i's token count S_i (≥ 1), including rentals.
func (l *Ledger) S(i int) uint64 {
	s := int64(1+l.mined[i]) + l.rented[i]
	if s < 1 {
		return 1
	}
	return uint64(s)
}

// Rent transfers amount tokens from lender to borrower (Section V-D's
// bootstrap for new nodes). The lender must retain at least one token.
func (l *Ledger) Rent(lender, borrower int, amount uint64) error {
	if lender < 0 || lender >= l.N() || borrower < 0 || borrower >= l.N() {
		return fmt.Errorf("pos: rent between unknown nodes %d -> %d", lender, borrower)
	}
	if lender == borrower {
		return fmt.Errorf("pos: node %d cannot rent to itself", lender)
	}
	if l.S(lender) <= amount {
		return fmt.Errorf("pos: lender %d has %d tokens, cannot rent %d (must keep 1)", lender, l.S(lender), amount)
	}
	l.rented[lender] -= int64(amount)
	l.rented[borrower] += int64(amount)
	return nil
}

// Q returns node i's stored-item count Q_i (≥ 1).
func (l *Ledger) Q(i int) uint64 { return 1 + l.stored[i] }

// U returns U_i = S_i · Q_i.
func (l *Ledger) U(i int) float64 { return float64(l.S(i)) * float64(l.Q(i)) / l.scale }

// UBar returns Ū, the mean of U_i over all nodes.
func (l *Ledger) UBar() float64 {
	if l.N() == 0 {
		return 0
	}
	sum := 0.0
	for i := range l.accounts {
		sum += l.U(i)
	}
	return sum / float64(l.N())
}

// Height returns the last applied block height.
func (l *Ledger) Height() uint64 { return l.applied }

// Scale returns the current stake rescaling divisor.
func (l *Ledger) Scale() float64 { return l.scale }

// ApplyBlock folds one block into the stake state. Blocks must be applied
// in order starting at height 1.
func (l *Ledger) ApplyBlock(b *block.Block) error {
	if b.Index != l.applied+1 {
		return fmt.Errorf("pos: apply block %d after height %d", b.Index, l.applied)
	}
	if !b.Miner.IsZero() {
		if i, ok := l.byAccount[b.Miner]; ok {
			l.mined[i]++
		}
	}
	credit := func(nodes []int) {
		for _, n := range nodes {
			if n >= 0 && n < len(l.stored) {
				l.stored[n]++
			}
		}
	}
	for _, it := range b.Items {
		credit(it.StoringNodes)
	}
	credit(b.StoringNodes)
	credit(b.RecentAssignees)
	l.applied = b.Index
	if l.RescaleEvery > 0 && l.applied%l.RescaleEvery == 0 {
		ratio := l.RescaleRatio
		if ratio <= 1 {
			ratio = 2
		}
		l.Rescale(ratio)
	}
	return nil
}

// Clone returns an independent deep copy of the ledger's mutable state.
// The account roster (immutable after construction) is shared. Snapshots
// for incremental fork adoption (engine.AdoptSuffix) are built from
// clones so replaying a candidate suffix cannot corrupt the live ledger.
func (l *Ledger) Clone() *Ledger {
	cp := &Ledger{
		accounts:     l.accounts,
		byAccount:    l.byAccount,
		mined:        append([]uint64(nil), l.mined...),
		stored:       append([]uint64(nil), l.stored...),
		rented:       append([]int64(nil), l.rented...),
		applied:      l.applied,
		RescaleEvery: l.RescaleEvery,
		RescaleRatio: l.RescaleRatio,
		scale:        l.scale,
	}
	return cp
}

// Rebuild replays a whole chain (excluding genesis) into a fresh state;
// used when a node adopts a longer fork.
func (l *Ledger) Rebuild(blocks []*block.Block) error {
	for i := range l.mined {
		l.mined[i] = 0
		l.stored[i] = 0
		l.rented[i] = 0
	}
	l.applied = 0
	l.scale = 1
	for _, b := range blocks {
		if b.Index == 0 {
			continue
		}
		if err := l.ApplyBlock(b); err != nil {
			return err
		}
	}
	return nil
}

// LedgerState is the chain-derived portion of a ledger in exportable form,
// used by the engine's serializable snapshots (DESIGN.md §14). Slices index
// by node ID, matching the roster the ledger was built with.
type LedgerState struct {
	Mined   []uint64
	Stored  []uint64
	Rented  []int64
	Applied uint64
	Scale   float64
}

// ExportState copies out the ledger's chain-derived state.
func (l *Ledger) ExportState() LedgerState {
	return LedgerState{
		Mined:   append([]uint64(nil), l.mined...),
		Stored:  append([]uint64(nil), l.stored...),
		Rented:  append([]int64(nil), l.rented...),
		Applied: l.applied,
		Scale:   l.scale,
	}
}

// RestoreState overwrites the ledger's chain-derived state from an
// exported snapshot; the roster (and therefore the slice lengths) must
// match the one the ledger was constructed with.
func (l *Ledger) RestoreState(st LedgerState) error {
	if len(st.Mined) != l.N() || len(st.Stored) != l.N() || len(st.Rented) != l.N() {
		return fmt.Errorf("pos: snapshot roster size %d/%d/%d, ledger has %d nodes",
			len(st.Mined), len(st.Stored), len(st.Rented), l.N())
	}
	if st.Scale < 1 {
		return fmt.Errorf("pos: snapshot scale %v below 1", st.Scale)
	}
	copy(l.mined, st.Mined)
	copy(l.stored, st.Stored)
	copy(l.rented, st.Rented)
	l.applied = st.Applied
	l.scale = st.Scale
	return nil
}

// Rescale divides all effective stakes by ratio (> 1). Per Section V-B
// this is applied "after a certain number of blocks" purely to keep B's
// magnitude manageable; R_i values are unchanged because B grows by the
// same ratio through Ū.
func (l *Ledger) Rescale(ratio float64) {
	if ratio > 1 {
		l.scale *= ratio
	}
}

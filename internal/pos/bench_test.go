package pos

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/identity"
)

func benchSetup(b *testing.B, n int) (Params, *Ledger, *block.Block) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	accounts := make([]identity.Address, n)
	for i := range accounts {
		accounts[i] = identity.GenerateSeeded(rng).Address()
	}
	return DefaultParams(), NewLedger(accounts), block.Genesis(1)
}

func BenchmarkHit(b *testing.B) {
	p, led, g := benchSetup(b, 1)
	addr := led.Account(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Hit(g, addr)
	}
}

func BenchmarkTimeToMine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		TimeToMine(uint64(i)%DefaultM, 4, 0.37)
	}
}

func BenchmarkValidateClaim(b *testing.B) {
	p, led, g := benchSetup(b, 20)
	bval := p.AmendmentB(led.N(), led.UBar())
	winner, wt := -1, uint64(NeverMines)
	for i := 0; i < led.N(); i++ {
		if tm := TimeToMine(p.Hit(g, led.Account(i)), led.U(i), bval); tm < wt {
			winner, wt = i, tm
		}
	}
	blk := block.NewBuilder(g, led.Account(winner),
		g.Timestamp+time.Duration(wt)*time.Second, wt, bval).Seal()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.ValidateClaim(g, blk, led); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLedgerApplyBlock(b *testing.B) {
	p, led, g := benchSetup(b, 50)
	_ = p
	prev := g
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := block.NewBuilder(prev, led.Account(i%led.N()),
			prev.Timestamp+time.Minute, 60, 1).
			SetStoringNodes([]int{i % 50, (i + 1) % 50}).
			SetRecentAssignees([]int{(i + 2) % 50}).
			Seal()
		if err := led.ApplyBlock(blk); err != nil {
			b.Fatal(err)
		}
		prev = blk
	}
}

// Package pos implements the paper's Proof-of-Stake mining mechanism
// (Section V).
//
// Every node i derives a *hit* from the previous block's PoSHash and its
// own account address (eq. 7):
//
//	POSHash(t+1, i) = Hash[POSHash(t) ‖ Account_i]
//	h_i = POSHash(t+1, i) mod M
//
// and a *target* that grows each second (eq. 8):
//
//	R_i = S_i · Q_i · t · B
//
// where S_i is the node's token count, Q_i the number of data items it
// stores, t the seconds since the previous block and B the network-wide
// amendment (eq. 14) that pins the expected inter-block time to t0:
//
//	B = M / ((n+1) · t0 · Ū),   Ū = mean(S_i · Q_i)
//
// The node mines as soon as h_i ≤ R_i (eq. 9). Because h_i is fixed for
// the round and R_i is linear in t, the exact mining time is
// t_i = ceil(h_i / (S_i·Q_i·B)) — the simulation schedules one event
// instead of polling every second, with identical outcomes.
package pos

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"time"

	"repro/internal/block"
	"repro/internal/identity"
)

// DefaultM is the default hit modulus M: 2^40 keeps hits comfortably
// inside float64's exact-integer range while leaving headroom for large
// stakes.
const DefaultM = uint64(1) << 40

// DefaultT0 is the paper's expected block interval (60 s, Section VI).
const DefaultT0 = 60 * time.Second

// NeverMines is returned by TimeToMine when the node cannot mine this
// round (zero stake or zero target slope).
const NeverMines = math.MaxInt64

// Params are the network-wide PoS constants, agreed at genesis.
type Params struct {
	// M is the hit modulus of eq. (7).
	M uint64
	// T0 is the expected time between blocks of eq. (10).
	T0 time.Duration
}

// DefaultParams returns the paper's settings.
func DefaultParams() Params { return Params{M: DefaultM, T0: DefaultT0} }

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.M == 0 {
		return errors.New("pos: M must be positive")
	}
	if p.T0 <= 0 {
		return errors.New("pos: T0 must be positive")
	}
	return nil
}

// Hit computes h_i for the account mining on top of prev (eq. 7).
func (p Params) Hit(prev *block.Block, account identity.Address) uint64 {
	next := prev.NextPoSHash(account)
	n := new(big.Int).SetBytes(next[:])
	m := new(big.Int).SetUint64(p.M)
	return n.Mod(n, m).Uint64()
}

// AmendmentB computes B per eq. (14) for n nodes with average stake
// product ubar. It returns 0 if the network is degenerate (no nodes or
// zero stake), in which case mining stalls — callers should treat that as
// a configuration error.
func (p Params) AmendmentB(n int, ubar float64) float64 {
	if n <= 0 || ubar <= 0 {
		return 0
	}
	return float64(p.M) / (float64(n+1) * p.T0.Seconds() * ubar)
}

// Target computes R_i = U·t·B (eq. 8, with U = S·Q) after t whole
// seconds. U must be the ledger's effective (rescaled) stake product so it
// matches the B computed from the same ledger.
func Target(u float64, t uint64, b float64) float64 {
	return u * float64(t) * b
}

// TimeToMine returns the smallest whole number of seconds t ≥ 1 at which
// hit ≤ U·t·B holds (the moment the node wins the round), or NeverMines.
func TimeToMine(hit uint64, u float64, b float64) uint64 {
	slope := u * b
	if slope <= 0 {
		return NeverMines
	}
	if hit == 0 {
		return 1
	}
	t := math.Ceil(float64(hit) / slope)
	if t < 1 {
		return 1
	}
	if t >= float64(NeverMines) {
		return NeverMines
	}
	return uint64(t)
}

// Claim validation errors.
var (
	ErrBadB        = errors.New("pos: block's amendment B does not match the network state")
	ErrHitNotMet   = errors.New("pos: hit exceeds target at claimed time")
	ErrNotMinimal  = errors.New("pos: claimed mining time is later than the node's winning time")
	ErrBadElapsed  = errors.New("pos: timestamp earlier than claimed elapsed time")
	ErrUnknownNode = errors.New("pos: miner account not in ledger")
)

// ValidateClaim verifies that block b was legitimately mined on top of
// prev by its declared miner, using the stake ledger state as of prev:
// the amendment B matches eq. (14), the timestamp matches MinedAfter, the
// hit condition h ≤ R held at the claimed time, and the claimed time is
// the miner's true winning time (a miner cannot pad t to inflate its
// target). PoSHash chaining is checked by block.VerifyLink.
func (p Params) ValidateClaim(prev, b *block.Block, led *Ledger) error {
	idx, ok := led.IndexOf(b.Miner)
	if !ok {
		return ErrUnknownNode
	}
	wantB := p.AmendmentB(led.N(), led.UBar())
	if relDiff(b.B, wantB) > 1e-9 {
		return fmt.Errorf("%w: got %v, want %v", ErrBadB, b.B, wantB)
	}
	// The timestamp may trail the winning second by propagation/processing
	// delay, but can never precede it.
	elapsed := b.Timestamp - prev.Timestamp
	claimed := time.Duration(b.MinedAfter) * time.Second
	if elapsed < claimed {
		return fmt.Errorf("%w: elapsed %v, claimed %d s", ErrBadElapsed, elapsed, b.MinedAfter)
	}
	hit := p.Hit(prev, b.Miner)
	u := led.U(idx)
	if float64(hit) > Target(u, b.MinedAfter, b.B) {
		return fmt.Errorf("%w: hit %d > target %v", ErrHitNotMet, hit, Target(u, b.MinedAfter, b.B))
	}
	if want := TimeToMine(hit, u, b.B); b.MinedAfter > want {
		return fmt.Errorf("%w: claimed %d s, winning time %d s", ErrNotMinimal, b.MinedAfter, want)
	}
	return nil
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	return d / math.Max(math.Abs(a), math.Abs(b))
}

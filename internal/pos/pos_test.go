package pos

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/identity"
	"repro/internal/meta"
)

func testAccounts(n int, seed int64) ([]identity.Address, []*identity.Identity) {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]*identity.Identity, n)
	addrs := make([]identity.Address, n)
	for i := range ids {
		ids[i] = identity.GenerateSeeded(rng)
		addrs[i] = ids[i].Address()
	}
	return addrs, ids
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{M: 0, T0: time.Second}).Validate(); err == nil {
		t.Fatal("zero M accepted")
	}
	if err := (Params{M: 1, T0: 0}).Validate(); err == nil {
		t.Fatal("zero T0 accepted")
	}
}

func TestHitDeterministicAndBounded(t *testing.T) {
	p := DefaultParams()
	g := block.Genesis(1)
	addrs, _ := testAccounts(20, 1)
	seen := make(map[uint64]int)
	for i, a := range addrs {
		h1, h2 := p.Hit(g, a), p.Hit(g, a)
		if h1 != h2 {
			t.Fatal("hit not deterministic")
		}
		if h1 >= p.M {
			t.Fatalf("hit %d >= M", h1)
		}
		seen[h1] = i
	}
	if len(seen) != len(addrs) {
		t.Fatalf("hit collisions: %d distinct for %d accounts", len(seen), len(addrs))
	}
}

func TestHitUniformity(t *testing.T) {
	// Chi-squared sanity check: hits over many accounts should fill all
	// quarters of [0, M).
	p := Params{M: 1 << 20, T0: time.Minute}
	g := block.Genesis(2)
	addrs, _ := testAccounts(400, 2)
	buckets := make([]int, 4)
	for _, a := range addrs {
		buckets[p.Hit(g, a)*4/p.M]++
	}
	for q, c := range buckets {
		if c < 60 || c > 140 {
			t.Fatalf("quarter %d has %d/400 hits; distribution badly skewed: %v", q, c, buckets)
		}
	}
}

func TestAmendmentB(t *testing.T) {
	p := Params{M: 1 << 20, T0: time.Minute}
	b := p.AmendmentB(9, 2.0)
	want := float64(1<<20) / (10 * 60 * 2.0)
	if math.Abs(b-want) > 1e-12 {
		t.Fatalf("B = %v, want %v", b, want)
	}
	if p.AmendmentB(0, 1) != 0 || p.AmendmentB(5, 0) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}

func TestTimeToMine(t *testing.T) {
	tests := []struct {
		name string
		hit  uint64
		u    float64
		b    float64
		want uint64
	}{
		{"zero hit mines at 1s", 0, 1, 1, 1},
		{"exact division", 100, 10, 1, 10},
		{"rounds up", 101, 10, 1, 11},
		{"below slope mines at 1s", 5, 10, 1, 1},
		{"zero slope never mines", 10, 0, 1, NeverMines},
		{"zero B never mines", 10, 1, 0, NeverMines},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TimeToMine(tt.hit, tt.u, tt.b); got != tt.want {
				t.Errorf("TimeToMine(%d, %v, %v) = %d, want %d", tt.hit, tt.u, tt.b, got, tt.want)
			}
		})
	}
}

func TestTimeToMineMatchesPaperLoop(t *testing.T) {
	// The closed form must agree with the literal algorithm of Section V-C
	// (increment t every second until h ≤ R).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		hit := uint64(rng.Intn(100000))
		u := float64(1 + rng.Intn(50))
		b := rng.Float64()*10 + 0.01
		closed := TimeToMine(hit, u, b)
		var loop uint64 = NeverMines
		for tt := uint64(1); tt <= 200000; tt++ {
			if float64(hit) <= Target(u, tt, b) {
				loop = tt
				break
			}
		}
		if closed != loop {
			t.Fatalf("trial %d: closed form %d != loop %d (hit=%d u=%v b=%v)", trial, closed, loop, hit, u, b)
		}
	}
}

func TestLedgerInitialState(t *testing.T) {
	addrs, _ := testAccounts(3, 4)
	l := NewLedger(addrs)
	for i := range addrs {
		if l.S(i) != 1 || l.Q(i) != 1 {
			t.Fatalf("node %d: S=%d Q=%d, want 1,1 (paper's new-node floor)", i, l.S(i), l.Q(i))
		}
	}
	if l.UBar() != 1 {
		t.Fatalf("UBar = %v, want 1", l.UBar())
	}
	if idx, ok := l.IndexOf(addrs[1]); !ok || idx != 1 {
		t.Fatal("IndexOf broken")
	}
	if _, ok := l.IndexOf(identity.Address{}); ok {
		t.Fatal("unknown account resolved")
	}
}

func minedBlock(prev *block.Block, miner *identity.Identity, storing, recent []int, items []*meta.Item) *block.Block {
	bld := block.NewBuilder(prev, miner.Address(), prev.Timestamp+time.Minute, 60, 1)
	for _, it := range items {
		bld.AddItem(it)
	}
	return bld.SetStoringNodes(storing).SetRecentAssignees(recent).Seal()
}

func TestLedgerApplyBlock(t *testing.T) {
	addrs, ids := testAccounts(4, 5)
	l := NewLedger(addrs)
	g := block.Genesis(1)

	it := &meta.Item{ID: meta.HashData([]byte("d")), Type: "T/x", DataSize: 1}
	it.Sign(ids[2])
	it.StoringNodes = []int{0, 1}

	b1 := minedBlock(g, ids[0], []int{1, 2}, []int{3}, []*meta.Item{it})
	if err := l.ApplyBlock(b1); err != nil {
		t.Fatal(err)
	}
	if l.S(0) != 2 {
		t.Fatalf("miner S = %d, want 2", l.S(0))
	}
	// Q: node0 stores item -> 2; node1 stores item + block -> 3;
	// node2 stores block -> 2; node3 recent assignee -> 2.
	wantQ := []uint64{2, 3, 2, 2}
	for i, w := range wantQ {
		if l.Q(i) != w {
			t.Fatalf("Q(%d) = %d, want %d", i, l.Q(i), w)
		}
	}
	if l.Height() != 1 {
		t.Fatalf("height = %d, want 1", l.Height())
	}
}

func TestLedgerOutOfOrderApply(t *testing.T) {
	addrs, ids := testAccounts(2, 6)
	l := NewLedger(addrs)
	g := block.Genesis(1)
	b1 := minedBlock(g, ids[0], nil, nil, nil)
	b2 := minedBlock(b1, ids[1], nil, nil, nil)
	if err := l.ApplyBlock(b2); err == nil {
		t.Fatal("out-of-order apply accepted")
	}
	if err := l.ApplyBlock(b1); err != nil {
		t.Fatal(err)
	}
	if err := l.ApplyBlock(b1); err == nil {
		t.Fatal("duplicate apply accepted")
	}
}

func TestLedgerRebuild(t *testing.T) {
	addrs, ids := testAccounts(2, 7)
	l := NewLedger(addrs)
	g := block.Genesis(1)
	b1 := minedBlock(g, ids[0], []int{1}, nil, nil)
	b2 := minedBlock(b1, ids[0], nil, nil, nil)
	if err := l.Rebuild([]*block.Block{g, b1, b2}); err != nil {
		t.Fatal(err)
	}
	if l.S(0) != 3 || l.Q(1) != 2 {
		t.Fatalf("rebuild state wrong: S(0)=%d Q(1)=%d", l.S(0), l.Q(1))
	}
	// Rebuild again must be idempotent.
	if err := l.Rebuild([]*block.Block{g, b1, b2}); err != nil {
		t.Fatal(err)
	}
	if l.S(0) != 3 {
		t.Fatal("second rebuild accumulated state")
	}
}

func TestRescaleInvariance(t *testing.T) {
	// Rescaling S (Section V-B) must leave winning times unchanged: B
	// grows by exactly the ratio that U shrinks.
	addrs, ids := testAccounts(5, 8)
	p := DefaultParams()
	g := block.Genesis(1)
	l := NewLedger(addrs)
	b1 := minedBlock(g, ids[0], []int{1, 2}, []int{3}, nil)
	if err := l.ApplyBlock(b1); err != nil {
		t.Fatal(err)
	}

	before := make([]uint64, len(addrs))
	bval := p.AmendmentB(l.N(), l.UBar())
	for i := range addrs {
		before[i] = TimeToMine(p.Hit(b1, addrs[i]), l.U(i), bval)
	}

	l.Rescale(16)
	bval2 := p.AmendmentB(l.N(), l.UBar())
	if bval2 <= bval {
		t.Fatalf("B did not grow after rescale: %v -> %v", bval, bval2)
	}
	for i := range addrs {
		after := TimeToMine(p.Hit(b1, addrs[i]), l.U(i), bval2)
		if after != before[i] {
			t.Fatalf("node %d winning time changed by rescale: %d -> %d", i, before[i], after)
		}
	}
}

func TestRescaleIgnoresBadRatio(t *testing.T) {
	addrs, _ := testAccounts(2, 9)
	l := NewLedger(addrs)
	l.Rescale(0.5)
	if l.Scale() != 1 {
		t.Fatal("ratio <= 1 must be ignored")
	}
}

func TestValidateClaimAcceptsHonestBlock(t *testing.T) {
	addrs, ids := testAccounts(5, 10)
	p := DefaultParams()
	g := block.Genesis(1)
	l := NewLedger(addrs)

	bval := p.AmendmentB(l.N(), l.UBar())
	// Find the winner: the node with the earliest winning time.
	winner, wt := -1, uint64(NeverMines)
	for i := range addrs {
		if tm := TimeToMine(p.Hit(g, addrs[i]), l.U(i), bval); tm < wt {
			winner, wt = i, tm
		}
	}
	if winner < 0 {
		t.Fatal("no winner")
	}
	b := block.NewBuilder(g, addrs[winner], g.Timestamp+time.Duration(wt)*time.Second, wt, bval).Seal()
	if err := p.ValidateClaim(g, b, l); err != nil {
		t.Fatalf("honest claim rejected: %v", err)
	}
	_ = ids
}

func TestValidateClaimRejections(t *testing.T) {
	addrs, _ := testAccounts(5, 11)
	p := DefaultParams()
	g := block.Genesis(1)
	l := NewLedger(addrs)
	bval := p.AmendmentB(l.N(), l.UBar())

	winner, wt := -1, uint64(NeverMines)
	for i := range addrs {
		if tm := TimeToMine(p.Hit(g, addrs[i]), l.U(i), bval); tm < wt {
			winner, wt = i, tm
		}
	}
	loser := (winner + 1) % len(addrs)
	loserTime := TimeToMine(p.Hit(g, addrs[loser]), l.U(loser), bval)

	t.Run("unknown miner", func(t *testing.T) {
		stranger := identity.GenerateSeeded(rand.New(rand.NewSource(99)))
		b := block.NewBuilder(g, stranger.Address(), g.Timestamp+time.Minute, 60, bval).Seal()
		if err := p.ValidateClaim(g, b, l); !errors.Is(err, ErrUnknownNode) {
			t.Fatalf("err = %v, want ErrUnknownNode", err)
		}
	})
	t.Run("wrong B", func(t *testing.T) {
		b := block.NewBuilder(g, addrs[winner], g.Timestamp+time.Duration(wt)*time.Second, wt, bval*2).Seal()
		if err := p.ValidateClaim(g, b, l); !errors.Is(err, ErrBadB) {
			t.Fatalf("err = %v, want ErrBadB", err)
		}
	})
	t.Run("premature claim", func(t *testing.T) {
		if wt <= 1 {
			t.Skip("winner mines at 1s; no earlier time exists")
		}
		early := wt - 1
		b := block.NewBuilder(g, addrs[winner], g.Timestamp+time.Duration(early)*time.Second, early, bval).Seal()
		if err := p.ValidateClaim(g, b, l); !errors.Is(err, ErrHitNotMet) {
			t.Fatalf("err = %v, want ErrHitNotMet", err)
		}
	})
	t.Run("padded time", func(t *testing.T) {
		// The loser waits long enough that its hit condition holds, but
		// claims a time later than its true winning time is fine; claiming
		// later than winning time must fail only if > winning time. Here we
		// claim winning+10 which must be rejected as non-minimal.
		padded := loserTime + 10
		b := block.NewBuilder(g, addrs[loser], g.Timestamp+time.Duration(padded)*time.Second, padded, bval).Seal()
		if err := p.ValidateClaim(g, b, l); !errors.Is(err, ErrNotMinimal) {
			t.Fatalf("err = %v, want ErrNotMinimal", err)
		}
	})
	t.Run("timestamp before win rejected", func(t *testing.T) {
		if wt == 0 {
			t.Skip("degenerate winning time")
		}
		b := block.NewBuilder(g, addrs[winner], g.Timestamp+time.Duration(wt)*time.Second-time.Millisecond, wt, bval).Seal()
		if err := p.ValidateClaim(g, b, l); !errors.Is(err, ErrBadElapsed) {
			t.Fatalf("err = %v, want ErrBadElapsed", err)
		}
	})
	t.Run("late timestamp accepted", func(t *testing.T) {
		// Propagation delay means honest blocks may carry timestamps after
		// the winning second.
		b := block.NewBuilder(g, addrs[winner], g.Timestamp+time.Duration(wt)*time.Second+300*time.Millisecond, wt, bval).Seal()
		if err := p.ValidateClaim(g, b, l); err != nil {
			t.Fatalf("late-but-honest block rejected: %v", err)
		}
	})
}

func TestExpectedBlockIntervalNearT0(t *testing.T) {
	// Statistical reproduction of eq. (10): with B from eq. (14), the mean
	// winner time across many rounds should be near t0. The derivation
	// uses E(min h) over uniform hits, so we allow a generous band.
	p := Params{M: 1 << 40, T0: 60 * time.Second}
	addrs, _ := testAccounts(20, 12)
	l := NewLedger(addrs)
	bval := p.AmendmentB(l.N(), l.UBar())

	prev := block.Genesis(3)
	total := 0.0
	rounds := 400
	for r := 0; r < rounds; r++ {
		wt := uint64(NeverMines)
		var wa identity.Address
		for i := range addrs {
			if tm := TimeToMine(p.Hit(prev, addrs[i]), l.U(i), bval); tm < wt {
				wt, wa = tm, addrs[i]
			}
		}
		total += float64(wt)
		prev = block.NewBuilder(prev, wa, prev.Timestamp+time.Duration(wt)*time.Second, wt, bval).Seal()
	}
	mean := total / float64(rounds)
	t0 := p.T0.Seconds()
	if mean < t0/4 || mean > t0*4 {
		t.Fatalf("mean block interval %.1f s too far from t0 = %.0f s", mean, t0)
	}
	t.Logf("mean interval %.1f s (t0 = %.0f s)", mean, t0)
}

func TestStakeBiasesWinning(t *testing.T) {
	// A node with much larger U should win far more rounds: the paper's
	// core incentive ("if a node has more token and stores more data, the
	// node will have more advantages to mine blocks").
	p := Params{M: 1 << 40, T0: 60 * time.Second}
	addrs, _ := testAccounts(10, 13)
	l := NewLedger(addrs)
	// Inflate node 0's storage contribution via direct block application.
	g := block.Genesis(4)
	prev := g
	_, ids := testAccounts(10, 13)
	for k := 0; k < 30; k++ {
		b := minedBlock(prev, ids[0], []int{0}, nil, nil)
		if err := l.ApplyBlock(b); err != nil {
			t.Fatal(err)
		}
		prev = b
	}
	wins := make([]int, len(addrs))
	bval := p.AmendmentB(l.N(), l.UBar())
	for r := 0; r < 300; r++ {
		winner, wt := -1, uint64(NeverMines)
		for i := range addrs {
			if tm := TimeToMine(p.Hit(prev, addrs[i]), l.U(i), bval); tm < wt {
				winner, wt = i, tm
			}
		}
		wins[winner]++
		prev = block.NewBuilder(prev, addrs[winner], prev.Timestamp+time.Duration(wt)*time.Second, wt, bval).Seal()
	}
	others := 0
	for i := 1; i < len(wins); i++ {
		others += wins[i]
	}
	if wins[0] <= others {
		t.Fatalf("high-stake node won %d of 300; others %d — stake advantage missing", wins[0], others)
	}
	t.Logf("high-stake node won %d/300 rounds", wins[0])
}

func TestRent(t *testing.T) {
	addrs, ids := testAccounts(3, 20)
	l := NewLedger(addrs)
	g := block.Genesis(1)
	// Give node 0 five extra tokens by mining.
	prev := g
	for i := 0; i < 5; i++ {
		b := minedBlock(prev, ids[0], nil, nil, nil)
		if err := l.ApplyBlock(b); err != nil {
			t.Fatal(err)
		}
		prev = b
	}
	if l.S(0) != 6 {
		t.Fatalf("S(0) = %d, want 6", l.S(0))
	}
	if err := l.Rent(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if l.S(0) != 3 || l.S(1) != 4 {
		t.Fatalf("after rent: S(0)=%d S(1)=%d, want 3, 4", l.S(0), l.S(1))
	}
}

func TestRentErrors(t *testing.T) {
	addrs, _ := testAccounts(2, 21)
	l := NewLedger(addrs)
	if err := l.Rent(0, 1, 1); err == nil {
		t.Fatal("lender with 1 token rented it away")
	}
	if err := l.Rent(0, 0, 0); err == nil {
		t.Fatal("self-rent accepted")
	}
	if err := l.Rent(-1, 1, 1); err == nil {
		t.Fatal("unknown lender accepted")
	}
	if err := l.Rent(0, 9, 1); err == nil {
		t.Fatal("unknown borrower accepted")
	}
}

func TestRentResetOnRebuild(t *testing.T) {
	addrs, ids := testAccounts(2, 22)
	l := NewLedger(addrs)
	g := block.Genesis(1)
	b1 := minedBlock(g, ids[0], nil, nil, nil)
	if err := l.ApplyBlock(b1); err != nil {
		t.Fatal(err)
	}
	if err := l.Rent(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Rebuild([]*block.Block{g, b1}); err != nil {
		t.Fatal(err)
	}
	if l.S(0) != 2 || l.S(1) != 1 {
		t.Fatalf("rentals survived rebuild: S(0)=%d S(1)=%d", l.S(0), l.S(1))
	}
}

func TestAutomaticRescale(t *testing.T) {
	addrs, ids := testAccounts(3, 30)
	l := NewLedger(addrs)
	l.RescaleEvery = 5
	g := block.Genesis(1)
	prev := g
	for i := 0; i < 12; i++ {
		b := minedBlock(prev, ids[i%3], []int{i % 3}, nil, nil)
		if err := l.ApplyBlock(b); err != nil {
			t.Fatal(err)
		}
		prev = b
	}
	// Two rescales at heights 5 and 10: scale = 4.
	if l.Scale() != 4 {
		t.Fatalf("scale = %v, want 4", l.Scale())
	}
	// Relative advantages unchanged: U ratios equal the unscaled ledger's.
	plain := NewLedger(addrs)
	prev = g
	for i := 0; i < 12; i++ {
		b := minedBlock(prev, ids[i%3], []int{i % 3}, nil, nil)
		if err := plain.ApplyBlock(b); err != nil {
			t.Fatal(err)
		}
		prev = b
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			a := l.U(i) / l.U(j)
			b := plain.U(i) / plain.U(j)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("relative advantage changed: U(%d)/U(%d) = %v vs %v", i, j, a, b)
			}
		}
	}
	// Rebuild resets the scale and replays the automatic rescaling.
	blocks := []*block.Block{g}
	prev = g
	for i := 0; i < 12; i++ {
		b := minedBlock(prev, ids[i%3], []int{i % 3}, nil, nil)
		blocks = append(blocks, b)
		prev = b
	}
	if err := l.Rebuild(blocks); err != nil {
		t.Fatal(err)
	}
	if l.Scale() != 4 {
		t.Fatalf("scale after rebuild = %v, want 4", l.Scale())
	}
}

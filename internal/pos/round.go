package pos

import (
	"repro/internal/block"
	"repro/internal/identity"
)

// Round computes one full mining round for account on top of prev: the
// network-wide amendment B of eq. (14) derived from the ledger, the
// account's hit (eq. 7), and the resulting winning time (eqs. 8–9).
//
// This is the single site of the round-time computation shared by the
// consensus engine (and therefore by both the simulated and the live
// node): validators cross-check the same values through ValidateClaim.
// It returns (NeverMines, 0) when the account is not in the ledger or the
// network is degenerate (AmendmentB of 0).
func (p Params) Round(prev *block.Block, account identity.Address, led *Ledger) (t uint64, b float64) {
	idx, ok := led.IndexOf(account)
	if !ok {
		return NeverMines, 0
	}
	b = p.AmendmentB(led.N(), led.UBar())
	hit := p.Hit(prev, account)
	return TimeToMine(hit, led.U(idx), b), b
}

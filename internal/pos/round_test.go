package pos

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/identity"
)

// goldenRoster builds the deterministic 5-node roster used by the pinned
// round values below.
func goldenRoster(t *testing.T) ([]identity.Address, *Ledger) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	accounts := make([]identity.Address, 5)
	for i := range accounts {
		accounts[i] = identity.GenerateSeeded(rng).Address()
	}
	return accounts, NewLedger(accounts)
}

// TestRoundGoldenDefaults pins the eq. 14 amendment and the per-node
// winning times for the paper's default parameters (M = 2^40, t0 = 60 s)
// on a fresh 5-node ledger mining on top of a seeded genesis. Any drift in
// the round-time math — now shared by the simulated and the live node —
// breaks these values.
func TestRoundGoldenDefaults(t *testing.T) {
	p := DefaultParams()
	accounts, led := goldenRoster(t)
	g := block.Genesis(42)

	// Fresh ledger: S_i = Q_i = 1 for everyone, so Ū = 1 and eq. (14)
	// reduces to B = M / ((n+1)·t0) = 2^40 / 360.
	wantB := float64(p.M) / (float64(len(accounts)+1) * p.T0.Seconds())
	const wantBPinned = 3.0541989660444446e+09
	if wantB != wantBPinned {
		t.Fatalf("closed-form B = %v, pinned %v", wantB, wantBPinned)
	}

	wantHits := []uint64{307153172725, 669827469443, 558682180280, 835284038862, 1087977672992}
	wantTimes := []uint64{101, 220, 183, 274, 357}
	for i, a := range accounts {
		if hit := p.Hit(g, a); hit != wantHits[i] {
			t.Errorf("node %d: hit = %d, pinned %d", i, hit, wantHits[i])
		}
		tt, b := p.Round(g, a, led)
		if b != wantBPinned {
			t.Errorf("node %d: B = %v, pinned %v", i, b, wantBPinned)
		}
		if tt != wantTimes[i] {
			t.Errorf("node %d: t = %d, pinned %d", i, tt, wantTimes[i])
		}
	}
}

// TestRoundMatchesParts checks that Round is exactly the composition of
// AmendmentB, Hit and TimeToMine it replaces, on a non-trivial ledger.
func TestRoundMatchesParts(t *testing.T) {
	p := Params{M: DefaultM, T0: 30 * time.Second}
	accounts, led := goldenRoster(t)
	prev := block.Genesis(7)
	// Skew the ledger so U_i differs per node.
	b1 := block.NewBuilder(prev, accounts[1], time.Second, 1, 0)
	b1.SetStoringNodes([]int{2, 3})
	blk := b1.Seal()
	if err := led.ApplyBlock(blk); err != nil {
		t.Fatal(err)
	}
	for i, a := range accounts {
		wantB := p.AmendmentB(led.N(), led.UBar())
		wantT := TimeToMine(p.Hit(blk, a), led.U(i), wantB)
		gotT, gotB := p.Round(blk, a, led)
		if gotT != wantT || gotB != wantB {
			t.Errorf("node %d: Round = (%d, %v), parts = (%d, %v)", i, gotT, gotB, wantT, wantB)
		}
	}
}

// TestRoundUnknownAccount: accounts outside the roster never mine.
func TestRoundUnknownAccount(t *testing.T) {
	p := DefaultParams()
	_, led := goldenRoster(t)
	stranger := identity.GenerateSeeded(rand.New(rand.NewSource(99))).Address()
	tt, b := p.Round(block.Genesis(42), stranger, led)
	if tt != NeverMines || b != 0 {
		t.Fatalf("stranger Round = (%d, %v), want (NeverMines, 0)", tt, b)
	}
}

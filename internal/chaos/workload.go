package chaos

import (
	"fmt"
	"time"

	"repro/internal/workload"
)

// WorkloadOptions wire an open-loop workload stream (and optionally a
// churn trace) into a cluster under the virtual clock.
type WorkloadOptions struct {
	// Stream is the open-loop generator configuration. NumNodes must
	// equal the cluster size.
	Stream workload.StreamConfig
	// Churn, when non-empty, schedules node outages: each event crashes
	// its node at At and restarts it Down later. Events whose node is
	// already down (or protected by being dead already) are skipped.
	Churn []workload.ChurnEvent
	// RequestDelay is how long after an item's production its requesters
	// ask for the bytes (default 3 block intervals at the cluster's T0) —
	// enough time for the item to land in a block and be placed.
	RequestDelay time.Duration
	// PayloadBytes sizes each published item's content (default 64).
	PayloadBytes int
}

// WorkloadStats counts what an open-loop run actually did. All fields
// are driven by virtual-clock callbacks, so same seed ⇒ same stats.
type WorkloadStats struct {
	// Published counts successful Publish calls; PublishErrors the ones
	// the node rejected; SkippedDead arrivals whose producer had crashed
	// between scheduling and firing (plus arrivals the generator skipped
	// because no node was alive).
	Published     int
	PublishErrors int
	SkippedDead   int
	// Requests counts RequestData calls issued on requester nodes.
	Requests int
	// ChurnDowns and ChurnRestarts count executed churn transitions.
	ChurnDowns    int
	ChurnRestarts int
}

// WorkloadDriver feeds a cluster from a workload stream, open-loop: each
// arrival is scheduled as a virtual-clock timer, and the next event is
// pulled from the generator only when the current one fires — O(1)
// workload state regardless of horizon, and the generator's alive mask
// sees the cluster exactly as it is at generation time.
type WorkloadDriver struct {
	c     *Cluster
	opts  WorkloadOptions
	s     *workload.Stream
	start time.Duration // virtual time (since epoch) of stream t=0
	stats WorkloadStats
	done  bool
}

// StartWorkload validates opts, starts the churn schedule, and arms the
// first arrival. The driver runs entirely on the cluster's virtual
// clock: advance the cluster (Run/RunUntil) and the workload happens.
func (c *Cluster) StartWorkload(opts WorkloadOptions) (*WorkloadDriver, error) {
	if opts.Stream.NumNodes != c.opts.N {
		return nil, fmt.Errorf("chaos: workload for %d nodes on a %d-node cluster",
			opts.Stream.NumNodes, c.opts.N)
	}
	if opts.RequestDelay <= 0 {
		opts.RequestDelay = 3 * c.opts.T0
	}
	if opts.PayloadBytes <= 0 {
		opts.PayloadBytes = 64
	}
	s, err := workload.NewStream(opts.Stream)
	if err != nil {
		return nil, err
	}
	d := &WorkloadDriver{
		c:     c,
		opts:  opts,
		s:     s,
		start: c.Clock.Now().Sub(c.Epoch),
	}
	s.SetAlive(func(node int) bool { return c.nodes[node] != nil })
	for _, ev := range opts.Churn {
		d.scheduleChurn(ev)
	}
	d.scheduleNext()
	return d, nil
}

// Stats returns the run's counters so far.
func (d *WorkloadDriver) Stats() WorkloadStats { return d.stats }

// Done reports whether the stream is exhausted (every arrival fired).
func (d *WorkloadDriver) Done() bool { return d.done }

// scheduleNext pulls one event from the generator and arms its timer.
func (d *WorkloadDriver) scheduleNext() {
	ev, ok := d.s.Next()
	if !ok {
		d.done = true
		return
	}
	due := d.start + ev.At - d.c.Clock.Now().Sub(d.c.Epoch)
	if due < 0 {
		due = 0
	}
	d.c.Clock.AfterFunc(due, func() { d.fire(ev) })
}

// fire publishes one arrival on its producer, schedules the requester
// fetches, and arms the next event.
func (d *WorkloadDriver) fire(ev workload.Event) {
	// Pull the next arrival first: generation happens at this instant
	// either way, keeping the generator's RNG position a pure function of
	// the schedule (not of whether this producer survived).
	defer d.scheduleNext()

	node := d.c.nodes[ev.Producer]
	if node == nil {
		// The producer crashed between generation (one arrival earlier)
		// and now; the alive mask could not see that yet.
		d.stats.SkippedDead++
		return
	}
	content := make([]byte, d.opts.PayloadBytes)
	copy(content, fmt.Sprintf("open-loop item seq=%08d user=%d", d.s.Seq(), ev.User))
	it, err := node.Publish(content, ev.Type, "")
	if err != nil {
		d.stats.PublishErrors++
		return
	}
	d.stats.Published++
	for _, r := range ev.Requesters {
		r := r
		d.c.Clock.AfterFunc(d.opts.RequestDelay, func() {
			if n := d.c.nodes[r]; n != nil {
				d.stats.Requests++
				n.RequestData(it.ID)
			}
		})
	}
}

// scheduleChurn arms one outage: crash at At, restart Down later.
func (d *WorkloadDriver) scheduleChurn(ev workload.ChurnEvent) {
	now := d.c.Clock.Now().Sub(d.c.Epoch)
	due := d.start + ev.At - now
	if due < 0 {
		due = 0
	}
	d.c.Clock.AfterFunc(due, func() {
		if d.c.nodes[ev.Node] == nil {
			return // already down from an overlapping outage
		}
		if err := d.c.Crash(ev.Node); err != nil {
			return
		}
		d.stats.ChurnDowns++
		d.c.Clock.AfterFunc(ev.Down, func() {
			if d.c.nodes[ev.Node] != nil {
				return
			}
			if err := d.c.Restart(ev.Node); err == nil {
				d.stats.ChurnRestarts++
			}
		})
	})
}

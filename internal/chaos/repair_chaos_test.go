package chaos

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/meta"
	"repro/internal/repair"
)

// repairChaosResult captures everything the self-healing scenario asserts
// on, so the same run can be replayed for the determinism check.
type repairChaosResult struct {
	eventLog       string
	tip            uint64
	killed         string
	repairBytes    uint64
	consensusBytes uint64
	completed      uint64
	reannounced    uint64
}

// runRepairScenario drives the tentpole chaos scenario: a 24-node cluster
// with the repair plane on publishes a batch of never-expiring items, then
// loses 30% of its storing nodes (weighted by items stored) in one churn
// event. The survivors must detect the deaths, re-announce replacement
// placements on chain, and re-replicate every item back to its floor —
// with cumulative repair wire-bytes strictly below consensus wire-bytes.
func runRepairScenario(t *testing.T, seed int64) repairChaosResult {
	t.Helper()
	const (
		n     = 24
		items = 16
		floor = alloc.DefaultMinReplicas
	)
	c := newCluster(t, Options{
		N:    n,
		Seed: seed,
		// Small capacity: FDC turns positive once the first block gives
		// every node a recent-cache slot, so placements narrow to the
		// replica floor instead of the degenerate full-mesh optimum.
		StorageCapacity: 48,
		RepairWorkers:   2,
		// Tighter churn verdicts than the wall-clock defaults: peers
		// heartbeat every 2s (the probe default), so 4s+4s of silence is
		// still two missed beats before suspicion and two more before
		// death — no false positives, faster scenario turnaround.
		RepairSuspectAfter: 4 * time.Second,
		RepairHysteresis:   4 * time.Second,
	})
	now := func() time.Duration { return c.Clock.Now().Sub(c.Epoch) }

	// Let the first block land everywhere so every node's storage shows
	// some use and subsequent placements are selective.
	warm := func() bool {
		for _, node := range c.Nodes() {
			if node.Height() < 1 {
				return false
			}
		}
		return true
	}
	if err := c.RunUntil(warm, 10*time.Minute); err != nil {
		t.Fatal(err)
	}

	// Nodes 0 and 1 publish and stay protected from the churn event: the
	// producers keep serving content for the broadcast-fallback path.
	ids := make([]meta.DataID, items)
	for k := 0; k < items; k++ {
		it, err := c.Node(k%2).Publish([]byte(fmt.Sprintf("sensor reading %02d", k)), "Road/Congestion", "junction")
		if err != nil {
			t.Fatal(err)
		}
		ids[k] = it.ID
	}
	placed := func() bool {
		idx := repair.NewIndex(n)
		idx.Rebuild(c.Node(0).ChainSnapshot())
		idx.ExpireUntil(now())
		for _, id := range ids {
			if p := idx.Providers(id); len(p) == 0 || len(p) >= n {
				return false
			}
		}
		return true
	}
	if err := c.RunUntil(placed, 10*time.Minute); err != nil {
		t.Fatal(err)
	}

	killed, err := c.KillStoringNodes(0.3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(killed) < 2 {
		t.Fatalf("churn event killed only %v — scenario exercises too little", killed)
	}
	// The kill must create a real healing obligation, or the recovery
	// phase below would pass vacuously.
	if c.CheckReplication(floor) == nil {
		t.Fatal("killing 30% of storing nodes left no replication deficit — placements too wide")
	}

	healed := func() bool {
		return c.Converged() && c.CheckReplication(floor) == nil
	}
	if err := c.RunUntil(healed, 30*time.Minute); err != nil {
		t.Fatalf("%v; replication: %v", err, c.CheckReplication(floor))
	}
	if err := c.Settle(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
	if err := c.CheckReplication(floor); err != nil {
		t.Fatal(err)
	}

	sumCounter := func(name string) (total uint64) {
		for i := 0; i < n; i++ {
			total += c.NodeTelemetry(i).Snapshot().Counter(name)
		}
		return total
	}
	res := repairChaosResult{
		eventLog:       c.Net.EventLog(),
		tip:            c.Nodes()[0].Height(),
		killed:         fmt.Sprint(killed),
		repairBytes:    sumCounter("livenode.wire.repair_bytes"),
		consensusBytes: sumCounter("livenode.wire.consensus_bytes"),
		completed:      sumCounter("livenode.repair.completed"),
		reannounced:    sumCounter("livenode.repair.reannounced"),
	}
	c.Close()
	return res
}

// TestChaosRepairReplication is the self-healing flagship scenario: 24
// nodes, 30% of storing nodes killed in one churn event, every live item
// back at its replica floor and fetchable from every assigned survivor,
// repair traffic strictly below consensus traffic, and a bit-identical
// run when the same seed executes twice.
func TestChaosRepairReplication(t *testing.T) {
	first := runRepairScenario(t, *seedFlag)

	if first.reannounced == 0 {
		t.Fatal("no repair re-announcements were mined — recovery bypassed the repair plane")
	}
	if first.completed == 0 {
		t.Fatal("no repair fetches completed — replicas returned without the repair queue")
	}
	if first.repairBytes == 0 {
		t.Fatal("repair plane sent no bytes")
	}
	if first.repairBytes >= first.consensusBytes {
		t.Fatalf("repair wire-bytes %d not strictly below consensus wire-bytes %d",
			first.repairBytes, first.consensusBytes)
	}

	second := runRepairScenario(t, *seedFlag)
	if first.eventLog == "" {
		t.Fatal("scenario produced an empty event log")
	}
	if first.eventLog != second.eventLog {
		t.Fatalf("same seed produced different event logs: len(first)=%d len(second)=%d",
			len(first.eventLog), len(second.eventLog))
	}
	if first.killed != second.killed {
		t.Fatalf("same seed killed different nodes: %s vs %s", first.killed, second.killed)
	}
	if first.tip != second.tip {
		t.Fatalf("same seed converged to different heights: %d vs %d", first.tip, second.tip)
	}
}

package chaos

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// openLoopResult captures everything one open-loop run produced that a
// determinism comparison or a scaling measurement cares about. Two runs
// with identical options must produce identical results, field for field.
type openLoopResult struct {
	digest   uint64        // FNV fold of every network event (order, time, bytes)
	events   uint64        // total network events counted
	stats    WorkloadStats // what the driver published/requested/churned
	height   uint64        // converged chain height
	converge time.Duration // virtual time from last arrival to quiescent convergence
	wireB    uint64        // consensus + data + repair wire bytes, all nodes
	gini     float64       // inequality of blocks won across the roster
}

// newQuietCluster builds a cluster for a large-scale run: event recording
// is off (retaining a six-figure event log for 128-256 nodes costs real
// memory; the rolling digest is the determinism evidence instead) and
// only compact diagnostics are dumped on failure.
func newQuietCluster(tb testing.TB, opts Options) *Cluster {
	tb.Helper()
	if opts.Seed == 0 {
		opts.Seed = *seedFlag
	}
	c, err := NewCluster(opts)
	if err != nil {
		tb.Fatal(err)
	}
	c.Net.SetRecording(false)
	tb.Cleanup(func() {
		defer c.Close()
		if tb.Failed() {
			tb.Logf("net digest=%016x events=%d\nnet telemetry: %+v",
				c.Net.EventDigest(), c.Net.EventCount(), c.NetTelemetry().Snapshot().Counters)
		}
	})
	if err := c.ConnectAll(); err != nil {
		tb.Fatal(err)
	}
	return c
}

// driveOpenLoop warms the cluster to its first block, runs an open-loop
// workload to exhaustion, waits for convergence plus the replication
// floor, checks every invariant, and returns the run's fingerprint.
func driveOpenLoop(tb testing.TB, c *Cluster, wopts WorkloadOptions, floor int, settleMax time.Duration) openLoopResult {
	tb.Helper()
	warm := func() bool {
		for _, n := range c.Nodes() {
			if n.Height() < 1 {
				return false
			}
		}
		return true
	}
	if err := c.RunUntil(warm, 10*time.Minute); err != nil {
		tb.Fatal(err)
	}

	d, err := c.StartWorkload(wopts)
	if err != nil {
		tb.Fatal(err)
	}
	if err := c.RunUntil(d.Done, wopts.Stream.Duration+10*time.Minute); err != nil {
		tb.Fatal(err)
	}
	// Let the trailing requester fetches (scheduled RequestDelay after the
	// last arrivals) fire before measuring convergence.
	if wopts.RequestDelay > 0 {
		c.Run(wopts.RequestDelay)
	}
	tEnd := c.Clock.Now()

	healed := func() bool {
		if !c.Converged() {
			return false
		}
		return floor <= 0 || c.CheckReplication(floor) == nil
	}
	if err := c.RunUntil(healed, settleMax); err != nil {
		tb.Fatalf("%v; replication: %v", err, c.CheckReplication(floor))
	}
	res := openLoopResult{
		digest:   c.Net.EventDigest(),
		events:   c.Net.EventCount(),
		stats:    d.Stats(),
		converge: c.Clock.Now().Sub(tEnd),
	}
	if err := c.CheckInvariants(); err != nil {
		tb.Fatal(err)
	}
	res.height = c.Nodes()[0].Height()
	won := make([]int, c.opts.N)
	for i := range won {
		snap := c.NodeTelemetry(i).Snapshot()
		won[i] = int(snap.Counter("livenode.mining.blocks_won"))
		res.wireB += snap.Counter("livenode.wire.consensus_bytes") +
			snap.Counter("livenode.wire.data_bytes") +
			snap.Counter("livenode.wire.repair_bytes")
	}
	res.gini = metrics.GiniInts(won)
	return res
}

// TestChaosOpenLoopWorkload is the always-on gate for the workload
// driver: 32 nodes consume a diurnal open-loop stream with Zipf-skewed
// types, 100k multiplexed users, and per-item requester fetches, end to
// end under the virtual clock, landing converged with every data
// invariant intact.
func TestChaosOpenLoopWorkload(t *testing.T) {
	seed := *seedFlag
	c := newCluster(t, Options{N: 32, Seed: seed, StorageCapacity: 48})
	wopts := WorkloadOptions{
		Stream: workload.StreamConfig{
			Duration:         2 * time.Minute,
			RatePerMin:       12,
			DiurnalPeriod:    2 * time.Minute,
			DiurnalAmplitude: 0.5,
			NumNodes:         32,
			Requesters:       []int{2, 5, 11, 17, 23, 29},
			RequestsPerItem:  2,
			TypeZipfS:        1.2,
			Users:            100_000,
			UserZipfS:        1.3,
			SessionEpoch:     30 * time.Second,
			Seed:             seed*10_000 + 1,
		},
		RequestDelay: 15 * time.Second,
	}
	res := driveOpenLoop(t, c, wopts, alloc.DefaultMinReplicas, 10*time.Minute)

	if res.stats.Published < 10 {
		t.Fatalf("open-loop run published only %d items: %+v", res.stats.Published, res.stats)
	}
	if res.stats.PublishErrors != 0 || res.stats.SkippedDead != 0 {
		t.Fatalf("healthy cluster rejected arrivals: %+v", res.stats)
	}
	// No churn: every produced item fans out to exactly RequestsPerItem
	// requester fetches.
	if want := 2 * res.stats.Published; res.stats.Requests != want {
		t.Fatalf("%d requester fetches for %d items, want %d",
			res.stats.Requests, res.stats.Published, want)
	}
	if res.height < 2 {
		t.Fatalf("chain barely moved: height %d", res.height)
	}
}

// TestChaosFlashCrowd is the ISSUE's marquee scenario: 128 nodes, a
// diurnal rate whose peak is straddled by a 10× flash-crowd burst, a
// million logical users with mobility, and ~5% concurrent node churn
// (Poisson outages with restarts) with the self-healing repair plane on.
// The cluster must converge with the replication floor restored, and two
// full runs must be bit-identical (equal event digests and counts).
func TestChaosFlashCrowd(t *testing.T) {
	seed := *seedFlag
	opts := Options{
		N:               128,
		Seed:            seed,
		StorageCapacity: 64,
		RepairWorkers:   2,
		// Sampled probing (§15) spreads liveness evidence over ~roster /
		// (fanout·(digest+1)) ≈ 2 ticks, so the dead window must span
		// several ticks or alive nodes flap dead and repair re-announces
		// forever. 5s ticks with a 60s window give 12 ticks of slack.
		RepairProbeEvery:   5 * time.Second,
		RepairSuspectAfter: 30 * time.Second,
		RepairHysteresis:   30 * time.Second,
	}
	requesters := make([]int, 0, 13)
	for i := 3; i < 128; i += 10 {
		requesters = append(requesters, i)
	}
	wopts := WorkloadOptions{
		Stream: workload.StreamConfig{
			Duration:         3 * time.Minute,
			RatePerMin:       12,
			DiurnalPeriod:    4 * time.Minute, // peak at t=60s
			DiurnalAmplitude: 0.8,
			BurstEvery:       10 * time.Minute, // one window within the horizon...
			BurstOffset:      45 * time.Second, // ...straddling the diurnal peak
			BurstDuration:    30 * time.Second,
			BurstFactor:      10,
			NumNodes:         128,
			Requesters:       requesters,
			RequestsPerItem:  2,
			TypeZipfS:        1.1,
			Users:            1_000_000,
			UserZipfS:        1.2,
			SessionEpoch:     45 * time.Second,
			Seed:             seed*10_000 + 1,
		},
		RequestDelay: 15 * time.Second,
	}
	// ~8 outages/min × 45s mean downtime ≈ 6 nodes down at a time ≈ 5%.
	churn, err := workload.GenerateChurn(workload.ChurnConfig{
		Horizon:      3 * time.Minute,
		EventsPerMin: 8,
		MeanDown:     45 * time.Second,
		NumNodes:     128,
		Protect:      []int{0},
		Seed:         seed*10_000 + 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	wopts.Churn = churn

	run := func() openLoopResult {
		// Every node is durable. With in-memory stores an unlucky seed can
		// churn away every holder of some item's bytes at once, leaving the
		// replication floor unrecoverable (seed 7 does exactly that). Real
		// edge nodes restart with their disks; so do these.
		base := t.TempDir()
		o := opts
		o.DataDirs = make([]string, o.N)
		for i := range o.DataDirs {
			o.DataDirs[i] = filepath.Join(base, fmt.Sprintf("n%03d", i))
		}
		c := newQuietCluster(t, o)
		return driveOpenLoop(t, c, wopts, alloc.DefaultMinReplicas, 20*time.Minute)
	}
	r1 := run()

	if r1.stats.Published < 50 {
		t.Fatalf("flash crowd published only %d items: %+v", r1.stats.Published, r1.stats)
	}
	if r1.stats.ChurnDowns < 5 || r1.stats.ChurnRestarts < 1 {
		t.Fatalf("churn barely happened: %+v", r1.stats)
	}
	t.Logf("flash crowd: %+v; height=%d events=%d wire=%dB converge=%v gini=%.3f",
		r1.stats, r1.height, r1.events, r1.wireB, r1.converge, r1.gini)

	r2 := run()
	if r1 != r2 {
		t.Fatalf("double run diverged:\n run1: %+v\n run2: %+v", r1, r2)
	}
}

// TestChaosScale256OpenLoop scales the deterministic harness to 256
// nodes: a Poisson open-loop stream over two million logical users runs
// to exhaustion, the cluster converges with the replication floor intact,
// and a second full run is bit-identical.
func TestChaosScale256OpenLoop(t *testing.T) {
	seed := *seedFlag
	opts := Options{N: 256, Seed: seed, StorageCapacity: 64}
	requesters := make([]int, 0, 16)
	for i := 7; i < 256; i += 16 {
		requesters = append(requesters, i)
	}
	wopts := WorkloadOptions{
		Stream: workload.StreamConfig{
			Duration:        90 * time.Second,
			RatePerMin:      40,
			NumNodes:        256,
			Requesters:      requesters,
			RequestsPerItem: 2,
			TypeZipfS:       1.1,
			Users:           2_000_000,
			UserZipfS:       1.2,
			SessionEpoch:    45 * time.Second,
			Seed:            seed*10_000 + 3,
		},
		RequestDelay: 15 * time.Second,
	}
	run := func() openLoopResult {
		c := newQuietCluster(t, opts)
		return driveOpenLoop(t, c, wopts, alloc.DefaultMinReplicas, 15*time.Minute)
	}
	r1 := run()
	if r1.stats.Published < 30 {
		t.Fatalf("256-node run published only %d items: %+v", r1.stats.Published, r1.stats)
	}
	t.Logf("256 nodes: %+v; height=%d events=%d wire=%dB converge=%v gini=%.3f",
		r1.stats, r1.height, r1.events, r1.wireB, r1.converge, r1.gini)

	r2 := run()
	if r1 != r2 {
		t.Fatalf("double run diverged:\n run1: %+v\n run2: %+v", r1, r2)
	}
}

// BenchmarkScalingCurve regenerates the EXPERIMENTS.md scaling table:
// cluster size × arrival rate → wall-clock per run (ns/op), total wire
// bytes, virtual convergence time after the last arrival, and the Gini
// coefficient of blocks won (leader-election fairness at scale).
//
//	go test -bench BenchmarkScalingCurve -benchtime 1x ./internal/chaos
func BenchmarkScalingCurve(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512, 1000} {
		for _, rate := range []float64{30, 120} {
			b.Run(fmt.Sprintf("n=%d/rate=%.0f", n, rate), func(b *testing.B) {
				if n >= 1000 && testing.Short() {
					b.Skip("1000-node curve point skipped in -short")
				}
				for i := 0; i < b.N; i++ {
					res := measureScalePoint(b, n, rate)
					b.ReportMetric(float64(res.stats.Published), "items")
					b.ReportMetric(float64(res.wireB), "wireB")
					b.ReportMetric(res.converge.Seconds(), "vsec/converge")
					b.ReportMetric(res.gini, "gini/blocks")
				}
			})
		}
	}
}

func measureScalePoint(b *testing.B, n int, rate float64) openLoopResult {
	requesters := make([]int, 0, 16)
	for i := 1; i < n; i += n / 8 {
		requesters = append(requesters, i)
	}
	wopts := WorkloadOptions{
		Stream: workload.StreamConfig{
			Duration:        time.Minute,
			RatePerMin:      rate,
			NumNodes:        n,
			Requesters:      requesters,
			RequestsPerItem: 2,
			TypeZipfS:       1.1,
			Users:           1_000_000,
			UserZipfS:       1.2,
			SessionEpoch:    45 * time.Second,
			Seed:            9001,
		},
		RequestDelay: 15 * time.Second,
	}
	c := newQuietCluster(b, Options{N: n, Seed: 1, StorageCapacity: 96})
	return driveOpenLoop(b, c, wopts, alloc.DefaultMinReplicas, 15*time.Minute)
}

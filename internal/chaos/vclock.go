// Package chaos is the deterministic fault-injection test harness for the
// live edge-blockchain node. It drives N livenode instances over the
// in-memory fault-injecting transport (internal/p2p/memnet) and a shared
// virtual clock, so scripted and randomized schedules — partition/heal
// cycles, node crash + WAL restart, concurrent miners forcing forks,
// lossy/reordering links — run single-threaded, wall-clock-free, and
// exactly reproducibly: the same seed yields the same faultnet event log.
// After each schedule the harness checks the safety and convergence
// invariants of the paper's deployment (Section V): single-chain
// convergence, end-to-end PoS claim validity, common-prefix stability
// across heals, and chain-derived Q_i/storage accounting.
package chaos

import (
	"container/heap"
	"sync"
	"time"

	"repro/internal/livenode"
)

// VClock is a virtual clock implementing livenode.Clock. Time only moves
// when the harness advances it; timers fire inline on the advancing
// goroutine in (due time, creation order) sequence, which is what makes
// whole-cluster schedules deterministic.
//
// Timers live in a (due, seq) min-heap with lazy deletion: Stop marks a
// timer done and it is discarded when it surfaces at the top. Every
// operation is O(log timers), where the old linear scan-and-compact made
// each delivery O(timers) — at 256 nodes the heartbeat and mining timers
// alone put thousands of timers in flight.
type VClock struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers timerHeap
}

type vtimer struct {
	clock *VClock
	at    time.Time
	seq   uint64
	fn    func()
	done  bool // fired or stopped
}

// timerHeap orders pending timers by (due time, creation order); seq is
// unique so the order is total and firing is deterministic.
type timerHeap []*vtimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(*vtimer)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// NewVClock creates a virtual clock starting at the given instant
// (typically the cluster's shared epoch).
func NewVClock(start time.Time) *VClock {
	return &VClock{now: start}
}

// Now implements livenode.Clock.
func (c *VClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc implements livenode.Clock: fn runs when the clock is advanced
// to (or past) now+d, never synchronously inside this call.
func (c *VClock) AfterFunc(d time.Duration, fn func()) livenode.Timer {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	t := &vtimer{clock: c, at: c.now.Add(d), seq: c.seq, fn: fn}
	heap.Push(&c.timers, t)
	return t
}

// Stop implements livenode.Timer.
func (t *vtimer) Stop() bool {
	c := t.clock
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.done {
		return false
	}
	t.done = true
	return true
}

// Sleep implements livenode.Clock by advancing the clock itself — the
// caller is the scheduling goroutine, so any timers falling due in the
// window fire inline before Sleep returns.
func (c *VClock) Sleep(d time.Duration) {
	if d > 0 {
		c.AdvanceTo(c.Now().Add(d))
	}
}

// NextTimer returns the due time of the earliest pending timer.
func (c *VClock) NextTimer() (time.Time, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.earliestLocked()
	if t == nil {
		return time.Time{}, false
	}
	return t.at, true
}

// earliestLocked returns the earliest pending timer without removing it,
// discarding stopped timers that have surfaced at the top of the heap.
func (c *VClock) earliestLocked() *vtimer {
	for len(c.timers) > 0 {
		t := c.timers[0]
		if !t.done {
			return t
		}
		heap.Pop(&c.timers)
	}
	return nil
}

// AdvanceTo moves the clock forward to target, firing every timer due on
// the way in (due time, creation order) sequence. Callbacks run with the
// clock set to their due time and may schedule further timers, which also
// fire if they fall inside the window. Moving backwards is a no-op.
func (c *VClock) AdvanceTo(target time.Time) {
	for {
		c.mu.Lock()
		t := c.earliestLocked()
		if t == nil || t.at.After(target) {
			if target.After(c.now) {
				c.now = target
			}
			c.mu.Unlock()
			return
		}
		heap.Pop(&c.timers)
		t.done = true
		if t.at.After(c.now) {
			c.now = t.at
		}
		fn := t.fn
		c.mu.Unlock()
		fn() // outside the lock: callbacks take node locks and re-enter the clock
	}
}

// setNow moves the clock forward without firing timers. The harness uses
// it when delivering a network message due at an instant no timer precedes
// — the scheduler has already established that invariant.
func (c *VClock) setNow(target time.Time) {
	c.mu.Lock()
	if target.After(c.now) {
		c.now = target
	}
	c.mu.Unlock()
}

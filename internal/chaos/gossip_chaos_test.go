package chaos

import (
	"testing"
	"time"

	"repro/internal/p2p/memnet"
)

// measureBlockPropagation mines a 128-node cluster to a fixed height with
// the given gossip fanout (-1 = legacy full-mesh push) and returns each
// node's peak and summed livenode.wire.block_bytes — every FrameBlock,
// FrameBlockAnnounce and FrameGetBlock byte counted at its sender — plus
// the converged height for normalization.
func measureBlockPropagation(t *testing.T, fanout int) (peak, total, height uint64) {
	t.Helper()
	const n, targetHeight = 128, 8
	c := newQuietCluster(t, Options{N: n, Seed: *seedFlag, GossipFanout: fanout})
	reached := func() bool {
		for _, node := range c.Nodes() {
			if node.Height() < targetHeight {
				return false
			}
		}
		return true
	}
	if err := c.RunUntil(reached, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
	for i := 0; i < n; i++ {
		v := c.NodeTelemetry(i).Snapshot().Counter("livenode.wire.block_bytes")
		total += v
		if v > peak {
			peak = v
		}
	}
	return peak, total, c.Nodes()[0].Height()
}

// TestGossipBeatsFullMeshFiveFold is the ISSUE's wire-bytes acceptance
// gate (the block-propagation sibling of TestSyncCatchupBeatsLegacyFiveFold):
// at 128 nodes, inv-style gossip must cut the PEAK per-node
// block-propagation egress at least 5x versus the legacy full-mesh push.
// Peak — not total — is the honest metric: every node still receives each
// body exactly once, so cluster-total bytes cannot shrink much; what
// gossip removes is the miner's O(n) body fan-out, replacing it with
// O(fanout) 40-byte announces plus at most fanout served bodies.
func TestGossipBeatsFullMeshFiveFold(t *testing.T) {
	gPeak, gTotal, gHeight := measureBlockPropagation(t, 0)
	lPeak, lTotal, lHeight := measureBlockPropagation(t, -1)
	if gHeight == 0 || lHeight == 0 {
		t.Fatalf("cluster mined nothing: gossip height %d, legacy height %d", gHeight, lHeight)
	}

	// Normalize per adopted block: the two runs consume the fault RNG
	// differently, so their converged heights can differ by a block.
	gRate := float64(gPeak) / float64(gHeight)
	lRate := float64(lPeak) / float64(lHeight)
	t.Logf("peak per-node block-propagation egress per block: gossip %.0f B (height %d), legacy %.0f B (height %d) — %.1fx; totals: gossip %d B, legacy %d B (%.2fx)",
		gRate, gHeight, lRate, lHeight, lRate/gRate, gTotal, lTotal, float64(lTotal)/float64(gTotal))
	if gRate*5 > lRate {
		t.Errorf("gossip peak egress %.0f B/block, legacy %.0f B/block — want >= 5x reduction", gRate, lRate)
	}
}

// gossipChaosResult fingerprints one 256-node gossip run for the
// double-run determinism comparison.
type gossipChaosResult struct {
	digest        uint64
	events        uint64
	height        uint64
	relays        uint64
	fetchesServed uint64
	dupSuppressed uint64
}

// runGossipConvergenceScenario drives the tentpole's flagship scenario:
// 256 nodes on lossy, laggy links relay blocks purely by announce/fetch
// gossip, suffer a half/half partition, heal, and must converge — with the
// fetch-timeout locator fallback patching whatever the drops eat.
func runGossipConvergenceScenario(t *testing.T, seed int64) gossipChaosResult {
	t.Helper()
	const n = 256
	c := newQuietCluster(t, Options{
		N:      n,
		Seed:   seed,
		Faults: memnet.Params{Drop: 0.05, DelayMax: 50 * time.Millisecond},
	})
	c.Run(45 * time.Second)

	left, right := make([]int, 0, n/2), make([]int, 0, n/2)
	for i := 0; i < n; i++ {
		if i < n/2 {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	c.Partition(left, right)
	c.Run(30 * time.Second)
	c.Heal()
	c.Net.SetDefaults(memnet.Params{})
	if err := c.Settle(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)

	res := gossipChaosResult{
		digest: c.Net.EventDigest(),
		events: c.Net.EventCount(),
		height: c.Nodes()[0].Height(),
	}
	for i := 0; i < n; i++ {
		snap := c.NodeTelemetry(i).Snapshot()
		res.relays += snap.Counter("livenode.gossip.relays")
		res.fetchesServed += snap.Counter("livenode.gossip.fetches_served")
		res.dupSuppressed += snap.Counter("livenode.gossip.dup_suppressed")
	}
	c.Close()
	return res
}

// TestChaosGossipConvergence256 is the tentpole's scale scenario: 256
// nodes converge through inv-style gossip under drops, delays and a
// partition, the gossip counters prove the announce/fetch path (not the
// legacy push) carried the blocks, and a second run with the same seed is
// bit-identical.
func TestChaosGossipConvergence256(t *testing.T) {
	first := runGossipConvergenceScenario(t, *seedFlag)

	if first.height < 4 {
		t.Fatalf("256-node gossip cluster barely mined: height %d", first.height)
	}
	if first.relays == 0 {
		t.Fatal("gossip.relays = 0 — blocks did not travel by announce relay")
	}
	if first.fetchesServed == 0 {
		t.Fatal("gossip.fetches_served = 0 — no peer fetched an announced body")
	}
	if first.dupSuppressed == 0 {
		t.Fatal("gossip.dup_suppressed = 0 — epidemic relay never crossed paths, implausible at 256 nodes")
	}

	second := runGossipConvergenceScenario(t, *seedFlag)
	if first != second {
		t.Fatalf("same seed produced different runs:\n run1: %+v\n run2: %+v", first, second)
	}
}

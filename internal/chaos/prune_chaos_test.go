package chaos

import (
	"testing"
	"time"
)

// runPrunedPartitionHeal drives one full mixed-replica scenario and
// returns the faultnet event log. Nodes 0 and 1 run the finite-lifetime
// chain (PruneDepth 16, so engine checkpoints finalize every 16 blocks and
// bodies below the snapshot-covered horizon are discarded); nodes 2 and 3
// are archival. The cluster mines long enough for pruning to actually run,
// splits with one pruned and one archival node on each side, diverges,
// heals, and must converge header-for-header with all invariants intact.
func runPrunedPartitionHeal(t *testing.T, seed int64) string {
	t.Helper()
	c := newCluster(t, Options{
		N:             4,
		Seed:          seed,
		PruneDepth:    16,
		SnapshotEvery: 16,
		PruneNodes:    []int{0, 1},
	})

	// Mine well past depth + checkpoint + snapshot lag so both pruned
	// nodes have discarded bodies before the fault hits.
	c.Run(250 * time.Second)
	for _, i := range []int{0, 1} {
		if c.Node(i).BodyBase() == 0 {
			t.Fatalf("node %d never pruned (height %d)\n%s", i, c.Node(i).Height(), c.TelemetrySummary())
		}
		if runs := c.NodeTelemetry(i).Snapshot().Counter("livenode.prune.runs"); runs == 0 {
			t.Fatalf("node %d livenode.prune.runs = 0 despite PruneDepth", i)
		}
	}
	for _, i := range []int{2, 3} {
		if base := c.Node(i).BodyBase(); base != 0 {
			t.Fatalf("archival node %d pruned to base %d", i, base)
		}
	}

	// Checkpoint finality means a fork reaching at or below the last
	// checkpoint is never adopted; partition just after a checkpoint
	// boundary so both divergent suffixes stay inside the open window.
	if err := c.RunUntil(func() bool {
		return c.ConvergedHeaders() && c.Node(0).Height()%16 <= 4
	}, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	forkBase := c.Node(0).Height()

	// One pruned + one archival node per side: fork resolution must work
	// between every replica-shape pairing after the heal.
	c.Partition([]int{0, 2}, []int{1, 3})
	if err := c.RunUntil(func() bool {
		return c.Node(0).Height() >= forkBase+3 && c.Node(1).Height() >= forkBase+3
	}, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if c.Node(0).Tip().Hash == c.Node(1).Tip().Hash {
		t.Fatal("partitioned sides did not diverge — scenario exercised nothing")
	}
	prefix := CommonPrefix(c.Nodes()[2:]) // archival nodes hold full snapshots

	c.Heal()
	if err := c.RunUntil(c.ConvergedHeaders, 10*time.Minute); err != nil {
		t.Fatalf("mixed cluster never reconverged: %v\n%s", err, c.TelemetrySummary())
	}

	// The archival replicas expose a full chain: validate it end-to-end
	// and check no finalized prefix block was rolled back.
	full := c.Nodes()[2:]
	if err := CheckChainValidity(full[0].ChainSnapshot(), c.Accounts(), c.Params()); err != nil {
		t.Fatal(err)
	}
	for i, n := range full {
		if err := CheckPrefixPreserved(prefix, n); err != nil {
			t.Fatalf("archival node %d: %v", i+2, err)
		}
	}
	// Derived ledger state must agree across replica shapes: a pruned
	// replica that adopted the winning suffix through a retained ledger
	// snapshot lands on exactly the state an archival full replay gives.
	s0, q0 := c.Node(0).LedgerStats()
	for i := 1; i < 4; i++ {
		s, q := c.Node(i).LedgerStats()
		for k := range s0 {
			if s[k] != s0[k] || q[k] != q0[k] {
				t.Fatalf("node %d ledger (S_%d=%d Q_%d=%d) disagrees with node 0 (S=%d Q=%d)",
					i, k, s[k], k, q[k], s0[k], q0[k])
			}
		}
	}
	now := c.Clock.Now().Sub(c.Epoch)
	for i, n := range full {
		if err := CheckLedgerAccounting(n, c.Accounts(), now); err != nil {
			t.Fatalf("archival node %d: %v", i+2, err)
		}
	}
	// The pruned nodes stayed pruned through the fork: the body window
	// never regrew to the full chain.
	for _, i := range []int{0, 1} {
		if c.Node(i).BodyBase() == 0 {
			t.Fatalf("node %d lost its prune horizon resolving the fork", i)
		}
	}
	return c.Net.EventLog()
}

// TestChaosPrunedPartitionHeal runs the mixed pruned/archival
// partition-heal scenario twice with the same seed and requires
// bit-identical faultnet event logs: pruning and snapshot-anchored fork
// resolution must not introduce any nondeterminism into the protocol.
func TestChaosPrunedPartitionHeal(t *testing.T) {
	first := runPrunedPartitionHeal(t, *seedFlag)
	second := runPrunedPartitionHeal(t, *seedFlag)
	if first == "" {
		t.Fatal("scenario produced an empty event log")
	}
	if first != second {
		t.Fatalf("same seed produced different event logs:\nlen(first)=%d len(second)=%d", len(first), len(second))
	}
}

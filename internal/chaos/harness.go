package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/identity"
	"repro/internal/livenode"
	"repro/internal/p2p"
	"repro/internal/p2p/memnet"
	"repro/internal/pos"
	"repro/internal/repair"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Options configure a chaos cluster.
type Options struct {
	// N is the roster size (required, > 0).
	N int
	// Seed drives everything random in the run: roster key pairs and the
	// fault network's RNG. Same options + same schedule ⇒ same event log.
	Seed int64
	// T0 is the expected block interval (default 5s — virtual seconds are
	// free).
	T0 time.Duration
	// Faults are the initial default link fault parameters (zero value =
	// perfect instant network).
	Faults memnet.Params
	// DataDirs, when non-nil, gives per-node store directories; "" keeps
	// that node in-memory. Nodes with a directory survive Crash/Restart
	// with their WAL.
	DataDirs []string
	// StorageCapacity is the per-node storage in items (0 = livenode
	// default).
	StorageCapacity int
	// CheckpointEvery is the store checkpoint cadence in blocks (0 =
	// livenode default).
	CheckpointEvery int
	// SyncBatchSize caps how many blocks one incremental-sync batch
	// carries (0 = livenode default). Small values force multi-round
	// batched catch-up in scenarios.
	SyncBatchSize int
	// SnapshotEvery is the engine ledger-snapshot cadence in blocks (0 =
	// livenode default). Forks no deeper than this resolve without a
	// scratch replay.
	SnapshotEvery int
	// Identities, when non-nil, overrides the seeded roster generation
	// (len must equal N). The differential engine test uses it to run the
	// exact same key pairs through the sim and the live stack.
	Identities []*identity.Identity
	// GenesisSeed overrides the fixed default genesis seed (0 = default).
	GenesisSeed int64
	// RepairWorkers enables the self-healing data plane on every node with
	// that many concurrent fetches (0 = repair disabled, the default).
	RepairWorkers int
	// RepairRate caps repair traffic in bytes per virtual second (0 =
	// livenode default).
	RepairRate int
	// RepairProbeEvery is the liveness-probe and repair-pump cadence (0 =
	// livenode default).
	RepairProbeEvery time.Duration
	// RepairSuspectAfter is the silence before a peer turns suspect, and
	// RepairHysteresis the additional silence before suspect turns dead (0
	// = livenode defaults).
	RepairSuspectAfter time.Duration
	RepairHysteresis   time.Duration
	// GossipFanout is passed through to livenode.Config.GossipFanout:
	// 0 = gossip with the default fanout, >0 = that fanout, negative =
	// legacy full-mesh block push (DESIGN.md §13).
	GossipFanout int
	// MetaFanout is passed through to livenode.Config.MetaFanout:
	// 0 = metadata gossip follows GossipFanout, >0 = that fanout, negative
	// = legacy full-mesh metadata push (DESIGN.md §15).
	MetaFanout int
	// ProbeFanout is passed through to livenode.Config.ProbeFanout:
	// 0 = sampled liveness probes with the default fanout, >0 = that
	// fanout, negative = legacy per-tick heartbeat broadcast (DESIGN.md
	// §15). Only meaningful when RepairWorkers > 0.
	ProbeFanout int
	// PruneDepth, when positive, runs the finite-lifetime chain on the
	// nodes selected by PruneNodes: bodies below the snapshot-covered
	// checkpoint horizon are discarded and only the header spine kept
	// (livenode.Config.PruneDepth).
	PruneDepth int
	// PruneNodes lists the roster indices that prune (nil = every node
	// when PruneDepth > 0). A mix of pruned and archival nodes in one
	// cluster is the interesting case: forks, sync and restarts must work
	// across both replica shapes.
	PruneNodes []int
}

// prunes reports whether node i runs with a prune horizon.
func (o Options) prunes(i int) bool {
	if o.PruneDepth <= 0 {
		return false
	}
	if o.PruneNodes == nil {
		return true
	}
	for _, p := range o.PruneNodes {
		if p == i {
			return true
		}
	}
	return false
}

// Cluster is N live nodes on one fault-injecting in-memory network and one
// shared virtual clock. All methods must be called from a single
// goroutine (the test).
type Cluster struct {
	opts     Options
	params   pos.Params
	Epoch    time.Time
	Clock    *VClock
	Net      *memnet.Network
	idents   []*identity.Identity
	accounts []identity.Address
	nodes    []*livenode.Node // nil while crashed

	// rng drives fault-side random choices (like picking churn victims),
	// separately from the network's RNG so adding a kill does not perturb
	// message-level fault decisions that came before it.
	rng *rand.Rand

	// Telemetry registries persist across Crash/Restart so counters
	// accumulate over a node's whole lifetime, not one incarnation.
	netReg   *telemetry.Registry
	nodeRegs []*telemetry.Registry
}

// GenesisSeed is the default genesis seed chaos clusters share
// (Options.GenesisSeed overrides it).
const GenesisSeed = 42

// Addr returns node i's symbolic transport address.
func Addr(i int) string { return fmt.Sprintf("node%02d", i) }

// NewCluster builds and starts the cluster; nodes are live but not yet
// connected (call ConnectAll or Connect).
func NewCluster(opts Options) (*Cluster, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("chaos: cluster needs N > 0")
	}
	if opts.T0 <= 0 {
		opts.T0 = 5 * time.Second
	}
	if opts.DataDirs != nil && len(opts.DataDirs) != opts.N {
		return nil, fmt.Errorf("chaos: %d data dirs for %d nodes", len(opts.DataDirs), opts.N)
	}
	if opts.Identities != nil && len(opts.Identities) != opts.N {
		return nil, fmt.Errorf("chaos: %d identities for %d nodes", len(opts.Identities), opts.N)
	}
	if opts.GenesisSeed == 0 {
		opts.GenesisSeed = GenesisSeed
	}
	epoch := time.Unix(1700000000, 0) // fixed: virtual time is relative anyway
	c := &Cluster{
		opts:   opts,
		params: pos.Params{M: pos.DefaultM, T0: opts.T0},
		Epoch:  epoch,
		Clock:  NewVClock(epoch),
	}
	c.rng = rand.New(rand.NewSource(opts.Seed*31 + 7))
	c.Net = memnet.New(opts.Seed, c.Clock.Now)
	c.Net.SetDefaults(opts.Faults)
	c.netReg = telemetry.NewRegistry()
	c.Net.SetMetrics(memnet.NewMetrics(c.netReg))
	c.nodeRegs = make([]*telemetry.Registry, opts.N)
	for i := range c.nodeRegs {
		c.nodeRegs[i] = telemetry.NewRegistry()
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	c.idents = make([]*identity.Identity, opts.N)
	c.accounts = make([]identity.Address, opts.N)
	for i := range c.idents {
		if opts.Identities != nil {
			c.idents[i] = opts.Identities[i]
		} else {
			c.idents[i] = identity.GenerateSeeded(rng)
		}
		c.accounts[i] = c.idents[i].Address()
	}
	c.nodes = make([]*livenode.Node, opts.N)
	for i := range c.nodes {
		if err := c.startNode(i); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

func (c *Cluster) startNode(i int) error {
	var st core.Store
	if c.opts.DataDirs != nil && c.opts.DataDirs[i] != "" {
		s, err := store.Open(c.opts.DataDirs[i], store.Options{
			Sync:    store.SyncAlways,
			Metrics: store.NewMetrics(c.nodeRegs[i]),
		})
		if err != nil {
			return fmt.Errorf("chaos: open store %d: %w", i, err)
		}
		st = s
	}
	pruneDepth := 0
	if c.opts.prunes(i) {
		pruneDepth = c.opts.PruneDepth
	}
	node, err := livenode.New(livenode.Config{
		Identity:        c.idents[i],
		Accounts:        c.accounts,
		PoS:             c.params,
		GenesisSeed:     c.opts.GenesisSeed,
		Epoch:           c.Epoch,
		Clock:           c.Clock,
		NewTransport:    func(h p2p.Handler) (p2p.Transport, error) { return c.Net.Listen(Addr(i), h) },
		Store:           st,
		StorageCapacity: c.opts.StorageCapacity,
		CheckpointEvery: c.opts.CheckpointEvery,
		SyncBatchSize:   c.opts.SyncBatchSize,
		SnapshotEvery:   c.opts.SnapshotEvery,
		GossipFanout:    c.opts.GossipFanout,
		MetaFanout:      c.opts.MetaFanout,
		Telemetry:       c.nodeRegs[i],
		PruneDepth:      pruneDepth,

		RepairWorkers:      c.opts.RepairWorkers,
		RepairRate:         c.opts.RepairRate,
		RepairProbeEvery:   c.opts.RepairProbeEvery,
		RepairSuspectAfter: c.opts.RepairSuspectAfter,
		RepairHysteresis:   c.opts.RepairHysteresis,
		ProbeFanout:        c.opts.ProbeFanout,
	})
	if err != nil {
		return fmt.Errorf("chaos: start node %d: %w", i, err)
	}
	c.nodes[i] = node
	return nil
}

// Node returns node i (nil while crashed).
func (c *Cluster) Node(i int) *livenode.Node { return c.nodes[i] }

// NodeTelemetry returns node i's telemetry registry. The registry outlives
// crashes: counters keep accumulating across Restart.
func (c *Cluster) NodeTelemetry(i int) *telemetry.Registry { return c.nodeRegs[i] }

// NetTelemetry returns the fault network's telemetry registry.
func (c *Cluster) NetTelemetry() *telemetry.Registry { return c.netReg }

// TelemetrySummary renders the network counters and each node's counters
// and gauges as one human-readable block — attached to invariant failures
// so a broken run carries its own postmortem numbers.
func (c *Cluster) TelemetrySummary() string {
	var b strings.Builder
	writeCounters := func(label string, snap telemetry.Snapshot) {
		names := make([]string, 0, len(snap.Counters))
		for name := range snap.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "%s:", label)
		for _, name := range names {
			fmt.Fprintf(&b, " %s=%d", name, snap.Counters[name])
		}
		b.WriteByte('\n')
	}
	writeCounters("net", c.netReg.Snapshot())
	for i, reg := range c.nodeRegs {
		writeCounters(fmt.Sprintf("node%02d", i), reg.Snapshot())
	}
	return b.String()
}

// Nodes returns the live nodes.
func (c *Cluster) Nodes() []*livenode.Node {
	out := make([]*livenode.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n != nil {
			out = append(out, n)
		}
	}
	return out
}

// Accounts returns the fixed roster.
func (c *Cluster) Accounts() []identity.Address { return c.accounts }

// Params returns the cluster's PoS parameters.
func (c *Cluster) Params() pos.Params { return c.params }

// ConnectAll links every live node pair and lets them exchange chains.
// Each node dials all its higher-indexed peers in one batched Connect
// call (memnet links are symmetric), so the whole mesh costs one
// post-handshake sync broadcast per node instead of one per pair — the
// per-pair version made wiring up a 256-node cluster an O(n³) locator
// storm before the first block was ever mined.
func (c *Cluster) ConnectAll() error {
	addrs := make([]string, 0, len(c.nodes))
	for i, a := range c.nodes {
		if a == nil {
			continue
		}
		addrs = addrs[:0]
		for j := i + 1; j < len(c.nodes); j++ {
			if c.nodes[j] != nil {
				addrs = append(addrs, Addr(j))
			}
		}
		if len(addrs) == 0 {
			continue
		}
		if err := a.Connect(addrs...); err != nil {
			return err
		}
	}
	return nil
}

// Crash kills node i mid-flight: mining stops, the transport detaches and
// the store is released without a checkpoint (WAL recovery on restart).
func (c *Cluster) Crash(i int) error {
	n := c.nodes[i]
	if n == nil {
		return fmt.Errorf("chaos: node %d already down", i)
	}
	c.nodes[i] = nil
	return n.Kill()
}

// KillStoringNodes crashes roughly frac of the live nodes currently
// assigned at least one unexpired item, with each candidate's chance of
// being picked weighted by how many items it stores — churn hits the data
// plane where it hurts most. Stored-item counts come from a provider index
// rebuilt off the first live node's chain at the current virtual time, the
// same chain-only derivation the repair subsystem itself uses. Nodes
// listed in protect are never killed (keep producers up so content stays
// re-fetchable). Victim choice draws on the cluster's fault RNG, so a
// fixed seed always kills the same nodes. Returns the killed roster
// indices, ascending.
func (c *Cluster) KillStoringNodes(frac float64, protect ...int) ([]int, error) {
	var ref *livenode.Node
	for _, n := range c.nodes {
		if n != nil {
			ref = n
			break
		}
	}
	if ref == nil {
		return nil, fmt.Errorf("chaos: no live node to derive storing sets from")
	}
	idx := repair.NewIndex(c.opts.N)
	idx.Rebuild(ref.ChainSnapshot())
	idx.ExpireUntil(c.Clock.Now().Sub(c.Epoch))

	shielded := make(map[int]bool, len(protect))
	for _, p := range protect {
		shielded[p] = true
	}
	type candidate struct{ node, weight int }
	var cands []candidate
	for i := 0; i < c.opts.N; i++ {
		if c.nodes[i] == nil || shielded[i] {
			continue
		}
		if w := len(idx.Items(i)); w > 0 {
			cands = append(cands, candidate{node: i, weight: w})
		}
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("chaos: no live unprotected node stores anything")
	}
	kills := int(frac*float64(len(cands)) + 0.5)
	if kills < 1 {
		kills = 1
	}
	if kills > len(cands) {
		kills = len(cands)
	}

	var killed []int
	for k := 0; k < kills; k++ {
		total := 0
		for _, cd := range cands {
			total += cd.weight
		}
		r := c.rng.Intn(total)
		pick := 0
		for r >= cands[pick].weight {
			r -= cands[pick].weight
			pick++
		}
		victim := cands[pick].node
		cands = append(cands[:pick], cands[pick+1:]...)
		if err := c.Crash(victim); err != nil {
			return killed, err
		}
		killed = append(killed, victim)
	}
	sort.Ints(killed)
	return killed, nil
}

// Restart brings a crashed node back (reopening its store if it has one)
// and reconnects it to every live peer.
func (c *Cluster) Restart(i int) error {
	if c.nodes[i] != nil {
		return fmt.Errorf("chaos: node %d still up", i)
	}
	if err := c.startNode(i); err != nil {
		return err
	}
	addrs := make([]string, 0, len(c.nodes))
	for j, n := range c.nodes {
		if j != i && n != nil {
			addrs = append(addrs, Addr(j))
		}
	}
	return c.nodes[i].Connect(addrs...)
}

// Partition splits the cluster into node-index groups (see
// memnet.Network.Partition); in-flight messages across the cut are lost.
func (c *Cluster) Partition(groups ...[]int) {
	addrGroups := make([][]string, len(groups))
	for gi, g := range groups {
		addrGroups[gi] = make([]string, len(g))
		for i, n := range g {
			addrGroups[gi][i] = Addr(n)
		}
	}
	c.Net.Partition(addrGroups...)
}

// Heal removes every network cut.
func (c *Cluster) Heal() { c.Net.Heal() }

// Close shuts all live nodes down.
func (c *Cluster) Close() {
	for i, n := range c.nodes {
		if n != nil {
			_ = n.Close()
			c.nodes[i] = nil
		}
	}
}

// step executes the single earliest scheduled happening — a due network
// message or a due timer, messages first on ties — and reports false when
// nothing is due at or before horizon.
func (c *Cluster) step(horizon time.Time) bool {
	msgAt, msgOK := c.Net.NextDue()
	timerAt, timerOK := c.Clock.NextTimer()
	switch {
	case !msgOK && !timerOK:
		return false
	case msgOK && (!timerOK || !msgAt.After(timerAt)):
		if msgAt.After(horizon) {
			return false
		}
		// No timer precedes msgAt, so jumping without firing is safe.
		c.Clock.setNow(msgAt)
		c.Net.DeliverNext()
	default:
		if timerAt.After(horizon) {
			return false
		}
		c.Clock.AdvanceTo(timerAt)
	}
	return true
}

// Run advances the cluster by d of virtual time, interleaving message
// deliveries and timer fires in due order.
func (c *Cluster) Run(d time.Duration) {
	horizon := c.Clock.Now().Add(d)
	for c.step(horizon) {
	}
	c.Clock.AdvanceTo(horizon)
}

// RunUntil advances the cluster until cond holds at a network-idle point
// (no in-flight messages), or fails after max of virtual time. Mining
// timers keep the world moving, so the bound is on virtual time, not
// steps.
func (c *Cluster) RunUntil(cond func() bool, max time.Duration) error {
	horizon := c.Clock.Now().Add(max)
	if c.Net.Pending() == 0 && cond() {
		return nil
	}
	for c.step(horizon) {
		if c.Net.Pending() == 0 && cond() {
			return nil
		}
	}
	if cond() {
		return nil
	}
	return fmt.Errorf("chaos: condition not reached within %v of virtual time (now %v since epoch)",
		max, c.Clock.Now().Sub(c.Epoch))
}

// Converged reports whether every live node has the identical chain.
func (c *Cluster) Converged() bool {
	return CheckConvergence(c.Nodes()) == nil
}

// ConvergedHeaders reports whether every live node agrees on height and
// every header hash — convergence for clusters containing pruned replicas,
// whose body windows legitimately differ.
func (c *Cluster) ConvergedHeaders() bool {
	return CheckHeaderConvergence(c.Nodes()) == nil
}

// Settle waits (in virtual time) for full convergence of all live nodes.
func (c *Cluster) Settle(max time.Duration) error {
	if err := c.RunUntil(c.Converged, max); err != nil {
		return fmt.Errorf("%w; convergence: %v", err, CheckConvergence(c.Nodes()))
	}
	return nil
}

// CheckInvariants runs every post-quiescence invariant against the
// cluster: single-chain convergence, full structural + PoS validity of the
// adopted chain, and per-node ledger/storage accounting consistency.
func (c *Cluster) CheckInvariants() error {
	nodes := c.Nodes()
	if err := CheckConvergence(nodes); err != nil {
		return err
	}
	if len(nodes) == 0 {
		return nil
	}
	if err := CheckChainValidity(nodes[0].ChainSnapshot(), c.accounts, c.params); err != nil {
		return err
	}
	for i, n := range nodes {
		now := c.Clock.Now().Sub(c.Epoch)
		if err := CheckLedgerAccounting(n, c.accounts, now); err != nil {
			return fmt.Errorf("live node %d: %w", i, err)
		}
	}
	return nil
}

package chaos

import (
	"testing"
	"time"
)

// syncChaosResult captures everything the batched-sync scenario asserts on,
// so the same run can be replayed for the determinism check.
type syncChaosResult struct {
	eventLog        string
	tip             uint64
	fullReplayDelta uint64
	syncRounds      uint64
	syncBatches     uint64
	recoveredBlocks uint64
}

// runBatchedSyncScenario drives the satellite scenario: a 24-node seeded
// cluster warms its ledger snapshots, then suffers a half/half partition
// while its one persistent node is down, heals, and restarts that node from
// its now-stale WAL. Everyone must reconverge through incremental batched
// sync alone — no scratch replays once snapshots are warm.
func runBatchedSyncScenario(t *testing.T, seed int64, dataDir string) syncChaosResult {
	t.Helper()
	const (
		n             = 24
		snapshotEvery = 12
		warmHeight    = 2 * snapshotEvery // two retained snapshots ⇒ any fork ≤ snapshotEvery deep is covered
	)
	dirs := make([]string, n)
	dirs[0] = dataDir
	c := newCluster(t, Options{
		N:               n,
		Seed:            seed,
		DataDirs:        dirs,
		CheckpointEvery: 4,
		SyncBatchSize:   4, // force multi-batch catch-up for ~6-block gaps
		SnapshotEvery:   snapshotEvery,
	})

	// Warm up until two snapshot generations exist everywhere. RunUntil is
	// deterministic for a fixed seed, so the double-run comparison still
	// holds.
	warm := func() bool {
		for _, node := range c.Nodes() {
			if node.Height() < warmHeight {
				return false
			}
		}
		return true
	}
	if err := c.RunUntil(warm, 15*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(5 * time.Minute); err != nil {
		t.Fatal(err)
	}

	// Snapshots are warm on every node: from here on, no sync may fall back
	// to a scratch replay.
	sumCounter := func(name string) (total uint64) {
		for i := 0; i < n; i++ {
			total += c.NodeTelemetry(i).Snapshot().Counter(name)
		}
		return total
	}
	replaysBefore := sumCounter("livenode.sync.full_replays")
	roundsBefore := sumCounter("livenode.sync.rounds")
	batchesBefore := sumCounter("livenode.sync.batches")

	// The persistent node goes down hard (no checkpoint), then the rest of
	// the cluster splits down the middle and diverges.
	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	left, right := make([]int, 0, n/2), make([]int, 0, n/2)
	for i := 0; i < n; i++ {
		if i < n/2 {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	c.Partition(left, right)
	c.Run(30 * time.Second)

	c.Heal()
	if err := c.Restart(0); err != nil {
		t.Fatal(err)
	}
	if err := c.Settle(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)

	res := syncChaosResult{
		eventLog:        c.Net.EventLog(),
		tip:             c.Node(0).Height(),
		fullReplayDelta: sumCounter("livenode.sync.full_replays") - replaysBefore,
		syncRounds:      sumCounter("livenode.sync.rounds") - roundsBefore,
		syncBatches:     sumCounter("livenode.sync.batches") - batchesBefore,
		recoveredBlocks: c.NodeTelemetry(0).Snapshot().Counter("store.recovery.blocks"),
	}
	c.Close()
	return res
}

// TestChaosBatchedSyncConvergence is the incremental-sync flagship
// scenario: 24 nodes, partition/heal plus a stale-WAL restart, convergence
// strictly through batched sync (zero scratch replays after warm-up), and a
// bit-identical faultnet event log when the same seed runs twice.
func TestChaosBatchedSyncConvergence(t *testing.T) {
	first := runBatchedSyncScenario(t, *seedFlag, t.TempDir())

	if first.recoveredBlocks == 0 {
		t.Fatal("restarted node recovered 0 blocks from its WAL — the stale-WAL leg exercised nothing")
	}
	if first.syncRounds == 0 {
		t.Fatal("no incremental sync rounds ran during partition/heal + restart")
	}
	if first.syncBatches == 0 {
		t.Fatal("convergence happened without a single sync batch — catch-up did not use the batched path")
	}
	if first.fullReplayDelta != 0 {
		t.Fatalf("sync_full_replays grew by %d after snapshots warmed, want 0", first.fullReplayDelta)
	}

	second := runBatchedSyncScenario(t, *seedFlag, t.TempDir())
	if first.eventLog == "" {
		t.Fatal("scenario produced an empty event log")
	}
	if first.eventLog != second.eventLog {
		t.Fatalf("same seed produced different event logs: len(first)=%d len(second)=%d",
			len(first.eventLog), len(second.eventLog))
	}
	if first.tip != second.tip {
		t.Fatalf("same seed converged to different heights: %d vs %d", first.tip, second.tip)
	}
}

package chaos

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/p2p/memnet"
)

// seedFlag reseeds every scenario: go test ./internal/chaos -run Chaos -seed=7
var seedFlag = flag.Int64("seed", 1, "chaos scenario seed")

// newCluster builds a cluster, wires cleanup, and arranges for the faultnet
// event log to be dumped (and written to $CHAOS_LOG_DIR if set) on failure.
func newCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	if opts.Seed == 0 {
		opts.Seed = *seedFlag
	}
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		defer c.Close()
		if !t.Failed() {
			return
		}
		log := c.Net.EventLog()
		t.Logf("faultnet event log (%d events):\n%s", len(c.Net.Events()), log)
		t.Logf("telemetry at failure:\n%s", c.TelemetrySummary())
		if dir := os.Getenv("CHAOS_LOG_DIR"); dir != "" {
			if err := os.MkdirAll(dir, 0o755); err == nil {
				name := strings.ReplaceAll(t.Name(), "/", "_")
				path := filepath.Join(dir, fmt.Sprintf("%s-seed%d.log", name, opts.Seed))
				_ = os.WriteFile(path, []byte(log), 0o644)
			}
		}
	})
	if err := c.ConnectAll(); err != nil {
		t.Fatal(err)
	}
	return c
}

func checkInvariants(t *testing.T, c *Cluster) {
	t.Helper()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosPartitionHeal splits a 4-node cluster in half, lets both sides
// mine divergent suffixes, heals, and checks convergence plus heal-time
// common-prefix safety.
func TestChaosPartitionHeal(t *testing.T) {
	c := newCluster(t, Options{N: 4})
	c.Run(30 * time.Second)

	c.Partition([]int{0, 1}, []int{2, 3})
	c.Run(60 * time.Second)

	// Safety reference: whatever all nodes still agree on at heal time must
	// survive fork resolution.
	prefix := CommonPrefix(c.Nodes())
	if len(prefix) == 0 {
		t.Fatal("no common prefix at heal time — genesis should always be shared")
	}
	c.Heal()
	if err := c.Settle(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
	for i, n := range c.Nodes() {
		if err := CheckPrefixPreserved(prefix, n); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
}

// TestChaosCrashRestart kills a persistent node without a checkpoint
// mid-run, lets the rest of the cluster advance, then restarts it from its
// WAL and checks it catches back up with consistent derived state.
func TestChaosCrashRestart(t *testing.T) {
	c := newCluster(t, Options{
		N:               3,
		DataDirs:        []string{t.TempDir(), "", ""},
		CheckpointEvery: 4,
	})
	c.Run(40 * time.Second)
	preCrash := c.Node(0).Height()

	if err := c.Crash(0); err != nil {
		t.Fatal(err)
	}
	c.Run(30 * time.Second)

	if err := c.Restart(0); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(0).Height(); got < preCrash {
		t.Fatalf("restarted node recovered to height %d, had %d before crash", got, preCrash)
	}
	// Telemetry cross-check: the registry survives the crash, so the
	// recovery counter must show exactly the pre-crash chain replayed from
	// the WAL (SyncAlways ⇒ every adopted block was durable; genesis is
	// never persisted, so WAL blocks == tip index).
	snap := c.NodeTelemetry(0).Snapshot()
	if got := snap.Counter("store.recovery.blocks"); got != preCrash {
		t.Fatalf("store.recovery.blocks = %d, want pre-crash height %d\n%s",
			got, preCrash, c.TelemetrySummary())
	}
	if snap.Counter("store.wal.appends") == 0 {
		t.Fatalf("store.wal.appends = 0 despite a persistent mining node\n%s", c.TelemetrySummary())
	}
	if err := c.Settle(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
}

// TestChaosForkRace runs a fully connected cluster over slow links so block
// announcements race mined blocks, forcing repeated short forks that
// longest-chain resolution must clean up.
func TestChaosForkRace(t *testing.T) {
	c := newCluster(t, Options{
		N:      4,
		Faults: memnet.Params{DelayMin: 200 * time.Millisecond, DelayMax: 800 * time.Millisecond},
	})
	c.Run(90 * time.Second)
	c.Net.SetDefaults(memnet.Params{})
	if err := c.Settle(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
}

// TestChaosLossyLinks drops a quarter of all traffic; chain sync must
// recover whatever individual block broadcasts lose.
func TestChaosLossyLinks(t *testing.T) {
	c := newCluster(t, Options{
		N:      3,
		Faults: memnet.Params{Drop: 0.25, DelayMax: 100 * time.Millisecond},
	})
	c.Run(90 * time.Second)
	c.Net.SetDefaults(memnet.Params{})
	if err := c.Settle(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
	// The fault counters must reflect the configured 25% loss: some sends
	// dropped, and enough delivered for consensus to converge anyway.
	net := c.NetTelemetry().Snapshot()
	if net.Counter("memnet.drops") == 0 {
		t.Fatalf("memnet.drops = 0 with Drop=0.25 — fault injection inert\n%s", c.TelemetrySummary())
	}
	if net.Counter("memnet.delivered") == 0 {
		t.Fatalf("memnet.delivered = 0 yet the cluster converged\n%s", c.TelemetrySummary())
	}
	if s, d := net.Counter("memnet.sends"), net.Counter("memnet.drops"); d >= s {
		t.Fatalf("memnet.drops (%d) >= memnet.sends (%d)", d, s)
	}
}

// TestChaosReorderDuplicate delivers duplicated and reordered frames; the
// protocol must treat redelivery as idempotent and out-of-order blocks as
// sync triggers, not corruption.
func TestChaosReorderDuplicate(t *testing.T) {
	c := newCluster(t, Options{
		N:      3,
		Faults: memnet.Params{Duplicate: 0.3, Reorder: 0.5, DelayMax: 100 * time.Millisecond},
	})
	c.Run(90 * time.Second)
	c.Net.SetDefaults(memnet.Params{})
	if err := c.Settle(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)
}

// TestChaosForkQReconciliation is the seeded end-to-end fork-resolution
// test: two partitions publish data and mine divergent suffixes, then heal.
// The longest valid chain must win everywhere and every node's Q_i ledger
// must match the adopted chain, not the abandoned fork it may have credited
// during the split.
func TestChaosForkQReconciliation(t *testing.T) {
	c := newCluster(t, Options{N: 4})
	c.Run(20 * time.Second)

	c.Partition([]int{0, 1}, []int{2, 3})
	if _, err := c.Node(0).Publish([]byte("left-side payload"), "Road/Congestion", "west"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(2).Publish([]byte("right-side payload"), "Road/Congestion", "east"); err != nil {
		t.Fatal(err)
	}
	c.Run(60 * time.Second)

	leftTip, rightTip := c.Node(0).Tip(), c.Node(2).Tip()
	if leftTip.Hash == rightTip.Hash {
		t.Fatal("partitioned sides did not diverge — scenario exercised nothing")
	}
	longest := max(leftTip.Index, rightTip.Index)
	prefix := CommonPrefix(c.Nodes())

	c.Heal()
	if err := c.Settle(5 * time.Minute); err != nil {
		t.Fatal(err)
	}
	adopted := c.Node(0).Tip()
	if adopted.Index < longest {
		t.Fatalf("adopted chain height %d shorter than longest partition suffix %d", adopted.Index, longest)
	}
	checkInvariants(t, c) // includes Q_i/S_i reconciliation against the adopted chain
	// Divergence was asserted above, so at least one side abandoned its
	// suffix for the other's longer chain: the fork-adoption counters must
	// have seen it.
	var adoptions uint64
	for i := 0; i < 4; i++ {
		adoptions += c.NodeTelemetry(i).Snapshot().Counter("livenode.fork.adoptions")
	}
	if adoptions == 0 {
		t.Fatalf("no livenode.fork.adoptions counted despite divergent partitions\n%s", c.TelemetrySummary())
	}
	// The height gauge must track the adopted tip on every node.
	for i := 0; i < 4; i++ {
		if g := c.NodeTelemetry(i).Snapshot().Gauge("livenode.height"); g != int64(adopted.Index) {
			t.Fatalf("node %d livenode.height gauge = %d, tip index = %d", i, g, adopted.Index)
		}
	}
	for i, n := range c.Nodes() {
		if err := CheckPrefixPreserved(prefix, n); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	// Every node must agree on the reconciled ledger, not just the chain.
	s0, q0 := c.Node(0).LedgerStats()
	for i := 1; i < 4; i++ {
		s, q := c.Node(i).LedgerStats()
		for k := range s0 {
			if s[k] != s0[k] || q[k] != q0[k] {
				t.Fatalf("node %d ledger (S_%d=%d Q_%d=%d) disagrees with node 0 (S=%d Q=%d)",
					i, k, s[k], k, q[k], s0[k], q0[k])
			}
		}
	}
}

// TestChaosDeterministicEventLog runs the same faulty scenario twice with
// the same seed and requires bit-identical faultnet event logs — the
// reproducibility contract behind `-seed`.
func TestChaosDeterministicEventLog(t *testing.T) {
	run := func() string {
		c, err := NewCluster(Options{
			N:      3,
			Seed:   *seedFlag,
			Faults: memnet.Params{Drop: 0.1, Duplicate: 0.1, Reorder: 0.3, DelayMax: 50 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.ConnectAll(); err != nil {
			t.Fatal(err)
		}
		c.Run(20 * time.Second)
		c.Partition([]int{0}, []int{1, 2})
		c.Run(20 * time.Second)
		c.Heal()
		c.Run(20 * time.Second)
		return c.Net.EventLog()
	}
	first, second := run(), run()
	if first == "" {
		t.Fatal("scenario produced an empty event log")
	}
	if first != second {
		t.Fatalf("same seed produced different event logs:\nlen(first)=%d len(second)=%d", len(first), len(second))
	}
}

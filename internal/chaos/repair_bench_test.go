package chaos

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/meta"
	"repro/internal/repair"
)

// BenchmarkRepairConvergence regenerates the EXPERIMENTS.md repair
// numbers: how much virtual time the self-healing data plane needs to
// bring every live item back to its replica floor after a single churn
// event kills a fraction of the storing nodes, at 24 and 64 nodes.
//
//	go test -bench BenchmarkRepairConvergence -benchtime 1x ./internal/chaos
//
// Reported metrics are virtual (simulated) quantities, deterministic per
// seed: vsec/heal is the virtual seconds from the churn event to full
// replication, repairB and consB the cumulative repair and consensus
// wire-bytes summed over all nodes at that point.
func BenchmarkRepairConvergence(b *testing.B) {
	for _, n := range []int{24, 64} {
		for _, frac := range []float64{0.1, 0.3, 0.5} {
			b.Run(fmt.Sprintf("n=%d/churn=%.0f%%", n, frac*100), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					measureRepairConvergence(b, n, frac)
				}
			})
		}
	}
}

func measureRepairConvergence(b *testing.B, n int, frac float64) {
	const floor = alloc.DefaultMinReplicas
	items := 2 * n / 3
	c, err := NewCluster(Options{
		N:                  n,
		Seed:               1,
		StorageCapacity:    48,
		RepairWorkers:      2,
		RepairSuspectAfter: 4 * time.Second,
		RepairHysteresis:   4 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.ConnectAll(); err != nil {
		b.Fatal(err)
	}
	now := func() time.Duration { return c.Clock.Now().Sub(c.Epoch) }

	warm := func() bool {
		for _, node := range c.Nodes() {
			if node.Height() < 1 {
				return false
			}
		}
		return true
	}
	if err := c.RunUntil(warm, 10*time.Minute); err != nil {
		b.Fatal(err)
	}
	ids := make([]meta.DataID, items)
	for k := 0; k < items; k++ {
		it, err := c.Node(k%2).Publish([]byte(fmt.Sprintf("payload %03d", k)), "Road/Congestion", "junction")
		if err != nil {
			b.Fatal(err)
		}
		ids[k] = it.ID
	}
	placed := func() bool {
		idx := repair.NewIndex(n)
		idx.Rebuild(c.Node(0).ChainSnapshot())
		idx.ExpireUntil(now())
		for _, id := range ids {
			if p := idx.Providers(id); len(p) == 0 || len(p) >= n {
				return false
			}
		}
		return true
	}
	if err := c.RunUntil(placed, 10*time.Minute); err != nil {
		b.Fatal(err)
	}

	churnAt := now()
	killed, err := c.KillStoringNodes(frac, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	healed := func() bool {
		return c.Converged() && c.CheckReplication(floor) == nil
	}
	if err := c.RunUntil(healed, time.Hour); err != nil {
		b.Fatalf("%v; replication: %v", err, c.CheckReplication(floor))
	}
	heal := now() - churnAt

	sumCounter := func(name string) (total uint64) {
		for i := 0; i < n; i++ {
			total += c.NodeTelemetry(i).Snapshot().Counter(name)
		}
		return total
	}
	b.ReportMetric(heal.Seconds(), "vsec/heal")
	b.ReportMetric(float64(sumCounter("livenode.wire.repair_bytes")), "repairB")
	b.ReportMetric(float64(sumCounter("livenode.wire.consensus_bytes")), "consB")
	b.Logf("n=%d churn=%.0f%%: killed %d nodes %v, healed in %v virtual; "+
		"repair: enqueued=%d fetches=%d completed=%d fallbacks=%d throttled=%d reannounced=%d; "+
		"wire: repair=%dB consensus=%dB data=%dB",
		n, frac*100, len(killed), killed, heal,
		sumCounter("livenode.repair.enqueued"), sumCounter("livenode.repair.fetches"),
		sumCounter("livenode.repair.completed"), sumCounter("livenode.repair.fallbacks"),
		sumCounter("livenode.repair.throttled"), sumCounter("livenode.repair.reannounced"),
		sumCounter("livenode.wire.repair_bytes"), sumCounter("livenode.wire.consensus_bytes"),
		sumCounter("livenode.wire.data_bytes"))
}

package chaos

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
	"time"

	"repro/internal/meta"
	"repro/internal/workload"
)

// This file is the §15 scale gate: CI-enforced evidence that both
// remaining O(n²) floods are gone. Each plane gets a differential
// measurement at 256 nodes (new transport vs the legacy flag settings)
// with a 5× peak-egress bar, a 64-node differential proves the metadata
// relay loses nothing the legacy push delivered, and TestChaosScale1000
// pins the whole stack — open-loop workload, churn, sampled probes —
// at 1000 deterministic nodes.

// measureMetaDistribution publishes a burst of items from ONE producer
// on a 256-node mining-parked cluster and returns each node's peak and
// summed livenode.wire.meta_bytes. The concentrated producer is the
// honest shape for this gate: under the legacy push the producer's
// egress is 255 full FrameMeta bodies per item (the O(n) spike §15
// removes), while uniform publishing would average that spike away
// across the roster.
func measureMetaDistribution(t *testing.T, metaFanout int) (peak, total, relays uint64) {
	t.Helper()
	const n, items = 256, 8
	c := newQuietCluster(t, Options{
		N:    n,
		Seed: *seedFlag,
		T0:   time.Hour, // park mining: only metadata frames flow
		// metaFanout is the knob under test; block gossip stays default.
		MetaFanout: metaFanout,
	})
	for k := 0; k < items; k++ {
		if _, err := c.Node(0).Publish([]byte(fmt.Sprintf("gate item %02d", k)), "Road/Congestion", "gate"); err != nil {
			t.Fatal(err)
		}
		c.Run(5 * time.Second) // drain the epidemic before the next burst
	}
	c.Run(30 * time.Second) // let any fetch timers fire

	// Delivery sanity: the legacy push reaches everyone by construction;
	// the epidemic must reach essentially everyone (residual misses heal
	// via §10 sync once mining packs the items — parked here on purpose).
	covered := 0
	for i := 0; i < n; i++ {
		if len(c.Node(i).PoolIDs()) == items {
			covered++
		}
	}
	wantCovered := n
	if metaFanout >= 0 {
		wantCovered = n * 97 / 100
	}
	if covered < wantCovered {
		t.Fatalf("only %d/%d nodes hold all %d items (want >= %d)", covered, n, items, wantCovered)
	}
	for i := 0; i < n; i++ {
		snap := c.NodeTelemetry(i).Snapshot()
		v := snap.Counter("livenode.wire.meta_bytes")
		total += v
		if v > peak {
			peak = v
		}
		relays += snap.Counter("livenode.metagossip.relays")
	}
	return peak, total, relays
}

// TestMetaGossipBeatsFullMeshFiveFold is the metadata half of the §15
// acceptance gate: at 256 nodes the inv-style relay must cut the PEAK
// per-node metadata egress at least 5× versus the legacy full-mesh push.
// Peak, not total: every node still receives each item once, so cluster
// totals cannot shrink much — what the relay removes is the producer's
// O(n) body fan-out.
func TestMetaGossipBeatsFullMeshFiveFold(t *testing.T) {
	gPeak, gTotal, gRelays := measureMetaDistribution(t, 0)
	lPeak, lTotal, lRelays := measureMetaDistribution(t, -1)
	if gRelays == 0 {
		t.Fatal("metagossip.relays = 0 — items did not travel by announce relay")
	}
	if lRelays != 0 {
		t.Fatalf("legacy mode recorded %d meta relays", lRelays)
	}
	t.Logf("peak per-node metadata egress: gossip %d B, legacy %d B — %.1fx; totals: gossip %d B, legacy %d B",
		gPeak, lPeak, float64(lPeak)/float64(gPeak), gTotal, lTotal)
	if gPeak*5 > lPeak {
		t.Errorf("gossip peak metadata egress %d B, legacy %d B — want >= 5x reduction", gPeak, lPeak)
	}
}

// measureHeartbeat runs a 256-node mining-parked cluster's repair plane
// for a fixed span of ticks and returns each node's peak and summed
// livenode.wire.heartbeat_bytes (announce + probe + ack).
func measureHeartbeat(t *testing.T, probeFanout int) (peak, total, probes uint64) {
	t.Helper()
	const n = 256
	c := newQuietCluster(t, Options{
		N:                n,
		Seed:             *seedFlag,
		T0:               time.Hour, // park mining: only liveness frames flow
		RepairWorkers:    1,
		RepairProbeEvery: 5 * time.Second,
		ProbeFanout:      probeFanout,
	})
	c.Run(60 * time.Second) // 12 probe ticks
	for i := 0; i < n; i++ {
		snap := c.NodeTelemetry(i).Snapshot()
		v := snap.Counter("livenode.wire.heartbeat_bytes")
		total += v
		if v > peak {
			peak = v
		}
		probes += snap.Counter("livenode.probe.sent")
	}
	return peak, total, probes
}

// TestSampledProbesBeatBroadcastFiveFold is the liveness half of the §15
// acceptance gate: at 256 nodes, SWIM-style sampled probing must cut the
// peak per-node heartbeat egress at least 5× versus the legacy per-tick
// announce broadcast. Here peak and total tell the same story — the
// legacy plane is a uniform O(n²) flood, the sampled plane O(n·fanout).
func TestSampledProbesBeatBroadcastFiveFold(t *testing.T) {
	sPeak, sTotal, sProbes := measureHeartbeat(t, 0)
	lPeak, lTotal, lProbes := measureHeartbeat(t, -1)
	if sProbes == 0 {
		t.Fatal("probe.sent = 0 — sampled mode never probed")
	}
	if lProbes != 0 {
		t.Fatalf("legacy mode sent %d probes", lProbes)
	}
	t.Logf("peak per-node heartbeat egress: sampled %d B, legacy %d B — %.1fx; totals: sampled %d B, legacy %d B",
		sPeak, lPeak, float64(lPeak)/float64(sPeak), sTotal, lTotal)
	if sPeak*5 > lPeak {
		t.Errorf("sampled peak heartbeat egress %d B, legacy %d B — want >= 5x reduction", sPeak, lPeak)
	}
}

// itemSetDigest folds the node's complete item set — everything packed
// on its chain plus everything still pooled — into one order-independent
// fingerprint.
func itemSetDigest(ids []meta.DataID) uint64 {
	sort.Slice(ids, func(i, j int) bool {
		for b := range ids[i] {
			if ids[i][b] != ids[j][b] {
				return ids[i][b] < ids[j][b]
			}
		}
		return false
	})
	h := fnv.New64a()
	for _, id := range ids {
		h.Write(id[:])
	}
	return h.Sum64()
}

// runPoolConvergence publishes a fixed staggered item schedule from
// scattered producers on a mining 64-node cluster, waits until every
// item is packed and every pool drained, and returns the cluster-wide
// item-set digest (asserting all nodes agree on it first).
func runPoolConvergence(t *testing.T, metaFanout int) (digest, relays uint64) {
	t.Helper()
	const n, items = 64, 24
	c := newQuietCluster(t, Options{N: n, Seed: *seedFlag, MetaFanout: metaFanout})
	for k := 0; k < items; k++ {
		producer := (k * 7) % n
		if _, err := c.Node(producer).Publish([]byte(fmt.Sprintf("conv item %03d", k)), "Road/Congestion", fmt.Sprintf("loc%d", k%5)); err != nil {
			t.Fatal(err)
		}
		c.Run(2 * time.Second)
	}
	drained := func() bool {
		if !c.Converged() {
			return false
		}
		for _, node := range c.Nodes() {
			if len(node.PoolIDs()) != 0 {
				return false
			}
		}
		return true
	}
	if err := c.RunUntil(drained, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, c)

	digests := make([]uint64, n)
	for i := 0; i < n; i++ {
		node := c.Node(i)
		var ids []meta.DataID
		for _, blk := range node.ChainSnapshot() {
			for _, it := range blk.Items {
				ids = append(ids, it.ID)
			}
		}
		ids = append(ids, node.PoolIDs()...)
		if len(ids) != items {
			t.Fatalf("node %d holds %d items, want %d", i, len(ids), items)
		}
		digests[i] = itemSetDigest(ids)
		if digests[i] != digests[0] {
			t.Fatalf("node %d item-set digest %016x differs from node 0's %016x", i, digests[i], digests[0])
		}
		relays += c.NodeTelemetry(i).Snapshot().Counter("livenode.metagossip.relays")
	}
	return digests[0], relays
}

// TestMetaGossipPoolConvergenceMatchesLegacy is the §15 no-loss
// differential: the same 64-node publish schedule run once over the
// announce/fetch relay and once over the legacy full-mesh push must land
// every node on the identical item set — switching the metadata
// transport changes bytes on the wire, never what converges.
func TestMetaGossipPoolConvergenceMatchesLegacy(t *testing.T) {
	gDigest, gRelays := runPoolConvergence(t, 0)
	lDigest, lRelays := runPoolConvergence(t, -1)
	if gRelays == 0 {
		t.Fatal("metagossip.relays = 0 — gossip run did not use the relay")
	}
	if lRelays != 0 {
		t.Fatalf("legacy run recorded %d meta relays", lRelays)
	}
	if gDigest != lDigest {
		t.Fatalf("item sets diverged: gossip %016x, legacy %016x", gDigest, lDigest)
	}
}

// TestChaosScale1000 is the tentpole's summit: 1000 deterministic nodes
// under an open-loop workload with ~5% concurrent churn, block gossip,
// metadata relay and sampled liveness probes all on, converging with
// every invariant intact — twice, bit-identically. Nothing in the stack
// may touch wall-clock randomness for this to hold.
//
// Detector windows follow the §15 coverage math: with fanout 8, sampled
// evidence about one node refreshes roughly every
// roster/(fanout·(digest+1)) ≈ 7 ticks, so the 36-tick dead window has
// ~5× slack — alive nodes never flap dead (a false-dead at this scale
// snowballs into a repair-repacking livelock), while churned nodes are
// only down ~4 ticks and never even reach suspect.
func TestChaosScale1000(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node scenario skipped in -short")
	}
	seed := *seedFlag
	const n = 1000
	opts := Options{
		N:                  n,
		Seed:               seed,
		StorageCapacity:    64,
		RepairWorkers:      1,
		ProbeFanout:        8,
		RepairProbeEvery:   10 * time.Second,
		RepairSuspectAfter: 180 * time.Second,
		RepairHysteresis:   180 * time.Second,
	}
	requesters := make([]int, 0, 8)
	for i := 13; i < n; i += 125 {
		requesters = append(requesters, i)
	}
	wopts := WorkloadOptions{
		Stream: workload.StreamConfig{
			Duration:        45 * time.Second,
			RatePerMin:      40,
			NumNodes:        n,
			Requesters:      requesters,
			RequestsPerItem: 1,
			TypeZipfS:       1.1,
			Users:           1_000_000,
			UserZipfS:       1.2,
			SessionEpoch:    45 * time.Second,
			Seed:            seed*10_000 + 5,
		},
		RequestDelay: 15 * time.Second,
	}
	// ~67 outages/min × 45s mean downtime ≈ 50 nodes down at a time ≈ 5%.
	churn, err := workload.GenerateChurn(workload.ChurnConfig{
		Horizon:      45 * time.Second,
		EventsPerMin: 67,
		MeanDown:     45 * time.Second,
		NumNodes:     n,
		Protect:      []int{0},
		Seed:         seed*10_000 + 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	wopts.Churn = churn

	run := func() openLoopResult {
		c := newQuietCluster(t, opts)
		// Churned nodes are in-memory: they restart empty and catch up by
		// sync, so the replication floor is out of scope here (the durable
		// flash-crowd scenario owns it) — floor 0 skips that check.
		return driveOpenLoop(t, c, wopts, 0, 20*time.Minute)
	}
	r1 := run()
	if r1.stats.Published < 20 {
		t.Fatalf("1000-node run published only %d items: %+v", r1.stats.Published, r1.stats)
	}
	if r1.stats.ChurnDowns < 10 {
		t.Fatalf("churn barely happened: %+v", r1.stats)
	}
	t.Logf("1000 nodes: %+v; height=%d events=%d wire=%dB converge=%v gini=%.3f",
		r1.stats, r1.height, r1.events, r1.wireB, r1.converge, r1.gini)

	r2 := run()
	if r1 != r2 {
		t.Fatalf("double run diverged:\n run1: %+v\n run2: %+v", r1, r2)
	}
}

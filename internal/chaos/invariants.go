package chaos

import (
	"fmt"
	"time"

	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/engine"
	"repro/internal/identity"
	"repro/internal/livenode"
	"repro/internal/pos"
	"repro/internal/repair"
)

// CheckConvergence verifies that every node holds the identical chain:
// same height and the same block hash at every index.
func CheckConvergence(nodes []*livenode.Node) error {
	if len(nodes) < 2 {
		return nil
	}
	ref := nodes[0].ChainSnapshot()
	for k, n := range nodes[1:] {
		snap := n.ChainSnapshot()
		if len(snap) != len(ref) {
			return fmt.Errorf("chaos: node %d at height %d, node 0 at %d", k+1, len(snap)-1, len(ref)-1)
		}
		for h := range snap {
			if snap[h].Hash != ref[h].Hash {
				return fmt.Errorf("chaos: node %d diverges from node 0 at height %d", k+1, h)
			}
		}
	}
	return nil
}

// CheckHeaderConvergence verifies that every node agrees on height and on
// the header hash at every height — the convergence check that still works
// in a mixed cluster where some replicas pruned their block bodies away.
// Nodes that mined (or backfilled) from genesis keep the full header
// spine, so the comparison spans the whole chain.
func CheckHeaderConvergence(nodes []*livenode.Node) error {
	if len(nodes) < 2 {
		return nil
	}
	ref := nodes[0]
	height := ref.Height()
	for k, n := range nodes[1:] {
		if got := n.Height(); got != height {
			return fmt.Errorf("chaos: node %d at height %d, node 0 at %d", k+1, got, height)
		}
		for h := uint64(0); h <= height; h++ {
			want, ok1 := ref.HeaderHashAt(h)
			got, ok2 := n.HeaderHashAt(h)
			if !ok1 || !ok2 {
				return fmt.Errorf("chaos: header at height %d missing (node 0: %v, node %d: %v)", h, ok1, k+1, ok2)
			}
			if got != want {
				return fmt.Errorf("chaos: node %d header diverges from node 0 at height %d", k+1, h)
			}
		}
	}
	return nil
}

// CheckChainValidity replays the whole snapshot end-to-end: structural
// validation (hashes, links, item signatures) plus PoS claim validation of
// every block against a scratch ledger built from the same prefix —
// exactly what an honest node would accept over the wire.
func CheckChainValidity(snapshot []*block.Block, accounts []identity.Address, params pos.Params) error {
	if err := chain.Validate(snapshot); err != nil {
		return fmt.Errorf("chaos: adopted chain invalid: %w", err)
	}
	scratch := pos.NewLedger(accounts)
	for i := 1; i < len(snapshot); i++ {
		if err := params.ValidateClaim(snapshot[i-1], snapshot[i], scratch); err != nil {
			return fmt.Errorf("chaos: block %d PoS claim: %w", i, err)
		}
		if err := scratch.ApplyBlock(snapshot[i]); err != nil {
			return fmt.Errorf("chaos: block %d ledger apply: %w", i, err)
		}
	}
	return nil
}

// CheckLedgerAccounting verifies that the node's live stake ledger (S_i,
// Q_i) and its placement storage view match an independent recomputation
// from the node's own chain replica — i.e. derived state never drifts from
// chain contents across forks, replays and restarts. The storage view is
// recomputed through a fresh engine.StorageView replay at virtual time
// now, so expiry handling is covered too.
func CheckLedgerAccounting(n *livenode.Node, accounts []identity.Address, now time.Duration) error {
	snap := n.ChainSnapshot()
	ref := pos.NewLedger(accounts)
	for _, b := range snap {
		if b.Index == 0 {
			continue
		}
		if err := ref.ApplyBlock(b); err != nil {
			return fmt.Errorf("chaos: recompute ledger: %w", err)
		}
	}
	refView := engine.NewStorageView(len(accounts), 0, 0, 1, 0)
	refView.Rebuild(snap)
	gotS, gotQ := n.LedgerStats()
	gotUsed := n.StorageUsed()
	for i := range accounts {
		if gotS[i] != ref.S(i) {
			return fmt.Errorf("chaos: S_%d = %d, chain says %d", i, gotS[i], ref.S(i))
		}
		if gotQ[i] != ref.Q(i) {
			return fmt.Errorf("chaos: Q_%d = %d, chain says %d", i, gotQ[i], ref.Q(i))
		}
		if want := refView.Used(i, now); gotUsed[i] != want {
			return fmt.Errorf("chaos: storage view used_%d = %d, chain says %d", i, gotUsed[i], want)
		}
	}
	return nil
}

// CheckReplication verifies the data plane has healed: from a provider
// index rebuilt off the first live node's chain at the current virtual
// time, every unexpired item must have at least min(floor, live-node
// count) of its assigned providers among the live nodes, and every
// assigned live provider must actually hold the item's bytes. Run it only
// after the cluster has settled — mid-churn deficits are exactly what the
// repair plane exists to close.
func (c *Cluster) CheckReplication(floor int) error {
	var ref *livenode.Node
	live := 0
	for _, n := range c.nodes {
		if n == nil {
			continue
		}
		live++
		if ref == nil {
			ref = n
		}
	}
	if ref == nil {
		return nil
	}
	idx := repair.NewIndex(c.opts.N)
	idx.Rebuild(ref.ChainSnapshot())
	idx.ExpireUntil(c.Clock.Now().Sub(c.Epoch))
	want := floor
	if want > live {
		want = live
	}
	for _, id := range idx.Live() {
		alive := 0
		for _, p := range idx.Providers(id) {
			if c.nodes[p] == nil {
				continue
			}
			alive++
			if !c.nodes[p].HasData(id) {
				return fmt.Errorf("chaos: node %d is assigned item %s but does not hold its bytes", p, id)
			}
		}
		if alive < want {
			return fmt.Errorf("chaos: item %s has %d live replicas, want >= %d", id, alive, want)
		}
	}
	return nil
}

// CommonPrefix returns the hashes of the longest chain prefix shared by
// every node (genesis included). Nodes in a partitioned cluster agree on
// exactly this prefix; safety demands it is never rolled back.
func CommonPrefix(nodes []*livenode.Node) []block.Hash {
	if len(nodes) == 0 {
		return nil
	}
	snaps := make([][]*block.Block, len(nodes))
	minLen := -1
	for i, n := range nodes {
		snaps[i] = n.ChainSnapshot()
		if minLen < 0 || len(snaps[i]) < minLen {
			minLen = len(snaps[i])
		}
	}
	var prefix []block.Hash
	for h := 0; h < minLen; h++ {
		want := snaps[0][h].Hash
		for _, s := range snaps[1:] {
			if s[h].Hash != want {
				return prefix
			}
		}
		prefix = append(prefix, want)
	}
	return prefix
}

// CheckPrefixPreserved verifies the node's chain still begins with the
// given prefix — no committed common block was rolled back.
func CheckPrefixPreserved(prefix []block.Hash, n *livenode.Node) error {
	snap := n.ChainSnapshot()
	if len(snap) < len(prefix) {
		return fmt.Errorf("chaos: chain of %d blocks shorter than preserved prefix of %d", len(snap), len(prefix))
	}
	for h, want := range prefix {
		if snap[h].Hash != want {
			return fmt.Errorf("chaos: committed block at height %d rolled back past heal-time common prefix", h)
		}
	}
	return nil
}

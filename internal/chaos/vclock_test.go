package chaos

import (
	"testing"
	"time"
)

// TestVClockOrdering: timers fire in (due, creation) order even when
// scheduled out of order, and stopped timers never fire.
func TestVClockOrdering(t *testing.T) {
	epoch := time.Unix(1700000000, 0)
	c := NewVClock(epoch)
	var fired []int
	c.AfterFunc(3*time.Second, func() { fired = append(fired, 3) })
	c.AfterFunc(1*time.Second, func() { fired = append(fired, 1) })
	tieA := c.AfterFunc(2*time.Second, func() { fired = append(fired, 2) })
	c.AfterFunc(2*time.Second, func() { fired = append(fired, 22) })
	stopped := c.AfterFunc(500*time.Millisecond, func() { fired = append(fired, -1) })
	if !stopped.Stop() {
		t.Fatal("first Stop reported already-done")
	}
	if stopped.Stop() {
		t.Fatal("second Stop reported success")
	}
	_ = tieA
	c.AdvanceTo(epoch.Add(10 * time.Second))
	want := []int{1, 2, 22, 3}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}

// TestVClockTimerChain: a callback scheduling another timer inside the
// advance window fires within the same AdvanceTo.
func TestVClockTimerChain(t *testing.T) {
	epoch := time.Unix(1700000000, 0)
	c := NewVClock(epoch)
	var hits int
	c.AfterFunc(time.Second, func() {
		hits++
		c.AfterFunc(time.Second, func() { hits++ })
	})
	c.AdvanceTo(epoch.Add(5 * time.Second))
	if hits != 2 {
		t.Fatalf("chained timer fired %d times, want 2", hits)
	}
	if got := c.Now(); !got.Equal(epoch.Add(5 * time.Second)) {
		t.Fatalf("clock at %v, want %v", got, epoch.Add(5*time.Second))
	}
}

// TestVClockHotPathAllocs is the timer heap's alloc gate: one
// schedule+fire cycle allocates only the timer struct itself (the heap
// storage is reused), and Stop allocates nothing. This is what keeps
// 256-node runs — thousands of heartbeat and mining timers in flight —
// allocation-flat.
func TestVClockHotPathAllocs(t *testing.T) {
	epoch := time.Unix(1700000000, 0)
	c := NewVClock(epoch)
	fn := func() {}
	// Warm the heap storage.
	for i := 0; i < 64; i++ {
		c.AfterFunc(time.Millisecond, fn)
	}
	c.AdvanceTo(c.Now().Add(time.Second))

	if got := testing.AllocsPerRun(1000, func() {
		c.AfterFunc(time.Millisecond, fn)
		c.AdvanceTo(c.Now().Add(2 * time.Millisecond))
	}); got > 1 {
		t.Fatalf("schedule+fire cycle allocates %.2f/op, want ≤ 1 (the timer struct)", got)
	}
	if got := testing.AllocsPerRun(1000, func() {
		c.AfterFunc(time.Millisecond, fn).Stop()
		c.AdvanceTo(c.Now().Add(2 * time.Millisecond))
	}); got > 1 {
		t.Fatalf("schedule+stop cycle allocates %.2f/op, want ≤ 1 (the timer struct)", got)
	}
}

// TestVClockManyTimers drives a large mixed schedule and checks the heap
// discipline holds: every live timer fires exactly once, in order.
func TestVClockManyTimers(t *testing.T) {
	epoch := time.Unix(1700000000, 0)
	c := NewVClock(epoch)
	const n = 5000
	var fired int
	var last time.Time
	for i := 0; i < n; i++ {
		d := time.Duration((i*7919)%1000) * time.Millisecond
		timer := c.AfterFunc(d, func() {
			now := c.Now()
			if now.Before(last) {
				t.Errorf("timer fired at %v after %v", now, last)
			}
			last = now
			fired++
		})
		if i%3 == 0 {
			timer.Stop()
		}
	}
	c.AdvanceTo(epoch.Add(2 * time.Second))
	want := n - (n+2)/3
	if fired != want {
		t.Fatalf("%d timers fired, want %d", fired, want)
	}
	if _, ok := c.NextTimer(); ok {
		t.Fatal("timers still pending after full advance")
	}
}

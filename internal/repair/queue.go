package repair

import (
	"time"

	"repro/internal/meta"
)

// QueueConfig parameterizes a Queue.
type QueueConfig struct {
	// Workers bounds concurrent in-flight fetches (default 1).
	Workers int
	// MaxAttempts is how many launches/deferrals a task gets before the
	// queue gives it up to the caller's fallback path (default 5).
	MaxAttempts int
	// Backoff is the base retry delay; attempt k waits Backoff<<k,
	// capped at Backoff<<maxShift (default 2s).
	Backoff time.Duration
	// Timeout is the per-fetch response deadline, also doubled per
	// attempt up to the same cap (default 10s).
	Timeout time.Duration
}

// maxShift caps the exponential growth of per-attempt backoff and timeout
// at 8×. Unbounded doubling lets a few silent failures (a provider that is
// reachable but lacks the bytes never answers) push a single retry past
// the horizon of any realistic healing window, wedging the task for the
// caller's fallback path.
const maxShift = 3

func shift(attempts int) int {
	if attempts > maxShift {
		return maxShift
	}
	return attempts
}

// task is one queued repair fetch.
type task struct {
	attempts  int
	notBefore time.Duration // earliest next launch (backoff)
	inflight  bool
	deadline  time.Duration // in-flight response deadline
	launched  time.Duration // for fetch-latency measurement
}

// Queue is the async repair pipeline's bookkeeping: a deduplicated set of
// pending fetches with bounded concurrency, per-task exponential backoff
// and in-flight timeouts. It does no I/O itself — the livenode driver asks
// it what to launch and tells it what happened — and every answer is a
// deterministic function of the calls made so far, so virtual-clock runs
// replay bit-identically.
type Queue struct {
	cfg      QueueConfig
	tasks    map[meta.DataID]*task
	inflight int
}

// NewQueue creates an empty queue.
func NewQueue(cfg QueueConfig) *Queue {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 2 * time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	return &Queue{cfg: cfg, tasks: make(map[meta.DataID]*task)}
}

// Add enqueues a fetch for id, reporting whether it was new. A duplicate
// of a pending or in-flight task is absorbed (in-flight dedup).
func (q *Queue) Add(id meta.DataID, now time.Duration) bool {
	if _, dup := q.tasks[id]; dup {
		return false
	}
	q.tasks[id] = &task{notBefore: now}
	return true
}

// Next returns the eligible pending task the driver should launch now:
// the one with the earliest notBefore (ties broken by ID, so the pick is
// deterministic). ok is false when nothing is eligible or all worker
// slots are in flight.
func (q *Queue) Next(now time.Duration) (id meta.DataID, ok bool) {
	if q.inflight >= q.cfg.Workers {
		return id, false
	}
	found := false
	for tid, t := range q.tasks {
		if t.inflight || t.notBefore > now {
			continue
		}
		if !found || lessTask(q.tasks[tid], tid, q.tasks[id], id) {
			id, found = tid, true
		}
	}
	return id, found
}

func lessTask(a *task, aid meta.DataID, b *task, bid meta.DataID) bool {
	if a.notBefore != b.notBefore {
		return a.notBefore < b.notBefore
	}
	for k := range aid {
		if aid[k] != bid[k] {
			return aid[k] < bid[k]
		}
	}
	return false
}

// Launch marks id in flight with a response deadline scaled by its
// attempt count.
func (q *Queue) Launch(id meta.DataID, now time.Duration) {
	t := q.tasks[id]
	if t == nil || t.inflight {
		return
	}
	t.inflight = true
	t.launched = now
	t.deadline = now + q.cfg.Timeout<<shift(t.attempts)
	q.inflight++
}

// Done removes a completed task (the content arrived, by whatever path)
// and returns the fetch latency when it was in flight.
func (q *Queue) Done(id meta.DataID, now time.Duration) (latency time.Duration, wasInflight bool) {
	t := q.tasks[id]
	if t == nil {
		return 0, false
	}
	if t.inflight {
		q.inflight--
		latency, wasInflight = now-t.launched, true
	}
	delete(q.tasks, id)
	return latency, wasInflight
}

// Defer pushes a pending task's next launch to the given time, charging
// one attempt (the driver calls it when no provider is currently
// reachable). It reports true when the task ran out of attempts and was
// dropped — the caller's cue to fall back to a broadcast fetch.
func (q *Queue) Defer(id meta.DataID, until time.Duration) (gaveUp bool) {
	t := q.tasks[id]
	if t == nil || t.inflight {
		return false
	}
	t.attempts++
	if t.attempts >= q.cfg.MaxAttempts {
		delete(q.tasks, id)
		return true
	}
	t.notBefore = until
	return false
}

// Expire fails every in-flight task whose deadline has passed: the task
// returns to pending with exponential backoff, or — once its attempts are
// exhausted — is dropped and returned (sorted) for the fallback path.
func (q *Queue) Expire(now time.Duration) (gaveUp []meta.DataID) {
	var timedOut []meta.DataID
	for id, t := range q.tasks {
		if t.inflight && t.deadline <= now {
			timedOut = append(timedOut, id)
		}
	}
	sortIDs(timedOut)
	for _, id := range timedOut {
		t := q.tasks[id]
		t.inflight = false
		q.inflight--
		t.attempts++
		if t.attempts >= q.cfg.MaxAttempts {
			delete(q.tasks, id)
			gaveUp = append(gaveUp, id)
			continue
		}
		t.notBefore = now + q.cfg.Backoff<<shift(t.attempts)
	}
	return gaveUp
}

// Attempts returns a task's attempt count (0 if unknown); the driver uses
// it to rotate across candidate providers between retries.
func (q *Queue) Attempts(id meta.DataID) int {
	if t := q.tasks[id]; t != nil {
		return t.attempts
	}
	return 0
}

// Len returns the number of tracked tasks (pending + in flight).
func (q *Queue) Len() int { return len(q.tasks) }

// InFlight returns the number of launched, unanswered fetches.
func (q *Queue) InFlight() int { return q.inflight }

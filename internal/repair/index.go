// Package repair is the self-healing data plane: the machinery that
// notices when churn has taken live replicas below their floor and brings
// them back without flooding the network.
//
// The paper's UFL placement (Section IV) decides where replicas live at
// mining time and never looks back — when a storing node churns away, its
// items silently lose a replica until they expire. This package closes
// that loop with three cooperating, purely-deterministic pieces:
//
//   - Index: a provider index derived only from chain metadata. It answers
//     "which nodes store item X" and "which items are under their replica
//     floor", is maintained incrementally from adopted blocks and can be
//     rebuilt from scratch for auditing (the two must agree bit-for-bit;
//     see the differential test).
//   - Detector: a churn detector turning transport liveness signals
//     (heartbeats, send failures, mined blocks) into alive/suspect/dead
//     verdicts with hysteresis, so a transient partition does not trigger
//     a repair storm.
//   - Queue + Limiter: an async repair queue with in-flight dedup and
//     exponential backoff, throttled by a token bucket so repair traffic
//     stays strictly below consensus traffic.
//
// Everything here is I/O-free and clock-injected: callers pass the current
// time explicitly, so the same code runs identically under the chaos
// harness's virtual clock and the wall clock.
package repair

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/block"
	"repro/internal/meta"
)

// Index is the chain-derived provider index. It mirrors the assignment
// semantics of engine.StorageView exactly — re-announcements replace the
// previous assignment, expiry is lazy against the injected clock, and an
// expired item stays expired even if a stale re-announcement arrives —
// which is what makes the incremental and rebuilt-from-scratch forms
// bit-identical.
type Index struct {
	n         int
	providers map[meta.DataID][]int // ascending node IDs
	sizes     map[meta.DataID]int   // DataSize, for rate-limit charging
	byNode    []map[meta.DataID]struct{}
	expiries  expiryHeap
	expired   map[meta.DataID]bool
}

// NewIndex creates an empty index over an n-node roster.
func NewIndex(n int) *Index {
	idx := &Index{
		n:         n,
		providers: make(map[meta.DataID][]int),
		sizes:     make(map[meta.DataID]int),
		byNode:    make([]map[meta.DataID]struct{}, n),
		expired:   make(map[meta.DataID]bool),
	}
	for i := range idx.byNode {
		idx.byNode[i] = make(map[meta.DataID]struct{})
	}
	return idx
}

type expiry struct {
	at time.Duration
	id meta.DataID
}

type expiryHeap []expiry

func (h expiryHeap) Len() int           { return len(h) }
func (h expiryHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h expiryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x any)        { *h = append(*h, x.(expiry)) }
func (h *expiryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Apply folds one adopted item announcement into the index. A known ID is
// a re-announcement (migration or repair): the previous assignment is
// replaced, matching StorageView.applyItem.
func (idx *Index) Apply(it *meta.Item) {
	if idx.expired[it.ID] {
		return // re-announcement of an already-expired item: ignore
	}
	prev, known := idx.providers[it.ID]
	for _, p := range prev {
		delete(idx.byNode[p], it.ID)
	}
	assigned := make([]int, 0, len(it.StoringNodes))
	for _, sn := range it.StoringNodes {
		if sn >= 0 && sn < idx.n {
			assigned = append(assigned, sn)
			idx.byNode[sn][it.ID] = struct{}{}
		}
	}
	sort.Ints(assigned)
	idx.providers[it.ID] = assigned
	idx.sizes[it.ID] = it.DataSize
	if !known && it.ValidFor > 0 {
		heap.Push(&idx.expiries, expiry{at: it.ExpiresAt(), id: it.ID})
	}
}

// ApplyBlock folds one adopted block's item announcements into the index.
func (idx *Index) ApplyBlock(b *block.Block) {
	for _, it := range b.Items {
		idx.Apply(it)
	}
}

// Rebuild replays a whole chain (genesis first) into a reset index — the
// audit path. An incrementally maintained index must render the same
// Snapshot as a rebuilt one after both expire to the same instant.
func (idx *Index) Rebuild(blocks []*block.Block) {
	idx.providers = make(map[meta.DataID][]int)
	idx.sizes = make(map[meta.DataID]int)
	idx.expiries = idx.expiries[:0]
	idx.expired = make(map[meta.DataID]bool)
	for i := range idx.byNode {
		idx.byNode[i] = make(map[meta.DataID]struct{})
	}
	for _, b := range blocks {
		if b.Index == 0 {
			continue
		}
		idx.ApplyBlock(b)
	}
}

// ExpireUntil drops every assignment whose valid time has passed
// (StorageView semantics: strict `at < now`).
func (idx *Index) ExpireUntil(now time.Duration) {
	for len(idx.expiries) > 0 && idx.expiries[0].at < now {
		e := heap.Pop(&idx.expiries).(expiry)
		for _, p := range idx.providers[e.id] {
			delete(idx.byNode[p], e.id)
		}
		delete(idx.providers, e.id)
		delete(idx.sizes, e.id)
		idx.expired[e.id] = true
	}
}

// Providers returns the current storing nodes of an item in ascending
// order (nil if unknown or expired). Callers must not modify the slice.
func (idx *Index) Providers(id meta.DataID) []int { return idx.providers[id] }

// Size returns the item's advertised content size in bytes (0 if unknown).
func (idx *Index) Size(id meta.DataID) int { return idx.sizes[id] }

// Items returns the IDs currently assigned to node i, sorted.
func (idx *Index) Items(i int) []meta.DataID {
	if i < 0 || i >= idx.n {
		return nil
	}
	out := make([]meta.DataID, 0, len(idx.byNode[i]))
	for id := range idx.byNode[i] {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// Live returns every unexpired item ID, sorted.
func (idx *Index) Live() []meta.DataID {
	out := make([]meta.DataID, 0, len(idx.providers))
	for id := range idx.providers {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

// Deficit is one under-replicated item: fewer than Want of its assigned
// providers are considered up.
type Deficit struct {
	ID    meta.DataID
	Alive []int // assigned providers NOT marked dead, ascending
	Want  int
}

// Deficits returns every live item whose not-dead provider count is below
// floor (capped at the number of not-dead roster nodes, so a mostly-dead
// cluster does not report unreachable targets), sorted by ID. dead reports
// whether the churn detector considers a node dead; nil means all alive.
func (idx *Index) Deficits(now time.Duration, floor int, dead func(i int) bool) []Deficit {
	idx.ExpireUntil(now)
	upNodes := idx.n
	if dead != nil {
		upNodes = 0
		for i := 0; i < idx.n; i++ {
			if !dead(i) {
				upNodes++
			}
		}
	}
	want := floor
	if want > upNodes {
		want = upNodes
	}
	var out []Deficit
	for _, id := range idx.Live() {
		provs := idx.providers[id]
		alive := make([]int, 0, len(provs))
		for _, p := range provs {
			if dead == nil || !dead(p) {
				alive = append(alive, p)
			}
		}
		if len(alive) < want {
			out = append(out, Deficit{ID: id, Alive: alive, Want: want})
		}
	}
	return out
}

// Snapshot renders the observable index state — live assignments plus the
// expired set — in a canonical form. Two indexes that answer every query
// identically render identical snapshots; the differential test compares
// the incremental and rebuilt forms through it.
func (idx *Index) Snapshot() string {
	var b strings.Builder
	for _, id := range idx.Live() {
		fmt.Fprintf(&b, "live %s -> %v (size %d)\n", id, idx.providers[id], idx.sizes[id])
	}
	dead := make([]meta.DataID, 0, len(idx.expired))
	for id := range idx.expired {
		dead = append(dead, id)
	}
	sortIDs(dead)
	for _, id := range dead {
		fmt.Fprintf(&b, "expired %s\n", id)
	}
	return b.String()
}

func sortIDs(ids []meta.DataID) {
	sort.Slice(ids, func(a, b int) bool {
		for k := range ids[a] {
			if ids[a][k] != ids[b][k] {
				return ids[a][k] < ids[b][k]
			}
		}
		return false
	})
}

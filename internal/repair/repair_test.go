package repair

import (
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/meta"
)

func testItem(tag string, produced, validFor time.Duration, storing ...int) *meta.Item {
	return &meta.Item{
		ID:           meta.HashData([]byte(tag)),
		Type:         "Test/Repair",
		Produced:     produced,
		ValidFor:     validFor,
		DataSize:     len(tag),
		StoringNodes: storing,
	}
}

// --- index ------------------------------------------------------------------

func TestIndexApplyReplaceAndReverse(t *testing.T) {
	idx := NewIndex(4)
	a := testItem("a", 0, 0, 2, 0)
	idx.Apply(a)
	if got := idx.Providers(a.ID); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("providers = %v, want [0 2]", got)
	}
	if got := idx.Size(a.ID); got != 1 {
		t.Fatalf("size = %d, want 1", got)
	}
	if items := idx.Items(2); len(items) != 1 || items[0] != a.ID {
		t.Fatalf("node 2 items = %v", items)
	}
	// Re-announcement replaces the previous assignment entirely.
	moved := a.Clone()
	moved.StoringNodes = []int{1, 3}
	idx.Apply(moved)
	if got := idx.Providers(a.ID); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("providers after migration = %v, want [1 3]", got)
	}
	if items := idx.Items(0); len(items) != 0 {
		t.Fatalf("node 0 still indexed after migration: %v", items)
	}
	// Out-of-range storing nodes are dropped, like StorageView.
	weird := a.Clone()
	weird.StoringNodes = []int{-1, 2, 99}
	idx.Apply(weird)
	if got := idx.Providers(a.ID); len(got) != 1 || got[0] != 2 {
		t.Fatalf("providers with junk input = %v, want [2]", got)
	}
}

func TestIndexExpiry(t *testing.T) {
	idx := NewIndex(3)
	short := testItem("short", 0, 10*time.Second, 0, 1)
	forever := testItem("forever", 0, 0, 1, 2)
	idx.Apply(short)
	idx.Apply(forever)

	// Strict comparison: at exactly ExpiresAt the item is still live.
	idx.ExpireUntil(10 * time.Second)
	if idx.Providers(short.ID) == nil {
		t.Fatal("item expired at exactly ExpiresAt; expiry must be strict")
	}
	idx.ExpireUntil(10*time.Second + 1)
	if idx.Providers(short.ID) != nil {
		t.Fatal("item still live past its valid time")
	}
	if items := idx.Items(0); len(items) != 0 {
		t.Fatalf("node 0 items after expiry = %v", items)
	}
	if idx.Providers(forever.ID) == nil {
		t.Fatal("ValidFor==0 item must never expire")
	}
	// A stale re-announcement of an expired item is ignored.
	idx.Apply(short.Clone())
	if idx.Providers(short.ID) != nil {
		t.Fatal("expired item revived by a stale re-announcement")
	}
	if live := idx.Live(); len(live) != 1 || live[0] != forever.ID {
		t.Fatalf("live = %v, want only the forever item", live)
	}
}

func TestIndexRebuildMatchesIncremental(t *testing.T) {
	genesis := block.Genesis(1)
	items := []*meta.Item{
		testItem("x", 0, 5*time.Second, 0, 1),
		testItem("y", 0, 0, 1, 2),
		testItem("z", 2*time.Second, 20*time.Second, 0, 2),
	}
	migrated := items[1].Clone()
	migrated.StoringNodes = []int{0, 3}
	blocks := []*block.Block{
		genesis,
		{Index: 1, Items: items[:2]},
		{Index: 2, Items: []*meta.Item{items[2], migrated}},
	}
	now := 8 * time.Second

	inc := NewIndex(4)
	for _, b := range blocks[1:] {
		inc.ApplyBlock(b)
		inc.ExpireUntil(3 * time.Second) // interleaved partial expiry
	}
	inc.ExpireUntil(now)

	scratch := NewIndex(4)
	scratch.Rebuild(blocks)
	scratch.ExpireUntil(now)

	if inc.Snapshot() != scratch.Snapshot() {
		t.Fatalf("incremental and rebuilt snapshots differ:\n--- incremental\n%s--- rebuilt\n%s",
			inc.Snapshot(), scratch.Snapshot())
	}
	if inc.Providers(items[0].ID) != nil {
		t.Fatal("item x should have expired")
	}
	if got := inc.Providers(items[1].ID); len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("migrated item providers = %v, want [0 3]", got)
	}
}

func TestIndexDeficits(t *testing.T) {
	idx := NewIndex(4)
	a := testItem("a", 0, 0, 0, 1)
	b := testItem("b", 0, 0, 2, 3)
	single := testItem("s", 0, 0, 3)
	idx.Apply(a)
	idx.Apply(b)
	idx.Apply(single)

	dead := func(i int) bool { return i == 1 }
	defs := idx.Deficits(0, 2, dead)
	if len(defs) != 2 {
		t.Fatalf("deficits = %+v, want item a (dead provider) and item s (single replica)", defs)
	}
	for _, d := range defs {
		if d.ID == a.ID {
			if len(d.Alive) != 1 || d.Alive[0] != 0 {
				t.Fatalf("item a alive providers = %v, want [0]", d.Alive)
			}
		}
		if d.Want != 2 {
			t.Fatalf("want = %d with 3 up nodes, expected floor 2", d.Want)
		}
	}
	// With only one node up, the effective floor drops to 1: fully-dead
	// assignments still show, satisfiable ones don't.
	mostlyDead := func(i int) bool { return i != 3 }
	defs = idx.Deficits(0, 2, mostlyDead)
	if len(defs) != 1 || defs[0].ID != a.ID || defs[0].Want != 1 {
		t.Fatalf("deficits with one up node = %+v, want only item a at floor 1", defs)
	}
	if defs := idx.Deficits(0, 2, nil); len(defs) != 1 || defs[0].ID != single.ID {
		t.Fatalf("deficits with all alive = %+v, want only the single-replica item", defs)
	}
}

// --- churn detector ---------------------------------------------------------

func TestDetectorLifecycle(t *testing.T) {
	cfg := DetectorConfig{N: 3, Self: 0, SuspectAfter: 10 * time.Second, Hysteresis: 15 * time.Second}
	d := NewDetector(cfg, 0)

	// Boot grace: nobody is suspect before SuspectAfter elapses.
	if s := d.Status(1, 9*time.Second); s != Alive {
		t.Fatalf("status during boot grace = %v, want alive", s)
	}
	if s := d.Status(1, 10*time.Second); s != Suspect {
		t.Fatalf("status at SuspectAfter = %v, want suspect", s)
	}
	// Hysteresis: suspect does not become dead until the extra window passes.
	if s := d.Status(1, 24*time.Second); s != Suspect {
		t.Fatalf("status inside hysteresis = %v, want suspect", s)
	}
	if s := d.Status(1, 25*time.Second); s != Dead {
		t.Fatalf("status past hysteresis = %v, want dead", s)
	}
	// Fresh evidence revives immediately.
	d.Seen(1, 25*time.Second)
	if s := d.Status(1, 26*time.Second); s != Alive {
		t.Fatalf("status after Seen = %v, want alive", s)
	}
	// Self is always alive.
	if s := d.Status(0, time.Hour); s != Alive {
		t.Fatalf("self status = %v, want alive", s)
	}
	if got := d.CountDead(time.Hour); got != 2 {
		t.Fatalf("CountDead = %d, want 2 (everyone but self and the revived node... )", got)
	}
}

func TestDetectorFailuresForceSuspectNotDead(t *testing.T) {
	cfg := DetectorConfig{N: 2, Self: 0, SuspectAfter: time.Minute, Hysteresis: time.Minute, FailThreshold: 3}
	d := NewDetector(cfg, 0)
	d.Fail(1)
	d.Fail(1)
	if s := d.Status(1, time.Second); s != Alive {
		t.Fatalf("status below FailThreshold = %v, want alive", s)
	}
	d.Fail(1)
	if s := d.Status(1, time.Second); s != Suspect {
		t.Fatalf("status at FailThreshold = %v, want suspect", s)
	}
	// Failures alone can NEVER kill: Dead requires the full silence window.
	for i := 0; i < 100; i++ {
		d.Fail(1)
	}
	if s := d.Status(1, 90*time.Second); s != Suspect {
		t.Fatalf("status with failures inside silence window = %v, want suspect", s)
	}
	d.Seen(1, 90*time.Second)
	if s := d.Status(1, 91*time.Second); s != Alive {
		t.Fatalf("Seen must clear the failure count, got %v", s)
	}
}

func TestDetectorSeenMonotonic(t *testing.T) {
	d := NewDetector(DetectorConfig{N: 2, Self: 0, SuspectAfter: 10 * time.Second}, 0)
	d.Seen(1, 30*time.Second)
	// Replaying an old block must not rewind the liveness evidence.
	d.Seen(1, 5*time.Second)
	if s := d.Status(1, 35*time.Second); s != Alive {
		t.Fatalf("stale evidence rewound lastSeen: %v", s)
	}
	d.SetAddr(1, "node01")
	if d.Addr(1) != "node01" || d.Addr(0) != "" || d.Addr(7) != "" {
		t.Fatal("addr bookkeeping broken")
	}
}

// --- limiter ----------------------------------------------------------------

func TestLimiter(t *testing.T) {
	l := NewLimiter(1000, 2000, 0) // 1000 B/s, 2000 B burst, starts full
	if !l.Allow(0, 2000) {
		t.Fatal("full bucket refused its burst")
	}
	if l.Allow(0, 1) {
		t.Fatal("empty bucket allowed a send")
	}
	if !l.Allow(500*time.Millisecond, 500) {
		t.Fatal("refill at rate*elapsed did not cover 500 bytes after 500ms")
	}
	if l.Allow(500*time.Millisecond, 1) {
		t.Fatal("bucket drained twice at the same instant")
	}
	// Refill saturates at burst.
	if !l.Allow(time.Hour, 2000) {
		t.Fatal("bucket did not refill to burst")
	}
	if l.Allow(time.Hour, 1) {
		t.Fatal("bucket exceeded burst capacity")
	}
	unlimited := NewLimiter(0, 0, 0)
	if !unlimited.Allow(0, 1<<40) {
		t.Fatal("rate<=0 must disable limiting")
	}
}

// --- queue ------------------------------------------------------------------

func TestQueueDedupOrderingAndWorkers(t *testing.T) {
	q := NewQueue(QueueConfig{Workers: 1, Timeout: 10 * time.Second})
	a := meta.HashData([]byte("a"))
	b := meta.HashData([]byte("b"))
	if !q.Add(a, 0) || !q.Add(b, time.Second) {
		t.Fatal("fresh adds rejected")
	}
	if q.Add(a, 2*time.Second) {
		t.Fatal("duplicate add accepted (in-flight dedup broken)")
	}
	id, ok := q.Next(2 * time.Second)
	if !ok || id != a {
		t.Fatalf("Next = %v %v, want the earliest-added task", id.Short(), ok)
	}
	q.Launch(a, 2*time.Second)
	if _, ok := q.Next(2 * time.Second); ok {
		t.Fatal("Next handed out work beyond the worker bound")
	}
	lat, wasInflight := q.Done(a, 5*time.Second)
	if !wasInflight || lat != 3*time.Second {
		t.Fatalf("Done = (%v, %v), want (3s, true)", lat, wasInflight)
	}
	if id, ok := q.Next(2 * time.Second); !ok || id != b {
		t.Fatal("slot not released after Done")
	}
	// Done on a pending (not launched) task still removes it.
	if _, wasInflight := q.Done(b, 6*time.Second); wasInflight {
		t.Fatal("pending task reported as in flight")
	}
	if q.Len() != 0 || q.InFlight() != 0 {
		t.Fatalf("queue not empty: len=%d inflight=%d", q.Len(), q.InFlight())
	}
}

func TestQueueExpireBackoffAndGiveUp(t *testing.T) {
	q := NewQueue(QueueConfig{Workers: 2, MaxAttempts: 2, Backoff: time.Second, Timeout: 10 * time.Second})
	a := meta.HashData([]byte("a"))
	q.Add(a, 0)
	q.Launch(a, 0)
	if gaveUp := q.Expire(5 * time.Second); len(gaveUp) != 0 {
		t.Fatal("task expired before its deadline")
	}
	if gaveUp := q.Expire(10 * time.Second); len(gaveUp) != 0 {
		t.Fatal("first timeout must back off, not give up")
	}
	if q.Attempts(a) != 1 || q.InFlight() != 0 {
		t.Fatalf("attempts=%d inflight=%d after first timeout", q.Attempts(a), q.InFlight())
	}
	// Backoff: not eligible until now + Backoff<<attempts.
	if _, ok := q.Next(11 * time.Second); ok {
		t.Fatal("task relaunched inside its backoff window")
	}
	if _, ok := q.Next(12 * time.Second); !ok {
		t.Fatal("task not eligible after backoff")
	}
	q.Launch(a, 12*time.Second)
	// Second timeout exhausts MaxAttempts=2.
	gaveUp := q.Expire(40 * time.Second)
	if len(gaveUp) != 1 || gaveUp[0] != a {
		t.Fatalf("gaveUp = %v, want [a]", gaveUp)
	}
	if q.Len() != 0 {
		t.Fatal("given-up task still tracked")
	}
}

func TestQueueDefer(t *testing.T) {
	q := NewQueue(QueueConfig{Workers: 1, MaxAttempts: 2})
	a := meta.HashData([]byte("a"))
	q.Add(a, 0)
	if q.Defer(a, 5*time.Second) {
		t.Fatal("first defer gave up")
	}
	if _, ok := q.Next(4 * time.Second); ok {
		t.Fatal("deferred task eligible early")
	}
	if !q.Defer(a, 10*time.Second) {
		t.Fatal("second defer should exhaust MaxAttempts=2")
	}
	if q.Len() != 0 {
		t.Fatal("given-up task still tracked")
	}
}

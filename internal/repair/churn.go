package repair

import "time"

// Status is a churn verdict for one roster node.
type Status int

const (
	// Alive: recent liveness evidence exists.
	Alive Status = iota
	// Suspect: the node has been silent past the suspicion window, or its
	// transport reported repeated send failures. Suspects are excluded
	// from new placements but do not yet trigger re-replication.
	Suspect
	// Dead: silent past suspicion plus the hysteresis window. Only now do
	// the node's assignments count as lost replicas.
	Dead
)

func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	default:
		return "dead"
	}
}

// DetectorConfig parameterizes a Detector.
type DetectorConfig struct {
	// N is the roster size; Self is this node's index (always alive).
	N    int
	Self int
	// SuspectAfter is the silence that turns an alive node suspect.
	SuspectAfter time.Duration
	// Hysteresis is the ADDITIONAL silence (past SuspectAfter) before a
	// suspect counts dead. This is the storm brake: a transient partition
	// shorter than SuspectAfter+Hysteresis never triggers repair, because
	// repair acts only on Dead verdicts.
	Hysteresis time.Duration
	// FailThreshold is how many consecutive send failures force Suspect
	// immediately, without waiting out SuspectAfter (default 3).
	FailThreshold int
}

// Detector classifies roster nodes as alive, suspect or dead from the
// liveness evidence the transport feeds it. It is pure state: callers
// pass the current time into every method, and verdicts are a
// deterministic function of the reported evidence.
type Detector struct {
	cfg      DetectorConfig
	lastSeen []time.Duration
	failures []int
	addrs    []string
}

// NewDetector creates a detector; every node starts with liveness
// evidence at construction time, so a freshly booted node gets a full
// SuspectAfter grace period before anyone looks dead (no boot-time storm).
func NewDetector(cfg DetectorConfig, now time.Duration) *Detector {
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	d := &Detector{
		cfg:      cfg,
		lastSeen: make([]time.Duration, cfg.N),
		failures: make([]int, cfg.N),
		addrs:    make([]string, cfg.N),
	}
	for i := range d.lastSeen {
		d.lastSeen[i] = now
	}
	return d
}

// Seen records liveness evidence for node i at the given time (a
// heartbeat, any frame from its address, or a block it mined). Evidence
// timestamps are kept monotonic so replaying an old block cannot revive a
// node observed alive more recently than the block was mined.
func (d *Detector) Seen(i int, at time.Duration) {
	if i < 0 || i >= d.cfg.N {
		return
	}
	if at > d.lastSeen[i] {
		d.lastSeen[i] = at
	}
	d.failures[i] = 0
}

// LastSeen returns the newest evidence timestamp recorded for node i
// (zero for an out-of-range index). Probe-ack digests serialize these as
// ages so third-party evidence spreads without a global broadcast.
func (d *Detector) LastSeen(i int) time.Duration {
	if i < 0 || i >= d.cfg.N {
		return 0
	}
	return d.lastSeen[i]
}

// Fail records one failed send (or missing peer link) toward node i.
func (d *Detector) Fail(i int) {
	if i < 0 || i >= d.cfg.N {
		return
	}
	d.failures[i]++
}

// SetAddr binds node i to its transport address.
func (d *Detector) SetAddr(i int, addr string) {
	if i >= 0 && i < d.cfg.N {
		d.addrs[i] = addr
	}
}

// Addr returns node i's last known transport address ("" if unknown).
func (d *Detector) Addr(i int) string {
	if i < 0 || i >= d.cfg.N {
		return ""
	}
	return d.addrs[i]
}

// Status classifies node i at the given time. Send failures can only
// accelerate suspicion, never death: Dead strictly requires the full
// SuspectAfter+Hysteresis silence, so verdicts that trigger repair are
// always hysteresis-protected.
func (d *Detector) Status(i int, now time.Duration) Status {
	if i == d.cfg.Self {
		return Alive
	}
	if i < 0 || i >= d.cfg.N {
		return Dead
	}
	silence := now - d.lastSeen[i]
	if silence >= d.cfg.SuspectAfter+d.cfg.Hysteresis {
		return Dead
	}
	if silence >= d.cfg.SuspectAfter || d.failures[i] >= d.cfg.FailThreshold {
		return Suspect
	}
	return Alive
}

// CountDead returns how many roster nodes are currently dead.
func (d *Detector) CountDead(now time.Duration) int {
	n := 0
	for i := 0; i < d.cfg.N; i++ {
		if d.Status(i, now) == Dead {
			n++
		}
	}
	return n
}

package repair

import "time"

// Limiter is a token bucket over bytes with an injected clock, keeping
// repair wire traffic strictly bounded: tokens refill at Rate bytes per
// second up to Burst, and a frame may only go out if its full size fits
// the bucket now. Like everything in this package it never reads a real
// clock — callers pass now, so virtual-clock runs stay deterministic.
type Limiter struct {
	rate   float64 // bytes per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Duration
}

// NewLimiter creates a bucket refilling at rate bytes/second with the
// given burst capacity (the bucket starts full). rate <= 0 disables
// limiting; burst <= 0 defaults to one second's worth of tokens.
func NewLimiter(rate, burst int, now time.Duration) *Limiter {
	if burst <= 0 {
		burst = rate
	}
	return &Limiter{
		rate:   float64(rate),
		burst:  float64(burst),
		tokens: float64(burst),
		last:   now,
	}
}

// Allow reports whether n bytes may be sent now, consuming them if so.
func (l *Limiter) Allow(now time.Duration, n int) bool {
	if l.rate <= 0 {
		return true
	}
	l.refill(now)
	if float64(n) > l.tokens {
		return false
	}
	l.tokens -= float64(n)
	return true
}

func (l *Limiter) refill(now time.Duration) {
	if now <= l.last {
		return
	}
	l.tokens += l.rate * (now - l.last).Seconds()
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
}

package repair_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/block"
	"repro/internal/engine"
	"repro/internal/geo"
	"repro/internal/identity"
	"repro/internal/meta"
	"repro/internal/netsim"
	"repro/internal/pos"
	"repro/internal/repair"
)

// Differential test (DESIGN.md §11): the provider index maintained
// incrementally from engine OnAppend feeds must be bit-identical — same
// Snapshot() — to one rebuilt from scratch off the same chain, across
// fresh announcements, migrations/re-announcements, item expiry, suffix
// catch-up sync (AdoptSuffix) and whole-chain fork adoption (AdoptChain).
// It also cross-checks provider sets against the engine's own StorageView,
// the consensus-side source of truth for live assignments.

// diffCluster is a minimal multi-engine harness over one virtual clock
// (the engine package's test harness is not exported).
type diffCluster struct {
	idents   []*identity.Identity
	accounts []identity.Address
	engines  []*engine.Engine
	now      time.Duration
	onItem   func(node int, ev engine.AppendEvent)
}

func newDiffCluster(t *testing.T, n int) *diffCluster {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	c := &diffCluster{
		idents:   make([]*identity.Identity, n),
		accounts: make([]identity.Address, n),
		engines:  make([]*engine.Engine, n),
	}
	for i := 0; i < n; i++ {
		c.idents[i] = identity.GenerateSeeded(rng)
		c.accounts[i] = c.idents[i].Address()
	}
	for i := 0; i < n; i++ {
		c.engines[i] = c.newEngine(t, i)
	}
	return c
}

func (c *diffCluster) newEngine(t *testing.T, i int) *engine.Engine {
	t.Helper()
	topo := netsim.NewTopology(make([]geo.Point, len(c.accounts)), 1, nil)
	blockPlanner := alloc.NewPlanner(1)
	blockPlanner.MinReplicas = 1
	e, err := engine.New(engine.Config{
		Accounts:           c.accounts,
		Self:               i,
		PoS:                pos.Params{M: pos.DefaultM, T0: 60 * time.Second},
		Genesis:            block.Genesis(42),
		Now:                func() time.Duration { return c.now },
		ValidateClaims:     true,
		Topology:           func() *netsim.Topology { return topo },
		Planner:            alloc.NewPlanner(1),
		BlockPlanner:       blockPlanner,
		StorageCapacity:    250,
		InitialRecentDepth: 1,
		MigrateMaxPerBlock: 2,
		OnAppend: func(ev engine.AppendEvent) {
			if c.onItem != nil {
				c.onItem(i, ev)
			}
		},
	})
	if err != nil {
		t.Fatalf("engine %d: %v", i, err)
	}
	return e
}

// mineNext plays one round across the given engines (all receive the block).
func (c *diffCluster) mineNext(t *testing.T, members []int) *block.Block {
	t.Helper()
	winner := -1
	var best engine.Round
	for _, i := range members {
		r, ok := c.engines[i].NextRound()
		if !ok {
			continue
		}
		if winner < 0 || r.FireAt() < best.FireAt() {
			winner, best = i, r
		}
	}
	if winner < 0 {
		t.Fatal("no engine can mine")
	}
	if best.FireAt() > c.now {
		c.now = best.FireAt()
	}
	res, err := c.engines[winner].Mine(best)
	if err != nil {
		t.Fatalf("engine %d mine: %v", winner, err)
	}
	if res == nil {
		t.Fatal("round moved on unexpectedly")
	}
	for _, i := range members {
		if i == winner {
			continue
		}
		if _, err := c.engines[i].ReceiveBlock(res.Block); err != nil {
			t.Fatalf("engine %d receive: %v", i, err)
		}
	}
	return res.Block
}

func (c *diffCluster) item(producer int, content string, validFor time.Duration) *meta.Item {
	it := &meta.Item{
		ID:           meta.HashData([]byte(content)),
		Type:         "Test/Diff",
		Produced:     c.now,
		ValidFor:     validFor,
		LocationName: "Lab",
		DataSize:     len(content),
	}
	it.Sign(c.idents[producer])
	return it
}

// checkDifferential asserts the three-way agreement at time now:
// incremental index == scratch rebuild of the chain, and provider sets ==
// the engine StorageView's live assignments.
func checkDifferential(t *testing.T, phase string, e *engine.Engine, inc *repair.Index, now time.Duration) {
	t.Helper()
	n := len(e.View().NodeStates(now)) // also forces the view's lazy expiry
	scratch := repair.NewIndex(n)
	scratch.Rebuild(e.Chain().Blocks())
	inc.ExpireUntil(now)
	scratch.ExpireUntil(now)
	if got, want := inc.Snapshot(), scratch.Snapshot(); got != want {
		t.Fatalf("%s: incremental index diverged from scratch rebuild\nincremental:\n%s\nrebuild:\n%s", phase, got, want)
	}
	for _, id := range inc.Live() {
		va := append([]int(nil), e.View().Assignment(id)...)
		sort.Ints(va)
		ia := inc.Providers(id)
		if fmt.Sprint(va) != fmt.Sprint(ia) {
			t.Fatalf("%s: item %s providers %v != storage-view assignment %v", phase, id, ia, va)
		}
	}
}

func TestIndexDifferentialAcrossForkSyncExpiry(t *testing.T) {
	const n = 4
	c := newDiffCluster(t, n)
	all := []int{0, 1, 2, 3}

	// Engine 0's index is maintained incrementally from its OnAppend feed,
	// exactly as the live node does.
	inc := repair.NewIndex(n)
	c.onItem = func(node int, ev engine.AppendEvent) {
		if node == 0 {
			for _, ie := range ev.Items {
				inc.Apply(ie.Item)
			}
		}
	}

	// Phase 1: fresh announcements, mixed lifetimes.
	for k := 0; k < 6; k++ {
		validFor := time.Duration(0)
		if k%2 == 0 {
			validFor = 150 * time.Second // expires mid-test
		}
		it := c.item(k%n, fmt.Sprintf("item-%d", k), validFor)
		for _, i := range all {
			c.engines[i].AddMetadata(it)
		}
	}
	for k := 0; k < 3; k++ {
		c.mineNext(t, all)
	}
	checkDifferential(t, "announce", c.engines[0], inc, c.now)

	// Phase 2: expiry. Advance past the short-lived items' valid time and
	// keep mining (migration re-announcements of expired items must be
	// ignored identically on both paths).
	c.now += 300 * time.Second
	c.mineNext(t, all)
	checkDifferential(t, "expiry", c.engines[0], inc, c.now)

	// Phase 3: suffix catch-up sync. A fresh engine replays the first part
	// of the chain block-by-block (incremental feed), then adopts the rest
	// via AdoptSuffix — which runs no OnAppend hooks, so the index is
	// extended with ApplyBlock, the way livenode's sync path does.
	chain := c.engines[0].Chain().Blocks()
	lateIdx := repair.NewIndex(n)
	late := c.newEngine(t, 1)
	split := len(chain) - 2
	for _, b := range chain[1:split] {
		if _, err := late.ReceiveBlock(b); err != nil {
			t.Fatalf("late replay: %v", err)
		}
		lateIdx.ApplyBlock(b)
	}
	if _, ok := late.AdoptSuffix(chain[split:]); !ok {
		t.Fatal("late engine rejected catch-up suffix")
	}
	for _, b := range chain[split:] {
		lateIdx.ApplyBlock(b)
	}
	checkDifferential(t, "suffix-sync", late, lateIdx, c.now)

	// Phase 4: fork adoption. A disjoint group mines a longer chain from
	// the same genesis; engine 0 adopts it wholesale (AdoptChain), which
	// invalidates incremental state — the index is rebuilt, and the result
	// must match an index that followed the winning chain incrementally.
	f := newDiffCluster(t, n)
	f.now = c.now
	fIdx := repair.NewIndex(n)
	f.onItem = func(node int, ev engine.AppendEvent) {
		if node == 0 {
			for _, ie := range ev.Items {
				fIdx.Apply(ie.Item)
			}
		}
	}
	it := f.item(0, "fork-item", 0)
	for _, i := range all {
		f.engines[i].AddMetadata(it)
	}
	for len(f.engines[0].Chain().Blocks()) <= len(c.engines[0].Chain().Blocks()) {
		f.mineNext(t, all)
	}
	c.now = f.now
	if !c.engines[0].AdoptChain(f.engines[0].Chain().Blocks()) {
		t.Fatal("engine 0 refused the longer fork")
	}
	inc.Rebuild(c.engines[0].Chain().Blocks())
	checkDifferential(t, "fork-adopt", c.engines[0], inc, c.now)
	if got, want := inc.Snapshot(), fIdx.Snapshot(); got != want {
		t.Fatalf("fork adoption rebuild diverged from the winner's incremental index\nrebuild:\n%s\nincremental:\n%s", got, want)
	}
}

package engine

import (
	"container/heap"
	"time"

	"repro/internal/alloc"
	"repro/internal/block"
	"repro/internal/meta"
)

// StorageView is a node's chain-derived picture of every node's storage
// usage. Because all assignments (data items, block bodies, recent-block
// allowances) are recorded in blocks, every node independently derives the
// same view — this is the "current network situations (storage used of
// each node)" input the paper feeds into the placement problem.
//
// used(i) = live data assignments + block-body assignments
//   - min(recent depth, chain height): the recent FIFO holds at most
//     depth blocks and cannot hold more blocks than exist.
//
// Data assignments are tracked per item so a re-announcement (migration,
// Section VII) replaces the old assignment instead of double counting.
// Assignments expire with their item's valid time and are removed lazily
// against the simulation clock.
type StorageView struct {
	capacity     int
	initialDepth int
	depthCap     int // 0 = unlimited
	dataLive     []int
	blockBodies  []int
	recentDepth  []int
	height       uint64
	assignments  map[meta.DataID][]int
	expiries     expiryHeap
	expired      map[meta.DataID]bool
	mobility     []float64
}

// NewStorageView creates the view for n nodes of the given capacity and
// mobility range. initialDepth is every node's starting recent-cache
// allowance (the paper uses 1: every node caches at least the last block);
// depthCap bounds allowance growth (0 = unlimited).
func NewStorageView(n, capacity int, mobilityRange float64, initialDepth, depthCap int) *StorageView {
	if initialDepth < 1 {
		initialDepth = 1
	}
	v := &StorageView{
		capacity:     capacity,
		initialDepth: initialDepth,
		depthCap:     depthCap,
		dataLive:     make([]int, n),
		blockBodies:  make([]int, n),
		recentDepth:  make([]int, n),
		assignments:  make(map[meta.DataID][]int),
		expired:      make(map[meta.DataID]bool),
		mobility:     make([]float64, n),
	}
	for i := range v.recentDepth {
		v.recentDepth[i] = initialDepth
		v.mobility[i] = mobilityRange
	}
	return v
}

type expiry struct {
	at time.Duration
	id meta.DataID
}

type expiryHeap []expiry

func (h expiryHeap) Len() int           { return len(h) }
func (h expiryHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h expiryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x any)        { *h = append(*h, x.(expiry)) }
func (h *expiryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// ApplyBlock folds one adopted block's assignments into the view.
func (v *StorageView) ApplyBlock(b *block.Block) {
	for _, it := range b.Items {
		v.applyItem(it)
	}
	for _, n := range b.StoringNodes {
		if n >= 0 && n < len(v.blockBodies) {
			v.blockBodies[n]++
		}
	}
	for _, n := range b.RecentAssignees {
		if n >= 0 && n < len(v.recentDepth) {
			if v.depthCap == 0 || v.recentDepth[n] < v.depthCap {
				v.recentDepth[n]++
			}
		}
	}
	if b.Index > v.height {
		v.height = b.Index
	}
}

func (v *StorageView) applyItem(it *meta.Item) {
	if v.expired[it.ID] {
		return // re-announcement of an already-expired item: ignore
	}
	prev, known := v.assignments[it.ID]
	if known {
		// Migration: replace the previous assignment.
		for _, n := range prev {
			if n >= 0 && n < len(v.dataLive) && v.dataLive[n] > 0 {
				v.dataLive[n]--
			}
		}
	}
	assigned := make([]int, 0, len(it.StoringNodes))
	for _, n := range it.StoringNodes {
		if n >= 0 && n < len(v.dataLive) {
			v.dataLive[n]++
			assigned = append(assigned, n)
		}
	}
	v.assignments[it.ID] = assigned
	if !known && it.ValidFor > 0 {
		heap.Push(&v.expiries, expiry{at: it.ExpiresAt(), id: it.ID})
	}
}

// Clone returns an independent deep copy of the view. Snapshots for
// incremental fork adoption (AdoptSuffix) replay candidate suffixes on a
// clone so a rejected candidate leaves the live view untouched.
func (v *StorageView) Clone() *StorageView {
	cp := &StorageView{
		capacity:     v.capacity,
		initialDepth: v.initialDepth,
		depthCap:     v.depthCap,
		dataLive:     append([]int(nil), v.dataLive...),
		blockBodies:  append([]int(nil), v.blockBodies...),
		recentDepth:  append([]int(nil), v.recentDepth...),
		height:       v.height,
		assignments:  make(map[meta.DataID][]int, len(v.assignments)),
		expiries:     append(expiryHeap(nil), v.expiries...),
		expired:      make(map[meta.DataID]bool, len(v.expired)),
		mobility:     v.mobility,
	}
	for id, nodes := range v.assignments {
		cp.assignments[id] = append([]int(nil), nodes...)
	}
	for id := range v.expired {
		cp.expired[id] = true
	}
	return cp
}

// Rebuild replays a whole chain into a fresh view (fork adoption).
func (v *StorageView) Rebuild(blocks []*block.Block) {
	for i := range v.dataLive {
		v.dataLive[i] = 0
		v.blockBodies[i] = 0
		v.recentDepth[i] = v.initialDepth
	}
	v.height = 0
	v.expiries = v.expiries[:0]
	v.assignments = make(map[meta.DataID][]int)
	v.expired = make(map[meta.DataID]bool)
	for _, b := range blocks {
		if b.Index == 0 {
			continue
		}
		v.ApplyBlock(b)
	}
}

// expire drops data assignments past their valid time.
func (v *StorageView) expire(now time.Duration) {
	for len(v.expiries) > 0 && v.expiries[0].at < now {
		e := heap.Pop(&v.expiries).(expiry)
		for _, n := range v.assignments[e.id] {
			if n >= 0 && n < len(v.dataLive) && v.dataLive[n] > 0 {
				v.dataLive[n]--
			}
		}
		delete(v.assignments, e.id)
		v.expired[e.id] = true
	}
}

// Assignment returns the current storing nodes of an item (nil if unknown
// or expired). The returned slice must not be modified.
func (v *StorageView) Assignment(id meta.DataID) []int { return v.assignments[id] }

// Used returns node i's storage usage at the given time.
func (v *StorageView) Used(i int, now time.Duration) int {
	v.expire(now)
	recent := v.recentDepth[i]
	if h := int(v.height); recent > h && h >= 0 {
		if h == 0 {
			recent = 0
		} else {
			recent = h
		}
	}
	return v.dataLive[i] + v.blockBodies[i] + recent
}

// NodeStates builds the planner input for the current moment.
func (v *StorageView) NodeStates(now time.Duration) []alloc.NodeState {
	return v.NodeStatesInto(nil, now)
}

// NodeStatesInto is NodeStates writing into dst (grown as needed), so
// per-round callers can reuse one buffer instead of allocating a fresh
// slice every mining round.
func (v *StorageView) NodeStatesInto(dst []alloc.NodeState, now time.Duration) []alloc.NodeState {
	v.expire(now)
	if cap(dst) < len(v.dataLive) {
		dst = make([]alloc.NodeState, len(v.dataLive))
	}
	dst = dst[:len(v.dataLive)]
	for i := range dst {
		dst[i] = alloc.NodeState{
			Used:          v.Used(i, now),
			Capacity:      v.capacity,
			MobilityRange: v.mobility[i],
		}
	}
	return dst
}

// RecentDepth returns node i's recent-cache allowance.
func (v *StorageView) RecentDepth(i int) int { return v.recentDepth[i] }

package engine

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/meta"
	"repro/internal/ufl"
)

// testSolve opens the two facilities with the lowest finite opening cost
// (ties by index): with the harness's degenerate all-at-origin topology the
// greedy solver opens everything, which leaves repair nothing to do, so the
// repair tests pin placements to exactly the replica floor.
func testSolve(in *ufl.Instance) (*ufl.Solution, error) {
	type cand struct {
		i    int
		cost float64
	}
	var cands []cand
	for i := 0; i < in.NFacilities(); i++ {
		if !math.IsInf(in.OpenCost[i], 1) {
			cands = append(cands, cand{i, in.OpenCost[i]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].cost != cands[b].cost {
			return cands[a].cost < cands[b].cost
		}
		return cands[a].i < cands[b].i
	})
	if len(cands) > 2 {
		cands = cands[:2]
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("testSolve: every facility full")
	}
	open := make([]int, 0, len(cands))
	for _, c := range cands {
		open = append(open, c.i)
	}
	sort.Ints(open)
	return &ufl.Solution{Open: open}, nil
}

// repairCluster builds a cluster whose engines share one mutable liveness
// table, with repair packing enabled and item placement pinned to two
// replicas by testSolve.
func repairCluster(t *testing.T, n int, status []Liveness) *testCluster {
	t.Helper()
	return newTestCluster(t, n, func(i int, cfg *Config) {
		cfg.RepairMaxPerBlock = 2
		cfg.Planner.Solve = testSolve
		cfg.Liveness = func(j int) Liveness {
			if j < 0 || j >= len(status) {
				return LiveDead
			}
			return status[j]
		}
	})
}

// mineNextRes is mineNext but keeps the winner's MineResult.
func (c *testCluster) mineNextRes(t *testing.T) *MineResult {
	t.Helper()
	winner := -1
	var best Round
	for i, e := range c.engines {
		r, ok := e.NextRound()
		if !ok {
			continue
		}
		if winner < 0 || r.FireAt() < best.FireAt() {
			winner, best = i, r
		}
	}
	if winner < 0 {
		t.Fatal("no engine can mine")
	}
	c.now = best.FireAt()
	res, err := c.engines[winner].Mine(best)
	if err != nil {
		t.Fatalf("engine %d mine: %v", winner, err)
	}
	if res == nil {
		t.Fatalf("engine %d: round moved on unexpectedly", winner)
	}
	for i, e := range c.engines {
		if i == winner {
			continue
		}
		if _, err := e.ReceiveBlock(res.Block); err != nil {
			t.Fatalf("engine %d receive: %v", i, err)
		}
	}
	return res
}

func TestMineRepairsItemWithDeadProvider(t *testing.T) {
	status := make([]Liveness, 4)
	c := repairCluster(t, 4, status)
	it := c.item(0, "repair-me")
	for _, e := range c.engines {
		e.AddMetadata(it)
	}
	c.mineNextRes(t)
	li := c.engines[0].LiveItem(it.ID)
	if li == nil || len(li.StoringNodes) != 2 {
		t.Fatalf("item not placed on 2 nodes: %v", li)
	}
	dead, survivor := li.StoringNodes[0], li.StoringNodes[1]
	status[dead] = LiveDead

	res := c.mineNextRes(t)
	if res.Repairs != 1 {
		t.Fatalf("Repairs = %d, want 1", res.Repairs)
	}
	for _, e := range c.engines {
		got := e.LiveItem(it.ID).StoringNodes
		if len(got) != 2 {
			t.Fatalf("repaired set %v, want 2 replicas", got)
		}
		hasSurvivor := false
		for _, sn := range got {
			if sn == dead {
				t.Fatalf("repaired set %v still contains dead node %d", got, dead)
			}
			if sn == survivor {
				hasSurvivor = true
			}
		}
		if !hasSurvivor {
			t.Fatalf("repaired set %v dropped surviving provider %d", got, survivor)
		}
	}

	// At the floor again: the next block packs no further repairs.
	if res := c.mineNextRes(t); res.Repairs != 0 {
		t.Fatalf("Repairs = %d after recovery, want 0", res.Repairs)
	}
}

func TestMineNoRepairForSuspect(t *testing.T) {
	status := make([]Liveness, 4)
	c := repairCluster(t, 4, status)
	it := c.item(0, "suspect-held")
	for _, e := range c.engines {
		e.AddMetadata(it)
	}
	c.mineNextRes(t)
	before := c.engines[0].LiveItem(it.ID).StoringNodes
	// Hysteresis: a merely suspect provider keeps its replica counted.
	status[before[0]] = LiveSuspect
	res := c.mineNextRes(t)
	if res.Repairs != 0 {
		t.Fatalf("Repairs = %d for suspect provider, want 0", res.Repairs)
	}
	after := c.engines[0].LiveItem(it.ID).StoringNodes
	if !sameSet(before, after) {
		t.Fatalf("storing set changed %v -> %v without a dead provider", before, after)
	}
}

func TestPickRepairsFloorCapsAtAliveCount(t *testing.T) {
	status := make([]Liveness, 3)
	c := repairCluster(t, 3, status)
	e := c.engines[0]
	it := c.item(0, "last-replica")
	it.StoringNodes = []int{0}
	e.liveItems[it.ID] = it
	// Only node 0 is alive: the effective floor drops to 1, so the single
	// surviving replica is enough and no futile repair is packed.
	status[1], status[2] = LiveDead, LiveDead
	states := []alloc.NodeState{
		{Used: 1, Capacity: 250},
		{Used: 1, Capacity: 250},
		{Used: 1, Capacity: 250},
	}
	if out := e.pickRepairs(e.cfg.Topology(), states, c.now, nil); len(out) != 0 {
		t.Fatalf("packed %d repairs with floor capped at 1 alive node", len(out))
	}
}

func TestPickRepairsSkipsExpiredAndAnnounced(t *testing.T) {
	status := make([]Liveness, 4)
	c := repairCluster(t, 4, status)
	e := c.engines[0]
	gone := c.item(0, "expired")
	gone.ValidFor = time.Second
	gone.StoringNodes = []int{1}
	e.liveItems[gone.ID] = gone
	held := c.item(0, "already-in-block")
	held.StoringNodes = []int{1}
	e.liveItems[held.ID] = held
	needy := c.item(0, "actually-needs-repair")
	needy.StoringNodes = []int{1}
	e.liveItems[needy.ID] = needy
	status[1] = LiveDead
	c.now = gone.Produced + time.Hour
	states := make([]alloc.NodeState, 4)
	for i := range states {
		states[i] = alloc.NodeState{Used: 1, Capacity: 250}
	}
	out := e.pickRepairs(e.cfg.Topology(), states, c.now,
		map[meta.DataID]bool{held.ID: true})
	if len(out) != 1 || out[0].ID != needy.ID {
		t.Fatalf("pickRepairs = %v, want exactly the non-skipped live item", out)
	}
	for _, sn := range out[0].StoringNodes {
		if sn == 1 {
			t.Fatalf("repair set %v kept dead node 1", out[0].StoringNodes)
		}
	}
}

func TestPickMigrationsSkipsChurn(t *testing.T) {
	status := make([]Liveness, 3)
	c := newTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.MigrateMaxPerBlock = 2
		cfg.Liveness = func(j int) Liveness { return status[j] }
	})
	e := c.engines[0]
	it := c.item(0, "drifting-under-churn")
	it.StoringNodes = []int{0}
	e.liveItems[it.ID] = it
	drifted := []alloc.NodeState{
		{Used: 249, Capacity: 250},
		{Used: 1, Capacity: 250},
		{Used: 1, Capacity: 250},
	}
	states := func() []alloc.NodeState { return append([]alloc.NodeState(nil), drifted...) }

	// Baseline: with everyone alive the drifted item migrates.
	if out := e.pickMigrations(e.cfg.Topology(), states(), c.now); len(out) != 1 {
		t.Fatalf("baseline migrations = %d, want 1", len(out))
	}

	// A dead storing node makes the item the repair path's problem.
	status[0] = LiveDead
	e.migrateCursor = 0
	if out := e.pickMigrations(e.cfg.Topology(), states(), c.now); len(out) != 0 {
		t.Fatalf("migrated %d items that have a dead provider", len(out))
	}

	// A churn-dead (or suspect) node in the candidate TARGET set blocks the
	// migration: don't move data onto nodes that are failing.
	status[0] = LiveAlive
	status[1], status[2] = LiveDead, LiveSuspect
	e.migrateCursor = 0
	if out := e.pickMigrations(e.cfg.Topology(), states(), c.now); len(out) != 0 {
		t.Fatalf("migrated %d items onto churn-dead/suspect targets", len(out))
	}
}

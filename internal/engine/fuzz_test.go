package engine

import (
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/pos"
)

// FuzzAdoptChain feeds AdoptChain mutated fork candidates — truncated,
// reordered, duplicated-height and claim-forged chains — and asserts the
// two safety properties: the engine never panics, and it never adopts a
// chain that does not replay cleanly (structural validity plus PoS claim
// validity). The victim's own chain must stay fully valid after every
// attempt, adopted or refused.
func FuzzAdoptChain(f *testing.F) {
	f.Add([]byte{})           // unmutated candidate: must adopt
	f.Add([]byte{0, 3})       // truncate
	f.Add([]byte{1, 2, 2, 0}) // duplicate a height, swap adjacent
	f.Add([]byte{3, 1, 3, 9}) // stale-hash field tampering
	f.Add([]byte{4, 2, 4, 5}) // resealed forged claims
	f.Add([]byte{5, 7, 5, 1}) // forged-claim extensions
	f.Add([]byte{2, 0, 1, 6, 0, 255, 5, 42})

	// One valid 6-block donor chain, shared (read-only) by all inputs.
	donor := newTestCluster(f, 3, nil)
	it := donor.item(0, "fuzz payload")
	for _, e := range donor.engines {
		e.AddMetadata(it)
	}
	for r := 0; r < 6; r++ {
		donor.mineNext(f)
	}
	base := donor.engines[0].Chain().Blocks()
	accounts := donor.accounts

	f.Fuzz(func(t *testing.T, data []byte) {
		victim := newTestCluster(t, 3, nil).engines[0]

		blocks := append([]*block.Block(nil), base...)
		mutated := false
		for i := 0; i+1 < len(data) && len(blocks) > 0; i += 2 {
			op, arg := int(data[i])%6, int(data[i+1])
			switch op {
			case 0: // truncate
				k := 1 + arg%len(blocks)
				if k < len(blocks) {
					blocks, mutated = blocks[:k], true
				}
			case 1: // duplicate the block at one height
				k := arg % len(blocks)
				out := make([]*block.Block, 0, len(blocks)+1)
				out = append(out, blocks[:k+1]...)
				out = append(out, blocks[k])
				out = append(out, blocks[k+1:]...)
				blocks, mutated = out, true
			case 2: // swap two adjacent blocks
				if len(blocks) >= 2 {
					k := arg % (len(blocks) - 1)
					blocks[k], blocks[k+1] = blocks[k+1], blocks[k]
					mutated = true
				}
			case 3: // tamper a field without resealing (stale hash)
				k := arg % len(blocks)
				cp := blocks[k].Clone()
				switch arg % 4 {
				case 0:
					cp.MinedAfter++
				case 1:
					cp.B++
				case 2:
					cp.Timestamp += time.Second
				case 3:
					cp.PrevHash[0] ^= 0xff
				}
				blocks[k] = cp
				mutated = true
			case 4: // tamper and reseal: valid hash, forged PoS claim
				k := arg % len(blocks)
				cp := blocks[k].Clone()
				cp.MinedAfter += uint64(arg%5) + 1
				cp.Seal()
				blocks[k] = cp
				mutated = true
			case 5: // extend with a fabricated block claiming a bogus round
				prev := blocks[len(blocks)-1]
				nb := block.NewBuilder(prev, accounts[arg%len(accounts)],
					prev.Timestamp+time.Second, uint64(arg%100)+1, float64(arg)).Seal()
				blocks = append(blocks, nb)
				mutated = true
			}
		}

		adopted := victim.AdoptChain(blocks)

		if !mutated && !adopted {
			t.Fatal("unmutated valid chain refused")
		}
		if adopted {
			snap := victim.Chain().Blocks()
			if len(snap) != len(blocks) {
				t.Fatalf("adopted %d blocks of a %d-block candidate", len(snap), len(blocks))
			}
			for i := range snap {
				if snap[i].Hash != blocks[i].Hash {
					t.Fatalf("adopted chain differs from candidate at height %d", i)
				}
			}
		}
		// Whatever happened, the victim's chain must replay cleanly.
		snap := victim.Chain().Blocks()
		if err := chain.Validate(snap); err != nil {
			t.Fatalf("victim chain structurally invalid: %v", err)
		}
		scratch := pos.NewLedger(accounts)
		for i := 1; i < len(snap); i++ {
			if err := victim.cfg.PoS.ValidateClaim(snap[i-1], snap[i], scratch); err != nil {
				t.Fatalf("victim chain claim-invalid at height %d: %v", i, err)
			}
			if err := scratch.ApplyBlock(snap[i]); err != nil {
				t.Fatalf("victim ledger replay at height %d: %v", i, err)
			}
		}
		// And the live ledger must match that replay exactly.
		for k := range accounts {
			if victim.Ledger().S(k) != scratch.S(k) || victim.Ledger().Q(k) != scratch.Q(k) {
				t.Fatalf("victim ledger drifts from chain at account %d", k)
			}
		}
	})
}

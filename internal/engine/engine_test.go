package engine

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/block"
	"repro/internal/geo"
	"repro/internal/identity"
	"repro/internal/meta"
	"repro/internal/netsim"
	"repro/internal/pos"
)

// testCluster drives n engines over one shared virtual clock and a 1-hop
// clique topology — the pure-logic equivalent of a fully meshed network.
type testCluster struct {
	idents   []*identity.Identity
	accounts []identity.Address
	engines  []*Engine
	now      time.Duration
	events   [][]AppendEvent
}

func newTestCluster(t testing.TB, n int, mutate func(i int, cfg *Config)) *testCluster {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	c := &testCluster{
		idents:   make([]*identity.Identity, n),
		accounts: make([]identity.Address, n),
		engines:  make([]*Engine, n),
		events:   make([][]AppendEvent, n),
	}
	for i := 0; i < n; i++ {
		c.idents[i] = identity.GenerateSeeded(rng)
		c.accounts[i] = c.idents[i].Address()
	}
	topo := netsim.NewTopology(make([]geo.Point, n), 1, nil)
	for i := 0; i < n; i++ {
		blockPlanner := alloc.NewPlanner(1)
		blockPlanner.MinReplicas = 1
		cfg := Config{
			Accounts:           c.accounts,
			Self:               i,
			PoS:                pos.Params{M: pos.DefaultM, T0: 60 * time.Second},
			Genesis:            block.Genesis(42),
			Now:                func() time.Duration { return c.now },
			ValidateClaims:     true,
			Topology:           func() *netsim.Topology { return topo },
			Planner:            alloc.NewPlanner(1),
			BlockPlanner:       blockPlanner,
			StorageCapacity:    250,
			InitialRecentDepth: 1,
		}
		idx := i
		cfg.OnAppend = func(ev AppendEvent) { c.events[idx] = append(c.events[idx], ev) }
		if mutate != nil {
			mutate(i, &cfg)
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
		c.engines[i] = e
	}
	return c
}

// mineNext plays one full round: the engine with the earliest winning time
// mines at exactly that time and everyone else adopts the block.
func (c *testCluster) mineNext(t testing.TB) *block.Block {
	t.Helper()
	winner := -1
	var best Round
	for i, e := range c.engines {
		r, ok := e.NextRound()
		if !ok {
			continue
		}
		if winner < 0 || r.FireAt() < best.FireAt() {
			winner, best = i, r
		}
	}
	if winner < 0 {
		t.Fatal("no engine can mine")
	}
	c.now = best.FireAt()
	res, err := c.engines[winner].Mine(best)
	if err != nil {
		t.Fatalf("engine %d mine: %v", winner, err)
	}
	if res == nil {
		t.Fatalf("engine %d: round moved on unexpectedly", winner)
	}
	for i, e := range c.engines {
		if i == winner {
			continue
		}
		if _, err := e.ReceiveBlock(res.Block); err != nil {
			t.Fatalf("engine %d receive: %v", i, err)
		}
	}
	return res.Block
}

func (c *testCluster) item(producer int, content string) *meta.Item {
	it := &meta.Item{
		ID:           meta.HashData([]byte(content)),
		Type:         "Test/Unit",
		Produced:     c.now,
		LocationName: "Lab",
		DataSize:     len(content),
	}
	it.Sign(c.idents[producer])
	return it
}

func TestNewConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	id := identity.GenerateSeeded(rng)
	topo := netsim.NewTopology(make([]geo.Point, 1), 1, nil)
	base := Config{
		Accounts:        []identity.Address{id.Address()},
		Self:            0,
		PoS:             pos.DefaultParams(),
		Genesis:         block.Genesis(42),
		Now:             func() time.Duration { return 0 },
		Topology:        func() *netsim.Topology { return topo },
		Planner:         alloc.NewPlanner(1),
		BlockPlanner:    alloc.NewPlanner(1),
		StorageCapacity: 10,
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty roster", func(c *Config) { c.Accounts = nil }},
		{"self out of range", func(c *Config) { c.Self = 7 }},
		{"bad pos params", func(c *Config) { c.PoS = pos.Params{} }},
		{"missing genesis", func(c *Config) { c.Genesis = nil }},
		{"missing clock", func(c *Config) { c.Now = nil }},
		{"missing topology", func(c *Config) { c.Topology = nil }},
		{"missing planner", func(c *Config) { c.Planner = nil }},
		{"random placement without rand", func(c *Config) { c.RandomPlacement = true }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted a broken config", tc.name)
		}
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestMineAndReceiveConvergence(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	it := c.item(0, "sensor reading 1")
	for _, e := range c.engines {
		if !e.AddMetadata(it) {
			t.Fatal("fresh metadata rejected")
		}
	}
	var packed *block.Block
	for r := 0; r < 5; r++ {
		b := c.mineNext(t)
		if len(b.Items) > 0 && packed == nil {
			packed = b
		}
	}
	if packed == nil {
		t.Fatal("item never packed into a block")
	}
	tip := c.engines[0].Tip()
	for i, e := range c.engines {
		if e.Tip().Hash != tip.Hash {
			t.Fatalf("engine %d tip diverges", i)
		}
		if e.Height() != 5 {
			t.Fatalf("engine %d height = %d, want 5", i, e.Height())
		}
		if !e.OnChain(it.ID) {
			t.Fatalf("engine %d lost the packed item", i)
		}
		if e.PoolLen() != 0 {
			t.Fatalf("engine %d pool not drained: %d", i, e.PoolLen())
		}
		live := e.LiveItem(it.ID)
		if live == nil || len(live.StoringNodes) < 2 {
			t.Fatalf("engine %d live item %v, want >= 2 replicas", i, live)
		}
		// Ledger must match an independent replay of the same chain.
		ref := pos.NewLedger(c.accounts)
		for _, b := range e.Chain().Blocks() {
			if b.Index == 0 {
				continue
			}
			if err := ref.ApplyBlock(b); err != nil {
				t.Fatal(err)
			}
		}
		for k := range c.accounts {
			if e.Ledger().S(k) != ref.S(k) || e.Ledger().Q(k) != ref.Q(k) {
				t.Fatalf("engine %d ledger drifts from chain at account %d", i, k)
			}
		}
	}
	// Every engine saw one append event per block, with consistent flags.
	for i, evs := range c.events {
		if len(evs) != 5 {
			t.Fatalf("engine %d: %d append events, want 5", i, len(evs))
		}
		for _, ev := range evs {
			for _, ie := range ev.Items {
				if ie.Item.ID != it.ID || !ie.First || ie.Prev != nil {
					t.Fatalf("engine %d: unexpected item event %+v", i, ie)
				}
				want := false
				for _, sn := range ie.Item.StoringNodes {
					if sn == i {
						want = true
					}
				}
				if ie.AssignedToSelf != want {
					t.Fatalf("engine %d: AssignedToSelf = %v, storing %v", i, ie.AssignedToSelf, ie.Item.StoringNodes)
				}
			}
		}
	}
}

func TestAddMetadataRejectsForgedAndDuplicate(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	e := c.engines[0]

	forged := c.item(1, "forged")
	forged.DataSize++ // breaks the producer signature
	if e.AddMetadata(forged) {
		t.Fatal("forged metadata accepted")
	}

	it := c.item(1, "legit")
	if !e.AddMetadata(it) {
		t.Fatal("fresh metadata rejected")
	}
	if e.AddMetadata(it) {
		t.Fatal("duplicate metadata accepted")
	}
	if e.PoolLen() != 1 {
		t.Fatalf("pool = %d, want 1", e.PoolLen())
	}

	// Once on-chain, re-announcements of the same ID stay out of the pool.
	for _, other := range c.engines[1:] {
		other.AddMetadata(it)
	}
	for e.PoolLen() > 0 {
		c.mineNext(t)
	}
	if e.AddMetadata(it) {
		t.Fatal("on-chain metadata re-entered the pool")
	}
}

func TestPreAppendRejectsFutureTimestamp(t *testing.T) {
	// Two engines with separate clocks: the receiver's stays at zero, so
	// any mined block is from its future.
	rng := rand.New(rand.NewSource(1))
	idents := []*identity.Identity{identity.GenerateSeeded(rng), identity.GenerateSeeded(rng)}
	accounts := []identity.Address{idents[0].Address(), idents[1].Address()}
	topo := netsim.NewTopology(make([]geo.Point, 2), 1, nil)
	mk := func(self int, now *time.Duration) *Engine {
		bp := alloc.NewPlanner(1)
		bp.MinReplicas = 1
		e, err := New(Config{
			Accounts:        accounts,
			Self:            self,
			PoS:             pos.Params{M: pos.DefaultM, T0: 60 * time.Second},
			Genesis:         block.Genesis(42),
			Now:             func() time.Duration { return *now },
			ValidateClaims:  true,
			Topology:        func() *netsim.Topology { return topo },
			Planner:         alloc.NewPlanner(1),
			BlockPlanner:    bp,
			StorageCapacity: 50,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	minerNow, receiverNow := time.Duration(0), time.Duration(0)
	miner := mk(0, &minerNow)
	receiver := mk(1, &receiverNow)
	r, ok := miner.NextRound()
	if !ok {
		t.Fatal("miner cannot mine")
	}
	minerNow = r.FireAt()
	res, err := miner.Mine(r)
	if err != nil || res == nil {
		t.Fatalf("mine: %v, %v", res, err)
	}
	if _, err := receiver.ReceiveBlock(res.Block); err == nil || !strings.Contains(err.Error(), "future") {
		t.Fatalf("future-dated block accepted (err = %v)", err)
	}
	receiverNow = minerNow
	if _, err := receiver.ReceiveBlock(res.Block); err != nil {
		t.Fatalf("same block at the right time rejected: %v", err)
	}
}

func TestNextRoundMatchesPos(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	for i, e := range c.engines {
		r, ok := e.NextRound()
		wantT, wantB := e.cfg.PoS.Round(e.Tip(), c.accounts[i], e.Ledger())
		if !ok || r.T != wantT || r.B != wantB {
			t.Fatalf("engine %d: NextRound = (%d, %v, ok=%v), pos.Round = (%d, %v)", i, r.T, r.B, ok, wantT, wantB)
		}
		if r.PrevHash != e.Tip().Hash || r.FireAt() != e.Tip().Timestamp+time.Duration(r.T)*time.Second {
			t.Fatalf("engine %d: round anchors wrong", i)
		}
	}
}

func TestCustomRound(t *testing.T) {
	c := newTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.ValidateClaims = false
		if i == 0 {
			cfg.CustomRound = func(prev *block.Block) (uint64, float64) { return 7, 0 }
		} else {
			cfg.CustomRound = func(prev *block.Block) (uint64, float64) { return pos.NeverMines, 0 }
		}
	})
	r, ok := c.engines[0].NextRound()
	if !ok || r.T != 7 {
		t.Fatalf("custom round = (%d, ok=%v), want (7, true)", r.T, ok)
	}
	if _, ok := c.engines[1].NextRound(); ok {
		t.Fatal("NeverMines round reported ok")
	}
}

func TestMineStaleRound(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	r0, _ := c.engines[0].NextRound()
	c.mineNext(t) // some engine wins; engine 0's captured round is now stale
	res, err := c.engines[0].Mine(r0)
	if err != nil {
		t.Fatalf("stale round: %v", err)
	}
	if res != nil {
		t.Fatal("stale round still produced a block")
	}
}

func TestAdoptChain(t *testing.T) {
	c := newTestCluster(t, 3, nil)
	it := c.item(0, "payload")
	for _, e := range c.engines {
		e.AddMetadata(it)
	}
	for r := 0; r < 4; r++ {
		c.mineNext(t)
	}
	donor := c.engines[0]
	chainBlocks := donor.Chain().Blocks()

	fresh := newTestCluster(t, 3, nil)
	fresh.now = c.now
	victim := fresh.engines[0]
	victim.AddMetadata(it) // must be pruned on adoption
	if !victim.AdoptChain(chainBlocks) {
		t.Fatal("valid longer chain refused")
	}
	if victim.Tip().Hash != donor.Tip().Hash {
		t.Fatal("tip mismatch after adoption")
	}
	if victim.PoolLen() != 0 {
		t.Fatal("pool kept an item the adopted chain already carries")
	}
	if !victim.OnChain(it.ID) || victim.LiveItem(it.ID) == nil {
		t.Fatal("live-item index not rebuilt")
	}
	for k := range fresh.accounts {
		if victim.Ledger().S(k) != donor.Ledger().S(k) || victim.Ledger().Q(k) != donor.Ledger().Q(k) {
			t.Fatalf("ledger not rebuilt at account %d", k)
		}
	}

	// Same-length chain: refused (strictly-longer rule).
	if victim.AdoptChain(chainBlocks) {
		t.Fatal("equal-length chain adopted")
	}
	// Truncation: refused.
	if victim.AdoptChain(chainBlocks[:3]) {
		t.Fatal("shorter chain adopted")
	}
	// Forged claim: extend with a block whose amendment B is wrong.
	tip := donor.Tip()
	forged := block.NewBuilder(tip, fresh.accounts[1], c.now+time.Second, 1, 12345).Seal()
	if victim.AdoptChain(append(append([]*block.Block(nil), chainBlocks...), forged)) {
		t.Fatal("chain with forged PoS claim adopted")
	}
	if victim.Tip().Hash != donor.Tip().Hash {
		t.Fatal("failed adoption mutated the chain")
	}
}

func TestAdoptChainCheckpointFinality(t *testing.T) {
	c := newTestCluster(t, 3, func(i int, cfg *Config) { cfg.CheckpointInterval = 2 })
	for r := 0; r < 4; r++ {
		c.mineNext(t)
	}
	e := c.engines[0]
	if got := e.LastCheckpoint(); got != 4 {
		t.Fatalf("LastCheckpoint = %d, want 4", got)
	}
	// A longer candidate that rewrites history below the checkpoint: build
	// it from the height-2 prefix with fresh blocks.
	prefix := append([]*block.Block(nil), e.Chain().Blocks()[:3]...)
	led := pos.NewLedger(c.accounts)
	for _, b := range prefix[1:] {
		if err := led.ApplyBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	candidate := prefix
	for len(candidate) < 7 {
		prev := candidate[len(candidate)-1]
		tt, bv := c.engines[1].cfg.PoS.Round(prev, c.accounts[1], led)
		nb := block.NewBuilder(prev, c.accounts[1], prev.Timestamp+time.Duration(tt)*time.Second, tt, bv).Seal()
		if err := led.ApplyBlock(nb); err != nil {
			t.Fatal(err)
		}
		candidate = append(candidate, nb)
	}
	c.now += 100000 * time.Second // keep the candidate out of the future
	if e.AdoptChain(candidate) {
		t.Fatal("chain rewriting finalized history adopted")
	}
}

func TestPickMigrationsReassignsDriftedItem(t *testing.T) {
	c := newTestCluster(t, 3, func(i int, cfg *Config) { cfg.MigrateMaxPerBlock = 2 })
	e := c.engines[0]
	it := c.item(0, "drifted")
	// Fake an on-chain item stuck on a node that is now nearly full.
	it.StoringNodes = []int{0}
	e.liveItems[it.ID] = it
	states := []alloc.NodeState{
		{Used: 249, Capacity: 250},
		{Used: 1, Capacity: 250},
		{Used: 1, Capacity: 250},
	}
	out := e.pickMigrations(e.cfg.Topology(), states, c.now)
	if len(out) != 1 {
		t.Fatalf("migrations = %d, want 1", len(out))
	}
	if sameSet(out[0].StoringNodes, it.StoringNodes) {
		t.Fatal("migration kept the drifted assignment")
	}
	// Balanced states: nothing drifts, nothing migrates.
	for i := range states {
		states[i].Used = 1
	}
	e.migrateCursor = 0
	if out := e.pickMigrations(e.cfg.Topology(), states, c.now); len(out) != 0 {
		t.Fatalf("balanced cluster migrated %d items", len(out))
	}
}

func TestLastCheckpointDisabled(t *testing.T) {
	c := newTestCluster(t, 2, nil)
	c.mineNext(t)
	if got := c.engines[0].LastCheckpoint(); got != 0 {
		t.Fatalf("LastCheckpoint = %d with finality disabled, want 0", got)
	}
}

package engine_test

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/netsim"
)

// TestDifferentialSimVsLive drives the same 5-node scenario through both
// engine adapters — the discrete-event simulation (internal/core) and the
// live node over the in-memory transport (internal/livenode via the chaos
// harness) — with identical engine inputs: same roster key pairs, same
// genesis seed, same PoS parameters, same storage capacity, a 1-hop
// clique topology and instant message delivery on both sides. Because all
// consensus decisions live in the shared engine, the two stacks must
// produce bit-identical chains: same tip hash and the same per-account
// S_i/Q_i ledgers.
func TestDifferentialSimVsLive(t *testing.T) {
	const (
		seed    = int64(1)
		n       = 5
		horizon = 20 * time.Minute
	)

	cfg := core.DefaultConfig(n)
	cfg.Seed = seed
	cfg.CommRange = 1000 // every pair 1 hop — the live mesh's clique
	cfg.MobilityRange = 0
	cfg.MobilityEpoch = 0
	cfg.DataRatePerMin = 0 // workload is injected manually below
	cfg.RequesterFraction = 0
	cfg.Net = netsim.Config{} // instant delivery, like the fault-free memnet
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cluster, err := chaos.NewCluster(chaos.Options{
		N:               n,
		Seed:            seed,
		T0:              cfg.PoS.T0,
		Identities:      sys.Identities(), // same key pairs as the sim roster
		GenesisSeed:     seed,             // sim genesis is block.Genesis(cfg.Seed)
		StorageCapacity: cfg.StorageCapacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.ConnectAll(); err != nil {
		t.Fatal(err)
	}

	// One identical signed data item through both stacks: Publish builds
	// and signs it on the live side; the clone (ed25519 signing is
	// deterministic, so the bytes match) is injected into the simulation.
	liveItem, err := cluster.Node(0).Publish([]byte("differential payload"), "Test/Differential", "Lab")
	if err != nil {
		t.Fatal(err)
	}
	sys.InjectItem(0, liveItem.Clone())

	if err := sys.Run(horizon); err != nil {
		t.Fatal(err)
	}
	// The live clock already moved a little during connection handshakes;
	// advance to the same absolute virtual instant the sim stopped at.
	cluster.Run(cluster.Epoch.Add(horizon).Sub(cluster.Clock.Now()))

	simTip := sys.Node(0).Chain().Tip()
	liveTip := cluster.Node(0).Tip()
	if simTip.Index < 5 {
		t.Fatalf("sim mined only %d blocks in %v — scenario too short to be meaningful", simTip.Index, horizon)
	}
	if liveTip.Index != simTip.Index {
		t.Fatalf("heights diverge: sim %d, live %d", simTip.Index, liveTip.Index)
	}
	if liveTip.Hash != simTip.Hash {
		t.Fatalf("tip hashes diverge at height %d: sim %x, live %x", simTip.Index, simTip.Hash[:8], liveTip.Hash[:8])
	}
	if !cluster.Node(0).HasItemOnChain(liveItem.ID) {
		t.Fatal("published item never reached the chain")
	}

	simLedger := sys.Node(0).Engine().Ledger()
	liveS, liveQ := cluster.Node(0).LedgerStats()
	for i := 0; i < n; i++ {
		if liveS[i] != simLedger.S(i) {
			t.Errorf("S_%d diverges: sim %d, live %d", i, simLedger.S(i), liveS[i])
		}
		if liveQ[i] != simLedger.Q(i) {
			t.Errorf("Q_%d diverges: sim %d, live %d", i, simLedger.Q(i), liveQ[i])
		}
	}

	// Every live node (not just node 0) converged on the same chain.
	for i := 1; i < n; i++ {
		if tip := cluster.Node(i).Tip(); tip.Hash != liveTip.Hash {
			t.Errorf("live node %d tip diverges from node 0", i)
		}
	}
	// And every sim node too.
	for i := 1; i < n; i++ {
		if tip := sys.Node(i).Chain().Tip(); tip.Hash != simTip.Hash {
			t.Errorf("sim node %d tip diverges from node 0", i)
		}
	}
}

package engine

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/identity"
	"repro/internal/meta"
)

func viewBlock(t *testing.T, prev *block.Block, miner *identity.Identity, items []*meta.Item, storing, recent []int) *block.Block {
	t.Helper()
	bld := block.NewBuilder(prev, miner.Address(), prev.Timestamp+time.Minute, 60, 1)
	for _, it := range items {
		bld.AddItem(it)
	}
	return bld.SetStoringNodes(storing).SetRecentAssignees(recent).Seal()
}

func TestStorageViewInitial(t *testing.T) {
	v := NewStorageView(3, 250, 30, 1, 0)
	for i := 0; i < 3; i++ {
		if got := v.Used(i, 0); got != 0 {
			t.Fatalf("Used(%d) = %d at height 0, want 0 (no blocks yet)", i, got)
		}
	}
	states := v.NodeStates(0)
	if len(states) != 3 || states[0].Capacity != 250 || states[0].MobilityRange != 30 {
		t.Fatalf("states = %+v", states)
	}
}

func TestStorageViewCountsAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	miner := identity.GenerateSeeded(rng)
	producer := identity.GenerateSeeded(rng)
	g := block.Genesis(1)
	v := NewStorageView(4, 250, 30, 1, 0)

	it := &meta.Item{ID: meta.HashData([]byte("x")), Type: "T/x", DataSize: 1}
	it.Sign(producer)
	it.StoringNodes = []int{0, 1}

	b1 := viewBlock(t, g, miner, []*meta.Item{it}, []int{2}, []int{3})
	v.ApplyBlock(b1)

	now := b1.Timestamp
	// Node 0: 1 data + recent min(1, height=1)=1 -> 2.
	if got := v.Used(0, now); got != 2 {
		t.Fatalf("Used(0) = %d, want 2", got)
	}
	// Node 2: 1 block body + 1 recent -> 2.
	if got := v.Used(2, now); got != 2 {
		t.Fatalf("Used(2) = %d, want 2", got)
	}
	// Node 3: recent assignee: depth 2 but height 1 -> recent 1 -> 1.
	if got := v.Used(3, now); got != 1 {
		t.Fatalf("Used(3) = %d, want 1", got)
	}
	if v.RecentDepth(3) != 2 {
		t.Fatalf("RecentDepth(3) = %d, want 2", v.RecentDepth(3))
	}
}

func TestStorageViewExpiry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	miner := identity.GenerateSeeded(rng)
	producer := identity.GenerateSeeded(rng)
	g := block.Genesis(1)
	v := NewStorageView(2, 250, 30, 1, 0)

	it := &meta.Item{
		ID: meta.HashData([]byte("y")), Type: "T/y",
		Produced: time.Minute, ValidFor: 10 * time.Minute, DataSize: 1,
	}
	it.Sign(producer)
	it.StoringNodes = []int{0}

	b1 := viewBlock(t, g, miner, []*meta.Item{it}, nil, nil)
	v.ApplyBlock(b1)

	if got := v.Used(0, 2*time.Minute); got != 2 { // data + recent
		t.Fatalf("Used before expiry = %d, want 2", got)
	}
	if got := v.Used(0, 12*time.Minute); got != 1 { // recent only
		t.Fatalf("Used after expiry = %d, want 1", got)
	}
}

func TestStorageViewRecentCappedByHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	miner := identity.GenerateSeeded(rng)
	g := block.Genesis(1)
	v := NewStorageView(2, 250, 30, 1, 0)

	// Node 0 accumulates recent depth 4 over 3 blocks.
	prev := g
	for i := 0; i < 3; i++ {
		b := viewBlock(t, prev, miner, nil, nil, []int{0})
		v.ApplyBlock(b)
		prev = b
	}
	if v.RecentDepth(0) != 4 {
		t.Fatalf("depth = %d, want 4", v.RecentDepth(0))
	}
	// Height is 3, so the FIFO holds at most 3.
	if got := v.Used(0, prev.Timestamp); got != 3 {
		t.Fatalf("Used = %d, want 3 (capped by height)", got)
	}
}

func TestStorageViewRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	miner := identity.GenerateSeeded(rng)
	g := block.Genesis(1)
	v := NewStorageView(2, 250, 30, 1, 0)

	b1 := viewBlock(t, g, miner, nil, []int{0}, []int{1})
	v.ApplyBlock(b1)
	v.Rebuild([]*block.Block{g, b1})
	if got := v.Used(0, b1.Timestamp); got != 2 { // block body + recent
		t.Fatalf("Used(0) after rebuild = %d, want 2", got)
	}
	if v.RecentDepth(1) != 2 {
		t.Fatalf("RecentDepth(1) after rebuild = %d, want 2", v.RecentDepth(1))
	}
	// Rebuild with empty chain resets.
	v.Rebuild([]*block.Block{g})
	if got := v.Used(0, b1.Timestamp); got != 0 {
		t.Fatalf("Used(0) after reset = %d, want 0", got)
	}
}

// TestNodeStatesIntoHotPathAllocs is the mining hot path's alloc gate: refilling
// a warm buffer must not allocate, and the result must match a fresh
// NodeStates call. Mine reuses one such buffer per round, which keeps
// per-round garbage flat as clusters scale to hundreds of nodes.
func TestNodeStatesIntoHotPathAllocs(t *testing.T) {
	v := NewStorageView(256, 250, 30, 1, 0)
	buf := v.NodeStatesInto(nil, 0)
	if got := testing.AllocsPerRun(1000, func() {
		buf = v.NodeStatesInto(buf, 0)
	}); got != 0 {
		t.Fatalf("NodeStatesInto with warm buffer allocates %.2f/op, want 0", got)
	}
	fresh := v.NodeStates(0)
	if len(fresh) != len(buf) {
		t.Fatalf("lengths differ: %d vs %d", len(fresh), len(buf))
	}
	for i := range fresh {
		if fresh[i] != buf[i] {
			t.Fatalf("state %d differs: %+v vs %+v", i, fresh[i], buf[i])
		}
	}
}

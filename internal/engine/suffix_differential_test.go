package engine

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/block"
)

// Differential equivalence suite (ISSUE: incremental sync). AdoptSuffix is
// an optimization of AdoptChain — same acceptance decisions, same
// resulting state — so for every seeded fork scenario we drive two
// observer engines with identical histories, hand one the bare suffix and
// the other the synthesized full candidate, and require bit-identical
// results: tip hash, every block hash, ledger, StorageView, item indexes
// and pool.
//
// The scenarios deliberately avoid the two pieces of state that are NOT
// chain-derived and hence outside the equivalence contract: ledger rentals
// (Ledger.Rebuild documents they reset on scratch replay) and item
// expiry (no test item carries a ValidFor).

// mineAmong plays one round among a subset of the cluster's engines: the
// member with the earliest winning time mines and only members adopt, so
// disjoint subsets grow diverging branches.
func (c *testCluster) mineAmong(t testing.TB, members []int) *block.Block {
	t.Helper()
	winner := -1
	var best Round
	for _, i := range members {
		r, ok := c.engines[i].NextRound()
		if !ok {
			continue
		}
		if winner < 0 || r.FireAt() < best.FireAt() {
			winner, best = i, r
		}
	}
	if winner < 0 {
		t.Fatal("no member can mine")
	}
	c.now = best.FireAt()
	res, err := c.engines[winner].Mine(best)
	if err != nil {
		t.Fatalf("engine %d mine: %v", winner, err)
	}
	if res == nil {
		t.Fatalf("engine %d: round moved on unexpectedly", winner)
	}
	for _, i := range members {
		if i == winner {
			continue
		}
		if _, err := c.engines[i].ReceiveBlock(res.Block); err != nil {
			t.Fatalf("engine %d receive: %v", i, err)
		}
	}
	return res.Block
}

// assertEngineStateEqual requires two engines to agree on every piece of
// chain-derived state, bit for bit.
func assertEngineStateEqual(t *testing.T, a, b *Engine) {
	t.Helper()
	ab, bb := a.ch.Blocks(), b.ch.Blocks()
	if len(ab) != len(bb) {
		t.Fatalf("chain lengths differ: %d vs %d", len(ab), len(bb))
	}
	for h := range ab {
		if ab[h].Hash != bb[h].Hash {
			t.Fatalf("block hash at height %d differs", h)
		}
	}
	if !reflect.DeepEqual(a.ledger, b.ledger) {
		t.Errorf("ledgers differ:\n  suffix: %+v\n  chain:  %+v", a.ledger, b.ledger)
	}
	if !reflect.DeepEqual(a.view, b.view) {
		t.Errorf("storage views differ:\n  suffix: %+v\n  chain:  %+v", a.view, b.view)
	}
	if !reflect.DeepEqual(a.inChain, b.inChain) {
		t.Errorf("inChain indexes differ: %d vs %d entries", len(a.inChain), len(b.inChain))
	}
	if !reflect.DeepEqual(a.liveItems, b.liveItems) {
		t.Errorf("liveItems indexes differ: %d vs %d entries", len(a.liveItems), len(b.liveItems))
	}
	apool, bpool := make(map[string]bool), make(map[string]bool)
	for id := range a.pool {
		apool[id.Short()] = true
	}
	for id := range b.pool {
		bpool[id.Short()] = true
	}
	if !reflect.DeepEqual(apool, bpool) {
		t.Errorf("pools differ: %v vs %v", apool, bpool)
	}
}

// forkFixture builds a 4-engine cluster (0,1 = remote branch; 2,3 = local
// observers) that agrees on prefixLen blocks, then diverges: the local
// pair mines localExtra blocks, the remote pair remoteExtra (strictly
// more). It returns the cluster and the remote suffix past the fork point.
// Engines 2 and 3 receive identical histories throughout; snapInterval
// configures their snapshot cadence (0 = none).
func forkFixture(t *testing.T, snapInterval, prefixLen, localExtra, remoteExtra int) (*testCluster, []*block.Block) {
	t.Helper()
	if remoteExtra <= localExtra {
		t.Fatal("fixture: remote branch must outgrow local")
	}
	c := newTestCluster(t, 4, func(i int, cfg *Config) {
		cfg.SnapshotInterval = snapInterval
		cfg.VerifyWorkers = 4
	})
	all := []int{0, 1, 2, 3}
	seq := 0
	publish := func(to []int) {
		seq++
		it := c.item(to[0], fmt.Sprintf("diff item %d", seq))
		for _, i := range to {
			if !c.engines[i].AddMetadata(it) {
				t.Fatalf("add metadata rejected for engine %d", i)
			}
		}
	}
	for i := 0; i < prefixLen; i++ {
		publish(all)
		c.mineAmong(t, all)
	}
	// Partition: observers extend their own branch first...
	for i := 0; i < localExtra; i++ {
		publish([]int{2, 3})
		c.mineAmong(t, []int{2, 3})
	}
	// ...then the remote pair mines the longer branch in isolation.
	for i := 0; i < remoteExtra; i++ {
		publish([]int{0, 1})
		c.mineAmong(t, []int{0, 1})
	}
	remote := c.engines[0].Chain().Blocks()
	suffix := append([]*block.Block(nil), remote[prefixLen+1:]...)
	return c, suffix
}

// runDifferential adopts the remote branch on observer 2 via AdoptSuffix
// and on observer 3 via the legacy AdoptChain, then checks equivalence.
func runDifferential(t *testing.T, c *testCluster, suffix []*block.Block, wantFullReplay bool) SuffixStats {
	t.Helper()
	candidate := append([]*block.Block(nil), c.engines[0].Chain().Blocks()...)
	stats, ok := c.engines[2].AdoptSuffix(suffix)
	if !ok {
		t.Fatalf("AdoptSuffix rejected a valid suffix (stats %+v)", stats)
	}
	if !c.engines[3].AdoptChain(candidate) {
		t.Fatal("AdoptChain rejected a valid candidate")
	}
	if stats.FullReplay != wantFullReplay {
		t.Errorf("FullReplay = %v, want %v (stats %+v)", stats.FullReplay, wantFullReplay, stats)
	}
	if stats.Appended != len(suffix) {
		t.Errorf("Appended = %d, want %d", stats.Appended, len(suffix))
	}
	assertEngineStateEqual(t, c.engines[2], c.engines[3])
	return stats
}

func TestAdoptSuffixEquivalentForkAfterSnapshot(t *testing.T) {
	// Snapshots at 4 and 8; fork point 10 is above the newest snapshot, so
	// the suffix path replays blocks 9–10 from the snapshot at 8.
	c, suffix := forkFixture(t, 4, 10, 1, 3)
	stats := runDifferential(t, c, suffix, false)
	if stats.Replayed != 2 {
		t.Errorf("Replayed = %d, want 2 (snapshot at 8, fork at 10)", stats.Replayed)
	}
}

func TestAdoptSuffixEquivalentForkAtSnapshot(t *testing.T) {
	// Fork point 8 coincides with the snapshot: nothing to replay.
	c, suffix := forkFixture(t, 4, 8, 1, 3)
	stats := runDifferential(t, c, suffix, false)
	if stats.Replayed != 0 {
		t.Errorf("Replayed = %d, want 0 (fork exactly at snapshot)", stats.Replayed)
	}
}

func TestAdoptSuffixEquivalentForkBeforeSnapshot(t *testing.T) {
	// Observers snapshot at 4 and 8 on their own branch, but the fork point
	// 3 predates both: the engine must fall back to a full scratch replay
	// and still match the legacy path exactly.
	c, suffix := forkFixture(t, 4, 3, 6, 8)
	stats := runDifferential(t, c, suffix, true)
	if got := len(c.engines[2].Chain().Blocks()); stats.Replayed != got-1 {
		t.Errorf("Replayed = %d, want full chain %d", stats.Replayed, got-1)
	}
}

func TestAdoptSuffixEquivalentCatchUp(t *testing.T) {
	// Observers simply stall (no local branch): the suffix extends the tip
	// and the live state is the fork-point state — zero replay, even with
	// snapshots disabled.
	c := newTestCluster(t, 4, func(i int, cfg *Config) { cfg.VerifyWorkers = 4 })
	all := []int{0, 1, 2, 3}
	for i := 0; i < 6; i++ {
		it := c.item(0, fmt.Sprintf("catchup item %d", i))
		for _, j := range all {
			if !c.engines[j].AddMetadata(it) {
				t.Fatal("add metadata rejected")
			}
		}
		c.mineAmong(t, all)
	}
	for i := 0; i < 5; i++ {
		c.mineAmong(t, []int{0, 1})
	}
	suffix := append([]*block.Block(nil), c.engines[0].Chain().Blocks()[7:]...)
	stats := runDifferential(t, c, suffix, false)
	if stats.Replayed != 0 {
		t.Errorf("Replayed = %d, want 0 for a pure tip extension", stats.Replayed)
	}
	if stats.ForkPoint != 6 {
		t.Errorf("ForkPoint = %d, want 6", stats.ForkPoint)
	}
}

func TestAdoptSuffixRejectsEmptyAndLeavesStateUntouched(t *testing.T) {
	c, _ := forkFixture(t, 4, 8, 1, 3)
	before := c.engines[2].Tip().Hash
	if _, ok := c.engines[2].AdoptSuffix(nil); ok {
		t.Fatal("empty suffix adopted")
	}
	if _, ok := c.engines[2].AdoptSuffix([]*block.Block{}); ok {
		t.Fatal("zero-length suffix adopted")
	}
	if c.engines[2].Tip().Hash != before {
		t.Fatal("rejected suffix mutated the chain")
	}
	// Both observers must still agree after the no-ops.
	assertEngineStateEqual(t, c.engines[2], c.engines[3])
}

func TestAdoptSuffixRejectsForgedClaims(t *testing.T) {
	// An adversary re-seals the remote suffix under its own identity: the
	// blocks are well-formed (valid hashes, valid signatures on items) but
	// the PoS claims are forged. Both paths must refuse, identically, and
	// leave the observers' state bit-identical to before.
	c, suffix := forkFixture(t, 4, 8, 1, 3)
	forged := make([]*block.Block, len(suffix))
	prev := c.engines[2].Chain().At(suffix[0].Index - 1)
	for i, b := range suffix {
		bld := block.NewBuilder(prev, c.accounts[3], b.Timestamp, 1, 1e-6)
		for _, it := range b.Items {
			bld.AddItem(it)
		}
		forged[i] = bld.SetPrevStoringNodes(b.PrevStoringNodes).Seal()
		prev = forged[i]
	}
	tipBefore := c.engines[2].Tip().Hash
	if _, ok := c.engines[2].AdoptSuffix(forged); ok {
		t.Fatal("AdoptSuffix accepted forged claims")
	}
	candidate := append([]*block.Block(nil), c.engines[3].Chain().Blocks()[:suffix[0].Index]...)
	candidate = append(candidate, forged...)
	if c.engines[3].AdoptChain(candidate) {
		t.Fatal("AdoptChain accepted forged claims")
	}
	if c.engines[2].Tip().Hash != tipBefore {
		t.Fatal("rejected forged suffix mutated the chain")
	}
	assertEngineStateEqual(t, c.engines[2], c.engines[3])
}

func TestAdoptSuffixParallelVerifyDeterministic(t *testing.T) {
	// The verify pool must produce the same decision for every worker
	// count, including the sequential path.
	for _, workers := range []int{0, 1, 2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c, suffix := forkFixture(t, 4, 8, 1, 3)
			c.engines[2].cfg.VerifyWorkers = workers
			stats, ok := c.engines[2].AdoptSuffix(suffix)
			if !ok {
				t.Fatalf("valid suffix rejected with %d workers", workers)
			}
			if workers > 1 && stats.ParallelVerified != len(suffix) {
				t.Errorf("ParallelVerified = %d, want %d", stats.ParallelVerified, len(suffix))
			}
			if workers <= 1 && stats.ParallelVerified != 0 {
				t.Errorf("ParallelVerified = %d, want 0 on the sequential path", stats.ParallelVerified)
			}
			if !c.engines[3].AdoptChain(c.engines[0].Chain().Blocks()) {
				t.Fatal("legacy candidate rejected")
			}
			assertEngineStateEqual(t, c.engines[2], c.engines[3])
		})
	}
}

package engine

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/geo"
	"repro/internal/meta"
	"repro/internal/netsim"
	"repro/internal/pos"
)

// freshObserver builds a fresh engine over the cluster's roster, clock and
// genesis — the receiving side of a snapshot bootstrap.
func freshObserver(t testing.TB, c *testCluster) *Engine {
	t.Helper()
	topo := netsim.NewTopology(make([]geo.Point, len(c.accounts)), 1, nil)
	blockPlanner := alloc.NewPlanner(1)
	blockPlanner.MinReplicas = 1
	e, err := New(Config{
		Accounts:           c.accounts,
		Self:               0,
		PoS:                pos.Params{M: pos.DefaultM, T0: 60 * time.Second},
		Genesis:            block.Genesis(42),
		Now:                func() time.Duration { return c.now },
		ValidateClaims:     true,
		Topology:           func() *netsim.Topology { return topo },
		Planner:            alloc.NewPlanner(1),
		BlockPlanner:       blockPlanner,
		StorageCapacity:    250,
		InitialRecentDepth: 1,
		SnapshotInterval:   4,
	})
	if err != nil {
		t.Fatalf("observer engine: %v", err)
	}
	return e
}

// addItem signs a fresh item and hands it to every engine, as gossip would.
func (c *testCluster) addItem(t testing.TB, producer int, content string) *meta.Item {
	t.Helper()
	it := c.item(producer, content)
	for i, e := range c.engines {
		if !e.AddMetadata(it) {
			t.Fatalf("engine %d rejected item %q", i, content)
		}
	}
	return it
}

// TestSnapshotCodecRoundTrip pins the deterministic snapshot encoding:
// decode(encode(s)) re-encodes to the identical bytes and content hash, and
// truncated or padded inputs are rejected without panicking.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	c := newTestCluster(t, 3, func(i int, cfg *Config) { cfg.SnapshotInterval = 4 })
	for r := 0; r < 12; r++ {
		c.addItem(t, r%3, fmt.Sprintf("codec item %d", r))
		c.mineNext(t)
	}
	snap, ok := c.engines[0].ExportSnapshot()
	if !ok {
		t.Fatal("no exportable snapshot after 12 blocks at interval 4")
	}
	if len(snap.InChain) == 0 || len(snap.LiveItems) == 0 {
		t.Fatal("snapshot carries no item state; round trip would be vacuous")
	}
	blob := snap.Encode()
	dec, err := DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(dec.Encode(), blob) {
		t.Fatal("re-encoded snapshot differs from original bytes")
	}
	if dec.ContentHash() != snap.ContentHash() {
		t.Fatal("content hash changed across the round trip")
	}
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := DecodeSnapshot(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	padded := append(append([]byte(nil), blob...), 0)
	if _, err := DecodeSnapshot(padded); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestPrunedEngineMatchesFull is the issue's differential acceptance test: a
// pruned replica and a full replica fed the same blocks end with
// bit-identical tips, headers and ledgers, while the pruned replica's body
// window stays O(PruneDepth).
func TestPrunedEngineMatchesFull(t *testing.T) {
	const (
		snapEvery = 4
		depth     = 8
		rounds    = 64
	)
	var pruneCalls, prunedBodies int
	var lastHorizon uint64
	c := newTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.SnapshotInterval = snapEvery
		if i == 0 {
			cfg.CheckpointInterval = depth
			cfg.PruneDepth = depth
			cfg.OnPrune = func(horizon uint64, n int) {
				pruneCalls++
				prunedBodies += n
				lastHorizon = horizon
			}
		}
	})
	var items []*meta.Item
	for r := 0; r < rounds; r++ {
		if r%3 == 0 {
			items = append(items, c.addItem(t, r%len(c.engines), fmt.Sprintf("diff item %d", r)))
		}
		c.mineNext(t)
	}
	pruned, full := c.engines[0], c.engines[1]

	if pruned.Chain().BodyBase() == 0 || pruneCalls == 0 {
		t.Fatalf("pruning never fired: base=%d calls=%d", pruned.Chain().BodyBase(), pruneCalls)
	}
	if got := pruned.Chain().BodyBase(); got != lastHorizon {
		t.Fatalf("body base %d does not match last reported horizon %d", got, lastHorizon)
	}
	if prunedBodies != int(pruned.Chain().BodyBase()) {
		t.Fatalf("OnPrune reported %d bodies total, body base is %d", prunedBodies, pruned.Chain().BodyBase())
	}

	// Bit-identical consensus state despite the missing bodies.
	if pruned.Height() != full.Height() {
		t.Fatalf("heights diverge: %d vs %d", pruned.Height(), full.Height())
	}
	if pruned.Tip().Hash != full.Tip().Hash {
		t.Fatal("tips diverge")
	}
	for h := uint64(0); h <= pruned.Height(); h++ {
		hdr, ok := pruned.Chain().HeaderAt(h)
		if !ok {
			t.Fatalf("pruned replica lost header %d", h)
		}
		if want := full.Chain().At(h).Hash; hdr.Hash != want {
			t.Fatalf("header %d hash diverges", h)
		}
	}
	if !reflect.DeepEqual(pruned.Ledger().ExportState(), full.Ledger().ExportState()) {
		t.Fatal("ledgers diverge between pruned and full replicas")
	}
	for _, it := range items {
		if !pruned.OnChain(it.ID) || !full.OnChain(it.ID) {
			t.Fatalf("item %s lost", it.ID.Short())
		}
	}

	// Bounded footprint: the window holds at most tip-horizon+1 bodies, and
	// the horizon trails the tip by at most depth + one checkpoint interval
	// + one snapshot interval of slack — O(PruneDepth), not O(height).
	if max := depth + depth + snapEvery + 1; pruned.Chain().BodyCount() > max {
		t.Fatalf("body window %d exceeds O(PruneDepth) bound %d", pruned.Chain().BodyCount(), max)
	}

	// Pruned heights answer as headers, not bodies.
	base := pruned.Chain().BodyBase()
	if b := pruned.Chain().At(base - 1); b != nil {
		t.Fatal("pruned height still returns a body")
	}
	if _, err := pruned.Chain().Body(base - 1); !errors.Is(err, chain.ErrPrunedBody) {
		t.Fatalf("Body below the window: err = %v, want ErrPrunedBody", err)
	}
	if g, err := pruned.Chain().Body(0); err != nil || g.Index != 0 {
		t.Fatalf("genesis must stay reachable: %v", err)
	}

	// The pruned replica keeps mining valid blocks the full replica accepts.
	for r := 0; r < depth; r++ {
		c.mineNext(t)
	}
	if pruned.Tip().Hash != full.Tip().Hash {
		t.Fatal("tips diverge after continued mining")
	}
}

// TestBootstrapFromSnapshotEquivalence bootstraps a fresh engine from an
// encoded snapshot, feeds it only the live suffix, and requires it to reach
// a state bit-identical to a replica that replayed the whole chain.
func TestBootstrapFromSnapshotEquivalence(t *testing.T) {
	c := newTestCluster(t, 3, func(i int, cfg *Config) { cfg.SnapshotInterval = 4 })
	var mined []*block.Block
	var items []*meta.Item
	for r := 0; r < 19; r++ {
		if r%2 == 0 {
			items = append(items, c.addItem(t, r%len(c.engines), fmt.Sprintf("boot item %d", r)))
		}
		mined = append(mined, c.mineNext(t))
	}
	snap, ok := c.engines[0].ExportSnapshot()
	if !ok {
		t.Fatal("no exportable snapshot")
	}
	dec, err := DecodeSnapshot(snap.Encode()) // wire round trip
	if err != nil {
		t.Fatal(err)
	}

	fresh := freshObserver(t, c)
	if err := fresh.BootstrapFromSnapshot(dec); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	if err := fresh.BootstrapFromSnapshot(dec); err == nil {
		t.Fatal("second bootstrap into a non-fresh engine must be refused")
	}
	if err := c.engines[1].BootstrapFromSnapshot(dec); err == nil {
		t.Fatal("bootstrap into an engine with history must be refused")
	}

	// Below the anchor only genesis is known; the spine starts at the anchor.
	if got := fresh.Chain().HeaderBase(); got != snap.Height {
		t.Fatalf("header base %d, want anchor %d", got, snap.Height)
	}
	if _, ok := fresh.Chain().HeaderAt(snap.Height - 1); ok {
		t.Fatal("pre-anchor header should be unknown before backfill")
	}
	if _, err := fresh.Chain().Body(1); err == nil {
		t.Fatal("pre-anchor body should be unavailable")
	}

	// Live suffix only — no replay from genesis.
	for _, b := range mined {
		if b.Index <= snap.Height {
			continue
		}
		if _, err := fresh.ReceiveBlock(b); err != nil {
			t.Fatalf("suffix block %d: %v", b.Index, err)
		}
	}
	ref := c.engines[0]
	if fresh.Height() != ref.Height() || fresh.Tip().Hash != ref.Tip().Hash {
		t.Fatalf("bootstrapped tip diverges: %d vs %d", fresh.Height(), ref.Height())
	}
	if !reflect.DeepEqual(fresh.Ledger().ExportState(), ref.Ledger().ExportState()) {
		t.Fatal("bootstrapped ledger diverges from replayed ledger")
	}
	for _, it := range items {
		if !fresh.OnChain(it.ID) {
			t.Fatalf("bootstrapped replica lost item %s", it.ID.Short())
		}
	}

	// Backfilling the missing spine from the reference replica restores
	// header coverage down to height 1.
	spine := ref.Chain().Headers(1, snap.Height-1)
	if err := fresh.Chain().BackfillSpine(spine); err != nil {
		t.Fatalf("backfill: %v", err)
	}
	for h := uint64(1); h < snap.Height; h++ {
		hdr, ok := fresh.Chain().HeaderAt(h)
		if !ok || hdr.Hash != ref.Chain().At(h).Hash {
			t.Fatalf("backfilled header %d wrong", h)
		}
	}

	// The bootstrapped replica participates in consensus from here on.
	c.engines = append(c.engines, fresh)
	c.events = append(c.events, nil)
	for r := 0; r < 5; r++ {
		c.mineNext(t)
	}
	if fresh.Tip().Hash != ref.Tip().Hash {
		t.Fatal("bootstrapped replica diverges under continued mining")
	}
}

// TestBootstrapRejectsCorruptSnapshots checks the semantic validation gate:
// a snapshot whose ledger, roster shape or anchor is inconsistent must not
// install.
func TestBootstrapRejectsCorruptSnapshots(t *testing.T) {
	c := newTestCluster(t, 3, func(i int, cfg *Config) { cfg.SnapshotInterval = 4 })
	for r := 0; r < 9; r++ {
		c.mineNext(t)
	}
	snap, ok := c.engines[0].ExportSnapshot()
	if !ok {
		t.Fatal("no exportable snapshot")
	}
	cases := []struct {
		name   string
		mutate func(s *StateSnapshot)
	}{
		{"nil anchor", func(s *StateSnapshot) { s.Block = nil }},
		{"height mismatch", func(s *StateSnapshot) { s.Height++ }},
		{"ledger not applied to height", func(s *StateSnapshot) { s.Ledger.Applied-- }},
		{"roster shrunk", func(s *StateSnapshot) { s.DataLive = s.DataLive[:1] }},
		{"live item off-chain", func(s *StateSnapshot) {
			s.InChain = nil
			if len(s.LiveItems) == 0 {
				it := c.item(0, "phantom live item")
				s.LiveItems = []*meta.Item{it}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad, err := DecodeSnapshot(snap.Encode())
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(bad)
			fresh := freshObserver(t, c)
			if err := fresh.BootstrapFromSnapshot(bad); err == nil {
				t.Fatal("corrupt snapshot installed")
			}
			if fresh.Height() != 0 {
				t.Fatal("failed bootstrap left state behind")
			}
		})
	}
}

// BenchmarkSnapshotBootstrap compares standing up a replica at height N via
// snapshot install against full-chain replay — the speedup that justifies
// the §14 bootstrap protocol.
func BenchmarkSnapshotBootstrap(b *testing.B) {
	const height = 1024
	c := newTestCluster(b, 1, func(i int, cfg *Config) { cfg.SnapshotInterval = 64 })
	for r := 0; r < height; r++ {
		c.mineNext(b)
	}
	snap, ok := c.engines[0].ExportSnapshot()
	if !ok {
		b.Fatal("no exportable snapshot")
	}
	blob := snap.Encode()
	blocks := c.engines[0].Chain().Blocks()

	b.Run("snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dec, err := DecodeSnapshot(blob)
			if err != nil {
				b.Fatal(err)
			}
			e := freshObserver(b, c)
			if err := e.BootstrapFromSnapshot(dec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := freshObserver(b, c)
			if !e.AdoptChain(blocks) {
				b.Fatal("replay rejected")
			}
		}
	})
}

// Package engine is the single implementation of the edge blockchain's
// consensus and allocation rules: block validation (PoS-claim preAppend
// checks), block adoption and longest-valid-chain fork choice, S_i/Q_i
// ledger accounting, metadata-pool packing, the eq. 14 round-time
// computation (via internal/pos) and the UFL placement decisions that go
// into every mined block.
//
// The engine is transport- and clock-agnostic: it never does I/O and it
// never sleeps. Adapters — internal/core.Node over the discrete-event
// simulator and internal/livenode.Node over real sockets — inject a time
// source (Config.Now), a topology, and an OnAppend callback, and they
// decide when to call NextRound/Mine and what to do with the blocks the
// engine hands back. Because both stacks drive the same engine, every
// invariant proven against one (chaos replay validity, ledger
// reconciliation, golden round times) certifies the other.
//
// The engine itself is NOT internally locked: the simulation runs
// single-threaded, and the live node wraps every engine call in its own
// mutex. Callbacks (OnAppend, Topology, Now) are invoked synchronously
// from whatever engine method triggered them.
package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/alloc"
	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/identity"
	"repro/internal/meta"
	"repro/internal/netsim"
	"repro/internal/pos"
	"repro/internal/ufl"
)

// ItemEvent describes one data item carried by an adopted block, with the
// context an adapter needs to act on it (fetch, release, schedule expiry).
type ItemEvent struct {
	// Item is the packed item, StoringNodes assigned.
	Item *meta.Item
	// Prev is the previously live on-chain version (non-nil for
	// migration re-announcements), as of before this block.
	Prev *meta.Item
	// First reports whether this ID appears on-chain for the first time.
	First bool
	// AssignedToSelf reports whether Config.Self is a storing node of Item.
	AssignedToSelf bool
}

// AppendEvent is passed to Config.OnAppend after the engine has applied a
// block's ledger, storage-view and pool side effects.
type AppendEvent struct {
	Block *block.Block
	Items []ItemEvent
}

// Round is one armed mining round: the tip it extends, the winning time T
// in whole seconds and the eq. 14 amendment B to record in the block.
type Round struct {
	PrevHash      block.Hash
	PrevTimestamp time.Duration
	T             uint64
	B             float64
}

// FireAt returns the virtual time at which the round is won.
func (r Round) FireAt() time.Duration {
	return r.PrevTimestamp + time.Duration(r.T)*time.Second
}

// MineResult is a successfully sealed and self-adopted block.
type MineResult struct {
	Block *block.Block
	// Migrations counts the data-migration re-announcements packed into
	// the block (Section VII).
	Migrations int
	// Repairs counts the repair re-announcements packed into the block:
	// under-replicated items re-placed away from dead providers.
	Repairs int
}

// Liveness is a churn verdict for one roster node, as reported by the
// adapter's churn detector (internal/repair). The engine uses it to keep
// placements off failing nodes and to re-replicate items whose providers
// died; with no Liveness callback every node counts alive.
type Liveness int

const (
	// LiveAlive nodes are normal placement targets.
	LiveAlive Liveness = iota
	// LiveSuspect nodes receive no new placements, but their existing
	// replicas still count (hysteresis: no repair storm on a transient
	// partition).
	LiveSuspect
	// LiveDead nodes' replicas count as lost: items under their replica
	// floor because of them are repair candidates.
	LiveDead
)

// Config wires an Engine to its host node.
type Config struct {
	// Accounts is the fixed roster; index k is node ID k.
	Accounts []identity.Address
	// Self is this node's roster index.
	Self int
	// PoS holds the mining parameters.
	PoS pos.Params
	// Genesis is the shared genesis block.
	Genesis *block.Block
	// Now returns the current time as an offset from the shared epoch.
	Now func() time.Duration

	// ValidateClaims enables PoS-claim validation in preAppend and scratch
	// replay in AdoptChain. The PoW baseline disables it (nonce checks
	// carry no allocation state; only timestamp sanity remains).
	ValidateClaims bool
	// FutureSkew is the clock-skew tolerance for incoming block
	// timestamps (default 2 s).
	FutureSkew time.Duration
	// StakeRescaleEvery periodically rescales the ledger (0 = never); it
	// applies to the live ledger and to AdoptChain's scratch replay.
	StakeRescaleEvery uint64
	// CheckpointInterval enables Section V-D checkpoint finality: a fork
	// candidate rewriting history at or below the newest multiple of this
	// interval is refused even if longer (0 = disabled).
	CheckpointInterval int
	// SnapshotInterval, when positive, freezes a ledger/view snapshot
	// every this many blocks so AdoptSuffix can validate fork suffixes by
	// replaying only blocks past the snapshot instead of the whole chain
	// (0 = snapshots off; true forks then always scratch-replay).
	SnapshotInterval int
	// VerifyWorkers bounds the goroutine pool AdoptSuffix uses to verify
	// batch block content (hashes + metadata signatures) in parallel;
	// <= 1 verifies sequentially. The accept/reject outcome is
	// deterministic regardless of the setting.
	VerifyWorkers int
	// PruneDepth, when positive, enables the finite-lifetime chain
	// (DESIGN.md §14): after each periodic snapshot, block bodies below
	// min(newest checkpoint, oldest retained snapshot, tip-PruneDepth)
	// are discarded, keeping only the header spine. Requires
	// CheckpointInterval > 0 and SnapshotInterval > 0, which together
	// guarantee adoption never needs a pruned body.
	PruneDepth int
	// OnPrune, if set, is called synchronously after bodies below horizon
	// were discarded (pruned = how many), so adapters can compact
	// persistent storage to match.
	OnPrune func(horizon uint64, pruned int)

	// Topology returns the placement topology (home positions for the
	// sim, a 1-hop clique for the live mesh).
	Topology func() *netsim.Topology
	// Planner places data items (replica floor enforced); BlockPlanner
	// places block bodies and recent-block assignments without one.
	Planner      *alloc.Planner
	BlockPlanner *alloc.Planner
	// StorageCapacity is the per-node storage in items.
	StorageCapacity int
	// MobilityRange feeds the RDC mobility terms of the storage view.
	MobilityRange float64
	// InitialRecentDepth is every node's starting recent-cache allowance
	// (floored to 1); RecentDepthCap bounds its growth (0 = unlimited).
	InitialRecentDepth int
	RecentDepthCap     int
	// RandomPlacement switches item placement to the random baseline with
	// the optimal replica count (Section VI-B); Rand must then be set.
	RandomPlacement bool
	Rand            *rand.Rand

	// MigrateMaxPerBlock bounds data-migration re-announcements per mined
	// block (0 = migration off); MigrateCostRatio is the drift threshold
	// (values <= 1 mean the 1.5 default).
	MigrateMaxPerBlock int
	MigrateCostRatio   float64

	// Liveness, when set, reports each roster node's churn status (from
	// the adapter's repair.Detector). nil = every node alive.
	Liveness func(i int) Liveness
	// RepairMaxPerBlock bounds repair re-announcements per mined block
	// (0 = repair packing off).
	RepairMaxPerBlock int

	// CustomRound overrides the PoS round computation (the PoW baseline
	// derives exponential solve times from the same hit).
	CustomRound func(prev *block.Block) (t uint64, b float64)
	// OnAppend, if set, is called synchronously after each appended
	// block's state transitions (ledger, view, pool, live-item index).
	OnAppend func(ev AppendEvent)
}

// Engine owns all chain-derived consensus state of one node.
type Engine struct {
	cfg    Config
	ch     *chain.Chain
	ledger *pos.Ledger
	view   *StorageView

	pool      map[meta.DataID]*meta.Item
	inChain   map[meta.DataID]bool
	liveItems map[meta.DataID]*meta.Item
	// migrateCursor and repairCursor round-robin migration and repair
	// checks across live items.
	migrateCursor int
	repairCursor  int
	// snaps holds the periodic state snapshots AdoptSuffix adopts from
	// (ascending height, at most snapshotKeep entries).
	snaps []snapshot

	// Per-round scratch reused across Mine calls so the mining hot path
	// stays allocation-flat as the cluster scales; each buffer is reset,
	// never shared outside the round.
	mineStates    []alloc.NodeState
	mineAnnounced map[meta.DataID]bool
	poolScratch   []*meta.Item
}

// New builds an engine. The genesis block is adopted immediately.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Accounts) == 0 {
		return nil, errors.New("engine: empty account roster")
	}
	if cfg.Self < 0 || cfg.Self >= len(cfg.Accounts) {
		return nil, fmt.Errorf("engine: self index %d outside roster of %d", cfg.Self, len(cfg.Accounts))
	}
	if err := cfg.PoS.Validate(); err != nil {
		return nil, err
	}
	if cfg.Genesis == nil {
		return nil, errors.New("engine: missing genesis block")
	}
	if cfg.Now == nil {
		return nil, errors.New("engine: missing time source")
	}
	if cfg.Topology == nil {
		return nil, errors.New("engine: missing topology source")
	}
	if cfg.Planner == nil || cfg.BlockPlanner == nil {
		return nil, errors.New("engine: missing planners")
	}
	if cfg.RandomPlacement && cfg.Rand == nil {
		return nil, errors.New("engine: random placement needs a Rand source")
	}
	if cfg.PruneDepth > 0 && (cfg.CheckpointInterval <= 0 || cfg.SnapshotInterval <= 0) {
		return nil, errors.New("engine: PruneDepth requires CheckpointInterval and SnapshotInterval")
	}
	if cfg.FutureSkew == 0 {
		cfg.FutureSkew = 2 * time.Second
	}
	if cfg.InitialRecentDepth < 1 {
		cfg.InitialRecentDepth = 1
	}
	ledger := pos.NewLedger(cfg.Accounts)
	ledger.RescaleEvery = cfg.StakeRescaleEvery
	e := &Engine{
		cfg:       cfg,
		ledger:    ledger,
		view:      NewStorageView(len(cfg.Accounts), cfg.StorageCapacity, cfg.MobilityRange, cfg.InitialRecentDepth, cfg.RecentDepthCap),
		pool:      make(map[meta.DataID]*meta.Item),
		inChain:   make(map[meta.DataID]bool),
		liveItems: make(map[meta.DataID]*meta.Item),
	}
	e.ch = chain.New(cfg.Genesis)
	e.ch.PreAppend = e.preAppend
	e.ch.PostAppend = e.postAppend
	return e, nil
}

// --- accessors ------------------------------------------------------------

// Chain returns the engine's chain replica.
func (e *Engine) Chain() *chain.Chain { return e.ch }

// Ledger returns the engine's stake ledger.
func (e *Engine) Ledger() *pos.Ledger { return e.ledger }

// View returns the chain-derived storage view.
func (e *Engine) View() *StorageView { return e.view }

// Tip returns the current tip block.
func (e *Engine) Tip() *block.Block { return e.ch.Tip() }

// Height returns the chain height.
func (e *Engine) Height() uint64 { return e.ch.Height() }

// OnChain reports whether an item with the given ID is recorded on-chain.
func (e *Engine) OnChain(id meta.DataID) bool { return e.inChain[id] }

// LiveItem returns the latest on-chain version of the item (nil if none).
func (e *Engine) LiveItem(id meta.DataID) *meta.Item { return e.liveItems[id] }

// LiveItems returns the latest on-chain version of every item. The map is
// the engine's own index: callers must not modify it.
func (e *Engine) LiveItems() map[meta.DataID]*meta.Item { return e.liveItems }

// ForgetItem drops an item from the live index (adapters call it when the
// item's valid time expires).
func (e *Engine) ForgetItem(id meta.DataID) { delete(e.liveItems, id) }

// PoolLen returns the metadata-pool size.
func (e *Engine) PoolLen() int { return len(e.pool) }

// --- metadata pool --------------------------------------------------------

// AddMetadata verifies and pools a metadata item received from the
// network; duplicates and items already on-chain are dropped. It reports
// whether the item entered the pool.
func (e *Engine) AddMetadata(it *meta.Item) bool {
	if e.inChain[it.ID] || e.pool[it.ID] != nil {
		return false
	}
	if err := it.Verify(); err != nil {
		return false // forged metadata: drop
	}
	e.pool[it.ID] = it
	return true
}

// AddLocal pools an item this node produced itself (already trusted).
func (e *Engine) AddLocal(it *meta.Item) { e.pool[it.ID] = it }

// PoolHas reports whether the metadata pool currently holds id.
func (e *Engine) PoolHas(id meta.DataID) bool { return e.pool[id] != nil }

// PoolItem returns the pooled item for id (nil when absent). The item is
// shared and must not be mutated.
func (e *Engine) PoolItem(id meta.DataID) *meta.Item { return e.pool[id] }

// PoolIDs returns the IDs currently pooled, in no particular order. The
// metadata-gossip differential tests sort and digest them.
func (e *Engine) PoolIDs() []meta.DataID {
	out := make([]meta.DataID, 0, len(e.pool))
	for id := range e.pool {
		out = append(out, id)
	}
	return out
}

// poolItems returns the unexpired, not-yet-on-chain pool items in
// deterministic order (by ID bytes), pruning the rest.
func (e *Engine) poolItems(now time.Duration) []*meta.Item {
	items := e.poolScratch[:0]
	for id, it := range e.pool {
		if it.Expired(now) || e.inChain[id] {
			delete(e.pool, id)
			continue
		}
		items = append(items, it)
	}
	e.poolScratch = items
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && lessID(items[j].ID, items[j-1].ID); j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
	return items
}

func lessID(a, b meta.DataID) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// --- validation & adoption ------------------------------------------------

// preAppend is the chain hook validating a block against the ledger state
// as of its parent.
func (e *Engine) preAppend(prev, b *block.Block) error {
	// Reject timestamps from the future (a miner cannot backdate thanks to
	// pos.ErrBadElapsed, nor post-date past the receiver's clock).
	if b.Timestamp > e.cfg.Now()+e.cfg.FutureSkew {
		return fmt.Errorf("engine: block %d timestamp in the future", b.Index)
	}
	if !e.cfg.ValidateClaims {
		return nil
	}
	return e.cfg.PoS.ValidateClaim(prev, b, e.ledger)
}

// postAppend is the chain hook applying an adopted block's side effects:
// ledger accounting, storage view, pool pruning and the live-item index.
// The adapter's OnAppend callback then layers physical storage, fetches
// and telemetry on top.
func (e *Engine) postAppend(b *block.Block) {
	if err := e.ledger.ApplyBlock(b); err != nil {
		// Cannot happen: PreAppend guarantees in-order application.
		panic(fmt.Sprintf("engine: ledger apply: %v", err))
	}
	e.view.ApplyBlock(b)
	ev := AppendEvent{Block: b, Items: make([]ItemEvent, 0, len(b.Items))}
	for _, it := range b.Items {
		delete(e.pool, it.ID)
		ie := ItemEvent{Item: it, Prev: e.liveItems[it.ID], First: !e.inChain[it.ID]}
		for _, sn := range it.StoringNodes {
			if sn == e.cfg.Self {
				ie.AssignedToSelf = true
			}
		}
		e.inChain[it.ID] = true
		e.liveItems[it.ID] = it
		ev.Items = append(ev.Items, ie)
	}
	e.maybeSnapshot(b.Index)
	if cb := e.cfg.OnAppend; cb != nil {
		cb(ev)
	}
}

// ReceiveBlock runs a network block through validation and adoption; the
// returned count includes previously buffered blocks drained by this one.
// Gap and fork-link errors are the adapter's cue to start block recovery
// or a full chain exchange.
func (e *Engine) ReceiveBlock(b *block.Block) (appended int, err error) {
	return e.ch.Add(b)
}

// AppendTrusted appends an already-validated block (WAL replay), skipping
// claim checks but running the normal state transitions.
func (e *Engine) AppendTrusted(b *block.Block) error {
	return e.ch.AppendTrusted(b)
}

// LastCheckpoint returns the height of the newest finalized block under
// the checkpoint rule (0 when disabled or none reached yet).
func (e *Engine) LastCheckpoint() uint64 {
	k := uint64(e.cfg.CheckpointInterval)
	if k == 0 {
		return 0
	}
	return (e.ch.Height() / k) * k
}

// AdoptChain evaluates a full candidate chain (Naivechain-style fork
// resolution): it must be strictly longer, respect checkpoint finality,
// and replay cleanly — structural validation plus, when claims are
// enabled, PoS-claim validation of every block against a scratch ledger.
// On adoption all chain-derived state (ledger, view, pool, live-item
// index) is rebuilt and true is returned; the caller handles physical
// storage reconciliation, persistence and re-arming its miner.
func (e *Engine) AdoptChain(blocks []*block.Block) bool {
	if len(blocks) <= e.ch.Len() {
		return false
	}
	// Checkpoint rule (Section V-D): a candidate that rewrites history at
	// or below our newest checkpoint is refused even if longer. The spine
	// header is enough even when the checkpoint body is pruned.
	if cp := e.LastCheckpoint(); cp > 0 {
		hdr, ok := e.ch.HeaderAt(cp)
		if !ok || uint64(len(blocks)) <= cp || blocks[cp].Hash != hdr.Hash {
			return false
		}
	}
	if e.cfg.ValidateClaims {
		scratch := pos.NewLedger(e.cfg.Accounts)
		scratch.RescaleEvery = e.cfg.StakeRescaleEvery
		for i := 1; i < len(blocks); i++ {
			if err := e.cfg.PoS.ValidateClaim(blocks[i-1], blocks[i], scratch); err != nil {
				return false
			}
			if err := scratch.ApplyBlock(blocks[i]); err != nil {
				return false
			}
		}
	}
	replaced, err := e.ch.ReplaceIfLonger(blocks)
	if err != nil || !replaced {
		return false
	}
	// Rebuild all chain-derived state (ReplaceIfLonger runs no hooks).
	if err := e.ledger.Rebuild(e.ch.Blocks()); err != nil {
		panic("engine: ledger rebuild after fork: " + err.Error())
	}
	e.view.Rebuild(e.ch.Blocks())
	e.inChain = make(map[meta.DataID]bool)
	e.liveItems = make(map[meta.DataID]*meta.Item)
	for _, b := range e.ch.Blocks() {
		for _, it := range b.Items {
			e.inChain[it.ID] = true
			e.liveItems[it.ID] = it // later blocks overwrite: latest version wins
			delete(e.pool, it.ID)
		}
	}
	// Snapshots taken on the abandoned branch are now invalid; ones on the
	// surviving common prefix stay usable.
	e.pruneSnapshots()
	e.maybePrune()
	return true
}

// --- mining ---------------------------------------------------------------

// NextRound computes this node's mining round on top of the current tip.
// ok is false when the node cannot mine this round.
func (e *Engine) NextRound() (r Round, ok bool) {
	prev := e.ch.Tip()
	var t uint64
	var bval float64
	if e.cfg.CustomRound != nil {
		t, bval = e.cfg.CustomRound(prev)
	} else {
		t, bval = e.cfg.PoS.Round(prev, e.cfg.Accounts[e.cfg.Self], e.ledger)
	}
	if t == pos.NeverMines {
		return Round{}, false
	}
	return Round{PrevHash: prev.Hash, PrevTimestamp: prev.Timestamp, T: t, B: bval}, true
}

// Mine assembles, self-adopts and returns the next block for a round won
// at the current time: pool items are packed in deterministic order with
// UFL placements, block-body and recent-block assignments are solved on
// the same scratch state, and drifted items are re-announced (migration).
// It returns (nil, nil) when the round moved on (the tip changed), and an
// error only when the engine rejects its own block — a programming error
// the adapter surfaces loudly.
func (e *Engine) Mine(r Round) (*MineResult, error) {
	prev := e.ch.Tip()
	if prev.Hash != r.PrevHash {
		return nil, nil // the round moved on
	}
	now := e.cfg.Now()
	bld := block.NewBuilder(prev, e.cfg.Accounts[e.cfg.Self], now, r.T, r.B)

	// Scratch storage view: assignments within this block must see each
	// other so one block doesn't dump everything on the same nodes.
	e.mineStates = e.view.NodeStatesInto(e.mineStates, now)
	states := e.mineStates
	// Placement plans on home positions: the RDC (eq. 2) covers short-term
	// movement through the mobility-range terms, so the plan stays valid
	// while the live topology wobbles.
	topo := e.cfg.Topology()

	// announced collects every ID packed into this block so migration and
	// repair never re-announce an item the block already carries.
	if e.mineAnnounced == nil {
		e.mineAnnounced = make(map[meta.DataID]bool)
	}
	clear(e.mineAnnounced)
	announced := e.mineAnnounced
	for _, it := range e.poolItems(now) {
		storing := e.placeItem(topo, states)
		if len(storing) == 0 {
			continue
		}
		packed := it.Clone()
		packed.StoringNodes = storing
		bld.AddItem(packed)
		announced[packed.ID] = true
		for _, sn := range storing {
			states[sn].Used++
		}
	}

	// Block-body placement (no replica floor: recent FIFOs already cover
	// fresh blocks everywhere).
	blockNodes := e.placeBlock(topo, states)
	for _, sn := range blockNodes {
		states[sn].Used++
	}
	bld.SetStoringNodes(blockNodes)
	bld.SetPrevStoringNodes(prev.StoringNodes)

	// Recent-block allocation (Section IV-C): solve the same problem to
	// pick the nodes that grow their recent FIFO by one.
	recentNodes := e.placeBlock(topo, states)
	for _, sn := range recentNodes {
		states[sn].Used++
	}
	bld.SetRecentAssignees(recentNodes)

	// Data migration (Section VII future work): re-place up to the
	// configured number of drifted items.
	migrated := e.pickMigrations(topo, states, now)
	for _, m := range migrated {
		bld.AddItem(m)
		announced[m.ID] = true
		for _, sn := range m.StoringNodes {
			states[sn].Used++
		}
	}

	// Repair (self-healing data plane): re-announce under-replicated items
	// whose providers the churn detector marked dead, placing replacement
	// replicas on alive nodes only.
	repaired := e.pickRepairs(topo, states, now, announced)
	for _, r := range repaired {
		bld.AddItem(r)
		for _, sn := range r.StoringNodes {
			states[sn].Used++
		}
	}

	blk := bld.Seal()
	if _, err := e.ch.Add(blk); err != nil {
		return nil, fmt.Errorf("engine: own block rejected: %w", err)
	}
	return &MineResult{Block: blk, Migrations: len(migrated), Repairs: len(repaired)}, nil
}

// nodeLiveness returns the adapter's churn verdict for node i (alive when
// no detector is wired).
func (e *Engine) nodeLiveness(i int) Liveness {
	if e.cfg.Liveness == nil || i < 0 || i >= len(e.cfg.Accounts) {
		return LiveAlive
	}
	return e.cfg.Liveness(i)
}

// sortedLiveIDs returns the live-item IDs in deterministic order.
func (e *Engine) sortedLiveIDs() []meta.DataID {
	ids := make([]meta.DataID, 0, len(e.liveItems))
	for id := range e.liveItems {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && lessID(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// pickRepairs selects up to RepairMaxPerBlock live items that have fallen
// under their replica floor because providers died, and returns
// re-announced clones whose storing set is the surviving providers plus
// UFL-chosen alive nodes. Suspect nodes keep their replicas counted
// (hysteresis) but receive no new ones. The cursor round-robins across
// items so every item is eventually reconsidered.
func (e *Engine) pickRepairs(topo *netsim.Topology, states []alloc.NodeState, now time.Duration, skip map[meta.DataID]bool) []*meta.Item {
	maxPer := e.cfg.RepairMaxPerBlock
	if maxPer <= 0 || e.cfg.Liveness == nil || len(e.liveItems) == 0 {
		return nil
	}
	// Evaluate every verdict once per block; dead AND suspect nodes are
	// masked out of placement by presenting them as full.
	verdicts := make([]Liveness, len(states))
	masked := make([]alloc.NodeState, len(states))
	alive := 0
	for i := range states {
		verdicts[i] = e.nodeLiveness(i)
		masked[i] = states[i]
		if verdicts[i] == LiveAlive {
			alive++
		} else {
			masked[i].Used = masked[i].Capacity
		}
	}
	if alive == 0 {
		return nil
	}
	wantFloor := e.cfg.Planner.MinReplicas
	if wantFloor > alive {
		wantFloor = alive
	}
	ids := e.sortedLiveIDs()
	var out []*meta.Item
	budget := 4 * maxPer // deficiency-evaluation budget per block
	for k := 0; k < len(ids) && budget > 0 && len(out) < maxPer; k++ {
		it := e.liveItems[ids[(e.repairCursor+k)%len(ids)]]
		if skip[it.ID] || it.Expired(now) || len(it.StoringNodes) == 0 {
			continue
		}
		survivors := make([]int, 0, len(it.StoringNodes))
		for _, sn := range it.StoringNodes {
			if sn >= 0 && sn < len(states) && verdicts[sn] != LiveDead {
				survivors = append(survivors, sn)
			}
		}
		if len(survivors) >= wantFloor {
			continue // at or above floor counting not-dead providers
		}
		budget--
		pl, err := e.cfg.Planner.Place(topo, masked)
		if err != nil {
			continue
		}
		newSet := append([]int(nil), survivors...)
		inSet := make(map[int]bool, wantFloor)
		for _, sn := range newSet {
			inSet[sn] = true
		}
		for _, sn := range pl.StoringNodes {
			if len(newSet) >= wantFloor {
				break
			}
			if !inSet[sn] && verdicts[sn] == LiveAlive {
				inSet[sn] = true
				newSet = append(newSet, sn)
			}
		}
		if len(newSet) <= len(survivors) || sameSet(newSet, it.StoringNodes) {
			continue // placement added nothing: re-announcing buys no replica
		}
		repairedItem := it.Clone()
		repairedItem.StoringNodes = sortedCopy(newSet)
		out = append(out, repairedItem)
		for _, sn := range repairedItem.StoringNodes {
			masked[sn].Used++ // later repairs in this block see the load
		}
	}
	e.repairCursor += 4 * maxPer
	return out
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// placeItem chooses storing nodes for one data item under the configured
// strategy.
func (e *Engine) placeItem(topo *netsim.Topology, states []alloc.NodeState) []int {
	optimal := e.place(e.cfg.Planner, topo, states)
	if e.cfg.RandomPlacement {
		// Baseline: same replica count, uniformly random nodes
		// (Section VI-B's "fair comparison").
		return alloc.RandomPlace(states, len(optimal), e.cfg.Rand)
	}
	return optimal
}

// placeBlock runs the block planner (no replica floor).
func (e *Engine) placeBlock(topo *netsim.Topology, states []alloc.NodeState) []int {
	return e.place(e.cfg.BlockPlanner, topo, states)
}

func (e *Engine) place(p *alloc.Planner, topo *netsim.Topology, states []alloc.NodeState) []int {
	pl, err := p.Place(topo, states)
	if err != nil {
		return nil
	}
	return pl.StoringNodes
}

// pickMigrations selects up to MigrateMaxPerBlock live items whose
// current storing set costs more than MigrateCostRatio times the freshly
// computed optimal, and returns re-announced clones carrying the new
// assignment. The cursor round-robins across items so every item is
// eventually reconsidered.
func (e *Engine) pickMigrations(topo *netsim.Topology, states []alloc.NodeState, now time.Duration) []*meta.Item {
	maxPer := e.cfg.MigrateMaxPerBlock
	if maxPer <= 0 || len(e.liveItems) == 0 {
		return nil
	}
	ratio := e.cfg.MigrateCostRatio
	if ratio <= 1 {
		ratio = 1.5
	}
	ids := make([]meta.DataID, 0, len(e.liveItems))
	for id := range e.liveItems {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && lessID(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var out []*meta.Item
	budget := 4 * maxPer // cost-evaluation budget per block
	for k := 0; k < len(ids) && budget > 0 && len(out) < maxPer; k++ {
		idx := (e.migrateCursor + k) % len(ids)
		it := e.liveItems[ids[idx]]
		if it.Expired(now) || len(it.StoringNodes) == 0 {
			continue
		}
		// Churn guard: items with a dead provider are the repair path's
		// responsibility, not a cost-drift migration.
		deadProvider := false
		for _, sn := range it.StoringNodes {
			if e.nodeLiveness(sn) == LiveDead {
				deadProvider = true
				break
			}
		}
		if deadProvider {
			continue
		}
		budget--
		in := e.cfg.Planner.BuildInstance(topo, states)
		pl, err := e.cfg.Planner.Place(topo, states)
		if err != nil || len(pl.StoringNodes) == 0 {
			continue
		}
		// Churn guard: never migrate ONTO a suspect or dead node — a
		// cheaper-looking placement that immediately needs repair is a loss.
		targetsAlive := true
		for _, sn := range pl.StoringNodes {
			if e.nodeLiveness(sn) != LiveAlive {
				targetsAlive = false
				break
			}
		}
		if !targetsAlive {
			continue
		}
		cur := SetCost(in, it.StoringNodes)
		des := SetCost(in, pl.StoringNodes)
		if sameSet(it.StoringNodes, pl.StoringNodes) || cur <= ratio*des {
			continue
		}
		migrated := it.Clone()
		migrated.StoringNodes = pl.StoringNodes
		out = append(out, migrated)
	}
	e.migrateCursor += 4 * maxPer
	return out
}

// SetCost evaluates the UFL objective of serving every client from the
// given open set under the instance's costs.
func SetCost(in *ufl.Instance, open []int) float64 {
	total := 0.0
	for _, i := range open {
		if i >= 0 && i < in.NFacilities() {
			total += in.OpenCost[i]
		}
	}
	for j := 0; j < in.NClients(); j++ {
		best := math.Inf(1)
		for _, i := range open {
			if i >= 0 && i < in.NFacilities() {
				if c := in.ConnCost[i][j]; c < best {
					best = c
				}
			}
		}
		if !math.IsInf(best, 1) {
			total += best
		}
	}
	return total
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			return false
		}
	}
	return true
}

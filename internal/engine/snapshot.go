package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/block"
	"repro/internal/chain"
	"repro/internal/meta"
	"repro/internal/pos"
)

// Serializable state snapshots and body pruning (DESIGN.md §14). The
// engine's periodic in-memory snapshots (sync.go) become exportable: a
// StateSnapshot carries everything a fresh node needs to stand at a
// finalized height without replaying from genesis — the full block at the
// snapshot height (the bootstrap anchor), the ledger counters, the storage
// view, and the on-chain item indexes. The encoding is deterministic
// (sorted IDs, fixed-width integers), so its SHA-256 content hash is
// comparable across nodes and transports.

// SnapshotVersion is the codec version embedded in every encoded snapshot.
const SnapshotVersion = 1

var snapshotMagic = [4]byte{'S', 'N', 'A', 'P'}

// ErrBadSnapshot covers every snapshot decode or validation failure.
var ErrBadSnapshot = errors.New("engine: bad snapshot")

// ItemExpiry is one pending valid-time expiry carried by a snapshot.
type ItemExpiry struct {
	At time.Duration
	ID meta.DataID
}

// ItemAssignment is one live storage assignment carried by a snapshot.
type ItemAssignment struct {
	ID    meta.DataID
	Nodes []int
}

// StateSnapshot is the engine's chain-derived state frozen at one height,
// in serializable form. Roster-indexed slices must match the receiving
// engine's Config.Accounts; configuration (capacities, mobility, planner
// parameters) is NOT part of the snapshot — both sides must already agree
// on it, exactly as they must agree on genesis.
type StateSnapshot struct {
	Height uint64
	// Block is the full block at Height: the bootstrap anchor the
	// receiving replica links its live suffix to.
	Block  *block.Block
	Ledger pos.LedgerState

	// Storage-view state (chain-derived portion).
	DataLive    []int
	BlockBodies []int
	RecentDepth []int
	ViewHeight  uint64
	Assignments []ItemAssignment // sorted by ID
	Expiries    []ItemExpiry     // sorted by (At, ID)
	Expired     []meta.DataID    // sorted

	// InChain lists every data ID recorded on-chain up to Height (sorted);
	// LiveItems carries the latest on-chain version of each live item
	// (sorted by ID).
	InChain   []meta.DataID
	LiveItems []*meta.Item
}

// --- codec ----------------------------------------------------------------

type snapWriter struct{ b []byte }

func (w *snapWriter) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *snapWriter) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *snapWriter) raw(p []byte) { w.b = append(w.b, p...) }
func (w *snapWriter) blob(p []byte) {
	w.u32(uint32(len(p)))
	w.raw(p)
}

type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) || r.off+n < 0 {
		r.fail("truncated at offset %d (want %d bytes)", r.off, n)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *snapReader) u32() uint32 {
	b := r.take(4)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *snapReader) u64() uint64 {
	b := r.take(8)
	if r.err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// count reads a list length and bounds it by the bytes remaining at
// entrySize bytes per entry, so corrupt prefixes cannot trigger huge
// allocations.
func (r *snapReader) count(entrySize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || entrySize > 0 && n > (len(r.b)-r.off)/entrySize {
		r.fail("list length %d exceeds remaining input", n)
		return 0
	}
	return n
}

func (r *snapReader) id() (id meta.DataID) {
	copy(id[:], r.take(len(id)))
	return id
}

func (r *snapReader) blob() []byte {
	n := r.count(1)
	return r.take(n)
}

func putIntList(w *snapWriter, ns []int) {
	w.u32(uint32(len(ns)))
	for _, n := range ns {
		w.u64(uint64(int64(n)))
	}
}

func putU64IntSlice(w *snapWriter, ns []int) {
	for _, n := range ns {
		w.u64(uint64(int64(n)))
	}
}

// Encode serializes the snapshot with the canonical deterministic layout.
func (s *StateSnapshot) Encode() []byte {
	w := &snapWriter{b: make([]byte, 0, 4096)}
	w.raw(snapshotMagic[:])
	w.u32(SnapshotVersion)
	w.u64(s.Height)
	w.blob(s.Block.Encode())

	n := len(s.Ledger.Mined)
	w.u32(uint32(n))
	for _, v := range s.Ledger.Mined {
		w.u64(v)
	}
	for _, v := range s.Ledger.Stored {
		w.u64(v)
	}
	for _, v := range s.Ledger.Rented {
		w.u64(uint64(v))
	}
	w.u64(s.Ledger.Applied)
	w.u64(math.Float64bits(s.Ledger.Scale))

	putU64IntSlice(w, s.DataLive)
	putU64IntSlice(w, s.BlockBodies)
	putU64IntSlice(w, s.RecentDepth)
	w.u64(s.ViewHeight)

	w.u32(uint32(len(s.Assignments)))
	for _, a := range s.Assignments {
		w.raw(a.ID[:])
		putIntList(w, a.Nodes)
	}
	w.u32(uint32(len(s.Expiries)))
	for _, e := range s.Expiries {
		w.u64(uint64(e.At))
		w.raw(e.ID[:])
	}
	w.u32(uint32(len(s.Expired)))
	for _, id := range s.Expired {
		w.raw(id[:])
	}
	w.u32(uint32(len(s.InChain)))
	for _, id := range s.InChain {
		w.raw(id[:])
	}
	w.u32(uint32(len(s.LiveItems)))
	for _, it := range s.LiveItems {
		w.blob(it.Encode())
	}
	return w.b
}

// ContentHash returns the SHA-256 of the canonical encoding; peers compare
// it before installing a transferred snapshot.
func (s *StateSnapshot) ContentHash() [sha256.Size]byte {
	return sha256.Sum256(s.Encode())
}

// DecodeSnapshot parses an encoded snapshot. It validates structure only
// (truncation, length sanity, block hash integrity via block.Decode);
// semantic validation against the local configuration happens in
// BootstrapFromSnapshot.
func DecodeSnapshot(data []byte) (*StateSnapshot, error) {
	r := &snapReader{b: data}
	var magic [4]byte
	copy(magic[:], r.take(4))
	if r.err == nil && magic != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if v := r.u32(); r.err == nil && v != SnapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, v)
	}
	s := &StateSnapshot{}
	s.Height = r.u64()
	blockBlob := r.blob()
	if r.err == nil {
		b, err := block.Decode(blockBlob)
		if err != nil {
			return nil, fmt.Errorf("%w: anchor block: %v", ErrBadSnapshot, err)
		}
		s.Block = b
	}

	n := r.count(8)
	readU64s := func() []uint64 {
		if r.err != nil {
			return nil
		}
		out := make([]uint64, n)
		for i := range out {
			out[i] = r.u64()
		}
		return out
	}
	readInts := func() []int {
		if r.err != nil {
			return nil
		}
		out := make([]int, n)
		for i := range out {
			out[i] = int(int64(r.u64()))
		}
		return out
	}
	s.Ledger.Mined = readU64s()
	s.Ledger.Stored = readU64s()
	s.Ledger.Rented = make([]int64, n)
	for i := range s.Ledger.Rented {
		s.Ledger.Rented[i] = int64(r.u64())
	}
	s.Ledger.Applied = r.u64()
	s.Ledger.Scale = math.Float64frombits(r.u64())

	s.DataLive = readInts()
	s.BlockBodies = readInts()
	s.RecentDepth = readInts()
	s.ViewHeight = r.u64()

	na := r.count(36)
	for i := 0; i < na && r.err == nil; i++ {
		a := ItemAssignment{ID: r.id()}
		m := r.count(8)
		if m > 0 && r.err == nil {
			a.Nodes = make([]int, m)
			for j := range a.Nodes {
				a.Nodes[j] = int(int64(r.u64()))
			}
		}
		s.Assignments = append(s.Assignments, a)
	}
	ne := r.count(40)
	for i := 0; i < ne && r.err == nil; i++ {
		at := time.Duration(r.u64())
		s.Expiries = append(s.Expiries, ItemExpiry{At: at, ID: r.id()})
	}
	nx := r.count(32)
	for i := 0; i < nx && r.err == nil; i++ {
		s.Expired = append(s.Expired, r.id())
	}
	nc := r.count(32)
	for i := 0; i < nc && r.err == nil; i++ {
		s.InChain = append(s.InChain, r.id())
	}
	nl := r.count(4)
	for i := 0; i < nl && r.err == nil; i++ {
		itemBlob := r.blob()
		if r.err != nil {
			break
		}
		it, err := meta.Decode(itemBlob)
		if err != nil {
			return nil, fmt.Errorf("%w: live item %d: %v", ErrBadSnapshot, i, err)
		}
		s.LiveItems = append(s.LiveItems, it)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, r.err)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(data)-r.off)
	}
	return s, nil
}

// --- export ---------------------------------------------------------------

// ExportSnapshot serializes the newest retained periodic snapshot that is
// still on this chain and whose anchor body is still in the body window.
// ok is false when no such snapshot exists (snapshots disabled, or none
// taken yet).
func (e *Engine) ExportSnapshot() (*StateSnapshot, bool) {
	for i := len(e.snaps) - 1; i >= 0; i-- {
		s := e.snaps[i]
		hdr, ok := e.ch.HeaderAt(s.height)
		if !ok || hdr.Hash != s.hash {
			continue
		}
		b, err := e.ch.Body(s.height)
		if err != nil {
			continue
		}
		return exportSnapshot(s, b), true
	}
	return nil, false
}

func exportSnapshot(s snapshot, anchor *block.Block) *StateSnapshot {
	v := s.view
	out := &StateSnapshot{
		Height:      s.height,
		Block:       anchor,
		Ledger:      s.ledger.ExportState(),
		DataLive:    append([]int(nil), v.dataLive...),
		BlockBodies: append([]int(nil), v.blockBodies...),
		RecentDepth: append([]int(nil), v.recentDepth...),
		ViewHeight:  v.height,
	}
	out.Assignments = make([]ItemAssignment, 0, len(v.assignments))
	for id, nodes := range v.assignments {
		out.Assignments = append(out.Assignments, ItemAssignment{ID: id, Nodes: append([]int(nil), nodes...)})
	}
	sort.Slice(out.Assignments, func(i, j int) bool {
		return lessID(out.Assignments[i].ID, out.Assignments[j].ID)
	})
	out.Expiries = make([]ItemExpiry, 0, len(v.expiries))
	for _, ex := range v.expiries {
		out.Expiries = append(out.Expiries, ItemExpiry{At: ex.at, ID: ex.id})
	}
	sort.Slice(out.Expiries, func(i, j int) bool {
		a, b := out.Expiries[i], out.Expiries[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return lessID(a.ID, b.ID)
	})
	out.Expired = make([]meta.DataID, 0, len(v.expired))
	for id := range v.expired {
		out.Expired = append(out.Expired, id)
	}
	sort.Slice(out.Expired, func(i, j int) bool { return lessID(out.Expired[i], out.Expired[j]) })
	out.InChain = make([]meta.DataID, 0, len(s.inChain))
	for id := range s.inChain {
		out.InChain = append(out.InChain, id)
	}
	sort.Slice(out.InChain, func(i, j int) bool { return lessID(out.InChain[i], out.InChain[j]) })
	out.LiveItems = make([]*meta.Item, 0, len(s.liveItems))
	for _, it := range s.liveItems {
		out.LiveItems = append(out.LiveItems, it)
	}
	sort.Slice(out.LiveItems, func(i, j int) bool { return lessID(out.LiveItems[i].ID, out.LiveItems[j].ID) })
	return out
}

// --- bootstrap ------------------------------------------------------------

// BootstrapFromSnapshot initializes a fresh engine (height 0, nothing
// adopted yet) from a finalized snapshot: the chain replica is anchored at
// the snapshot block, ledger/view/item state is restored without any
// replay, and the snapshot is seeded into the periodic-snapshot ring so
// fork adoption works immediately above the anchor. Heights below the
// anchor stay unknown (header spine starts at the anchor); the node then
// catches up the live suffix through the normal §10 locator sync.
func (e *Engine) BootstrapFromSnapshot(s *StateSnapshot) error {
	if e.ch.Height() != 0 || e.ch.BodyBase() != 0 {
		return errors.New("engine: bootstrap requires a fresh engine at height 0")
	}
	if s == nil || s.Block == nil {
		return fmt.Errorf("%w: missing anchor block", ErrBadSnapshot)
	}
	if s.Height == 0 || s.Block.Index != s.Height {
		return fmt.Errorf("%w: anchor index %d does not match height %d", ErrBadSnapshot, s.Block.Index, s.Height)
	}
	if err := s.Block.VerifySelf(); err != nil {
		return fmt.Errorf("%w: anchor: %v", ErrBadSnapshot, err)
	}
	if s.Ledger.Applied != s.Height {
		return fmt.Errorf("%w: ledger applied %d, snapshot height %d", ErrBadSnapshot, s.Ledger.Applied, s.Height)
	}
	n := len(e.cfg.Accounts)
	if len(s.DataLive) != n || len(s.BlockBodies) != n || len(s.RecentDepth) != n {
		return fmt.Errorf("%w: view roster size mismatch (want %d nodes)", ErrBadSnapshot, n)
	}
	ledger := pos.NewLedger(e.cfg.Accounts)
	ledger.RescaleEvery = e.cfg.StakeRescaleEvery
	if err := ledger.RestoreState(s.Ledger); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	view := NewStorageView(n, e.cfg.StorageCapacity, e.cfg.MobilityRange, e.cfg.InitialRecentDepth, e.cfg.RecentDepthCap)
	copy(view.dataLive, s.DataLive)
	copy(view.blockBodies, s.BlockBodies)
	copy(view.recentDepth, s.RecentDepth)
	view.height = s.ViewHeight
	for _, a := range s.Assignments {
		view.assignments[a.ID] = append([]int(nil), a.Nodes...)
	}
	// A sorted-ascending array already satisfies the min-heap property.
	view.expiries = make(expiryHeap, 0, len(s.Expiries))
	for _, ex := range s.Expiries {
		view.expiries = append(view.expiries, expiry{at: ex.At, id: ex.ID})
	}
	for _, id := range s.Expired {
		view.expired[id] = true
	}

	newCh, err := chain.NewBootstrapped(e.cfg.Genesis, s.Block)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	newCh.PreAppend = e.preAppend
	newCh.PostAppend = e.postAppend

	inChain := make(map[meta.DataID]bool, len(s.InChain))
	for _, id := range s.InChain {
		inChain[id] = true
	}
	liveItems := make(map[meta.DataID]*meta.Item, len(s.LiveItems))
	for _, it := range s.LiveItems {
		if !inChain[it.ID] {
			return fmt.Errorf("%w: live item %s not marked on-chain", ErrBadSnapshot, it.ID.Short())
		}
		liveItems[it.ID] = it
	}

	// Commit.
	e.ch = newCh
	e.ledger = ledger
	e.view = view
	e.inChain = inChain
	e.liveItems = liveItems
	for id := range e.pool {
		if inChain[id] {
			delete(e.pool, id)
		}
	}
	snap := snapshot{
		height:    s.Height,
		hash:      s.Block.Hash,
		ledger:    ledger.Clone(),
		view:      view.Clone(),
		inChain:   make(map[meta.DataID]bool, len(inChain)),
		liveItems: make(map[meta.DataID]*meta.Item, len(liveItems)),
	}
	for id := range inChain {
		snap.inChain[id] = true
	}
	for id, it := range liveItems {
		snap.liveItems[id] = it
	}
	e.snaps = []snapshot{snap}
	return nil
}

// --- pruning --------------------------------------------------------------

// PruneHorizon returns the height below which bodies may be discarded
// right now: the minimum of the newest checkpoint, the oldest retained
// snapshot, and tip minus PruneDepth. Zero means nothing is prunable.
func (e *Engine) PruneHorizon() uint64 {
	if e.cfg.PruneDepth <= 0 {
		return 0
	}
	h := e.ch.Height()
	depth := uint64(e.cfg.PruneDepth)
	if h < depth {
		return 0
	}
	horizon := h - depth
	if cp := e.LastCheckpoint(); cp < horizon {
		horizon = cp
	}
	if len(e.snaps) == 0 {
		return 0
	}
	if oldest := e.snaps[0].height; oldest < horizon {
		horizon = oldest
	}
	return horizon
}

// maybePrune discards bodies below the prune horizon (called after each
// periodic snapshot). AdoptSuffix never needs bodies below the horizon:
// forks below the checkpoint are refused, and replay always starts at a
// retained snapshot, both of which bound the horizon.
func (e *Engine) maybePrune() {
	horizon := e.PruneHorizon()
	if horizon == 0 || horizon <= e.ch.BodyBase() {
		return
	}
	if n := e.ch.Prune(horizon); n > 0 && e.cfg.OnPrune != nil {
		e.cfg.OnPrune(horizon, n)
	}
}

package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/meta"
	"repro/internal/pos"
)

// Incremental fork adoption (DESIGN.md §10). AdoptChain re-validates a
// candidate from genesis against a scratch ledger — O(chain) work that
// grows forever. AdoptSuffix instead adopts only the blocks past the fork
// point, sourcing the ledger/view state at the fork point from a periodic
// snapshot (or from the live state when the suffix simply extends the
// tip), and falls back to the legacy scratch replay when the fork
// predates every snapshot it kept.

// snapshotKeep is how many periodic snapshots the engine retains. Two
// snapshots guarantee that any fork point within one full
// SnapshotInterval of the tip is covered even right after a boundary.
const snapshotKeep = 2

// snapshot is the engine's chain-derived state frozen at one height.
type snapshot struct {
	height    uint64
	hash      block.Hash
	ledger    *pos.Ledger
	view      *StorageView
	inChain   map[meta.DataID]bool
	liveItems map[meta.DataID]*meta.Item
}

// SuffixStats reports what an AdoptSuffix call did, for telemetry: how
// much state was replayed versus a full scratch replay, and how much of
// the batch the verify pool handled.
type SuffixStats struct {
	// ForkPoint is the height of the common ancestor the suffix extends.
	ForkPoint uint64
	// Appended counts suffix blocks validated and applied.
	Appended int
	// Replayed counts this node's own blocks re-applied between the
	// snapshot and the fork point to reconstruct fork-point state.
	Replayed int
	// FullReplay reports that no snapshot covered the fork point and the
	// engine fell back to the legacy scratch replay from genesis.
	FullReplay bool
	// ParallelVerified counts blocks content-verified by the worker pool
	// (0 when the pool ran sequentially).
	ParallelVerified int
}

// maybeSnapshot freezes the engine's state every SnapshotInterval blocks
// (called from postAppend, after the block's transitions applied).
func (e *Engine) maybeSnapshot(height uint64) {
	k := uint64(e.cfg.SnapshotInterval)
	if k == 0 || height == 0 || height%k != 0 {
		return
	}
	s := snapshot{
		height:    height,
		hash:      e.ch.At(height).Hash,
		ledger:    e.ledger.Clone(),
		view:      e.view.Clone(),
		inChain:   make(map[meta.DataID]bool, len(e.inChain)),
		liveItems: make(map[meta.DataID]*meta.Item, len(e.liveItems)),
	}
	for id := range e.inChain {
		s.inChain[id] = true
	}
	for id, it := range e.liveItems {
		s.liveItems[id] = it
	}
	e.snaps = append(e.snaps, s)
	if len(e.snaps) > snapshotKeep {
		e.snaps = e.snaps[len(e.snaps)-snapshotKeep:]
	}
	e.maybePrune()
}

// pruneSnapshots drops snapshots that are no longer on this chain (their
// height was rewritten by a fork adoption). Spine headers are enough:
// snapshot heights may lie below the body window.
func (e *Engine) pruneSnapshots() {
	kept := e.snaps[:0]
	for _, s := range e.snaps {
		if hdr, ok := e.ch.HeaderAt(s.height); ok && hdr.Hash == s.hash {
			kept = append(kept, s)
		}
	}
	for i := len(kept); i < len(e.snaps); i++ {
		e.snaps[i] = snapshot{} // release clones
	}
	e.snaps = kept
}

// bestSnapshot returns the newest retained snapshot at or below height
// that is still on this chain.
func (e *Engine) bestSnapshot(height uint64) (snapshot, bool) {
	for i := len(e.snaps) - 1; i >= 0; i-- {
		s := e.snaps[i]
		if s.height > height {
			continue
		}
		if hdr, ok := e.ch.HeaderAt(s.height); !ok || hdr.Hash != s.hash {
			continue
		}
		return s, true
	}
	return snapshot{}, false
}

// Snapshots returns the heights of the currently retained snapshots
// (ascending). Exposed for tests and diagnostics.
func (e *Engine) Snapshots() []uint64 {
	out := make([]uint64, 0, len(e.snaps))
	for _, s := range e.snaps {
		out = append(out, s.height)
	}
	return out
}

// verifyContent runs VerifySelf (hash integrity + metadata signatures)
// over every block, fanning out across Config.VerifyWorkers goroutines.
// The result is deterministic regardless of worker count and scheduling:
// when several blocks fail, the lowest-index failure is returned. The
// returned count is how many blocks the parallel pool verified (0 when it
// ran sequentially).
func (e *Engine) verifyContent(blocks []*block.Block) (int, error) {
	workers := e.cfg.VerifyWorkers
	if workers > len(blocks) {
		workers = len(blocks)
	}
	if workers <= 1 {
		for i, b := range blocks {
			if err := b.VerifySelf(); err != nil {
				return 0, fmt.Errorf("engine: suffix block %d: %w", i, err)
			}
		}
		return 0, nil
	}
	errs := make([]error, len(blocks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(blocks) {
					return
				}
				errs[i] = blocks[i].VerifySelf()
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return len(blocks), fmt.Errorf("engine: suffix block %d: %w", i, err)
		}
	}
	return len(blocks), nil
}

// AdoptSuffix evaluates a candidate chain suffix whose first block links
// to a block this engine already holds (the fork point). The combined
// chain must be strictly longer than the current one and respect
// checkpoint finality, exactly as AdoptChain requires of a full
// candidate; block content is verified by the bounded worker pool and
// PoS claims (when enabled) are replayed sequentially against the ledger
// state reconstructed at the fork point.
//
// State reconstruction costs only the blocks between the newest covering
// snapshot and the fork point — for the common reconnect case (suffix
// extends the tip) nothing is replayed at all. When no snapshot covers
// the fork point, the engine falls back to the legacy scratch replay
// (stats.FullReplay), guaranteeing the same acceptance decisions.
//
// Like AdoptChain, AdoptSuffix runs no OnAppend callbacks and does not
// check block timestamps against Now; on success all chain-derived state
// is swapped atomically and true is returned. On any rejection the
// engine is left exactly as it was.
func (e *Engine) AdoptSuffix(suffix []*block.Block) (SuffixStats, bool) {
	var st SuffixStats
	forkPoint, err := e.ch.CheckSuffixLinks(suffix)
	if err != nil {
		return st, false
	}
	st.ForkPoint = forkPoint
	// Checkpoint rule (Section V-D): refuse to rewrite finalized history.
	if cp := e.LastCheckpoint(); cp > 0 && forkPoint < cp {
		return st, false
	}
	st.ParallelVerified, err = e.verifyContent(suffix)
	if err != nil {
		return st, false
	}

	// Reconstruct ledger/view/index state as of the fork point.
	var (
		ledger     *pos.Ledger
		view       *StorageView
		inChain    map[meta.DataID]bool
		liveItems  map[meta.DataID]*meta.Item
		replayFrom uint64
	)
	if forkPoint == e.ch.Height() {
		// Pure catch-up: the live state *is* the fork-point state. Clone it
		// so a claim failure mid-suffix leaves the engine untouched.
		ledger = e.ledger.Clone()
		view = e.view.Clone()
		inChain = make(map[meta.DataID]bool, len(e.inChain))
		for id := range e.inChain {
			inChain[id] = true
		}
		liveItems = make(map[meta.DataID]*meta.Item, len(e.liveItems))
		for id, it := range e.liveItems {
			liveItems[id] = it
		}
		replayFrom = forkPoint
	} else if s, ok := e.bestSnapshot(forkPoint); ok {
		ledger = s.ledger.Clone()
		view = s.view.Clone()
		inChain = make(map[meta.DataID]bool, len(s.inChain))
		for id := range s.inChain {
			inChain[id] = true
		}
		liveItems = make(map[meta.DataID]*meta.Item, len(s.liveItems))
		for id, it := range s.liveItems {
			liveItems[id] = it
		}
		replayFrom = s.height
	} else {
		// The fork predates every snapshot: legacy scratch replay of the
		// synthesized full candidate. No extra network cost — the prefix is
		// our own chain. A pruned replica cannot synthesize that prefix;
		// refusing is safe because pruning keeps the body window above the
		// checkpoint, so any such fork is non-finalizable history anyway.
		if e.ch.BodyBase() != 0 {
			return st, false
		}
		candidate := make([]*block.Block, 0, int(forkPoint)+1+len(suffix))
		candidate = append(candidate, e.ch.Blocks()[:forkPoint+1]...)
		candidate = append(candidate, suffix...)
		st.FullReplay = true
		st.Replayed = len(candidate) - 1
		st.Appended = len(suffix)
		return st, e.AdoptChain(candidate)
	}

	// Replay our own blocks (replayFrom, forkPoint] — already validated
	// when first adopted, so only the state transitions run.
	for h := replayFrom + 1; h <= forkPoint; h++ {
		b := e.ch.At(h)
		if err := ledger.ApplyBlock(b); err != nil {
			panic(fmt.Sprintf("engine: snapshot replay at %d: %v", h, err))
		}
		view.ApplyBlock(b)
		for _, it := range b.Items {
			inChain[it.ID] = true
			liveItems[it.ID] = it
		}
		st.Replayed++
	}

	// Validate and apply the suffix on the reconstructed state.
	prev := e.ch.At(forkPoint)
	for _, b := range suffix {
		if e.cfg.ValidateClaims {
			if err := e.cfg.PoS.ValidateClaim(prev, b, ledger); err != nil {
				return st, false
			}
		}
		if err := ledger.ApplyBlock(b); err != nil {
			return st, false
		}
		view.ApplyBlock(b)
		for _, it := range b.Items {
			inChain[it.ID] = true
			liveItems[it.ID] = it
		}
		prev = b
		st.Appended++
	}

	// Commit: swap the chain tail and all derived state atomically.
	if err := e.ch.ReplaceSuffix(forkPoint, suffix); err != nil {
		// Cannot happen: CheckSuffixLinks vetted the same suffix above.
		panic("engine: suffix replace after validation: " + err.Error())
	}
	e.ledger = ledger
	e.view = view
	e.inChain = inChain
	e.liveItems = liveItems
	for _, b := range suffix {
		for _, it := range b.Items {
			delete(e.pool, it.ID)
		}
	}
	e.pruneSnapshots()
	e.maybePrune()
	return st, true
}

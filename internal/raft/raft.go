// Package raft implements the Raft consensus algorithm (Ongaro &
// Ousterhout, USENIX ATC 2014) used by the paper for "general information
// consensus" over edge devices (Section VI: "we implement raft algorithm
// in our blockchain system").
//
// The implementation covers leader election, log replication, commitment
// and follower catch-up, and runs single-threaded over an abstract Clock
// and Transport so it plugs into the deterministic simulation. It counts
// every message sent per type, which powers the heartbeat-overhead
// ablation the paper calls out as future work ("the approach transmits a
// large number of heartbeat messages").
package raft

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// NodeID identifies a Raft peer.
type NodeID int

// State is the node's current role.
type State int

// Raft roles.
const (
	Follower State = iota + 1
	Candidate
	Leader
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Entry is one log entry.
type Entry struct {
	Term uint64
	Cmd  []byte
}

// Message is the union of Raft RPCs. Exactly one field group is used per
// message; Type discriminates.
type Message struct {
	Type MsgType
	From NodeID
	Term uint64

	// RequestVote fields.
	LastLogIndex uint64
	LastLogTerm  uint64

	// Vote reply.
	VoteGranted bool

	// AppendEntries fields.
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []Entry
	LeaderCommit uint64

	// AppendEntries reply.
	Success    bool
	MatchIndex uint64
}

// MsgType discriminates Raft RPCs.
type MsgType int

// Raft RPC types.
const (
	MsgRequestVote MsgType = iota + 1
	MsgVoteReply
	MsgAppendEntries
	MsgAppendReply
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgRequestVote:
		return "RequestVote"
	case MsgVoteReply:
		return "VoteReply"
	case MsgAppendEntries:
		return "AppendEntries"
	case MsgAppendReply:
		return "AppendReply"
	default:
		return fmt.Sprintf("msg(%d)", int(t))
	}
}

// WireSize approximates the encoded size of the message in bytes, for
// network-overhead accounting.
func (m *Message) WireSize() int {
	size := 64 // fixed header fields
	for _, e := range m.Entries {
		size += 16 + len(e.Cmd)
	}
	return size
}

// Transport delivers a message to a peer. Implementations may drop or
// delay messages arbitrarily; Raft tolerates both.
type Transport interface {
	Send(to NodeID, msg *Message)
}

// Timer is a cancellable pending callback.
type Timer interface {
	Stop() bool
}

// Clock schedules callbacks; the simulation supplies virtual time.
type Clock interface {
	After(d time.Duration, fn func()) Timer
}

// Config configures one Raft node.
type Config struct {
	// ID is this node; Peers lists all other nodes.
	ID    NodeID
	Peers []NodeID
	// ElectionTimeoutMin/Max bound the randomized election timeout
	// (defaults 150-300 ms).
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// HeartbeatInterval is the leader's idle AppendEntries period
	// (default 50 ms).
	HeartbeatInterval time.Duration
	// Transport sends messages; Clock schedules timeouts.
	Transport Transport
	Clock     Clock
	// RNG randomizes election timeouts.
	RNG *rand.Rand
	// Apply is called once per committed entry, in log order.
	Apply func(index uint64, cmd []byte)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.ElectionTimeoutMin == 0 {
		out.ElectionTimeoutMin = 150 * time.Millisecond
	}
	if out.ElectionTimeoutMax == 0 {
		out.ElectionTimeoutMax = 2 * out.ElectionTimeoutMin
	}
	if out.HeartbeatInterval == 0 {
		out.HeartbeatInterval = 50 * time.Millisecond
	}
	return out
}

// Stats counts sent messages by type.
type Stats struct {
	Sent map[MsgType]uint64
	// Elections counts election rounds started by this node.
	Elections uint64
}

// Node is one Raft participant. All methods must be called from the
// simulation goroutine.
type Node struct {
	cfg Config

	state       State
	currentTerm uint64
	votedFor    NodeID  // -1 when none
	log         []Entry // log[0] is a sentinel with Term 0

	commitIndex uint64
	lastApplied uint64

	// Leader volatile state.
	nextIndex  map[NodeID]uint64
	matchIndex map[NodeID]uint64

	// Candidate volatile state.
	votes map[NodeID]bool

	leader NodeID // last known leader, -1 unknown

	electionTimer  Timer
	heartbeatTimer Timer
	stopped        bool

	stats Stats
}

// New creates a node and arms its first election timeout.
func New(cfg Config) *Node {
	c := cfg.withDefaults()
	n := &Node{
		cfg:      c,
		state:    Follower,
		votedFor: -1,
		leader:   -1,
		log:      make([]Entry, 1), // sentinel at index 0
		stats:    Stats{Sent: make(map[MsgType]uint64)},
	}
	n.resetElectionTimer()
	return n
}

// State returns the node's role.
func (n *Node) State() State { return n.state }

// Term returns the current term.
func (n *Node) Term() uint64 { return n.currentTerm }

// Leader returns the last known leader, or -1.
func (n *Node) Leader() NodeID { return n.leader }

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 { return n.commitIndex }

// LogLen returns the number of real entries in the log.
func (n *Node) LogLen() int { return len(n.log) - 1 }

// Stats returns the message counters.
func (n *Node) Stats() *Stats { return &n.stats }

// Stop halts all timers; the node ignores everything afterwards.
func (n *Node) Stop() {
	n.stopped = true
	if n.electionTimer != nil {
		n.electionTimer.Stop()
	}
	if n.heartbeatTimer != nil {
		n.heartbeatTimer.Stop()
	}
}

// Stopped reports whether Stop was called.
func (n *Node) Stopped() bool { return n.stopped }

func (n *Node) lastLogIndex() uint64 { return uint64(len(n.log) - 1) }

func (n *Node) lastLogTerm() uint64 { return n.log[len(n.log)-1].Term }

func (n *Node) quorum() int { return (len(n.cfg.Peers)+1)/2 + 1 }

func (n *Node) send(to NodeID, msg *Message) {
	msg.From = n.cfg.ID
	n.stats.Sent[msg.Type]++
	n.cfg.Transport.Send(to, msg)
}

func (n *Node) resetElectionTimer() {
	if n.electionTimer != nil {
		n.electionTimer.Stop()
	}
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	d := n.cfg.ElectionTimeoutMin
	if span > 0 {
		d += time.Duration(n.cfg.RNG.Int63n(int64(span)))
	}
	n.electionTimer = n.cfg.Clock.After(d, n.onElectionTimeout)
}

func (n *Node) onElectionTimeout() {
	if n.stopped || n.state == Leader {
		return
	}
	n.startElection()
}

func (n *Node) startElection() {
	n.state = Candidate
	n.currentTerm++
	n.votedFor = n.cfg.ID
	n.leader = -1
	n.votes = map[NodeID]bool{n.cfg.ID: true}
	n.stats.Elections++
	n.resetElectionTimer()
	for _, p := range n.cfg.Peers {
		n.send(p, &Message{
			Type:         MsgRequestVote,
			Term:         n.currentTerm,
			LastLogIndex: n.lastLogIndex(),
			LastLogTerm:  n.lastLogTerm(),
		})
	}
	if len(n.cfg.Peers) == 0 {
		n.becomeLeader()
	}
}

func (n *Node) becomeFollower(term uint64) {
	n.state = Follower
	n.currentTerm = term
	n.votedFor = -1
	n.votes = nil
	if n.heartbeatTimer != nil {
		n.heartbeatTimer.Stop()
		n.heartbeatTimer = nil
	}
	n.resetElectionTimer()
}

func (n *Node) becomeLeader() {
	n.state = Leader
	n.leader = n.cfg.ID
	n.votes = nil
	if n.electionTimer != nil {
		n.electionTimer.Stop()
	}
	n.nextIndex = make(map[NodeID]uint64, len(n.cfg.Peers))
	n.matchIndex = make(map[NodeID]uint64, len(n.cfg.Peers))
	for _, p := range n.cfg.Peers {
		n.nextIndex[p] = n.lastLogIndex() + 1
		n.matchIndex[p] = 0
	}
	n.broadcastAppend()
	n.armHeartbeat()
}

func (n *Node) armHeartbeat() {
	n.heartbeatTimer = n.cfg.Clock.After(n.cfg.HeartbeatInterval, func() {
		if n.stopped || n.state != Leader {
			return
		}
		n.broadcastAppend()
		n.armHeartbeat()
	})
}

// Propose appends a command to the leader's log for replication. It
// returns the assigned log index, or ok=false if this node is not the
// leader.
func (n *Node) Propose(cmd []byte) (index uint64, ok bool) {
	if n.stopped || n.state != Leader {
		return 0, false
	}
	n.log = append(n.log, Entry{Term: n.currentTerm, Cmd: cmd})
	idx := n.lastLogIndex()
	n.broadcastAppend()
	n.maybeCommit()
	return idx, true
}

func (n *Node) broadcastAppend() {
	for _, p := range n.cfg.Peers {
		n.sendAppend(p)
	}
}

func (n *Node) sendAppend(p NodeID) {
	next := n.nextIndex[p]
	if next == 0 {
		next = 1
	}
	prevIdx := next - 1
	prevTerm := n.log[prevIdx].Term
	var entries []Entry
	if n.lastLogIndex() >= next {
		entries = append(entries, n.log[next:]...)
	}
	n.send(p, &Message{
		Type:         MsgAppendEntries,
		Term:         n.currentTerm,
		PrevLogIndex: prevIdx,
		PrevLogTerm:  prevTerm,
		Entries:      entries,
		LeaderCommit: n.commitIndex,
	})
}

// Step feeds an incoming message into the node.
func (n *Node) Step(msg *Message) {
	if n.stopped {
		return
	}
	if msg.Term > n.currentTerm {
		n.becomeFollower(msg.Term)
	}
	switch msg.Type {
	case MsgRequestVote:
		n.handleRequestVote(msg)
	case MsgVoteReply:
		n.handleVoteReply(msg)
	case MsgAppendEntries:
		n.handleAppendEntries(msg)
	case MsgAppendReply:
		n.handleAppendReply(msg)
	}
}

func (n *Node) handleRequestVote(msg *Message) {
	grant := false
	if msg.Term >= n.currentTerm && (n.votedFor == -1 || n.votedFor == msg.From) {
		// Candidate's log must be at least as up to date (§5.4.1).
		upToDate := msg.LastLogTerm > n.lastLogTerm() ||
			(msg.LastLogTerm == n.lastLogTerm() && msg.LastLogIndex >= n.lastLogIndex())
		if upToDate {
			grant = true
			n.votedFor = msg.From
			n.resetElectionTimer()
		}
	}
	n.send(msg.From, &Message{Type: MsgVoteReply, Term: n.currentTerm, VoteGranted: grant})
}

func (n *Node) handleVoteReply(msg *Message) {
	if n.state != Candidate || msg.Term != n.currentTerm || !msg.VoteGranted {
		return
	}
	n.votes[msg.From] = true
	if len(n.votes) >= n.quorum() {
		n.becomeLeader()
	}
}

func (n *Node) handleAppendEntries(msg *Message) {
	if msg.Term < n.currentTerm {
		n.send(msg.From, &Message{Type: MsgAppendReply, Term: n.currentTerm, Success: false})
		return
	}
	// Valid leader for this term.
	if n.state != Follower {
		n.becomeFollower(msg.Term)
	}
	n.leader = msg.From
	n.resetElectionTimer()

	// Log consistency check.
	if msg.PrevLogIndex > n.lastLogIndex() || n.log[msg.PrevLogIndex].Term != msg.PrevLogTerm {
		n.send(msg.From, &Message{Type: MsgAppendReply, Term: n.currentTerm, Success: false, MatchIndex: n.commitIndex})
		return
	}
	// Append entries, truncating conflicts.
	idx := msg.PrevLogIndex
	for i, e := range msg.Entries {
		idx = msg.PrevLogIndex + uint64(i) + 1
		if idx <= n.lastLogIndex() {
			if n.log[idx].Term != e.Term {
				n.log = n.log[:idx]
				n.log = append(n.log, e)
			}
		} else {
			n.log = append(n.log, e)
		}
	}
	match := msg.PrevLogIndex + uint64(len(msg.Entries))
	if msg.LeaderCommit > n.commitIndex {
		n.commitIndex = min64(msg.LeaderCommit, n.lastLogIndex())
		n.applyCommitted()
	}
	n.send(msg.From, &Message{Type: MsgAppendReply, Term: n.currentTerm, Success: true, MatchIndex: match})
}

func (n *Node) handleAppendReply(msg *Message) {
	if n.state != Leader || msg.Term != n.currentTerm {
		return
	}
	if msg.Success {
		if msg.MatchIndex > n.matchIndex[msg.From] {
			n.matchIndex[msg.From] = msg.MatchIndex
		}
		n.nextIndex[msg.From] = n.matchIndex[msg.From] + 1
		n.maybeCommit()
		return
	}
	// Back off; use the follower's hint (its commit index) when larger.
	next := n.nextIndex[msg.From]
	if next > 1 {
		next--
	}
	if msg.MatchIndex+1 > next {
		next = msg.MatchIndex + 1
	}
	n.nextIndex[msg.From] = next
	n.sendAppend(msg.From)
}

func (n *Node) maybeCommit() {
	// Find the highest index replicated on a quorum with an entry from the
	// current term (§5.4.2).
	matches := make([]uint64, 0, len(n.cfg.Peers)+1)
	matches = append(matches, n.lastLogIndex())
	for _, p := range n.cfg.Peers {
		matches = append(matches, n.matchIndex[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	candidate := matches[n.quorum()-1]
	if candidate > n.commitIndex && n.log[candidate].Term == n.currentTerm {
		n.commitIndex = candidate
		n.applyCommitted()
	}
}

func (n *Node) applyCommitted() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		if n.cfg.Apply != nil {
			n.cfg.Apply(n.lastApplied, n.log[n.lastApplied].Cmd)
		}
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

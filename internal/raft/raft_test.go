package raft

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

// cluster wires n Raft nodes over an in-memory lossy transport driven by
// the simulation engine.
type cluster struct {
	engine  *sim.Engine
	nodes   map[NodeID]*Node
	applied map[NodeID][]string
	// delay is the one-way message latency.
	delay time.Duration
	// dropProb drops messages; cut[a][b] severs links.
	dropProb float64
	cut      map[[2]NodeID]bool
	rng      *rand.Rand
}

type clusterTransport struct {
	c    *cluster
	from NodeID
}

func (t clusterTransport) Send(to NodeID, msg *Message) {
	c := t.c
	if c.cut[[2]NodeID{t.from, to}] {
		return
	}
	if c.dropProb > 0 && c.rng.Float64() < c.dropProb {
		return
	}
	m := *msg // copy; entries slice shared is fine (append-only)
	c.engine.Schedule(c.delay, func() {
		if n, ok := c.nodes[to]; ok && !n.Stopped() {
			n.Step(&m)
		}
	})
}

func newCluster(t *testing.T, n int, seed int64) *cluster {
	t.Helper()
	c := &cluster{
		engine:  sim.NewEngine(),
		nodes:   make(map[NodeID]*Node, n),
		applied: make(map[NodeID][]string, n),
		delay:   10 * time.Millisecond,
		cut:     make(map[[2]NodeID]bool),
		rng:     rand.New(rand.NewSource(seed)),
	}
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	for _, id := range ids {
		id := id
		peers := make([]NodeID, 0, n-1)
		for _, p := range ids {
			if p != id {
				peers = append(peers, p)
			}
		}
		c.nodes[id] = New(Config{
			ID:        id,
			Peers:     peers,
			Transport: clusterTransport{c: c, from: id},
			Clock:     SimClock{Engine: c.engine},
			RNG:       rand.New(rand.NewSource(seed + int64(id) + 100)),
			Apply: func(index uint64, cmd []byte) {
				c.applied[id] = append(c.applied[id], string(cmd))
			},
		})
	}
	return c
}

// run advances virtual time by d.
func (c *cluster) run(t *testing.T, d time.Duration) {
	t.Helper()
	if err := c.engine.Run(c.engine.Now() + d); err != nil {
		t.Fatalf("engine run: %v", err)
	}
}

// leader returns the unique live leader, or nil.
func (c *cluster) leader() *Node {
	var lead *Node
	for _, n := range c.nodes {
		if !n.Stopped() && n.State() == Leader {
			if lead != nil && lead.Term() == n.Term() {
				return nil // two leaders in same term: test will fail loudly
			}
			if lead == nil || n.Term() > lead.Term() {
				lead = n
			}
		}
	}
	return lead
}

func (c *cluster) waitLeader(t *testing.T, within time.Duration) *Node {
	t.Helper()
	deadline := c.engine.Now() + within
	for c.engine.Now() < deadline {
		c.run(t, 50*time.Millisecond)
		if l := c.leader(); l != nil {
			return l
		}
	}
	t.Fatalf("no leader within %v", within)
	return nil
}

func TestElectsSingleLeader(t *testing.T) {
	c := newCluster(t, 5, 1)
	lead := c.waitLeader(t, 5*time.Second)
	c.run(t, time.Second)
	// All nodes agree on the leader.
	for id, n := range c.nodes {
		if n.Leader() != lead.cfg.ID {
			t.Errorf("node %d thinks leader is %d, want %d", id, n.Leader(), lead.cfg.ID)
		}
	}
	// Exactly one leader.
	count := 0
	for _, n := range c.nodes {
		if n.State() == Leader {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d leaders", count)
	}
}

func TestReplicationAndApply(t *testing.T) {
	c := newCluster(t, 5, 2)
	lead := c.waitLeader(t, 5*time.Second)
	for i := 0; i < 10; i++ {
		if _, ok := lead.Propose([]byte(fmt.Sprintf("cmd-%d", i))); !ok {
			t.Fatal("leader refused proposal")
		}
	}
	c.run(t, 2*time.Second)
	for id, got := range c.applied {
		if len(got) != 10 {
			t.Fatalf("node %d applied %d entries, want 10", id, len(got))
		}
		for i, cmd := range got {
			if want := fmt.Sprintf("cmd-%d", i); cmd != want {
				t.Fatalf("node %d applied[%d] = %q, want %q", id, i, cmd, want)
			}
		}
	}
	if lead.CommitIndex() != 10 {
		t.Fatalf("commit index %d, want 10", lead.CommitIndex())
	}
}

func TestProposeOnFollowerRejected(t *testing.T) {
	c := newCluster(t, 3, 3)
	lead := c.waitLeader(t, 5*time.Second)
	for id, n := range c.nodes {
		if id == lead.cfg.ID {
			continue
		}
		if _, ok := n.Propose([]byte("x")); ok {
			t.Fatalf("follower %d accepted proposal", id)
		}
	}
}

func TestLeaderFailureTriggersReElection(t *testing.T) {
	c := newCluster(t, 5, 4)
	lead := c.waitLeader(t, 5*time.Second)
	if _, ok := lead.Propose([]byte("before")); !ok {
		t.Fatal("proposal failed")
	}
	c.run(t, time.Second)

	lead.Stop() // crash the leader
	// A new leader must emerge among the rest.
	var newLead *Node
	deadline := c.engine.Now() + 10*time.Second
	for c.engine.Now() < deadline {
		c.run(t, 100*time.Millisecond)
		if l := c.leader(); l != nil && l.cfg.ID != lead.cfg.ID {
			newLead = l
			break
		}
	}
	if newLead == nil {
		t.Fatal("no new leader after crash")
	}
	if newLead.Term() <= lead.Term() {
		t.Fatalf("new leader term %d not beyond old %d", newLead.Term(), lead.Term())
	}
	// The new leader still has the committed entry and can extend it.
	if _, ok := newLead.Propose([]byte("after")); !ok {
		t.Fatal("new leader refused proposal")
	}
	c.run(t, 2*time.Second)
	for id, n := range c.nodes {
		if n.Stopped() {
			continue
		}
		got := c.applied[id]
		if len(got) != 2 || got[0] != "before" || got[1] != "after" {
			t.Fatalf("node %d applied %v, want [before after]", id, got)
		}
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	c := newCluster(t, 5, 5)
	lead := c.waitLeader(t, 5*time.Second)
	// Partition the leader plus one follower away from the other three.
	minority := map[NodeID]bool{lead.cfg.ID: true}
	for id := range c.nodes {
		if id != lead.cfg.ID {
			minority[id] = true
			break
		}
	}
	for a := range c.nodes {
		for b := range c.nodes {
			if minority[a] != minority[b] {
				c.cut[[2]NodeID{a, b}] = true
			}
		}
	}
	idx, ok := lead.Propose([]byte("stranded"))
	if !ok {
		t.Fatal("proposal failed")
	}
	c.run(t, 3*time.Second)
	if lead.CommitIndex() >= idx {
		t.Fatal("minority leader committed without quorum")
	}
	// Majority side elects a fresh leader that can commit.
	var majLead *Node
	deadline := c.engine.Now() + 10*time.Second
	for c.engine.Now() < deadline {
		c.run(t, 100*time.Millisecond)
		for id, n := range c.nodes {
			if !minority[id] && n.State() == Leader {
				majLead = n
			}
		}
		if majLead != nil {
			break
		}
	}
	if majLead == nil {
		t.Fatal("majority side failed to elect")
	}
	if _, ok := majLead.Propose([]byte("maj")); !ok {
		t.Fatal("majority leader refused proposal")
	}
	c.run(t, 2*time.Second)
	if majLead.CommitIndex() == 0 {
		t.Fatal("majority failed to commit")
	}

	// Heal: the stranded entry must be discarded in favor of the majority
	// log, and the old leader steps down.
	c.cut = make(map[[2]NodeID]bool)
	c.run(t, 5*time.Second)
	for id := range c.nodes {
		got := c.applied[id]
		if len(got) == 0 || got[len(got)-1] != "maj" {
			t.Fatalf("node %d applied %v, want trailing \"maj\"", id, got)
		}
		for _, cmd := range got {
			if cmd == "stranded" {
				t.Fatalf("node %d applied the uncommitted minority entry", id)
			}
		}
	}
	if lead.State() == Leader && lead.Term() <= majLead.Term() {
		t.Fatal("old leader did not step down after heal")
	}
}

func TestLossyNetworkStillCommits(t *testing.T) {
	c := newCluster(t, 5, 6)
	c.dropProb = 0.2
	lead := c.waitLeader(t, 20*time.Second)
	for i := 0; i < 5; i++ {
		// Re-find the leader each round; drops may force re-elections.
		if lead.State() != Leader {
			lead = c.waitLeader(t, 20*time.Second)
		}
		lead.Propose([]byte(fmt.Sprintf("c%d", i)))
		c.run(t, time.Second)
	}
	c.run(t, 10*time.Second)
	// At least one node has applied everything the cluster committed; all
	// applied prefixes must be consistent.
	var longest []string
	for _, got := range c.applied {
		if len(got) > len(longest) {
			longest = got
		}
	}
	if len(longest) == 0 {
		t.Fatal("nothing committed under 20% loss")
	}
	for id, got := range c.applied {
		for i := range got {
			if got[i] != longest[i] {
				t.Fatalf("node %d log diverges at %d: %q vs %q", id, i, got[i], longest[i])
			}
		}
	}
}

func TestHeartbeatOverheadGrowsWithFrequency(t *testing.T) {
	// The ablation behind the paper's future-work note: halving the
	// heartbeat interval roughly doubles AppendEntries traffic.
	counts := make(map[time.Duration]uint64)
	for _, hb := range []time.Duration{50 * time.Millisecond, 200 * time.Millisecond} {
		engine := sim.NewEngine()
		rng := rand.New(rand.NewSource(7))
		nodes := make(map[NodeID]*Node)
		var transport func(from NodeID) Transport
		transport = func(from NodeID) Transport {
			return transportFunc(func(to NodeID, msg *Message) {
				m := *msg
				engine.Schedule(5*time.Millisecond, func() {
					if n, ok := nodes[to]; ok {
						n.Step(&m)
					}
				})
			})
		}
		ids := []NodeID{0, 1, 2}
		for _, id := range ids {
			peers := []NodeID{}
			for _, p := range ids {
				if p != id {
					peers = append(peers, p)
				}
			}
			nodes[id] = New(Config{
				ID: id, Peers: peers,
				HeartbeatInterval: hb,
				Transport:         transport(id),
				Clock:             SimClock{Engine: engine},
				RNG:               rand.New(rand.NewSource(int64(id) + 11)),
			})
		}
		if err := engine.Run(30 * time.Second); err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, n := range nodes {
			total += n.Stats().Sent[MsgAppendEntries]
		}
		counts[hb] = total
		_ = rng
	}
	fast, slow := counts[50*time.Millisecond], counts[200*time.Millisecond]
	if fast < slow*2 {
		t.Fatalf("50ms heartbeats sent %d AppendEntries vs %d at 200ms; expected ≥ 2x", fast, slow)
	}
	t.Logf("AppendEntries: 50ms=%d 200ms=%d", fast, slow)
}

type transportFunc func(to NodeID, msg *Message)

func (f transportFunc) Send(to NodeID, msg *Message) { f(to, msg) }

func TestSingleNodeClusterSelfElects(t *testing.T) {
	engine := sim.NewEngine()
	applied := 0
	n := New(Config{
		ID:        0,
		Transport: transportFunc(func(NodeID, *Message) {}),
		Clock:     SimClock{Engine: engine},
		RNG:       rand.New(rand.NewSource(1)),
		Apply:     func(uint64, []byte) { applied++ },
	})
	if err := engine.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if n.State() != Leader {
		t.Fatalf("singleton state = %v, want leader", n.State())
	}
	if _, ok := n.Propose([]byte("solo")); !ok {
		t.Fatal("singleton refused proposal")
	}
	if err := engine.Run(engine.Now() + time.Second); err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}
}

func TestWireSize(t *testing.T) {
	m := &Message{Type: MsgAppendEntries, Entries: []Entry{{Cmd: make([]byte, 100)}}}
	if m.WireSize() <= 100 {
		t.Fatal("wire size must exceed payload")
	}
	hb := &Message{Type: MsgAppendEntries}
	if hb.WireSize() != 64 {
		t.Fatalf("heartbeat wire size = %d, want 64", hb.WireSize())
	}
}

func TestStatsCounters(t *testing.T) {
	c := newCluster(t, 3, 8)
	c.waitLeader(t, 5*time.Second)
	c.run(t, 2*time.Second)
	var votes, appends uint64
	var elections uint64
	for _, n := range c.nodes {
		votes += n.Stats().Sent[MsgRequestVote]
		appends += n.Stats().Sent[MsgAppendEntries]
		elections += n.Stats().Elections
	}
	if votes == 0 || appends == 0 || elections == 0 {
		t.Fatalf("counters not incremented: votes=%d appends=%d elections=%d", votes, appends, elections)
	}
}

func TestStringers(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Fatal("state strings wrong")
	}
	if State(99).String() == "" {
		t.Fatal("unknown state string empty")
	}
	for _, mt := range []MsgType{MsgRequestVote, MsgVoteReply, MsgAppendEntries, MsgAppendReply, MsgType(99)} {
		if mt.String() == "" {
			t.Fatalf("empty string for %d", int(mt))
		}
	}
}

func TestLogConflictOverwrite(t *testing.T) {
	// A follower with divergent uncommitted entries must have them
	// truncated and replaced by the leader's log.
	c := newCluster(t, 3, 20)
	lead := c.waitLeader(t, 5*time.Second)

	// Pick a follower and inject divergent entries directly (simulating
	// entries from a deposed leader that never committed).
	var follower *Node
	for id, n := range c.nodes {
		if id != lead.cfg.ID {
			follower = n
			break
		}
	}
	// Ghost entries carry an older term (as a deposed leader's would);
	// entries with the leader's own term at the same index would be the
	// leader's entries by Raft's invariants.
	ghostTerm := follower.currentTerm - 1
	follower.log = append(follower.log, Entry{Term: ghostTerm, Cmd: []byte("ghost-1")})
	follower.log = append(follower.log, Entry{Term: ghostTerm, Cmd: []byte("ghost-2")})

	for i := 0; i < 3; i++ {
		if _, ok := lead.Propose([]byte(fmt.Sprintf("real-%d", i))); !ok {
			t.Fatal("propose failed")
		}
	}
	c.run(t, 3*time.Second)
	got := c.applied[follower.cfg.ID]
	if len(got) != 3 {
		t.Fatalf("follower applied %v, want the 3 real entries", got)
	}
	for i, cmd := range got {
		if want := fmt.Sprintf("real-%d", i); cmd != want {
			t.Fatalf("applied[%d] = %q, want %q", i, cmd, want)
		}
	}
	if follower.LogLen() != 3 {
		t.Fatalf("follower log length %d, want 3 (ghosts must be truncated)", follower.LogLen())
	}
}

func TestFollowerCatchUpAfterSilence(t *testing.T) {
	// A follower that was cut off while entries committed must be caught
	// up via the nextIndex backoff path.
	c := newCluster(t, 3, 21)
	lead := c.waitLeader(t, 5*time.Second)
	var follower NodeID = -1
	for id := range c.nodes {
		if id != lead.cfg.ID {
			follower = id
			break
		}
	}
	// Sever the follower.
	for id := range c.nodes {
		c.cut[[2]NodeID{follower, id}] = true
		c.cut[[2]NodeID{id, follower}] = true
	}
	for i := 0; i < 5; i++ {
		lead.Propose([]byte(fmt.Sprintf("e%d", i)))
	}
	c.run(t, 2*time.Second)
	if len(c.applied[follower]) != 0 {
		t.Fatal("severed follower applied entries")
	}
	// Heal. The leader (or a new one) must replicate the backlog.
	c.cut = make(map[[2]NodeID]bool)
	c.run(t, 5*time.Second)
	if got := len(c.applied[follower]); got != 5 {
		t.Fatalf("follower applied %d entries after heal, want 5", got)
	}
}

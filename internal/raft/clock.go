package raft

import (
	"time"

	"repro/internal/sim"
)

// SimClock adapts the discrete-event engine to the raft Clock interface.
type SimClock struct {
	Engine *sim.Engine
}

// After implements Clock.
func (c SimClock) After(d time.Duration, fn func()) Timer {
	return c.Engine.Schedule(d, fn)
}

package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func baseConfig() Config {
	return Config{
		Duration:        500 * time.Minute,
		RatePerMin:      2,
		NumNodes:        30,
		Requesters:      []int{3, 9, 21},
		RequestsPerItem: 1,
		Seed:            1,
	}
}

func TestGenerateRate(t *testing.T) {
	tr, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Expected 1000 events (2/min over 500 min); Poisson sd ~ 32.
	if tr.Len() < 850 || tr.Len() > 1150 {
		t.Fatalf("trace has %d events, want ≈1000", tr.Len())
	}
}

func TestGenerateOrderingAndBounds(t *testing.T) {
	cfg := baseConfig()
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for i, e := range tr.Events {
		if e.At < prev {
			t.Fatalf("event %d out of order", i)
		}
		prev = e.At
		if e.At > cfg.Duration {
			t.Fatalf("event %d beyond horizon", i)
		}
		if e.Producer < 0 || e.Producer >= cfg.NumNodes {
			t.Fatalf("event %d producer %d out of range", i, e.Producer)
		}
		if e.Type == "" {
			t.Fatalf("event %d missing type", i)
		}
		for _, r := range e.Requesters {
			if r == e.Producer {
				t.Fatalf("event %d requester is the producer", i)
			}
		}
		if len(e.Requesters) > cfg.RequestsPerItem {
			t.Fatalf("event %d has %d requesters, want ≤ %d", i, len(e.Requesters), cfg.RequestsPerItem)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	cfg := baseConfig()
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateZeroRate(t *testing.T) {
	cfg := baseConfig()
	cfg.RatePerMin = 0
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("zero rate produced %d events", tr.Len())
	}
}

func TestGenerateErrors(t *testing.T) {
	cfg := baseConfig()
	cfg.NumNodes = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("zero nodes accepted")
	}
	cfg = baseConfig()
	cfg.RatePerMin = -1
	if _, err := Generate(cfg); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestDrawRequestersMultiple(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	got := drawRequesters(rng, []int{1, 2, 3, 4}, 2, 3)
	if len(got) != 3 {
		t.Fatalf("got %v, want 3 requesters", got)
	}
	seen := map[int]bool{}
	for _, r := range got {
		if r == 2 {
			t.Fatal("producer drawn as requester")
		}
		if seen[r] {
			t.Fatal("duplicate requester")
		}
		seen[r] = true
	}
	// Asking for more than available caps at the pool size.
	got = drawRequesters(rng, []int{1, 2}, 1, 5)
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestPickRequesterPool(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pool := PickRequesterPool(30, 0.10, rng)
	if len(pool) != 3 {
		t.Fatalf("pool = %v, want 3 nodes", pool)
	}
	for i := 1; i < len(pool); i++ {
		if pool[i] <= pool[i-1] {
			t.Fatal("pool not sorted unique")
		}
	}
	if got := PickRequesterPool(5, 0.01, rng); len(got) != 1 {
		t.Fatalf("tiny fraction should floor at 1 requester, got %v", got)
	}
	if got := PickRequesterPool(3, 0, rng); len(got) != 0 {
		t.Fatalf("zero fraction should give empty pool, got %v", got)
	}
}

// Open-loop streaming workload engine.
//
// The legacy Generate materializes a whole trace up front, which caps
// workloads at what fits in memory and at the paper's tiny Section VI-A
// rates. Stream generates the same kind of events lazily — one at a time,
// O(1) memory regardless of horizon or rate — and extends the model along
// three axes the evaluation scenarios (vehicles, smartphones) need:
//
//   - Arrival processes: constant-rate Poisson (the paper's), a diurnal
//     sinusoid, and periodic burst/flash-crowd windows, freely composed
//     as a time-varying rate r(t) sampled by Lewis–Shedler thinning.
//   - Popularity skew: data types drawn Zipf-distributed by rank instead
//     of round-robin cycling.
//   - User multiplexing: millions of logical users mapped onto the
//     physical node set through a stateless hashed session map that is
//     re-keyed every SessionEpoch (mobility: a vehicle hops to another
//     edge node) and never resolves to a node the alive mask rejects.
//
// Everything is driven by one seeded RNG: the same StreamConfig always
// yields the same event sequence. A StreamConfig with none of the new
// knobs set reproduces the legacy Generate output event-for-event (the
// differential test in stream_test.go pins this), which keeps the Fig. 5
// paired-trace experiments valid.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// StreamConfig parametrizes an open-loop event stream. The zero knobs
// (no diurnal, no burst, no users, no skew) make the stream equivalent to
// the legacy materialized Generate for the same Seed.
type StreamConfig struct {
	// Duration is the stream horizon; Next returns ok=false past it.
	Duration time.Duration
	// RatePerMin is the base network-wide production rate (paper: 1-3).
	RatePerMin float64

	// DiurnalPeriod, when positive, modulates the rate sinusoidally:
	// r(t) = base · (1 + DiurnalAmplitude·sin(2πt/period)). Amplitude must
	// lie in [0, 1]; the peak sits at period/4.
	DiurnalPeriod    time.Duration
	DiurnalAmplitude float64

	// BurstEvery, when positive, opens a flash-crowd window of
	// BurstDuration every BurstEvery, starting at BurstOffset, during
	// which the rate is multiplied by BurstFactor (≥ 1).
	BurstEvery    time.Duration
	BurstDuration time.Duration
	BurstOffset   time.Duration
	BurstFactor   float64

	// NumNodes is the physical node population.
	NumNodes int
	// Requesters is the consumer pool (paper: 10% of nodes); per-item
	// requesters are drawn from it without replacement, excluding the
	// producer.
	Requesters []int
	// RequestsPerItem consumers are drawn per item. Must not exceed
	// len(Requesters).
	RequestsPerItem int
	// Types are the produced data types (DefaultTypes if nil).
	Types []string
	// TypeZipfS, when > 1, draws each event's type Zipf(s)-distributed by
	// rank in Types (rank 0 most popular) instead of round-robin cycling.
	TypeZipfS float64

	// Users, when positive, multiplexes that many logical users over the
	// node set: each event's producer is a user mapped to a node by the
	// session map. 0 keeps the legacy behavior (producer drawn uniformly
	// from nodes).
	Users int64
	// UserZipfS, when > 1, skews which users produce (a few prolific
	// producers, a long tail). Requires Users > 0.
	UserZipfS float64
	// SessionEpoch, when positive, re-keys the user→node session map
	// every epoch (mobility). Requires Users > 0. 0 pins users to their
	// node for the whole stream.
	SessionEpoch time.Duration

	// Seed fixes the stream.
	Seed int64
}

// minGap is the floor on inter-arrival gaps (also the legacy clamp); it
// bounds the instantaneous event rate at 1000/s no matter the config.
const minGap = time.Millisecond

// Validate checks the configuration without building a stream.
func (c *StreamConfig) Validate() error {
	if c.NumNodes < 1 {
		return errors.New("workload: NumNodes must be positive")
	}
	if c.Duration < 0 {
		return errors.New("workload: negative duration")
	}
	if c.RatePerMin < 0 || math.IsNaN(c.RatePerMin) || math.IsInf(c.RatePerMin, 0) {
		return errors.New("workload: rate must be finite and non-negative")
	}
	if c.DiurnalPeriod < 0 {
		return errors.New("workload: negative diurnal period")
	}
	if c.DiurnalPeriod > 0 {
		if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude > 1 || math.IsNaN(c.DiurnalAmplitude) {
			return errors.New("workload: diurnal amplitude must be in [0, 1]")
		}
	} else if c.DiurnalAmplitude != 0 {
		return errors.New("workload: diurnal amplitude without a period")
	}
	if c.BurstEvery < 0 || c.BurstDuration < 0 || c.BurstOffset < 0 {
		return errors.New("workload: negative burst timing")
	}
	if c.BurstEvery > 0 {
		if c.BurstDuration <= 0 || c.BurstDuration > c.BurstEvery {
			return errors.New("workload: burst duration must be in (0, BurstEvery]")
		}
		if c.BurstFactor < 1 || math.IsNaN(c.BurstFactor) || math.IsInf(c.BurstFactor, 0) {
			return errors.New("workload: burst factor must be finite and >= 1")
		}
	} else if c.BurstDuration != 0 || c.BurstFactor != 0 || c.BurstOffset != 0 {
		return errors.New("workload: burst knobs without BurstEvery")
	}
	if c.RequestsPerItem < 0 {
		return errors.New("workload: negative RequestsPerItem")
	}
	if c.RequestsPerItem > 0 {
		if len(c.Requesters) == 0 {
			return errors.New("workload: RequestsPerItem > 0 with an empty requester pool")
		}
		if c.RequestsPerItem > len(c.Requesters) {
			return fmt.Errorf("workload: RequestsPerItem %d exceeds requester pool of %d",
				c.RequestsPerItem, len(c.Requesters))
		}
	}
	for _, r := range c.Requesters {
		if r < 0 || r >= c.NumNodes {
			return fmt.Errorf("workload: requester %d outside node range [0, %d)", r, c.NumNodes)
		}
	}
	if s := c.TypeZipfS; s != 0 && (s <= 1 || math.IsNaN(s) || math.IsInf(s, 0)) {
		return errors.New("workload: TypeZipfS must be 0 (off) or > 1")
	}
	if c.Users < 0 {
		return errors.New("workload: negative Users")
	}
	if s := c.UserZipfS; s != 0 {
		if s <= 1 || math.IsNaN(s) || math.IsInf(s, 0) {
			return errors.New("workload: UserZipfS must be 0 (off) or > 1")
		}
		if c.Users == 0 {
			return errors.New("workload: UserZipfS without Users")
		}
	}
	if c.SessionEpoch < 0 {
		return errors.New("workload: negative SessionEpoch")
	}
	if c.SessionEpoch > 0 && c.Users == 0 {
		return errors.New("workload: SessionEpoch without Users")
	}
	return nil
}

// Stream is an open-loop streaming generator. Not safe for concurrent
// use; all state advances through Next.
type Stream struct {
	cfg       StreamConfig
	types     []string
	rng       *rand.Rand
	typeZipf  *rand.Zipf
	userZipf  *rand.Zipf
	alive     func(node int) bool
	now       time.Duration
	seq       int
	skipped   int
	exhausted bool
	lambdaMax float64 // peak rate, events per minute
	meanGap   time.Duration
	cand      []int // requester-draw scratch
}

// NewStream builds a streaming generator. The configuration is validated
// eagerly so hostile values fail here, not mid-generation.
func NewStream(cfg StreamConfig) (*Stream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Stream{cfg: cfg, types: cfg.Types}
	if len(s.types) == 0 {
		s.types = DefaultTypes()
	}
	s.rng = rand.New(rand.NewSource(cfg.Seed))
	s.lambdaMax = cfg.RatePerMin
	if cfg.DiurnalPeriod > 0 {
		s.lambdaMax *= 1 + cfg.DiurnalAmplitude
	}
	if cfg.BurstEvery > 0 {
		s.lambdaMax *= cfg.BurstFactor
	}
	if s.lambdaMax > 0 {
		s.meanGap = time.Duration(60.0 / s.lambdaMax * float64(time.Second))
	}
	if cfg.TypeZipfS > 1 {
		s.typeZipf = rand.NewZipf(s.rng, cfg.TypeZipfS, 1, uint64(len(s.types)-1))
	}
	if cfg.UserZipfS > 1 {
		s.userZipf = rand.NewZipf(s.rng, cfg.UserZipfS, 1, uint64(cfg.Users-1))
	}
	return s, nil
}

// SetAlive installs the liveness mask consulted when mapping a producer
// to a node: the session map probes forward until fn accepts a node, so a
// user is never assigned to a node its driver knows is down. nil (the
// default) treats every node as alive.
func (s *Stream) SetAlive(fn func(node int) bool) { s.alive = fn }

// Skipped reports how many arrivals were discarded because no alive node
// could host the producer.
func (s *Stream) Skipped() int { return s.skipped }

// Seq reports how many events have been emitted so far.
func (s *Stream) Seq() int { return s.seq }

// rateAt returns the instantaneous target rate (events per minute) at t.
func (s *Stream) rateAt(t time.Duration) float64 {
	r := s.cfg.RatePerMin
	if s.cfg.DiurnalPeriod > 0 {
		phase := 2 * math.Pi * float64(t%s.cfg.DiurnalPeriod) / float64(s.cfg.DiurnalPeriod)
		r *= 1 + s.cfg.DiurnalAmplitude*math.Sin(phase)
	}
	if s.cfg.BurstEvery > 0 && t >= s.cfg.BurstOffset {
		if (t-s.cfg.BurstOffset)%s.cfg.BurstEvery < s.cfg.BurstDuration {
			r *= s.cfg.BurstFactor
		}
	}
	return r
}

// homogeneous reports whether the rate is constant (pure Poisson), in
// which case no thinning draw is made — this is what keeps the legacy
// RNG stream byte-identical.
func (s *Stream) homogeneous() bool {
	return s.cfg.DiurnalPeriod == 0 && s.cfg.BurstEvery == 0
}

// advance moves the clock to the next accepted arrival; false past the
// horizon (or when the rate is zero).
func (s *Stream) advance() bool {
	if s.exhausted || s.lambdaMax == 0 {
		s.exhausted = true
		return false
	}
	for {
		// Same arithmetic as the legacy generator so the pure-Poisson
		// stream stays bit-identical; overflow of the Duration conversion
		// (absurdly small rates) reads as "no further event in horizon".
		gap := time.Duration(s.rng.ExpFloat64() * float64(s.meanGap))
		if gap < minGap {
			gap = minGap
		}
		if gap < 0 || s.now+gap < s.now { // overflow
			s.exhausted = true
			return false
		}
		s.now += gap
		if s.now > s.cfg.Duration {
			s.exhausted = true
			return false
		}
		if s.homogeneous() {
			return true
		}
		// Lewis–Shedler thinning: candidate arrivals come at the peak
		// rate; accept with probability r(t)/λmax.
		if s.rng.Float64()*s.lambdaMax < s.rateAt(s.now) {
			return true
		}
	}
}

// splitmix64 is the session map's mixing function.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// sessionNode maps (seed, user, epoch) to a home node: stateless, O(1),
// uniform — millions of users cost no memory.
func sessionNode(seed, user, epoch int64, n int) int {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(user)*0xD1B54A32D192ED03 + uint64(epoch)*0x8CB92BA72F3D8DD7
	return int(splitmix64(x) % uint64(n))
}

// pickProducer selects the event's producing node (and logical user).
// ok=false when the alive mask rejects every node.
func (s *Stream) pickProducer() (node int, user int64, ok bool) {
	n := s.cfg.NumNodes
	if s.cfg.Users == 0 {
		// Legacy path: uniform over nodes, same single Intn draw.
		node = s.rng.Intn(n)
		user = -1
	} else {
		if s.userZipf != nil {
			user = int64(s.userZipf.Uint64())
		} else {
			user = s.rng.Int63n(s.cfg.Users)
		}
		var epoch int64
		if s.cfg.SessionEpoch > 0 {
			epoch = int64(s.now / s.cfg.SessionEpoch)
		}
		node = sessionNode(s.cfg.Seed, user, epoch, n)
	}
	if s.alive == nil {
		return node, user, true
	}
	// Deterministic linear probe: the user sticks to the first alive node
	// at or after its hashed home slot. No RNG is consumed, so liveness
	// changes never perturb the arrival/requester draws.
	for i := 0; i < n; i++ {
		probe := (node + i) % n
		if s.alive(probe) {
			return probe, user, true
		}
	}
	return 0, user, false
}

// pickType selects the event's data type.
func (s *Stream) pickType() string {
	if s.typeZipf != nil {
		return s.types[s.typeZipf.Uint64()]
	}
	return s.types[s.seq%len(s.types)]
}

// drawRequestersScratch is drawRequesters on the stream's reusable
// candidate buffer: same RNG consumption (one Shuffle of the filtered
// pool), one allocation for the returned slice only.
func (s *Stream) drawRequestersScratch(producer int) []int {
	pool := s.cfg.Requesters
	k := s.cfg.RequestsPerItem
	if k <= 0 || len(pool) == 0 {
		return nil
	}
	s.cand = s.cand[:0]
	for _, id := range pool {
		if id != producer {
			s.cand = append(s.cand, id)
		}
	}
	sort.Ints(s.cand)
	s.rng.Shuffle(len(s.cand), func(a, b int) {
		s.cand[a], s.cand[b] = s.cand[b], s.cand[a]
	})
	if k > len(s.cand) {
		k = len(s.cand)
	}
	out := append([]int(nil), s.cand[:k]...)
	sort.Ints(out)
	return out
}

// Next returns the next event in the stream; ok=false when the horizon is
// exhausted. Arrivals whose producer cannot be mapped to an alive node
// are skipped (counted by Skipped), not returned.
func (s *Stream) Next() (ev Event, ok bool) {
	for {
		if !s.advance() {
			return Event{}, false
		}
		node, user, alive := s.pickProducer()
		if !alive {
			s.skipped++
			continue
		}
		ev = Event{
			At:         s.now,
			Producer:   node,
			User:       user,
			Type:       s.pickType(),
			Requesters: s.drawRequestersScratch(node),
		}
		s.seq++
		return ev, true
	}
}

// Drain materializes the remaining stream into a Trace. Intended for
// legacy consumers (core.Config.Trace); open-loop drivers should consume
// Next directly and never hold the whole workload in memory.
func (s *Stream) Drain() *Trace {
	tr := &Trace{}
	for {
		ev, ok := s.Next()
		if !ok {
			return tr
		}
		tr.Events = append(tr.Events, ev)
	}
}

// --- churn traces -----------------------------------------------------------

// ChurnEvent is one scheduled node outage: Node goes down at At and comes
// back Down later.
type ChurnEvent struct {
	At   time.Duration
	Node int
	Down time.Duration
}

// ChurnConfig parametrizes a churn trace.
type ChurnConfig struct {
	// Horizon bounds event times.
	Horizon time.Duration
	// EventsPerMin is the outage arrival rate (Poisson).
	EventsPerMin float64
	// MeanDown is the mean outage length (exponential, floored at 1s).
	MeanDown time.Duration
	// NumNodes is the node population; victims are drawn uniformly from
	// the nodes not listed in Protect.
	NumNodes int
	// Protect lists node IDs never taken down (e.g. content producers).
	Protect []int
	// Seed fixes the trace.
	Seed int64
}

// Validate checks the churn configuration.
func (c *ChurnConfig) Validate() error {
	if c.NumNodes < 1 {
		return errors.New("workload: churn NumNodes must be positive")
	}
	if c.Horizon < 0 {
		return errors.New("workload: negative churn horizon")
	}
	if c.EventsPerMin < 0 || math.IsNaN(c.EventsPerMin) || math.IsInf(c.EventsPerMin, 0) {
		return errors.New("workload: churn rate must be finite and non-negative")
	}
	if c.MeanDown < 0 {
		return errors.New("workload: negative MeanDown")
	}
	seen := make(map[int]bool, len(c.Protect))
	for _, p := range c.Protect {
		if p < 0 || p >= c.NumNodes {
			return fmt.Errorf("workload: protected node %d outside range [0, %d)", p, c.NumNodes)
		}
		seen[p] = true
	}
	if len(seen) >= c.NumNodes {
		return errors.New("workload: every node protected, churn has no victims")
	}
	return nil
}

// GenerateChurn materializes a deterministic churn trace: Poisson outage
// times, uniform victims among unprotected nodes, exponential outage
// lengths. Churn traces are small (tens of events), so unlike the data
// stream they are materialized.
func GenerateChurn(cfg ChurnConfig) ([]ChurnEvent, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.EventsPerMin == 0 || cfg.Horizon == 0 {
		return nil, nil
	}
	protected := make(map[int]bool, len(cfg.Protect))
	for _, p := range cfg.Protect {
		protected[p] = true
	}
	victims := make([]int, 0, cfg.NumNodes-len(protected))
	for i := 0; i < cfg.NumNodes; i++ {
		if !protected[i] {
			victims = append(victims, i)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	meanGap := time.Duration(60.0 / cfg.EventsPerMin * float64(time.Second))
	var out []ChurnEvent
	at := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		if gap < minGap {
			gap = minGap
		}
		if gap < 0 || at+gap < at {
			return out, nil
		}
		at += gap
		if at > cfg.Horizon {
			return out, nil
		}
		down := time.Duration(rng.ExpFloat64() * float64(cfg.MeanDown))
		if down < time.Second {
			down = time.Second
		}
		out = append(out, ChurnEvent{
			At:   at,
			Node: victims[rng.Intn(len(victims))],
			Down: down,
		})
	}
}

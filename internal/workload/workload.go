// Package workload generates the evaluation's data-trading traces: data
// items appear network-wide with exponential interarrival at 1-3 items per
// minute, each produced by a random node and requested by consumers drawn
// from the requester pool (10% of nodes), per Section VI-A.
//
// Two generation modes exist. The legacy Generate materializes a trace up
// front so experiments can replay the exact same workload across
// configurations (the Fig. 5 comparison runs optimal and random placement
// against identical traces via core.Config.Trace). The open-loop Stream
// (stream.go) produces the same events lazily with O(1) memory plus
// arrival-process, popularity-skew, and user-multiplexing extensions;
// Generate is a thin adapter over it and is pinned bit-identical to the
// original algorithm by a differential test.
package workload

import (
	"math/rand"
	"sort"
	"time"
)

// Event is one data production: a node creates an item at a virtual time
// and the listed requesters will ask for it once it appears in a block.
type Event struct {
	// At is the production time.
	At time.Duration
	// Producer is the producing node ID.
	Producer int
	// User is the logical producing user, or -1 when the generator runs
	// without a user model (legacy traces).
	User int64
	// Type is the data type string ("AirQuality/PM2.5", ...).
	Type string
	// Requesters are the consumer node IDs assigned to this item.
	Requesters []int
}

// Trace is a deterministic, time-ordered workload.
type Trace struct {
	Events []Event
}

// Len returns the number of events.
func (tr *Trace) Len() int { return len(tr.Events) }

// DefaultTypes are the sample data types from the paper's metadata
// examples plus the motivating scenarios.
func DefaultTypes() []string {
	return []string{
		"AirQuality/PM2.5", "Picture/Traffic", "Video/Clip",
		"Energy/Reading", "Road/Congestion",
	}
}

// Config parametrizes legacy materialized trace generation: constant-rate
// Poisson arrivals, uniform producers, round-robin types. StreamConfig is
// the superset used by the open-loop engine.
type Config struct {
	// Duration is the trace horizon.
	Duration time.Duration
	// RatePerMin is the network-wide production rate (paper: 1-3).
	RatePerMin float64
	// NumNodes is the node population; producers are drawn uniformly.
	NumNodes int
	// Requesters is the consumer pool (paper: 10% of nodes).
	Requesters []int
	// RequestsPerItem consumers are drawn per item (without replacement).
	RequestsPerItem int
	// Types cycles through the produced data types (DefaultTypes if nil).
	Types []string
	// Seed fixes the trace.
	Seed int64
}

// Stream lifts the legacy configuration into the open-loop engine's
// parameter space; the resulting stream replays the legacy RNG sequence
// exactly.
func (c Config) Stream() StreamConfig {
	return StreamConfig{
		Duration:        c.Duration,
		RatePerMin:      c.RatePerMin,
		NumNodes:        c.NumNodes,
		Requesters:      c.Requesters,
		RequestsPerItem: c.RequestsPerItem,
		Types:           c.Types,
		Seed:            c.Seed,
	}
}

// Validate checks the configuration, including the requester-sampling
// edge cases (empty pool or RequestsPerItem exceeding it) that used to
// surface only at generation time.
func (c Config) Validate() error {
	sc := c.Stream()
	return sc.Validate()
}

// Generate materializes a trace. It is the legacy adapter over Stream and
// produces the identical event sequence the original materializing
// generator did for the same Config (see TestStreamMatchesLegacy).
func Generate(cfg Config) (*Trace, error) {
	s, err := NewStream(cfg.Stream())
	if err != nil {
		return nil, err
	}
	return s.Drain(), nil
}

// drawRequesters picks up to k distinct requesters, excluding the producer.
func drawRequesters(rng *rand.Rand, pool []int, producer, k int) []int {
	if k <= 0 || len(pool) == 0 {
		return nil
	}
	candidates := make([]int, 0, len(pool))
	for _, id := range pool {
		if id != producer {
			candidates = append(candidates, id)
		}
	}
	sort.Ints(candidates)
	rng.Shuffle(len(candidates), func(a, b int) {
		candidates[a], candidates[b] = candidates[b], candidates[a]
	})
	if k > len(candidates) {
		k = len(candidates)
	}
	out := append([]int(nil), candidates[:k]...)
	sort.Ints(out)
	return out
}

// PickRequesterPool selects the paper's "10 percent of nodes" uniformly.
func PickRequesterPool(numNodes int, fraction float64, rng *rand.Rand) []int {
	want := int(float64(numNodes)*fraction + 0.5)
	if want < 1 && fraction > 0 {
		want = 1
	}
	if want > numNodes {
		want = numNodes
	}
	perm := rng.Perm(numNodes)
	out := append([]int(nil), perm[:want]...)
	sort.Ints(out)
	return out
}

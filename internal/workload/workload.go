// Package workload generates the evaluation's data-trading traces: data
// items appear network-wide with exponential interarrival at 1-3 items per
// minute, each produced by a random node and requested by consumers drawn
// from the requester pool (10% of nodes), per Section VI-A.
//
// Traces are materialized up front so experiments can replay the exact
// same workload across configurations (the Fig. 5 comparison runs optimal
// and random placement against identical traces when wired through
// core.Config.Trace).
package workload

import (
	"errors"
	"math/rand"
	"sort"
	"time"
)

// Event is one data production: a node creates an item at a virtual time
// and the listed requesters will ask for it once it appears in a block.
type Event struct {
	// At is the production time.
	At time.Duration
	// Producer is the producing node ID.
	Producer int
	// Type is the data type string ("AirQuality/PM2.5", ...).
	Type string
	// Requesters are the consumer node IDs assigned to this item.
	Requesters []int
}

// Trace is a deterministic, time-ordered workload.
type Trace struct {
	Events []Event
}

// Len returns the number of events.
func (tr *Trace) Len() int { return len(tr.Events) }

// DefaultTypes are the sample data types from the paper's metadata
// examples plus the motivating scenarios.
func DefaultTypes() []string {
	return []string{
		"AirQuality/PM2.5", "Picture/Traffic", "Video/Clip",
		"Energy/Reading", "Road/Congestion",
	}
}

// Config parametrizes trace generation.
type Config struct {
	// Duration is the trace horizon.
	Duration time.Duration
	// RatePerMin is the network-wide production rate (paper: 1-3).
	RatePerMin float64
	// NumNodes is the node population; producers are drawn uniformly.
	NumNodes int
	// Requesters is the consumer pool (paper: 10% of nodes).
	Requesters []int
	// RequestsPerItem consumers are drawn per item (without replacement).
	RequestsPerItem int
	// Types cycles through the produced data types (DefaultTypes if nil).
	Types []string
	// Seed fixes the trace.
	Seed int64
}

// Generate materializes a trace.
func Generate(cfg Config) (*Trace, error) {
	if cfg.NumNodes < 1 {
		return nil, errors.New("workload: NumNodes must be positive")
	}
	if cfg.RatePerMin < 0 {
		return nil, errors.New("workload: negative rate")
	}
	types := cfg.Types
	if len(types) == 0 {
		types = DefaultTypes()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{}
	if cfg.RatePerMin == 0 {
		return tr, nil
	}
	meanGap := time.Duration(60.0 / cfg.RatePerMin * float64(time.Second))
	at := time.Duration(0)
	seq := 0
	for {
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		if gap < time.Millisecond {
			gap = time.Millisecond
		}
		at += gap
		if at > cfg.Duration {
			return tr, nil
		}
		producer := rng.Intn(cfg.NumNodes)
		tr.Events = append(tr.Events, Event{
			At:         at,
			Producer:   producer,
			Type:       types[seq%len(types)],
			Requesters: drawRequesters(rng, cfg.Requesters, producer, cfg.RequestsPerItem),
		})
		seq++
	}
}

// drawRequesters picks up to k distinct requesters, excluding the producer.
func drawRequesters(rng *rand.Rand, pool []int, producer, k int) []int {
	if k <= 0 || len(pool) == 0 {
		return nil
	}
	candidates := make([]int, 0, len(pool))
	for _, id := range pool {
		if id != producer {
			candidates = append(candidates, id)
		}
	}
	sort.Ints(candidates)
	rng.Shuffle(len(candidates), func(a, b int) {
		candidates[a], candidates[b] = candidates[b], candidates[a]
	})
	if k > len(candidates) {
		k = len(candidates)
	}
	out := append([]int(nil), candidates[:k]...)
	sort.Ints(out)
	return out
}

// PickRequesterPool selects the paper's "10 percent of nodes" uniformly.
func PickRequesterPool(numNodes int, fraction float64, rng *rand.Rand) []int {
	want := int(float64(numNodes)*fraction + 0.5)
	if want < 1 && fraction > 0 {
		want = 1
	}
	if want > numNodes {
		want = numNodes
	}
	perm := rng.Perm(numNodes)
	out := append([]int(nil), perm[:want]...)
	sort.Ints(out)
	return out
}
